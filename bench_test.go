// Benchmark harness regenerating the paper's evaluation (one benchmark
// per figure and table, see DESIGN.md's experiment index) plus scaling
// sweeps and ablations of the design choices. Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/encode"
	"repro/internal/netlist"
	"repro/internal/sat"
	"repro/internal/sg"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/synth"
	"repro/internal/verify"
)

// mcFunctions extracts the per-signal excitation covers of a satisfied
// report.
func mcFunctions(b *testing.B, g *sg.Graph, rep *core.Report) map[int]netlist.SR {
	b.Helper()
	fns := map[int]netlist.SR{}
	for sig := range g.Signals {
		if g.Input[sig] {
			continue
		}
		set, reset, err := rep.ExcitationFunctions(sig)
		if err != nil {
			b.Fatal(err)
		}
		fns[sig] = netlist.SR{Set: set, Reset: reset}
	}
	return fns
}

// BenchmarkFig1Analysis measures the Section-II analysis of the Figure-1
// state graph: region decomposition, property checks and the MC report.
func BenchmarkFig1Analysis(b *testing.B) {
	g := benchdata.Fig1SG()
	for i := 0; i < b.N; i++ {
		a := core.NewAnalyzer(g)
		rep := a.CheckGraph()
		if rep.Satisfied() {
			b.Fatal("Fig1 must violate MC")
		}
	}
}

// BenchmarkFig2Netlist measures construction of the standard C- and
// RS-implementation structures (Figure 2) from MC covers.
func BenchmarkFig2Netlist(b *testing.B) {
	g := benchdata.Fig4SG()
	res, err := encode.Repair(g, encode.Options{})
	if err != nil {
		b.Fatal(err)
	}
	fns := mcFunctions(b, res.G, res.Report)
	for _, mode := range []struct {
		name string
		opts netlist.Options
	}{
		{"C", netlist.Options{}},
		{"RS", netlist.Options{RS: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := netlist.Build(res.G, fns, mode.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEq1Baseline measures the Beerel–Meng-style baseline synthesis
// of Figure 1 plus the verification that exposes its hazard.
func BenchmarkEq1Baseline(b *testing.B) {
	g := benchdata.Fig1SG()
	for i := 0; i < b.N; i++ {
		nl, err := baseline.Synthesize(g, netlist.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if verify.Check(nl, g).OK() {
			b.Fatal("baseline must be hazardous")
		}
	}
}

// BenchmarkFig3Repair measures the Example-1 repair: SAT-driven state
// signal insertion on Figure 1 until MC holds.
func BenchmarkFig3Repair(b *testing.B) {
	g := benchdata.Fig1SG()
	for i := 0; i < b.N; i++ {
		res, err := encode.Repair(g, encode.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Added)), "signals")
			b.ReportMetric(float64(res.G.NumStates()), "states")
		}
	}
}

// BenchmarkFig4Verify measures hazard detection on the Example-2
// baseline implementation.
func BenchmarkFig4Verify(b *testing.B) {
	g := benchdata.Fig4SG()
	nl, err := baseline.Synthesize(g, netlist.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res := verify.Check(nl, g)
		if res.OK() {
			b.Fatal("must be hazardous")
		}
	}
}

// BenchmarkFig4Repair measures the Example-2 end-to-end pipeline.
func BenchmarkFig4Repair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := synth.FromGraph(benchdata.Fig4SG(), synth.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.OK() {
			b.Fatal("must verify")
		}
	}
}

// BenchmarkTable1 regenerates every row of Table 1: full pipeline per
// benchmark (state graph, MC analysis, SAT insertion, implementation,
// verification).
func BenchmarkTable1(b *testing.B) {
	for _, e := range benchdata.Table1 {
		b.Run(e.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := synth.FromSTG(e.STG(), synth.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.AddedSignals) != e.PaperAdded || !rep.OK() {
					b.Fatalf("added %d (paper %d), ok=%v",
						len(rep.AddedSignals), e.PaperAdded, rep.OK())
				}
				if i == 0 {
					b.ReportMetric(float64(rep.Final.NumStates()), "states")
					b.ReportMetric(float64(rep.Stats.Literals), "literals")
				}
			}
		})
	}
}

// BenchmarkScaleChain sweeps pipeline length: linear state-graph growth
// through analysis, synthesis and verification.
func BenchmarkScaleChain(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := benchdata.GenBufferChain(n)
			for i := 0; i < b.N; i++ {
				rep, err := synth.FromSTG(net, synth.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.OK() {
					b.Fatal("chain must verify")
				}
			}
		})
	}
}

// BenchmarkScaleFork sweeps fork width: exponential composed-state
// growth in the verifier.
func BenchmarkScaleFork(b *testing.B) {
	for _, k := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			net := benchdata.GenParallelizer(k)
			g, err := stg.BuildSG(net)
			if err != nil {
				b.Fatal(err)
			}
			rep := core.NewAnalyzer(g).CheckGraph()
			fns := mcFunctions(b, g, rep)
			nl, err := netlist.Build(g, fns, netlist.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				res := verify.Check(nl, g)
				if !res.OK() {
					b.Fatal("fork must verify")
				}
				if i == 0 {
					b.ReportMetric(float64(res.States), "composed-states")
				}
			}
		})
	}
}

// BenchmarkScaleSelector sweeps the k-way selector: insertion difficulty
// grows with the number of conflicting interface states (⌈log2 k⌉ state
// signals necessary).
func BenchmarkScaleSelector(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			net := benchdata.GenSelectorRing(k)
			for i := 0; i < b.N; i++ {
				rep, err := synth.FromSTG(net, synth.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.OK() {
					b.Fatal("selector must verify")
				}
				if i == 0 {
					b.ReportMetric(float64(len(rep.AddedSignals)), "signals")
				}
			}
		})
	}
}

// BenchmarkSharing is the Section-VI ablation: gate counts with private
// versus shared AND terms on the fork specification.
func BenchmarkSharing(b *testing.B) {
	const forkSpec = `
.model fork2
.inputs a b
.outputs y z
.graph
a+ y+ z+
b+ y+ z+
y+ a- b-
z+ a- b-
a- y- z-
b- y- z-
y- a+ b+
z- a+ b+
.marking { <y-,a+> <y-,b+> <z-,a+> <z-,b+> }
.end
`
	for _, mode := range []struct {
		name  string
		share bool
	}{{"private", false}, {"shared", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := synth.FromSTGSource(forkSpec, synth.Options{Share: mode.share})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.OK() {
					b.Fatal("must verify")
				}
				if i == 0 {
					b.ReportMetric(float64(rep.Stats.Ands), "ANDs")
				}
			}
		})
	}
}

// BenchmarkCvsRS is the latch-style ablation: C-element versus RS-latch
// implementations across the Table-1 suite (cost and verification-space
// differences).
func BenchmarkCvsRS(b *testing.B) {
	for _, mode := range []struct {
		name string
		rs   bool
	}{{"C", false}, {"RS", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inv, lits := 0, 0
				for _, name := range []string{"Delement", "luciano", "berkel2"} {
					e, _ := benchdata.Table1ByName(name)
					rep, err := synth.FromSTG(e.STG(), synth.Options{RS: mode.rs})
					if err != nil {
						b.Fatal(err)
					}
					if !rep.OK() {
						b.Fatal("must verify")
					}
					inv += rep.Stats.Inverters
					lits += rep.Stats.Literals
				}
				if i == 0 {
					b.ReportMetric(float64(inv), "inverters")
					b.ReportMetric(float64(lits), "literals")
				}
			}
		})
	}
}

// BenchmarkCSCvsMC is the target ablation: state signals needed to
// establish Complete State Coding (enough for complex gates) versus the
// Monotonous Cover requirement (needed for basic gates). Figure 1 is
// the separating case: CSC holds with zero insertions while MC needs
// one.
func BenchmarkCSCvsMC(b *testing.B) {
	graphs := map[string]func() *sg.Graph{
		"fig1":     benchdata.Fig1SG,
		"fig4":     benchdata.Fig4SG,
		"Delement": func() *sg.Graph { e, _ := benchdata.Table1ByName("Delement"); g, _ := stg.BuildSG(e.STG()); return g },
	}
	for _, mode := range []struct {
		name   string
		target encode.Target
	}{{"csc", encode.TargetCSC}, {"mc", encode.TargetMC}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := 0
				for name, mk := range graphs {
					res, err := encode.Repair(mk(), encode.Options{Target: mode.target})
					if err != nil {
						b.Fatalf("%s: %v", name, err)
					}
					total += len(res.Added)
				}
				if i == 0 {
					b.ReportMetric(float64(total), "signals")
				}
			}
		})
	}
}

// BenchmarkDecompose is the fan-in ablation: bounded-fan-in trees of the
// MC implementation preserve function but break speed-independence
// wherever a gate actually splits — the paper's architectural reason for
// one AND gate per excitation region.
func BenchmarkDecompose(b *testing.B) {
	e, _ := benchdata.Table1ByName("berkel2")
	g, err := stg.BuildSG(e.STG())
	if err != nil {
		b.Fatal(err)
	}
	rep, err := synth.FromGraph(g, synth.Options{SkipVerify: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		d, err := netlist.Decompose(rep.Netlist, 2)
		if err != nil {
			b.Fatal(err)
		}
		res := verify.Check(d, rep.Final)
		if res.OK() {
			b.Fatal("fan-in-2 decomposition must hazard")
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Hazards)), "hazards")
		}
	}
}

// BenchmarkSimulate measures the random-delay SI simulator on the
// repaired Figure-4 circuit.
func BenchmarkSimulate(b *testing.B) {
	rep, err := synth.FromGraph(benchdata.Fig4SG(), synth.Options{SkipVerify: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res := sim.Run(rep.Netlist, rep.Final, sim.Config{Seed: int64(i), MaxEvents: 2000})
		if !res.OK() {
			b.Fatalf("MC circuit hazarded in simulation: %s", res)
		}
	}
}

// BenchmarkComplexGateBaseline measures the Chu-style reference
// implementation across the Table-1 suite.
func BenchmarkComplexGateBaseline(b *testing.B) {
	var graphs []*sg.Graph
	for _, name := range []string{"mp-forward-pkt", "berkel2", "Delement"} {
		e, _ := benchdata.Table1ByName(name)
		g, err := stg.BuildSG(e.STG())
		if err != nil {
			b.Fatal(err)
		}
		if !g.CSC() {
			continue // complex gates need CSC; skip conflicting specs
		}
		graphs = append(graphs, g)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			nl, err := baseline.ComplexGate(g)
			if err != nil {
				b.Fatal(err)
			}
			if !verify.Check(nl, g).OK() {
				b.Fatal("complex gates must verify")
			}
		}
	}
}

// BenchmarkExactVsHeuristicMinimize compares the espresso-style
// heuristic minimizer with the SAT-based exact covering solver on the
// baseline excitation functions of Figure 1.
func BenchmarkExactVsHeuristicMinimize(b *testing.B) {
	g := benchdata.Fig1SG()
	b.Run("heuristic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fns, err := baseline.SOP(g)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				lits := 0
				for _, f := range fns {
					lits += f.Set.LiteralCount() + f.Reset.LiteralCount()
				}
				b.ReportMetric(float64(lits), "literals")
			}
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fns, err := baseline.SOPExact(g)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				lits := 0
				for _, f := range fns {
					lits += f.Set.LiteralCount() + f.Reset.LiteralCount()
				}
				b.ReportMetric(float64(lits), "literals")
			}
		}
	})
}

// BenchmarkInverterMapping measures the explicit-inverter transform plus
// the untimed verification showing it breaks SI (the paper's
// "justification of input inversions" discussion).
func BenchmarkInverterMapping(b *testing.B) {
	e, _ := benchdata.Table1ByName("berkel2")
	g, err := stg.BuildSG(e.STG())
	if err != nil {
		b.Fatal(err)
	}
	rep, err := synth.FromGraph(g, synth.Options{SkipVerify: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		inv := netlist.ExplicitInverters(rep.Netlist)
		if verify.Check(inv, rep.Final).OK() {
			b.Fatal("explicit inverters must break untimed SI here")
		}
	}
}

// BenchmarkReachability measures STG token-game reachability and signal
// value inference alone.
func BenchmarkReachability(b *testing.B) {
	net := benchdata.GenBufferChain(24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := stg.BuildSG(net); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildSG measures reachability + encoding inference on every
// Table-1 benchmark (parsing outside the loop) and on a 24-stage buffer
// chain, the largest marking space in the suite.
func BenchmarkBuildSG(b *testing.B) {
	nets := map[string]*stg.STG{"chain24": benchdata.GenBufferChain(24)}
	order := []string{}
	for _, e := range benchdata.Table1 {
		nets[e.Name] = e.STG()
		order = append(order, e.Name)
	}
	order = append(order, "chain24")
	for _, name := range order {
		net := nets[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := stg.BuildSG(net); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckLimit measures composed-state verification alone: every
// Table-1 benchmark's synthesized MC implementation re-verified against
// its final specification, plus the k=8 fork (512 composed states).
func BenchmarkCheckLimit(b *testing.B) {
	type target struct {
		name string
		nl   *netlist.Netlist
		g    *sg.Graph
	}
	var targets []target
	for _, e := range benchdata.Table1 {
		rep, err := synth.FromSTG(e.STG(), synth.Options{SkipVerify: true})
		if err != nil {
			b.Fatal(err)
		}
		targets = append(targets, target{e.Name, rep.Netlist, rep.Final})
	}
	{
		net := benchdata.GenParallelizer(8)
		g, err := stg.BuildSG(net)
		if err != nil {
			b.Fatal(err)
		}
		rep := core.NewAnalyzer(g).CheckGraph()
		nl, err := netlist.Build(g, mcFunctions(b, g, rep), netlist.Options{})
		if err != nil {
			b.Fatal(err)
		}
		targets = append(targets, target{"fork8", nl, g})
	}
	for _, tg := range targets {
		b.Run(tg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !verify.Check(tg.nl, tg.g).OK() {
					b.Fatal("must verify")
				}
			}
		})
	}
}

// BenchmarkCubeMinimize measures the two-level minimizer substrate on
// random 8-variable covers.
func BenchmarkCubeMinimize(b *testing.B) {
	rr := rand.New(rand.NewSource(7))
	var covers []cube.Cover
	for k := 0; k < 16; k++ {
		c := cube.NewCover(8)
		for j := 0; j < 12; j++ {
			q := cube.NewFull(8)
			for v := 0; v < 8; v++ {
				switch rr.Intn(3) {
				case 0:
					q.Set(v, cube.Zero)
				case 1:
					q.Set(v, cube.One)
				}
			}
			c.Add(q)
		}
		covers = append(covers, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cube.Minimize(covers[i%len(covers)], cube.NewCover(8))
	}
}

// BenchmarkSATSolver measures the CDCL substrate on satisfiable random
// 3-SAT near the easy side of the phase transition.
func BenchmarkSATSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rr := rand.New(rand.NewSource(int64(i)))
		s := sat.New()
		const n = 60
		for v := 0; v < n; v++ {
			s.NewVar()
		}
		for c := 0; c < 3*n; c++ {
			var cl [3]sat.Lit
			for j := range cl {
				v := 1 + rr.Intn(n)
				if rr.Intn(2) == 0 {
					cl[j] = sat.Lit(v)
				} else {
					cl[j] = sat.Lit(-v)
				}
			}
			s.AddClause(cl[0], cl[1], cl[2])
		}
		s.Solve()
	}
}
