package repro

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/stg"
)

// TestDataCorpusRoundTrips checks the on-disk .g corpus: every file
// parses, builds the same state graph as the embedded benchmark
// definition, and survives a format → parse round trip.
func TestDataCorpusRoundTrips(t *testing.T) {
	files, err := filepath.Glob("testdata/*.g")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(benchdata.Table1) {
		t.Fatalf("corpus has %d files, want %d", len(files), len(benchdata.Table1))
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		net, err := stg.Parse(string(data))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		g, err := stg.BuildSG(net)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".g")
		e, ok := benchdata.Table1ByName(name)
		if !ok {
			t.Fatalf("%s: not a Table-1 benchmark", name)
		}
		g2, err := stg.BuildSG(e.STG())
		if err != nil {
			t.Fatal(err)
		}
		if g.NumStates() != g2.NumStates() || g.NumSignals() != g2.NumSignals() {
			t.Errorf("%s: file gives %d states/%d signals, embedded %d/%d",
				name, g.NumStates(), g.NumSignals(), g2.NumStates(), g2.NumSignals())
		}
		// Round trip through the writer.
		again, err := stg.Parse(net.Format())
		if err != nil {
			t.Fatalf("%s: reformatted source does not parse: %v", name, err)
		}
		g3, err := stg.BuildSG(again)
		if err != nil {
			t.Fatalf("%s: reformatted source does not build: %v", name, err)
		}
		if g3.NumStates() != g.NumStates() {
			t.Errorf("%s: round trip changed the state count", name)
		}
	}
}
