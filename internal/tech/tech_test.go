package tech_test

import (
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/netlist"
	"repro/internal/sg"
	"repro/internal/stg"
	"repro/internal/synth"
	"repro/internal/tech"
)

func synthFor(t *testing.T, name string) (*netlist.Netlist, *sg.Graph) {
	t.Helper()
	e, ok := benchdata.Table1ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	g, err := stg.BuildSG(e.STG())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := synth.FromGraph(g, synth.Options{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Netlist, rep.Final
}

func TestMapIdentity(t *testing.T) {
	nl, spec := synthFor(t, "Delement")
	res, err := tech.Map(nl, spec, tech.Library{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UntimedSI {
		t.Fatal("identity mapping must stay speed-independent")
	}
	if len(res.Obligations) != 0 {
		t.Fatalf("identity mapping needs no obligations: %v", res.Obligations)
	}
	if res.Area <= 0 || len(res.Cells) == 0 {
		t.Fatalf("degenerate report: %+v", res)
	}
}

func TestMapWithInverters(t *testing.T) {
	nl, spec := synthFor(t, "berkel2")
	res, err := tech.Map(nl, spec, tech.Library{ExplicitInverters: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.UntimedSI {
		t.Fatal("explicit inverters must break untimed SI here")
	}
	if len(res.Obligations) != 1 {
		t.Fatalf("expected the inverter obligation, got %v", res.Obligations)
	}
	if !strings.Contains(res.Obligations[0].Rule, "d_inv") {
		t.Fatalf("rule = %q", res.Obligations[0].Rule)
	}
	if res.Cells["INV"] == 0 {
		t.Fatalf("inverter cells missing: %v", res.Cells)
	}
	// The paper's constraint restores hazard freedom: honoring the
	// obligation in simulation yields clean runs.
	if err := tech.ValidateObligations(res, spec, 15); err != nil {
		t.Fatal(err)
	}
}

func TestMapWithFaninBound(t *testing.T) {
	nl, spec := synthFor(t, "duplicator")
	if nl.MaxFanin() <= 2 {
		t.Skip("benchmark has no wide gates")
	}
	res, err := tech.Map(nl, spec, tech.Library{MaxFanin: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Netlist.MaxFanin() > 2 {
		t.Fatal("fan-in bound not enforced")
	}
	if res.UntimedSI {
		t.Fatal("fan-in decomposition must break untimed SI here")
	}
	found := false
	for _, o := range res.Obligations {
		if strings.Contains(o.Rule, "d_tree") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing the tree obligation: %v", res.Obligations)
	}
	if err := tech.ValidateObligations(res, spec, 15); err != nil {
		t.Fatal(err)
	}
}

func TestMapFullLibrary(t *testing.T) {
	nl, spec := synthFor(t, "Delement")
	res, err := tech.Map(nl, spec, tech.Library{MaxFanin: 2, ExplicitInverters: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); !strings.Contains(s, "area") || !strings.Contains(s, "obligation") {
		t.Errorf("summary rendering:\n%s", s)
	}
	if err := tech.ValidateObligations(res, spec, 10); err != nil {
		t.Fatal(err)
	}
}

func TestMapObligationsNotAlwaysSufficient(t *testing.T) {
	// An honest negative result: combining fan-in decomposition WITH
	// explicit inverters on nowick leaves a residual race that the two
	// local obligations do not cover (an excitation-function pulse
	// disabling a latch mid-reset). The paper's relational constraint is
	// stated for the inverter-only mapping of the standard
	// implementation; SI-preserving full technology mapping is a harder
	// problem, and the validator exposes it rather than hiding it.
	nl, spec := synthFor(t, "nowick")
	res, err := tech.Map(nl, spec, tech.Library{MaxFanin: 2, ExplicitInverters: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tech.ValidateObligations(res, spec, 10); err == nil {
		t.Skip("mapping validated on this run; the residual race did not fire")
	}
}
