// Package tech performs technology mapping of the standard
// implementations onto a bounded-fan-in gate library: wide AND/OR gates
// are decomposed into trees, input bubbles become explicit inverters,
// and an area estimate is produced.
//
// Mapping is where speed-independence meets reality: the paper proves
// the UNMAPPED standard implementation hazard-free, notes that separate
// input inverters break pure speed-independence, and justifies them with
// the relative timing constraint d_inv^max < D_sn^min. This package
// makes those residues explicit: every mapping step that is not
// SI-preserving emits a timing Obligation, and ValidateObligations
// checks the mapped circuit by random-delay simulation under delay
// assignments that honour the obligations.
package tech

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
	"repro/internal/sg"
	"repro/internal/sim"
	"repro/internal/verify"
)

// Library describes the target cell library.
type Library struct {
	// MaxFanin bounds AND/OR fan-in (0 = unbounded, no decomposition).
	MaxFanin int
	// ExplicitInverters replaces pin bubbles by inverter cells.
	ExplicitInverters bool
}

// Obligation is a relative-timing assumption the mapped circuit needs
// because a mapping step is not speed-independence preserving.
type Obligation struct {
	// Gates lists the affected gate indices in the mapped netlist.
	Gates []int
	// Rule is the constraint, e.g. "d_inv^max < D_sn^min".
	Rule string
	// Why explains the hazard avoided.
	Why string
}

// Result is the outcome of mapping.
type Result struct {
	Netlist     *netlist.Netlist
	Cells       map[string]int
	Area        float64
	Obligations []Obligation
	// UntimedSI reports whether the mapped circuit is still
	// speed-independent without any timing assumption.
	UntimedSI bool
}

// String renders a mapping summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "area %.1f, cells:", r.Area)
	for _, k := range []string{"AND", "OR", "NOR", "INV", "C", "RS", "WIRE"} {
		if n := r.Cells[k]; n > 0 {
			fmt.Fprintf(&b, " %s×%d", k, n)
		}
	}
	fmt.Fprintf(&b, "\nuntimed speed-independent: %v\n", r.UntimedSI)
	for _, o := range r.Obligations {
		fmt.Fprintf(&b, "timing obligation (%d gates): %s — %s\n", len(o.Gates), o.Rule, o.Why)
	}
	return b.String()
}

// area per cell kind; AND/OR pay per input.
func cellArea(g netlist.Gate) float64 {
	switch g.Kind {
	case netlist.And, netlist.Or, netlist.Nor:
		return 1 + 0.5*float64(len(g.Pins))
	case netlist.Wire:
		return 0.5
	case netlist.CElem:
		return 3
	case netlist.RSLatch:
		return 2
	case netlist.Complex:
		return 2 + float64(g.Fn.LiteralCount())
	default:
		return 1
	}
}

// Map applies the library constraints to the netlist and verifies the
// result against the specification.
func Map(nl *netlist.Netlist, spec *sg.Graph, lib Library) (*Result, error) {
	mapped := nl
	var obligations []Obligation

	if lib.ExplicitInverters {
		mapped = netlist.ExplicitInverters(mapped)
		invs := mapped.InverterGates()
		if len(invs) > 0 {
			obligations = append(obligations, Obligation{
				Gates: invs,
				Rule:  "d_inv^max < D_sn^min",
				Why: "a separate input inverter is an unacknowledged gate; the paper's " +
					"relational constraint keeps every inverter faster than any signal network",
			})
		}
	}
	if lib.MaxFanin >= 2 {
		before := len(mapped.Gates)
		d, err := netlist.Decompose(mapped, lib.MaxFanin)
		if err != nil {
			return nil, err
		}
		if len(d.Gates) > before {
			// Decomposition names internal tree nodes "<base>[level.idx]".
			var internal []int
			for gi := range d.Gates {
				if strings.Contains(d.Gates[gi].Name, "[") {
					internal = append(internal, gi)
				}
			}
			obligations = append(obligations, Obligation{
				Gates: internal,
				Rule:  "d_tree^max < D_env^min",
				Why: "internal tree nodes compute sub-cubes wider than the monotonous cover " +
					"and can be disabled; they must settle before the environment reacts",
			})
		}
		mapped = d
	}

	res := &Result{Netlist: mapped, Cells: map[string]int{}}
	for _, g := range mapped.Gates {
		name := g.Kind.String()
		if g.Kind == netlist.Wire && len(g.Pins) == 1 && g.Pins[0].Invert {
			name = "INV"
		}
		res.Cells[name]++
		res.Area += cellArea(g)
	}
	res.Obligations = obligations
	// Hazardous mapped circuits can have very large composed state
	// spaces; a bounded exploration is enough for the verdict (a
	// truncated run is conservatively reported as not SI).
	res.UntimedSI = verify.CheckLimit(mapped, spec, 1<<16).OK()
	return res, nil
}

// ValidateObligations simulates the mapped circuit over the given seeds
// with delay assignments honouring every obligation (obligated gates
// pinned fast) and reports the first failure, or nil when all runs are
// clean — the empirical counterpart of the paper's claim that the
// relational constraint restores hazard freedom.
func ValidateObligations(res *Result, spec *sg.Graph, seeds int) error {
	inject := map[int]float64{}
	for _, o := range res.Obligations {
		for _, gi := range o.Gates {
			inject[gi] = 0.01 // far below the default [1,10) gate delays
		}
	}
	for seed := 0; seed < seeds; seed++ {
		r := sim.Run(res.Netlist, spec, sim.Config{
			Seed:        int64(seed),
			MaxEvents:   2000,
			InjectDelay: inject,
		})
		if !r.OK() {
			return fmt.Errorf("tech: obligation validation failed at seed %d: %s", seed, r)
		}
	}
	return nil
}
