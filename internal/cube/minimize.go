package cube

import "sort"

// Minimize returns a near-minimal SOP cover of the incompletely specified
// function with ON-set cover on and don't-care cover dc, using an
// espresso-style EXPAND / IRREDUNDANT / REDUCE loop. The result covers
// every minterm of on, lies inside on ∪ dc, and contains no single
// redundant cube.
func Minimize(on, dc Cover) Cover {
	if on.IsEmpty() {
		return Cover{n: on.n}
	}
	off := on.Union(dc).Complement().SCC()
	// The ON-set is authoritative: minterms in both on and dc must still
	// be covered, so only the dc part outside on is truly optional.
	dc = dc.IntersectCover(on.Complement()).SCC()
	f := on.Clone().SCC()

	f = Expand(f, off)
	f = Irredundant(f, dc)
	bestCubes, bestLits := f.Len(), f.LiteralCount()
	best := f.Clone()

	for iter := 0; iter < 8; iter++ {
		f = Reduce(f, dc)
		f = Expand(f, off)
		f = Irredundant(f, dc)
		c, l := f.Len(), f.LiteralCount()
		if c < bestCubes || (c == bestCubes && l < bestLits) {
			bestCubes, bestLits = c, l
			best = f.Clone()
			continue
		}
		break
	}
	return best
}

// Expand enlarges each cube of f into a prime implicant by removing
// literals while the cube stays disjoint from the OFF-set cover off.
// Cubes that become contained in an earlier expanded cube are dropped.
func Expand(f Cover, off Cover) Cover {
	cubes := make([]Cube, f.Len())
	for i, q := range f.cubes {
		cubes[i] = q.Clone()
	}
	// Expand the largest cubes first so smaller ones get absorbed.
	sort.SliceStable(cubes, func(i, j int) bool {
		return cubes[i].LiteralCount() < cubes[j].LiteralCount()
	})
	r := Cover{n: f.n}
	for _, q := range cubes {
		covered := false
		for _, p := range r.cubes {
			if p.Contains(q) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		r.cubes = append(r.cubes, expandCube(q, off))
	}
	return r.SCC()
}

// expandCube removes literals from q one at a time — a removal is kept
// when the enlarged cube stays disjoint from the OFF-set — until the cube
// is prime.
func expandCube(q Cube, off Cover) Cube {
	q = q.Clone()
	for {
		removed := false
		for _, i := range q.Literals() {
			trial := q.Clone()
			trial.Set(i, Full)
			blocked := false
			for _, o := range off.cubes {
				if trial.Intersects(o) {
					blocked = true
					break
				}
			}
			if !blocked {
				q = trial
				removed = true
				break
			}
		}
		if !removed {
			return q
		}
	}
}

// Irredundant removes cubes that are covered by the rest of the cover
// together with the don't-care set, processing the largest cubes last so
// they are kept.
func Irredundant(f Cover, dc Cover) Cover {
	order := make([]int, f.Len())
	for i := range order {
		order[i] = i
	}
	// Try to drop the most specific (most literals) cubes first.
	sort.SliceStable(order, func(a, b int) bool {
		return f.cubes[order[a]].LiteralCount() > f.cubes[order[b]].LiteralCount()
	})
	dropped := make([]bool, f.Len())
	for _, i := range order {
		rest := Cover{n: f.n}
		for j, q := range f.cubes {
			if j != i && !dropped[j] {
				rest.cubes = append(rest.cubes, q)
			}
		}
		rest.cubes = append(rest.cubes, dc.cubes...)
		if rest.ContainsCube(f.cubes[i]) {
			dropped[i] = true
		}
	}
	r := Cover{n: f.n}
	for i, q := range f.cubes {
		if !dropped[i] {
			r.cubes = append(r.cubes, q)
		}
	}
	return r
}

// Reduce shrinks each cube to the smallest cube still covering the part of
// the function not covered by the other cubes, enabling a different
// expansion in the next pass.
func Reduce(f Cover, dc Cover) Cover {
	cur := f.Clone()
	// Reduce the largest cubes first.
	sort.SliceStable(cur.cubes, func(a, b int) bool {
		return cur.cubes[a].LiteralCount() < cur.cubes[b].LiteralCount()
	})
	for i := range cur.cubes {
		q := cur.cubes[i]
		rest := Cover{n: f.n}
		for j, p := range cur.cubes {
			if j != i {
				rest.cubes = append(rest.cubes, p)
			}
		}
		rest.cubes = append(rest.cubes, dc.cubes...)
		reduced := reduceCube(q, rest)
		if !reduced.IsEmpty() {
			cur.cubes[i] = reduced
		}
	}
	return cur
}

// reduceCube returns the smallest cube containing q ∧ ¬rest: the supercube
// of the complement of rest cofactored by q, intersected with q. When q is
// entirely covered by rest the result is empty.
func reduceCube(q Cube, rest Cover) Cube {
	g := rest.CofactorCube(q)
	if g.Tautology() {
		// q fully covered by the rest: reduces to the empty cube.
		return Cube{n: q.n, w: make([]uint64, len(q.w))}
	}
	comp := g.Complement()
	if comp.IsEmpty() {
		return q.Clone()
	}
	sup := comp.cubes[0].Clone()
	for _, c := range comp.cubes[1:] {
		sup = sup.Supercube(c)
	}
	return q.Intersect(sup)
}
