// Package cube implements single-output Boolean cube and cover algebra in
// the positional-cube (MV-2) representation, together with a two-level
// SOP minimizer in the espresso style (expand / irredundant / reduce).
//
// It is the Boolean substrate for the Monotonous Cover synthesis flow:
// region functions are cubes, excitation functions are covers, and the
// generalized-MC gate sharing of Section VI of the paper is driven by the
// minimizer in this package. No external EDA or Boolean-minimization
// library is used anywhere in the module.
//
// Each variable occupies two bits of a uint64 word:
//
//	01 — the variable appears complemented (must be 0),
//	10 — the variable appears uncomplemented (must be 1),
//	11 — the variable is absent from the cube (don't care),
//	00 — the empty (contradictory) value; a cube containing it is empty.
package cube

import (
	"fmt"
	"strings"
)

// Lit is the two-bit positional encoding of one variable inside a cube.
type Lit uint8

// Positional-cube literal values.
const (
	Empty Lit = 0 // contradictory: no value satisfies the cube
	Zero  Lit = 1 // variable must be 0 (complemented literal)
	One   Lit = 2 // variable must be 1 (positive literal)
	Full  Lit = 3 // variable absent (don't care)
)

// String returns "0", "1", "-" or "e" for the literal value.
func (l Lit) String() string {
	switch l {
	case Zero:
		return "0"
	case One:
		return "1"
	case Full:
		return "-"
	default:
		return "e"
	}
}

const varsPerWord = 32

// Cube is a conjunction of literals over n Boolean variables.
// The zero value is not usable; construct cubes with NewFull, NewMinterm,
// Parse or FromLits.
type Cube struct {
	n int
	w []uint64
}

func words(n int) int { return (n + varsPerWord - 1) / varsPerWord }

// fullWordMask returns the bit pattern of word i of an n-variable full cube.
func fullWordMask(n, i int) uint64 {
	lo := i * varsPerWord
	hi := lo + varsPerWord
	if hi > n {
		hi = n
	}
	if hi <= lo {
		return 0
	}
	k := uint(hi - lo)
	if k == varsPerWord {
		return ^uint64(0)
	}
	return (uint64(1) << (2 * k)) - 1
}

// NewFull returns the universal cube (all don't cares) over n variables.
func NewFull(n int) Cube {
	if n < 0 {
		panic("cube: negative variable count")
	}
	c := Cube{n: n, w: make([]uint64, words(n))}
	for i := range c.w {
		c.w[i] = fullWordMask(n, i)
	}
	return c
}

// NewMinterm returns the cube fixing every variable to the given value.
// len(values) determines the variable count.
func NewMinterm(values []bool) Cube {
	c := NewFull(len(values))
	for i, v := range values {
		if v {
			c.Set(i, One)
		} else {
			c.Set(i, Zero)
		}
	}
	return c
}

// WordsFor returns the number of backing words of an n-variable cube,
// letting callers batch-allocate storage for MintermInto.
func WordsFor(n int) int { return words(n) }

// MintermInto is NewMinterm writing into caller-provided backing words
// (len(w) must be WordsFor(len(values))).
func MintermInto(values []bool, w []uint64) Cube {
	c := Cube{n: len(values), w: w}
	c.Reset()
	for i, v := range values {
		if v {
			c.Set(i, One)
		} else {
			c.Set(i, Zero)
		}
	}
	return c
}

// FromLits builds a cube over n variables from an explicit literal map;
// variables not mentioned are don't cares.
func FromLits(n int, lits map[int]Lit) Cube {
	c := NewFull(n)
	for i, l := range lits { //reprolint:ordered writes hit disjoint variable positions; the resulting cube is order-independent
		c.Set(i, l)
	}
	return c
}

// N returns the number of variables of the cube's space.
func (c Cube) N() int { return c.n }

// Get returns the literal value of variable i.
func (c Cube) Get(i int) Lit {
	return Lit(c.w[i/varsPerWord] >> (2 * uint(i%varsPerWord)) & 3)
}

// Set assigns literal value l to variable i, in place.
func (c Cube) Set(i int, l Lit) {
	sh := 2 * uint(i%varsPerWord)
	c.w[i/varsPerWord] = c.w[i/varsPerWord]&^(3<<sh) | uint64(l)<<sh
}

// CopyFrom overwrites c with o's literals in place. Both cubes must be
// over the same variable count; search loops use it to recycle one
// scratch cube instead of cloning per candidate.
func (c Cube) CopyFrom(o Cube) {
	copy(c.w, o.w)
}

// Reset makes c the universal cube (all don't cares) again, in place.
func (c Cube) Reset() {
	for i := range c.w {
		c.w[i] = fullWordMask(c.n, i)
	}
}

// Clone returns an independent copy of the cube.
func (c Cube) Clone() Cube {
	d := Cube{n: c.n, w: make([]uint64, len(c.w))}
	copy(d.w, c.w)
	return d
}

// Equal reports whether the two cubes are identical.
func (c Cube) Equal(d Cube) bool {
	if c.n != d.n {
		return false
	}
	for i := range c.w {
		if c.w[i] != d.w[i] {
			return false
		}
	}
	return true
}

// IsEmpty reports whether the cube is contradictory (some variable has the
// empty value).
func (c Cube) IsEmpty() bool {
	for i, w := range c.w {
		full := fullWordMask(c.n, i)
		// A position is empty when both of its bits are zero. Detect any
		// 00 pair among the positions covered by full.
		pairs := (w | w>>1) & 0x5555555555555555 & full
		want := full & 0x5555555555555555
		if pairs != want {
			return true
		}
	}
	return false
}

// IsFull reports whether the cube is the universal cube.
func (c Cube) IsFull() bool {
	for i, w := range c.w {
		if w != fullWordMask(c.n, i) {
			return false
		}
	}
	return true
}

// Intersect returns the conjunction of c and d. The result may be empty;
// check with IsEmpty.
func (c Cube) Intersect(d Cube) Cube {
	if c.n != d.n {
		panic("cube: dimension mismatch in Intersect")
	}
	r := Cube{n: c.n, w: make([]uint64, len(c.w))}
	for i := range c.w {
		r.w[i] = c.w[i] & d.w[i]
	}
	return r
}

// Intersects reports whether c ∧ d is non-empty, without allocating.
func (c Cube) Intersects(d Cube) bool {
	if c.n != d.n {
		panic("cube: dimension mismatch in Intersects")
	}
	for i := range c.w {
		w := c.w[i] & d.w[i]
		full := fullWordMask(c.n, i)
		pairs := (w | w>>1) & 0x5555555555555555 & full
		if pairs != full&0x5555555555555555 {
			return false
		}
	}
	return true
}

// Contains reports whether c ⊇ d as sets of minterms (every literal of c
// is no more constraining than d's). An empty d is contained in anything.
func (c Cube) Contains(d Cube) bool {
	if c.n != d.n {
		panic("cube: dimension mismatch in Contains")
	}
	if d.IsEmpty() {
		return true
	}
	for i := range c.w {
		if c.w[i]|d.w[i] != c.w[i] {
			return false
		}
	}
	return true
}

// ContainsMinterm reports whether the minterm given by values lies in c.
func (c Cube) ContainsMinterm(values []bool) bool {
	if len(values) != c.n {
		panic("cube: dimension mismatch in ContainsMinterm")
	}
	for i, v := range values {
		l := c.Get(i)
		if v && l == Zero || !v && l == One || l == Empty {
			return false
		}
	}
	return true
}

// ContainsMintermCube reports whether c covers the minterm held by m, a
// cube with every variable assigned. In the positional encoding a cube
// covers a minterm exactly when every assigned lane of the minterm
// survives intersection, which is one mask test per word.
func (c Cube) ContainsMintermCube(m Cube) bool {
	for i, w := range m.w {
		if c.w[i]&w != w {
			return false
		}
	}
	return true
}

// Distance returns the number of variables in which c and d have disjoint
// literal values (the number of empty positions of c ∧ d). Distance 0
// means the cubes intersect; distance 1 means a consensus exists.
func (c Cube) Distance(d Cube) int {
	if c.n != d.n {
		panic("cube: dimension mismatch in Distance")
	}
	dist := 0
	for i := range c.w {
		w := c.w[i] & d.w[i]
		full := fullWordMask(c.n, i)
		pairs := ^(w | w>>1) & 0x5555555555555555 & full
		dist += popcount(pairs)
	}
	return dist
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Consensus returns the consensus cube of c and d and true when the two
// cubes are at distance exactly 1; otherwise it returns an empty cube and
// false.
func (c Cube) Consensus(d Cube) (Cube, bool) {
	if c.Distance(d) != 1 {
		return Cube{}, false
	}
	r := c.Intersect(d)
	for i := 0; i < c.n; i++ {
		if r.Get(i) == Empty {
			r.Set(i, Full)
			break
		}
	}
	return r, true
}

// Supercube returns the smallest cube containing both c and d
// (positionwise OR).
func (c Cube) Supercube(d Cube) Cube {
	if c.n != d.n {
		panic("cube: dimension mismatch in Supercube")
	}
	r := Cube{n: c.n, w: make([]uint64, len(c.w))}
	for i := range c.w {
		r.w[i] = c.w[i] | d.w[i]
	}
	return r
}

// Cofactor returns the Shannon cofactor of c with respect to cube p and
// true when it is non-empty; when c and p do not intersect the cofactor is
// empty and false is returned. Variables fixed in p become don't cares in
// the result.
func (c Cube) Cofactor(p Cube) (Cube, bool) {
	if !c.Intersects(p) {
		return Cube{}, false
	}
	r := c.Clone()
	for i := 0; i < c.n; i++ {
		if p.Get(i) != Full {
			r.Set(i, Full)
		}
	}
	return r, true
}

// LiteralCount returns the number of variables constrained by the cube
// (positions that are Zero or One).
func (c Cube) LiteralCount() int {
	k := 0
	for i := 0; i < c.n; i++ {
		if l := c.Get(i); l == Zero || l == One {
			k++
		}
	}
	return k
}

// FreeCount returns the number of don't-care positions (the cube's
// dimension as a subspace).
func (c Cube) FreeCount() int {
	k := 0
	for i := 0; i < c.n; i++ {
		if c.Get(i) == Full {
			k++
		}
	}
	return k
}

// Literals returns the constrained positions of the cube in ascending
// variable order.
func (c Cube) Literals() []int {
	var out []int
	for i := 0; i < c.n; i++ {
		if l := c.Get(i); l == Zero || l == One {
			out = append(out, i)
		}
	}
	return out
}

// String renders the cube in dash notation, e.g. "1-0-" (variable 0
// first). An empty position renders as "e".
func (c Cube) String() string {
	var b strings.Builder
	for i := 0; i < c.n; i++ {
		b.WriteString(c.Get(i).String())
	}
	return b.String()
}

// StringNamed renders the cube as a product of named literals, e.g.
// "a b' d". The empty product renders as "1"; an empty cube as "0".
func (c Cube) StringNamed(names []string) string {
	if len(names) != c.n {
		panic("cube: name count mismatch")
	}
	if c.IsEmpty() {
		return "0"
	}
	var parts []string
	for i := 0; i < c.n; i++ {
		switch c.Get(i) {
		case Zero:
			parts = append(parts, names[i]+"'")
		case One:
			parts = append(parts, names[i])
		}
	}
	if len(parts) == 0 {
		return "1"
	}
	return strings.Join(parts, " ")
}

// Parse builds a cube from dash notation ("1-0"); the string length sets
// the variable count.
func Parse(s string) (Cube, error) {
	c := NewFull(len(s))
	for i, r := range s {
		switch r {
		case '0':
			c.Set(i, Zero)
		case '1':
			c.Set(i, One)
		case '-':
			// don't care
		default:
			return Cube{}, fmt.Errorf("cube: invalid character %q at position %d", r, i)
		}
	}
	return c, nil
}

// MustParse is Parse that panics on malformed input; for tests and
// embedded tables.
func MustParse(s string) Cube {
	c, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}
