package cube

import (
	"sort"
	"strings"
)

// Cover is a sum of cubes over a common variable space. The nil or empty
// cover is the constant-0 function.
type Cover struct {
	n     int
	cubes []Cube
}

// NewCover returns an empty (constant-0) cover over n variables.
func NewCover(n int) Cover { return Cover{n: n} }

// CoverOf builds a cover from the given cubes, which must share a variable
// count. Empty cubes are dropped.
func CoverOf(cubes ...Cube) Cover {
	if len(cubes) == 0 {
		return Cover{}
	}
	c := Cover{n: cubes[0].n}
	for _, q := range cubes {
		c.Add(q)
	}
	return c
}

// N returns the variable count of the cover's space.
func (c Cover) N() int { return c.n }

// Len returns the number of cubes.
func (c Cover) Len() int { return len(c.cubes) }

// Cube returns the i-th cube.
func (c Cover) Cube(i int) Cube { return c.cubes[i] }

// Cubes returns the underlying cube slice (not a copy).
func (c Cover) Cubes() []Cube { return c.cubes }

// Add appends a cube unless it is empty.
func (c *Cover) Add(q Cube) {
	if c.n == 0 && len(c.cubes) == 0 {
		c.n = q.n
	}
	if q.n != c.n {
		panic("cube: dimension mismatch in Cover.Add")
	}
	if q.IsEmpty() {
		return
	}
	c.cubes = append(c.cubes, q)
}

// Clone returns a deep copy of the cover.
func (c Cover) Clone() Cover {
	d := Cover{n: c.n, cubes: make([]Cube, len(c.cubes))}
	for i, q := range c.cubes {
		d.cubes[i] = q.Clone()
	}
	return d
}

// IsEmpty reports whether the cover is the constant-0 function.
func (c Cover) IsEmpty() bool { return len(c.cubes) == 0 }

// EvalMinterm reports whether the cover contains the given minterm.
func (c Cover) EvalMinterm(values []bool) bool {
	for _, q := range c.cubes {
		if q.ContainsMinterm(values) {
			return true
		}
	}
	return false
}

// ContainsCube reports whether the cover contains every minterm of cube q
// (single- plus multi-cube containment, decided by tautology of the
// cofactor).
func (c Cover) ContainsCube(q Cube) bool {
	if q.IsEmpty() {
		return true
	}
	return c.CofactorCube(q).Tautology()
}

// LiteralCount returns the total number of literals over all cubes.
func (c Cover) LiteralCount() int {
	k := 0
	for _, q := range c.cubes {
		k += q.LiteralCount()
	}
	return k
}

// CofactorCube returns the cover's Shannon cofactor with respect to cube p.
func (c Cover) CofactorCube(p Cube) Cover {
	r := Cover{n: c.n}
	for _, q := range c.cubes {
		if cf, ok := q.Cofactor(p); ok {
			r.cubes = append(r.cubes, cf)
		}
	}
	return r
}

// varCube returns the single-literal cube x_i = v.
func varCube(n, i int, v Lit) Cube {
	c := NewFull(n)
	c.Set(i, v)
	return c
}

// mostBinate returns the index of the variable on which to split in unate
// recursion: the variable appearing in the most cubes, preferring ones
// that appear in both phases. Returns -1 when the cover is unate with no
// constrained variable (all don't care).
func (c Cover) mostBinate() int {
	if len(c.cubes) == 0 {
		return -1
	}
	n := c.n
	pos := make([]int, n)
	neg := make([]int, n)
	for _, q := range c.cubes {
		for i := 0; i < n; i++ {
			switch q.Get(i) {
			case One:
				pos[i]++
			case Zero:
				neg[i]++
			}
		}
	}
	best, bestScore, binate := -1, -1, false
	for i := 0; i < n; i++ {
		if pos[i]+neg[i] == 0 {
			continue
		}
		isBinate := pos[i] > 0 && neg[i] > 0
		score := pos[i] + neg[i]
		switch {
		case isBinate && !binate:
			best, bestScore, binate = i, score, true
		case isBinate == binate && score > bestScore:
			best, bestScore = i, score
		}
	}
	return best
}

// Tautology reports whether the cover equals the constant-1 function,
// using unate recursion.
func (c Cover) Tautology() bool {
	// Quick exits.
	for _, q := range c.cubes {
		if q.IsFull() {
			return true
		}
	}
	if len(c.cubes) == 0 {
		return false
	}
	i := c.mostBinate()
	if i < 0 {
		// All cubes are full; handled above, so the cover has at least
		// one constrained variable unless it was empty.
		return false
	}
	// Unate reduction: if variable i is unate, a tautology must remain a
	// tautology when the literal is removed only if some cube without the
	// literal covers; simplest correct route is plain Shannon expansion.
	c0 := c.CofactorCube(varCube(c.n, i, Zero))
	if !c0.Tautology() {
		return false
	}
	c1 := c.CofactorCube(varCube(c.n, i, One))
	return c1.Tautology()
}

// Complement returns a cover of the complement of c, by unate-recursive
// Shannon expansion.
func (c Cover) Complement() Cover {
	return complementRec(c, NewFull(c.n))
}

// complementRec returns the complement of c restricted to the subspace
// cube, expressed as cubes inside that subspace.
func complementRec(c Cover, space Cube) Cover {
	// Terminal cases.
	if len(c.cubes) == 0 {
		return CoverOf(space.Clone())
	}
	for _, q := range c.cubes {
		if q.IsFull() {
			return Cover{n: c.n}
		}
	}
	if len(c.cubes) == 1 {
		return complementCubeIn(c.cubes[0], space)
	}
	i := c.mostBinate()
	if i < 0 {
		return Cover{n: c.n}
	}
	r := Cover{n: c.n}
	for _, v := range []Lit{Zero, One} {
		sub := space.Clone()
		sub.Set(i, v)
		part := complementRec(c.CofactorCube(varCube(c.n, i, v)), sub)
		r.cubes = append(r.cubes, part.cubes...)
	}
	return r
}

// complementCubeIn returns the complement of a single cube restricted to
// the given subspace.
func complementCubeIn(q Cube, space Cube) Cover {
	r := Cover{n: q.n}
	for i := 0; i < q.n; i++ {
		l := q.Get(i)
		if l != Zero && l != One {
			continue
		}
		out := space.Clone()
		if l == Zero {
			out.Set(i, One)
		} else {
			out.Set(i, Zero)
		}
		if !out.IsEmpty() {
			r.cubes = append(r.cubes, out)
		}
	}
	return r
}

// SCC removes single-cube-contained cubes: any cube contained in another
// single cube of the cover is dropped.
func (c Cover) SCC() Cover {
	keep := make([]bool, len(c.cubes))
	for i := range keep {
		keep[i] = true
	}
	for i, qi := range c.cubes {
		if !keep[i] {
			continue
		}
		for j, qj := range c.cubes {
			if i == j || !keep[j] {
				continue
			}
			if qi.Contains(qj) && !(qj.Contains(qi) && j < i) {
				keep[j] = false
			}
		}
	}
	r := Cover{n: c.n}
	for i, q := range c.cubes {
		if keep[i] {
			r.cubes = append(r.cubes, q)
		}
	}
	return r
}

// Union returns the cube-list union of two covers.
func (c Cover) Union(d Cover) Cover {
	if c.n != d.n && c.Len() > 0 && d.Len() > 0 {
		panic("cube: dimension mismatch in Union")
	}
	n := c.n
	if n == 0 {
		n = d.n
	}
	r := Cover{n: n}
	r.cubes = append(r.cubes, c.cubes...)
	r.cubes = append(r.cubes, d.cubes...)
	return r
}

// IntersectCover returns a cover of the Boolean AND of two covers.
func (c Cover) IntersectCover(d Cover) Cover {
	r := Cover{n: c.n}
	for _, a := range c.cubes {
		for _, b := range d.cubes {
			x := a.Intersect(b)
			if !x.IsEmpty() {
				r.cubes = append(r.cubes, x)
			}
		}
	}
	return r.SCC()
}

// Equivalent reports whether two covers denote the same Boolean function.
func (c Cover) Equivalent(d Cover) bool {
	for _, q := range c.cubes {
		if !d.ContainsCube(q) {
			return false
		}
	}
	for _, q := range d.cubes {
		if !c.ContainsCube(q) {
			return false
		}
	}
	return true
}

// Disjoint reports whether the two covers share no minterm.
func (c Cover) Disjoint(d Cover) bool {
	for _, a := range c.cubes {
		for _, b := range d.cubes {
			if a.Intersects(b) {
				return false
			}
		}
	}
	return true
}

// String renders the cover as newline-separated dash-notation cubes in a
// canonical (sorted) order; the constant-0 cover renders as "(empty)".
func (c Cover) String() string {
	if len(c.cubes) == 0 {
		return "(empty)"
	}
	lines := make([]string, len(c.cubes))
	for i, q := range c.cubes {
		lines[i] = q.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// StringNamed renders the cover as a sum of named products, e.g.
// "a b' + c d".
func (c Cover) StringNamed(names []string) string {
	if len(c.cubes) == 0 {
		return "0"
	}
	parts := make([]string, len(c.cubes))
	for i, q := range c.cubes {
		parts[i] = q.StringNamed(names)
	}
	sort.Strings(parts)
	return strings.Join(parts, " + ")
}
