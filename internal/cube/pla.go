package cube

import (
	"bufio"
	"fmt"
	"strings"
)

// WritePLA renders a single-output incompletely-specified function in
// the Berkeley espresso PLA format: ON-set rows with output 1,
// don't-care rows with output -. names, when non-nil, emits .ilb/.ob
// labels.
func WritePLA(on, dc Cover, names []string, outName string) string {
	n := on.N()
	if n == 0 {
		n = dc.N()
	}
	var b strings.Builder
	fmt.Fprintf(&b, ".i %d\n.o 1\n", n)
	if names != nil {
		fmt.Fprintf(&b, ".ilb %s\n", strings.Join(names, " "))
	}
	if outName != "" {
		fmt.Fprintf(&b, ".ob %s\n", outName)
	}
	fmt.Fprintf(&b, ".p %d\n", on.Len()+dc.Len())
	for _, c := range on.Cubes() {
		fmt.Fprintf(&b, "%s 1\n", c.String())
	}
	for _, c := range dc.Cubes() {
		fmt.Fprintf(&b, "%s -\n", c.String())
	}
	b.WriteString(".e\n")
	return b.String()
}

// ReadPLA parses a single-output PLA: rows with output 1 go to the
// ON-set, rows with - to the don't-care set, rows with 0 to the OFF-set
// (returned for completeness; espresso type-fr input usually implies it).
func ReadPLA(src string) (on, dc, off Cover, names []string, err error) {
	sc := bufio.NewScanner(strings.NewReader(src))
	n := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, ".i "):
			if _, e := fmt.Sscanf(fields[1], "%d", &n); e != nil {
				return on, dc, off, names, fmt.Errorf("pla: line %d: bad .i", lineNo)
			}
			on, dc, off = NewCover(n), NewCover(n), NewCover(n)
		case strings.HasPrefix(line, ".o "):
			var outs int
			fmt.Sscanf(fields[1], "%d", &outs)
			if outs != 1 {
				return on, dc, off, names, fmt.Errorf("pla: only single-output PLAs supported, got %d", outs)
			}
		case fields[0] == ".ilb":
			names = append([]string(nil), fields[1:]...)
		case fields[0] == ".ob", fields[0] == ".p", fields[0] == ".type":
			// informational
		case line == ".e" || line == ".end":
			return on, dc, off, names, nil
		case strings.HasPrefix(line, "."):
			return on, dc, off, names, fmt.Errorf("pla: line %d: unsupported directive %q", lineNo, fields[0])
		default:
			if n < 0 {
				return on, dc, off, names, fmt.Errorf("pla: line %d: cube before .i", lineNo)
			}
			if len(fields) != 2 || len(fields[0]) != n {
				return on, dc, off, names, fmt.Errorf("pla: line %d: malformed row %q", lineNo, line)
			}
			c, e := Parse(fields[0])
			if e != nil {
				return on, dc, off, names, fmt.Errorf("pla: line %d: %v", lineNo, e)
			}
			switch fields[1] {
			case "1":
				on.Add(c)
			case "-", "2", "~":
				dc.Add(c)
			case "0":
				off.Add(c)
			default:
				return on, dc, off, names, fmt.Errorf("pla: line %d: bad output %q", lineNo, fields[1])
			}
		}
	}
	if err := sc.Err(); err != nil {
		return on, dc, off, names, err
	}
	if n < 0 {
		return on, dc, off, names, fmt.Errorf("pla: missing .i header")
	}
	return on, dc, off, names, nil
}
