package cube

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPLARoundTrip(t *testing.T) {
	on := coverFrom("11-", "0-1")
	dc := coverFrom("10-")
	text := WritePLA(on, dc, []string{"a", "b", "c"}, "f")
	for _, want := range []string{".i 3", ".o 1", ".ilb a b c", ".ob f", "11- 1", "10- -", ".e"} {
		if !strings.Contains(text, want) {
			t.Errorf("PLA missing %q:\n%s", want, text)
		}
	}
	on2, dc2, _, names, err := ReadPLA(text)
	if err != nil {
		t.Fatal(err)
	}
	if !on2.Equivalent(on) {
		t.Error("ON-set changed in round trip")
	}
	if !dc2.Equivalent(dc) {
		t.Error("DC-set changed in round trip")
	}
	if len(names) != 3 || names[0] != "a" {
		t.Errorf("names = %v", names)
	}
}

func TestPLAOffRows(t *testing.T) {
	src := ".i 2\n.o 1\n10 1\n01 0\n11 -\n.e\n"
	on, dc, off, _, err := ReadPLA(src)
	if err != nil {
		t.Fatal(err)
	}
	if on.Len() != 1 || dc.Len() != 1 || off.Len() != 1 {
		t.Fatalf("sets = %d/%d/%d", on.Len(), dc.Len(), off.Len())
	}
}

func TestPLAErrors(t *testing.T) {
	cases := []string{
		"10 1\n.e\n",                 // cube before .i
		".i 2\n.o 2\n.e\n",           // multi-output
		".i 2\n.o 1\n1 1\n.e\n",      // wrong width
		".i 2\n.o 1\n1x 1\n.e\n",     // bad character
		".i 2\n.o 1\n10 3\n.e\n",     // bad output
		".i 2\n.o 1\n.phase 1\n.e\n", // unsupported directive
		"",                           // missing header
	}
	for _, src := range cases {
		if _, _, _, _, err := ReadPLA(src); err == nil {
			t.Errorf("accepted malformed PLA %q", src)
		}
	}
}

func TestQuickPLARoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(8)
		on := randomCover(rr, n, 1+rr.Intn(5))
		dc := randomCover(rr, n, rr.Intn(3))
		text := WritePLA(on, dc, nil, "")
		on2, dc2, _, _, err := ReadPLA(text)
		if err != nil {
			return false
		}
		return on2.Equivalent(on) && dc2.Equivalent(dc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
