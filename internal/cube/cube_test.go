package cube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLitString(t *testing.T) {
	cases := map[Lit]string{Zero: "0", One: "1", Full: "-", Empty: "e"}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("Lit(%d).String() = %q, want %q", l, got, want)
		}
	}
}

func TestNewFull(t *testing.T) {
	for _, n := range []int{0, 1, 5, 31, 32, 33, 64, 65, 100} {
		c := NewFull(n)
		if c.N() != n {
			t.Fatalf("N() = %d, want %d", c.N(), n)
		}
		for i := 0; i < n; i++ {
			if c.Get(i) != Full {
				t.Fatalf("n=%d: Get(%d) = %v, want Full", n, i, c.Get(i))
			}
		}
		if c.IsEmpty() {
			t.Errorf("n=%d: full cube reported empty", n)
		}
		if !c.IsFull() {
			t.Errorf("n=%d: full cube not reported full", n)
		}
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	c := NewFull(67)
	vals := []Lit{Zero, One, Full, Empty}
	for i := 0; i < 67; i++ {
		v := vals[i%4]
		c.Set(i, v)
		if got := c.Get(i); got != v {
			t.Fatalf("Get(%d) = %v after Set %v", i, got, v)
		}
	}
	// Re-set in reverse order with rotated values and re-check all.
	for i := 66; i >= 0; i-- {
		c.Set(i, vals[(i+1)%4])
	}
	for i := 0; i < 67; i++ {
		if got := c.Get(i); got != vals[(i+1)%4] {
			t.Fatalf("second pass Get(%d) = %v, want %v", i, got, vals[(i+1)%4])
		}
	}
}

func TestIsEmpty(t *testing.T) {
	c := NewFull(40)
	if c.IsEmpty() {
		t.Fatal("full cube is empty")
	}
	c.Set(35, Empty)
	if !c.IsEmpty() {
		t.Fatal("cube with Empty position not reported empty")
	}
	c.Set(35, One)
	if c.IsEmpty() {
		t.Fatal("repaired cube still empty")
	}
}

func TestParseString(t *testing.T) {
	c := MustParse("1-0")
	if c.Get(0) != One || c.Get(1) != Full || c.Get(2) != Zero {
		t.Fatalf("parse mismatch: %v", c)
	}
	if c.String() != "1-0" {
		t.Fatalf("String() = %q", c.String())
	}
	if _, err := Parse("1x0"); err == nil {
		t.Fatal("Parse accepted invalid character")
	}
}

func TestIntersectContains(t *testing.T) {
	a := MustParse("1--")
	b := MustParse("-0-")
	x := a.Intersect(b)
	if x.String() != "10-" {
		t.Fatalf("intersect = %q", x.String())
	}
	if !a.Contains(x) || !b.Contains(x) {
		t.Fatal("intersection not contained in operands")
	}
	if a.Contains(b) || b.Contains(a) {
		t.Fatal("unrelated cubes reported containing each other")
	}
	disjoint := MustParse("0--")
	if a.Intersects(disjoint) {
		t.Fatal("disjoint cubes reported intersecting")
	}
	if !a.Intersect(disjoint).IsEmpty() {
		t.Fatal("intersection of disjoint cubes not empty")
	}
}

func TestDistanceConsensus(t *testing.T) {
	a := MustParse("10-")
	b := MustParse("11-")
	if d := a.Distance(b); d != 1 {
		t.Fatalf("distance = %d, want 1", d)
	}
	cons, ok := a.Consensus(b)
	if !ok || cons.String() != "1--" {
		t.Fatalf("consensus = %v, %v", cons, ok)
	}
	c := MustParse("01-")
	if d := a.Distance(c); d != 2 {
		t.Fatalf("distance = %d, want 2", d)
	}
	if _, ok := a.Consensus(c); ok {
		t.Fatal("consensus exists at distance 2")
	}
	if d := a.Distance(a); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

func TestSupercube(t *testing.T) {
	a := MustParse("101")
	b := MustParse("001")
	s := a.Supercube(b)
	if s.String() != "-01" {
		t.Fatalf("supercube = %q", s.String())
	}
	if !s.Contains(a) || !s.Contains(b) {
		t.Fatal("supercube does not contain operands")
	}
}

func TestCofactor(t *testing.T) {
	f := MustParse("1-0")
	p := MustParse("1--")
	cf, ok := f.Cofactor(p)
	if !ok || cf.String() != "--0" {
		t.Fatalf("cofactor = %v, %v", cf, ok)
	}
	q := MustParse("0--")
	if _, ok := f.Cofactor(q); ok {
		t.Fatal("cofactor of non-intersecting cube should fail")
	}
}

func TestMintermMembership(t *testing.T) {
	c := MustParse("1-0")
	if !c.ContainsMinterm([]bool{true, true, false}) {
		t.Fatal("member rejected")
	}
	if !c.ContainsMinterm([]bool{true, false, false}) {
		t.Fatal("member rejected")
	}
	if c.ContainsMinterm([]bool{false, true, false}) {
		t.Fatal("non-member accepted")
	}
	if c.ContainsMinterm([]bool{true, true, true}) {
		t.Fatal("non-member accepted")
	}
}

func TestLiteralCounts(t *testing.T) {
	c := MustParse("1-0-1")
	if c.LiteralCount() != 3 {
		t.Fatalf("LiteralCount = %d", c.LiteralCount())
	}
	if c.FreeCount() != 2 {
		t.Fatalf("FreeCount = %d", c.FreeCount())
	}
	lits := c.Literals()
	if len(lits) != 3 || lits[0] != 0 || lits[1] != 2 || lits[2] != 4 {
		t.Fatalf("Literals = %v", lits)
	}
}

func TestStringNamed(t *testing.T) {
	names := []string{"a", "b", "c"}
	if s := MustParse("1-0").StringNamed(names); s != "a c'" {
		t.Fatalf("StringNamed = %q", s)
	}
	if s := MustParse("---").StringNamed(names); s != "1" {
		t.Fatalf("full StringNamed = %q", s)
	}
	e := NewFull(3)
	e.Set(1, Empty)
	if s := e.StringNamed(names); s != "0" {
		t.Fatalf("empty StringNamed = %q", s)
	}
}

// randomCube builds a reproducible pseudo-random non-empty cube over n
// variables.
func randomCube(r *rand.Rand, n int) Cube {
	c := NewFull(n)
	for i := 0; i < n; i++ {
		switch r.Intn(3) {
		case 0:
			c.Set(i, Zero)
		case 1:
			c.Set(i, One)
		}
	}
	return c
}

func randomMinterm(r *rand.Rand, n int) []bool {
	m := make([]bool, n)
	for i := range m {
		m[i] = r.Intn(2) == 1
	}
	return m
}

func TestQuickIntersectSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(12)
		a, b := randomCube(r, n), randomCube(r, n)
		x := a.Intersect(b)
		for k := 0; k < 20; k++ {
			m := randomMinterm(rr, n)
			inX := !x.IsEmpty() && x.ContainsMinterm(m)
			if inX != (a.ContainsMinterm(m) && b.ContainsMinterm(m)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickContainsIsSemantic(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(10)
		a, b := randomCube(rr, n), randomCube(rr, n)
		if a.Contains(b) {
			// Every sampled member of b must lie in a.
			for k := 0; k < 30; k++ {
				m := randomMinterm(rr, n)
				if b.ContainsMinterm(m) && !a.ContainsMinterm(m) {
					return false
				}
			}
		}
		// Supercube always contains both.
		s := a.Supercube(b)
		return s.Contains(a) && s.Contains(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDistanceZeroIffIntersects(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(14)
		a, b := randomCube(rr, n), randomCube(rr, n)
		return (a.Distance(b) == 0) == a.Intersects(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
