package cube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func coverFrom(strs ...string) Cover {
	var c Cover
	for _, s := range strs {
		c.Add(MustParse(s))
	}
	return c
}

// allMinterms enumerates all 2^n minterms of an n-variable space.
func allMinterms(n int) [][]bool {
	out := make([][]bool, 0, 1<<uint(n))
	for v := 0; v < 1<<uint(n); v++ {
		m := make([]bool, n)
		for i := 0; i < n; i++ {
			m[i] = v>>uint(i)&1 == 1
		}
		out = append(out, m)
	}
	return out
}

func TestTautologySimple(t *testing.T) {
	if !coverFrom("1--", "0--").Tautology() {
		t.Fatal("x + x' is a tautology")
	}
	if coverFrom("1--", "01-").Tautology() {
		t.Fatal("x + x'y is not a tautology")
	}
	if !coverFrom("---").Tautology() {
		t.Fatal("full cube is a tautology")
	}
	if NewCover(3).Tautology() {
		t.Fatal("empty cover is not a tautology")
	}
	// xy + xy' + x'y + x'y'
	if !coverFrom("11-", "10-", "01-", "00-").Tautology() {
		t.Fatal("all four quadrants cover the space")
	}
}

func TestComplementSemantics(t *testing.T) {
	covers := []Cover{
		coverFrom("11-", "0-1"),
		coverFrom("1--"),
		coverFrom("101", "010"),
		NewCover(3),
		coverFrom("---"),
	}
	for ci, f := range covers {
		g := f.Complement()
		for _, m := range allMinterms(3) {
			if f.EvalMinterm(m) == g.EvalMinterm(m) {
				t.Fatalf("cover %d: complement agrees with function at %v", ci, m)
			}
		}
	}
}

func TestContainsCube(t *testing.T) {
	f := coverFrom("1--", "01-")
	if !f.ContainsCube(MustParse("11-")) {
		t.Fatal("11- is inside x + x'y")
	}
	if !f.ContainsCube(MustParse("-1-")) {
		t.Fatal("-1- = y is covered: y = xy + x'y")
	}
	if f.ContainsCube(MustParse("00-")) {
		t.Fatal("00- is not covered")
	}
}

func TestSCC(t *testing.T) {
	f := coverFrom("1--", "11-", "110")
	r := f.SCC()
	if r.Len() != 1 || r.Cube(0).String() != "1--" {
		t.Fatalf("SCC = %v", r)
	}
	// Duplicates collapse to one.
	d := coverFrom("10-", "10-")
	if d.SCC().Len() != 1 {
		t.Fatalf("duplicate SCC = %v", d.SCC())
	}
}

func TestEquivalentDisjoint(t *testing.T) {
	a := coverFrom("1--", "01-")
	b := coverFrom("1--", "-1-")
	if !a.Equivalent(b) {
		t.Fatal("x + x'y ≡ x + y")
	}
	c := coverFrom("00-")
	if a.Equivalent(c) {
		t.Fatal("different functions reported equivalent")
	}
	if !a.Disjoint(coverFrom("000")) {
		t.Fatal("x+y and x'y'z' are disjoint")
	}
	if a.Disjoint(coverFrom("1-1")) {
		t.Fatal("overlapping covers reported disjoint")
	}
}

func TestIntersectCover(t *testing.T) {
	a := coverFrom("1--", "-1-")
	b := coverFrom("--1")
	x := a.IntersectCover(b)
	for _, m := range allMinterms(3) {
		want := a.EvalMinterm(m) && b.EvalMinterm(m)
		if x.EvalMinterm(m) != want {
			t.Fatalf("AND mismatch at %v", m)
		}
	}
}

func TestMinimizeBasic(t *testing.T) {
	// f = x y + x y' = x, minimization must find the single cube.
	f := coverFrom("11-", "10-")
	m := Minimize(f, NewCover(3))
	if m.Len() != 1 || m.Cube(0).String() != "1--" {
		t.Fatalf("Minimize = %v", m)
	}
	if !m.Equivalent(f) {
		t.Fatal("minimized cover not equivalent")
	}
}

func TestMinimizeWithDontCares(t *testing.T) {
	// ON = 110, DC = 111 → the minimizer can produce 11-.
	on := coverFrom("110")
	dc := coverFrom("111")
	m := Minimize(on, dc)
	if m.Len() != 1 || m.Cube(0).String() != "11-" {
		t.Fatalf("Minimize with DC = %v", m)
	}
}

func TestMinimizeXorStaysTwoCubes(t *testing.T) {
	// XOR has no two-level cover smaller than two cubes.
	f := coverFrom("10", "01")
	m := Minimize(f, NewCover(2))
	if m.Len() != 2 {
		t.Fatalf("XOR minimized to %d cubes", m.Len())
	}
	if !m.Equivalent(f) {
		t.Fatal("XOR cover changed function")
	}
}

func TestMinimizeEmpty(t *testing.T) {
	m := Minimize(NewCover(4), NewCover(4))
	if !m.IsEmpty() {
		t.Fatalf("empty minimization = %v", m)
	}
}

func randomCover(r *rand.Rand, n, k int) Cover {
	c := NewCover(n)
	for i := 0; i < k; i++ {
		c.Add(randomCube(r, n))
	}
	return c
}

func TestQuickComplementIsComplement(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(8)
		f := randomCover(rr, n, 1+rr.Intn(5))
		g := f.Complement()
		for k := 0; k < 40; k++ {
			m := randomMinterm(rr, n)
			if f.EvalMinterm(m) == g.EvalMinterm(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTautologyMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(6)
		f := randomCover(rr, n, 1+rr.Intn(6))
		taut := true
		for _, m := range allMinterms(n) {
			if !f.EvalMinterm(m) {
				taut = false
				break
			}
		}
		return f.Tautology() == taut
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinimizePreservesFunction(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(7)
		on := randomCover(rr, n, 1+rr.Intn(6))
		m := Minimize(on, NewCover(n))
		// Equivalence on the complete space.
		for _, mt := range allMinterms(n) {
			if on.EvalMinterm(mt) != m.EvalMinterm(mt) {
				return false
			}
		}
		// Minimization never increases cost.
		return m.Len() <= on.SCC().Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMinimizeRespectsDontCares(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(6)
		on := randomCover(rr, n, 1+rr.Intn(4))
		dc := randomCover(rr, n, 1+rr.Intn(3))
		m := Minimize(on, dc)
		union := on.Union(dc)
		for _, mt := range allMinterms(n) {
			got := m.EvalMinterm(mt)
			if on.EvalMinterm(mt) && !got {
				return false // lost an ON minterm
			}
			if got && !union.EvalMinterm(mt) {
				return false // strayed into the OFF set
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
