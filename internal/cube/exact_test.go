package cube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrimesOfSimpleFunction(t *testing.T) {
	// f = x y + x y' = x: the only prime is 1--.
	f := coverFrom("11-", "10-")
	primes := Primes(f, NewCover(3))
	if len(primes) != 1 || primes[0].String() != "1--" {
		t.Fatalf("primes = %v", primes)
	}
}

func TestPrimesXor(t *testing.T) {
	// XOR has exactly its two minterm cubes as primes.
	f := coverFrom("10", "01")
	primes := Primes(f, NewCover(2))
	if len(primes) != 2 {
		t.Fatalf("primes = %v", primes)
	}
}

func TestPrimesWithDontCares(t *testing.T) {
	// ON = 110, DC = 111: prime 11- (and possibly others intersecting
	// ON).
	primes := Primes(coverFrom("110"), coverFrom("111"))
	found := false
	for _, p := range primes {
		if p.String() == "11-" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing prime 11-: %v", primes)
	}
}

func TestMinimizeExactBasic(t *testing.T) {
	f := coverFrom("11-", "10-")
	m, err := MinimizeExact(f, NewCover(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("exact = %v", m)
	}
	if !m.Equivalent(f) {
		t.Fatal("function changed")
	}
}

func TestMinimizeExactEmpty(t *testing.T) {
	m, err := MinimizeExact(NewCover(4), NewCover(4))
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsEmpty() {
		t.Fatalf("exact of 0 = %v", m)
	}
}

func TestMinimizeExactKnownMinimum(t *testing.T) {
	// Classic cyclic-core example where greedy covers can be beaten:
	// f over 3 vars with minterms {001,011,111,110,100,000} — the
	// 6-cycle function: minimum two-level cover has 3 cubes.
	on := coverFrom("001", "011", "111", "110", "100", "000")
	m, err := MinimizeExact(on, NewCover(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("cyclic core minimum is 3 cubes, got %d:\n%s", m.Len(), m)
	}
	if !m.Equivalent(on) {
		t.Fatal("function changed")
	}
}

func TestQuickExactNeverWorseThanHeuristic(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(5)
		on := randomCover(rr, n, 1+rr.Intn(5))
		dc := randomCover(rr, n, rr.Intn(3))
		heur := Minimize(on, dc)
		exact, err := MinimizeExact(on, dc)
		if err != nil {
			return true // size guard tripped; nothing to compare
		}
		if exact.Len() > heur.Len() {
			return false
		}
		// Exact result must still implement the function.
		for _, mt := range allMinterms(n) {
			got := exact.EvalMinterm(mt)
			if on.EvalMinterm(mt) && !got {
				return false
			}
			if got && !on.EvalMinterm(mt) && !dc.EvalMinterm(mt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAtMostEncoding(t *testing.T) {
	// Indirect check through a covering instance demanding exactly one
	// cube: ON = one minterm, many overlapping primes.
	on := coverFrom("111")
	dc := coverFrom("110", "101", "011")
	m, err := MinimizeExact(on, dc)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("single minterm needs one cube, got %d", m.Len())
	}
}
