package cube

import (
	"fmt"
	"sort"

	"repro/internal/sat"
)

// Primes computes all prime implicants of the function with ON-set on
// and don't-care set dc by iterated consensus (Quine's method) over
// on ∪ dc, keeping only primes that intersect the ON-set.
func Primes(on, dc Cover) []Cube {
	work := on.Union(dc).SCC()
	cubes := make([]Cube, work.Len())
	for i, c := range work.Cubes() {
		cubes[i] = c.Clone()
	}
	seen := map[string]bool{}
	for _, c := range cubes {
		seen[c.String()] = true
	}
	// Closure under consensus, with single-cube containment pruning.
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cubes); i++ {
			for j := i + 1; j < len(cubes); j++ {
				cons, ok := cubes[i].Consensus(cubes[j])
				if !ok || seen[cons.String()] {
					continue
				}
				contained := false
				for _, c := range cubes {
					if c.Contains(cons) {
						contained = true
						break
					}
				}
				if contained {
					continue
				}
				seen[cons.String()] = true
				cubes = append(cubes, cons)
				changed = true
			}
		}
	}
	// Keep maximal cubes only (the primes).
	var primes []Cube
	for i, c := range cubes {
		maximal := true
		for j, d := range cubes {
			if i != j && d.Contains(c) && !(c.Contains(d) && j > i) {
				maximal = false
				break
			}
		}
		if maximal {
			primes = append(primes, c)
		}
	}
	// Restrict to primes useful for the ON-set.
	var out []Cube
	for _, p := range primes {
		for _, c := range on.Cubes() {
			if p.Intersects(c) {
				out = append(out, p)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// MaxExactMinterms bounds the ON-minterm enumeration of MinimizeExact.
const MaxExactMinterms = 1 << 14

// MinimizeExact returns a minimum-cardinality prime cover of the ON-set
// (with dc free), solved as a covering problem by the CDCL solver with a
// sequential-counter cardinality bound tightened until unsatisfiable.
// It fails when the ON-set has more than MaxExactMinterms minterms.
func MinimizeExact(on, dc Cover) (Cover, error) {
	if on.IsEmpty() {
		return Cover{n: on.n}, nil
	}
	primes := Primes(on, dc)
	minterms, err := enumerateMinterms(on)
	if err != nil {
		return Cover{}, err
	}

	// Upper bound from the heuristic minimizer.
	upper := Minimize(on, dc).Len()
	if upper == 0 {
		upper = len(primes)
	}

	best := solveCover(primes, minterms, upper)
	if best == nil {
		return Cover{}, fmt.Errorf("cube: covering problem unsolvable (internal error)")
	}
	out := Cover{n: on.n}
	out.cubes = best
	return out, nil
}

// enumerateMinterms expands the cover into its minterm list.
func enumerateMinterms(c Cover) ([][]bool, error) {
	seen := map[string]bool{}
	var out [][]bool
	var rec func(m []bool, q Cube, i int) error
	rec = func(m []bool, q Cube, i int) error {
		if i == q.N() {
			key := fmt.Sprint(m)
			if !seen[key] {
				seen[key] = true
				cp := append([]bool(nil), m...)
				out = append(out, cp)
				if len(out) > MaxExactMinterms {
					return fmt.Errorf("cube: ON-set exceeds %d minterms", MaxExactMinterms)
				}
			}
			return nil
		}
		switch q.Get(i) {
		case Zero:
			m[i] = false
			return rec(m, q, i+1)
		case One:
			m[i] = true
			return rec(m, q, i+1)
		default:
			m[i] = false
			if err := rec(m, q, i+1); err != nil {
				return err
			}
			m[i] = true
			return rec(m, q, i+1)
		}
	}
	for _, q := range c.Cubes() {
		m := make([]bool, c.N())
		if err := rec(m, q, 0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// solveCover finds a minimum subset of primes covering all minterms,
// starting from the given upper bound.
func solveCover(primes []Cube, minterms [][]bool, upper int) []Cube {
	var best []Cube
	for k := upper; k >= 0; k-- {
		s := sat.New()
		vars := make([]int, len(primes))
		for i := range primes {
			vars[i] = s.NewVar()
		}
		for _, m := range minterms {
			var clause []sat.Lit
			for i, p := range primes {
				if p.ContainsMinterm(m) {
					clause = append(clause, sat.Lit(vars[i]))
				}
			}
			if len(clause) == 0 {
				return best // uncoverable minterm: shouldn't happen
			}
			s.AddClause(clause...)
		}
		addAtMost(s, vars, k)
		if !s.Solve() {
			return best
		}
		var pick []Cube
		for i, v := range vars {
			if s.Value(v) {
				pick = append(pick, primes[i])
			}
		}
		best = pick
		// Tighten: next iteration demands strictly fewer cubes.
		k = len(pick)
	}
	return best
}

// addAtMost encodes Σ vars ≤ k with a sequential counter.
func addAtMost(s *sat.Solver, vars []int, k int) {
	n := len(vars)
	if k >= n {
		return
	}
	if k == 0 {
		for _, v := range vars {
			s.AddClause(sat.Lit(-v))
		}
		return
	}
	// reg[i][j] ⇔ at least j+1 of vars[0..i] are true.
	reg := make([][]int, n)
	for i := range reg {
		reg[i] = make([]int, k)
		for j := range reg[i] {
			reg[i][j] = s.NewVar()
		}
	}
	for i := 0; i < n; i++ {
		v := sat.Lit(vars[i])
		if i == 0 {
			s.AddClause(v.Neg(), sat.Lit(reg[0][0]))
			for j := 1; j < k; j++ {
				s.AddClause(sat.Lit(-reg[0][j]))
			}
			continue
		}
		for j := 0; j < k; j++ {
			// Carry the count forward.
			s.AddClause(sat.Lit(-reg[i-1][j]), sat.Lit(reg[i][j]))
		}
		s.AddClause(v.Neg(), sat.Lit(reg[i][0]))
		for j := 1; j < k; j++ {
			s.AddClause(v.Neg(), sat.Lit(-reg[i-1][j-1]), sat.Lit(reg[i][j]))
		}
		// Overflow: vars[i] with k already reached is forbidden.
		s.AddClause(v.Neg(), sat.Lit(-reg[i-1][k-1]))
	}
}
