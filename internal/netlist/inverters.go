package netlist

import "fmt"

// ExplicitInverters returns a copy of the netlist where every inverted
// pin is rerouted through an explicit inverter gate (one shared inverter
// per inverted net) — the post-technology-mapping form the paper
// discusses under "Justification of input inversions".
//
// The result is generally NOT speed-independent under the pure unbounded
// delay model: the inverter is one more unacknowledged gate. The paper's
// claim — reproduced by the simulator tests — is that the circuit is
// still hazard-free under the relative timing constraint
//
//	d_inv^max < D_sn^min
//
// (every inverter faster than the fastest signal network). Use
// InverterGates to locate the inverters for delay injection.
func ExplicitInverters(nl *Netlist) *Netlist {
	out := &Netlist{
		G:         nl.G,
		Nets:      append([]Net(nil), nl.Nets...),
		SignalNet: append([]int(nil), nl.SignalNet...),
	}
	invNet := map[int]int{} // source net → inverter output net

	for _, g := range nl.Gates {
		ng := g
		ng.Pins = make([]Pin, len(g.Pins))
		for i, p := range g.Pins {
			if !p.Invert || g.Kind == CElem || g.Kind == RSLatch {
				// Latch-input bubbles stay internal to the latch
				// primitive (the C-element's R input inversion is part
				// of its definition).
				ng.Pins[i] = p
				continue
			}
			n, ok := invNet[p.Net]
			if !ok {
				n = len(out.Nets)
				out.Nets = append(out.Nets, Net{
					Name:         out.Nets[p.Net].Name + "_n",
					Driver:       -1, // fixed below
					Signal:       -1,
					ComplementOf: out.Nets[p.Net].Signal,
				})
				out.Gates = append(out.Gates, Gate{
					Kind: Wire,
					Name: fmt.Sprintf("INV(%s)", out.Nets[p.Net].Name),
					Pins: []Pin{{Net: p.Net, Invert: true}},
					Out:  n,
				})
				invNet[p.Net] = n
			}
			ng.Pins[i] = Pin{Net: n}
		}
		out.Gates = append(out.Gates, ng)
	}
	for gi, g := range out.Gates {
		out.Nets[g.Out].Driver = gi
	}
	return out
}

// InverterGates returns the indices of the explicit inverter gates
// introduced by ExplicitInverters (Wire gates with an inverted pin whose
// output is a complement net).
func (nl *Netlist) InverterGates() []int {
	var out []int
	for gi, g := range nl.Gates {
		if g.Kind == Wire && len(g.Pins) == 1 && g.Pins[0].Invert &&
			nl.Nets[g.Out].Signal < 0 {
			out = append(out, gi)
		}
	}
	return out
}
