// Package netlist models gate-level circuits made of the paper's basic
// gates — AND gates (with input inversions), OR gates, inverters/wires,
// Muller C-elements and RS latches — and builds the two standard
// implementation structures of Section III (Figure 2):
//
//   - the standard C-implementation: per excitation region one AND gate,
//     per excitation function one OR gate, per non-input signal one
//     C-element fed by the up- (S) and down- (R) excitation functions;
//   - the standard RS-implementation: the same SOP structure feeding an
//     RS latch, with inverse literals taken from the latches'
//     complementary outputs (dual rail), modelled here as free pin
//     inversions.
//
// Degenerate cases from Section IV are applied: a single-literal cube
// needs no AND gate, a single-cube function needs no OR gate, and a
// signal whose S/R functions are one complementary literal collapses to
// a wire.
package netlist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cube"
	"repro/internal/sg"
)

// Kind enumerates gate types.
type Kind int8

// Gate kinds.
const (
	And Kind = iota
	Or
	Nor // used for the cross-coupled RS latch pair
	Wire
	CElem
	RSLatch // primitive RS flip-flop: set on S, reset on R, hold otherwise
	// Complex is an atomic complex gate evaluating an arbitrary
	// next-state SOP (Fn) over the specification signals — the Chu-style
	// baseline implementation, hazard-free by assumption.
	Complex
)

// String names the gate kind.
func (k Kind) String() string {
	switch k {
	case And:
		return "AND"
	case Or:
		return "OR"
	case Nor:
		return "NOR"
	case Wire:
		return "WIRE"
	case CElem:
		return "C"
	case RSLatch:
		return "RS"
	case Complex:
		return "COMPLEX"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Combinational reports whether the gate is a plain combinational gate of
// the SOP network (settled to its stable value at power-up); latch gates
// and wires carry state-graph signal values instead.
func (k Kind) Combinational() bool { return k == And || k == Or }

// SettleAtInit reports whether gate gi should be settled to its stable
// value at power-up: AND/OR gates of the SOP network and buffer/inverter
// wires driving internal nets. Wires that realize a specification signal
// keep the signal's initial code value instead.
func (nl *Netlist) SettleAtInit(gi int) bool {
	g := &nl.Gates[gi]
	if g.Kind.Combinational() {
		return true
	}
	return g.Kind == Wire && nl.Nets[g.Out].Signal < 0
}

// Pin is one gate input: the value of net Net, inverted when Invert is
// set. Pin inversions on AND gates stand for the input bubbles of the
// standard C-implementation (justified in the paper under the
// d_inv < D_sn delay constraint) or for dual-rail outputs in the
// RS-implementation.
type Pin struct {
	Net    int
	Invert bool
}

// Gate is one logic element driving net Out.
type Gate struct {
	Kind Kind
	Name string
	// Pins are the gate inputs. For CElem and RSLatch, Pins[0] is the
	// set input S and Pins[1] the reset input R.
	Pins []Pin
	Out  int
	// Fn is the next-state SOP of a Complex gate, over the
	// specification's signal space (evaluated through SignalNet).
	Fn cube.Cover
}

// Net is a single wire of the circuit.
type Net struct {
	Name   string
	Driver int // index into Gates, or -1 for a primary input
	// Signal is the specification signal this net realizes, or -1 for
	// internal gate outputs (AND/OR terms).
	Signal int
	// ComplementOf names the specification signal whose inverse this net
	// carries (a dual-rail latch's Q̄ output), or -1. The verifier
	// initializes such nets to the complement of the signal's value.
	ComplementOf int
}

// Netlist is a gate-level circuit tied to the signal set of a state
// graph specification.
type Netlist struct {
	G     *sg.Graph
	Nets  []Net
	Gates []Gate
	// SignalNet maps specification signals to their nets.
	SignalNet []int
}

// NumNets returns the number of nets.
func (nl *Netlist) NumNets() int { return len(nl.Nets) }

// addNet appends a net and returns its index.
func (nl *Netlist) addNet(name string, driver, signal int) int {
	nl.Nets = append(nl.Nets, Net{Name: name, Driver: driver, Signal: signal, ComplementOf: -1})
	return len(nl.Nets) - 1
}

// Eval computes the next output value of gate g under the given net
// values (one bool per net).
func (nl *Netlist) Eval(values []bool, g int) bool {
	gate := &nl.Gates[g]
	pin := func(i int) bool {
		v := values[gate.Pins[i].Net]
		if gate.Pins[i].Invert {
			return !v
		}
		return v
	}
	switch gate.Kind {
	case And:
		for i := range gate.Pins {
			if !pin(i) {
				return false
			}
		}
		return true
	case Or:
		for i := range gate.Pins {
			if pin(i) {
				return true
			}
		}
		return false
	case Nor:
		for i := range gate.Pins {
			if pin(i) {
				return false
			}
		}
		return true
	case Wire:
		return pin(0)
	case CElem:
		// C(A,B) = AB + (A+B)C with A = S and B = ¬R.
		a, b := pin(0), !pin(1)
		cur := values[gate.Out]
		return a && b || (a || b) && cur
	case RSLatch:
		s, r := pin(0), pin(1)
		switch {
		case s && !r:
			return true
		case r && !s:
			return false
		default:
			return values[gate.Out] // hold (S=R=1 also holds, flagged by the verifier)
		}
	case Complex:
		m := make([]bool, nl.G.NumSignals())
		for sig := range m {
			m[sig] = values[nl.SignalNet[sig]]
		}
		return gate.Fn.EvalMinterm(m)
	default:
		panic("netlist: unknown gate kind")
	}
}

// Stats summarizes implementation cost.
type Stats struct {
	Ands      int
	Ors       int
	Latches   int
	Wires     int
	Complexes int
	Inverters int // separate inverters needed after technology mapping
	Literals  int // total AND/OR input count (complex gates: SOP literals)
}

// String renders the statistics on one line.
func (s Stats) String() string {
	return fmt.Sprintf("AND=%d OR=%d latch=%d wire=%d complex=%d inv=%d literals=%d",
		s.Ands, s.Ors, s.Latches, s.Wires, s.Complexes, s.Inverters, s.Literals)
}

// Stats computes cost statistics. Inverter count follows the paper: every
// distinct net used in inverted form needs an inverter after technology
// mapping. In the RS-implementation inverted literals of latched signals
// tap the free q̄ outputs, so they contribute no inverters; inverted
// input literals always do.
func (nl *Netlist) Stats() Stats {
	var st Stats
	nors := 0
	inverted := map[int]bool{}
	for _, g := range nl.Gates {
		switch g.Kind {
		case And:
			st.Ands++
			st.Literals += len(g.Pins)
		case Or:
			st.Ors++
			st.Literals += len(g.Pins)
		case Nor:
			nors++
		case Wire:
			st.Wires++
		case CElem, RSLatch:
			st.Latches++
		case Complex:
			st.Complexes++
			st.Literals += g.Fn.LiteralCount()
		}
		for _, p := range g.Pins {
			if p.Invert {
				inverted[p.Net] = true
			}
		}
	}
	st.Latches += nors / 2
	// Dual-rail accounting: in an RS-implementation, inverted literals of
	// latched signals tap the free complementary latch outputs.
	rs := false
	latched := map[int]bool{}
	for _, g := range nl.Gates {
		if g.Kind == RSLatch {
			rs = true
			if sig := nl.Nets[g.Out].Signal; sig >= 0 {
				latched[sig] = true
			}
		}
	}
	for net := range inverted { //reprolint:ordered order-independent counting of distinct inverted nets
		sig := nl.Nets[net].Signal
		if rs && sig >= 0 && latched[sig] {
			continue
		}
		st.Inverters++
	}
	return st
}

// SR holds the up- (Set) and down- (Reset) excitation covers of one
// non-input signal.
type SR struct {
	Set, Reset cube.Cover
}

// Options steer construction of an implementation.
type Options struct {
	// RS selects the standard RS-implementation; the default is the
	// standard C-implementation.
	RS bool
	// Share reuses one AND gate for identical cubes appearing in several
	// excitation functions (Section VI). The caller is responsible for
	// having checked the generalized MC conditions.
	Share bool
}

// Build assembles the standard implementation of the given excitation
// functions. fns must contain an SR entry for every non-input signal of
// g. Cubes are over g's signal space.
//
// Latches are primitive basic elements, exactly as in the paper: the
// C-element computes C = AB + (A+B)C over (S, ¬R), the RS flip-flop sets
// on S, resets on R and holds otherwise (a transient S=R=1 with a stale
// falling side is benign for the primitive; a *stable* S=R=1 is flagged
// by the verifier). A bare cross-coupled NOR pair is deliberately NOT
// used: it races when an excitation function deasserts before the
// internal q̄ acknowledges (see the Nor kind and the verifier tests for
// a demonstration).
func Build(g *sg.Graph, fns map[int]SR, opts Options) (*Netlist, error) {
	nl := &Netlist{G: g, SignalNet: make([]int, g.NumSignals())}
	for sig, name := range g.Signals {
		nl.SignalNet[sig] = nl.addNet(name, -1, sig)
	}
	sigs := make([]int, 0, len(fns))
	for sig := range fns { //reprolint:ordered keys are collected then sorted; gates are emitted in the sorted order below
		if g.Input[sig] {
			return nil, fmt.Errorf("netlist: signal %s is an input", g.Signals[sig])
		}
		sigs = append(sigs, sig)
	}
	sort.Ints(sigs)

	// litPin builds the pin for one literal of a cube. Pin inversions
	// stand for AND-gate input bubbles (C-implementation, valid under the
	// paper's d_inv < D_sn constraint) or for taps of the latches'
	// complementary outputs (RS-implementation dual rail — zero skew, so
	// semantically identical to an inversion).
	litPin := func(l int, neg bool) Pin {
		return Pin{Net: nl.SignalNet[l], Invert: neg}
	}

	sharedAnd := map[string]int{} // cube string → net

	// termPin produces the pin carrying the value of one cube.
	termPin := func(c cube.Cube, owner string) (Pin, error) {
		lits := c.Literals()
		if len(lits) == 0 {
			return Pin{}, fmt.Errorf("netlist: constant-true cube in %s", owner)
		}
		if len(lits) == 1 {
			// Degenerate: a single literal needs no AND gate.
			return litPin(lits[0], c.Get(lits[0]) == cube.Zero), nil
		}
		key := c.String()
		if opts.Share {
			if n, ok := sharedAnd[key]; ok {
				return Pin{Net: n}, nil
			}
		}
		gi := len(nl.Gates)
		out := nl.addNet(fmt.Sprintf("and%d_%s", gi, owner), gi, -1)
		gate := Gate{Kind: And, Name: fmt.Sprintf("AND(%s)", c.StringNamed(g.Signals)), Out: out}
		for _, l := range lits {
			gate.Pins = append(gate.Pins, litPin(l, c.Get(l) == cube.Zero))
		}
		nl.Gates = append(nl.Gates, gate)
		if opts.Share {
			sharedAnd[key] = out
		}
		return Pin{Net: out}, nil
	}

	// funcPin produces the pin carrying a whole excitation function; a
	// single-cube function needs no OR gate.
	funcPin := func(f cube.Cover, owner string) (Pin, error) {
		if f.IsEmpty() {
			return Pin{}, fmt.Errorf("netlist: empty excitation function for %s", owner)
		}
		if f.Len() == 1 {
			return termPin(f.Cube(0), owner)
		}
		out := nl.addNet("or_"+owner, -1, -1)
		gate := Gate{Kind: Or, Name: "OR(" + owner + ")", Out: out}
		for _, c := range f.Cubes() {
			p, err := termPin(c, owner)
			if err != nil {
				return Pin{}, err
			}
			gate.Pins = append(gate.Pins, p)
		}
		nl.Gates = append(nl.Gates, gate)
		nl.Nets[out].Driver = len(nl.Gates) - 1
		return Pin{Net: out}, nil
	}

	for _, sig := range sigs {
		f := fns[sig]
		name := g.Signals[sig]
		out := nl.SignalNet[sig]

		if b, inv, ok := wireOf(f); ok {
			gi := len(nl.Gates)
			nl.Gates = append(nl.Gates, Gate{
				Kind: Wire,
				Name: "WIRE(" + name + ")",
				Pins: []Pin{litPin(b, inv)},
				Out:  out,
			})
			nl.Nets[out].Driver = gi
			continue
		}

		sp, err := funcPin(f.Set, "S"+name)
		if err != nil {
			return nil, err
		}
		rp, err := funcPin(f.Reset, "R"+name)
		if err != nil {
			return nil, err
		}
		kind := CElem
		if opts.RS {
			kind = RSLatch
		}
		gi := len(nl.Gates)
		nl.Gates = append(nl.Gates, Gate{
			Kind: kind,
			Name: kind.String() + "(" + name + ")",
			Pins: []Pin{sp, rp},
			Out:  out,
		})
		nl.Nets[out].Driver = gi
	}

	// Every non-input signal must be driven.
	for sig := range g.Signals {
		if !g.Input[sig] && nl.Nets[nl.SignalNet[sig]].Driver < 0 {
			return nil, fmt.Errorf("netlist: non-input signal %s has no implementation", g.Signals[sig])
		}
	}
	return nl, nil
}

// wireOf recognizes the full wire degeneration: Set = single literal l,
// Reset = single literal ¬l.
func wireOf(f SR) (signal int, inverted bool, ok bool) {
	if f.Set.Len() != 1 || f.Reset.Len() != 1 {
		return 0, false, false
	}
	s, r := f.Set.Cube(0), f.Reset.Cube(0)
	sl, rl := s.Literals(), r.Literals()
	if len(sl) != 1 || len(rl) != 1 || sl[0] != rl[0] {
		return 0, false, false
	}
	if s.Get(sl[0]) == r.Get(rl[0]) {
		return 0, false, false
	}
	return sl[0], s.Get(sl[0]) == cube.Zero, true
}

// String renders the netlist as readable equations.
func (nl *Netlist) String() string {
	var b strings.Builder
	for _, g := range nl.Gates {
		if g.Kind == Complex {
			fmt.Fprintf(&b, "%-8s %s = %s\n", g.Kind, nl.Nets[g.Out].Name, g.Fn.StringNamed(nl.G.Signals))
			continue
		}
		fmt.Fprintf(&b, "%-8s %s =", g.Kind, nl.Nets[g.Out].Name)
		for i, p := range g.Pins {
			sep := " "
			if i > 0 {
				switch g.Kind {
				case And:
					sep = " & "
				case Or:
					sep = " | "
				default:
					sep = ", "
				}
			}
			inv := ""
			if p.Invert {
				inv = "!"
			}
			fmt.Fprintf(&b, "%s%s%s", sep, inv, nl.Nets[p.Net].Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
