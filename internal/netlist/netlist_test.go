package netlist_test

import (
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/netlist"
	"repro/internal/sg"
	"repro/internal/stg"
)

func handshakeSG(t *testing.T) *sg.Graph {
	t.Helper()
	src := `
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`
	g, err := stg.BuildSG(stg.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fnsFromReport(t *testing.T, g *sg.Graph) map[int]netlist.SR {
	t.Helper()
	rep := core.NewAnalyzer(g).CheckGraph()
	if !rep.Satisfied() {
		t.Fatalf("MC not satisfied:\n%s", rep)
	}
	fns := map[int]netlist.SR{}
	for sig := range g.Signals {
		if g.Input[sig] {
			continue
		}
		set, reset, err := rep.ExcitationFunctions(sig)
		if err != nil {
			t.Fatal(err)
		}
		fns[sig] = netlist.SR{Set: set, Reset: reset}
	}
	return fns
}

func TestBuildHandshakeCollapsesToWire(t *testing.T) {
	// Sack = req, Rack = req' — the paper's full degenerate case: no AND,
	// no OR, no latch; ack is a wire of req.
	g := handshakeSG(t)
	nl, err := netlist.Build(g, fnsFromReport(t, g), netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := nl.Stats()
	if st.Ands != 0 || st.Ors != 0 || st.Latches != 0 || st.Wires != 1 {
		t.Fatalf("handshake stats = %s", st)
	}
	if !strings.Contains(nl.String(), "WIRE") {
		t.Errorf("netlist rendering:\n%s", nl.String())
	}
}

func cElementSG(t *testing.T) *sg.Graph {
	t.Helper()
	src := `
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
`
	g, err := stg.BuildSG(stg.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildCElementSpecC(t *testing.T) {
	// Sc = a b, Rc = a' b': one AND gate each feeding the C-element
	// directly (single-cube functions need no OR gate).
	g := cElementSG(t)
	nl, err := netlist.Build(g, fnsFromReport(t, g), netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := nl.Stats()
	if st.Ands != 2 || st.Ors != 0 || st.Latches != 1 {
		t.Fatalf("C-element spec stats = %s\n%s", st, nl)
	}
	if st.Literals != 4 {
		t.Fatalf("literals = %d, want 4", st.Literals)
	}
}

func TestBuildCElementSpecRS(t *testing.T) {
	g := cElementSG(t)
	nl, err := netlist.Build(g, fnsFromReport(t, g), netlist.Options{RS: true})
	if err != nil {
		t.Fatal(err)
	}
	st := nl.Stats()
	if st.Latches != 1 {
		t.Fatalf("stats = %s", st)
	}
	found := false
	for _, gate := range nl.Gates {
		if gate.Kind == netlist.RSLatch {
			found = true
		}
	}
	if !found {
		t.Fatal("RS option must produce an RS latch")
	}
	// Rc = a'b' uses both inputs inverted: the C-implementation would
	// need 2 inverters, the RS one needs them too (a and b are primary
	// inputs, not dual-rail latches).
	if st.Inverters != 2 {
		t.Fatalf("inverters = %d, want 2 (%s)", st.Inverters, st)
	}
}

func TestCElemEvalTruthTable(t *testing.T) {
	// Standalone C-element: out = C(S, R) with pins (S, R).
	g := &sg.Graph{Signals: []string{"s", "r", "q"}, Input: []bool{true, true, false}}
	nl := &netlist.Netlist{G: g}
	nl.Nets = []netlist.Net{
		{Name: "s", Driver: -1, Signal: 0},
		{Name: "r", Driver: -1, Signal: 1},
		{Name: "q", Driver: 0, Signal: 2},
	}
	nl.SignalNet = []int{0, 1, 2}
	nl.Gates = []netlist.Gate{{
		Kind: netlist.CElem, Name: "C(q)",
		Pins: []netlist.Pin{{Net: 0}, {Net: 1}},
		Out:  2,
	}}
	cases := []struct {
		s, r, q, want bool
	}{
		{true, false, false, true},   // set
		{false, true, true, false},   // reset
		{false, false, false, false}, // hold 0
		{false, false, true, true},   // hold 1
		{true, true, false, false},   // conflicting: hold
		{true, true, true, true},     // conflicting: hold
	}
	for _, c := range cases {
		got := nl.Eval([]bool{c.s, c.r, c.q}, 0)
		if got != c.want {
			t.Errorf("C(s=%v,r=%v,q=%v) = %v, want %v", c.s, c.r, c.q, got, c.want)
		}
	}
}

func TestRSLatchEval(t *testing.T) {
	g := &sg.Graph{Signals: []string{"s", "r", "q"}, Input: []bool{true, true, false}}
	nl := &netlist.Netlist{G: g}
	nl.Nets = []netlist.Net{
		{Name: "s", Driver: -1, Signal: 0},
		{Name: "r", Driver: -1, Signal: 1},
		{Name: "q", Driver: 0, Signal: 2},
	}
	nl.SignalNet = []int{0, 1, 2}
	nl.Gates = []netlist.Gate{{
		Kind: netlist.RSLatch, Name: "RS(q)",
		Pins: []netlist.Pin{{Net: 0}, {Net: 1}},
		Out:  2,
	}}
	if !nl.Eval([]bool{true, false, false}, 0) {
		t.Error("S must set")
	}
	if nl.Eval([]bool{false, true, true}, 0) {
		t.Error("R must reset")
	}
	if nl.Eval([]bool{false, false, false}, 0) {
		t.Error("hold 0")
	}
	if !nl.Eval([]bool{false, false, true}, 0) {
		t.Error("hold 1")
	}
}

func TestWireDegeneration(t *testing.T) {
	// S = x, R = x' collapses to a wire.
	g := &sg.Graph{Signals: []string{"x", "y"}, Input: []bool{true, false}}
	set := cube.NewCover(2)
	c1 := cube.NewFull(2)
	c1.Set(0, cube.One)
	set.Add(c1)
	reset := cube.NewCover(2)
	c2 := cube.NewFull(2)
	c2.Set(0, cube.Zero)
	reset.Add(c2)
	// Need two states for a valid graph shell; Build only uses signals.
	g.AddState(0)
	nl, err := netlist.Build(g, map[int]netlist.SR{1: {Set: set, Reset: reset}}, netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := nl.Stats()
	if st.Wires != 1 || st.Latches != 0 || st.Ands != 0 {
		t.Fatalf("wire degeneration failed: %s", st)
	}
}

func TestSharingCollapsesIdenticalCubes(t *testing.T) {
	// Two outputs both using the cube x&w in their set functions.
	g := &sg.Graph{Signals: []string{"x", "w", "y", "z"}, Input: []bool{true, true, false, false}}
	g.AddState(0)
	mk := func(lits map[int]cube.Lit) cube.Cover {
		return cube.CoverOf(cube.FromLits(4, lits))
	}
	shared := map[int]cube.Lit{0: cube.One, 1: cube.One}
	fns := map[int]netlist.SR{
		2: {Set: mk(shared), Reset: mk(map[int]cube.Lit{0: cube.Zero, 1: cube.Zero})},
		3: {Set: mk(shared), Reset: mk(map[int]cube.Lit{0: cube.Zero, 3: cube.Zero})},
	}
	noShare, err := netlist.Build(g, fns, netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	withShare, err := netlist.Build(g, fns, netlist.Options{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	if noShare.Stats().Ands != withShare.Stats().Ands+1 {
		t.Fatalf("sharing should save one AND: %s vs %s", noShare.Stats(), withShare.Stats())
	}
}

func TestBuildRejectsInputSignal(t *testing.T) {
	g := &sg.Graph{Signals: []string{"x"}, Input: []bool{true}}
	g.AddState(0)
	_, err := netlist.Build(g, map[int]netlist.SR{0: {}}, netlist.Options{})
	if err == nil {
		t.Fatal("implementing an input signal must fail")
	}
}

func TestBuildRejectsMissingFunction(t *testing.T) {
	g := &sg.Graph{Signals: []string{"x", "y"}, Input: []bool{true, false}}
	g.AddState(0)
	_, err := netlist.Build(g, map[int]netlist.SR{}, netlist.Options{})
	if err == nil {
		t.Fatal("undriven non-input signal must fail")
	}
}

func TestBuildRejectsEmptyFunction(t *testing.T) {
	g := &sg.Graph{Signals: []string{"x", "y"}, Input: []bool{true, false}}
	g.AddState(0)
	fns := map[int]netlist.SR{1: {Set: cube.NewCover(2), Reset: cube.NewCover(2)}}
	if _, err := netlist.Build(g, fns, netlist.Options{}); err == nil {
		t.Fatal("empty excitation function must fail")
	}
}

func TestFig1ComplexityMatchesEquations(t *testing.T) {
	// After MC analysis, signal c of Fig1 has Sc = a b' + a' b d'
	// (two cubes) and Rc = a' b d — matching the structure of the
	// paper's equations for the c network.
	g := benchdata.Fig1SG()
	rep := core.NewAnalyzer(g).CheckGraph()
	set, reset, err := rep.ExcitationFunctions(g.SignalIndex("c"))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Errorf("Sc should have 2 cubes, got %s", set.StringNamed(g.Signals))
	}
	if reset.Len() != 1 || reset.StringNamed(g.Signals) != "a' b d" {
		t.Errorf("Rc = %s, want a' b d", reset.StringNamed(g.Signals))
	}
}

func TestBuildDeterministicUnderMapInsertionOrder(t *testing.T) {
	// Build consumes fns as a map; the emitted netlist must be
	// byte-identical no matter the order entries were inserted in (and
	// across repeated builds, which reshuffle Go's map iteration). The
	// fork spec has two outputs with identical functions, so any
	// order-dependence in gate emission or net numbering would show.
	src := `
.model fork
.inputs a b
.outputs y z
.graph
a+ y+ z+
b+ y+ z+
y+ a- b-
z+ a- b-
a- y- z-
b- y- z-
y- a+ b+
z- a+ b+
.marking { <y-,a+> <y-,b+> <z-,a+> <z-,b+> }
.end
`
	g, err := stg.BuildSG(stg.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	base := fnsFromReport(t, g)
	var sigs []int
	for sig := range g.Signals {
		if !g.Input[sig] {
			sigs = append(sigs, sig)
		}
	}
	for _, opts := range []netlist.Options{{}, {RS: true}} {
		var want string
		for round := 0; round < 6; round++ {
			for rot := 0; rot < len(sigs); rot++ {
				fns := make(map[int]netlist.SR, len(sigs))
				for k := 0; k < len(sigs); k++ {
					sig := sigs[(rot+k)%len(sigs)]
					fns[sig] = base[sig]
				}
				nl, err := netlist.Build(g, fns, opts)
				if err != nil {
					t.Fatal(err)
				}
				got := nl.String()
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("netlist bytes differ under map insertion order (opts %+v):\n--- first\n%s\n--- now\n%s", opts, want, got)
				}
			}
		}
	}
}
