package netlist_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/benchdata"
	"repro/internal/netlist"
	"repro/internal/stg"
	"repro/internal/synth"
	"repro/internal/verify"
)

// settle iterates the combinational gates to a fixpoint and returns the
// settled values (latch outputs and primaries held fixed).
func settle(nl *netlist.Netlist, values []bool) []bool {
	v := append([]bool(nil), values...)
	for iter := 0; iter < len(v)+4; iter++ {
		changed := false
		for gi, g := range nl.Gates {
			if !g.Kind.Combinational() {
				continue
			}
			if next := nl.Eval(v, gi); v[g.Out] != next {
				v[g.Out] = next
				changed = true
			}
		}
		if !changed {
			return v
		}
	}
	return v
}

func synthNetlist(t *testing.T, name string) (*netlist.Netlist, *synth.Report) {
	t.Helper()
	e, ok := benchdata.Table1ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %s", name)
	}
	g, err := stg.BuildSG(e.STG())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := synth.FromGraph(g, synth.Options{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Netlist, rep
}

func TestDecomposeRespectsFanin(t *testing.T) {
	nl, _ := synthNetlist(t, "duplicator")
	if nl.MaxFanin() < 3 {
		t.Fatalf("expected wide gates, max fan-in %d", nl.MaxFanin())
	}
	for _, k := range []int{2, 3, 4} {
		d, err := netlist.Decompose(nl, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range d.Gates {
			if (g.Kind == netlist.And || g.Kind == netlist.Or) && len(g.Pins) > k {
				t.Fatalf("fan-in %d gate survived decomposition to %d", len(g.Pins), k)
			}
		}
	}
}

func TestDecomposeRejectsBadBound(t *testing.T) {
	nl, _ := synthNetlist(t, "luciano")
	if _, err := netlist.Decompose(nl, 1); err == nil {
		t.Fatal("fan-in bound 1 must be rejected")
	}
}

func TestDecomposePreservesFunctions(t *testing.T) {
	// Property: for any assignment of primaries and latch outputs, the
	// settled values of all original nets agree between the original
	// and the decomposed netlist.
	nl, _ := synthNetlist(t, "duplicator")
	d, err := netlist.Decompose(nl, 2)
	if err != nil {
		t.Fatal(err)
	}
	orig := nl.NumNets()
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		v1 := make([]bool, nl.NumNets())
		v2 := make([]bool, d.NumNets())
		for i := 0; i < orig; i++ {
			b := rr.Intn(2) == 1
			v1[i] = b
			v2[i] = b
		}
		s1 := settle(nl, v1)
		s2 := settle(d, v2)
		for i := 0; i < orig; i++ {
			if s1[i] != s2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeNoOpStaysSI(t *testing.T) {
	// Benchmarks whose gates already fit the bound are untouched and
	// stay speed-independent.
	for _, name := range []string{"luciano", "Delement", "mp-forward-pkt"} {
		nl, rep := synthNetlist(t, name)
		d, err := netlist.Decompose(nl, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Gates) != len(nl.Gates) {
			t.Fatalf("%s: no-op decomposition changed the gate count", name)
		}
		if !verify.Check(d, rep.Final).OK() {
			t.Fatalf("%s: no-op decomposition broke SI", name)
		}
	}
}

func TestDecomposeBreaksSpeedIndependence(t *testing.T) {
	// The negative result the paper's architecture is built around:
	// splitting a monotonous-cover AND gate into a tree introduces
	// internal nodes computing wider cubes, which get excited and then
	// disabled — the verifier shows the hazards on every Table-1
	// benchmark whose gates actually split. This is why one excitation
	// region must be ONE AND gate (and why SI-preserving decomposition
	// became its own research line).
	nl, rep := synthNetlist(t, "berkel2")
	if !verify.Check(nl, rep.Final).OK() {
		t.Fatal("undecomposed circuit must be SI")
	}
	d, err := netlist.Decompose(nl, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := verify.Check(d, rep.Final)
	if res.OK() {
		t.Fatal("expected the fan-in-2 decomposition to hazard")
	}
	if len(res.Hazards) == 0 {
		t.Fatalf("expected gate disablements, got %s", res)
	}
}

func TestMaxFanin(t *testing.T) {
	nl, _ := synthNetlist(t, "luciano")
	if nl.MaxFanin() < 1 {
		t.Fatal("fan-in must be positive")
	}
}
