package netlist

import "fmt"

// Decompose returns a copy of the netlist in which every AND and OR gate
// with more than maxFanin inputs is replaced by a balanced tree of gates
// of the same kind with at most maxFanin inputs each — the technology-
// mapping step towards a limited basis (the paper's Section I cites
// Varshavsky et al.'s minimum-fanin NAND basis).
//
// Decomposition is NOT speed-independence preserving in general: an
// internal tree node computes a sub-cube (a wider cube than the
// monotonous cover), which may be excited and then disabled by an input
// change that the full cube never lets through. Callers must re-verify
// the decomposed circuit; the package tests demonstrate both a safe and
// a hazardous decomposition.
func Decompose(nl *Netlist, maxFanin int) (*Netlist, error) {
	if maxFanin < 2 {
		return nil, fmt.Errorf("netlist: fan-in bound must be ≥ 2, got %d", maxFanin)
	}
	out := &Netlist{
		G:         nl.G,
		Nets:      append([]Net(nil), nl.Nets...),
		SignalNet: append([]int(nil), nl.SignalNet...),
	}
	// Driver indices change; recompute at the end.
	for gi := range out.Nets {
		out.Nets[gi].Driver = -1
	}
	for _, g := range nl.Gates {
		if (g.Kind != And && g.Kind != Or) || len(g.Pins) <= maxFanin {
			ng := g
			ng.Pins = append([]Pin(nil), g.Pins...)
			out.Gates = append(out.Gates, ng)
			continue
		}
		// Reduce the pin list level by level until it fits one gate.
		pins := append([]Pin(nil), g.Pins...)
		level := 0
		for len(pins) > maxFanin {
			var next []Pin
			for lo := 0; lo < len(pins); lo += maxFanin {
				hi := lo + maxFanin
				if hi > len(pins) {
					hi = len(pins)
				}
				if hi-lo == 1 {
					next = append(next, pins[lo])
					continue
				}
				gi := len(out.Gates)
				net := out.addNet(fmt.Sprintf("%s_t%d_%d", out.Nets[g.Out].Name, level, lo), gi, -1)
				out.Gates = append(out.Gates, Gate{
					Kind: g.Kind,
					Name: fmt.Sprintf("%s[%d.%d]", g.Name, level, lo/maxFanin),
					Pins: append([]Pin(nil), pins[lo:hi]...),
					Out:  net,
				})
				next = append(next, Pin{Net: net})
			}
			pins = next
			level++
		}
		out.Gates = append(out.Gates, Gate{Kind: g.Kind, Name: g.Name, Pins: pins, Out: g.Out})
	}
	for gi, g := range out.Gates {
		out.Nets[g.Out].Driver = gi
	}
	return out, nil
}

// MaxFanin returns the largest gate input count in the netlist
// (complex gates count their SOP literal width).
func (nl *Netlist) MaxFanin() int {
	m := 0
	for _, g := range nl.Gates {
		n := len(g.Pins)
		if g.Kind == Complex {
			n = g.Fn.LiteralCount()
		}
		if n > m {
			m = n
		}
	}
	return m
}
