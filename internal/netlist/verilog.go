package netlist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cube"
)

// Verilog renders the netlist as a structural Verilog module, with
// behavioural primitive modules for the Muller C-element and the RS
// flip-flop appended. Combinational gates become continuous assigns;
// latches become instances. The output is meant for inspection and for
// downstream tools, mirroring what an asynchronous synthesis tool would
// hand to a standard flow.
func (nl *Netlist) Verilog(moduleName string) string {
	var b strings.Builder
	ident := func(s string) string {
		out := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
				return r
			default:
				return '_'
			}
		}, s)
		if out == "" || out[0] >= '0' && out[0] <= '9' {
			out = "n" + out
		}
		return out
	}
	netName := func(i int) string { return ident(nl.Nets[i].Name) }
	pin := func(p Pin) string {
		if p.Invert {
			return "~" + netName(p.Net)
		}
		return netName(p.Net)
	}

	var inputs, outputs, wires []string
	for i, n := range nl.Nets {
		switch {
		case n.Signal >= 0 && nl.G.Input[n.Signal]:
			inputs = append(inputs, netName(i))
		case n.Signal >= 0:
			outputs = append(outputs, netName(i))
		default:
			wires = append(wires, netName(i))
		}
	}
	sort.Strings(inputs)
	sort.Strings(outputs)
	sort.Strings(wires)

	fmt.Fprintf(&b, "module %s (\n", ident(moduleName))
	var ports []string
	for _, p := range inputs {
		ports = append(ports, "  input  wire "+p)
	}
	for _, p := range outputs {
		ports = append(ports, "  output wire "+p)
	}
	b.WriteString(strings.Join(ports, ",\n"))
	b.WriteString("\n);\n")
	for _, w := range wires {
		fmt.Fprintf(&b, "  wire %s;\n", w)
	}
	b.WriteString("\n")

	usesC, usesRS := false, false
	for gi, g := range nl.Gates {
		out := netName(g.Out)
		switch g.Kind {
		case And:
			var terms []string
			for _, p := range g.Pins {
				terms = append(terms, pin(p))
			}
			fmt.Fprintf(&b, "  assign %s = %s;\n", out, strings.Join(terms, " & "))
		case Or:
			var terms []string
			for _, p := range g.Pins {
				terms = append(terms, pin(p))
			}
			fmt.Fprintf(&b, "  assign %s = %s;\n", out, strings.Join(terms, " | "))
		case Nor:
			var terms []string
			for _, p := range g.Pins {
				terms = append(terms, pin(p))
			}
			fmt.Fprintf(&b, "  assign %s = ~(%s);\n", out, strings.Join(terms, " | "))
		case Wire:
			fmt.Fprintf(&b, "  assign %s = %s;\n", out, pin(g.Pins[0]))
		case CElem:
			usesC = true
			fmt.Fprintf(&b, "  celem u_c%d (.s(%s), .r(%s), .q(%s));\n",
				gi, pin(g.Pins[0]), pin(g.Pins[1]), out)
		case RSLatch:
			usesRS = true
			fmt.Fprintf(&b, "  rslatch u_rs%d (.s(%s), .r(%s), .q(%s));\n",
				gi, pin(g.Pins[0]), pin(g.Pins[1]), out)
		case Complex:
			var terms []string
			for _, c := range g.Fn.Cubes() {
				var lits []string
				for _, l := range c.Literals() {
					name := ident(nl.Nets[nl.SignalNet[l]].Name)
					if c.Get(l) == cube.Zero {
						name = "~" + name
					}
					lits = append(lits, name)
				}
				terms = append(terms, strings.Join(lits, " & "))
			}
			fmt.Fprintf(&b, "  // atomic complex gate (next-state function)\n")
			fmt.Fprintf(&b, "  assign %s = %s;\n", out, strings.Join(terms, " | "))
		}
	}
	b.WriteString("endmodule\n")

	if usesC {
		b.WriteString(`
// Muller C-element: q = s·~r + (s + ~r)·q  (set on s, clear on r, hold).
module celem (input wire s, input wire r, output reg q);
  initial q = 1'b0;
  always @(*) begin
    if (s & ~r) q = 1'b1;
    else if (~s & r) q = 1'b0;
  end
endmodule
`)
	}
	if usesRS {
		b.WriteString(`
// RS flip-flop primitive: set on s, reset on r, hold otherwise.
module rslatch (input wire s, input wire r, output reg q);
  initial q = 1'b0;
  always @(*) begin
    if (s & ~r) q = 1'b1;
    else if (r & ~s) q = 1'b0;
  end
endmodule
`)
	}
	return b.String()
}
