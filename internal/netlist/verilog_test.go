package netlist_test

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/benchdata"
)

func TestVerilogStructure(t *testing.T) {
	nl, _ := synthNetlist(t, "Delement")
	v := nl.Verilog("delement")
	for _, want := range []string{
		"module delement (", "endmodule",
		"input  wire r1", "input  wire a2",
		"output wire a1", "output wire r2",
		"module celem",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q:\n%s", want, v)
		}
	}
	// Balanced module/endmodule.
	if strings.Count(v, "module ") != strings.Count(v, "endmodule") {
		t.Error("unbalanced module/endmodule")
	}
	// One celem instance per C gate.
	if strings.Count(v, "celem u_c") == 0 {
		t.Error("no C-element instances")
	}
}

func TestVerilogHeader(t *testing.T) {
	_, rep := synthNetlist(t, "luciano")
	v := rep.Netlist.Verilog("luciano")
	if !strings.Contains(v, "module luciano (") {
		t.Fatalf("bad module header:\n%s", v)
	}
}

func TestVerilogComplexGate(t *testing.T) {
	g := benchdata.Fig4SG()
	nl, err := baseline.ComplexGate(g)
	if err != nil {
		t.Fatal(err)
	}
	v := nl.Verilog("fig4_complex")
	if !strings.Contains(v, "atomic complex gate") {
		t.Fatalf("complex gate not rendered:\n%s", v)
	}
	if !strings.Contains(v, "assign b = ") {
		t.Fatalf("missing next-state assign:\n%s", v)
	}
}

func TestVerilogIdentifierSanitization(t *testing.T) {
	nl, _ := synthNetlist(t, "berkel2")
	v := nl.Verilog("has space-and.dots")
	if !strings.Contains(v, "module has_space_and_dots (") {
		t.Fatalf("module name not sanitized:\n%s", v[:120])
	}
}
