package netlist_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/verify"
)

func TestExplicitInvertersStructure(t *testing.T) {
	nl, _ := synthNetlist(t, "berkel2")
	inv := netlist.ExplicitInverters(nl)
	// No AND/OR pin inversion survives (latch-internal bubbles may).
	for _, g := range inv.Gates {
		if g.Kind != netlist.And && g.Kind != netlist.Or {
			continue
		}
		for _, p := range g.Pins {
			if p.Invert {
				t.Fatalf("gate %s still has an inverted pin", g.Name)
			}
		}
	}
	if len(inv.InverterGates()) == 0 {
		t.Fatal("expected explicit inverters")
	}
	// One inverter per inverted net, shared.
	seen := map[int]bool{}
	for _, gi := range inv.InverterGates() {
		src := inv.Gates[gi].Pins[0].Net
		if seen[src] {
			t.Fatalf("net %d inverted twice", src)
		}
		seen[src] = true
	}
}

func TestExplicitInvertersPreserveFunctions(t *testing.T) {
	nl, _ := synthNetlist(t, "berkel2")
	inv := netlist.ExplicitInverters(nl)
	orig := nl.NumNets()
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		v1 := make([]bool, nl.NumNets())
		v2 := make([]bool, inv.NumNets())
		for i := 0; i < orig; i++ {
			b := rr.Intn(2) == 1
			v1[i] = b
			v2[i] = b
		}
		// Inverter outputs must start consistent.
		for _, gi := range inv.InverterGates() {
			g := inv.Gates[gi]
			v2[g.Out] = !v2[g.Pins[0].Net]
		}
		s1 := settleAll(nl, v1)
		s2 := settleAll(inv, v2)
		for i := 0; i < orig; i++ {
			if s1[i] != s2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// settleAll settles every init-settleable gate (AND/OR and internal
// wires) to a fixpoint.
func settleAll(nl *netlist.Netlist, values []bool) []bool {
	v := append([]bool(nil), values...)
	for iter := 0; iter < len(v)+4; iter++ {
		changed := false
		for gi := range nl.Gates {
			if !nl.SettleAtInit(gi) {
				continue
			}
			if next := nl.Eval(v, gi); v[nl.Gates[gi].Out] != next {
				v[nl.Gates[gi].Out] = next
				changed = true
			}
		}
		if !changed {
			return v
		}
	}
	return v
}

func TestExplicitInvertersBreakUntimedSI(t *testing.T) {
	// The paper: "If we consider all these inverters as independent
	// gates the standard C-implementation will not be speed-independent
	// anymore." The untimed verifier confirms it on every benchmark that
	// actually has inverted literals.
	for _, name := range []string{"berkel2", "luciano", "Delement"} {
		nl, rep := synthNetlist(t, name)
		if !verify.Check(nl, rep.Final).OK() {
			t.Fatalf("%s: base implementation must be SI", name)
		}
		inv := netlist.ExplicitInverters(nl)
		res := verify.Check(inv, rep.Final)
		if res.OK() {
			t.Fatalf("%s: explicit inverters should break untimed SI", name)
		}
		if len(res.Hazards) == 0 {
			t.Fatalf("%s: expected inverter-related hazards:\n%s", name, res)
		}
	}
}

func TestExplicitInvertersNoOpWithoutInvertedLiterals(t *testing.T) {
	nl, rep := synthNetlist(t, "mp-forward-pkt")
	inv := netlist.ExplicitInverters(nl)
	if len(inv.InverterGates()) != 0 {
		t.Fatal("mp-forward-pkt has no inverted literals")
	}
	if !verify.Check(inv, rep.Final).OK() {
		t.Fatal("untouched circuit must stay SI")
	}
}

func TestInverterTimingConstraint(t *testing.T) {
	// The paper's relational constraint: C2 (explicit inverters) is
	// hazard-free when d_inv^max < D_sn^min. Simulate both regimes.
	nl, rep := synthNetlist(t, "berkel2")
	inv := netlist.ExplicitInverters(nl)
	fast := map[int]float64{}
	slow := map[int]float64{}
	for _, gi := range inv.InverterGates() {
		fast[gi] = 0.01 // far below any gate delay (min 1)
		slow[gi] = 400  // far above any signal-network delay
	}
	for seed := int64(0); seed < 25; seed++ {
		res := sim.Run(inv, rep.Final, sim.Config{Seed: seed, MaxEvents: 2000, InjectDelay: fast})
		if !res.OK() {
			t.Fatalf("fast inverters must be hazard-free (seed %d): %s", seed, res)
		}
	}
	slowHaz := 0
	for seed := int64(0); seed < 25; seed++ {
		res := sim.Run(inv, rep.Final, sim.Config{Seed: seed, MaxEvents: 2000, InjectDelay: slow})
		if len(res.Hazards) > 0 {
			slowHaz++
		}
	}
	if slowHaz == 0 {
		t.Fatal("slow inverters should produce witnessed hazards")
	}
}
