package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestForEachSequential pins the size-1 contract: tasks run in index
// order on the calling goroutine, so callers may rely on strictly
// deterministic execution.
func TestForEachSequential(t *testing.T) {
	const n = 100
	var order []int
	var mu sync.Mutex
	ForEach(n, 1, func(i int) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
	})
	if len(order) != n {
		t.Fatalf("ran %d tasks, want %d", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("task %d ran at position %d; sequential pool must preserve order", got, i)
		}
	}
}

// TestForEachParallel checks the GOMAXPROCS pool: every index runs
// exactly once and worker ids stay inside the pool bound.
func TestForEachParallel(t *testing.T) {
	const n = 500
	ran := make([]int32, n)
	bound := Workers(0)
	var badWorker atomic.Int32
	ForEachHook(n, 0, func(i int) {
		atomic.AddInt32(&ran[i], 1)
	}, func(i, worker int, start time.Time, d time.Duration) {
		if worker < 0 || worker >= bound {
			badWorker.Store(int32(worker))
		}
	})
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
	if w := badWorker.Load(); w != 0 {
		t.Fatalf("worker id %d outside pool of %d", w, bound)
	}
}

// TestForEachPanicPropagation: a panicking task must surface on the
// calling goroutine — for the concurrent pool as for the plain loop —
// and must not wedge the feeder.
func TestForEachPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r != "boom" {
					t.Errorf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForEach(100, workers, func(i int) {
				if i == 3 {
					panic("boom")
				}
			})
			t.Errorf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

// TestForEachAllPanic: every task panicking must still drain the feeder
// and re-raise exactly one panic.
func TestForEachAllPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("no panic propagated")
		}
	}()
	ForEach(64, 4, func(i int) { panic(i) })
	t.Error("ForEach returned")
}

// TestHookFiresOncePerTask: the per-task timing hook must fire exactly
// once per completed task, with a plausible start/duration, in both
// pool shapes.
func TestHookFiresOncePerTask(t *testing.T) {
	for _, workers := range []int{1, 0} {
		const n = 200
		fired := make([]int32, n)
		epoch := time.Now()
		var badTime atomic.Bool
		ForEachHook(n, workers, func(i int) {
			time.Sleep(time.Microsecond)
		}, func(i, worker int, start time.Time, d time.Duration) {
			atomic.AddInt32(&fired[i], 1)
			if start.Before(epoch) || d < 0 {
				badTime.Store(true)
			}
		})
		for i, c := range fired {
			if c != 1 {
				t.Fatalf("workers=%d: hook fired %d times for task %d, want exactly 1", workers, c, i)
			}
		}
		if badTime.Load() {
			t.Fatalf("workers=%d: hook saw start before the loop began or negative duration", workers)
		}
	}
}

// TestHookNotCalledForPanickedTask: hooks only observe tasks that
// return normally.
func TestHookNotCalledForPanickedTask(t *testing.T) {
	var hooked atomic.Int32
	func() {
		defer func() { recover() }()
		ForEachHook(8, 2, func(i int) {
			if i == 0 {
				panic("first")
			}
		}, func(i, worker int, start time.Time, d time.Duration) {
			if i == 0 {
				t.Error("hook fired for panicked task")
			}
			hooked.Add(1)
		})
	}()
	if hooked.Load() > 7 {
		t.Errorf("hook fired %d times for 7 surviving tasks", hooked.Load())
	}
}
