// Package par is the bounded worker pool shared by the analysis and
// benchmark fan-outs: embarrassingly-parallel loops (per-signal region
// decomposition, per-signal MC checking, per-benchmark synthesis) run on
// up to GOMAXPROCS goroutines while callers keep deterministic output by
// writing results into index-addressed slots.
package par

import (
	"runtime"
	"sync"
	"time"
)

// Workers resolves a requested worker count: n when positive, otherwise
// GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// TaskHook observes one completed pool task: its index, the worker that
// ran it, and when/how long it ran. Hooks fire exactly once per task,
// on the worker goroutine that executed it, and only for tasks that
// return normally.
type TaskHook func(i, worker int, start time.Time, d time.Duration)

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (0 = GOMAXPROCS) and returns when all calls are done. With one worker,
// or n < 2, it degrades to a plain loop on the calling goroutine.
// Determinism is the caller's contract: fn must write its result into a
// slot addressed by i, never append to shared state.
//
// A panic in any task is re-raised on the calling goroutine after the
// pool drains, matching the sequential path's behaviour.
func ForEach(n, workers int, fn func(i int)) {
	ForEachHook(n, workers, fn, nil)
}

// ForEachHook is ForEach with an optional per-task observation hook
// (nil = unobserved; the pool then takes no clock readings).
func ForEachHook(n, workers int, fn func(i int), hook TaskHook) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	run := func(i, worker int) {
		if hook == nil {
			fn(i)
			return
		}
		start := time.Now()
		fn(i)
		hook(i, worker, start, time.Since(start))
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i, 0)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			// A panicking task must not wedge the feeder: capture the
			// first panic, keep draining, and re-raise on the caller.
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					for range next {
					}
				}
			}()
			for i := range next {
				run(i, worker)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
