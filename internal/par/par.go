// Package par is the bounded worker pool shared by the analysis and
// benchmark fan-outs: embarrassingly-parallel loops (per-signal region
// decomposition, per-signal MC checking, per-benchmark synthesis) run on
// up to GOMAXPROCS goroutines while callers keep deterministic output by
// writing results into index-addressed slots.
//
// Two pool shapes live here. ForEach is the batch fan-out: a known task
// count, drained to completion, panic re-raised on the caller. Pool is
// the long-running shard pool of the synthesis server: a fixed worker
// set pulling from a bounded queue whose fullness is the server's
// backpressure signal, with panics contained per task so one poisoned
// job cannot take a shard down.
package par

import (
	"runtime"
	"sync"
	"time"
)

// Workers resolves a requested worker count: n when positive, otherwise
// GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// TaskHook observes one completed pool task: its index, the worker that
// ran it, and when/how long it ran. Hooks fire exactly once per task,
// on the worker goroutine that executed it, and only for tasks that
// return normally.
type TaskHook func(i, worker int, start time.Time, d time.Duration)

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (0 = GOMAXPROCS) and returns when all calls are done. With one worker,
// or n < 2, it degrades to a plain loop on the calling goroutine.
// Determinism is the caller's contract: fn must write its result into a
// slot addressed by i, never append to shared state.
//
// A panic in any task is re-raised on the calling goroutine after the
// pool drains, matching the sequential path's behaviour.
func ForEach(n, workers int, fn func(i int)) {
	ForEachHook(n, workers, fn, nil)
}

// ForEachHook is ForEach with an optional per-task observation hook
// (nil = unobserved; the pool then takes no clock readings).
func ForEachHook(n, workers int, fn func(i int), hook TaskHook) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	run := func(i, worker int) {
		if hook == nil {
			fn(i)
			return
		}
		start := time.Now() //reprolint:ordered hook-only timing observation; never reaches pipeline output
		fn(i)
		hook(i, worker, start, time.Since(start)) //reprolint:ordered hook-only timing observation; never reaches pipeline output
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i, 0)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			// A panicking task must not wedge the feeder: capture the
			// first panic, keep draining, and re-raise on the caller.
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
					for range next {
					}
				}
			}()
			for i := range next {
				run(i, worker)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// Pool is a long-running bounded worker pool: a fixed set of shard
// goroutines pulling tasks from a bounded queue. Unlike ForEach it is
// built for servers — tasks arrive over time, the queue length is the
// backpressure signal, and a panicking task is contained (reported to
// the OnPanic hook) instead of tearing the pool down. Determinism is
// still the submitter's contract: tasks must not depend on which shard
// runs them.
type Pool struct {
	queue   chan func()
	wg      sync.WaitGroup
	workers int

	mu       sync.Mutex
	closed   bool
	inflight int

	// OnPanic, when non-nil, observes a recovered task panic. Set it
	// before the first Submit; it runs on the worker goroutine.
	OnPanic func(v any)
}

// NewPool starts a pool of `workers` shard goroutines (0 = GOMAXPROCS)
// over a queue of `depth` waiting tasks (minimum 1). TrySubmit fails
// once `depth` tasks are queued on top of the `workers` running ones —
// that bound is the caller's backpressure line.
func NewPool(workers, depth int) *Pool {
	workers = Workers(workers)
	if depth < 1 {
		depth = 1
	}
	p := &Pool{queue: make(chan func(), depth), workers: workers}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() { //reprolint:go long-lived shard worker owned by Pool; lifecycle bounded by Close
			defer p.wg.Done()
			for fn := range p.queue {
				p.run(fn)
			}
		}()
	}
	return p
}

// run executes one task with panic containment.
func (p *Pool) run(fn func()) {
	defer func() {
		p.mu.Lock()
		p.inflight--
		p.mu.Unlock()
		if v := recover(); v != nil && p.OnPanic != nil {
			p.OnPanic(v)
		}
	}()
	fn()
}

// TrySubmit enqueues fn unless the queue is full or the pool closed.
// The false return is the backpressure signal servers turn into a 429.
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return false
	}
	select {
	case p.queue <- fn:
		p.inflight++
		p.mu.Unlock()
		return true
	default:
		p.mu.Unlock()
		return false
	}
}

// Workers returns the pool's shard count.
func (p *Pool) Workers() int { return p.workers }

// Depth returns the number of submitted tasks not yet finished —
// queued plus running.
func (p *Pool) Depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inflight
}

// Close stops intake and waits for every queued task to finish. Safe to
// call twice.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.queue)
	p.wg.Wait()
}
