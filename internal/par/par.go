// Package par is the bounded worker pool shared by the analysis and
// benchmark fan-outs: embarrassingly-parallel loops (per-signal region
// decomposition, per-signal MC checking, per-benchmark synthesis) run on
// up to GOMAXPROCS goroutines while callers keep deterministic output by
// writing results into index-addressed slots.
package par

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: n when positive, otherwise
// GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (0 = GOMAXPROCS) and returns when all calls are done. With one worker,
// or n < 2, it degrades to a plain loop on the calling goroutine.
// Determinism is the caller's contract: fn must write its result into a
// slot addressed by i, never append to shared state.
func ForEach(n, workers int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
