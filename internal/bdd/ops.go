package bdd

import (
	"fmt"
	"sort"
)

// This file holds the operators symbolic model checking needs beyond the
// basic boolean connectives: if-then-else, the AndExists relational
// product (image computation in one pass), variable substitution between
// current- and next-state variables, support-restricted counting and
// enumeration, and a mark-sweep garbage collection of the node table.

// ITE returns if f then g else h.
func (m *Manager) ITE(f, g, h int) int {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	case g == False && h == True:
		return m.Not(f)
	}
	k := opKey{op: '?', a: f, b: g, c: h}
	if r, ok := m.cacheGet(k); ok {
		return r
	}
	v := m.nodes[f].v
	if w := m.nodes[g].v; w < v {
		v = w
	}
	if w := m.nodes[h].v; w < v {
		v = w
	}
	fl, fh := m.cofactors(f, v)
	gl, gh := m.cofactors(g, v)
	hl, hh := m.cofactors(h, v)
	return m.cachePut(k, m.mk(v, m.ITE(fl, gl, hl), m.ITE(fh, gh, hh)))
}

// AndExists returns ∃cube. (f ∧ g) without materializing f ∧ g — the
// relational product at the heart of image computation. cube must be a
// conjunction of positive literals (as built by CubeVars) naming the
// variables to quantify.
func (m *Manager) AndExists(f, g, cube int) int {
	if f == False || g == False {
		return False
	}
	if f == True && g == True {
		return True
	}
	v := m.topVar(f, g)
	// Quantified variables above the top of f∧g do not constrain it;
	// skip them so the cache key is canonical.
	for cube != True && m.nodes[cube].v < v {
		cube = m.nodes[cube].hi
	}
	if cube == True {
		return m.And(f, g)
	}
	if f > g {
		f, g = g, f
	}
	k := opKey{op: 'E', a: f, b: g, c: cube}
	if r, ok := m.cacheGet(k); ok {
		return r
	}
	fl, fh := m.cofactors(f, v)
	gl, gh := m.cofactors(g, v)
	var r int
	if m.nodes[cube].v == v {
		rest := m.nodes[cube].hi
		r = m.AndExists(fl, gl, rest)
		if r != True {
			r = m.Or(r, m.AndExists(fh, gh, rest))
		}
	} else {
		r = m.mk(v, m.AndExists(fl, gl, cube), m.AndExists(fh, gh, cube))
	}
	return m.cachePut(k, r)
}

// Shift identifies a variable-substitution map registered with NewShift.
type Shift int

// NewShift registers the substitution map perm (perm[v] is the variable
// replacing v) and returns its handle. Replace requires that perm be
// order-preserving on the support of each function it is applied to;
// this is checked at Replace time, not here, so a single registered map
// can serve both directions of a current/next-state pairing.
func (m *Manager) NewShift(perm []int) Shift {
	if len(perm) != m.nvars {
		panic(fmt.Sprintf("bdd: shift map has %d entries for %d variables", len(perm), m.nvars))
	}
	for v, w := range perm {
		if w < 0 || w >= m.nvars {
			panic(fmt.Sprintf("bdd: shift maps variable %d to out-of-range %d", v, w))
		}
	}
	m.shifts = append(m.shifts, append([]int(nil), perm...))
	return Shift(len(m.shifts) - 1)
}

// Replace substitutes variables in f according to the registered shift:
// every variable v in f's support becomes shift's perm[v]. It panics if
// the substitution would reorder variables along any path — the
// interleaved current/next orderings this package is used with never do.
func (m *Manager) Replace(f int, s Shift) int {
	perm := m.shifts[s]
	var rec func(f int) int
	rec = func(f int) int {
		if f == False || f == True {
			return f
		}
		k := opKey{op: 'S', a: f, b: int(s)}
		if r, ok := m.cacheGet(k); ok {
			return r
		}
		n := m.nodes[f]
		lo, hi := rec(n.lo), rec(n.hi)
		nv := perm[n.v]
		if m.nodes[lo].v <= nv || m.nodes[hi].v <= nv {
			panic(fmt.Sprintf("bdd: shift does not preserve variable order at %d→%d", n.v, nv))
		}
		return m.cachePut(k, m.mk(nv, lo, hi))
	}
	return rec(f)
}

// SatCountVars counts the satisfying assignments of f over exactly the
// given variables, which must cover f's support (it panics otherwise).
// Unlike SatCount it does not weight variables outside the list, so a
// current-state set in an interleaved current/next universe counts
// correctly. Counts are uint64 and may wrap for > 2^64 assignments.
func (m *Manager) SatCountVars(f int, vars []int) uint64 {
	vs := append([]int(nil), vars...)
	sort.Ints(vs)
	level := make(map[int]int, len(vs)) // variable → position in vs
	for i, v := range vs {
		level[v] = i
	}
	lvl := func(n int) int {
		nd := m.nodes[n]
		if nd.v >= m.nvars {
			return len(vs)
		}
		l, ok := level[nd.v]
		if !ok {
			panic(fmt.Sprintf("bdd: SatCountVars support variable %d not listed", nd.v))
		}
		return l
	}
	memo := map[int]uint64{}
	var rec func(n int) uint64 // assignments over listed vars ≥ lvl(n)
	rec = func(n int) uint64 {
		switch n {
		case False:
			return 0
		case True:
			return 1
		}
		if c, ok := memo[n]; ok {
			return c
		}
		l := lvl(n)
		nd := m.nodes[n]
		c := rec(nd.lo)<<uint(lvl(nd.lo)-l-1) + rec(nd.hi)<<uint(lvl(nd.hi)-l-1)
		memo[n] = c
		return c
	}
	return rec(f) << uint(lvl(f))
}

// ForEachSat enumerates the satisfying assignments of f over the given
// variables (which must cover f's support) in lexicographic order of the
// BDD variable order, false before true. fn receives the assignment
// indexed by position in vars — valid only for the duration of the call —
// and returns false to stop. The indexing follows the caller's vars
// slice even when it is not sorted, so callers can keep entity-indexed
// variable maps while the manager permutes the underlying order.
// ForEachSat reports whether the enumeration ran to completion.
func (m *Manager) ForEachSat(f int, vars []int, fn func(assign []bool) bool) bool {
	vs := append([]int(nil), vars...)
	sort.Ints(vs)
	pos := make(map[int]int, len(vars)) // variable → caller position
	for i, v := range vars {
		pos[v] = i
	}
	assign := make([]bool, len(vs))
	var rec func(i, n int) bool
	rec = func(i, n int) bool {
		if n == False {
			return true
		}
		if i == len(vs) {
			if m.nodes[n].v < m.nvars {
				panic(fmt.Sprintf("bdd: ForEachSat support variable %d not listed", m.nodes[n].v))
			}
			return fn(assign)
		}
		lo, hi := m.cofactors(n, vs[i])
		p := pos[vs[i]]
		assign[p] = false
		if !rec(i+1, lo) {
			return false
		}
		assign[p] = true
		return rec(i+1, hi)
	}
	return rec(0, f)
}

// Support returns the sorted variables f depends on.
func (m *Manager) Support(f int) []int {
	seen := map[int]bool{}
	vars := map[int]bool{}
	var rec func(n int)
	rec = func(n int) {
		if n == False || n == True || seen[n] {
			return
		}
		seen[n] = true
		nd := m.nodes[n]
		vars[nd.v] = true
		rec(nd.lo)
		rec(nd.hi)
	}
	rec(f)
	out := make([]int, 0, len(vars))
	for v := range vars { //reprolint:ordered keys are collected then sorted before use
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Collect garbage-collects the node table, keeping only nodes reachable
// from roots, and returns the roots' new ids (aligned with the input).
// Every other node id and every cached op result is invalidated; callers
// must re-root all BDDs they hold. Registered shifts survive.
func (m *Manager) Collect(roots []int) []int {
	if n := len(m.nodes); n > m.stats.PeakNodes {
		m.stats.PeakNodes = n
	}
	old := m.nodes
	m.nodes = make([]node, 2, len(old)/2+2)
	m.nodes[False] = old[False]
	m.nodes[True] = old[True]
	size := initialCacheSize
	for size < len(old)/2 {
		size *= 2
	}
	m.unique = make([]int, size)
	m.uniqueUsed = 0
	// Node ids are remapped below, so every cached op result is stale;
	// clearing in place keeps the table's capacity across collections.
	clear(m.cache)
	m.cacheUsed = 0
	remap := make([]int, len(old))
	for i := range remap {
		remap[i] = -1
	}
	remap[False], remap[True] = False, True
	var rec func(id int) int
	rec = func(id int) int {
		if r := remap[id]; r >= 0 {
			return r
		}
		n := old[id]
		r := m.mk(n.v, rec(n.lo), rec(n.hi))
		remap[id] = r
		return r
	}
	out := make([]int, len(roots))
	for i, r := range roots {
		out[i] = rec(r)
	}
	m.stats.Collections++
	return out
}
