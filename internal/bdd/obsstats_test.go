package bdd_test

import (
	"strings"
	"testing"

	"repro/internal/bdd"
	"repro/internal/obs"
	"repro/internal/stg"
)

func TestPublishObsGauges(t *testing.T) {
	o := obs.New(nil)
	obs.Enable(o)
	defer obs.Enable(nil)

	m := bdd.New(8)
	// Drive the op cache: conjoin enough variable pairs that at least
	// one apply result is served from cache.
	f := m.Var(0)
	for v := 1; v < 8; v++ {
		f = m.And(f, m.Var(v))
	}
	for v := 1; v < 8; v++ {
		m.And(m.Var(v-1), m.Var(v))
	}
	m.PublishObs("test_scope")

	snap := o.Metrics.Snapshot()
	for _, name := range []string{"bdd_nodes_peak", "bdd_nodes", "bdd_cache_entries"} {
		key := name + `{scope="test_scope"}`
		if snap[key] <= 0 {
			t.Fatalf("%s = %v, want > 0 (snapshot %v)", key, snap[key], keysLike(snap, "bdd"))
		}
	}
	// The hit ratio is only published once the cache has been consulted;
	// with repeated identical And calls it must be present here.
	if hit := snap[`bdd_cache_hit_ratio_ppm{scope="test_scope"}`]; hit <= 0 || hit > 1_000_000 {
		t.Fatalf("bdd_cache_hit_ratio_ppm = %v, want in (0, 1e6]", hit)
	}

	// Republishing overwrites (gauge semantics): values must not
	// accumulate across milestones.
	before := snap[`bdd_nodes{scope="test_scope"}`]
	m.PublishObs("test_scope")
	after := o.Metrics.Snapshot()[`bdd_nodes{scope="test_scope"}`]
	if after != before {
		t.Fatalf("republish changed bdd_nodes from %v to %v without new allocation", before, after)
	}
}

// TestPublishObsDisabled: without an observer the export is a no-op.
func TestPublishObsDisabled(t *testing.T) {
	obs.Enable(nil)
	m := bdd.New(4)
	m.And(m.Var(0), m.Var(1))
	m.PublishObs("off") // must not panic
}

// TestSymbolicReachPublishesGauges pins the integration point: building
// a symbolic space under an enabled observer lands the BDD gauges in
// the registry with the stg_space scope.
func TestSymbolicReachPublishesGauges(t *testing.T) {
	o := obs.New(nil)
	obs.Enable(o)
	defer obs.Enable(nil)

	n, err := stg.Parse(`
.model toggle
.inputs a
.outputs b
.graph
a+ b+
b+ a-
a- b-
b- a+
.marking { <b-,a+> }
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stg.NewSymbolicSpace(n); err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics.Snapshot()
	found := false
	for k := range snap { //reprolint:ordered existence scan only
		if strings.HasPrefix(k, "bdd_nodes_peak{scope=\"stg_space\"}") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no stg_space BDD gauges in %v", keysLike(snap, "bdd"))
	}
}

func keysLike(m map[string]float64, sub string) []string {
	var out []string
	for k := range m { //reprolint:ordered diagnostic output only
		if strings.Contains(k, sub) {
			out = append(out, k)
		}
	}
	return out
}
