// Package bdd implements reduced ordered binary decision diagrams with
// hash-consing and an operation cache — the standard symbolic substrate
// of EDA tools. It is used for symbolic reachability of Signal
// Transition Graph markings (internal/stg's symbolic state counting),
// which scales to nets whose explicit state graphs would be too large,
// and is cross-checked against the explicit token game in the tests.
package bdd

import "fmt"

// Manager owns the node table of one BDD universe with a fixed variable
// order (variable 0 at the top).
type Manager struct {
	nvars  int
	nodes  []node
	unique map[node]int
	cache  map[opKey]int
}

type node struct {
	v      int // variable index; nvars for terminals
	lo, hi int
}

type opKey struct {
	op   byte
	a, b int
}

// Terminal node indices.
const (
	False = 0
	True  = 1
)

// New creates a manager over nvars variables.
func New(nvars int) *Manager {
	m := &Manager{
		nvars:  nvars,
		unique: make(map[node]int),
		cache:  make(map[opKey]int),
	}
	m.nodes = append(m.nodes,
		node{v: nvars, lo: -1, hi: -1}, // False
		node{v: nvars, lo: -1, hi: -1}, // True
	)
	return m
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.nvars }

// NumNodes returns the size of the node table (including terminals).
func (m *Manager) NumNodes() int { return len(m.nodes) }

// mk returns the canonical node for (v, lo, hi).
func (m *Manager) mk(v, lo, hi int) int {
	if lo == hi {
		return lo
	}
	n := node{v: v, lo: lo, hi: hi}
	if id, ok := m.unique[n]; ok {
		return id
	}
	m.nodes = append(m.nodes, n)
	id := len(m.nodes) - 1
	m.unique[n] = id
	return id
}

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) int {
	if i < 0 || i >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range", i))
	}
	return m.mk(i, False, True)
}

// NVar returns the BDD of ¬variable i.
func (m *Manager) NVar(i int) int {
	return m.mk(i, True, False)
}

func (m *Manager) topVar(f, g int) int {
	vf, vg := m.nodes[f].v, m.nodes[g].v
	if vf < vg {
		return vf
	}
	return vg
}

func (m *Manager) cofactors(f, v int) (lo, hi int) {
	if m.nodes[f].v == v {
		return m.nodes[f].lo, m.nodes[f].hi
	}
	return f, f
}

// And returns f ∧ g.
func (m *Manager) And(f, g int) int {
	switch {
	case f == False || g == False:
		return False
	case f == True:
		return g
	case g == True:
		return f
	case f == g:
		return f
	}
	if f > g {
		f, g = g, f
	}
	k := opKey{op: '&', a: f, b: g}
	if r, ok := m.cache[k]; ok {
		return r
	}
	v := m.topVar(f, g)
	fl, fh := m.cofactors(f, v)
	gl, gh := m.cofactors(g, v)
	r := m.mk(v, m.And(fl, gl), m.And(fh, gh))
	m.cache[k] = r
	return r
}

// Or returns f ∨ g.
func (m *Manager) Or(f, g int) int {
	switch {
	case f == True || g == True:
		return True
	case f == False:
		return g
	case g == False:
		return f
	case f == g:
		return f
	}
	if f > g {
		f, g = g, f
	}
	k := opKey{op: '|', a: f, b: g}
	if r, ok := m.cache[k]; ok {
		return r
	}
	v := m.topVar(f, g)
	fl, fh := m.cofactors(f, v)
	gl, gh := m.cofactors(g, v)
	r := m.mk(v, m.Or(fl, gl), m.Or(fh, gh))
	m.cache[k] = r
	return r
}

// Not returns ¬f.
func (m *Manager) Not(f int) int {
	switch f {
	case False:
		return True
	case True:
		return False
	}
	k := opKey{op: '!', a: f}
	if r, ok := m.cache[k]; ok {
		return r
	}
	n := m.nodes[f]
	r := m.mk(n.v, m.Not(n.lo), m.Not(n.hi))
	m.cache[k] = r
	return r
}

// Diff returns f ∧ ¬g.
func (m *Manager) Diff(f, g int) int { return m.And(f, m.Not(g)) }

// Restrict fixes variable v to the given value in f.
func (m *Manager) Restrict(f, v int, value bool) int {
	if m.nodes[f].v > v {
		return f
	}
	op := byte('r')
	if value {
		op = 'R'
	}
	k := opKey{op: op, a: f, b: v}
	if r, ok := m.cache[k]; ok {
		return r
	}
	n := m.nodes[f]
	var r int
	if n.v == v {
		if value {
			r = n.hi
		} else {
			r = n.lo
		}
	} else {
		r = m.mk(n.v, m.Restrict(n.lo, v, value), m.Restrict(n.hi, v, value))
	}
	m.cache[k] = r
	return r
}

// Exists quantifies variable v out of f: f[v=0] ∨ f[v=1].
func (m *Manager) Exists(f, v int) int {
	return m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
}

// ExistsAll quantifies a set of variables.
func (m *Manager) ExistsAll(f int, vars []int) int {
	for _, v := range vars {
		f = m.Exists(f, v)
	}
	return f
}

// Cube returns the conjunction of the given literals (variable, value).
func (m *Manager) Cube(lits map[int]bool) int {
	f := True
	for v, val := range lits {
		if val {
			f = m.And(f, m.Var(v))
		} else {
			f = m.And(f, m.NVar(v))
		}
	}
	return f
}

// SatCount returns the number of satisfying assignments of f over all
// nvars variables.
func (m *Manager) SatCount(f int) uint64 {
	memo := map[int]uint64{}
	var rec func(n int) uint64 // assignments over vars ≥ nodes[n].v
	rec = func(n int) uint64 {
		switch n {
		case False:
			return 0
		case True:
			return 1
		}
		if c, ok := memo[n]; ok {
			return c
		}
		nd := m.nodes[n]
		lo := rec(nd.lo) << uint(m.nodes[nd.lo].v-nd.v-1)
		hi := rec(nd.hi) << uint(m.nodes[nd.hi].v-nd.v-1)
		c := lo + hi
		memo[n] = c
		return c
	}
	return rec(f) << uint(m.nodes[f].v)
}

// Size returns the number of nodes reachable from f (the function's own
// BDD size, excluding unrelated table entries).
func (m *Manager) Size(f int) int {
	seen := map[int]bool{}
	var rec func(n int)
	rec = func(n int) {
		if seen[n] || n == False || n == True {
			return
		}
		seen[n] = true
		rec(m.nodes[n].lo)
		rec(m.nodes[n].hi)
	}
	rec(f)
	return len(seen) + 2
}

// Eval evaluates f under a complete assignment.
func (m *Manager) Eval(f int, assign []bool) bool {
	for f != False && f != True {
		n := m.nodes[f]
		if assign[n.v] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}
