// Package bdd implements reduced ordered binary decision diagrams with
// hash-consing and an operation cache — the standard symbolic substrate
// of EDA tools. It is used for symbolic reachability of Signal
// Transition Graph markings (internal/stg's symbolic state counting),
// which scales to nets whose explicit state graphs would be too large,
// and is cross-checked against the explicit token game in the tests.
package bdd

import (
	"fmt"
	"sort"
)

// Manager owns the node table of one BDD universe with a fixed variable
// order (variable 0 at the top).
type Manager struct {
	nvars      int
	nodes      []node
	unique     []int     // open-addressed hash-cons table of node ids; 0 = empty, power-of-two length
	uniqueUsed int       // occupied unique slots
	cache      []opEntry // direct-mapped op cache; power-of-two length
	cacheUsed  int       // occupied cache slots
	cacheLimit int       // op-cache entry bound; caps the table size
	shifts     [][]int   // registered variable-substitution maps
	stats      Stats
}

type node struct {
	v      int // variable index; nvars for terminals
	lo, hi int
}

type opKey struct {
	op      byte
	a, b, c int
}

// opEntry is one direct-mapped cache slot; op == 0 marks it empty (all
// operation tags are non-zero bytes). A colliding insert overwrites —
// the cache memoizes, it never defines semantics, so lossiness costs
// recomputation only.
type opEntry struct {
	op      byte
	a, b, c int
	r       int
}

// hash mixes an operation key into a table index. Fibonacci-style
// multiplicative mixing keeps consecutive node ids (the common case —
// ids are allocation-ordered) from clustering into runs of slots.
func (k opKey) hash() uint64 {
	h := uint64(uint(k.a))*0x9E3779B97F4A7C15 +
		uint64(uint(k.b))*0xC2B2AE3D27D4EB4F +
		uint64(uint(k.c))*0x165667B19E3779F9 +
		uint64(k.op)*0x27D4EB2F165667C5
	h ^= h >> 32
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}

// Terminal node indices.
const (
	False = 0
	True  = 1
)

// DefaultCacheLimit bounds the op cache of a fresh manager. Memoization
// is the only purpose of the cache, so evicting at the bound costs
// recomputation but never correctness; without a bound a long fixpoint
// (symbolic reachability of a 10^6-state net) grows the cache without
// limit even while the live node count stays small.
const DefaultCacheLimit = 1 << 20

// initialCacheSize is the op-cache table's starting length; the table
// doubles as it fills, up to the limit's power-of-two floor.
const initialCacheSize = 1 << 10

// New creates a manager over nvars variables.
func New(nvars int) *Manager {
	m := &Manager{
		nvars:      nvars,
		unique:     make([]int, initialCacheSize),
		cache:      make([]opEntry, initialCacheSize),
		cacheLimit: DefaultCacheLimit,
	}
	m.nodes = append(m.nodes,
		node{v: nvars, lo: -1, hi: -1}, // False
		node{v: nvars, lo: -1, hi: -1}, // True
	)
	return m
}

// nodeHash mixes a node triple into a unique-table index.
func nodeHash(v, lo, hi int) uint64 {
	h := uint64(uint(v))*0x27D4EB2F165667C5 +
		uint64(uint(lo))*0x9E3779B97F4A7C15 +
		uint64(uint(hi))*0xC2B2AE3D27D4EB4F
	h ^= h >> 32
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}

// pow2floor returns the largest power of two ≤ n (minimum 1).
func pow2floor(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// SetCacheLimit bounds the op cache to n entries (n ≥ 1). The
// direct-mapped table never grows past the limit's power-of-two floor;
// colliding inserts evict in place and count toward CacheResets.
func (m *Manager) SetCacheLimit(n int) {
	if n < 1 {
		panic("bdd: cache limit must be ≥ 1")
	}
	m.cacheLimit = n
	if cap := pow2floor(n); len(m.cache) > cap {
		m.cache = make([]opEntry, cap)
		m.cacheUsed = 0
		m.stats.CacheResets++
	}
}

// Stats are the manager's lifetime operation counters.
type Stats struct {
	CacheHits   int64
	CacheMisses int64
	CacheResets int64 // op-cache entries dropped by the bound (collision evictions + forced shrinks)
	Collections int64 // Collect garbage collections
	PeakNodes   int   // high-water node-table size across collections
}

// Stats returns a snapshot of the operation counters.
func (m *Manager) Stats() Stats {
	s := m.stats
	if n := len(m.nodes); n > s.PeakNodes {
		s.PeakNodes = n
	}
	return s
}

// CacheLen returns the current op-cache entry count (for the
// bounded-cache regression tests).
func (m *Manager) CacheLen() int { return m.cacheUsed }

// cacheGet looks an operation up, counting hits and misses.
func (m *Manager) cacheGet(k opKey) (int, bool) {
	e := &m.cache[k.hash()&uint64(len(m.cache)-1)]
	if e.op == k.op && e.a == k.a && e.b == k.b && e.c == k.c {
		m.stats.CacheHits++
		return e.r, true
	}
	m.stats.CacheMisses++
	return 0, false
}

// cachePut memoizes an operation result, growing the table (dropping
// its contents — they are memoization only) while under the limit and
// evicting the colliding slot once at it. It returns r so call sites
// can memoize and return in one expression.
func (m *Manager) cachePut(k opKey, r int) int {
	if m.cacheUsed >= len(m.cache)-len(m.cache)/4 && len(m.cache) < pow2floor(m.cacheLimit) {
		m.cache = make([]opEntry, len(m.cache)*2)
		m.cacheUsed = 0
	}
	e := &m.cache[k.hash()&uint64(len(m.cache)-1)]
	if e.op == 0 {
		m.cacheUsed++
	} else {
		m.stats.CacheResets++
	}
	*e = opEntry{op: k.op, a: k.a, b: k.b, c: k.c, r: r}
	return r
}

// NumVars returns the variable count.
func (m *Manager) NumVars() int { return m.nvars }

// NumNodes returns the size of the node table (including terminals).
func (m *Manager) NumNodes() int { return len(m.nodes) }

// mk returns the canonical node for (v, lo, hi), hash-consing through
// the open-addressed unique table (linear probing; node ids start at 2,
// so 0 doubles as the empty marker).
func (m *Manager) mk(v, lo, hi int) int {
	if lo == hi {
		return lo
	}
	mask := uint64(len(m.unique) - 1)
	i := nodeHash(v, lo, hi) & mask
	for {
		id := m.unique[i]
		if id == 0 {
			break
		}
		if n := &m.nodes[id]; n.v == v && n.lo == lo && n.hi == hi {
			return id
		}
		i = (i + 1) & mask
	}
	m.nodes = append(m.nodes, node{v: v, lo: lo, hi: hi})
	id := len(m.nodes) - 1
	m.unique[i] = id
	m.uniqueUsed++
	if m.uniqueUsed >= len(m.unique)-len(m.unique)/4 {
		m.growUnique(len(m.unique) * 2)
	}
	return id
}

// growUnique reindexes every live node into a fresh table of the given
// power-of-two size.
func (m *Manager) growUnique(size int) {
	m.unique = make([]int, size)
	mask := uint64(size - 1)
	for id := 2; id < len(m.nodes); id++ {
		n := &m.nodes[id]
		i := nodeHash(n.v, n.lo, n.hi) & mask
		for m.unique[i] != 0 {
			i = (i + 1) & mask
		}
		m.unique[i] = id
	}
	m.uniqueUsed = len(m.nodes) - 2
}

// Var returns the BDD of variable i.
func (m *Manager) Var(i int) int {
	if i < 0 || i >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range", i))
	}
	return m.mk(i, False, True)
}

// NVar returns the BDD of ¬variable i.
func (m *Manager) NVar(i int) int {
	return m.mk(i, True, False)
}

func (m *Manager) topVar(f, g int) int {
	vf, vg := m.nodes[f].v, m.nodes[g].v
	if vf < vg {
		return vf
	}
	return vg
}

func (m *Manager) cofactors(f, v int) (lo, hi int) {
	if m.nodes[f].v == v {
		return m.nodes[f].lo, m.nodes[f].hi
	}
	return f, f
}

// And returns f ∧ g.
func (m *Manager) And(f, g int) int {
	switch {
	case f == False || g == False:
		return False
	case f == True:
		return g
	case g == True:
		return f
	case f == g:
		return f
	}
	if f > g {
		f, g = g, f
	}
	k := opKey{op: '&', a: f, b: g}
	if r, ok := m.cacheGet(k); ok {
		return r
	}
	v := m.topVar(f, g)
	fl, fh := m.cofactors(f, v)
	gl, gh := m.cofactors(g, v)
	return m.cachePut(k, m.mk(v, m.And(fl, gl), m.And(fh, gh)))
}

// Or returns f ∨ g.
func (m *Manager) Or(f, g int) int {
	switch {
	case f == True || g == True:
		return True
	case f == False:
		return g
	case g == False:
		return f
	case f == g:
		return f
	}
	if f > g {
		f, g = g, f
	}
	k := opKey{op: '|', a: f, b: g}
	if r, ok := m.cacheGet(k); ok {
		return r
	}
	v := m.topVar(f, g)
	fl, fh := m.cofactors(f, v)
	gl, gh := m.cofactors(g, v)
	return m.cachePut(k, m.mk(v, m.Or(fl, gl), m.Or(fh, gh)))
}

// Not returns ¬f.
func (m *Manager) Not(f int) int {
	switch f {
	case False:
		return True
	case True:
		return False
	}
	k := opKey{op: '!', a: f}
	if r, ok := m.cacheGet(k); ok {
		return r
	}
	n := m.nodes[f]
	return m.cachePut(k, m.mk(n.v, m.Not(n.lo), m.Not(n.hi)))
}

// Diff returns f ∧ ¬g.
func (m *Manager) Diff(f, g int) int { return m.And(f, m.Not(g)) }

// Restrict fixes variable v to the given value in f.
func (m *Manager) Restrict(f, v int, value bool) int {
	if m.nodes[f].v > v {
		return f
	}
	op := byte('r')
	if value {
		op = 'R'
	}
	k := opKey{op: op, a: f, b: v}
	if r, ok := m.cacheGet(k); ok {
		return r
	}
	n := m.nodes[f]
	var r int
	if n.v == v {
		if value {
			r = n.hi
		} else {
			r = n.lo
		}
	} else {
		r = m.mk(n.v, m.Restrict(n.lo, v, value), m.Restrict(n.hi, v, value))
	}
	return m.cachePut(k, r)
}

// Exists quantifies variable v out of f: f[v=0] ∨ f[v=1].
func (m *Manager) Exists(f, v int) int {
	return m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
}

// ExistsAll quantifies a set of variables.
func (m *Manager) ExistsAll(f int, vars []int) int {
	for _, v := range vars {
		f = m.Exists(f, v)
	}
	return f
}

// Cube returns the conjunction of the given literals (variable, value).
func (m *Manager) Cube(lits map[int]bool) int {
	vars := make([]int, 0, len(lits))
	for v := range lits { //reprolint:ordered keys are collected then sorted before use
		vars = append(vars, v)
	}
	sort.Ints(vars)
	// Build bottom-up so each literal adds exactly one node and the node
	// table grows identically on every run.
	f := True
	for i := len(vars) - 1; i >= 0; i-- {
		v := vars[i]
		if v < 0 || v >= m.nvars {
			panic(fmt.Sprintf("bdd: variable %d out of range", v))
		}
		if lits[v] {
			f = m.mk(v, False, f)
		} else {
			f = m.mk(v, f, False)
		}
	}
	return f
}

// CubeVars returns the conjunction of the given variables as positive
// literals — the quantification-cube form AndExists expects.
func (m *Manager) CubeVars(vars []int) int {
	vs := append([]int(nil), vars...)
	sort.Ints(vs)
	f := True
	for i := len(vs) - 1; i >= 0; i-- {
		v := vs[i]
		if v < 0 || v >= m.nvars {
			panic(fmt.Sprintf("bdd: variable %d out of range", v))
		}
		if i+1 < len(vs) && vs[i+1] == v {
			continue
		}
		f = m.mk(v, False, f)
	}
	return f
}

// SatCount returns the number of satisfying assignments of f over all
// nvars variables.
func (m *Manager) SatCount(f int) uint64 {
	memo := map[int]uint64{}
	var rec func(n int) uint64 // assignments over vars ≥ nodes[n].v
	rec = func(n int) uint64 {
		switch n {
		case False:
			return 0
		case True:
			return 1
		}
		if c, ok := memo[n]; ok {
			return c
		}
		nd := m.nodes[n]
		lo := rec(nd.lo) << uint(m.nodes[nd.lo].v-nd.v-1)
		hi := rec(nd.hi) << uint(m.nodes[nd.hi].v-nd.v-1)
		c := lo + hi
		memo[n] = c
		return c
	}
	return rec(f) << uint(m.nodes[f].v)
}

// Size returns the number of nodes reachable from f (the function's own
// BDD size, excluding unrelated table entries).
func (m *Manager) Size(f int) int {
	seen := map[int]bool{}
	var rec func(n int)
	rec = func(n int) {
		if seen[n] || n == False || n == True {
			return
		}
		seen[n] = true
		rec(m.nodes[n].lo)
		rec(m.nodes[n].hi)
	}
	rec(f)
	return len(seen) + 2
}

// Eval evaluates f under a complete assignment.
func (m *Manager) Eval(f int, assign []bool) bool {
	for f != False && f != True {
		n := m.nodes[f]
		if assign[n.v] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}
