package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminals(t *testing.T) {
	m := New(3)
	if m.And(True, False) != False || m.Or(True, False) != True {
		t.Fatal("terminal algebra broken")
	}
	if m.Not(True) != False || m.Not(False) != True {
		t.Fatal("negation broken")
	}
}

func TestVarSemantics(t *testing.T) {
	m := New(2)
	x, y := m.Var(0), m.Var(1)
	f := m.And(x, m.Not(y))
	cases := []struct {
		a    []bool
		want bool
	}{
		{[]bool{false, false}, false},
		{[]bool{true, false}, true},
		{[]bool{true, true}, false},
		{[]bool{false, true}, false},
	}
	for _, c := range cases {
		if got := m.Eval(f, c.a); got != c.want {
			t.Errorf("x∧¬y at %v = %v", c.a, got)
		}
	}
	if m.SatCount(f) != 1 {
		t.Errorf("satcount = %d", m.SatCount(f))
	}
}

func TestCanonicity(t *testing.T) {
	m := New(3)
	// (x ∨ y) ∧ z built two ways must be the same node.
	a := m.And(m.Or(m.Var(0), m.Var(1)), m.Var(2))
	b := m.Or(m.And(m.Var(0), m.Var(2)), m.And(m.Var(1), m.Var(2)))
	if a != b {
		t.Fatal("equivalent functions got different nodes (canonicity broken)")
	}
}

func TestRestrictExists(t *testing.T) {
	m := New(3)
	f := m.And(m.Var(0), m.Or(m.Var(1), m.Var(2)))
	if got := m.Restrict(f, 0, false); got != False {
		t.Fatal("f[x0=0] must be false")
	}
	g := m.Exists(f, 1) // x0 ∧ (⊤ ∨ x2) = x0
	if g != m.Var(0) {
		t.Fatal("∃x1 f must be x0")
	}
}

func TestCube(t *testing.T) {
	m := New(4)
	c := m.Cube(map[int]bool{0: true, 2: false})
	if m.SatCount(c) != 4 {
		t.Fatalf("cube satcount = %d, want 4", m.SatCount(c))
	}
}

// brute evaluates a random expression tree both through the BDD and by
// direct evaluation.
func TestQuickAgainstBruteForce(t *testing.T) {
	type expr struct {
		op   byte // 'v', '&', '|', '!'
		v    int
		l, r *expr
	}
	var build func(rr *rand.Rand, depth, nvars int) *expr
	build = func(rr *rand.Rand, depth, nvars int) *expr {
		if depth == 0 || rr.Intn(3) == 0 {
			return &expr{op: 'v', v: rr.Intn(nvars)}
		}
		switch rr.Intn(3) {
		case 0:
			return &expr{op: '&', l: build(rr, depth-1, nvars), r: build(rr, depth-1, nvars)}
		case 1:
			return &expr{op: '|', l: build(rr, depth-1, nvars), r: build(rr, depth-1, nvars)}
		default:
			return &expr{op: '!', l: build(rr, depth-1, nvars)}
		}
	}
	var evalExpr func(e *expr, a []bool) bool
	evalExpr = func(e *expr, a []bool) bool {
		switch e.op {
		case 'v':
			return a[e.v]
		case '&':
			return evalExpr(e.l, a) && evalExpr(e.r, a)
		case '|':
			return evalExpr(e.l, a) || evalExpr(e.r, a)
		default:
			return !evalExpr(e.l, a)
		}
	}
	var toBDD func(m *Manager, e *expr) int
	toBDD = func(m *Manager, e *expr) int {
		switch e.op {
		case 'v':
			return m.Var(e.v)
		case '&':
			return m.And(toBDD(m, e.l), toBDD(m, e.r))
		case '|':
			return m.Or(toBDD(m, e.l), toBDD(m, e.r))
		default:
			return m.Not(toBDD(m, e.l))
		}
	}
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		nvars := 2 + rr.Intn(6)
		e := build(rr, 4, nvars)
		m := New(nvars)
		g := toBDD(m, e)
		count := uint64(0)
		for v := 0; v < 1<<uint(nvars); v++ {
			a := make([]bool, nvars)
			for i := range a {
				a[i] = v>>uint(i)&1 == 1
			}
			want := evalExpr(e, a)
			if m.Eval(g, a) != want {
				return false
			}
			if want {
				count++
			}
		}
		return m.SatCount(g) == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSatCountShifts(t *testing.T) {
	// Constant True over n vars has 2^n assignments.
	m := New(10)
	if got := m.SatCount(True); got != 1024 {
		t.Fatalf("satcount(⊤) = %d", got)
	}
	if got := m.SatCount(m.Var(9)); got != 512 {
		t.Fatalf("satcount(x9) = %d", got)
	}
}
