package bdd

import (
	"math/rand"
	"testing"
)

// randFunc builds a random function over nvars variables as both a BDD
// and a truth table, for brute-force cross-checks.
func randFunc(m *Manager, rr *rand.Rand, nvars int) int {
	f := False
	if rr.Intn(2) == 0 {
		f = True
	}
	for i := 0; i < 1+rr.Intn(6); i++ {
		lits := map[int]bool{}
		for v := 0; v < nvars; v++ {
			if rr.Intn(2) == 0 {
				lits[v] = rr.Intn(2) == 0
			}
		}
		if rr.Intn(2) == 0 {
			f = m.Or(f, m.Cube(lits))
		} else {
			f = m.Diff(f, m.Cube(lits))
		}
	}
	return f
}

func forAllAssigns(nvars int, fn func(a []bool)) {
	a := make([]bool, nvars)
	for v := 0; v < 1<<uint(nvars); v++ {
		for i := range a {
			a[i] = v>>uint(i)&1 == 1
		}
		fn(a)
	}
}

func TestITEAgainstBruteForce(t *testing.T) {
	rr := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		nvars := 2 + rr.Intn(5)
		m := New(nvars)
		f, g, h := randFunc(m, rr, nvars), randFunc(m, rr, nvars), randFunc(m, rr, nvars)
		r := m.ITE(f, g, h)
		forAllAssigns(nvars, func(a []bool) {
			want := m.Eval(g, a)
			if !m.Eval(f, a) {
				want = m.Eval(h, a)
			}
			if m.Eval(r, a) != want {
				t.Fatalf("trial %d: ITE wrong at %v", trial, a)
			}
		})
	}
}

func TestAndExistsAgainstBruteForce(t *testing.T) {
	rr := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		nvars := 2 + rr.Intn(5)
		m := New(nvars)
		f, g := randFunc(m, rr, nvars), randFunc(m, rr, nvars)
		var qvars []int
		for v := 0; v < nvars; v++ {
			if rr.Intn(2) == 0 {
				qvars = append(qvars, v)
			}
		}
		got := m.AndExists(f, g, m.CubeVars(qvars))
		want := m.ExistsAll(m.And(f, g), qvars)
		if got != want {
			t.Fatalf("trial %d: AndExists ≠ ∃(f∧g) over %v", trial, qvars)
		}
	}
}

func TestReplaceInterleaved(t *testing.T) {
	// Interleaved current/next universe over 3 signal pairs: cur_i = 2i,
	// next_i = 2i+1. One swap map serves both directions because each
	// function's support stays on one side.
	const pairs = 3
	m := New(2 * pairs)
	perm := make([]int, 2*pairs)
	for i := 0; i < pairs; i++ {
		perm[2*i] = 2*i + 1
		perm[2*i+1] = 2 * i
	}
	s := m.NewShift(perm)
	rr := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		// A function over current vars only.
		f := False
		for i := 0; i < 3; i++ {
			lits := map[int]bool{}
			for p := 0; p < pairs; p++ {
				if rr.Intn(2) == 0 {
					lits[2*p] = rr.Intn(2) == 0
				}
			}
			f = m.Or(f, m.Cube(lits))
		}
		g := m.Replace(f, s)
		forAllAssigns(2*pairs, func(a []bool) {
			swapped := make([]bool, len(a))
			for p := 0; p < pairs; p++ {
				swapped[2*p], swapped[2*p+1] = a[2*p+1], a[2*p]
			}
			if m.Eval(g, a) != m.Eval(f, swapped) {
				t.Fatalf("trial %d: Replace wrong at %v", trial, a)
			}
		})
		if m.Replace(g, s) != f {
			t.Fatalf("trial %d: Replace is not an involution", trial)
		}
	}
}

func TestReplaceRejectsReordering(t *testing.T) {
	m := New(3)
	s := m.NewShift([]int{2, 1, 0}) // reverses order on 2-var supports
	f := m.And(m.Var(0), m.Not(m.Var(2)))
	defer func() {
		if recover() == nil {
			t.Fatal("order-breaking shift must panic")
		}
	}()
	m.Replace(f, s)
}

func TestSatCountVars(t *testing.T) {
	m := New(6)
	// x0 ∧ ¬x2 over current vars {0,2,4}: one free var → 2 assignments.
	f := m.And(m.Var(0), m.Not(m.Var(2)))
	if got := m.SatCountVars(f, []int{0, 2, 4}); got != 2 {
		t.Fatalf("SatCountVars = %d, want 2", got)
	}
	if got := m.SatCountVars(True, []int{1, 3, 5}); got != 8 {
		t.Fatalf("SatCountVars(⊤) = %d, want 8", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("uncovered support must panic")
		}
	}()
	m.SatCountVars(f, []int{0, 4})
}

func TestForEachSatOrderAndCompleteness(t *testing.T) {
	m := New(4)
	f := m.Or(m.Cube(map[int]bool{0: true, 1: false}), m.Cube(map[int]bool{2: true}))
	vars := []int{0, 1, 2, 3}
	var got [][]bool
	m.ForEachSat(f, vars, func(a []bool) bool {
		got = append(got, append([]bool(nil), a...))
		return true
	})
	var want [][]bool
	a := make([]bool, 4)
	var gen func(i int)
	gen = func(i int) {
		if i == 4 {
			if m.Eval(f, a) {
				want = append(want, append([]bool(nil), a...))
			}
			return
		}
		a[i] = false
		gen(i + 1)
		a[i] = true
		gen(i + 1)
	}
	gen(0)
	if len(got) != len(want) {
		t.Fatalf("enumerated %d assignments, want %d", len(got), len(want))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("assignment %d differs: %v vs %v", i, got[i], want[i])
			}
		}
	}
	// Early stop.
	n := 0
	if m.ForEachSat(f, vars, func([]bool) bool { n++; return n < 2 }) {
		t.Fatal("early-stopped enumeration must report false")
	}
	if n != 2 {
		t.Fatalf("stopped after %d calls, want 2", n)
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.Or(m.And(m.Var(1), m.Var(4)), m.Not(m.Var(3)))
	got := m.Support(f)
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("support %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("support %v, want %v", got, want)
		}
	}
}

func TestCacheLimitBoundsCache(t *testing.T) {
	m := New(24)
	m.SetCacheLimit(256)
	rr := rand.New(rand.NewSource(4))
	f := False
	for i := 0; i < 400; i++ {
		f = m.Or(f, randFunc(m, rr, 24))
		if m.CacheLen() > 256 {
			t.Fatalf("op cache grew to %d entries past the 256 limit", m.CacheLen())
		}
	}
	if m.Stats().CacheResets == 0 {
		t.Fatal("expected at least one cache reset under a tight limit")
	}
}

func TestCollectPreservesFunctions(t *testing.T) {
	m := New(8)
	rr := rand.New(rand.NewSource(5))
	var roots []int
	for i := 0; i < 4; i++ {
		roots = append(roots, randFunc(m, rr, 8))
	}
	// Create garbage: functions we will not keep.
	for i := 0; i < 50; i++ {
		randFunc(m, rr, 8)
	}
	before := m.NumNodes()
	tables := make([][]bool, len(roots))
	for i, r := range roots {
		forAllAssigns(8, func(a []bool) {
			tables[i] = append(tables[i], m.Eval(r, a))
		})
	}
	newRoots := m.Collect(roots)
	if m.NumNodes() >= before {
		t.Fatalf("Collect did not shrink the table: %d → %d", before, m.NumNodes())
	}
	for i, r := range newRoots {
		j := 0
		forAllAssigns(8, func(a []bool) {
			if m.Eval(r, a) != tables[i][j] {
				t.Fatalf("root %d changed semantics after Collect", i)
			}
			j++
		})
	}
	if m.Stats().Collections != 1 {
		t.Fatalf("Collections = %d, want 1", m.Stats().Collections)
	}
	// The manager must remain fully usable after a collection.
	if m.And(newRoots[0], m.Not(newRoots[0])) != False {
		t.Fatal("manager broken after Collect")
	}
}

func TestCubeDeterministic(t *testing.T) {
	// Two managers fed the same literal map must intern identical node
	// ids, regardless of map iteration order.
	build := func() (int, int) {
		m := New(12)
		lits := map[int]bool{0: true, 3: false, 5: true, 7: false, 9: true, 11: false}
		return m.Cube(lits), m.NumNodes()
	}
	f1, n1 := build()
	f2, n2 := build()
	if f1 != f2 || n1 != n2 {
		t.Fatalf("Cube nondeterministic: ids %d/%d, tables %d/%d", f1, f2, n1, n2)
	}
}
