package bdd

import "repro/internal/obs"

// PublishObs exports the manager's op-cache effectiveness and node
// high-water mark as obs gauges, labelled by the caller's scope (the
// symbolic substrate serves several clients — reachability spaces,
// engine-level analysis — and their cache behaviour differs wildly).
// Gauges, not counters: a manager republishing at several milestones
// must overwrite, never double-count. A no-op without an enabled
// observer; call it once per completed phase, never inside operator
// loops.
func (m *Manager) PublishObs(scope string) {
	o := obs.Get()
	if o == nil {
		return
	}
	st := m.Stats()
	mt := o.Metrics
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		mt.Gauge("bdd_cache_hit_ratio_ppm", "scope", scope).Set(st.CacheHits * 1_000_000 / total)
	}
	mt.Gauge("bdd_nodes_peak", "scope", scope).Set(int64(st.PeakNodes))
	mt.Gauge("bdd_nodes", "scope", scope).Set(int64(m.NumNodes()))
	mt.Gauge("bdd_cache_entries", "scope", scope).Set(int64(m.CacheLen()))
}
