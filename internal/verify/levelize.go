package verify

import "repro/internal/netlist"

// evaluator is the levelized view of a netlist's combinational network:
// the AND/OR gates in topological order plus, per net, the list of gates
// whose excitation status can change when that net flips. Built once per
// verification run, it replaces the recursive per-probe steady-state
// evaluator with an iterative sweep over preallocated buffers and lets
// the explorer re-evaluate only the fan-out cone of the single net that
// changed between composed states.
type evaluator struct {
	nl     *netlist.Netlist
	order  []int32   // combinational gates, inputs before outputs
	cyclic bool      // a combinational cycle defeats levelization
	fanout [][]int32 // net → gates to re-evaluate when the net flips
}

func levelize(nl *netlist.Netlist) *evaluator {
	ev := &evaluator{nl: nl, fanout: make([][]int32, nl.NumNets())}

	// Topological order of the combinational gates (DFS postorder over
	// pin-net drivers). Gates on a cycle mark the evaluator cyclic; the
	// verifier then falls back to the recursive reference evaluator.
	const (
		white = iota
		gray
		black
	)
	color := make([]int8, len(nl.Gates))
	var visit func(gi int)
	visit = func(gi int) {
		switch color[gi] {
		case gray:
			ev.cyclic = true
			return
		case black:
			return
		}
		color[gi] = gray
		for _, p := range nl.Gates[gi].Pins {
			if d := nl.Nets[p.Net].Driver; d >= 0 && nl.Gates[d].Kind.Combinational() {
				visit(d)
			}
		}
		color[gi] = black
		ev.order = append(ev.order, int32(gi))
	}
	for gi := range nl.Gates {
		if nl.Gates[gi].Kind.Combinational() {
			visit(gi)
		}
	}

	// Excitation fan-out. Eval(g) compares against values[g.Out], so a
	// flip of g's own output net re-excites g; CElem and RSLatch also
	// read their output for the hold case, and Complex gates read every
	// specification signal net through SignalNet.
	add := func(net, gi int) {
		for _, have := range ev.fanout[net] {
			if have == int32(gi) {
				return
			}
		}
		ev.fanout[net] = append(ev.fanout[net], int32(gi))
	}
	for gi, g := range nl.Gates {
		add(g.Out, gi)
		for _, p := range g.Pins {
			add(p.Net, gi)
		}
		if g.Kind == netlist.Complex {
			for _, net := range nl.SignalNet {
				add(net, gi)
			}
		}
	}
	return ev
}

// sweep settles the combinational network over vals into settled (both
// caller-owned, len == NumNets): non-combinational nets keep their
// current values, AND/OR outputs are recomputed in topological order.
// Equivalent to the recursive funcVal on acyclic networks.
func (ev *evaluator) sweep(vals, settled []bool) {
	copy(settled, vals)
	nl := ev.nl
	for _, gi := range ev.order {
		g := &nl.Gates[gi]
		v := g.Kind == netlist.And
		if v {
			for _, p := range g.Pins {
				if settled[p.Net] == p.Invert {
					v = false
					break
				}
			}
		} else {
			for _, p := range g.Pins {
				if settled[p.Net] != p.Invert {
					v = true
					break
				}
			}
		}
		settled[g.Out] = v
	}
}

// pinVal reads a pin over a settled value slice.
func pinVal(settled []bool, p netlist.Pin) bool { return settled[p.Net] != p.Invert }
