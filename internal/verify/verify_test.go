package verify_test

import (
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sg"
	"repro/internal/stg"
	"repro/internal/verify"
)

func buildFromMC(t *testing.T, g *sg.Graph, opts netlist.Options) *netlist.Netlist {
	t.Helper()
	rep := core.NewAnalyzer(g).CheckGraph()
	if !rep.Satisfied() {
		t.Fatalf("MC not satisfied:\n%s", rep)
	}
	fns := map[int]netlist.SR{}
	for sig := range g.Signals {
		if g.Input[sig] {
			continue
		}
		set, reset, err := rep.ExcitationFunctions(sig)
		if err != nil {
			t.Fatal(err)
		}
		fns[sig] = netlist.SR{Set: set, Reset: reset}
	}
	nl, err := netlist.Build(g, fns, opts)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func mustSG(t *testing.T, src string) *sg.Graph {
	t.Helper()
	g, err := stg.BuildSG(stg.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const handshakeG = `
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`

const celemG = `
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
`

func TestHandshakeWireVerifies(t *testing.T) {
	g := mustSG(t, handshakeG)
	nl := buildFromMC(t, g, netlist.Options{})
	res := verify.Check(nl, g)
	if !res.OK() {
		t.Fatalf("handshake implementation must verify:\n%s", res)
	}
	if res.States < 4 {
		t.Errorf("composed states = %d, expected at least the 4 spec states", res.States)
	}
}

func TestCElementSpecVerifiesCAndRS(t *testing.T) {
	g := mustSG(t, celemG)
	for _, rs := range []bool{false, true} {
		nl := buildFromMC(t, g, netlist.Options{RS: rs})
		res := verify.Check(nl, g)
		if !res.OK() {
			t.Fatalf("rs=%v: %s\n%s", rs, res, nl)
		}
	}
}

// fig4Baseline hand-builds the paper's Example-2 implementation
// t = c'd, b = a + t, which satisfies the Beerel–Meng correct-cover
// conditions but violates MC and is hazardous.
func fig4Baseline(g *sg.Graph) *netlist.Netlist {
	nl := &netlist.Netlist{G: g, SignalNet: make([]int, g.NumSignals())}
	for sig, name := range g.Signals {
		nl.Nets = append(nl.Nets, netlist.Net{Name: name, Driver: -1, Signal: sig})
		nl.SignalNet[sig] = sig
	}
	a := g.SignalIndex("a")
	b := g.SignalIndex("b")
	c := g.SignalIndex("c")
	d := g.SignalIndex("d")
	// AND gate t = c' d.
	tNet := len(nl.Nets)
	nl.Nets = append(nl.Nets, netlist.Net{Name: "t", Driver: 0, Signal: -1})
	nl.Gates = append(nl.Gates, netlist.Gate{
		Kind: netlist.And, Name: "AND(c' d)",
		Pins: []netlist.Pin{{Net: nl.SignalNet[c], Invert: true}, {Net: nl.SignalNet[d]}},
		Out:  tNet,
	})
	// OR gate b = a + t.
	nl.Gates = append(nl.Gates, netlist.Gate{
		Kind: netlist.Or, Name: "OR(b)",
		Pins: []netlist.Pin{{Net: nl.SignalNet[a]}, {Net: tNet}},
		Out:  nl.SignalNet[b],
	})
	nl.Nets[nl.SignalNet[b]].Driver = 1
	return nl
}

func TestFig4BaselineIsHazardous(t *testing.T) {
	g := benchdata.Fig4SG()
	nl := fig4Baseline(g)
	res := verify.Check(nl, g)
	if res.OK() {
		t.Fatalf("the paper's Example-2 baseline must be hazardous")
	}
	if len(res.Hazards) == 0 {
		t.Fatalf("expected a semi-modularity hazard, got:\n%s", res)
	}
	// The unacknowledged gate is the AND t = c'd.
	found := false
	for _, h := range res.Hazards {
		if strings.Contains(h.GateName, "AND") {
			found = true
		}
	}
	if !found {
		t.Errorf("hazard should involve the AND gate t:\n%s", res)
	}
}

func TestWrongLogicDetected(t *testing.T) {
	// Implement ack = wire of req with inverted polarity: the circuit
	// immediately produces an output the spec does not expect.
	g := mustSG(t, handshakeG)
	req, ack := g.SignalIndex("req"), g.SignalIndex("ack")
	nl := &netlist.Netlist{G: g, SignalNet: []int{0, 1}}
	nl.Nets = []netlist.Net{
		{Name: "req", Driver: -1, Signal: req},
		{Name: "ack", Driver: 0, Signal: ack},
	}
	nl.Gates = []netlist.Gate{{
		Kind: netlist.Wire, Name: "WIRE(ack)",
		Pins: []netlist.Pin{{Net: 0, Invert: true}},
		Out:  1,
	}}
	res := verify.Check(nl, g)
	if res.OK() {
		t.Fatal("inverted wire must fail verification")
	}
	if len(res.Unexpected) == 0 {
		t.Fatalf("expected an unexpected-output witness:\n%s", res)
	}
}

func TestRSConflictDetected(t *testing.T) {
	// RS latch with S = req and R = req: both active when req rises.
	g := mustSG(t, handshakeG)
	req, ack := g.SignalIndex("req"), g.SignalIndex("ack")
	nl := &netlist.Netlist{G: g, SignalNet: []int{0, 1}}
	nl.Nets = []netlist.Net{
		{Name: "req", Driver: -1, Signal: req},
		{Name: "ack", Driver: 0, Signal: ack},
	}
	nl.Gates = []netlist.Gate{{
		Kind: netlist.RSLatch, Name: "RS(ack)",
		Pins: []netlist.Pin{{Net: 0}, {Net: 0}},
		Out:  1,
	}}
	res := verify.Check(nl, g)
	if len(res.RSConflict) == 0 {
		t.Fatalf("S=R=1 must be reported:\n%s", res)
	}
}

func TestNorPairLatchRaces(t *testing.T) {
	// Demonstration of why the RS flip-flop must be a primitive basic
	// element: implementing it as a bare cross-coupled NOR pair races —
	// after a reset, the environment may deassert R (via a new input
	// transition) before the internal q̄ has acknowledged, leaving both
	// NOR gates excited and one of them disabled.
	g := mustSG(t, celemG)
	a, b, c := g.SignalIndex("a"), g.SignalIndex("b"), g.SignalIndex("c")
	nl := &netlist.Netlist{G: g, SignalNet: []int{0, 1, 2}}
	nl.Nets = []netlist.Net{
		{Name: "a", Driver: -1, Signal: a, ComplementOf: -1},
		{Name: "b", Driver: -1, Signal: b, ComplementOf: -1},
		{Name: "c", Driver: 2, Signal: c, ComplementOf: -1},
		{Name: "c_b", Driver: 3, Signal: -1, ComplementOf: c},
		{Name: "Sc", Driver: 0, Signal: -1, ComplementOf: -1},
		{Name: "Rc", Driver: 1, Signal: -1, ComplementOf: -1},
	}
	nl.Gates = []netlist.Gate{
		{Kind: netlist.And, Name: "AND(Sc)", Pins: []netlist.Pin{{Net: 0}, {Net: 1}}, Out: 4},
		{Kind: netlist.And, Name: "AND(Rc)", Pins: []netlist.Pin{{Net: 0, Invert: true}, {Net: 1, Invert: true}}, Out: 5},
		{Kind: netlist.Nor, Name: "NOR_q(c)", Pins: []netlist.Pin{{Net: 5}, {Net: 3}}, Out: 2},
		{Kind: netlist.Nor, Name: "NOR_qb(c)", Pins: []netlist.Pin{{Net: 4}, {Net: 2}}, Out: 3},
	}
	res := verify.Check(nl, g)
	if res.OK() {
		t.Fatal("the bare NOR-pair latch must race")
	}
	if len(res.Hazards) == 0 {
		t.Fatalf("expected semi-modularity hazards:\n%s", res)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// ack driven by a constant-0 AND: after req+ nothing can ever fire.
	g := mustSG(t, handshakeG)
	req, ack := g.SignalIndex("req"), g.SignalIndex("ack")
	nl := &netlist.Netlist{G: g, SignalNet: []int{0, 1}}
	nl.Nets = []netlist.Net{
		{Name: "req", Driver: -1, Signal: req, ComplementOf: -1},
		{Name: "ack", Driver: 0, Signal: ack, ComplementOf: -1},
	}
	nl.Gates = []netlist.Gate{{
		Kind: netlist.And, Name: "AND(req !req)",
		Pins: []netlist.Pin{{Net: 0}, {Net: 0, Invert: true}},
		Out:  1,
	}}
	res := verify.Check(nl, g)
	if len(res.Deadlocks) == 0 {
		t.Fatalf("wedged circuit must report a deadlock:\n%s", res)
	}
	if res.OK() {
		t.Fatal("deadlocked result must not be OK")
	}
}

func TestStateLimitTruncates(t *testing.T) {
	g := mustSG(t, celemG)
	nl := buildFromMC(t, g, netlist.Options{})
	res := verify.CheckLimit(nl, g, 2)
	if !res.Truncated {
		t.Fatal("limit of 2 must truncate")
	}
	if res.OK() {
		t.Fatal("truncated run must not report OK")
	}
}

func TestResultString(t *testing.T) {
	g := mustSG(t, handshakeG)
	nl := buildFromMC(t, g, netlist.Options{})
	res := verify.Check(nl, g)
	if !strings.Contains(res.String(), "speed-independent: yes") {
		t.Errorf("verdict rendering: %s", res)
	}
}
