// Package verify checks speed-independence of a gate-level circuit
// against its state-graph specification.
//
// The circuit is closed with its environment — the mirror of the
// specification (Molnar's Foam Rubber Wrapper view): the environment
// fires input transitions exactly when the specification allows them,
// and observes output transitions. Every gate output is a separate
// signal with unbounded pure delay (Section III of the paper). The
// composed reachable state space is explored exhaustively and the
// verifier reports:
//
//   - semi-modularity violations of internal and output gates (an
//     excited gate gets disabled before firing) — these are exactly the
//     potential hazards under the pure/unbounded gate delay model;
//   - conformance violations (the circuit produces an output transition
//     the specification does not allow);
//   - RS latch drive conflicts (S and R active simultaneously).
//
// The exploration engine is allocation-lean: composed states live
// packed in a grow-only arena behind an open-addressing hash table
// (keyed by the binary net-value/spec-state words), per-state excited
// gate sets are tracked as bitmasks and updated by re-evaluating only
// the fan-out cone of the single net a transition flips, and the
// steady-state functions of RS latches are read off one levelized
// sweep per state instead of a recursive probe per latch pin. The seed
// engine is retained in reference.go as the differential oracle.
package verify

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/sg"
)

// DefaultStateLimit bounds composed-state exploration.
const DefaultStateLimit = 1 << 22

// maxWitnesses bounds how many violations of each kind are collected.
const maxWitnesses = 16

// Hazard is a semi-modularity violation of a gate: in state State, gate
// Gate was excited, and firing By disabled it.
type Hazard struct {
	Gate     int    // index into the netlist's gate list
	GateName string // human-readable gate name
	By       string // description of the disabling transition
	State    string // rendering of the composed state
	// Trace is the transition sequence from the initial state to State
	// (possibly elided in the middle for very long paths).
	Trace []string
}

// Unexpected is a conformance violation: an output gate fired although
// the specification does not enable that output transition.
type Unexpected struct {
	Signal int
	State  string
}

// Result is the verification outcome.
type Result struct {
	States     int
	Hazards    []Hazard
	Unexpected []Unexpected
	RSConflict []string
	Deadlocks  []string // composed states with no enabled transition
	Truncated  bool     // state limit was hit
}

// OK reports whether the circuit verified hazard-free, conformant and
// deadlock-free.
func (r *Result) OK() bool {
	return len(r.Hazards) == 0 && len(r.Unexpected) == 0 && len(r.RSConflict) == 0 &&
		len(r.Deadlocks) == 0 && !r.Truncated
}

// String renders a short verdict.
func (r *Result) String() string {
	if r.OK() {
		return fmt.Sprintf("speed-independent: yes (%d composed states)", r.States)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "speed-independent: NO (%d composed states)\n", r.States)
	for _, h := range r.Hazards {
		fmt.Fprintf(&b, "  hazard: gate %s disabled by %s in state %s\n", h.GateName, h.By, h.State)
		if len(h.Trace) > 0 {
			fmt.Fprintf(&b, "    via: %s\n", strings.Join(h.Trace, " "))
		}
	}
	for _, u := range r.Unexpected {
		fmt.Fprintf(&b, "  unexpected output: signal %d in state %s\n", u.Signal, u.State)
	}
	for _, c := range r.RSConflict {
		fmt.Fprintf(&b, "  RS drive conflict: %s\n", c)
	}
	for _, d := range r.Deadlocks {
		fmt.Fprintf(&b, "  deadlock: %s\n", d)
	}
	if r.Truncated {
		b.WriteString("  state limit exceeded\n")
	}
	return b.String()
}

// transition is one enabled move of the composed system.
type transition struct {
	isInput bool
	signal  int // for inputs: specification signal
	gate    int // for gates: netlist gate index
}

func (t transition) describe(nl *netlist.Netlist) string {
	if t.isInput {
		return "input " + nl.G.Signals[t.signal]
	}
	return "gate " + nl.Gates[t.gate].Name
}

// Check explores the composition of the netlist with its specification
// environment and returns the verification result.
func Check(nl *netlist.Netlist, spec *sg.Graph) *Result {
	return CheckLimit(nl, spec, DefaultStateLimit)
}

// evalGate recomputes one gate's output with direct pin reads — the
// monomorphized hot-path twin of netlist.Eval. Complex gates (minterm
// table over every specification signal) keep going through the netlist
// evaluator.
func evalGate(nl *netlist.Netlist, vals []bool, g *netlist.Gate, gi int) bool {
	switch g.Kind {
	case netlist.And:
		for _, p := range g.Pins {
			if vals[p.Net] == p.Invert {
				return false
			}
		}
		return true
	case netlist.Or:
		for _, p := range g.Pins {
			if vals[p.Net] != p.Invert {
				return true
			}
		}
		return false
	case netlist.Nor:
		for _, p := range g.Pins {
			if vals[p.Net] != p.Invert {
				return false
			}
		}
		return true
	case netlist.Wire:
		return vals[g.Pins[0].Net] != g.Pins[0].Invert
	case netlist.CElem:
		// C(A,B) = AB + (A+B)C with A = S and B = ¬R.
		a := vals[g.Pins[0].Net] != g.Pins[0].Invert
		b := vals[g.Pins[1].Net] == g.Pins[1].Invert
		cur := vals[g.Out]
		return a && b || (a || b) && cur
	case netlist.RSLatch:
		s := vals[g.Pins[0].Net] != g.Pins[0].Invert
		r := vals[g.Pins[1].Net] != g.Pins[1].Invert
		switch {
		case s && !r:
			return true
		case r && !s:
			return false
		default:
			return vals[g.Out] // hold (S=R=1 also holds, flagged by the verifier)
		}
	default:
		return nl.Eval(vals, gi)
	}
}

// hashWords mixes packed state words into a table hash.
func hashWords(ws []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range ws {
		h ^= w
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
	}
	return h
}

// engine holds the exploration state of one CheckLimit run: the packed
// composed-state arena, its open-addressing index, the parent links for
// witness traces, and the reusable scratch buffers.
type engine struct {
	nl   *netlist.Netlist
	spec *sg.Graph

	stateWords int // words of packed net values
	keyWords   int // stateWords + 1 (spec state)
	recWords   int // keyWords + gateWords (excited-set snapshot)
	gateWords  int

	arena    []uint64 // recWords per composed state
	slots    []int32  // power-of-two probe table, -1 = empty
	n        int
	parentOf []int32
	viaOf    []int32 // ^signal for inputs, gate index for gates

	// Exploration tallies, accumulated only when stats is set (an
	// observer was enabled when the run started) and published once per
	// run. Guarding the per-probe and per-transition bookkeeping keeps
	// disabled runs at the uninstrumented engine's speed.
	stats       bool
	probes      int64
	resizes     int64
	coneCount   int64 // cone-limited excitation updates
	coneSum     int64 // total gates re-evaluated across updates
	coneMax     int64
	coneBuckets [18]int64 // cone sizes, indexed by bits.Len(size)
}

func newEngine(nl *netlist.Netlist, spec *sg.Graph) *engine {
	e := &engine{nl: nl, spec: spec}
	e.stateWords = (nl.NumNets() + 63) / 64
	e.keyWords = e.stateWords + 1
	e.gateWords = (len(nl.Gates) + 63) / 64
	e.recWords = e.keyWords + e.gateWords
	e.slots = make([]int32, 64)
	for i := range e.slots {
		e.slots[i] = -1
	}
	return e
}

func (e *engine) rec(id int) []uint64 { return e.arena[id*e.recWords : (id+1)*e.recWords] }

func (e *engine) keyEqual(id int, key []uint64) bool {
	r := e.rec(id)
	for w := 0; w < e.keyWords; w++ {
		if r[w] != key[w] {
			return false
		}
	}
	return true
}

// find probes for a packed key, returning its id or -1 plus the slot
// where it would be inserted. It grows the table first, so the slot
// stays valid for an immediately following insert.
func (e *engine) find(key []uint64) (id int, slot uint64) {
	if (e.n+1)*4 > len(e.slots)*3 {
		e.resizes++
		old := e.slots
		e.slots = make([]int32, 2*len(old))
		for i := range e.slots {
			e.slots[i] = -1
		}
		mask := uint64(len(e.slots) - 1)
		for _, s := range old {
			if s < 0 {
				continue
			}
			i := hashWords(e.rec(int(s))[:e.keyWords]) & mask
			for e.slots[i] >= 0 {
				i = (i + 1) & mask
			}
			e.slots[i] = s
		}
	}
	mask := uint64(len(e.slots) - 1)
	i := hashWords(key) & mask
	probes := int64(1)
	for {
		s := e.slots[i]
		if s < 0 {
			id = -1
			break
		}
		if e.keyEqual(int(s), key) {
			id = int(s)
			break
		}
		i = (i + 1) & mask
		probes++
	}
	if e.stats {
		e.probes += probes
	}
	return id, i
}

// insert interns a new composed state: key words plus excited-set
// snapshot into the arena, parent link for witness traces.
func (e *engine) insert(slot uint64, key, exc []uint64, parent int, via int32) int {
	e.slots[slot] = int32(e.n)
	e.arena = append(e.arena, key...)
	e.arena = append(e.arena, exc...)
	e.parentOf = append(e.parentOf, int32(parent))
	e.viaOf = append(e.viaOf, via)
	e.n++
	return e.n - 1
}

func (e *engine) describeVia(v int32) string {
	if v < 0 {
		return "input " + e.nl.G.Signals[^v]
	}
	return "gate " + e.nl.Gates[v].Name
}

// traceTo reconstructs the transition sequence to a state, eliding the
// middle of very long paths.
func (e *engine) traceTo(id int) []string {
	var rev []string
	for id != 0 {
		rev = append(rev, e.describeVia(e.viaOf[id]))
		id = int(e.parentOf[id])
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return elideTrace(rev)
}

// CheckLimit is Check with an explicit composed-state bound.
//
//reprolint:hotpath
func CheckLimit(nl *netlist.Netlist, spec *sg.Graph, limit int) *Result {
	res := &Result{}
	if obs.Enabled() {
		sp := obs.Start("verify.explore", obs.A("spec", spec.Name))
		defer func() { //reprolint:alloc once-per-run span close, taken only when observation is on
			sp.SetAttr("composed_states", res.States)
			sp.End()
		}()
	}
	nNets := nl.NumNets()
	// Dense index of the specification: every spec-successor lookup on
	// the exploration's hot path becomes an O(1) table read.
	ix := sg.NewIndex(spec)

	values := initialValues(nl, spec, res)
	if values == nil {
		return res
	}

	ev := levelize(nl)
	rsGates := make([]int, 0, len(nl.Gates))
	for gi, g := range nl.Gates {
		if g.Kind == netlist.RSLatch {
			rsGates = append(rsGates, gi)
		}
	}

	eng := newEngine(nl, spec)
	eng.stats = obs.Enabled()
	// Scratch buffers — everything on the per-state/per-transition path
	// below reuses these; the only growing allocations are the arena,
	// the parent links and the DFS stack. Transitions fire by flipping
	// the one moved net of curVals in place (restored afterwards), and
	// successor keys are the current key with one bit toggled — nothing
	// on the per-transition path is O(nets).
	curVals := make([]bool, nNets)
	var settled []bool
	if len(rsGates) > 0 && !ev.cyclic {
		settled = make([]bool, nNets)
	}
	excCur := make([]uint64, eng.gateWords)
	excNext := make([]uint64, eng.gateWords)
	curKey := make([]uint64, eng.keyWords)
	keyBuf := make([]uint64, eng.keyWords)
	// At most every gate plus every input signal is enabled at once, so
	// the transition scratch never regrows inside the loop.
	trans := make([]transition, 0, len(nl.Gates)+spec.NumSignals())
	// RS drive conflicts are recorded as (gate, state id) pairs and
	// rendered after exploration: the witness strings allocate only when
	// a violation actually exists, never on the clean hot path.
	var rsPending []rsWitness

	// Intern the initial state with its full excitation scan.
	for gi := range nl.Gates {
		if evalGate(nl, values, &nl.Gates[gi], gi) != values[nl.Gates[gi].Out] {
			excCur[gi>>6] |= 1 << uint(gi&63)
		}
	}
	for i, v := range values {
		if v {
			keyBuf[i>>6] |= 1 << uint(i&63)
		}
	}
	keyBuf[eng.stateWords] = uint64(spec.Initial)
	_, slot := eng.find(keyBuf)
	eng.insert(slot, keyBuf, excCur, -1, 0)
	res.States = 1
	queue := []int32{0}

	for len(queue) > 0 {
		head := int(queue[len(queue)-1])
		queue = queue[:len(queue)-1]
		// Unpack the state: the arena may grow while head is expanded,
		// so copy rather than alias.
		rec := eng.rec(head)
		copy(curKey, rec[:eng.keyWords])
		for i := range curVals {
			curVals[i] = curKey[i>>6]>>uint(i&63)&1 == 1
		}
		specState := int(curKey[eng.stateWords])
		copy(excCur, rec[eng.keyWords:])

		// Enabled moves, in the reference order: spec-allowed inputs
		// first, then excited gates ascending.
		trans = trans[:0]
		for _, edge := range spec.States[specState].Succ {
			if spec.Input[edge.Signal] {
				trans = append(trans, transition{isInput: true, signal: edge.Signal})
			}
		}
		for w, word := range excCur {
			for word != 0 {
				gi := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				trans = append(trans, transition{gate: gi})
			}
		}
		if len(trans) == 0 && len(res.Deadlocks) < maxWitnesses {
			// The specification always has successors (cyclic specs);
			// a composed state with nothing enabled means the circuit
			// wedged (e.g. an output the logic can never produce).
			res.Deadlocks = append(res.Deadlocks, render(nl, curVals, specState))
		}

		// RS drive conflicts: the set and reset FUNCTIONS both evaluate
		// to 1 over the settled signal values. Transient overlaps where
		// one side is a stale net still excited to fall are inherent to
		// the architecture and benign for the primitive latch; a
		// functional overlap means the covers are not disjoint — a real
		// drive fight. One levelized sweep settles the whole SOP
		// network; malformed cyclic networks fall back to the recursive
		// reference evaluator.
		if len(rsGates) > 0 {
			if settled != nil {
				ev.sweep(curVals, settled)
			}
			for _, gi := range rsGates {
				g := &nl.Gates[gi]
				var s, r bool
				if settled != nil {
					s, r = pinVal(settled, g.Pins[0]), pinVal(settled, g.Pins[1])
				} else {
					s = funcVal(nl, curVals, g.Pins[0], map[int]bool{})
					r = funcVal(nl, curVals, g.Pins[1], map[int]bool{})
				}
				if s && r && len(rsPending) < maxWitnesses {
					rsPending = append(rsPending, rsWitness{gate: gi, state: int32(head)}) //reprolint:alloc grows only when a drive conflict exists, capped at maxWitnesses
				}
			}
		}

		for _, t := range trans {
			// Fire t: exactly one net flips. The spec successor is
			// resolved before touching curVals so an unexpected output
			// (conformance failure) drops the state without any undo.
			ns := specState
			var flipped int
			var via int32
			if t.isInput {
				flipped = nl.SignalNet[t.signal]
				to, found := ix.Successor(specState, t.signal)
				if !found {
					panic("verify: input fired without spec edge")
				}
				ns = to
				via = int32(^t.signal)
			} else {
				flipped = nl.Gates[t.gate].Out
				via = int32(t.gate)
				if sig := nl.Nets[flipped].Signal; sig >= 0 {
					to, found := ix.Successor(specState, sig)
					if !found {
						if len(res.Unexpected) < maxWitnesses {
							res.Unexpected = append(res.Unexpected, Unexpected{Signal: sig, State: render(nl, curVals, specState)})
						}
						continue
					}
					ns = to
				}
			}
			curVals[flipped] = !curVals[flipped]

			// Cone-limited excitation update: only gates reading (or
			// driving) the flipped net can change status.
			cone := ev.fanout[flipped]
			if eng.stats {
				eng.coneCount++
				eng.coneSum += int64(len(cone))
				if int64(len(cone)) > eng.coneMax {
					eng.coneMax = int64(len(cone))
				}
				if bi := bits.Len(uint(len(cone))); bi < len(eng.coneBuckets) {
					eng.coneBuckets[bi]++
				} else {
					eng.coneBuckets[len(eng.coneBuckets)-1]++
				}
			}
			copy(excNext, excCur)
			for _, gi := range cone {
				g := &nl.Gates[gi]
				if evalGate(nl, curVals, g, int(gi)) != curVals[g.Out] {
					excNext[gi>>6] |= 1 << uint(gi&63)
				} else {
					excNext[gi>>6] &^= 1 << uint(gi&63)
				}
			}

			// Semi-modularity of gates: every gate excited before the
			// move (other than the mover) must stay excited after it.
			for w := range excNext {
				h := excCur[w] &^ excNext[w]
				if !t.isInput && t.gate>>6 == w {
					h &^= 1 << uint(t.gate&63)
				}
				for h != 0 {
					gi := w<<6 + bits.TrailingZeros64(h)
					h &= h - 1
					if len(res.Hazards) < maxWitnesses {
						// Witnesses render the pre-move state: undo the
						// flip around the (rare) formatting call.
						curVals[flipped] = !curVals[flipped]
						state := render(nl, curVals, specState)
						curVals[flipped] = !curVals[flipped]
						res.Hazards = append(res.Hazards, Hazard{
							Gate:     gi,
							GateName: nl.Gates[gi].Name,
							By:       t.describe(nl),
							State:    state,
							Trace:    eng.traceTo(head),
						})
					}
				}
			}

			// Successor key: the current key with the moved net's bit
			// toggled and the new spec state.
			copy(keyBuf, curKey)
			keyBuf[flipped>>6] ^= 1 << uint(flipped&63)
			keyBuf[eng.stateWords] = uint64(ns)
			if id, slot := eng.find(keyBuf); id < 0 {
				if res.States >= limit {
					res.Truncated = true
					eng.flushRSConflicts(rsPending, res)
					eng.publish(ev, res)
					return res
				}
				id = eng.insert(slot, keyBuf, excNext, head, via)
				res.States++
				queue = append(queue, int32(id))
			}
			curVals[flipped] = !curVals[flipped] // restore the pre-move state
		}
	}
	eng.flushRSConflicts(rsPending, res)
	eng.publish(ev, res)
	return res
}

// rsWitness is one pending RS drive conflict: the latch gate and the
// interned composed state it was observed in. Witness strings are
// formatted lazily from the arena after exploration finishes.
type rsWitness struct {
	gate  int
	state int32
}

// stateVals unpacks an interned composed state into vals and returns
// its specification state.
func (e *engine) stateVals(id int, vals []bool) (specState int) {
	rec := e.rec(id)
	for i := range vals {
		vals[i] = rec[i>>6]>>uint(i&63)&1 == 1
	}
	return int(rec[e.stateWords])
}

// flushRSConflicts renders the pending RS drive-conflict witnesses into
// the result. It runs once per CheckLimit, off the exploration loop.
func (e *engine) flushRSConflicts(pending []rsWitness, res *Result) {
	if len(pending) == 0 {
		return
	}
	vals := make([]bool, e.nl.NumNets())
	for _, w := range pending {
		specState := e.stateVals(int(w.state), vals)
		res.RSConflict = append(res.RSConflict,
			fmt.Sprintf("%s in state %s", e.nl.Gates[w.gate].Name, render(e.nl, vals, specState)))
	}
}

// publish reports one verification run's tallies to the observability
// layer (a no-op without an enabled observer).
func (e *engine) publish(ev *evaluator, res *Result) {
	o := obs.Get()
	if o == nil {
		return
	}
	m := o.Metrics
	m.Counter("verify_states_total").Add(int64(res.States))
	m.Counter("verify_probes_total").Add(e.probes)
	m.Counter("verify_resizes_total").Add(e.resizes)
	m.Counter("verify_arena_bytes_total").Add(int64(len(e.arena) * 8))
	m.Counter("verify_cone_updates_total").Add(e.coneCount)
	m.Counter("verify_cone_gates_total").Add(e.coneSum)
	m.Gauge("verify_cone_gates_max").Set(e.coneMax)
	h := m.Histogram("verify_cone_size", nil)
	for bi, c := range e.coneBuckets {
		if c == 0 {
			continue
		}
		// bits.Len(size)==bi means size ∈ [2^(bi-1), 2^bi); report the
		// bucket's lower bound as the representative value.
		v := 0.5
		if bi > 0 {
			v = float64(uint64(1) << (bi - 1))
		}
		h.AddSample(v, c)
	}
	m.Gauge("verify_levelized_gates").Set(int64(len(ev.order)))
	if ev.cyclic {
		m.Counter("verify_levelize_cyclic_total").Add(1)
	}
	var fan int64
	for _, f := range ev.fanout {
		fan += int64(len(f))
	}
	m.Gauge("verify_fanout_entries").Set(fan)
	m.Counter("verify_hazards_total").Add(int64(len(res.Hazards)))
	m.Counter("verify_unexpected_total").Add(int64(len(res.Unexpected)))
	m.Counter("verify_deadlocks_total").Add(int64(len(res.Deadlocks)))
	obs.Info("verify done", "states", res.States, "hazards", len(res.Hazards), "ok", res.OK())
}
