// Package verify checks speed-independence of a gate-level circuit
// against its state-graph specification.
//
// The circuit is closed with its environment — the mirror of the
// specification (Molnar's Foam Rubber Wrapper view): the environment
// fires input transitions exactly when the specification allows them,
// and observes output transitions. Every gate output is a separate
// signal with unbounded pure delay (Section III of the paper). The
// composed reachable state space is explored exhaustively and the
// verifier reports:
//
//   - semi-modularity violations of internal and output gates (an
//     excited gate gets disabled before firing) — these are exactly the
//     potential hazards under the pure/unbounded gate delay model;
//   - conformance violations (the circuit produces an output transition
//     the specification does not allow);
//   - RS latch drive conflicts (S and R active simultaneously).
package verify

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
	"repro/internal/sg"
)

// DefaultStateLimit bounds composed-state exploration.
const DefaultStateLimit = 1 << 22

// maxWitnesses bounds how many violations of each kind are collected.
const maxWitnesses = 16

// Hazard is a semi-modularity violation of a gate: in state State, gate
// Gate was excited, and firing By disabled it.
type Hazard struct {
	Gate     int    // index into the netlist's gate list
	GateName string // human-readable gate name
	By       string // description of the disabling transition
	State    string // rendering of the composed state
	// Trace is the transition sequence from the initial state to State
	// (possibly elided in the middle for very long paths).
	Trace []string
}

// Unexpected is a conformance violation: an output gate fired although
// the specification does not enable that output transition.
type Unexpected struct {
	Signal int
	State  string
}

// Result is the verification outcome.
type Result struct {
	States     int
	Hazards    []Hazard
	Unexpected []Unexpected
	RSConflict []string
	Deadlocks  []string // composed states with no enabled transition
	Truncated  bool     // state limit was hit
}

// OK reports whether the circuit verified hazard-free, conformant and
// deadlock-free.
func (r *Result) OK() bool {
	return len(r.Hazards) == 0 && len(r.Unexpected) == 0 && len(r.RSConflict) == 0 &&
		len(r.Deadlocks) == 0 && !r.Truncated
}

// String renders a short verdict.
func (r *Result) String() string {
	if r.OK() {
		return fmt.Sprintf("speed-independent: yes (%d composed states)", r.States)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "speed-independent: NO (%d composed states)\n", r.States)
	for _, h := range r.Hazards {
		fmt.Fprintf(&b, "  hazard: gate %s disabled by %s in state %s\n", h.GateName, h.By, h.State)
		if len(h.Trace) > 0 {
			fmt.Fprintf(&b, "    via: %s\n", strings.Join(h.Trace, " "))
		}
	}
	for _, u := range r.Unexpected {
		fmt.Fprintf(&b, "  unexpected output: signal %d in state %s\n", u.Signal, u.State)
	}
	for _, c := range r.RSConflict {
		fmt.Fprintf(&b, "  RS drive conflict: %s\n", c)
	}
	for _, d := range r.Deadlocks {
		fmt.Fprintf(&b, "  deadlock: %s\n", d)
	}
	if r.Truncated {
		b.WriteString("  state limit exceeded\n")
	}
	return b.String()
}

// funcVal evaluates the steady-state value a pin would settle to if the
// combinational network were given time: latch outputs and primary
// inputs keep their current values, AND/OR gates are recomputed
// recursively. visiting guards against (malformed) combinational cycles.
func funcVal(nl *netlist.Netlist, vals []bool, p netlist.Pin, visiting map[int]bool) bool {
	v := netVal(nl, vals, p.Net, visiting)
	if p.Invert {
		return !v
	}
	return v
}

func netVal(nl *netlist.Netlist, vals []bool, net int, visiting map[int]bool) bool {
	d := nl.Nets[net].Driver
	if d < 0 || visiting[net] {
		return vals[net]
	}
	g := nl.Gates[d]
	if !g.Kind.Combinational() {
		return vals[net]
	}
	visiting[net] = true
	defer delete(visiting, net)
	switch g.Kind {
	case netlist.And:
		for _, p := range g.Pins {
			if !funcVal(nl, vals, p, visiting) {
				return false
			}
		}
		return true
	case netlist.Or:
		for _, p := range g.Pins {
			if funcVal(nl, vals, p, visiting) {
				return true
			}
		}
		return false
	default:
		return vals[net]
	}
}

// transition is one enabled move of the composed system.
type transition struct {
	isInput bool
	signal  int // for inputs: specification signal
	gate    int // for gates: netlist gate index
}

func (t transition) describe(nl *netlist.Netlist) string {
	if t.isInput {
		return "input " + nl.G.Signals[t.signal]
	}
	return "gate " + nl.Gates[t.gate].Name
}

// Check explores the composition of the netlist with its specification
// environment and returns the verification result.
func Check(nl *netlist.Netlist, spec *sg.Graph) *Result {
	return CheckLimit(nl, spec, DefaultStateLimit)
}

// CheckLimit is Check with an explicit composed-state bound.
func CheckLimit(nl *netlist.Netlist, spec *sg.Graph, limit int) *Result {
	res := &Result{}
	nNets := nl.NumNets()
	// Dense index of the specification: every spec-successor lookup on
	// the exploration's hot path becomes an O(1) table read.
	ix := sg.NewIndex(spec)

	// Initial values: primary signal nets from the spec's initial code,
	// combinational nets settled to their stable values.
	values := make([]bool, nNets)
	for sig := range spec.Signals {
		values[nl.SignalNet[sig]] = spec.Value(spec.Initial, sig)
	}
	for ni, n := range nl.Nets {
		if n.ComplementOf >= 0 {
			values[ni] = !spec.Value(spec.Initial, n.ComplementOf)
		}
	}
	for iter := 0; ; iter++ {
		changed := false
		for gi, g := range nl.Gates {
			if !nl.SettleAtInit(gi) {
				continue // latch and signal-wire gates keep the code value
			}
			next := nl.Eval(values, gi)
			if values[g.Out] != next {
				values[g.Out] = next
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter > nNets+4 {
			res.Hazards = append(res.Hazards, Hazard{GateName: "(init)", By: "combinational cycle", State: "initial"})
			return res
		}
	}

	type stateKey string
	// key packs the net values into a dense bitset followed by the spec
	// state — 8× smaller than a byte-per-net rendering and built without
	// formatting, which matters at millions of composed states.
	keyLen := (nNets+7)/8 + 4
	key := func(vals []bool, spec int) stateKey {
		b := make([]byte, keyLen)
		for i, v := range vals {
			if v {
				b[i>>3] |= 1 << uint(i&7)
			}
		}
		off := keyLen - 4
		b[off] = byte(spec)
		b[off+1] = byte(spec >> 8)
		b[off+2] = byte(spec >> 16)
		b[off+3] = byte(spec >> 24)
		return stateKey(b)
	}
	render := func(vals []bool, specState int) string {
		var b strings.Builder
		for i, v := range vals {
			if i > 0 {
				b.WriteByte(' ')
			}
			val := "0"
			if v {
				val = "1"
			}
			fmt.Fprintf(&b, "%s=%s", nl.Nets[i].Name, val)
		}
		fmt.Fprintf(&b, " @spec s%d", specState)
		return b.String()
	}

	// enabled lists the transitions firable in a composed state.
	enabled := func(vals []bool, specState int) []transition {
		var out []transition
		for _, e := range spec.States[specState].Succ {
			if spec.Input[e.Signal] {
				out = append(out, transition{isInput: true, signal: e.Signal})
			}
		}
		for gi := range nl.Gates {
			if nl.Eval(vals, gi) != vals[nl.Gates[gi].Out] {
				out = append(out, transition{gate: gi})
			}
		}
		return out
	}

	// fire applies a transition; ok=false when it is an unexpected
	// output (conformance failure), in which case the state is dropped.
	fire := func(vals []bool, specState int, t transition) (nv []bool, ns int, ok bool) {
		nv = append([]bool(nil), vals...)
		ns = specState
		if t.isInput {
			nv[nl.SignalNet[t.signal]] = !nv[nl.SignalNet[t.signal]]
			to, found := ix.Successor(specState, t.signal)
			if !found {
				panic("verify: input fired without spec edge")
			}
			ns = to
			return nv, ns, true
		}
		g := nl.Gates[t.gate]
		nv[g.Out] = !nv[g.Out]
		if sig := nl.Nets[g.Out].Signal; sig >= 0 {
			to, found := ix.Successor(specState, sig)
			if !found {
				if len(res.Unexpected) < maxWitnesses {
					res.Unexpected = append(res.Unexpected, Unexpected{Signal: sig, State: render(vals, specState)})
				}
				return nil, 0, false
			}
			ns = to
		}
		return nv, ns, true
	}

	type node struct {
		vals      []bool
		specState int
		key       stateKey
	}
	type arrival struct {
		prev stateKey
		via  string
	}
	seen := map[stateKey]bool{}
	parent := map[stateKey]arrival{}
	startKey := key(values, spec.Initial)
	var queue []node
	start := node{vals: values, specState: spec.Initial, key: startKey}
	seen[startKey] = true
	queue = append(queue, start)
	res.States = 1

	// traceTo reconstructs the transition sequence to a state, eliding
	// the middle of very long paths.
	traceTo := func(k stateKey) []string {
		var rev []string
		for k != startKey {
			a, ok := parent[k]
			if !ok {
				break
			}
			rev = append(rev, a.via)
			k = a.prev
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		if len(rev) > 24 {
			head := append([]string(nil), rev[:8]...)
			head = append(head, fmt.Sprintf("… (%d steps) …", len(rev)-16))
			rev = append(head, rev[len(rev)-8:]...)
		}
		return rev
	}

	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		trans := enabled(cur.vals, cur.specState)
		if len(trans) == 0 && len(res.Deadlocks) < maxWitnesses {
			// The specification always has successors (cyclic specs);
			// a composed state with nothing enabled means the circuit
			// wedged (e.g. an output the logic can never produce).
			res.Deadlocks = append(res.Deadlocks, render(cur.vals, cur.specState))
		}

		// RS drive conflicts: the set and reset FUNCTIONS both evaluate
		// to 1 over the settled signal values. Transient overlaps where
		// one side is a stale net still excited to fall are inherent to
		// the architecture and benign for the primitive latch; a
		// functional overlap means the covers are not disjoint — a real
		// drive fight.
		for gi, g := range nl.Gates {
			if g.Kind != netlist.RSLatch {
				continue
			}
			s := funcVal(nl, cur.vals, g.Pins[0], map[int]bool{})
			r := funcVal(nl, cur.vals, g.Pins[1], map[int]bool{})
			if s && r && len(res.RSConflict) < maxWitnesses {
				res.RSConflict = append(res.RSConflict,
					fmt.Sprintf("%s in state %s", nl.Gates[gi].Name, render(cur.vals, cur.specState)))
			}
		}

		for _, t := range trans {
			nv, ns, ok := fire(cur.vals, cur.specState, t)
			if !ok {
				continue
			}
			// Semi-modularity of gates: every gate excited before the
			// move (other than the mover) must stay excited after it.
			for _, u := range trans {
				if u.isInput || (!t.isInput && u.gate == t.gate) {
					continue
				}
				if nl.Eval(nv, u.gate) == nv[nl.Gates[u.gate].Out] {
					if len(res.Hazards) < maxWitnesses {
						res.Hazards = append(res.Hazards, Hazard{
							Gate:     u.gate,
							GateName: nl.Gates[u.gate].Name,
							By:       t.describe(nl),
							State:    render(cur.vals, cur.specState),
							Trace:    traceTo(cur.key),
						})
					}
				}
			}
			k := key(nv, ns)
			if !seen[k] {
				if res.States >= limit {
					res.Truncated = true
					return res
				}
				seen[k] = true
				parent[k] = arrival{prev: cur.key, via: t.describe(nl)}
				res.States++
				queue = append(queue, node{vals: nv, specState: ns, key: k})
			}
		}
	}
	return res
}
