package verify

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
	"repro/internal/sg"
)

// This file retains the seed revision's exploration engine as a
// differential-testing oracle for the levelized, cone-limited engine in
// verify.go (see diff_test.go): string-keyed seen/parent maps, a fresh
// value slice per fire, and the recursive steady-state evaluator. The
// recursive funcVal/netVal pair is also the live fallback for netlists
// with combinational cycles, which the levelized sweep cannot order.

// funcVal evaluates the steady-state value a pin would settle to if the
// combinational network were given time: latch outputs and primary
// inputs keep their current values, AND/OR gates are recomputed
// recursively. visiting guards against (malformed) combinational cycles.
func funcVal(nl *netlist.Netlist, vals []bool, p netlist.Pin, visiting map[int]bool) bool {
	v := netVal(nl, vals, p.Net, visiting)
	if p.Invert {
		return !v
	}
	return v
}

func netVal(nl *netlist.Netlist, vals []bool, net int, visiting map[int]bool) bool {
	d := nl.Nets[net].Driver
	if d < 0 || visiting[net] {
		return vals[net]
	}
	g := nl.Gates[d]
	if !g.Kind.Combinational() {
		return vals[net]
	}
	visiting[net] = true
	defer delete(visiting, net)
	switch g.Kind {
	case netlist.And:
		for _, p := range g.Pins {
			if !funcVal(nl, vals, p, visiting) {
				return false
			}
		}
		return true
	case netlist.Or:
		for _, p := range g.Pins {
			if funcVal(nl, vals, p, visiting) {
				return true
			}
		}
		return false
	default:
		return vals[net]
	}
}

// CheckLimitRef is CheckLimit on the reference engine. Exported for the
// differential tests (and for bisecting any future verifier
// regression); production callers use Check/CheckLimit.
func CheckLimitRef(nl *netlist.Netlist, spec *sg.Graph, limit int) *Result {
	res := &Result{}
	nNets := nl.NumNets()
	ix := sg.NewIndex(spec)

	values := initialValues(nl, spec, res)
	if values == nil {
		return res
	}

	type stateKey string
	// key packs the net values into a dense bitset followed by the spec
	// state — 8× smaller than a byte-per-net rendering and built without
	// formatting, which matters at millions of composed states.
	keyLen := (nNets+7)/8 + 4
	key := func(vals []bool, spec int) stateKey {
		b := make([]byte, keyLen)
		for i, v := range vals {
			if v {
				b[i>>3] |= 1 << uint(i&7)
			}
		}
		off := keyLen - 4
		b[off] = byte(spec)
		b[off+1] = byte(spec >> 8)
		b[off+2] = byte(spec >> 16)
		b[off+3] = byte(spec >> 24)
		return stateKey(b)
	}

	// enabled lists the transitions firable in a composed state.
	enabled := func(vals []bool, specState int) []transition {
		var out []transition
		for _, e := range spec.States[specState].Succ {
			if spec.Input[e.Signal] {
				out = append(out, transition{isInput: true, signal: e.Signal})
			}
		}
		for gi := range nl.Gates {
			if nl.Eval(vals, gi) != vals[nl.Gates[gi].Out] {
				out = append(out, transition{gate: gi})
			}
		}
		return out
	}

	// fire applies a transition; ok=false when it is an unexpected
	// output (conformance failure), in which case the state is dropped.
	fire := func(vals []bool, specState int, t transition) (nv []bool, ns int, ok bool) {
		nv = append([]bool(nil), vals...)
		ns = specState
		if t.isInput {
			nv[nl.SignalNet[t.signal]] = !nv[nl.SignalNet[t.signal]]
			to, found := ix.Successor(specState, t.signal)
			if !found {
				panic("verify: input fired without spec edge")
			}
			ns = to
			return nv, ns, true
		}
		g := nl.Gates[t.gate]
		nv[g.Out] = !nv[g.Out]
		if sig := nl.Nets[g.Out].Signal; sig >= 0 {
			to, found := ix.Successor(specState, sig)
			if !found {
				if len(res.Unexpected) < maxWitnesses {
					res.Unexpected = append(res.Unexpected, Unexpected{Signal: sig, State: render(nl, vals, specState)})
				}
				return nil, 0, false
			}
			ns = to
		}
		return nv, ns, true
	}

	type node struct {
		vals      []bool
		specState int
		key       stateKey
	}
	type arrival struct {
		prev stateKey
		via  string
	}
	seen := map[stateKey]bool{}
	parent := map[stateKey]arrival{}
	startKey := key(values, spec.Initial)
	var queue []node
	start := node{vals: values, specState: spec.Initial, key: startKey}
	seen[startKey] = true
	queue = append(queue, start)
	res.States = 1

	// traceTo reconstructs the transition sequence to a state, eliding
	// the middle of very long paths.
	traceTo := func(k stateKey) []string {
		var rev []string
		for k != startKey {
			a, ok := parent[k]
			if !ok {
				break
			}
			rev = append(rev, a.via)
			k = a.prev
		}
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return elideTrace(rev)
	}

	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		trans := enabled(cur.vals, cur.specState)
		if len(trans) == 0 && len(res.Deadlocks) < maxWitnesses {
			// The specification always has successors (cyclic specs);
			// a composed state with nothing enabled means the circuit
			// wedged (e.g. an output the logic can never produce).
			res.Deadlocks = append(res.Deadlocks, render(nl, cur.vals, cur.specState))
		}

		// RS drive conflicts: the set and reset FUNCTIONS both evaluate
		// to 1 over the settled signal values. Transient overlaps where
		// one side is a stale net still excited to fall are inherent to
		// the architecture and benign for the primitive latch; a
		// functional overlap means the covers are not disjoint — a real
		// drive fight.
		for gi, g := range nl.Gates {
			if g.Kind != netlist.RSLatch {
				continue
			}
			s := funcVal(nl, cur.vals, g.Pins[0], map[int]bool{})
			r := funcVal(nl, cur.vals, g.Pins[1], map[int]bool{})
			if s && r && len(res.RSConflict) < maxWitnesses {
				res.RSConflict = append(res.RSConflict,
					fmt.Sprintf("%s in state %s", nl.Gates[gi].Name, render(nl, cur.vals, cur.specState)))
			}
		}

		for _, t := range trans {
			nv, ns, ok := fire(cur.vals, cur.specState, t)
			if !ok {
				continue
			}
			// Semi-modularity of gates: every gate excited before the
			// move (other than the mover) must stay excited after it.
			for _, u := range trans {
				if u.isInput || (!t.isInput && u.gate == t.gate) {
					continue
				}
				if nl.Eval(nv, u.gate) == nv[nl.Gates[u.gate].Out] {
					if len(res.Hazards) < maxWitnesses {
						res.Hazards = append(res.Hazards, Hazard{
							Gate:     u.gate,
							GateName: nl.Gates[u.gate].Name,
							By:       t.describe(nl),
							State:    render(nl, cur.vals, cur.specState),
							Trace:    traceTo(cur.key),
						})
					}
				}
			}
			k := key(nv, ns)
			if !seen[k] {
				if res.States >= limit {
					res.Truncated = true
					return res
				}
				seen[k] = true
				parent[k] = arrival{prev: cur.key, via: t.describe(nl)}
				res.States++
				queue = append(queue, node{vals: nv, specState: ns, key: k})
			}
		}
	}
	return res
}

// render formats a composed state for witness reports.
func render(nl *netlist.Netlist, vals []bool, specState int) string {
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(' ')
		}
		val := "0"
		if v {
			val = "1"
		}
		fmt.Fprintf(&b, "%s=%s", nl.Nets[i].Name, val)
	}
	fmt.Fprintf(&b, " @spec s%d", specState)
	return b.String()
}

// elideTrace shortens very long witness paths in the middle.
func elideTrace(rev []string) []string {
	if len(rev) > 24 {
		head := append([]string(nil), rev[:8]...)
		head = append(head, fmt.Sprintf("… (%d steps) …", len(rev)-16))
		rev = append(head, rev[len(rev)-8:]...)
	}
	return rev
}

// initialValues computes the power-up net values: primary signal nets
// from the spec's initial code, combinational nets settled to their
// stable values. It returns nil (after recording the witness) when the
// settle loop detects a combinational cycle.
func initialValues(nl *netlist.Netlist, spec *sg.Graph, res *Result) []bool {
	values := make([]bool, nl.NumNets())
	for sig := range spec.Signals {
		values[nl.SignalNet[sig]] = spec.Value(spec.Initial, sig)
	}
	for ni, n := range nl.Nets {
		if n.ComplementOf >= 0 {
			values[ni] = !spec.Value(spec.Initial, n.ComplementOf)
		}
	}
	for iter := 0; ; iter++ {
		changed := false
		for gi, g := range nl.Gates {
			if !nl.SettleAtInit(gi) {
				continue // latch and signal-wire gates keep the code value
			}
			next := nl.Eval(values, gi)
			if values[g.Out] != next {
				values[g.Out] = next
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter > nl.NumNets()+4 {
			res.Hazards = append(res.Hazards, Hazard{GateName: "(init)", By: "combinational cycle", State: "initial"})
			return nil
		}
	}
	return values
}
