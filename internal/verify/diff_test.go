package verify_test

import (
	"reflect"
	"testing"

	"repro/internal/baseline"
	"repro/internal/benchdata"
	"repro/internal/netlist"
	"repro/internal/sg"
	"repro/internal/stg"
	"repro/internal/synth"
	"repro/internal/verify"
)

// Differential tests pinning the levelized, cone-limited exploration
// engine against the retained reference engine (CheckLimitRef): the
// complete Result — state counts, every witness string and every trace
// — must be identical over hazard-free and hazardous circuits alike
// (same style as internal/core/diff_test.go).

type diffCase struct {
	name string
	nl   *netlist.Netlist
	g    *sg.Graph
}

func diffCases(t *testing.T) []diffCase {
	t.Helper()
	var out []diffCase
	add := func(name string, nl *netlist.Netlist, g *sg.Graph, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out = append(out, diffCase{name, nl, g})
	}
	// Hazard-free MC implementations, C and RS, over all of Table 1.
	for _, e := range benchdata.Table1 {
		for _, mode := range []struct {
			suffix string
			rs     bool
		}{{"/C", false}, {"/RS", true}} {
			rep, err := synth.FromSTG(e.STG(), synth.Options{RS: mode.rs, SkipVerify: true})
			add(e.Name+mode.suffix, rep.Netlist, rep.Final, err)
		}
	}
	// Hazardous circuits: the correct-cover baseline on the paper
	// figures (semi-modularity witnesses with traces).
	for name, g := range map[string]*sg.Graph{"fig1": benchdata.Fig1SG(), "fig4": benchdata.Fig4SG()} {
		nl, err := baseline.Synthesize(g, netlist.Options{})
		add("baseline/"+name, nl, g, err)
	}
	// Fan-in-2 decomposition and explicit inverters both break SI on
	// berkel2 — deeper combinational networks, many witnesses.
	{
		e, _ := benchdata.Table1ByName("berkel2")
		g, err := stg.BuildSG(e.STG())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := synth.FromGraph(g, synth.Options{SkipVerify: true})
		if err != nil {
			t.Fatal(err)
		}
		d, err := netlist.Decompose(rep.Netlist, 2)
		add("decompose/berkel2", d, rep.Final, err)
		add("inverters/berkel2", netlist.ExplicitInverters(rep.Netlist), rep.Final, nil)
	}
	// Complex-gate baseline (Complex gates read every signal net);
	// mp-forward-pkt is the CSC-clean Table-1 entry.
	{
		e, _ := benchdata.Table1ByName("mp-forward-pkt")
		g, err := stg.BuildSG(e.STG())
		if err != nil {
			t.Fatal(err)
		}
		nl, err := baseline.ComplexGate(g)
		add("complex/mp-forward-pkt", nl, g, err)
	}
	// Wide concurrency: the k=6 fork, 128 composed states.
	{
		g, err := stg.BuildSG(benchdata.GenParallelizer(6))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := synth.FromGraph(g, synth.Options{SkipVerify: true})
		add("fork6", rep.Netlist, rep.Final, err)
	}
	return out
}

func TestDifferentialCheckLimitVsReference(t *testing.T) {
	for _, c := range diffCases(t) {
		got := verify.Check(c.nl, c.g)
		want := verify.CheckLimitRef(c.nl, c.g, verify.DefaultStateLimit)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: results differ:\n--- got ---\n%s--- reference ---\n%s", c.name, got, want)
		}
	}
}

func TestDifferentialCheckLimitTruncation(t *testing.T) {
	// Both engines explore in the same order, so they must truncate at
	// the same point and report identical partial results.
	e, _ := benchdata.Table1ByName("ganesh_8")
	rep, err := synth.FromSTG(e.STG(), synth.Options{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{1, 2, 17, 256, 1319, 1320, 1321} {
		got := verify.CheckLimit(rep.Netlist, rep.Final, limit)
		want := verify.CheckLimitRef(rep.Netlist, rep.Final, limit)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("limit %d: results differ:\n--- got ---\n%s--- reference ---\n%s", limit, got, want)
		}
	}
}
