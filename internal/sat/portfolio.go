package sat

import (
	"encoding/binary"
	"sort"

	"repro/internal/par"
)

// Learnt-clause exchange caps: at every epoch barrier each solver
// exports at most exchangeMax clauses of at most exchangeMaxLen
// literals with learn-time LBD at most exchangeMaxLBD. The caps bound
// the per-epoch exchange cost; the seen-set makes each clause cross the
// barrier once in the portfolio's lifetime.
const (
	exchangeMaxLen = 12
	exchangeMaxLBD = 8
	exchangeMax    = 256
)

// PortfolioStats counts portfolio-level events (per-solver search
// counters live in Stats).
type PortfolioStats struct {
	Queries    int64            // Solve/SolveVerdict calls answered
	Escalated  int64            // queries that outlived the anchor-only epoch
	Epochs     int64            // epochs run, anchor-only epochs included
	Exchanged  int64            // distinct clauses that crossed an epoch barrier
	ImpKept    int64            // exchanged clauses certified and kept by receivers
	ImpDropped int64            // exchanged clauses a receiver could not certify
	Wins       map[string]int64 // config name → queries it settled
}

// Add accumulates other into s (Wins merged by config name, in sorted
// key order so accumulation is deterministic).
func (s *PortfolioStats) Add(other PortfolioStats) {
	s.Queries += other.Queries
	s.Escalated += other.Escalated
	s.Epochs += other.Epochs
	s.Exchanged += other.Exchanged
	s.ImpKept += other.ImpKept
	s.ImpDropped += other.ImpDropped
	if len(other.Wins) == 0 {
		return
	}
	if s.Wins == nil {
		s.Wins = make(map[string]int64, len(other.Wins))
	}
	names := make([]string, 0, len(other.Wins))
	for name := range other.Wins { //reprolint:ordered keys are sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Wins[name] += other.Wins[name]
	}
}

// Portfolio races K differently-configured solvers over one formula in
// deterministic conflict-budget epochs. Config 0 must be the canonical
// configuration: it alone answers model queries, so every model the
// portfolio returns is the lexicographically least one — a pure
// function of the formula — and racing, clause exchange and worker
// count can only change how fast that answer arrives, never what it
// is. Racers contribute by proving Unsat (any solver's Unsat settles a
// query) and by exporting learnt clauses the anchor imports at epoch
// barriers.
//
// Racers are lazy: they are only materialized — by replaying the
// portfolio's operation log — the first time a query survives the
// anchor-only first epoch, so easy queries (the vast majority) pay a
// single budget check over a plain solver.
type Portfolio struct {
	cfgs    []Config
	solvers []*Solver // solvers[0] is the canonical anchor; 1.. lazy racers
	workers int
	epoch   int64 // conflict budget of the first epoch; doubles per epoch

	log []logOp // everything needed to rebuild a solver

	seenEx map[string]uint32 // exchanged-clause key → bitmask of holders
	stats  PortfolioStats
}

type logOpKind uint8

const (
	opVar logOpKind = iota
	opClause
	opReset
	opSimplify
)

type logOp struct {
	kind logOpKind
	lits []Lit
}

// DefaultEpoch is the conflict budget of a portfolio's first epoch.
const DefaultEpoch = 2048

// DefaultConfigs returns the first k portfolio configurations. Config 0
// is always the canonical one; the rest diversify branching polarity,
// phase saving, activity decay and restart cadence. k is clamped to
// [1, 8].
func DefaultConfigs(k int) []Config {
	base := []Config{
		{Name: "canonical", Canonical: true},
		{Name: "vsids"},
		{Name: "vsids-pos", PosPhase: true},
		{Name: "vsids-fast", VarDecay: 0.85, RestartBase: 64},
		{Name: "vsids-nophase", NoPhaseSaving: true, RestartBase: 128},
		{Name: "vsids-slow", VarDecay: 0.99, RestartBase: 512},
		{Name: "vsids-pos-fast", PosPhase: true, VarDecay: 0.9, RestartBase: 96},
		{Name: "vsids-nophase-pos", NoPhaseSaving: true, PosPhase: true},
	}
	if k < 1 {
		k = 1
	}
	if k > len(base) {
		k = len(base)
	}
	return base[:k]
}

// NewPortfolio builds a portfolio over the given configurations (nil or
// empty means DefaultConfigs(1)), running raced epochs on at most
// workers goroutines. cfgs[0] must be canonical — the model-answering
// anchor — and the call panics otherwise.
func NewPortfolio(cfgs []Config, workers int) *Portfolio {
	if len(cfgs) == 0 {
		cfgs = DefaultConfigs(1)
	}
	if !cfgs[0].Canonical {
		panic("sat: portfolio config 0 must be canonical")
	}
	p := &Portfolio{
		cfgs:    cfgs,
		workers: par.Workers(workers),
		epoch:   DefaultEpoch,
		seenEx:  make(map[string]uint32),
	}
	p.stats.Wins = make(map[string]int64, len(cfgs))
	p.solvers = []*Solver{NewWith(cfgs[0])}
	return p
}

// Anchor exposes the canonical solver, for callers that need
// solver-level APIs the portfolio does not mirror.
func (p *Portfolio) Anchor() *Solver { return p.solvers[0] }

// NewVar allocates a fresh variable in every solver and returns its
// (1-based) number.
func (p *Portfolio) NewVar() int {
	p.log = append(p.log, logOp{kind: opVar})
	v := p.solvers[0].NewVar()
	for _, s := range p.solvers[1:] {
		s.NewVar()
	}
	return v
}

// NVars returns the number of allocated variables.
func (p *Portfolio) NVars() int { return p.solvers[0].NVars() }

// AddClause adds a clause to every solver. The return value is the
// anchor's: false when the formula became trivially unsatisfiable.
func (p *Portfolio) AddClause(lits ...Lit) bool {
	cl := make([]Lit, len(lits))
	copy(cl, lits)
	p.log = append(p.log, logOp{kind: opClause, lits: cl})
	ok := p.solvers[0].AddClause(lits...)
	for _, s := range p.solvers[1:] {
		s.AddClause(lits...)
	}
	return ok
}

// Simplify drops level-0-satisfied clauses in every solver.
func (p *Portfolio) Simplify() {
	p.log = append(p.log, logOp{kind: opSimplify})
	for _, s := range p.solvers {
		s.Simplify()
	}
}

// ResetSearch restores every solver's branching heuristics to their
// initial state (a no-op for the canonical anchor, which has none).
func (p *Portfolio) ResetSearch() {
	p.log = append(p.log, logOp{kind: opReset})
	for _, s := range p.solvers {
		s.ResetSearch()
	}
}

// Value returns variable v's value in the anchor's last model.
func (p *Portfolio) Value(v int) bool { return p.solvers[0].Value(v) }

// Model returns a copy of the anchor's last model.
func (p *Portfolio) Model() []bool { return p.solvers[0].Model() }

// BlockModel forbids the anchor's last model restricted to vars in
// every solver, enabling enumeration in lexicographic order.
func (p *Portfolio) BlockModel(vars ...int) bool {
	return p.AddClause(p.solvers[0].blockLits(nil, vars)...)
}

// BlockModelWith is BlockModel scoped by an escape literal.
func (p *Portfolio) BlockModelWith(escape Lit, vars ...int) bool {
	return p.AddClause(p.solvers[0].blockLits([]Lit{escape}, vars)...)
}

// ExportLearnts snapshots the anchor's learnt knowledge (see
// Solver.ExportLearnts). Racer knowledge already flowed into the anchor
// at the last epoch barrier, so the anchor's view is the portfolio's.
func (p *Portfolio) ExportLearnts(maxLen, maxLBD, max int) [][]Lit {
	return p.solvers[0].ExportLearnts(maxLen, maxLBD, max)
}

// ImportLearnts offers foreign clauses to every live solver; each
// keeps only what it can certify by reverse unit propagation. The
// returned counts are the anchor's.
func (p *Portfolio) ImportLearnts(clauses [][]Lit) (kept, dropped int) {
	kept, dropped = p.solvers[0].ImportLearnts(clauses)
	for _, s := range p.solvers[1:] {
		s.ImportLearnts(clauses)
	}
	return kept, dropped
}

// Solve decides satisfiability under the assumptions; on Sat the
// anchor's canonical model is available through Value/Model.
func (p *Portfolio) Solve(assumptions ...Lit) bool {
	return p.SolveVerdict(assumptions...) == Sat
}

// SolveVerdict is Solve returning the full verdict (never Unknown: the
// portfolio races until some solver decides).
func (p *Portfolio) SolveVerdict(assumptions ...Lit) Verdict {
	p.stats.Queries++
	anchor := p.solvers[0]
	if len(p.cfgs) == 1 {
		v := anchor.SolveBounded(-1, assumptions...)
		p.stats.Epochs++
		p.stats.Wins[p.cfgs[0].Name]++
		return v
	}
	// Epoch 0: the anchor runs alone, so queries it can settle within
	// one budget never pay for racers.
	p.stats.Epochs++
	if v := anchor.SolveBounded(p.epoch, assumptions...); v != Unknown {
		p.stats.Wins[p.cfgs[0].Name]++
		return v
	}
	p.stats.Escalated++
	p.ensureRacers()
	budget := p.epoch
	for {
		// Geometric budgets keep total raced work within a constant
		// factor of a single unbounded run, which also guarantees
		// termination: some epoch's budget exceeds what the anchor
		// needs outright.
		if budget < 1<<40 {
			budget *= 2
		}
		p.stats.Epochs++
		verdicts := make([]Verdict, len(p.solvers))
		par.ForEach(len(p.solvers), p.workers, func(i int) {
			verdicts[i] = p.solvers[i].SolveBounded(budget, assumptions...)
		})
		// Deterministic reduction in config order: any Unsat settles
		// the query (unsatisfiability is config-independent); a racer's
		// Sat does not, because only the anchor's model is canonical.
		for i, v := range verdicts {
			if v == Unsat {
				p.stats.Wins[p.cfgs[i].Name]++
				return Unsat
			}
		}
		if verdicts[0] == Sat {
			p.stats.Wins[p.cfgs[0].Name]++
			return Sat
		}
		p.exchange()
	}
}

// ensureRacers materializes solvers 1..K-1 by replaying the operation
// log, bringing them to the exact formula the anchor holds.
func (p *Portfolio) ensureRacers() {
	if len(p.solvers) == len(p.cfgs) {
		return
	}
	for _, cfg := range p.cfgs[len(p.solvers):] {
		s := NewWith(cfg)
		for _, op := range p.log {
			switch op.kind {
			case opVar:
				s.NewVar()
			case opClause:
				s.AddClause(op.lits...)
			case opReset:
				s.ResetSearch()
			case opSimplify:
				s.Simplify()
			}
		}
		p.solvers = append(p.solvers, s)
	}
}

// exchange shares learnt clauses across solvers at an epoch barrier.
// Exports are collected in config order, deduplicated against every
// clause exchanged before (the holder bitmask records who is known to
// have it), and imported — again in config order — by every solver not
// already holding the clause. Receivers re-certify each clause by
// reverse unit propagation, so exchange can only speed solvers up.
func (p *Portfolio) exchange() {
	fresh := make([][]Lit, 0, exchangeMax)
	keys := make([]string, 0, exchangeMax)
	for i, s := range p.solvers {
		for _, cl := range s.ExportLearnts(exchangeMaxLen, exchangeMaxLBD, exchangeMax) {
			k := litKey(cl)
			mask, seen := p.seenEx[k]
			if !seen {
				fresh = append(fresh, cl)
				keys = append(keys, k)
				p.stats.Exchanged++
			}
			p.seenEx[k] = mask | 1<<uint(i)
		}
	}
	if len(fresh) == 0 {
		return
	}
	batch := make([][]Lit, 0, len(fresh))
	for j, s := range p.solvers {
		batch = batch[:0]
		for idx, cl := range fresh {
			if p.seenEx[keys[idx]]&(1<<uint(j)) == 0 {
				batch = append(batch, cl)
			}
		}
		kept, dropped := s.ImportLearnts(batch)
		p.stats.ImpKept += int64(kept)
		p.stats.ImpDropped += int64(dropped)
	}
}

// litKey encodes a normalized clause as a map key.
func litKey(cl []Lit) string {
	b := make([]byte, 0, len(cl)*3)
	for _, l := range cl {
		b = binary.AppendVarint(b, int64(l))
	}
	return string(b)
}

// Stats returns the summed search counters of every solver ever
// materialized, so portfolio totals are comparable to single-solver
// totals.
func (p *Portfolio) Stats() Stats {
	var total Stats
	for _, s := range p.solvers {
		total.Add(s.Stats())
	}
	return total
}

// PStats returns the portfolio-level counters.
func (p *Portfolio) PStats() PortfolioStats {
	wins := make(map[string]int64, len(p.cfgs))
	for _, c := range p.cfgs {
		if w := p.stats.Wins[c.Name]; w != 0 {
			wins[c.Name] = w
		}
	}
	out := p.stats
	out.Wins = wins
	return out
}
