package sat

import (
	"bytes"
	"testing"
)

// decodeCNF turns fuzz bytes into a CNF over n variables: each byte is
// a literal (0 terminates a clause), giving the fuzzer a dense,
// crash-friendly encoding.
func decodeCNF(data []byte, n int) [][]Lit {
	var cnf [][]Lit
	var cl []Lit
	for _, b := range data {
		if b == 0 || len(cl) >= 6 {
			if len(cl) > 0 {
				cnf = append(cnf, cl)
				cl = nil
			}
			continue
		}
		v := int(b%byte(n)) + 1
		l := Lit(v)
		if b >= 128 {
			l = -l
		}
		cl = append(cl, l)
	}
	if len(cl) > 0 {
		cnf = append(cnf, cl)
	}
	return cnf
}

// FuzzImportLearnts feeds a solver arbitrary foreign clauses — junk,
// out-of-range variables, tautologies, real exports — and checks the
// soundness contract: imports never flip the verdict, never change the
// canonical model, and a full export/import round trip onto the same
// formula certifies every clause.
func FuzzImportLearnts(f *testing.F) {
	f.Add([]byte{1, 2, 0, 129, 3, 0}, []byte{2, 0})
	f.Add([]byte{5, 0, 133, 0}, []byte{5, 133, 0, 7, 200, 0})
	f.Add([]byte{1, 130, 0, 2, 131, 0, 3, 129, 0}, []byte{0, 0, 1, 1, 1})
	f.Add([]byte{}, []byte{255, 254, 253})
	f.Fuzz(func(t *testing.T, formula, foreign []byte) {
		const n = 7
		cnf := decodeCNF(formula, n)
		junk := decodeCNF(foreign, n+4) // deliberately out of range

		ref := NewWith(Config{Canonical: true})
		refOK := addAll(ref, n, cnf)
		refSat := refOK && ref.Solve()
		var refModel []bool
		if refSat {
			refModel = ref.Model()
		}

		s := NewWith(Config{Canonical: true})
		sOK := addAll(s, n, cnf)
		if sOK {
			kept, dropped := s.ImportLearnts(junk)
			if kept+dropped != len(junk) {
				t.Fatalf("import accounting: kept %d + dropped %d != %d offered", kept, dropped, len(junk))
			}
		}
		sSat := sOK && s.Solve()
		if refSat != sSat {
			t.Fatalf("junk import flipped verdict: %v -> %v", refSat, sSat)
		}
		if refSat && !modelsEqual(refModel, s.Model()) {
			t.Fatal("junk import changed the canonical model")
		}

		// Round trip: a donor on the same formula exports after solving;
		// everything it knows is entailed, so the only legal drops are
		// clauses already satisfied at the receiver's level 0.
		donor := New()
		if addAll(donor, n, cnf) {
			donor.Solve()
			recv := NewWith(Config{Canonical: true})
			if addAll(recv, n, cnf) {
				exported := donor.ExportLearnts(16, 16, 0)
				recv.ImportLearnts(exported)
				recvSat := recv.Solve()
				if recvSat != refSat {
					t.Fatalf("round-trip import flipped verdict: %v -> %v", refSat, recvSat)
				}
				if refSat && !modelsEqual(refModel, recv.Model()) {
					t.Fatal("round-trip import changed the canonical model")
				}
				// Exports are canonical bytes: re-exporting yields a
				// deterministic snapshot.
				again := donor.ExportLearnts(16, 16, 0)
				if len(again) != len(exported) {
					t.Fatalf("re-export changed size: %d -> %d", len(exported), len(again))
				}
				for i := range again {
					a := litsToBytes(exported[i])
					b := litsToBytes(again[i])
					if !bytes.Equal(a, b) {
						t.Fatalf("re-export changed clause %d", i)
					}
				}
			}
		}
	})
}

func litsToBytes(ls []Lit) []byte {
	out := make([]byte, 0, len(ls)*4)
	for _, l := range ls {
		out = append(out, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return out
}
