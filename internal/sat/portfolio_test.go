package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCNF builds a reproducible random CNF over n variables.
func randomCNF(rr *rand.Rand, n, m int) [][]Lit {
	cnf := make([][]Lit, m)
	for i := range cnf {
		k := 1 + rr.Intn(3)
		cl := make([]Lit, 0, k)
		for j := 0; j < k; j++ {
			v := 1 + rr.Intn(n)
			if rr.Intn(2) == 0 {
				cl = append(cl, Lit(v))
			} else {
				cl = append(cl, Lit(-v))
			}
		}
		cnf[i] = cl
	}
	return cnf
}

func addAll(s *Solver, n int, cnf [][]Lit) bool {
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	ok := true
	for _, cl := range cnf {
		if !s.AddClause(cl...) {
			ok = false
		}
	}
	return ok
}

// lexLeastModel finds the lexicographically least satisfying assignment
// by brute force (variable 1 most significant, false < true), or nil.
func lexLeastModel(n int, cnf [][]Lit) []bool {
	for m := 0; m < 1<<uint(n); m++ {
		model := make([]bool, n)
		for v := 1; v <= n; v++ {
			model[v-1] = m>>uint(n-v)&1 == 1
		}
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				if model[l.Var()-1] == l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return model
		}
	}
	return nil
}

func modelsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The canonical configuration's keystone property: the first model is
// the lexicographically least one, whatever the solver has learned.
func TestCanonicalLexLeastModel(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(7)
		cnf := randomCNF(rr, n, 1+rr.Intn(3*n))
		want := lexLeastModel(n, cnf)
		s := NewWith(Config{Canonical: true})
		okAdd := addAll(s, n, cnf)
		if want == nil {
			return !(okAdd && s.Solve())
		}
		if !okAdd || !s.Solve() {
			return false
		}
		return modelsEqual(s.Model(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Canonical enumeration yields models in strictly increasing
// lexicographic order, and the sequence is invariant to learnt-clause
// imports from another solver.
func TestCanonicalEnumerationInvariantToImports(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(6)
		cnf := randomCNF(rr, n, 1+rr.Intn(3*n))

		enumerate := func(s *Solver, okAdd bool) [][]bool {
			var out [][]bool
			if !okAdd {
				return out
			}
			for s.Solve() {
				out = append(out, s.Model())
				if len(out) > 1<<uint(n) {
					return nil
				}
				if !s.BlockModel() {
					break
				}
			}
			return out
		}

		plain := NewWith(Config{Canonical: true})
		ref := enumerate(plain, addAll(plain, n, cnf))

		// A donor solver with different heuristics works the same
		// formula and donates everything it learned.
		donor := NewWith(Config{PosPhase: true, VarDecay: 0.8})
		donorOK := addAll(donor, n, cnf)
		donor.Solve()
		fed := NewWith(Config{Canonical: true})
		fedOK := addAll(fed, n, cnf)
		if donorOK && fedOK {
			fed.ImportLearnts(donor.ExportLearnts(16, 16, 0))
		}
		got := enumerate(fed, fedOK)

		if len(ref) != len(got) {
			return false
		}
		for i := range ref {
			if !modelsEqual(ref[i], got[i]) {
				return false
			}
		}
		// Strictly increasing lexicographic order.
		for i := 1; i < len(ref); i++ {
			less := false
			for v := 0; v < n; v++ {
				if ref[i-1][v] != ref[i][v] {
					less = !ref[i-1][v]
					break
				}
			}
			if !less {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBoundedUnknownThenResumes(t *testing.T) {
	const P, H = 6, 5
	s := newVars(P * H)
	vr := func(p, h int) Lit { return Lit(p*H + h + 1) }
	for p := 0; p < P; p++ {
		lits := make([]Lit, H)
		for h := 0; h < H; h++ {
			lits[h] = vr(p, h)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < H; h++ {
		for p1 := 0; p1 < P; p1++ {
			for p2 := p1 + 1; p2 < P; p2++ {
				s.AddClause(-vr(p1, h), -vr(p2, h))
			}
		}
	}
	if v := s.SolveBounded(1); v != Unknown {
		t.Fatalf("budget 1 on PHP(6,5): got %v, want unknown", v)
	}
	for i := 0; i < 10000; i++ {
		if v := s.SolveBounded(50); v != Unknown {
			if v != Unsat {
				t.Fatalf("PHP(6,5): got %v, want unsat", v)
			}
			return
		}
	}
	t.Fatal("PHP(6,5) did not finish in 10000 bounded resumes")
}

func TestExportImportRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 3 + rr.Intn(7)
		cnf := randomCNF(rr, n, 2+rr.Intn(3*n))

		a := New()
		aOK := addAll(a, n, cnf)
		aSat := aOK && a.Solve()

		b := New()
		bOK := addAll(b, n, cnf)
		if aOK && bOK {
			exported := a.ExportLearnts(16, 16, 0)
			kept, dropped := b.ImportLearnts(exported)
			// Same formula: everything a learned is entailed in b, so
			// nothing may be dropped for failing certification (drops
			// can only come from level-0-satisfied candidates).
			if kept+dropped != len(exported) {
				return false
			}
		}
		bSat := bOK && b.Solve()
		return aSat == bSat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Importing arbitrary junk must never flip a verdict or perturb the
// canonical model: uncertifiable clauses are dropped at the door.
func TestImportJunkNeverFlips(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(6)
		cnf := randomCNF(rr, n, 1+rr.Intn(3*n))
		junk := randomCNF(rr, n+2, 1+rr.Intn(8)) // vars may be out of range

		ref := NewWith(Config{Canonical: true})
		refOK := addAll(ref, n, cnf)
		refSat := refOK && ref.Solve()

		s := NewWith(Config{Canonical: true})
		sOK := addAll(s, n, cnf)
		if sOK {
			s.ImportLearnts(junk)
		}
		sSat := sOK && s.Solve()
		if refSat != sSat {
			return false
		}
		if refSat && !modelsEqual(ref.Model(), s.Model()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The portfolio must behave exactly like a lone canonical solver —
// same verdicts, same models, same enumeration — at any width and any
// worker count, including under forced escalation.
func TestPortfolioMatchesCanonicalSolver(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(6)
		cnf := randomCNF(rr, n, 1+rr.Intn(3*n))

		ref := NewWith(Config{Canonical: true})
		refOK := addAll(ref, n, cnf)
		var refModels [][]bool
		if refOK {
			for ref.Solve() {
				refModels = append(refModels, ref.Model())
				if !ref.BlockModel() {
					break
				}
			}
		}

		for _, k := range []int{1, 4} {
			for _, workers := range []int{1, 4} {
				p := NewPortfolio(DefaultConfigs(k), workers)
				p.epoch = 4 // tiny epochs force the racing path
				pOK := true
				for i := 0; i < n; i++ {
					p.NewVar()
				}
				for _, cl := range cnf {
					if !p.AddClause(cl...) {
						pOK = false
					}
				}
				if pOK != refOK {
					return false
				}
				var got [][]bool
				if pOK {
					for p.Solve() {
						got = append(got, p.Model())
						if len(got) > 1<<uint(n) {
							return false
						}
						if !p.BlockModel() {
							break
						}
					}
				}
				if len(got) != len(refModels) {
					return false
				}
				for i := range got {
					if !modelsEqual(got[i], refModels[i]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPortfolioUnsatEscalates(t *testing.T) {
	const P, H = 6, 5
	p := NewPortfolio(DefaultConfigs(4), 4)
	p.epoch = 8
	for i := 0; i < P*H; i++ {
		p.NewVar()
	}
	vr := func(pp, h int) Lit { return Lit(pp*H + h + 1) }
	for pp := 0; pp < P; pp++ {
		lits := make([]Lit, H)
		for h := 0; h < H; h++ {
			lits[h] = vr(pp, h)
		}
		p.AddClause(lits...)
	}
	for h := 0; h < H; h++ {
		for p1 := 0; p1 < P; p1++ {
			for p2 := p1 + 1; p2 < P; p2++ {
				p.AddClause(-vr(p1, h), -vr(p2, h))
			}
		}
	}
	if v := p.SolveVerdict(); v != Unsat {
		t.Fatalf("PHP(6,5): got %v, want unsat", v)
	}
	st := p.PStats()
	if st.Escalated == 0 {
		t.Fatal("expected the query to escalate past the anchor-only epoch")
	}
	var wins int64
	for _, w := range st.Wins {
		wins += w
	}
	if wins != st.Queries {
		t.Fatalf("wins %d != queries %d", wins, st.Queries)
	}
	if got := p.Stats(); got.Conflicts == 0 {
		t.Fatal("aggregated stats should count conflicts")
	}
}

func TestPortfolioLazyRacers(t *testing.T) {
	p := NewPortfolio(DefaultConfigs(4), 1)
	for i := 0; i < 3; i++ {
		p.NewVar()
	}
	p.AddClause(1, 2)
	if !p.Solve() {
		t.Fatal("easy formula should be SAT")
	}
	if len(p.solvers) != 1 {
		t.Fatalf("easy query materialized %d solvers, want anchor only", len(p.solvers))
	}
	if p.PStats().Escalated != 0 {
		t.Fatal("easy query must not escalate")
	}
}

func TestDefaultConfigs(t *testing.T) {
	for _, k := range []int{-1, 0, 1, 3, 8, 99} {
		cfgs := DefaultConfigs(k)
		if len(cfgs) < 1 || len(cfgs) > 8 {
			t.Fatalf("DefaultConfigs(%d): %d configs", k, len(cfgs))
		}
		if !cfgs[0].Canonical {
			t.Fatalf("DefaultConfigs(%d): config 0 not canonical", k)
		}
		seen := map[string]bool{}
		for _, c := range cfgs {
			if c.Name == "" || seen[c.Name] {
				t.Fatalf("DefaultConfigs(%d): duplicate or empty name %q", k, c.Name)
			}
			seen[c.Name] = true
		}
	}
}
