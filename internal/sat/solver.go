// Package sat implements a CDCL (conflict-driven clause learning) Boolean
// satisfiability solver with two-literal watching, first-UIP learning,
// VSIDS-style branching activities, phase saving and geometric restarts.
//
// It is the substrate for the generalized state-assignment step of the
// synthesis flow: the Monotonous Cover requirement is translated into 0-1
// Boolean constraints over per-state labelling variables (Section V/VII of
// the paper, following Vanbekbergen et al.), and those constraints are
// solved here. The solver also supports incremental solving under
// assumptions and model enumeration through blocking clauses. Learned
// clauses are retained across Solve calls, so a caller that expresses
// per-query constraints as assumptions (rather than rebuilding the
// formula) amortizes the search effort over all its queries; selector
// variables (BlockModelWith) extend the same sharing to enumeration,
// scoping each enumeration's blocking clauses to its own assumption
// context.
package sat

import "sort"

// Lit is a literal: +v for variable v, -v for its negation. Variables are
// numbered from 1.
type Lit int32

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return -l }

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Sign reports whether the literal is positive.
func (l Lit) Sign() bool { return l > 0 }

// index maps a literal to a dense index: var v → 2(v-1) (positive) or
// 2(v-1)+1 (negative).
func (l Lit) index() int {
	v := l.Var() - 1
	if l > 0 {
		return 2 * v
	}
	return 2*v + 1
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
}

// Solver is a CDCL SAT solver. The zero value is not usable; create
// instances with New.
type Solver struct {
	nVars   int
	clauses []*clause
	learnts []*clause
	watches [][]*clause // literal index → clauses watching that literal

	assign  []lbool // variable (1-based) → value
	level   []int   // variable → decision level of assignment
	reason  []*clause
	trail   []Lit
	trailLo int // propagation queue head
	limits  []int

	activity []float64
	varInc   float64
	order    []int // lazily sorted decision order
	phase    []bool

	claInc float64

	// Statistics, exported for benchmarking and diagnostics.
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64

	model []bool
	ok    bool
}

// New returns an empty, satisfiable solver.
func New() *Solver {
	return &Solver{varInc: 1, claInc: 1, ok: true}
}

// NewVar allocates a fresh variable and returns its (1-based) number.
func (s *Solver) NewVar() int {
	s.nVars++
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, false)
	s.watches = append(s.watches, nil, nil)
	return s.nVars
}

// NVars returns the number of allocated variables.
func (s *Solver) NVars() int { return s.nVars }

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()-1]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() == (v == lTrue) {
		return lTrue
	}
	return lFalse
}

// AddClause adds a clause to the solver. It returns false when the clause
// makes the formula trivially unsatisfiable (empty clause, or a conflicting
// unit at level 0). Adding clauses is only supported at decision level 0
// (i.e. before or between Solve calls).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.limits) != 0 {
		panic("sat: AddClause during search")
	}
	// Normalize: sort, drop duplicates and false literals, detect
	// tautologies and satisfied clauses.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit
	for _, l := range ls {
		if l == 0 || l.Var() > s.nVars {
			panic("sat: literal out of range")
		}
		if l == prev {
			continue
		}
		if l == -prev && prev != 0 {
			return true // tautology: x ∨ ¬x
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue // drop false literal
		}
		out = append(out, l)
		prev = l
	}
	// A sorted clause can still hide a tautology pair (-x, x are not
	// adjacent after sorting since -x < x only for same var when... they
	// are adjacent: -v sorts right before smaller positives). Handle the
	// general case explicitly.
	for i := 0; i+1 < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[i] == -out[j] {
				return true
			}
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.ok = false
			return false
		}
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

func (s *Solver) watch(c *clause) {
	// Watch the negations of the first two literals: when one becomes
	// true (literal false), the clause is inspected.
	s.watches[c.lits[0].Neg().index()] = append(s.watches[c.lits[0].Neg().index()], c)
	s.watches[c.lits[1].Neg().index()] = append(s.watches[c.lits[1].Neg().index()], c)
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var() - 1
	if l.Sign() {
		s.assign[v] = lTrue
	} else {
		s.assign[v] = lFalse
	}
	s.level[v] = len(s.limits)
	s.reason[v] = from
	s.phase[v] = l.Sign()
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; it returns a conflicting clause or
// nil.
//
//reprolint:hotpath
func (s *Solver) propagate() *clause {
	for s.trailLo < len(s.trail) {
		l := s.trail[s.trailLo]
		s.trailLo++
		s.Propagations++
		// Clauses watching l (i.e. containing ¬l as a watched literal...
		// we stored watchers under the negation of the watched literal,
		// so watchers of index(l) are clauses whose watched literal is
		// ¬l, which has just become false).
		// Compact the bucket in place: clauses that keep watching ¬l
		// are written back through j, moved and deleted clauses are
		// dropped. Appends triggered for a relocated clause always
		// target a different bucket (its new watch literal cannot be
		// ¬l, which is false), so the in-place scan is safe.
		ws := s.watches[l.index()]
		j := 0
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			if c.deleted {
				continue
			}
			// Ensure the false literal is lits[1].
			if c.lits[0] == l.Neg() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If the other watched literal is true, keep watching.
			if s.value(c.lits[0]) == lTrue {
				ws[j] = c
				j++
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Neg().index()] = append(s.watches[c.lits[1].Neg().index()], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			ws[j] = c
			j++
			if !s.enqueue(c.lits[0], c) {
				// Conflict: restore remaining watchers and report.
				j += copy(ws[j:], ws[wi+1:])
				s.watches[l.index()] = ws[:j]
				s.trailLo = len(s.trail)
				return c
			}
		}
		s.watches[l.index()] = ws[:j]
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v-1] += s.varInc
	if s.activity[v-1] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

func (s *Solver) decayVar() { s.varInc /= 0.95 }

// analyze performs first-UIP conflict analysis and returns the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	seen := make(map[int]bool)
	counter := 0
	var p Lit
	idx := len(s.trail) - 1

	c := confl
	for {
		for _, q := range c.lits {
			if p != 0 && q == p {
				continue
			}
			v := q.Var()
			if seen[v] || s.value(q) != lFalse {
				continue
			}
			seen[v] = true
			s.bumpVar(v)
			if s.level[v-1] == len(s.limits) {
				counter++
			} else if s.level[v-1] > 0 {
				learnt = append(learnt, q)
			}
		}
		// Find the next trail literal to resolve on.
		for idx >= 0 && !seen[s.trail[idx].Var()] {
			idx--
		}
		if idx < 0 {
			break
		}
		p = s.trail[idx]
		c = s.reason[p.Var()-1]
		seen[p.Var()] = false
		counter--
		idx--
		if counter == 0 {
			break
		}
		if c == nil {
			// Decision literal reached with pending counts; should not
			// happen in well-formed analysis, but guard anyway.
			break
		}
	}
	learnt[0] = p.Neg()

	// Backtrack level: second-highest level in the learnt clause. Move a
	// literal of that level into slot 1 so the two watched literals keep
	// the watching invariant after backtracking.
	back, backIdx := 0, -1
	for i, q := range learnt[1:] {
		if lv := s.level[q.Var()-1]; lv > back {
			back, backIdx = lv, i+1
		}
	}
	if backIdx > 1 {
		learnt[1], learnt[backIdx] = learnt[backIdx], learnt[1]
	}
	return learnt, back
}

func (s *Solver) backtrackTo(level int) {
	if len(s.limits) <= level {
		return
	}
	lo := s.limits[level]
	for i := len(s.trail) - 1; i >= lo; i-- {
		v := s.trail[i].Var() - 1
		s.assign[v] = lUndef
		s.reason[v] = nil
	}
	s.trail = s.trail[:lo]
	s.trailLo = lo
	s.limits = s.limits[:level]
}

// ResetSearch restores the branching heuristics — saved phases and
// variable activities — to their initial state without touching the
// clause database (learned clauses included). Callers sharing one
// solver across many assumption-scoped enumerations use it so each
// enumeration's early models track the formula, not the previous
// enumeration's search trajectory.
func (s *Solver) ResetSearch() {
	for i := range s.phase {
		s.phase[i] = false
	}
	for i := range s.activity {
		s.activity[i] = 0
	}
	s.varInc = 1
}

// Simplify removes every clause satisfied by the level-0 assignment
// from the database. Long-lived solvers use it to shed clauses that a
// root-level fact has retired for good — e.g. enumeration blocking
// clauses whose selector has been pinned false — so their watch lists
// stop taxing propagation. It is a no-op mid-search or after the
// formula has become unsatisfiable.
func (s *Solver) Simplify() {
	if !s.ok || len(s.limits) != 0 {
		return
	}
	s.clauses = s.dropSatisfied(s.clauses)
	s.learnts = s.dropSatisfied(s.learnts)
}

func (s *Solver) dropSatisfied(cs []*clause) []*clause {
	out := cs[:0]
	for _, c := range cs {
		rooted := false
		for _, l := range c.lits {
			if s.value(l) == lTrue && s.level[l.Var()-1] == 0 {
				rooted = true
				break
			}
		}
		if rooted {
			// Watch lists drop the clause lazily via the deleted flag.
			c.deleted = true
			continue
		}
		out = append(out, c)
	}
	// Keep the tail pointers collectable.
	tail := cs[len(out):]
	for i := range tail {
		tail[i] = nil
	}
	return out
}

// pickBranch returns the unassigned variable with the highest activity,
// or 0 when everything is assigned.
func (s *Solver) pickBranch() Lit {
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nVars; v++ {
		if s.assign[v-1] == lUndef && s.activity[v-1] > bestAct {
			best, bestAct = v, s.activity[v-1]
		}
	}
	if best == 0 {
		return 0
	}
	if s.phase[best-1] {
		return Lit(best)
	}
	return Lit(-best)
}

// Solve decides satisfiability under the given assumption literals. On a
// SAT answer the model is available through Value/Model. The solver can be
// re-solved with different assumptions and extended with further clauses
// between calls.
func (s *Solver) Solve(assumptions ...Lit) bool {
	if !s.ok {
		return false
	}
	s.backtrackTo(0)
	if s.propagate() != nil {
		s.ok = false
		return false
	}

	// Apply assumptions, each at its own decision level.
	for _, a := range assumptions {
		switch s.value(a) {
		case lTrue:
			continue
		case lFalse:
			s.backtrackTo(0)
			return false
		}
		s.limits = append(s.limits, len(s.trail))
		s.enqueue(a, nil)
		if s.propagate() != nil {
			s.backtrackTo(0)
			return false
		}
	}
	assumpLevel := len(s.limits)

	conflictBudget := 256
	for {
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			if len(s.limits) <= assumpLevel {
				s.backtrackTo(0)
				return false
			}
			learnt, back := s.analyze(confl)
			if back < assumpLevel {
				back = assumpLevel
			}
			s.backtrackTo(back)
			if len(learnt) == 1 {
				if !s.enqueue(learnt[0], nil) {
					s.backtrackTo(0)
					return false
				}
			} else {
				c := &clause{lits: learnt, learnt: true, act: s.claInc}
				s.learnts = append(s.learnts, c)
				s.watch(c)
				s.enqueue(learnt[0], c)
			}
			s.decayVar()
			conflictBudget--
			if conflictBudget <= 0 {
				// Restart: keep learnt clauses, drop the search tree.
				s.Restarts++
				s.backtrackTo(assumpLevel)
				conflictBudget = 256 + len(s.learnts)/2
			}
			continue
		}
		l := s.pickBranch()
		if l == 0 {
			// Complete assignment: record the model.
			s.model = make([]bool, s.nVars)
			for v := 1; v <= s.nVars; v++ {
				s.model[v-1] = s.assign[v-1] == lTrue
			}
			s.backtrackTo(0)
			return true
		}
		s.Decisions++
		s.limits = append(s.limits, len(s.trail))
		s.enqueue(l, nil)
	}
}

// Value returns the value of variable v in the last model. It panics when
// no model is available.
func (s *Solver) Value(v int) bool {
	if s.model == nil {
		panic("sat: no model available")
	}
	return s.model[v-1]
}

// Model returns a copy of the last satisfying assignment (index 0 is
// variable 1).
func (s *Solver) Model() []bool {
	out := make([]bool, len(s.model))
	copy(out, s.model)
	return out
}

// BlockModel adds a clause forbidding the last model restricted to the
// given variables (all variables when vars is empty), enabling model
// enumeration. It returns false when the formula becomes unsatisfiable.
func (s *Solver) BlockModel(vars ...int) bool {
	return s.AddClause(s.blockLits(nil, vars)...)
}

// BlockModelWith is BlockModel with an escape literal: it adds the
// clause (escape ∨ ¬model), which forbids the model only while
// escape.Neg() is assumed. Dropping that assumption leaves the clause
// vacuously satisfiable, so the blocking is scoped to one assumption
// context while the solver — and every clause it has learned — stays
// shared across contexts. Callers enumerate by allocating a fresh
// selector variable per enumeration, assuming its positive literal,
// and blocking each model with escape = ¬selector; a later enumeration
// under a new selector sees the earlier enumeration's models again.
func (s *Solver) BlockModelWith(escape Lit, vars ...int) bool {
	return s.AddClause(s.blockLits([]Lit{escape}, vars)...)
}

// blockLits builds the blocking clause of the last model over vars
// (all variables when empty), prefixed by the given extra literals.
func (s *Solver) blockLits(extra []Lit, vars []int) []Lit {
	if s.model == nil {
		panic("sat: no model to block")
	}
	if len(vars) == 0 {
		vars = make([]int, s.nVars)
		for i := range vars {
			vars[i] = i + 1
		}
	}
	lits := make([]Lit, 0, len(extra)+len(vars))
	lits = append(lits, extra...)
	for _, v := range vars {
		if s.model[v-1] {
			lits = append(lits, Lit(-v))
		} else {
			lits = append(lits, Lit(v))
		}
	}
	return lits
}
