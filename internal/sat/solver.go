// Package sat implements a CDCL (conflict-driven clause learning) Boolean
// satisfiability solver with two-literal watching, first-UIP learning,
// VSIDS-style branching activities, phase saving and geometric restarts.
//
// It is the substrate for the generalized state-assignment step of the
// synthesis flow: the Monotonous Cover requirement is translated into 0-1
// Boolean constraints over per-state labelling variables (Section V/VII of
// the paper, following Vanbekbergen et al.), and those constraints are
// solved here. The solver also supports incremental solving under
// assumptions and model enumeration through blocking clauses. Learned
// clauses are retained across Solve calls, so a caller that expresses
// per-query constraints as assumptions (rather than rebuilding the
// formula) amortizes the search effort over all its queries; selector
// variables (BlockModelWith) extend the same sharing to enumeration,
// scoping each enumeration's blocking clauses to its own assumption
// context.
//
// Beyond the single CDCL engine, the package provides the pieces the
// repair loop's deterministic portfolio is built from:
//
//   - Config parameterizes the branching/restart heuristics. The
//     canonical configuration (Config.Canonical) branches on the
//     lowest-index unassigned variable, false first, which makes every
//     answer a pure function of the formula: the first model returned is
//     the lexicographically least one, regardless of which entailed
//     clauses the solver happens to have learned or imported. That
//     invariance is what lets clause sharing and cross-round clause
//     carrying accelerate the search without ever changing its result.
//   - SolveBounded runs the search under a conflict budget, the logical
//     time base of portfolio epochs (wall-clock never decides anything).
//   - ExportLearnts / ImportLearnts move learnt clauses between solvers.
//     Import re-validates every candidate clause against the receiving
//     solver's own formula by reverse unit propagation, so importing is
//     sound even across formulas (the cross-round case) and importing
//     arbitrary junk can never flip a verdict.
//   - Portfolio (portfolio.go) races K configurations in deterministic
//     conflict-budget epochs with learnt-clause exchange at the barriers.
package sat

import (
	"slices"
	"sort"
)

// Verdict is the outcome of a bounded solving attempt.
type Verdict int8

// SolveBounded outcomes.
const (
	Unknown Verdict = iota // conflict budget exhausted before a decision
	Sat                    // a model was found
	Unsat                  // the formula is unsatisfiable under the assumptions
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Config parameterizes a solver's search heuristics. The zero value is
// the package default: VSIDS branching with phase saving, decay 0.95,
// first restart after 256 conflicts. Heuristics never affect which
// formulas are satisfiable, only how fast an answer is found — and in
// canonical mode, not even which model is found.
type Config struct {
	// Name labels the configuration in portfolio win statistics.
	Name string
	// Canonical branches on the lowest-index unassigned variable and
	// always tries false first, ignoring activities and saved phases.
	// The first model found is then the lexicographically least model
	// of the formula under the assumptions, independent of the learnt
	// clause database; enumeration through blocking clauses yields
	// models in strictly increasing lexicographic order.
	Canonical bool
	// PosPhase makes unassigned variables default to true instead of
	// false (both as the initial saved phase and as the branch value
	// when phase saving is off). Ignored in canonical mode.
	PosPhase bool
	// NoPhaseSaving disables phase saving: decisions always use
	// PosPhase rather than the variable's last assigned value.
	NoPhaseSaving bool
	// VarDecay is the VSIDS activity decay divisor in (0, 1); higher
	// values keep activity history longer. 0 means the default 0.95.
	VarDecay float64
	// RestartBase is the conflict budget of the first restart interval
	// (later intervals grow with the learnt database). 0 means 256.
	RestartBase int
}

func (c Config) fill() Config {
	if c.VarDecay == 0 {
		c.VarDecay = 0.95
	}
	if c.RestartBase == 0 {
		c.RestartBase = 256
	}
	return c
}

// Stats is a snapshot of a solver's search counters.
type Stats struct {
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Conflicts += other.Conflicts
	s.Decisions += other.Decisions
	s.Propagations += other.Propagations
	s.Restarts += other.Restarts
}

// Lit is a literal: +v for variable v, -v for its negation. Variables are
// numbered from 1.
type Lit int32

// Neg returns the complement literal.
func (l Lit) Neg() Lit { return -l }

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Sign reports whether the literal is positive.
func (l Lit) Sign() bool { return l > 0 }

// index maps a literal to a dense index: var v → 2(v-1) (positive) or
// 2(v-1)+1 (negative).
func (l Lit) index() int {
	v := l.Var() - 1
	if l > 0 {
		return 2 * v
	}
	return 2*v + 1
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	deleted bool
	lbd     int32 // literal block distance at learn time (learnt clauses)
}

// Solver is a CDCL SAT solver. The zero value is not usable; create
// instances with New.
type Solver struct {
	nVars   int
	clauses []*clause
	learnts []*clause
	watches [][]watcher // literal index → clauses watching that literal

	assign  []lbool // variable (1-based) → value
	level   []int   // variable → decision level of assignment
	reason  []*clause
	trail   []Lit
	trailLo int // propagation queue head
	limits  []int

	activity []float64
	varInc   float64
	order    []int // lazily sorted decision order
	phase    []bool

	claInc float64

	cfg     Config
	lowHint int   // canonical mode: smallest variable that may be unassigned
	lbdMark []int // level → generation stamp, scratch for LBD computation
	lbdGen  int

	seenMark   []int // variable → generation stamp, scratch for analyze
	seenGen    int
	analyzeBuf []Lit // reusable learnt-clause buffer for analyze

	// Statistics, exported for benchmarking and diagnostics.
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64

	model []bool
	ok    bool
}

// New returns an empty, satisfiable solver with the default heuristics.
func New() *Solver {
	return NewWith(Config{})
}

// NewWith returns an empty, satisfiable solver using the given
// heuristic configuration.
func NewWith(cfg Config) *Solver {
	return &Solver{varInc: 1, claInc: 1, ok: true, cfg: cfg.fill(), lowHint: 1}
}

// Stats returns a snapshot of the solver's search counters.
func (s *Solver) Stats() Stats {
	return Stats{
		Conflicts:    s.Conflicts,
		Decisions:    s.Decisions,
		Propagations: s.Propagations,
		Restarts:     s.Restarts,
	}
}

// NewVar allocates a fresh variable and returns its (1-based) number.
func (s *Solver) NewVar() int {
	s.nVars++
	s.assign = append(s.assign, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, s.cfg.PosPhase)
	s.watches = append(s.watches, nil, nil)
	return s.nVars
}

// NVars returns the number of allocated variables.
func (s *Solver) NVars() int { return s.nVars }

func (s *Solver) value(l Lit) lbool {
	v := s.assign[l.Var()-1]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() == (v == lTrue) {
		return lTrue
	}
	return lFalse
}

// AddClause adds a clause to the solver. It returns false when the clause
// makes the formula trivially unsatisfiable (empty clause, or a conflicting
// unit at level 0). Adding clauses is only supported at decision level 0
// (i.e. before or between Solve calls).
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	if len(s.limits) != 0 {
		panic("sat: AddClause during search")
	}
	// Normalize: sort, drop duplicates and false literals, detect
	// tautologies and satisfied clauses.
	ls := append([]Lit(nil), lits...)
	slices.Sort(ls)
	out := ls[:0]
	var prev Lit
	for _, l := range ls {
		if l == 0 || l.Var() > s.nVars {
			panic("sat: literal out of range")
		}
		if l == prev {
			continue
		}
		if l == -prev && prev != 0 {
			return true // tautology: x ∨ ¬x
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue // drop false literal
		}
		out = append(out, l)
		prev = l
	}
	// A sorted clause can still hide a tautology pair (-x, x are not
	// adjacent after sorting since -x < x only for same var when... they
	// are adjacent: -v sorts right before smaller positives). Handle the
	// general case explicitly.
	for i := 0; i+1 < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[i] == -out[j] {
				return true
			}
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.ok = false
			return false
		}
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	// Store highest variables first: the watched literals are then the
	// ones assigned LAST under lexicographic branching, which keeps
	// wide clauses — model-blocking clauses above all — dormant until a
	// branch has nearly reproduced them, instead of being inspected by
	// every low-variable decision. (Clause order is semantically
	// irrelevant; this only places the watches.)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watch(c)
	return true
}

// watcher is one entry of a literal's watch list. The blocker is some
// literal of the clause (initially the other watched one): when it is
// already true the clause is satisfied and propagation can skip the
// clause without touching its memory. Model-blocking clauses are wide
// and numerous here, so most watcher visits end at this one-word check.
type watcher struct {
	c       *clause
	blocker Lit
}

func (s *Solver) watch(c *clause) {
	// Watch the negations of the first two literals: when one becomes
	// true (literal false), the clause is inspected.
	s.watches[c.lits[0].Neg().index()] = append(s.watches[c.lits[0].Neg().index()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Neg().index()] = append(s.watches[c.lits[1].Neg().index()], watcher{c, c.lits[0]})
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var() - 1
	if l.Sign() {
		s.assign[v] = lTrue
	} else {
		s.assign[v] = lFalse
	}
	s.level[v] = len(s.limits)
	s.reason[v] = from
	s.phase[v] = l.Sign()
	s.trail = append(s.trail, l)
	return true
}

// propagate performs unit propagation; it returns a conflicting clause or
// nil.
//
//reprolint:hotpath
func (s *Solver) propagate() *clause {
	for s.trailLo < len(s.trail) {
		l := s.trail[s.trailLo]
		s.trailLo++
		s.Propagations++
		// Clauses watching l (i.e. containing ¬l as a watched literal...
		// we stored watchers under the negation of the watched literal,
		// so watchers of index(l) are clauses whose watched literal is
		// ¬l, which has just become false).
		// Compact the bucket in place: clauses that keep watching ¬l
		// are written back through j, moved and deleted clauses are
		// dropped. Appends triggered for a relocated clause always
		// target a different bucket (its new watch literal cannot be
		// ¬l, which is false), so the in-place scan is safe.
		ws := s.watches[l.index()]
		j := 0
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			// Satisfied via the cached blocker: keep watching, skip the
			// clause body entirely.
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			if c.deleted {
				continue
			}
			// Ensure the false literal is lits[1].
			if c.lits[0] == l.Neg() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// If the other watched literal is true, keep watching and
			// remember it as the blocker.
			first := c.lits[0]
			if s.value(first) == lTrue {
				ws[j] = watcher{c, first}
				j++
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Neg().index()] = append(s.watches[c.lits[1].Neg().index()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{c, first}
			j++
			if !s.enqueue(first, c) {
				// Conflict: restore remaining watchers and report.
				j += copy(ws[j:], ws[wi+1:])
				s.watches[l.index()] = ws[:j]
				s.trailLo = len(s.trail)
				return c
			}
		}
		s.watches[l.index()] = ws[:j]
	}
	return nil
}

func (s *Solver) bumpVar(v int) {
	s.activity[v-1] += s.varInc
	if s.activity[v-1] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

func (s *Solver) decayVar() { s.varInc /= s.cfg.VarDecay }

// computeLBD returns the literal block distance of a clause: the number
// of distinct decision levels among its literals' assignments. Small
// LBD marks "glue" clauses worth sharing across solvers.
func (s *Solver) computeLBD(lits []Lit) int32 {
	need := len(s.limits) + 1
	if len(s.lbdMark) < need {
		s.lbdMark = append(s.lbdMark, make([]int, need-len(s.lbdMark))...)
	}
	s.lbdGen++
	var n int32
	for _, l := range lits {
		lv := s.level[l.Var()-1]
		if lv < len(s.lbdMark) && s.lbdMark[lv] != s.lbdGen {
			s.lbdMark[lv] = s.lbdGen
			n++
		}
	}
	return n
}

// analyze performs first-UIP conflict analysis and returns the learnt
// clause (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := append(s.analyzeBuf[:0], 0) // slot 0 reserved for the asserting literal
	if len(s.seenMark) < s.nVars {
		s.seenMark = make([]int, s.nVars)
	}
	s.seenGen++
	gen := s.seenGen
	seen := func(v int) bool { return s.seenMark[v-1] == gen }
	setSeen := func(v int, b bool) {
		if b {
			s.seenMark[v-1] = gen
		} else {
			s.seenMark[v-1] = 0
		}
	}
	counter := 0
	var p Lit
	idx := len(s.trail) - 1

	c := confl
	for {
		for _, q := range c.lits {
			if p != 0 && q == p {
				continue
			}
			v := q.Var()
			if seen(v) || s.value(q) != lFalse {
				continue
			}
			setSeen(v, true)
			s.bumpVar(v)
			if s.level[v-1] == len(s.limits) {
				counter++
			} else if s.level[v-1] > 0 {
				learnt = append(learnt, q)
			}
		}
		// Find the next trail literal to resolve on.
		for idx >= 0 && !seen(s.trail[idx].Var()) {
			idx--
		}
		if idx < 0 {
			break
		}
		p = s.trail[idx]
		c = s.reason[p.Var()-1]
		setSeen(p.Var(), false)
		counter--
		idx--
		if counter == 0 {
			break
		}
		if c == nil {
			// Decision literal reached with pending counts; should not
			// happen in well-formed analysis, but guard anyway.
			break
		}
	}
	learnt[0] = p.Neg()

	// Backtrack level: second-highest level in the learnt clause. Move a
	// literal of that level into slot 1 so the two watched literals keep
	// the watching invariant after backtracking.
	back, backIdx := 0, -1
	for i, q := range learnt[1:] {
		if lv := s.level[q.Var()-1]; lv > back {
			back, backIdx = lv, i+1
		}
	}
	if backIdx > 1 {
		learnt[1], learnt[backIdx] = learnt[backIdx], learnt[1]
	}
	s.analyzeBuf = learnt
	return learnt, back
}

func (s *Solver) backtrackTo(level int) {
	if len(s.limits) <= level {
		return
	}
	lo := s.limits[level]
	for i := len(s.trail) - 1; i >= lo; i-- {
		v := s.trail[i].Var()
		s.assign[v-1] = lUndef
		s.reason[v-1] = nil
		if v < s.lowHint {
			s.lowHint = v
		}
	}
	s.trail = s.trail[:lo]
	s.trailLo = lo
	s.limits = s.limits[:level]
}

// ResetSearch restores the branching heuristics — saved phases and
// variable activities — to their initial state without touching the
// clause database (learned clauses included). Callers sharing one
// solver across many assumption-scoped enumerations use it so each
// enumeration's early models track the formula, not the previous
// enumeration's search trajectory.
func (s *Solver) ResetSearch() {
	for i := range s.phase {
		s.phase[i] = s.cfg.PosPhase
	}
	for i := range s.activity {
		s.activity[i] = 0
	}
	s.varInc = 1
}

// Simplify removes every clause satisfied by the level-0 assignment
// from the database. Long-lived solvers use it to shed clauses that a
// root-level fact has retired for good — e.g. enumeration blocking
// clauses whose selector has been pinned false — so their watch lists
// stop taxing propagation. It is a no-op mid-search or after the
// formula has become unsatisfiable.
func (s *Solver) Simplify() {
	if !s.ok || len(s.limits) != 0 {
		return
	}
	s.clauses = s.dropSatisfied(s.clauses)
	s.learnts = s.dropSatisfied(s.learnts)
}

func (s *Solver) dropSatisfied(cs []*clause) []*clause {
	out := cs[:0]
	for _, c := range cs {
		rooted := false
		for _, l := range c.lits {
			if s.value(l) == lTrue && s.level[l.Var()-1] == 0 {
				rooted = true
				break
			}
		}
		if rooted {
			// Watch lists drop the clause lazily via the deleted flag.
			c.deleted = true
			continue
		}
		out = append(out, c)
	}
	// Keep the tail pointers collectable.
	tail := cs[len(out):]
	for i := range tail {
		tail[i] = nil
	}
	return out
}

// pickBranch returns the next decision literal, or 0 when everything is
// assigned. In canonical mode that is the lowest-index unassigned
// variable, negated (false first); otherwise the unassigned variable
// with the highest activity, in its preferred phase.
func (s *Solver) pickBranch() Lit {
	if s.cfg.Canonical {
		for v := s.lowHint; v <= s.nVars; v++ {
			if s.assign[v-1] == lUndef {
				s.lowHint = v
				return Lit(-v)
			}
		}
		s.lowHint = s.nVars + 1
		return 0
	}
	best, bestAct := 0, -1.0
	for v := 1; v <= s.nVars; v++ {
		if s.assign[v-1] == lUndef && s.activity[v-1] > bestAct {
			best, bestAct = v, s.activity[v-1]
		}
	}
	if best == 0 {
		return 0
	}
	ph := s.phase[best-1]
	if s.cfg.NoPhaseSaving {
		ph = s.cfg.PosPhase
	}
	if ph {
		return Lit(best)
	}
	return Lit(-best)
}

// Solve decides satisfiability under the given assumption literals. On a
// SAT answer the model is available through Value/Model. The solver can be
// re-solved with different assumptions and extended with further clauses
// between calls.
func (s *Solver) Solve(assumptions ...Lit) bool {
	return s.SolveBounded(-1, assumptions...) == Sat
}

// SolveBounded is Solve under a conflict budget: it returns Unknown
// once the search has gone through maxConflicts conflicts without an
// answer (the solver backtracks to level 0 and keeps everything it
// learned, so a later call resumes the amortized search). A negative
// budget is unlimited. Conflict budgets are the portfolio's logical
// time base: epochs measured in conflicts are reproducible, epochs
// measured in wall-clock time are not.
func (s *Solver) SolveBounded(maxConflicts int64, assumptions ...Lit) Verdict {
	if !s.ok {
		return Unsat
	}
	s.backtrackTo(0)
	if s.propagate() != nil {
		s.ok = false
		return Unsat
	}

	// Apply assumptions, each at its own decision level.
	for _, a := range assumptions {
		switch s.value(a) {
		case lTrue:
			continue
		case lFalse:
			s.backtrackTo(0)
			return Unsat
		}
		s.limits = append(s.limits, len(s.trail))
		s.enqueue(a, nil)
		if s.propagate() != nil {
			s.backtrackTo(0)
			return Unsat
		}
	}
	assumpLevel := len(s.limits)

	restartBudget := s.cfg.RestartBase
	remaining := maxConflicts
	for {
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			if len(s.limits) <= assumpLevel {
				s.backtrackTo(0)
				return Unsat
			}
			learnt, back := s.analyze(confl)
			if back < assumpLevel {
				back = assumpLevel
			}
			s.backtrackTo(back)
			if len(learnt) == 1 {
				if !s.enqueue(learnt[0], nil) {
					s.backtrackTo(0)
					return Unsat
				}
			} else {
				// analyze returns its reusable buffer; the kept clause needs
				// its own copy.
				c := &clause{lits: append(make([]Lit, 0, len(learnt)), learnt...),
					learnt: true, act: s.claInc, lbd: s.computeLBD(learnt)}
				s.learnts = append(s.learnts, c)
				s.watch(c)
				s.enqueue(learnt[0], c)
			}
			s.decayVar()
			if remaining > 0 {
				remaining--
				if remaining == 0 {
					s.backtrackTo(0)
					return Unknown
				}
			}
			restartBudget--
			if restartBudget <= 0 {
				// Restart: keep learnt clauses, drop the search tree.
				s.Restarts++
				s.backtrackTo(assumpLevel)
				restartBudget = s.cfg.RestartBase + len(s.learnts)/2
			}
			continue
		}
		l := s.pickBranch()
		if l == 0 {
			// Complete assignment: record the model.
			s.model = make([]bool, s.nVars)
			for v := 1; v <= s.nVars; v++ {
				s.model[v-1] = s.assign[v-1] == lTrue
			}
			s.backtrackTo(0)
			return Sat
		}
		s.Decisions++
		s.limits = append(s.limits, len(s.trail))
		s.enqueue(l, nil)
	}
}

// Value returns the value of variable v in the last model. It panics when
// no model is available.
func (s *Solver) Value(v int) bool {
	if s.model == nil {
		panic("sat: no model available")
	}
	return s.model[v-1]
}

// Model returns a copy of the last satisfying assignment (index 0 is
// variable 1).
func (s *Solver) Model() []bool {
	out := make([]bool, len(s.model))
	copy(out, s.model)
	return out
}

// BlockModel adds a clause forbidding the last model restricted to the
// given variables (all variables when vars is empty), enabling model
// enumeration. It returns false when the formula becomes unsatisfiable.
func (s *Solver) BlockModel(vars ...int) bool {
	return s.AddClause(s.blockLits(nil, vars)...)
}

// BlockModelWith is BlockModel with an escape literal: it adds the
// clause (escape ∨ ¬model), which forbids the model only while
// escape.Neg() is assumed. Dropping that assumption leaves the clause
// vacuously satisfiable, so the blocking is scoped to one assumption
// context while the solver — and every clause it has learned — stays
// shared across contexts. Callers enumerate by allocating a fresh
// selector variable per enumeration, assuming its positive literal,
// and blocking each model with escape = ¬selector; a later enumeration
// under a new selector sees the earlier enumeration's models again.
func (s *Solver) BlockModelWith(escape Lit, vars ...int) bool {
	return s.AddClause(s.blockLits([]Lit{escape}, vars)...)
}

// ExportLearnts returns a snapshot of the solver's learnt knowledge as
// plain clauses: every level-0 fact as a unit clause, plus every live
// learnt clause with at most maxLen literals and literal block distance
// at most maxLBD, reduced by the level-0 assignment (satisfied clauses
// skipped, false literals stripped). Clauses are internally sorted and
// the snapshot is sorted by (length, lexicographic) and deduplicated,
// so two solvers holding the same knowledge export the same bytes; max
// truncates the result (0 means no cap). Export requires decision level
// 0 — which every Solve/SolveBounded call restores — and returns nil
// mid-search.
func (s *Solver) ExportLearnts(maxLen, maxLBD, max int) [][]Lit {
	if !s.ok || len(s.limits) != 0 {
		return nil
	}
	var out [][]Lit
	for _, l := range s.trail {
		out = append(out, []Lit{l})
	}
	buf := make([]Lit, 0, maxLen)
	for _, c := range s.learnts {
		if c.deleted || int(c.lbd) > maxLBD || len(c.lits) > maxLen+len(s.trail) {
			// The length pre-filter is loose (stripping can only shrink);
			// the exact check happens after reduction.
			continue
		}
		buf = buf[:0]
		sat0 := false
		for _, l := range c.lits {
			switch s.value(l) {
			case lTrue:
				sat0 = true
			case lFalse:
				// Stripped: false at level 0 forever.
			default:
				buf = append(buf, l)
			}
			if sat0 {
				break
			}
		}
		if sat0 || len(buf) == 0 || len(buf) > maxLen {
			continue
		}
		cl := make([]Lit, len(buf))
		copy(cl, buf)
		slices.Sort(cl)
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool { return litSliceLess(out[i], out[j]) })
	j := 0
	for i, cl := range out {
		if i > 0 && litSliceEqual(cl, out[j-1]) {
			continue
		}
		out[j] = cl
		j++
	}
	out = out[:j]
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// ImportLearnts adds foreign clauses to the solver's learnt database,
// keeping only those it can itself certify. Each candidate is
// normalized, range-checked against the solver's variables, reduced by
// the level-0 assignment, and then re-validated by reverse unit
// propagation: assume the clause's negation and propagate — only a
// clause whose negation immediately conflicts is entailed by the
// receiving formula and kept. That certificate is computed locally, so
// importing is sound whatever the clauses' provenance: another solver
// on the same formula, a previous repair round's solver on a smaller
// formula, or fuzzer junk. Certified units are asserted at level 0.
// Returns how many clauses were kept and how many dropped.
func (s *Solver) ImportLearnts(clauses [][]Lit) (kept, dropped int) {
	if !s.ok || len(s.limits) != 0 {
		return 0, len(clauses)
	}
	buf := make([]Lit, 0, 16)
next:
	for _, cand := range clauses {
		buf = append(buf[:0], cand...)
		slices.Sort(buf)
		out := buf[:0]
		var prev Lit
		for _, l := range buf {
			if l == 0 || l.Var() > s.nVars {
				dropped++
				continue next
			}
			if l == prev {
				continue
			}
			switch s.value(l) {
			case lTrue:
				dropped++ // already satisfied at level 0: nothing to learn
				continue next
			case lFalse:
				continue
			}
			out = append(out, l)
			prev = l
		}
		for i := 0; i+1 < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if out[i] == -out[j] {
					dropped++ // tautology
					continue next
				}
			}
		}
		if len(out) == 0 {
			dropped++
			continue
		}
		// Reverse unit propagation: assume ¬out at a scratch decision
		// level; a conflict certifies that the formula entails out.
		s.limits = append(s.limits, len(s.trail))
		entailed := false
		for _, l := range out {
			if !s.enqueue(l.Neg(), nil) {
				entailed = true
				break
			}
		}
		if !entailed {
			entailed = s.propagate() != nil
		}
		s.backtrackTo(0)
		if !entailed {
			dropped++
			continue
		}
		if len(out) == 1 {
			if !s.enqueue(out[0], nil) || s.propagate() != nil {
				s.ok = false
			}
			kept++
			continue
		}
		cl := make([]Lit, len(out))
		copy(cl, out)
		c := &clause{lits: cl, learnt: true, act: s.claInc, lbd: int32(len(cl))}
		s.learnts = append(s.learnts, c)
		s.watch(c)
		kept++
	}
	return kept, dropped
}

func litSliceLess(a, b []Lit) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func litSliceEqual(a, b []Lit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// blockLits builds the blocking clause of the last model over vars
// (all variables when empty), prefixed by the given extra literals.
func (s *Solver) blockLits(extra []Lit, vars []int) []Lit {
	if s.model == nil {
		panic("sat: no model to block")
	}
	if len(vars) == 0 {
		vars = make([]int, s.nVars)
		for i := range vars {
			vars[i] = i + 1
		}
	}
	lits := make([]Lit, 0, len(extra)+len(vars))
	lits = append(lits, extra...)
	for _, v := range vars {
		if s.model[v-1] {
			lits = append(lits, Lit(-v))
		} else {
			lits = append(lits, Lit(v))
		}
	}
	return lits
}
