package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// newVars allocates n variables and returns the solver.
func newVars(n int) *Solver {
	s := New()
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	return s
}

func TestTrivialSat(t *testing.T) {
	s := newVars(2)
	s.AddClause(1, 2)
	if !s.Solve() {
		t.Fatal("x ∨ y should be SAT")
	}
	if !s.Value(1) && !s.Value(2) {
		t.Fatal("model does not satisfy the clause")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := newVars(1)
	s.AddClause(1)
	if !s.AddClause(-1) {
		return // detected at add time — fine
	}
	if s.Solve() {
		t.Fatal("x ∧ ¬x should be UNSAT")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := newVars(1)
	if s.AddClause() {
		t.Fatal("empty clause should return false")
	}
	if s.Solve() {
		t.Fatal("formula with empty clause is UNSAT")
	}
}

func TestTautologyClauseIgnored(t *testing.T) {
	s := newVars(2)
	s.AddClause(1, -1)
	s.AddClause(2)
	if !s.Solve() {
		t.Fatal("tautology must not constrain")
	}
	if !s.Value(2) {
		t.Fatal("unit clause ignored")
	}
}

func TestUnitChain(t *testing.T) {
	// x1, x1→x2, x2→x3, ..., x9→x10: all forced true.
	s := newVars(10)
	s.AddClause(1)
	for v := 1; v < 10; v++ {
		s.AddClause(Lit(-v), Lit(v+1))
	}
	if !s.Solve() {
		t.Fatal("chain should be SAT")
	}
	for v := 1; v <= 10; v++ {
		if !s.Value(v) {
			t.Fatalf("x%d should be true", v)
		}
	}
}

func TestXorChainSat(t *testing.T) {
	// (x1 ⊕ x2) ∧ (x2 ⊕ x3) — SAT with alternating values.
	s := newVars(3)
	s.AddClause(1, 2)
	s.AddClause(-1, -2)
	s.AddClause(2, 3)
	s.AddClause(-2, -3)
	if !s.Solve() {
		t.Fatal("xor chain should be SAT")
	}
	if s.Value(1) == s.Value(2) || s.Value(2) == s.Value(3) {
		t.Fatal("model violates xor constraints")
	}
}

func TestPigeonhole32Unsat(t *testing.T) {
	// 3 pigeons into 2 holes: var p*2+h+1 means pigeon p sits in hole h.
	s := newVars(6)
	vr := func(p, h int) Lit { return Lit(p*2 + h + 1) }
	for p := 0; p < 3; p++ {
		s.AddClause(vr(p, 0), vr(p, 1))
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				s.AddClause(-vr(p1, h), -vr(p2, h))
			}
		}
	}
	if s.Solve() {
		t.Fatal("PHP(3,2) must be UNSAT")
	}
}

func TestPigeonhole54Unsat(t *testing.T) {
	const P, H = 5, 4
	s := newVars(P * H)
	vr := func(p, h int) Lit { return Lit(p*H + h + 1) }
	for p := 0; p < P; p++ {
		lits := make([]Lit, H)
		for h := 0; h < H; h++ {
			lits[h] = vr(p, h)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < H; h++ {
		for p1 := 0; p1 < P; p1++ {
			for p2 := p1 + 1; p2 < P; p2++ {
				s.AddClause(-vr(p1, h), -vr(p2, h))
			}
		}
	}
	if s.Solve() {
		t.Fatal("PHP(5,4) must be UNSAT")
	}
}

func TestAssumptions(t *testing.T) {
	s := newVars(3)
	s.AddClause(-1, 2) // x1 → x2
	s.AddClause(-2, 3) // x2 → x3
	if !s.Solve(1) {
		t.Fatal("SAT under assumption x1")
	}
	if !s.Value(1) || !s.Value(2) || !s.Value(3) {
		t.Fatal("implications not propagated under assumption")
	}
	s.AddClause(-3) // now x3 is false
	if s.Solve(1) {
		t.Fatal("UNSAT under assumption x1 after ¬x3")
	}
	if !s.Solve(-1) {
		t.Fatal("still SAT with ¬x1")
	}
	if s.Value(1) {
		t.Fatal("assumption ¬x1 not honoured")
	}
}

func TestResolveAfterUnsatAssumption(t *testing.T) {
	s := newVars(2)
	s.AddClause(1, 2)
	s.AddClause(-1, 2)
	if s.Solve(-2) {
		t.Fatal("¬y forces a contradiction")
	}
	if !s.Solve() {
		t.Fatal("formula is SAT without assumptions")
	}
	if !s.Value(2) {
		t.Fatal("y must be true")
	}
}

func TestModelEnumeration(t *testing.T) {
	// x ∨ y has exactly 3 models over {x,y}.
	s := newVars(2)
	s.AddClause(1, 2)
	count := 0
	for s.Solve() {
		count++
		if count > 3 {
			t.Fatal("more than 3 models enumerated")
		}
		if !s.BlockModel() {
			break
		}
	}
	if count != 3 {
		t.Fatalf("enumerated %d models, want 3", count)
	}
}

func TestBlockModelRestricted(t *testing.T) {
	// Enumerate over x only: two blocked models exhaust the space.
	s := newVars(2)
	s.AddClause(1, 2)
	count := 0
	for s.Solve() {
		count++
		if count > 2 {
			t.Fatal("restricted enumeration did not terminate")
		}
		if !s.BlockModel(1) {
			break
		}
	}
	if count != 2 {
		t.Fatalf("enumerated %d x-projections, want 2", count)
	}
}

// bruteForce decides satisfiability of a CNF over n vars by enumeration.
func bruteForce(n int, cnf [][]Lit) bool {
	for m := 0; m < 1<<uint(n); m++ {
		ok := true
		for _, cl := range cnf {
			sat := false
			for _, l := range cl {
				v := m>>uint(l.Var()-1)&1 == 1
				if v == l.Sign() {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestQuickRandom3SATAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 3 + rr.Intn(8)
		m := 1 + rr.Intn(4*n)
		cnf := make([][]Lit, m)
		s := newVars(n)
		okAdd := true
		for i := range cnf {
			k := 1 + rr.Intn(3)
			cl := make([]Lit, 0, k)
			for j := 0; j < k; j++ {
				v := 1 + rr.Intn(n)
				if rr.Intn(2) == 0 {
					cl = append(cl, Lit(v))
				} else {
					cl = append(cl, Lit(-v))
				}
			}
			cnf[i] = cl
			if !s.AddClause(cl...) {
				okAdd = false
			}
		}
		want := bruteForce(n, cnf)
		got := okAdd && s.Solve()
		if got != want {
			return false
		}
		if got {
			// Verify the model actually satisfies the formula.
			for _, cl := range cnf {
				sat := false
				for _, l := range cl {
					if s.Value(l.Var()) == l.Sign() {
						sat = true
						break
					}
				}
				if !sat {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickModelCountMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(5)
		m := 1 + rr.Intn(3*n)
		cnf := make([][]Lit, m)
		s := newVars(n)
		okAdd := true
		for i := range cnf {
			k := 1 + rr.Intn(3)
			cl := make([]Lit, 0, k)
			for j := 0; j < k; j++ {
				v := 1 + rr.Intn(n)
				if rr.Intn(2) == 0 {
					cl = append(cl, Lit(v))
				} else {
					cl = append(cl, Lit(-v))
				}
			}
			cnf[i] = cl
			if !s.AddClause(cl...) {
				okAdd = false
			}
		}
		want := 0
		for mv := 0; mv < 1<<uint(n); mv++ {
			ok := true
			for _, cl := range cnf {
				sat := false
				for _, l := range cl {
					if (mv>>uint(l.Var()-1)&1 == 1) == l.Sign() {
						sat = true
						break
					}
				}
				if !sat {
					ok = false
					break
				}
			}
			if ok {
				want++
			}
		}
		got := 0
		if okAdd {
			for s.Solve() {
				got++
				if got > 1<<uint(n) {
					return false
				}
				if !s.BlockModel() {
					break
				}
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestLitHelpers(t *testing.T) {
	l := Lit(5)
	if l.Var() != 5 || !l.Sign() || l.Neg() != Lit(-5) {
		t.Fatal("positive literal helpers broken")
	}
	n := Lit(-7)
	if n.Var() != 7 || n.Sign() || n.Neg() != Lit(7) {
		t.Fatal("negative literal helpers broken")
	}
}

func TestStatisticsAdvance(t *testing.T) {
	s := newVars(20)
	for v := 1; v < 20; v += 2 {
		s.AddClause(Lit(v), Lit(v+1))
		s.AddClause(Lit(-v), Lit(-(v + 1)))
	}
	if !s.Solve() {
		t.Fatal("xor pairs are SAT")
	}
	if s.Decisions == 0 {
		t.Fatal("expected at least one decision")
	}
	if s.Propagations == 0 {
		t.Fatal("expected propagations")
	}
}
