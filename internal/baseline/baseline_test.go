package baseline_test

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/benchdata"
	"repro/internal/netlist"
	"repro/internal/sg"
	"repro/internal/stg"
	"repro/internal/verify"
)

func mustSG(t *testing.T, src string) *sg.Graph {
	t.Helper()
	g, err := stg.BuildSG(stg.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

const celemG = `
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
`

func TestSOPCleanSpecVerifies(t *testing.T) {
	// On an MC-clean specification the baseline coincides with a correct
	// implementation and passes verification.
	g := mustSG(t, celemG)
	nl, err := baseline.Synthesize(g, netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := verify.Check(nl, g)
	if !res.OK() {
		t.Fatalf("baseline on the C-element spec must verify:\n%s\n%s", res, nl)
	}
}

func TestSOPFig4Hazardous(t *testing.T) {
	// Example 2: the correct-cover baseline produces an unacknowledged
	// AND gate and the circuit is hazardous.
	g := benchdata.Fig4SG()
	nl, err := baseline.Synthesize(g, netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := verify.Check(nl, g)
	if res.OK() {
		t.Fatalf("Fig4 baseline must be hazardous:\n%s", nl)
	}
	if len(res.Hazards) == 0 {
		t.Fatalf("expected a semi-modularity hazard:\n%s", res)
	}
}

func TestSOPFig4FunctionShape(t *testing.T) {
	// Sb of the baseline needs at least two product terms (the two
	// excitation regions cannot share one cube), matching the paper's
	// t = c'd, b = a + t structure.
	g := benchdata.Fig4SG()
	fns, err := baseline.SOP(g)
	if err != nil {
		t.Fatal(err)
	}
	b := g.SignalIndex("b")
	if fns[b].Set.Len() < 2 {
		t.Fatalf("Sb = %s should need ≥ 2 cubes", fns[b].Set.StringNamed(g.Signals))
	}
	// Every state of every ER(+b) must be covered (functional
	// correctness of the cover).
	for s := 0; s < g.NumStates(); s++ {
		if g.Excited(s, b) && !g.Value(s, b) {
			m := make([]bool, g.NumSignals())
			for i := range m {
				m[i] = g.Value(s, i)
			}
			if !fns[b].Set.EvalMinterm(m) {
				t.Errorf("Sb misses ER state %s", g.CodeString(s))
			}
		}
	}
}

func TestSOPFig1Hazardous(t *testing.T) {
	// Example 1: the Fig1 specification violates MC on signal d; the
	// baseline synthesizes it anyway (with multi-cube covers) and the
	// result must fail verification.
	g := benchdata.Fig1SG()
	nl, err := baseline.Synthesize(g, netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := verify.Check(nl, g)
	if res.OK() {
		t.Fatalf("Fig1 baseline must be hazardous:\n%s", nl)
	}
}

func TestComplexGateFig4Verifies(t *testing.T) {
	// The complex-gate implementation is hazard-free by construction
	// (atomic gates): even the MC-violating Fig4 verifies, which is why
	// complex gates are the reference point — but they are not basic
	// gates.
	g := benchdata.Fig4SG()
	nl, err := baseline.ComplexGate(g)
	if err != nil {
		t.Fatal(err)
	}
	res := verify.Check(nl, g)
	if !res.OK() {
		t.Fatalf("complex-gate implementation must verify:\n%s\n%s", res, nl)
	}
	st := nl.Stats()
	if st.Complexes != 1 {
		t.Fatalf("stats = %s, want 1 complex gate", st)
	}
}

func TestComplexGateFig1Verifies(t *testing.T) {
	g := benchdata.Fig1SG()
	nl, err := baseline.ComplexGate(g)
	if err != nil {
		t.Fatal(err)
	}
	res := verify.Check(nl, g)
	if !res.OK() {
		t.Fatalf("complex-gate Fig1 must verify:\n%s\n%s", res, nl)
	}
	if !strings.Contains(nl.String(), "COMPLEX") {
		t.Error("rendering must show complex gates")
	}
}

func TestComplexGateRequiresCSC(t *testing.T) {
	// Cycle a+; c+; a-; a+; c-; a- has CSC violations.
	g := &sg.Graph{Signals: []string{"a", "c"}, Input: []bool{true, false}}
	s0 := g.AddState(0b00)
	s1 := g.AddState(0b01)
	s2 := g.AddState(0b11)
	s3 := g.AddState(0b10)
	s4 := g.AddState(0b11)
	s5 := g.AddState(0b01)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddEdge(s0, s1, 0, sg.Plus))
	must(g.AddEdge(s1, s2, 1, sg.Plus))
	must(g.AddEdge(s2, s3, 0, sg.Minus))
	must(g.AddEdge(s3, s4, 0, sg.Plus))
	must(g.AddEdge(s4, s5, 1, sg.Minus))
	must(g.AddEdge(s5, s0, 0, sg.Minus))
	if _, err := baseline.ComplexGate(g); err == nil {
		t.Fatal("CSC violation must be rejected")
	}
}

func TestSOPRejectsCSCConflict(t *testing.T) {
	// Same CSC-violating graph: the ON/OFF collision must surface.
	g := &sg.Graph{Signals: []string{"a", "c"}, Input: []bool{true, false}}
	s0 := g.AddState(0b00)
	s1 := g.AddState(0b01)
	s2 := g.AddState(0b11)
	s3 := g.AddState(0b10)
	s4 := g.AddState(0b11)
	s5 := g.AddState(0b01)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddEdge(s0, s1, 0, sg.Plus))
	must(g.AddEdge(s1, s2, 1, sg.Plus))
	must(g.AddEdge(s2, s3, 0, sg.Minus))
	must(g.AddEdge(s3, s4, 0, sg.Plus))
	must(g.AddEdge(s4, s5, 1, sg.Minus))
	must(g.AddEdge(s5, s0, 0, sg.Minus))
	if _, err := baseline.SOP(g); err == nil {
		t.Fatal("ON/OFF collision must be rejected")
	}
}
