// Package baseline implements the two comparison synthesizers the paper
// measures its method against:
//
//   - a Beerel–Meng-style [2] gate-level synthesizer: each excitation
//     function is a two-level minimized correct cover of the excitation
//     regions (Definition 16 only — no monotonicity requirement), so an
//     excitation region may be covered by several cubes. The paper's
//     Examples 1 and 2 show this produces hazardous circuits exactly
//     when the MC requirement is violated (unacknowledged AND gates);
//   - a complex-gate (Chu-style [3]) synthesizer: the whole next-state
//     function of each non-input signal is one atomic gate, hazard-free
//     by assumption, requiring only CSC. This is the implementation
//     style whose impracticality (gates too complex for real libraries)
//     motivates the paper.
package baseline

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/netlist"
	"repro/internal/sg"
)

// SOP derives the Beerel–Meng-style excitation functions for every
// non-input signal: Sa is a minimized cover with ON = 0*-set(a),
// OFF = 1*-set(a) ∪ 0-set(a) and DC = 1-set(a) ∪ unreachable codes;
// dually for Ra. The signal's own literal is excluded from the support,
// as in the standard implementation structure. It fails when ON and OFF
// collide after removing the own literal (a CSC-type conflict).
func SOP(g *sg.Graph) (map[int]netlist.SR, error) {
	return sop(g, func(on, dc cube.Cover) (cube.Cover, error) {
		return cube.Minimize(on, dc), nil
	})
}

// SOPExact is SOP with exact (minimum-cube) two-level minimization via
// the SAT-based covering solver.
func SOPExact(g *sg.Graph) (map[int]netlist.SR, error) {
	return sop(g, cube.MinimizeExact)
}

func sop(g *sg.Graph, minimize func(on, dc cube.Cover) (cube.Cover, error)) (map[int]netlist.SR, error) {
	a := core.NewAnalyzer(g)
	n := g.NumSignals()

	// project removes the signal's own literal from a state minterm.
	project := func(s, sig int) cube.Cube {
		c := a.MintermCube(s)
		c.Set(sig, cube.Full)
		return c
	}

	out := map[int]netlist.SR{}
	for sig := range g.Signals {
		if g.Input[sig] {
			continue
		}
		sets := a.SetsOf(sig)
		// build minimizes in the projected space: DC is everything that
		// is neither a projected ON nor a projected OFF minterm — this
		// covers both the free quiescent phase and unreachable codes,
		// and keeps states whose projections collide with OFF out of
		// the don't-care set.
		build := func(on, off sg.StateSet, name string) (cube.Cover, error) {
			onC, offC := cube.NewCover(n), cube.NewCover(n)
			on.ForEach(func(s int) { onC.Add(project(s, sig)) })
			off.ForEach(func(s int) { offC.Add(project(s, sig)) })
			if !onC.Disjoint(offC) {
				return cube.Cover{}, fmt.Errorf(
					"baseline: ON and OFF of %s collide without the own literal (CSC-type conflict)", name)
			}
			dc := onC.Union(offC).Complement()
			return minimize(onC.SCC(), dc)
		}
		set, err := build(sets.ZeroStar, sets.OneStar.Union(sets.Zero), "S"+g.Signals[sig])
		if err != nil {
			return nil, err
		}
		reset, err := build(sets.OneStar, sets.ZeroStar.Union(sets.One), "R"+g.Signals[sig])
		if err != nil {
			return nil, err
		}
		out[sig] = netlist.SR{Set: set, Reset: reset}
	}
	return out, nil
}

// Synthesize runs SOP and assembles the standard implementation.
func Synthesize(g *sg.Graph, opts netlist.Options) (*netlist.Netlist, error) {
	fns, err := SOP(g)
	if err != nil {
		return nil, err
	}
	return netlist.Build(g, fns, opts)
}

// ComplexGate builds the Chu-style implementation: one atomic complex
// gate per non-input signal computing the next-state function
// f_a = Sa + a·(¬Ra), with ON = 0*-set ∪ 1-set ∪ 1*-set... precisely the
// states where the signal's next stable value is 1: 0*-set(a) ∪ 1-set(a)
// — plus 1*-set is OFF since the signal is headed to 0. The own literal
// is allowed (the gate implements a self-dependent next-state function).
// It requires CSC.
func ComplexGate(g *sg.Graph) (*netlist.Netlist, error) {
	if !g.CSC() {
		return nil, fmt.Errorf("baseline: CSC violated; no complex-gate implementation exists")
	}
	a := core.NewAnalyzer(g)
	n := g.NumSignals()
	reach := cube.NewCover(n)
	for s := 0; s < g.NumStates(); s++ {
		reach.Add(a.MintermCube(s))
	}
	unreachable := reach.SCC().Complement()

	nl := &netlist.Netlist{G: g, SignalNet: make([]int, n)}
	for sig, name := range g.Signals {
		nl.SignalNet[sig] = sig
		nl.Nets = append(nl.Nets, netlist.Net{Name: name, Driver: -1, Signal: sig, ComplementOf: -1})
	}
	for sig := range g.Signals {
		if g.Input[sig] {
			continue
		}
		sets := a.SetsOf(sig)
		on, dc := cube.NewCover(n), cube.NewCover(n)
		sets.ZeroStar.ForEach(func(s int) { on.Add(a.MintermCube(s)) })
		sets.One.ForEach(func(s int) { on.Add(a.MintermCube(s)) })
		dc = dc.Union(unreachable)
		f := cube.Minimize(on.SCC(), dc)
		gi := len(nl.Gates)
		nl.Gates = append(nl.Gates, netlist.Gate{
			Kind: netlist.Complex,
			Name: "COMPLEX(" + g.Signals[sig] + ")",
			Out:  nl.SignalNet[sig],
			Fn:   f,
		})
		nl.Nets[nl.SignalNet[sig]].Driver = gi
	}
	return nl, nil
}
