package encode

import (
	"testing"

	"repro/internal/sat"
	"repro/internal/sg"
)

// twinGraph builds a six-state graph whose two parallel-branch states
// are interchangeable: equal codes, neither initial, and swapping them
// maps the edge set onto itself. Real Table-1 benchmarks happen to
// contain no such pair, so the symmetry breaker is exercised on a
// crafted one. The tail s3→s4→s5→s0 lengthens the cycle so the label
// cycle has slack: the twins can legally take different labels, which
// is exactly the orbit the lex-leader clauses must halve.
//
//	s0 —a+→ {s1, s2} —a−→ s3 —b+→ s4 —c+→ s5 —d+→ s0
func twinGraph() *sg.Graph {
	e := func(sig, to int, d sg.Dir) sg.Edge { return sg.Edge{Signal: sig, Dir: d, To: to} }
	return &sg.Graph{
		Signals: []string{"a", "b", "c", "d"},
		Input:   []bool{false, false, false, false},
		States: []sg.State{
			{Code: 0, Succ: []sg.Edge{e(0, 1, sg.Plus), e(0, 2, sg.Plus)}, Pred: []sg.Edge{e(3, 5, sg.Plus)}},
			{Code: 1, Succ: []sg.Edge{e(0, 3, sg.Minus)}, Pred: []sg.Edge{e(0, 0, sg.Plus)}},
			{Code: 1, Succ: []sg.Edge{e(0, 3, sg.Minus)}, Pred: []sg.Edge{e(0, 0, sg.Plus)}},
			{Code: 0, Succ: []sg.Edge{e(1, 4, sg.Plus)}, Pred: []sg.Edge{e(0, 1, sg.Minus), e(0, 2, sg.Minus)}},
			{Code: 2, Succ: []sg.Edge{e(2, 5, sg.Plus)}, Pred: []sg.Edge{e(1, 3, sg.Plus)}},
			{Code: 6, Succ: []sg.Edge{e(3, 0, sg.Plus)}, Pred: []sg.Edge{e(2, 4, sg.Plus)}},
		},
		Initial: 0,
		Name:    "twin",
	}
}

func TestInterchangeablePairs(t *testing.T) {
	g := twinGraph()
	pairs := interchangeablePairs(g, nil)
	if len(pairs) != 1 || pairs[0] != [2]int{1, 2} {
		t.Fatalf("pairs = %v, want [[1 2]]", pairs)
	}
	// A conflict whose ER holds only one twin distinguishes them: the
	// swap is no longer a symmetry of the round.
	pairs = interchangeablePairs(g, []conflict{{er: []int{1}, wit: []int{3}}})
	if len(pairs) != 0 {
		t.Fatalf("pairs = %v, want none when a conflict separates the twins", pairs)
	}
	// A conflict treating both twins alike keeps the pair.
	pairs = interchangeablePairs(g, []conflict{{er: []int{1, 2}, wit: []int{0}}})
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v, want the twin pair back for a symmetric conflict", pairs)
	}
}

// labelBits is the 2-bit (v1, v0) order the lex-leader clauses are
// stated in: 0 < up < down < 1.
func labelBits(l Label) int {
	switch l {
	case L0:
		return 0
	case LR:
		return 1
	case LF:
		return 2
	default:
		return 3
	}
}

// enumerateLabellings returns every valid labelling of g as a string
// key, with the symmetry clauses of pairs added when breakSym is set.
func enumerateLabellings(t *testing.T, g *sg.Graph, pairs [][2]int, breakSym bool) map[string][]Label {
	t.Helper()
	s := sat.NewPortfolio(sat.DefaultConfigs(1), 1)
	vars := buildCNF(s, g)
	if breakSym {
		addSymmetryClauses(s, vars, pairs)
	}
	blockVars := make([]int, 0, 2*len(vars))
	for _, lv := range vars {
		blockVars = append(blockVars, lv.v1, lv.v0)
	}
	out := map[string][]Label{}
	for s.Solve() {
		m := s.Model()
		labels := make([]Label, len(vars))
		key := ""
		for i, lv := range vars {
			labels[i] = labelOf(m, lv)
			key += labels[i].String() + ","
		}
		if _, dup := out[key]; dup {
			t.Fatalf("model enumeration repeated labelling %s", key)
		}
		out[key] = labels
		if !s.BlockModel(blockVars...) {
			break
		}
	}
	return out
}

// TestSymmetryClausesLexLeader proves the lex-leader restriction is
// exactly orbit canonicalization: with the clauses added, the solver
// enumerates precisely the labellings whose twin pair is in
// non-decreasing label order, and every excluded labelling is the swap
// image of an enumerated one.
func TestSymmetryClausesLexLeader(t *testing.T) {
	g := twinGraph()
	pairs := interchangeablePairs(g, nil)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v, want exactly one", pairs)
	}
	i, j := pairs[0][0], pairs[0][1]
	all := enumerateLabellings(t, g, pairs, false)
	led := enumerateLabellings(t, g, pairs, true)
	if len(led) >= len(all) {
		t.Fatalf("symmetry clauses pruned nothing: %d vs %d labellings", len(led), len(all))
	}
	for key, l := range led {
		if _, ok := all[key]; !ok {
			t.Errorf("restricted enumeration invented labelling %s", key)
		}
		if labelBits(l[i]) > labelBits(l[j]) {
			t.Errorf("labelling %s violates lex-leader order on (%d,%d)", key, i, j)
		}
	}
	for key, l := range all {
		canon := append([]Label(nil), l...)
		if labelBits(canon[i]) > labelBits(canon[j]) {
			canon[i], canon[j] = canon[j], canon[i]
		}
		ck := ""
		for _, cl := range canon {
			ck += cl.String() + ","
		}
		if _, ok := led[ck]; !ok {
			t.Errorf("orbit of %s lost: canonical form %s not enumerated", key, ck)
		}
	}
}
