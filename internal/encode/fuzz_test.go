package encode_test

import (
	"testing"

	"repro/internal/encode"
	"repro/internal/stg"
)

// fuzzSpec is a small two-phase handshake with an internal signal —
// large enough for expansions to split both an up and a down region,
// small enough for the fuzzer to cover the label space densely.
const fuzzSpec = `
.model fuzzbuf
.inputs req
.outputs ack done
.graph
p0 req+
req+ ack+
ack+ done+
done+ req-
req- ack-
ack- done-
done- p0
.marking {p0}
.end
`

// FuzzExpand throws arbitrary label vectors at Expand. The contract
// under test: a vector violating the labelling rules (Section V) must
// come back as an error — never a panic — and any accepted expansion
// must be a consistent state graph with exactly one more signal.
func FuzzExpand(f *testing.F) {
	net, err := stg.Parse(fuzzSpec)
	if err != nil {
		f.Fatal(err)
	}
	g, err := stg.BuildSG(net)
	if err != nil {
		f.Fatal(err)
	}
	n := g.NumStates()

	// Seed with the all-constant vectors and a plausible insertion
	// shape (rise at the first state, fall halfway).
	f.Add(make([]byte, n))
	all1 := make([]byte, n)
	for i := range all1 {
		all1[i] = byte(encode.L1)
	}
	f.Add(all1)
	mixed := make([]byte, n)
	for i := range mixed {
		switch {
		case i == 0:
			mixed[i] = byte(encode.LR)
		case i < n/2:
			mixed[i] = byte(encode.L1)
		case i == n/2:
			mixed[i] = byte(encode.LF)
		}
	}
	f.Add(mixed)

	f.Fuzz(func(t *testing.T, raw []byte) {
		labels := make([]encode.Label, n)
		for i := range labels {
			var b byte
			if i < len(raw) {
				b = raw[i]
			}
			labels[i] = encode.Label(b % 4)
		}
		g2, err := encode.Expand(g, labels, "x")
		if err != nil {
			return // rejected vectors are fine; panics are not
		}
		if g2.NumSignals() != g.NumSignals()+1 {
			t.Fatalf("accepted expansion has %d signals, want %d", g2.NumSignals(), g.NumSignals()+1)
		}
		if err := g2.CheckConsistency(); err != nil {
			t.Fatalf("accepted expansion is inconsistent: %v\nlabels: %s", err, encode.DescribeLabels(g, labels))
		}
		if x := g2.SignalIndex("x"); x < 0 || g2.Input[x] {
			t.Fatal("inserted signal must exist as a non-input")
		}
	})
}
