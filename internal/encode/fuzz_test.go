package encode_test

import (
	"testing"

	"repro/internal/encode"
	"repro/internal/sg"
	"repro/internal/stg"
)

// fuzzSpec is a small two-phase handshake with an internal signal —
// large enough for expansions to split both an up and a down region,
// small enough for the fuzzer to cover the label space densely.
const fuzzSpec = `
.model fuzzbuf
.inputs req
.outputs ack done
.graph
p0 req+
req+ ack+
ack+ done+
done+ req-
req- ack-
ack- done-
done- p0
.marking {p0}
.end
`

// fuzzSpecMulti is the event duplicator — a spec whose repair runs
// multiple rounds (two inserted state signals). Its repaired graph is
// the second fuzz target below: label vectors over a graph that is
// itself the product of cross-round insertion, the exact shape the
// learnt-clause carrier hands to the next round's CNF.
const fuzzSpecMulti = `
.model duplicator
.inputs a b
.outputs x y
.graph
a+ x+
x+ a-
a- x-
x- a+/2
a+/2 b+
b+ x+/2
x+/2 a-/2
a-/2 x-/2
x-/2 a+/3
a+/3 y+
y+ a-/3
a-/3 y-
y- a+/4
a+/4 b-
b- y+/2
y+/2 a-/4
a-/4 y-/2
y-/2 a+
.marking { <y-/2,a+> }
.end
`

// FuzzExpand throws arbitrary label vectors at Expand — both on a flat
// handshake graph and on a multi-round repaired graph (see
// fuzzSpecMulti). The contract under test: a vector violating the
// labelling rules (Section V) must come back as an error — never a
// panic — and any accepted expansion must be a consistent state graph
// with exactly one more signal.
func FuzzExpand(f *testing.F) {
	net, err := stg.Parse(fuzzSpec)
	if err != nil {
		f.Fatal(err)
	}
	g, err := stg.BuildSG(net)
	if err != nil {
		f.Fatal(err)
	}
	n := g.NumStates()

	netM, err := stg.Parse(fuzzSpecMulti)
	if err != nil {
		f.Fatal(err)
	}
	gm, err := stg.BuildSG(netM)
	if err != nil {
		f.Fatal(err)
	}
	res, err := encode.Repair(gm, encode.Options{})
	if err != nil {
		f.Fatal(err)
	}
	g2 := res.G // duplicator after its multi-round repair
	n2 := g2.NumStates()

	// Seed with the all-constant vectors and a plausible insertion
	// shape (rise at the first state, fall halfway).
	f.Add(make([]byte, n))
	all1 := make([]byte, n)
	for i := range all1 {
		all1[i] = byte(encode.L1)
	}
	f.Add(all1)
	mixed := make([]byte, n)
	for i := range mixed {
		switch {
		case i == 0:
			mixed[i] = byte(encode.LR)
		case i < n/2:
			mixed[i] = byte(encode.L1)
		case i == n/2:
			mixed[i] = byte(encode.LF)
		}
	}
	f.Add(mixed)
	// Seeds sized for the multi-round graph, so the fuzzer starts with
	// vectors long enough to label every one of its states.
	f.Add(make([]byte, n2))
	mixed2 := make([]byte, n2)
	for i := range mixed2 {
		switch {
		case i == 0:
			mixed2[i] = byte(encode.LR)
		case i < n2/2:
			mixed2[i] = byte(encode.L1)
		case i == n2/2:
			mixed2[i] = byte(encode.LF)
		}
	}
	f.Add(mixed2)

	check := func(t *testing.T, base *sg.Graph, raw []byte) {
		labels := make([]encode.Label, base.NumStates())
		for i := range labels {
			var b byte
			if i < len(raw) {
				b = raw[i]
			}
			labels[i] = encode.Label(b % 4)
		}
		ng, err := encode.Expand(base, labels, "fz")
		if err != nil {
			return // rejected vectors are fine; panics are not
		}
		if ng.NumSignals() != base.NumSignals()+1 {
			t.Fatalf("accepted expansion has %d signals, want %d", ng.NumSignals(), base.NumSignals()+1)
		}
		if err := ng.CheckConsistency(); err != nil {
			t.Fatalf("accepted expansion is inconsistent: %v\nlabels: %s", err, encode.DescribeLabels(base, labels))
		}
		if x := ng.SignalIndex("fz"); x < 0 || ng.Input[x] {
			t.Fatal("inserted signal must exist as a non-input")
		}
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		check(t, g, raw)
		check(t, g2, raw)
	})
}
