// Package encode implements the synthesis procedure of Section V: state
// signals are inserted into an output semi-modular state graph until the
// Monotonous Cover requirement holds, using the generalized state
// assignment framework of Vanbekbergen et al. [11].
//
// Each state of the graph is labelled with one of four values
// {0, up, 1, down} describing the inserted signal x: "up" states form
// ER(+x), "down" states ER(−x), "1"/"0" the quiescent phases. A
// labelling is valid when every edge respects the monotone cycle
//
//	0 → up → 1 → down → 0
//
// (with self-loops allowed within each phase) and when every phase-exit
// edge that must wait for x's own transition (up→1 and down→0) is a
// non-input transition — inputs cannot be delayed by an inserted signal
// (input properness). The constraints are encoded in CNF over two
// Boolean variables per state and solved with the CDCL solver in
// internal/sat; seeding constraints derived from the concrete MC
// violation steer the search (Section VII: "constraints … solved using
// Boolean satisfiability solvers").
//
// A valid labelling is then expanded into a new state graph G′ with the
// extra signal: "up"/"down" states split into a before/after layer, the
// delayed boundary transitions fire only from the after layer, and x's
// own transitions connect the layers. The expansion preserves output
// semi-modularity and delays only non-input transitions.
package encode

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sat"
	"repro/internal/sg"
)

// Label is the 4-valued state assignment of the inserted signal.
type Label int8

// Labels of the {0, up, 1, down} assignment.
const (
	L0 Label = iota // x stable at 0
	LR              // x excited to rise: ER(+x)
	L1              // x stable at 1
	LF              // x excited to fall: ER(−x)
)

// String renders the label.
func (l Label) String() string {
	switch l {
	case L0:
		return "0"
	case LR:
		return "up"
	case L1:
		return "1"
	case LF:
		return "down"
	default:
		return fmt.Sprintf("Label(%d)", int(l))
	}
}

// xValue returns the binary value of x in states of this label before
// x's own transition fires.
func (l Label) xValue() bool { return l == L1 || l == LF }

// allowedEdge reports whether an edge from a label-f state to a label-t
// state is permitted; delayed reports whether the transition must wait
// for x's own firing (and therefore must be non-input).
func allowedEdge(f, t Label) (ok, delayed bool) {
	switch {
	case f == t:
		return true, false
	case f == L0 && t == LR, f == L1 && t == LF:
		return true, false
	case f == LR && t == L1, f == LF && t == L0:
		return true, true
	default:
		return false, false
	}
}

// Expand builds G′ from a labelling, inserting a new non-input signal
// with the given name. It fails when the labelling violates the edge
// rules or input properness, or when the new graph is inconsistent.
func Expand(g *sg.Graph, labels []Label, name string) (*sg.Graph, error) {
	if len(labels) != g.NumStates() {
		return nil, fmt.Errorf("encode: %d labels for %d states", len(labels), g.NumStates())
	}
	if g.NumSignals() >= 64 {
		return nil, fmt.Errorf("encode: signal limit reached")
	}
	if g.SignalIndex(name) >= 0 {
		return nil, fmt.Errorf("encode: signal name %q already exists", name)
	}
	for s, st := range g.States {
		for _, e := range st.Succ {
			ok, delayed := allowedEdge(labels[s], labels[e.To])
			if !ok {
				return nil, fmt.Errorf("encode: edge s%d(%s)→s%d(%s) violates the label cycle",
					s, labels[s], e.To, labels[e.To])
			}
			if delayed && g.Input[e.Signal] {
				return nil, fmt.Errorf("encode: input transition %s%s on delayed edge s%d→s%d",
					g.Signals[e.Signal], e.Dir, s, e.To)
			}
		}
	}

	xSig := g.NumSignals()
	ng := &sg.Graph{
		Name:    g.Name + "+" + name,
		Signals: append(append([]string(nil), g.Signals...), name),
		Input:   append(append([]bool(nil), g.Input...), false),
	}

	// States are (original state, x value) pairs, created on demand
	// during forward reachability.
	type key struct {
		s int
		x bool
	}
	idx := map[key]int{}
	var order []key
	intern := func(k key) int {
		if i, ok := idx[k]; ok {
			return i
		}
		code := g.States[k.s].Code
		if k.x {
			code |= 1 << uint(xSig)
		}
		i := ng.AddState(code)
		idx[k] = i
		order = append(order, k)
		return i
	}

	start := key{s: g.Initial, x: labels[g.Initial].xValue()}
	ng.Initial = intern(start)

	for head := 0; head < len(order); head++ {
		k := order[head]
		from := idx[k]
		lab := labels[k.s]
		// x's own transitions.
		if lab == LR && !k.x {
			to := intern(key{s: k.s, x: true})
			if err := ng.AddEdge(from, to, xSig, sg.Plus); err != nil {
				return nil, err
			}
		}
		if lab == LF && k.x {
			to := intern(key{s: k.s, x: false})
			if err := ng.AddEdge(from, to, xSig, sg.Minus); err != nil {
				return nil, err
			}
		}
		// Original transitions.
		for _, e := range g.States[k.s].Succ {
			_, delayed := allowedEdge(lab, labels[e.To])
			if delayed {
				// up→1 fires only from the x=1 layer; down→0 only from
				// the x=0 layer.
				want := labels[e.To].xValue()
				if k.x != want {
					continue
				}
			}
			to := intern(key{s: e.To, x: k.x})
			if err := ng.AddEdge(from, to, e.Signal, e.Dir); err != nil {
				return nil, err
			}
		}
	}
	if err := ng.CheckConsistency(); err != nil {
		return nil, err
	}
	return ng, nil
}

// Strategy selects how the MC violation seeds the SAT instance.
type Strategy int

// Insertion strategies, tried in order.
const (
	// PackLow seeds the target violation like SeparateLow and then
	// greedily adds the separation constraints of every other violation
	// (in either polarity) while the formula stays satisfiable — one
	// inserted signal then repairs as many violations as possible.
	PackLow Strategy = iota
	// PackHigh is PackLow with the target's polarity inverted.
	PackHigh
	// TriggerStrategy labels the violating excitation region "up": the
	// inserted signal becomes a fresh, persistent trigger of the
	// region's transition, which is delayed until x fires.
	TriggerStrategy
	// SeparateHigh labels the violating region 1 and the witness states
	// 0: the literal x separates the region's CFR from the states its
	// cover cube wrongly reaches.
	SeparateHigh
	// SeparateLow is SeparateHigh with inverted polarity.
	SeparateLow
	// Free leaves the labelling unseeded (pure enumeration).
	Free
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case PackLow:
		return "pack-low"
	case PackHigh:
		return "pack-high"
	case TriggerStrategy:
		return "trigger"
	case SeparateHigh:
		return "separate-high"
	case SeparateLow:
		return "separate-low"
	case Free:
		return "free"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Target selects the property the repair loop establishes.
type Target int8

// Repair targets.
const (
	// TargetMC (the default) inserts signals until the Monotonous Cover
	// requirement holds — the paper's synthesis procedure.
	TargetMC Target = iota
	// TargetCSC inserts signals only until Complete State Coding holds
	// (the weaker classical goal, sufficient for complex-gate
	// implementations but NOT for basic gates — see Example 2).
	TargetCSC
)

// Options configures the repair loop.
type Options struct {
	// MaxSignals bounds the number of inserted state signals (default 8).
	MaxSignals int
	// MaxModels bounds SAT model enumeration per strategy (default 128).
	MaxModels int
	// Strategies overrides the default strategy order.
	Strategies []Strategy
	// Target selects the property to establish (default TargetMC).
	Target Target
	// Workers bounds the worker pool of the per-signal MC analyses run
	// inside the repair loop (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// SymbolicMC scores candidates with the symbolic existence-only MC
	// check (BDD set operations over the candidate graph) instead of the
	// explicit per-state scans. The two scorers return identical counts,
	// so the repair trajectory — and the final netlist — is unchanged.
	SymbolicMC bool
	// Trace receives progress lines when non-nil.
	Trace func(string)
}

func (o *Options) fill() {
	if o.MaxSignals == 0 {
		o.MaxSignals = 8
	}
	if o.MaxModels == 0 {
		o.MaxModels = 128
	}
	if o.Strategies == nil {
		o.Strategies = []Strategy{PackLow, PackHigh, TriggerStrategy, SeparateLow, SeparateHigh, Free}
	}
}

// Result reports the outcome of the repair loop.
type Result struct {
	G        *sg.Graph // the transformed graph satisfying MC
	Added    []string  // names of the inserted state signals
	Models   int       // SAT models examined over the whole run
	Report   *core.Report
	Strategy []Strategy // strategy that succeeded for each added signal

	// Search-pruning tallies over the whole run.
	Candidates int // label vectors actually expanded and scored
	Deduped    int // models skipped because an identical label vector was already scored this round
	Pruned     int // candidates abandoned by the branch-and-bound scoring budget
}

// labelVars holds the CNF variables of one state's label: (v1, v0) with
// 0=(0,0), up=(0,1), 1=(1,1), down=(1,0).
type labelVars struct{ v1, v0 int }

func labelOf(m []bool, lv labelVars) Label {
	v1, v0 := m[lv.v1-1], m[lv.v0-1]
	switch {
	case !v1 && !v0:
		return L0
	case !v1 && v0:
		return LR
	case v1 && v0:
		return L1
	default:
		return LF
	}
}

// lits returns the literal pair asserting that state s has label l.
func (lv labelVars) lits(l Label) (sat.Lit, sat.Lit) {
	switch l {
	case L0:
		return sat.Lit(-lv.v1), sat.Lit(-lv.v0)
	case LR:
		return sat.Lit(-lv.v1), sat.Lit(lv.v0)
	case L1:
		return sat.Lit(lv.v1), sat.Lit(lv.v0)
	default:
		return sat.Lit(lv.v1), sat.Lit(-lv.v0)
	}
}

// buildCNF encodes the graph-only labelling constraints: the edge
// rules, input properness and non-triviality. Strategy seeds are NOT
// part of the formula — they are passed to Solve as assumptions
// (assumptionsFor), so a single solver serves every conflict and
// strategy of one repair round and the clauses it learns carry across
// all of them instead of being rediscovered per pair.
func buildCNF(g *sg.Graph) (*sat.Solver, []labelVars) {
	s := sat.New()
	vars := make([]labelVars, g.NumStates())
	for i := range vars {
		vars[i] = labelVars{v1: s.NewVar(), v0: s.NewVar()}
	}
	// Edge constraints: forbid every disallowed (from,to) label pair;
	// forbid delayed pairs on input edges.
	for st := range g.States {
		for _, e := range g.States[st].Succ {
			for _, lf := range []Label{L0, LR, L1, LF} {
				for _, lt := range []Label{L0, LR, L1, LF} {
					ok, delayed := allowedEdge(lf, lt)
					if ok && (!delayed || !g.Input[e.Signal]) {
						continue
					}
					a1, a0 := vars[st].lits(lf)
					b1, b0 := vars[e.To].lits(lt)
					s.AddClause(a1.Neg(), a0.Neg(), b1.Neg(), b0.Neg())
				}
			}
		}
	}
	// Non-triviality: at least one "up" state and one "down" state.
	// up(s) ↔ ¬v1 ∧ v0; introduce an aux var per state for each phase.
	var ups, downs []sat.Lit
	for i := range vars {
		u := s.NewVar()
		s.AddClause(sat.Lit(-u), sat.Lit(-vars[i].v1))
		s.AddClause(sat.Lit(-u), sat.Lit(vars[i].v0))
		ups = append(ups, sat.Lit(u))
		d := s.NewVar()
		s.AddClause(sat.Lit(-d), sat.Lit(vars[i].v1))
		s.AddClause(sat.Lit(-d), sat.Lit(-vars[i].v0))
		downs = append(downs, sat.Lit(d))
		// Tie the aux var upward so blocked models differ meaningfully.
		s.AddClause(sat.Lit(u), sat.Lit(vars[i].v1), sat.Lit(-vars[i].v0))
		s.AddClause(sat.Lit(d), sat.Lit(-vars[i].v1), sat.Lit(vars[i].v0))
	}
	s.AddClause(ups...)
	s.AddClause(downs...)
	return s, vars
}

// conflict is one separation problem for the inserted signal: the states
// of a violating excitation region (or one half of a CSC clash) versus
// the witness states the region's cube must be kept away from.
type conflict struct {
	er    []int
	wit   []int
	label string
}

// mcConflicts derives conflicts from the MC violations of a report.
func mcConflicts(g *sg.Graph, rep *core.Report) []conflict {
	var out []conflict
	for _, v := range rep.Violations() {
		out = append(out, conflict{er: v.ER.States, wit: v.States, label: g.ERLabel(v.ER)})
	}
	return out
}

// cscConflicts derives conflicts from CSC violations: each clashing
// state pair must end up with different codes.
func cscConflicts(g *sg.Graph) []conflict {
	var out []conflict
	for _, v := range g.CSCViolations() {
		out = append(out, conflict{
			er:    []int{v.A},
			wit:   []int{v.B},
			label: fmt.Sprintf("CSC(s%d,s%d)", v.A, v.B),
		})
	}
	return out
}

// assumptionsFor renders one strategy's seeding constraints on a
// conflict as assumption literals over the label variables — the
// assumption-scoped equivalent of the unit-clause seeds that used to
// force a CNF rebuild per conflict×strategy pair. Every strategy seed
// is a conjunction of literals: a seeded state is pinned either to a
// single label (both variables) or to a half of the label cycle that
// one variable polarity captures exactly ({0, down} ↔ ¬v0 and
// {1, down} ↔ v1 under the (v1, v0) encoding).
func assumptionsFor(strat Strategy, c conflict, vars []labelVars) []sat.Lit {
	switch strat {
	case TriggerStrategy:
		// ER states labelled "up": (¬v1, v0).
		out := make([]sat.Lit, 0, 2*len(c.er))
		for _, s := range c.er {
			out = append(out, sat.Lit(-vars[s].v1), sat.Lit(vars[s].v0))
		}
		return out
	case SeparateHigh, PackHigh:
		return separationAssumptions(vars, c, false)
	case SeparateLow, PackLow:
		return separationAssumptions(vars, c, true)
	default: // Free: pure enumeration.
		return nil
	}
}

// separationAssumptions renders one conflict's separate-low (or
// separate-high) seeds as assumption literals: region states pinned to
// the base label, witnesses pinned to the opposite half of the label
// cycle. Low polarity: region = 0 (¬v1 ∧ ¬v0), witnesses ∈ {1, down}
// (v1). High polarity: region = 1 (v1 ∧ v0), witnesses ∈ {0, down}
// (¬v0).
func separationAssumptions(vars []labelVars, c conflict, low bool) []sat.Lit {
	var out []sat.Lit
	for _, s := range c.er {
		if low {
			out = append(out, sat.Lit(-vars[s].v1), sat.Lit(-vars[s].v0))
		} else {
			out = append(out, sat.Lit(vars[s].v1), sat.Lit(vars[s].v0))
		}
	}
	for _, s := range c.wit {
		if low {
			out = append(out, sat.Lit(vars[s].v1))
		} else {
			out = append(out, sat.Lit(-vars[s].v0))
		}
	}
	return out
}

// Repair inserts state signals until the graph satisfies the target
// property (Monotonous Cover by default, Complete State Coding with
// TargetCSC). The input graph must be output semi-modular.
func Repair(g *sg.Graph, opts Options) (*Result, error) {
	opts.fill()
	trace := opts.Trace
	if trace == nil {
		trace = func(string) {}
	}
	if !g.OutputSemiModular() {
		return nil, fmt.Errorf("encode: graph is not output semi-modular; no SI implementation exists")
	}
	targetName := "MC"
	score := func(g2 *sg.Graph, rep *core.Report) int { return len(rep.Violations()) }
	conflictsOf := mcConflicts
	if opts.Target == TargetCSC {
		targetName = "CSC"
		score = func(g2 *sg.Graph, rep *core.Report) int { return len(g2.CSCViolations()) }
		conflictsOf = func(g2 *sg.Graph, rep *core.Report) []conflict { return cscConflicts(g2) }
	}

	res := &Result{G: g}
	for round := 0; ; round++ {
		rsp := obs.Start("repair.round", obs.A("round", round), obs.A("spec", g.Name))
		rep := core.NewAnalyzerN(res.G, opts.Workers).CheckGraph()
		res.Report = rep
		if score(res.G, rep) == 0 {
			trace(fmt.Sprintf("round %d: %s satisfied", round, targetName))
			rsp.SetAttr("satisfied", true)
			rsp.End()
			publishRepair(res, round)
			return res, nil
		}
		if round >= opts.MaxSignals {
			rsp.End()
			publishRepair(res, round)
			return nil, fmt.Errorf("encode: %s still violated after inserting %d signals:\n%s",
				targetName, len(res.Added), rep)
		}
		confl := conflictsOf(res.G, rep)
		rsp.SetAttr("conflicts", len(confl))
		trace(fmt.Sprintf("round %d: %d conflicts", round, len(confl)))
		obs.Info("repair round", "spec", g.Name, "round", round, "conflicts", len(confl))
		for _, c := range confl {
			trace("  " + c.label)
		}
		name := freshSignalName(res.G, len(res.Added))

		cur := score(res.G, rep)
		// Signals violating in the current graph, plus the inserted
		// signal itself, are where a candidate's residual violations
		// cluster — scanning them first lets budgeted scoring abandon
		// bad candidates after a couple of signals.
		var hot []string
		hotSeen := map[int]bool{}
		for i := range rep.Results {
			if r := &rep.Results[i]; r.Violation != nil && !hotSeen[r.Signal] {
				hotSeen[r.Signal] = true
				hot = append(hot, res.G.Signals[r.Signal])
			}
		}
		hot = append(hot, name)
		search := newRoundSearch(res.G, name, opts, hot)
		best, bestScore, bestStrat := (*sg.Graph)(nil), cur, Free
		for _, c := range confl {
			for _, strat := range opts.Strategies {
				g2, count := search.tryInsert(c, confl, strat, cur)
				better := g2 != nil && (count < bestScore || best == nil ||
					(count == bestScore && g2.NumStates() < best.NumStates()))
				if g2 != nil && better {
					best, bestScore, bestStrat = g2, count, strat
					trace(fmt.Sprintf("  %s via %s: %d conflicts left (%d states)",
						c.label, strat, count, g2.NumStates()))
					if count == 0 {
						break
					}
				}
			}
			if bestScore == 0 {
				break
			}
		}
		res.Models += search.models
		res.Candidates += search.candidates
		res.Deduped += search.deduped
		res.Pruned += search.pruned
		publishSAT(search.solver)
		if best == nil {
			rsp.End()
			publishRepair(res, round)
			return nil, fmt.Errorf("encode: no insertion reduces the %d %s conflicts of %s",
				len(confl), targetName, res.G.Name)
		}
		res.G = best
		res.Added = append(res.Added, name)
		res.Strategy = append(res.Strategy, bestStrat)
		rsp.SetAttr("inserted", name)
		rsp.SetAttr("strategy", bestStrat.String())
		rsp.End()
	}
}

// publishRepair reports one repair run's tallies to the observability
// layer (a no-op without an enabled observer).
func publishRepair(res *Result, rounds int) {
	o := obs.Get()
	if o == nil {
		return
	}
	m := o.Metrics
	m.Counter("encode_rounds_total").Add(int64(rounds))
	m.Counter("encode_inserted_signals_total").Add(int64(len(res.Added)))
	m.Counter("encode_models_total").Add(int64(res.Models))
	m.Counter("encode_candidates_total").Add(int64(res.Candidates))
	m.Counter("encode_candidates_deduped_total").Add(int64(res.Deduped))
	m.Counter("encode_candidates_pruned_total").Add(int64(res.Pruned))
}

// publishSAT accumulates one solver's search statistics (a no-op
// without an enabled observer).
func publishSAT(s *sat.Solver) {
	o := obs.Get()
	if o == nil {
		return
	}
	m := o.Metrics
	m.Counter("sat_decisions_total").Add(s.Decisions)
	m.Counter("sat_propagations_total").Add(s.Propagations)
	m.Counter("sat_conflicts_total").Add(s.Conflicts)
	m.Counter("sat_restarts_total").Add(s.Restarts)
}

// freshSignalName picks a state-signal name not colliding with any
// existing signal of the graph (the specification may itself use names
// like x1).
func freshSignalName(g *sg.Graph, k int) string {
	for i := k; ; i++ {
		name := fmt.Sprintf("x%d", i)
		if g.SignalIndex(name) < 0 {
			return name
		}
		// Fall back to a distinct prefix when the x-namespace is taken.
		name = fmt.Sprintf("csc%d", i)
		if g.SignalIndex(name) < 0 {
			return name
		}
	}
}

// scoreChunk is the number of unique candidate labellings enumerated
// between scoring fan-outs. It is a fixed constant — NOT a function of
// the worker count — so sequential (Workers=1) and parallel runs
// enumerate exactly the same models, prune with exactly the same
// budgets, and select byte-identical candidates.
const scoreChunk = 16

// roundSearch is the candidate-evaluation engine of one repair round.
// It owns the round's single SAT solver (built once from the graph;
// per-strategy seeds are assumptions, so learned clauses carry across
// every conflict and strategy of the round), the seen-set that dedupes
// identical label vectors across strategies, and the pruning tallies.
type roundSearch struct {
	g    *sg.Graph
	name string
	opts Options

	solver    *sat.Solver
	vars      []labelVars
	blockVars []int
	seen      map[string]struct{} // label vectors already scored this round
	hot       []string            // scan-first signals for budgeted scoring

	models     int // SAT models enumerated
	candidates int // unique label vectors expanded and scored
	deduped    int // models skipped by the seen-set
	pruned     int // candidates abandoned at the scoring budget
}

func newRoundSearch(g *sg.Graph, name string, opts Options, hot []string) *roundSearch {
	solver, vars := buildCNF(g)
	blockVars := make([]int, 0, 2*len(vars))
	for _, lv := range vars {
		blockVars = append(blockVars, lv.v1, lv.v0)
	}
	return &roundSearch{
		g: g, name: name, opts: opts,
		solver: solver, vars: vars, blockVars: blockVars,
		seen: make(map[string]struct{}), hot: hot,
	}
}

// scored is one candidate's verdict. A nil graph marks an invalid
// labelling (expansion error or lost output semi-modularity); pruned
// marks a count truncated at the branch-and-bound budget (the real
// count is at least the reported one).
type scored struct {
	g      *sg.Graph
	count  int
	pruned bool
}

// score expands one labelling and counts the remaining conflicts,
// abandoning the count at budget (candidates at or above the incumbent
// can never be selected, so their exact count is irrelevant). It runs
// on pool workers: everything it touches is either task-local or a
// read-only view of the round's graph.
func (rs *roundSearch) score(labels []Label, budget int) scored {
	g2, err := Expand(rs.g, labels, rs.name)
	if err != nil {
		return scored{}
	}
	if !g2.OutputSemiModular() {
		return scored{}
	}
	if rs.opts.Target == TargetCSC {
		return scored{g: g2, count: len(g2.CSCViolations())}
	}
	var n int
	if rs.opts.SymbolicMC {
		n = core.NewAnalyzerLazy(g2).CountViolationsBudgetSymbolic(budget, rs.hot...)
	} else {
		n = core.NewAnalyzerLazy(g2).CountViolationsBudget(budget, rs.hot...)
	}
	return scored{g: g2, count: n, pruned: n >= budget}
}

// tryInsert enumerates labellings for one conflict and strategy,
// returning the expanded graph with the lowest remaining conflict
// count (only when strictly below the current score; ties broken
// towards smaller expansions) and that count. Model enumeration stays
// serial on the round's shared solver — it is cheap next to scoring —
// while each chunk of unique models fans its Expand + semi-modularity
// + conflict-count scoring out over the worker pool. The reduction
// walks candidates in model order with budgets fixed at chunk
// boundaries, so the selection is deterministic regardless of worker
// count or completion order.
func (rs *roundSearch) tryInsert(c conflict, all []conflict, strat Strategy, target int) (*sg.Graph, int) {
	solver, vars := rs.solver, rs.vars
	assume := assumptionsFor(strat, c, vars)

	// Each pair's search starts from virgin branching heuristics: saved
	// phases from a previous pair's enumeration would otherwise steer
	// the early models into that pair's region of the label space, and
	// the quality of the first few models is what makes MaxModels a
	// usable cutoff. Learned clauses are kept — they are consequences of
	// the base formula and only speed the search up.
	solver.ResetSearch()

	// Packing strategies: greedily commit the separation constraints of
	// the other conflicts while the formula stays satisfiable, so one
	// signal repairs as many conflicts as possible.
	if strat == PackLow || strat == PackHigh {
		if !solver.Solve(assume...) {
			return nil, target
		}
		for i := range all {
			c2 := all[i]
			if c2.label == c.label {
				continue
			}
			for _, low := range []bool{strat == PackLow, strat != PackLow} {
				cand := append(append([]sat.Lit(nil), assume...), separationAssumptions(vars, c2, low)...)
				if solver.Solve(cand...) {
					assume = cand
					break
				}
			}
		}
	}

	// Fresh selector variable per enumeration: blocking clauses carry
	// its negation, so they bite only under this enumeration's
	// assumptions and earlier enumerations don't censor this one.
	sel := sat.Lit(solver.NewVar())
	enum := append(append([]sat.Lit(nil), assume...), sel)

	var best *sg.Graph
	bestCount := target
	models, maxModels := 0, rs.opts.MaxModels
	exhausted, stop := false, false
	for !stop && !exhausted && models < maxModels {
		// Enumerate the next chunk of unique label vectors.
		var chunk [][]Label
		for models < maxModels && len(chunk) < scoreChunk {
			if !solver.Solve(enum...) {
				exhausted = true
				break
			}
			models++
			m := solver.Model()
			labels := make([]Label, len(vars))
			key := make([]byte, len(vars))
			for i, lv := range vars {
				labels[i] = labelOf(m, lv)
				key[i] = byte(labels[i])
			}
			if !solver.BlockModelWith(sel.Neg(), rs.blockVars...) {
				exhausted = true
			}
			if _, dup := rs.seen[string(key)]; dup {
				// The same model routinely reappears under PackLow /
				// PackHigh / Free; its first scoring already speaks for
				// it in this round's selection.
				rs.deduped++
				continue
			}
			rs.seen[string(key)] = struct{}{}
			chunk = append(chunk, labels)
		}
		if len(chunk) == 0 {
			continue
		}
		// Score the chunk in parallel. The budget is the incumbent at
		// the chunk boundary — deterministic, unlike a live-updated
		// incumbent, which would make pruning depend on completion
		// order. Truncated candidates have a true count above every
		// incumbent this chunk's reduction can reach, so they are
		// never selectable and the truncation is invisible to the
		// selection.
		budget := bestCount + 1
		scores := make([]scored, len(chunk))
		par.ForEachHook(len(chunk), rs.opts.Workers, func(i int) {
			scores[i] = rs.score(chunk[i], budget)
		}, obs.TaskHook("encode.score"))
		rs.candidates += len(chunk)
		for _, sc := range scores {
			if sc.g == nil {
				continue
			}
			if sc.pruned {
				rs.pruned++
				continue
			}
			if sc.count >= budget {
				// Exact but not competitive (CSC scoring is never
				// truncated); above the chunk budget it can beat no
				// incumbent this reduction reaches.
				continue
			}
			if sc.count < bestCount || (best != nil && sc.count == bestCount && sc.g.NumStates() < best.NumStates()) {
				best, bestCount = sc.g, sc.count
				if sc.count == 0 && sc.g.NumStates() <= rs.g.NumStates()+2 {
					stop = true // minimal possible insertion footprint
					break
				}
			}
		}
	}
	// Retire the selector: pinning it false permanently satisfies this
	// enumeration's blocking clauses and keeps later searches from
	// branching on it (a phase-saved sel=true branch would re-arm the
	// blocking clauses and censor models from later enumerations).
	// Simplify then drops the satisfied blocking clauses outright —
	// hundreds of full-width clauses per pair would otherwise keep
	// taxing propagation for the rest of the round.
	solver.AddClause(sel.Neg())
	solver.Simplify()
	rs.models += models
	return best, bestCount
}

// DescribeLabels renders a labelling for diagnostics.
func DescribeLabels(g *sg.Graph, labels []Label) string {
	var b strings.Builder
	byLabel := map[Label][]int{}
	for s, l := range labels {
		byLabel[l] = append(byLabel[l], s)
	}
	for _, l := range []Label{LR, L1, LF, L0} {
		states := byLabel[l]
		sort.Ints(states)
		fmt.Fprintf(&b, "%-4s:", l)
		for _, s := range states {
			fmt.Fprintf(&b, " s%d", s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
