// Package encode implements the synthesis procedure of Section V: state
// signals are inserted into an output semi-modular state graph until the
// Monotonous Cover requirement holds, using the generalized state
// assignment framework of Vanbekbergen et al. [11].
//
// Each state of the graph is labelled with one of four values
// {0, up, 1, down} describing the inserted signal x: "up" states form
// ER(+x), "down" states ER(−x), "1"/"0" the quiescent phases. A
// labelling is valid when every edge respects the monotone cycle
//
//	0 → up → 1 → down → 0
//
// (with self-loops allowed within each phase) and when every phase-exit
// edge that must wait for x's own transition (up→1 and down→0) is a
// non-input transition — inputs cannot be delayed by an inserted signal
// (input properness). The constraints are encoded in CNF over two
// Boolean variables per state and solved with the CDCL solver in
// internal/sat; seeding constraints derived from the concrete MC
// violation steer the search (Section VII: "constraints … solved using
// Boolean satisfiability solvers").
//
// A valid labelling is then expanded into a new state graph G′ with the
// extra signal: "up"/"down" states split into a before/after layer, the
// delayed boundary transitions fire only from the after layer, and x's
// own transitions connect the layers. The expansion preserves output
// semi-modularity and delays only non-input transitions.
package encode

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sat"
	"repro/internal/sg"
)

// Label is the 4-valued state assignment of the inserted signal.
type Label int8

// Labels of the {0, up, 1, down} assignment.
const (
	L0 Label = iota // x stable at 0
	LR              // x excited to rise: ER(+x)
	L1              // x stable at 1
	LF              // x excited to fall: ER(−x)
)

// String renders the label.
func (l Label) String() string {
	switch l {
	case L0:
		return "0"
	case LR:
		return "up"
	case L1:
		return "1"
	case LF:
		return "down"
	default:
		return fmt.Sprintf("Label(%d)", int(l))
	}
}

// xValue returns the binary value of x in states of this label before
// x's own transition fires.
func (l Label) xValue() bool { return l == L1 || l == LF }

// allowedEdge reports whether an edge from a label-f state to a label-t
// state is permitted; delayed reports whether the transition must wait
// for x's own firing (and therefore must be non-input).
func allowedEdge(f, t Label) (ok, delayed bool) {
	switch {
	case f == t:
		return true, false
	case f == L0 && t == LR, f == L1 && t == LF:
		return true, false
	case f == LR && t == L1, f == LF && t == L0:
		return true, true
	default:
		return false, false
	}
}

// Expand builds G′ from a labelling, inserting a new non-input signal
// with the given name. It fails when the labelling violates the edge
// rules or input properness, or when the new graph is inconsistent.
func Expand(g *sg.Graph, labels []Label, name string) (*sg.Graph, error) {
	ng, _, err := expand(g, labels, name)
	return ng, err
}

// expand is Expand returning, additionally, the image map used by
// cross-round learnt-clause carrying: images[s] is the index of old
// state s in G′ when exactly one of its layers is reachable, and -1
// when the state was split into both x-layers (or is unreachable).
// Label constraints on an unsplit state have a natural counterpart on
// its unique image, which is what makes remapped learnt clauses worth
// offering to the next round's solver.
func expand(g *sg.Graph, labels []Label, name string) (*sg.Graph, []int, error) {
	return expandInto(g, labels, name, nil)
}

// expandScratch holds the reusable backing arrays of one expansion.
// A graph built on a scratch aliases its memory and stays valid only
// until the scratch's next use: callers must detach (deep-copy) any
// expansion that outlives the scoring pass that built it.
type expandScratch struct {
	states []sg.State
	succ   []sg.Edge
	pred   []sg.Edge
	idx    []int32
	order  []int32
}

func (scr *expandScratch) ensure(n, nEdges int) {
	if cap(scr.states) < 2*n {
		scr.states = make([]sg.State, 0, 2*n)
	}
	scr.states = scr.states[:0]
	if len(scr.succ) < 2*(nEdges+n) {
		scr.succ = make([]sg.Edge, 2*(nEdges+n))
		scr.pred = make([]sg.Edge, 2*(nEdges+n))
	}
	if len(scr.idx) < 2*n {
		scr.idx = make([]int32, 2*n)
	}
	if cap(scr.order) < 2*n {
		scr.order = make([]int32, 0, 2*n)
	}
	scr.order = scr.order[:0]
}

// detachGraph deep-copies a scratch-backed expansion so it survives the
// scratch's reuse by later chunks.
func detachGraph(g *sg.Graph) *sg.Graph {
	total := 0
	for i := range g.States {
		total += len(g.States[i].Succ) + len(g.States[i].Pred)
	}
	buf := make([]sg.Edge, 0, total)
	states := make([]sg.State, len(g.States))
	for i := range g.States {
		st := &g.States[i]
		o := len(buf)
		buf = append(buf, st.Succ...)
		s2 := buf[o:len(buf):len(buf)]
		o = len(buf)
		buf = append(buf, st.Pred...)
		p2 := buf[o:len(buf):len(buf)]
		states[i] = sg.State{Code: st.Code, Succ: s2, Pred: p2}
	}
	return &sg.Graph{Signals: g.Signals, Input: g.Input, States: states, Initial: g.Initial, Name: g.Name}
}

func expandInto(g *sg.Graph, labels []Label, name string, scr *expandScratch) (*sg.Graph, []int, error) {
	if len(labels) != g.NumStates() {
		return nil, nil, fmt.Errorf("encode: %d labels for %d states", len(labels), g.NumStates())
	}
	if g.NumSignals() >= 64 {
		return nil, nil, fmt.Errorf("encode: signal limit reached")
	}
	if g.SignalIndex(name) >= 0 {
		return nil, nil, fmt.Errorf("encode: signal name %q already exists", name)
	}
	for s, st := range g.States {
		for _, e := range st.Succ {
			ok, delayed := allowedEdge(labels[s], labels[e.To])
			if !ok {
				return nil, nil, fmt.Errorf("encode: edge s%d(%s)→s%d(%s) violates the label cycle",
					s, labels[s], e.To, labels[e.To])
			}
			if delayed && g.Input[e.Signal] {
				return nil, nil, fmt.Errorf("encode: input transition %s%s on delayed edge s%d→s%d",
					g.Signals[e.Signal], e.Dir, s, e.To)
			}
		}
	}

	xSig := g.NumSignals()
	ng := &sg.Graph{
		Name:    g.Name + "+" + name,
		Signals: append(append([]string(nil), g.Signals...), name),
		Input:   append(append([]bool(nil), g.Input...), false),
	}

	// States are (original state, x value) pairs, created on demand
	// during forward reachability. The pair is a flat index 2s+x into a
	// dense table — this runs once per scored candidate, so no maps.
	// The state table and both adjacency lists are carved out of
	// preallocated backings: state (s,x) gets at most deg(s)+1 edges per
	// direction (the original transitions stay in their layer, plus x's
	// own transition), so append never reallocates on this hot path.
	n := g.NumStates()
	nEdges := 0
	for s := range g.States {
		nEdges += len(g.States[s].Succ)
	}
	var (
		succBuf, predBuf []sg.Edge
		idx, order       []int32
	)
	if scr != nil {
		scr.ensure(n, nEdges)
		ng.States = scr.states
		succBuf, predBuf = scr.succ, scr.pred
		idx = scr.idx[:2*n]
		order = scr.order
	} else {
		ng.States = make([]sg.State, 0, 2*n)
		succBuf = make([]sg.Edge, 2*(nEdges+n))
		predBuf = make([]sg.Edge, 2*(nEdges+n))
		idx = make([]int32, 2*n)
		order = make([]int32, 0, n+n/2)
	}
	soff, poff := 0, 0
	for i := range idx {
		idx[i] = -1
	}
	intern := func(k int32) int32 {
		if i := idx[k]; i >= 0 {
			return i
		}
		s := int(k >> 1)
		code := g.States[s].Code
		if k&1 == 1 {
			code |= 1 << uint(xSig)
		}
		i := int32(ng.AddState(code))
		st := &ng.States[i]
		ds := len(g.States[s].Succ) + 1
		st.Succ = succBuf[soff : soff : soff+ds]
		soff += ds
		dp := len(g.States[s].Pred) + 1
		st.Pred = predBuf[poff : poff : poff+dp]
		poff += dp
		idx[k] = i
		order = append(order, k)
		return i
	}
	b2i := func(b bool) int32 {
		if b {
			return 1
		}
		return 0
	}

	ng.Initial = int(intern(int32(2*g.Initial) + b2i(labels[g.Initial].xValue())))

	for head := 0; head < len(order); head++ {
		k := order[head]
		s, x := int(k>>1), k&1 == 1
		from := int(idx[k])
		lab := labels[s]
		// x's own transitions.
		if lab == LR && !x {
			to := int(intern(k | 1))
			if err := ng.AddEdge(from, to, xSig, sg.Plus); err != nil {
				return nil, nil, err
			}
		}
		if lab == LF && x {
			to := int(intern(k &^ 1))
			if err := ng.AddEdge(from, to, xSig, sg.Minus); err != nil {
				return nil, nil, err
			}
		}
		// Original transitions.
		for _, e := range g.States[s].Succ {
			_, delayed := allowedEdge(lab, labels[e.To])
			if delayed {
				// up→1 fires only from the x=1 layer; down→0 only from
				// the x=0 layer.
				if x != labels[e.To].xValue() {
					continue
				}
			}
			to := int(intern(int32(2*e.To) + b2i(x)))
			if err := ng.AddEdge(from, to, e.Signal, e.Dir); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := ng.CheckConsistency(); err != nil {
		return nil, nil, err
	}
	// Image map: old state → its unique new index, -1 when split.
	images := make([]int, n)
	for s := 0; s < n; s++ {
		lo, hi := idx[2*s], idx[2*s+1]
		switch {
		case lo >= 0 && hi < 0:
			images[s] = int(lo)
		case lo < 0 && hi >= 0:
			images[s] = int(hi)
		default:
			images[s] = -1
		}
	}
	return ng, images, nil
}

// Strategy selects how the MC violation seeds the SAT instance.
type Strategy int

// Insertion strategies, tried in order.
const (
	// PackLow seeds the target violation like SeparateLow and then
	// greedily adds the separation constraints of every other violation
	// (in either polarity) while the formula stays satisfiable — one
	// inserted signal then repairs as many violations as possible.
	PackLow Strategy = iota
	// PackHigh is PackLow with the target's polarity inverted.
	PackHigh
	// TriggerStrategy labels the violating excitation region "up": the
	// inserted signal becomes a fresh, persistent trigger of the
	// region's transition, which is delayed until x fires.
	TriggerStrategy
	// SeparateHigh labels the violating region 1 and the witness states
	// 0: the literal x separates the region's CFR from the states its
	// cover cube wrongly reaches.
	SeparateHigh
	// SeparateLow is SeparateHigh with inverted polarity.
	SeparateLow
	// Free leaves the labelling unseeded (pure enumeration).
	Free
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case PackLow:
		return "pack-low"
	case PackHigh:
		return "pack-high"
	case TriggerStrategy:
		return "trigger"
	case SeparateHigh:
		return "separate-high"
	case SeparateLow:
		return "separate-low"
	case Free:
		return "free"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Target selects the property the repair loop establishes.
type Target int8

// Repair targets.
const (
	// TargetMC (the default) inserts signals until the Monotonous Cover
	// requirement holds — the paper's synthesis procedure.
	TargetMC Target = iota
	// TargetCSC inserts signals only until Complete State Coding holds
	// (the weaker classical goal, sufficient for complex-gate
	// implementations but NOT for basic gates — see Example 2).
	TargetCSC
)

// Options configures the repair loop.
type Options struct {
	// MaxSignals bounds the number of inserted state signals (default 8).
	MaxSignals int
	// MaxModels bounds SAT model enumeration per strategy (default 128).
	MaxModels int
	// Strategies overrides the default strategy order.
	Strategies []Strategy
	// Target selects the property to establish (default TargetMC).
	Target Target
	// Workers bounds the worker pool of the per-signal MC analyses run
	// inside the repair loop (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// SymbolicMC scores candidates with the symbolic existence-only MC
	// check (BDD set operations over the candidate graph) instead of the
	// explicit per-state scans. The two scorers return identical counts,
	// so the repair trajectory — and the final netlist — is unchanged.
	SymbolicMC bool
	// Portfolio is the width K of the deterministic SAT portfolio
	// racing each round's queries (0 = auto: a single canonical solver
	// when the effective worker count is 1, otherwise min(4, workers);
	// 1 = single canonical solver; clamped to 8). Every model the
	// portfolio returns comes from the canonical anchor, so K — like
	// Workers — never changes the synthesized netlist, only how fast
	// it is reached.
	Portfolio int
	// DisableLearntCarry turns off cross-round learnt-clause carrying.
	// Carried clauses are re-certified against the next round's own
	// formula by reverse unit propagation, so carrying never changes
	// which labellings are enumerated — this switch exists for the
	// differential test that proves it.
	DisableLearntCarry bool
	// Trace receives progress lines when non-nil.
	Trace func(string)
}

// portfolioWidth resolves Options.Portfolio against the effective
// worker count.
func (o *Options) portfolioWidth() int {
	k := o.Portfolio
	if k == 0 {
		if w := par.Workers(o.Workers); w <= 1 {
			k = 1
		} else if w < 4 {
			k = w
		} else {
			k = 4
		}
	}
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return k
}

func (o *Options) fill() {
	if o.MaxSignals == 0 {
		o.MaxSignals = 8
	}
	if o.MaxModels == 0 {
		o.MaxModels = 128
	}
	if o.Strategies == nil {
		o.Strategies = []Strategy{PackLow, PackHigh, TriggerStrategy, SeparateLow, SeparateHigh, Free}
	}
}

// Result reports the outcome of the repair loop.
type Result struct {
	G        *sg.Graph // the transformed graph satisfying MC
	Added    []string  // names of the inserted state signals
	Models   int       // SAT models examined over the whole run
	Report   *core.Report
	Strategy []Strategy // strategy that succeeded for each added signal

	// Search-pruning tallies over the whole run.
	Candidates int // label vectors actually expanded and scored
	Deduped    int // models skipped because they (or their mirror) were already scored this round
	Pruned     int // candidates abandoned by the branch-and-bound scoring budget

	// Cross-round clause carrying tallies.
	Carried     int // remapped learnt clauses offered to a later round's solver
	CarriedKept int // offered clauses the receiving solver certified and kept

	// Symmetry-breaking tallies.
	SymmetryPairs   int // interchangeable state pairs detected
	SymmetryClauses int // lex-leader clauses added

	// SAT aggregates search counters over every round and every
	// portfolio member; Portfolio aggregates the portfolio-level
	// counters (Wins maps config name to the queries it settled).
	SAT       sat.Stats
	Portfolio sat.PortfolioStats
}

// labelVars holds the CNF variables of one state's label: (v1, v0) with
// 0=(0,0), up=(0,1), 1=(1,1), down=(1,0).
type labelVars struct{ v1, v0 int }

func labelOf(m []bool, lv labelVars) Label {
	v1, v0 := m[lv.v1-1], m[lv.v0-1]
	switch {
	case !v1 && !v0:
		return L0
	case !v1 && v0:
		return LR
	case v1 && v0:
		return L1
	default:
		return LF
	}
}

// lits returns the literal pair asserting that state s has label l.
func (lv labelVars) lits(l Label) (sat.Lit, sat.Lit) {
	switch l {
	case L0:
		return sat.Lit(-lv.v1), sat.Lit(-lv.v0)
	case LR:
		return sat.Lit(-lv.v1), sat.Lit(lv.v0)
	case L1:
		return sat.Lit(lv.v1), sat.Lit(lv.v0)
	default:
		return sat.Lit(lv.v1), sat.Lit(-lv.v0)
	}
}

// buildCNF encodes the graph-only labelling constraints: the edge
// rules, input properness and non-triviality. Strategy seeds are NOT
// part of the formula — they are passed to Solve as assumptions
// (assumptionsFor), so a single solver serves every conflict and
// strategy of one repair round and the clauses it learns carry across
// all of them instead of being rediscovered per pair. The label
// variables are allocated first — state i holds (2i+1, 2i+2) — which
// is the contract cross-round clause remapping relies on.
func buildCNF(s *sat.Portfolio, g *sg.Graph) []labelVars {
	vars := make([]labelVars, g.NumStates())
	for i := range vars {
		vars[i] = labelVars{v1: s.NewVar(), v0: s.NewVar()}
	}
	// Edge constraints: forbid every disallowed (from,to) label pair;
	// forbid delayed pairs on input edges.
	for st := range g.States {
		for _, e := range g.States[st].Succ {
			for _, lf := range []Label{L0, LR, L1, LF} {
				for _, lt := range []Label{L0, LR, L1, LF} {
					ok, delayed := allowedEdge(lf, lt)
					if ok && (!delayed || !g.Input[e.Signal]) {
						continue
					}
					a1, a0 := vars[st].lits(lf)
					b1, b0 := vars[e.To].lits(lt)
					s.AddClause(a1.Neg(), a0.Neg(), b1.Neg(), b0.Neg())
				}
			}
		}
	}
	// Non-triviality: at least one "up" state and one "down" state.
	// up(s) ↔ ¬v1 ∧ v0; introduce an aux var per state for each phase.
	var ups, downs []sat.Lit
	for i := range vars {
		u := s.NewVar()
		s.AddClause(sat.Lit(-u), sat.Lit(-vars[i].v1))
		s.AddClause(sat.Lit(-u), sat.Lit(vars[i].v0))
		ups = append(ups, sat.Lit(u))
		d := s.NewVar()
		s.AddClause(sat.Lit(-d), sat.Lit(vars[i].v1))
		s.AddClause(sat.Lit(-d), sat.Lit(-vars[i].v0))
		downs = append(downs, sat.Lit(d))
		// Tie the aux var upward so blocked models differ meaningfully.
		s.AddClause(sat.Lit(u), sat.Lit(vars[i].v1), sat.Lit(-vars[i].v0))
		s.AddClause(sat.Lit(d), sat.Lit(-vars[i].v1), sat.Lit(vars[i].v0))
	}
	s.AddClause(ups...)
	s.AddClause(downs...)
	return vars
}

// interchangeablePairs finds pairs of states (i, j), i < j, whose
// transposition is a symmetry of the whole round: equal binary codes,
// neither is the initial state, swapping them is a graph automorphism
// (their incident edges map onto each other), and every conflict of the
// round treats them alike (same er / wit membership). Swapping the
// labels of such a pair turns any valid labelling into another valid
// labelling with the same score, the same expansion size and the same
// compatibility with every strategy seed of the round — so the solver
// may be restricted to the lexicographically least member of each
// orbit without losing any distinct repair.
func interchangeablePairs(g *sg.Graph, confl []conflict) [][2]int {
	n := g.NumStates()
	byCode := make(map[uint64][]int, n)
	for i := 0; i < n; i++ {
		byCode[g.States[i].Code] = append(byCode[g.States[i].Code], i)
	}
	// Exact conflict-membership signature per state: one byte per
	// conflict, er bit and wit bit.
	sig := make([][]byte, n)
	for i := range sig {
		sig[i] = make([]byte, len(confl))
	}
	for k, c := range confl {
		for _, s := range c.er {
			sig[s][k] |= 1
		}
		for _, s := range c.wit {
			sig[s][k] |= 2
		}
	}
	var out [][2]int
	for i := 0; i < n; i++ {
		group := byCode[g.States[i].Code]
		for _, j := range group {
			if j <= i || i == g.Initial || j == g.Initial {
				continue
			}
			if string(sig[i]) != string(sig[j]) {
				continue
			}
			if swapIsAutomorphism(g, i, j) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// swapIsAutomorphism reports whether exchanging states i and j maps the
// edge set onto itself: every successor and predecessor edge of i must
// have the φ-image edge at j and vice versa, where φ swaps i and j and
// fixes everything else.
func swapIsAutomorphism(g *sg.Graph, i, j int) bool {
	phi := func(s int) int {
		switch s {
		case i:
			return j
		case j:
			return i
		}
		return s
	}
	key := func(e sg.Edge, mapTo bool) int64 {
		to := e.To
		if mapTo {
			to = phi(to)
		}
		return int64(to)<<16 | int64(e.Signal)<<2 | int64(e.Dir&3)
	}
	match := func(a, b []sg.Edge) bool {
		if len(a) != len(b) {
			return false
		}
		ka := make([]int64, len(a))
		kb := make([]int64, len(b))
		for x := range a {
			ka[x] = key(a[x], true) // φ-image of i's edges...
			kb[x] = key(b[x], false)
		}
		sort.Slice(ka, func(x, y int) bool { return ka[x] < ka[y] })
		sort.Slice(kb, func(x, y int) bool { return kb[x] < kb[y] })
		for x := range ka {
			if ka[x] != kb[x] {
				return false
			}
		}
		return true
	}
	return match(g.States[i].Succ, g.States[j].Succ) &&
		match(g.States[i].Pred, g.States[j].Pred)
}

// addSymmetryClauses restricts each interchangeable pair (i, j) to
// label(i) ≤ label(j) in the (v1, v0) 2-bit order via lex-leader
// clauses, so the solver never enumerates both members of a swap
// orbit. Returns the number of pairs broken and clauses added.
func addSymmetryClauses(s *sat.Portfolio, vars []labelVars, pairs [][2]int) (int, int) {
	clauses := 0
	for _, p := range pairs {
		a, b := vars[p[0]], vars[p[1]]
		a1, a0 := sat.Lit(a.v1), sat.Lit(a.v0)
		b1, b0 := sat.Lit(b.v1), sat.Lit(b.v0)
		s.AddClause(a1.Neg(), b1)
		s.AddClause(a1.Neg(), b1.Neg(), a0.Neg(), b0)
		s.AddClause(a1, b1, a0.Neg(), b0)
		clauses += 3
	}
	return len(pairs), clauses
}

// conflict is one separation problem for the inserted signal: the states
// of a violating excitation region (or one half of a CSC clash) versus
// the witness states the region's cube must be kept away from.
type conflict struct {
	er    []int
	wit   []int
	label string
}

// mcConflicts derives conflicts from the MC violations of a report.
func mcConflicts(g *sg.Graph, rep *core.Report) []conflict {
	var out []conflict
	for _, v := range rep.Violations() {
		out = append(out, conflict{er: v.ER.States, wit: v.States, label: g.ERLabel(v.ER)})
	}
	return out
}

// cscConflicts derives conflicts from CSC violations: each clashing
// state pair must end up with different codes.
func cscConflicts(g *sg.Graph) []conflict {
	var out []conflict
	for _, v := range g.CSCViolations() {
		out = append(out, conflict{
			er:    []int{v.A},
			wit:   []int{v.B},
			label: fmt.Sprintf("CSC(s%d,s%d)", v.A, v.B),
		})
	}
	return out
}

// assumptionsFor renders one strategy's seeding constraints on a
// conflict as assumption literals over the label variables — the
// assumption-scoped equivalent of the unit-clause seeds that used to
// force a CNF rebuild per conflict×strategy pair. Every strategy seed
// is a conjunction of literals: a seeded state is pinned either to a
// single label (both variables) or to a half of the label cycle that
// one variable polarity captures exactly ({0, down} ↔ ¬v0 and
// {1, down} ↔ v1 under the (v1, v0) encoding).
func assumptionsFor(strat Strategy, c conflict, vars []labelVars) []sat.Lit {
	switch strat {
	case TriggerStrategy:
		// ER states labelled "up": (¬v1, v0).
		out := make([]sat.Lit, 0, 2*len(c.er))
		for _, s := range c.er {
			out = append(out, sat.Lit(-vars[s].v1), sat.Lit(vars[s].v0))
		}
		return out
	case SeparateHigh, PackHigh:
		return separationAssumptions(vars, c, false)
	case SeparateLow, PackLow:
		return separationAssumptions(vars, c, true)
	default: // Free: pure enumeration.
		return nil
	}
}

// separationAssumptions renders one conflict's separate-low (or
// separate-high) seeds as assumption literals: region states pinned to
// the base label, witnesses pinned to the opposite half of the label
// cycle. Low polarity: region = 0 (¬v1 ∧ ¬v0), witnesses ∈ {1, down}
// (v1). High polarity: region = 1 (v1 ∧ v0), witnesses ∈ {0, down}
// (¬v0).
func separationAssumptions(vars []labelVars, c conflict, low bool) []sat.Lit {
	var out []sat.Lit
	for _, s := range c.er {
		if low {
			out = append(out, sat.Lit(-vars[s].v1), sat.Lit(-vars[s].v0))
		} else {
			out = append(out, sat.Lit(vars[s].v1), sat.Lit(vars[s].v0))
		}
	}
	for _, s := range c.wit {
		if low {
			out = append(out, sat.Lit(vars[s].v1))
		} else {
			out = append(out, sat.Lit(-vars[s].v0))
		}
	}
	return out
}

// Repair inserts state signals until the graph satisfies the target
// property (Monotonous Cover by default, Complete State Coding with
// TargetCSC). The input graph must be output semi-modular.
func Repair(g *sg.Graph, opts Options) (*Result, error) {
	opts.fill()
	trace := opts.Trace
	if trace == nil {
		trace = func(string) {}
	}
	if !g.OutputSemiModular() {
		return nil, fmt.Errorf("encode: graph is not output semi-modular; no SI implementation exists")
	}
	targetName := "MC"
	score := func(g2 *sg.Graph, rep *core.Report) int { return len(rep.Violations()) }
	conflictsOf := mcConflicts
	if opts.Target == TargetCSC {
		targetName = "CSC"
		score = func(g2 *sg.Graph, rep *core.Report) int { return len(g2.CSCViolations()) }
		conflictsOf = func(g2 *sg.Graph, rep *core.Report) []conflict { return cscConflicts(g2) }
	}

	res := &Result{G: g}
	var carried [][]sat.Lit // remapped learnt clauses from the previous round
	for round := 0; ; round++ {
		rsp := obs.Start("repair.round", obs.A("round", round), obs.A("spec", g.Name))
		rep := core.NewAnalyzerN(res.G, opts.Workers).CheckGraph()
		res.Report = rep
		if score(res.G, rep) == 0 {
			trace(fmt.Sprintf("round %d: %s satisfied", round, targetName))
			rsp.SetAttr("satisfied", true)
			rsp.End()
			publishRepair(res, round)
			return res, nil
		}
		if round >= opts.MaxSignals {
			rsp.End()
			publishRepair(res, round)
			return nil, fmt.Errorf("encode: %s still violated after inserting %d signals:\n%s",
				targetName, len(res.Added), rep)
		}
		confl := conflictsOf(res.G, rep)
		rsp.SetAttr("conflicts", len(confl))
		trace(fmt.Sprintf("round %d: %d conflicts", round, len(confl)))
		obs.Info("repair round", "spec", g.Name, "round", round, "conflicts", len(confl))
		if obs.SinksEnabled() {
			obs.Publish("repair_round", g.Name, "round", round, "conflicts", len(confl))
		}
		for _, c := range confl {
			trace("  " + c.label)
		}
		name := freshSignalName(res.G, len(res.Added))

		cur := score(res.G, rep)
		// Signals violating in the current graph, plus the inserted
		// signal itself, are where a candidate's residual violations
		// cluster — scanning them first lets budgeted scoring abandon
		// bad candidates after a couple of signals.
		var hot []string
		hotSeen := map[int]bool{}
		for i := range rep.Results {
			if r := &rep.Results[i]; r.Violation != nil && !hotSeen[r.Signal] {
				hotSeen[r.Signal] = true
				hot = append(hot, res.G.Signals[r.Signal])
			}
		}
		hot = append(hot, name)
		search := newRoundSearch(res.G, name, opts, hot, confl)
		if len(carried) > 0 {
			// Rehydrate: the previous round's learnt clauses, remapped
			// onto this round's variables, re-certified against this
			// round's own formula by reverse unit propagation. Clauses
			// the new formula does not entail are dropped at the door,
			// so carrying is a pure accelerator.
			kept, _ := search.solver.ImportLearnts(carried)
			res.Carried += len(carried)
			res.CarriedKept += kept
			trace(fmt.Sprintf("round %d: carried %d learnt clauses, %d certified", round, len(carried), kept))
		}
		best, bestScore, bestStrat := (*sg.Graph)(nil), cur, Free
		var bestLabels []Label
		sweep := func() {
			for _, c := range confl {
				for _, strat := range opts.Strategies {
					g2, labels, count := search.tryInsert(c, confl, strat, cur)
					better := g2 != nil && (count < bestScore || best == nil ||
						(count == bestScore && g2.NumStates() < best.NumStates()))
					if g2 != nil && better {
						best, bestLabels, bestScore, bestStrat = g2, labels, count, strat
						trace(fmt.Sprintf("  %s via %s: %d conflicts left (%d states)",
							c.label, strat, count, g2.NumStates()))
						if count == 0 {
							break
						}
					}
				}
				if bestScore == 0 {
					break
				}
			}
		}
		sweep()
		switch {
		case best == nil:
			// The fast sweep's stall cutoff found nothing. Before declaring
			// the round unrepairable, sweep again without the cutoff or the
			// per-pair model cap: global blocking means the rescue pass
			// resumes each pair's enumeration exactly where the fast pass
			// abandoned it, so no candidate is scored twice. The trigger is
			// itself deterministic, so the two-tier search stays
			// reproducible at any worker count.
			search.noStall, search.uncap = true, true
			trace(fmt.Sprintf("round %d: fast sweep stalled, rescanning exhaustively", round))
			sweep()
		case bestScore > 0 && search.models < smallRound:
			// The fast sweep was cheap (the label space is nearly
			// exhausted at a handful of models per pair) yet no candidate
			// reached zero conflicts. On instances this small the stall
			// cutoff saves nothing but can cost real quality — the paper's
			// single-signal repairs hide past the cutoff horizon — so
			// finish the enumeration under the ordinary model cap.
			search.noStall = true
			trace(fmt.Sprintf("round %d: small round (%d models), rescanning without cutoff", round, search.models))
			sweep()
		}
		res.Models += search.models
		res.Candidates += search.candidates
		res.Deduped += search.deduped
		res.Pruned += search.pruned
		res.SymmetryPairs += search.symPairs
		res.SymmetryClauses += search.symClauses
		res.SAT.Add(search.solver.Stats())
		res.Portfolio.Add(search.solver.PStats())
		if best == nil {
			rsp.End()
			publishRepair(res, round)
			return nil, fmt.Errorf("encode: no insertion reduces the %d %s conflicts of %s",
				len(confl), targetName, res.G.Name)
		}
		carried = nil
		if !opts.DisableLearntCarry {
			carried = search.carryOut(bestLabels, name)
		}
		res.G = best
		res.Added = append(res.Added, name)
		res.Strategy = append(res.Strategy, bestStrat)
		rsp.SetAttr("inserted", name)
		rsp.SetAttr("strategy", bestStrat.String())
		rsp.End()
	}
}

// Cross-round carry caps: only short, low-LBD clauses are worth
// remapping and re-certifying against the grown formula.
const (
	carryMaxLen = 10
	carryMaxLBD = 8
	carryMax    = 1024
)

// carryOut exports the round's learnt knowledge and remaps it onto the
// variable space of the NEXT round, whose CNF is built over the chosen
// expansion: old state s maps to label variables (2s+1, 2s+2), its
// unique image i in the expanded graph to (2i+1, 2i+2). Clauses
// touching split states, auxiliary variables, or round-local blocking
// knowledge that does not survive the remap are dropped here; whatever
// the next formula does not entail is dropped by its own import
// certification.
func (rs *roundSearch) carryOut(labels []Label, name string) [][]sat.Lit {
	if labels == nil {
		return nil
	}
	_, images, err := expand(rs.g, labels, name)
	if err != nil {
		return nil
	}
	exported := rs.solver.ExportLearnts(carryMaxLen, carryMaxLBD, carryMax)
	maxVar := 2 * rs.g.NumStates()
	out := make([][]sat.Lit, 0, len(exported))
next:
	for _, cl := range exported {
		mapped := make([]sat.Lit, len(cl))
		for i, l := range cl {
			v := l.Var()
			if v > maxVar {
				continue next // auxiliary up/down variable
			}
			state := (v - 1) / 2
			img := images[state]
			if img < 0 {
				continue next // split state: no unique counterpart
			}
			nv := 2*img + 1 + (v-1)%2
			if l.Sign() {
				mapped[i] = sat.Lit(nv)
			} else {
				mapped[i] = sat.Lit(-nv)
			}
		}
		out = append(out, mapped)
	}
	return out
}

// publishRepair reports one repair run's tallies to the observability
// layer (a no-op without an enabled observer).
func publishRepair(res *Result, rounds int) {
	o := obs.Get()
	if o == nil {
		return
	}
	m := o.Metrics
	m.Counter("encode_rounds_total").Add(int64(rounds))
	m.Counter("encode_inserted_signals_total").Add(int64(len(res.Added)))
	m.Counter("encode_models_total").Add(int64(res.Models))
	m.Counter("encode_candidates_total").Add(int64(res.Candidates))
	m.Counter("encode_candidates_deduped_total").Add(int64(res.Deduped))
	m.Counter("encode_candidates_pruned_total").Add(int64(res.Pruned))
	m.Counter("encode_learnts_carried_total").Add(int64(res.Carried))
	m.Counter("encode_learnts_carried_kept_total").Add(int64(res.CarriedKept))
	m.Counter("encode_symmetry_pairs_total").Add(int64(res.SymmetryPairs))
	m.Counter("encode_symmetry_clauses_total").Add(int64(res.SymmetryClauses))
	obs.Publish("repair_done", res.G.Name,
		"rounds", rounds, "added", len(res.Added),
		"models", res.Models, "candidates", res.Candidates)
	publishSAT(res)
}

// publishSAT reports the run's SAT search statistics, aggregated over
// every round and every portfolio member — a single round can race
// several solvers, and a run spans several rounds, so per-solver
// snapshots would systematically under-count (a no-op without an
// enabled observer).
func publishSAT(res *Result) {
	o := obs.Get()
	if o == nil {
		return
	}
	m := o.Metrics
	m.Counter("sat_decisions_total").Add(res.SAT.Decisions)
	m.Counter("sat_propagations_total").Add(res.SAT.Propagations)
	m.Counter("sat_conflicts_total").Add(res.SAT.Conflicts)
	m.Counter("sat_restarts_total").Add(res.SAT.Restarts)
	ps := res.Portfolio
	m.Counter("sat_portfolio_queries_total").Add(ps.Queries)
	m.Counter("sat_portfolio_escalated_total").Add(ps.Escalated)
	m.Counter("sat_portfolio_epochs_total").Add(ps.Epochs)
	m.Counter("sat_learnts_exchanged_total").Add(ps.Exchanged)
	m.Counter("sat_learnts_import_kept_total").Add(ps.ImpKept)
	m.Counter("sat_learnts_import_dropped_total").Add(ps.ImpDropped)
	names := make([]string, 0, len(ps.Wins))
	for name := range ps.Wins { //reprolint:ordered keys are sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m.Counter("sat_portfolio_wins_total", "config", name).Add(ps.Wins[name])
	}
	obs.Publish("sat_stats", res.G.Name,
		"decisions", res.SAT.Decisions, "conflicts", res.SAT.Conflicts,
		"propagations", res.SAT.Propagations, "restarts", res.SAT.Restarts,
		"portfolio_queries", ps.Queries, "learnts_exchanged", ps.Exchanged)
}

// freshSignalName picks a state-signal name not colliding with any
// existing signal of the graph (the specification may itself use names
// like x1).
func freshSignalName(g *sg.Graph, k int) string {
	for i := k; ; i++ {
		name := fmt.Sprintf("x%d", i)
		if g.SignalIndex(name) < 0 {
			return name
		}
		// Fall back to a distinct prefix when the x-namespace is taken.
		name = fmt.Sprintf("csc%d", i)
		if g.SignalIndex(name) < 0 {
			return name
		}
	}
}

// scoreChunkMax caps the number of unique candidate labellings
// enumerated between scoring fan-outs. Chunks follow the progressive
// schedule 1, 2, 4, 8, 16, 16, … (chunkSize): the first candidates are
// scored almost immediately, so the incumbent — and with it the
// branch-and-bound budget every later candidate is scored under —
// tightens as early as possible. The schedule is a fixed function of
// the chunk index — NOT of the worker count — so sequential and
// parallel runs enumerate exactly the same models, prune with exactly
// the same budgets, and select byte-identical candidates.
const scoreChunkMax = 16

func chunkSize(idx int) int {
	if idx < 4 {
		return 1 << uint(idx)
	}
	return scoreChunkMax
}

// stallWindow stops a pair's enumeration after this many consecutively
// scored unique candidates without an improvement of the incumbent.
// Like the chunk schedule it is a pure function of the canonical model
// sequence, so the cutoff is identical at every worker count.
const stallWindow = 8

// smallRound is the fast-sweep model count below which a round that
// failed to reach zero conflicts is re-swept without the stall cutoff:
// an instance whose whole round enumerates this few labellings is cheap
// to finish exhaustively, and on such instances the cutoff is the only
// thing standing between the search and the paper's minimal insertions.
const smallRound = 200

// roundSearch is the candidate-evaluation engine of one repair round.
// It owns the round's SAT portfolio (built once from the graph;
// per-strategy seeds are assumptions, so learned clauses carry across
// every conflict and strategy of the round), the mirror-canonical
// seen-set that dedupes equivalent label vectors across strategies,
// and the pruning tallies.
type roundSearch struct {
	g    *sg.Graph
	name string
	opts Options

	solver    *sat.Portfolio
	vars      []labelVars
	blockVars []int
	seen      map[string]struct{} // canonical label-vector keys scored this round
	hot       []string            // scan-first signals for budgeted scoring

	models     int // SAT models enumerated
	candidates int // unique label vectors expanded and scored
	deduped    int // models skipped by the mirror-canonical seen-set
	pruned     int // candidates abandoned at the scoring budget

	symPairs   int // interchangeable state pairs broken
	symClauses int // lex-leader clauses added

	// noStall disables the stall cutoff for a rescue sweep; uncap
	// additionally lifts the per-pair model cap for the exhaustive
	// rescue of a round whose fast sweep found no candidate at all.
	noStall bool
	uncap   bool

	// scratch holds one set of reusable expansion buffers per chunk
	// slot: slot i is touched only by the worker scoring chunk item i,
	// and a chunk never exceeds scoreChunkMax candidates. Graphs kept
	// beyond a chunk's reduction are detached from their slot first.
	scratch [scoreChunkMax]expandScratch
}

func newRoundSearch(g *sg.Graph, name string, opts Options, hot []string, confl []conflict) *roundSearch {
	solver := sat.NewPortfolio(sat.DefaultConfigs(opts.portfolioWidth()), opts.Workers)
	vars := buildCNF(solver, g)
	pairs, clauses := addSymmetryClauses(solver, vars, interchangeablePairs(g, confl))
	blockVars := make([]int, 0, 2*len(vars))
	for _, lv := range vars {
		blockVars = append(blockVars, lv.v1, lv.v0)
	}
	return &roundSearch{
		g: g, name: name, opts: opts,
		solver: solver, vars: vars, blockVars: blockVars,
		seen: make(map[string]struct{}), hot: hot,
		symPairs: pairs, symClauses: clauses,
	}
}

// canonicalKey returns the lexicographically smaller of a label
// vector's key and its mirror's key. The mirror labelling — 0↔1,
// up↔down — is always valid when the original is (the label cycle and
// its delayed edges map onto themselves), expands to an isomorphic
// graph with the inserted signal's polarity inverted, and scores
// identically; under the strict-improvement selection rule a mirror
// can therefore never displace its twin, so scoring one member of
// each mirror orbit is enough.
func canonicalKey(key []byte) string {
	mirror := make([]byte, len(key))
	for i, b := range key {
		mirror[i] = (b + 2) & 3 // L0↔L1, LR↔LF
	}
	if string(mirror) < string(key) {
		return string(mirror)
	}
	return string(key)
}

// scored is one candidate's verdict. A nil graph marks an invalid
// labelling (expansion error or lost output semi-modularity); pruned
// marks a count truncated at the branch-and-bound budget (the real
// count is at least the reported one).
type scored struct {
	g      *sg.Graph
	count  int
	pruned bool
}

// score expands one labelling and counts the remaining conflicts,
// abandoning the count at budget (candidates at or above the incumbent
// can never be selected, so their exact count is irrelevant). It runs
// on pool workers: everything it touches is either task-local or a
// read-only view of the round's graph. The scratch is owned by this
// call for its duration (one chunk slot, one worker); the returned
// graph aliases it and must be detached if it outlives the chunk.
func (rs *roundSearch) score(labels []Label, budget int, scr *expandScratch) scored {
	g2, _, err := expandInto(rs.g, labels, rs.name, scr)
	if err != nil {
		return scored{}
	}
	if !g2.OutputSemiModular() {
		return scored{}
	}
	if rs.opts.Target == TargetCSC {
		return scored{g: g2, count: len(g2.CSCViolations())}
	}
	var n int
	if rs.opts.SymbolicMC {
		n = core.NewAnalyzerLazy(g2).CountViolationsBudgetSymbolic(budget, rs.hot...)
	} else {
		n = core.NewAnalyzerLazy(g2).CountViolationsBudget(budget, rs.hot...)
	}
	return scored{g: g2, count: n, pruned: n >= budget}
}

// tryInsert enumerates labellings for one conflict and strategy,
// returning the expanded graph with the lowest remaining conflict
// count (only when strictly below the current score; ties broken
// towards smaller expansions), its labelling, and that count. Model
// enumeration stays serial on the round's shared portfolio — it is
// cheap next to scoring — while each chunk of unique models fans its
// Expand + semi-modularity + conflict-count scoring out over the
// worker pool. The reduction walks candidates in model order with
// budgets fixed at chunk boundaries, so the selection is deterministic
// regardless of worker count or completion order.
//
// Blocking is global: the canonical anchor enumerates each labelling
// of the round exactly once, whichever pair first reaches it, and
// later pairs' enumerations resume past everything already blocked
// instead of re-deriving (and re-blocking) the same models under a
// fresh selector. The seen-set still guards scoring — mirror twins
// arrive as distinct models but share a canonical key.
func (rs *roundSearch) tryInsert(c conflict, all []conflict, strat Strategy, target int) (*sg.Graph, []Label, int) {
	solver, vars := rs.solver, rs.vars
	assume := assumptionsFor(strat, c, vars)
	if strat == Free {
		// Mirror-orbit pin: every labelling or its mirror puts state 0
		// in {0, up} (¬v1), and the Free enumeration — whose empty seed
		// is mirror-symmetric — loses nothing by only visiting that
		// half of the space. Seeded strategies break the symmetry, so
		// only Free may pin.
		assume = append(assume, sat.Lit(-vars[0].v1))
	}

	// Each pair's search starts from virgin branching heuristics: saved
	// phases from a previous pair's enumeration would otherwise steer
	// the racers' early models into that pair's region of the label
	// space. The canonical anchor is unaffected — its answers never
	// depend on search state — and learned clauses are kept everywhere.
	solver.ResetSearch()

	// Packing strategies: greedily commit the separation constraints of
	// the other conflicts while the formula stays satisfiable, so one
	// signal repairs as many conflicts as possible.
	if strat == PackLow || strat == PackHigh {
		if !solver.Solve(assume...) {
			return nil, nil, target
		}
		for i := range all {
			c2 := all[i]
			if c2.label == c.label {
				continue
			}
			for _, low := range []bool{strat == PackLow, strat != PackLow} {
				cand := append(append([]sat.Lit(nil), assume...), separationAssumptions(vars, c2, low)...)
				if solver.Solve(cand...) {
					assume = cand
					break
				}
			}
		}
	}

	var best *sg.Graph
	var bestLabels []Label
	bestCount := target
	models, maxModels := 0, rs.opts.MaxModels
	exhausted, stop := false, false
	stall := 0
	window := stallWindow
	if rs.noStall {
		window = int(^uint(0) >> 1)
	}
	if rs.uncap {
		// Exhaustive rescue: press each pair's enumeration to exhaustion
		// before giving the round up.
		maxModels = int(^uint(0) >> 1)
	}
	for chunkIdx := 0; !stop && !exhausted && models < maxModels && stall < window; chunkIdx++ {
		// Enumerate the next chunk of unique label vectors. The chunk is
		// capped by the remaining stall allowance: a pair that has gone
		// window-1 candidates without improving may enumerate only one
		// more, not a full chunk, so the cutoff cannot overshoot.
		limit := chunkSize(chunkIdx)
		if rem := window - stall; rem < limit {
			limit = rem
		}
		var chunk [][]Label
		for models < maxModels && len(chunk) < limit {
			if !solver.Solve(assume...) {
				exhausted = true
				break
			}
			models++
			m := solver.Model()
			labels := make([]Label, len(vars))
			key := make([]byte, len(vars))
			for i, lv := range vars {
				labels[i] = labelOf(m, lv)
				key[i] = byte(labels[i])
			}
			if !solver.BlockModel(rs.blockVars...) {
				exhausted = true
			}
			ck := canonicalKey(key)
			if _, dup := rs.seen[ck]; dup {
				// A mirror twin of an already-scored labelling: its
				// orbit already speaks for it in this round's selection.
				rs.deduped++
				continue
			}
			rs.seen[ck] = struct{}{}
			chunk = append(chunk, labels)
		}
		if len(chunk) == 0 {
			continue
		}
		// Score the chunk in parallel. The budget is the incumbent at
		// the chunk boundary — deterministic, unlike a live-updated
		// incumbent, which would make pruning depend on completion
		// order. Truncated candidates have a true count above every
		// incumbent this chunk's reduction can reach, so they are
		// never selectable and the truncation is invisible to the
		// selection.
		budget := bestCount + 1
		scores := make([]scored, len(chunk))
		par.ForEachHook(len(chunk), rs.opts.Workers, func(i int) {
			scores[i] = rs.score(chunk[i], budget, &rs.scratch[i])
		}, obs.TaskHook("encode.score"))
		rs.candidates += len(chunk)
		chunkImproved := false
		for i, sc := range scores {
			improved := false
			if sc.g != nil {
				switch {
				case sc.pruned:
					rs.pruned++
				case sc.count >= budget:
					// Exact but not competitive (CSC scoring is never
					// truncated); above the chunk budget it can beat no
					// incumbent this reduction reaches.
				case sc.count < bestCount || (best != nil && sc.count == bestCount && sc.g.NumStates() < best.NumStates()):
					best, bestLabels, bestCount = sc.g, chunk[i], sc.count
					improved = true
					chunkImproved = true
				}
			}
			if improved {
				stall = 0
				if bestCount == 0 && best.NumStates() <= rs.g.NumStates()+2 {
					stop = true // minimal possible insertion footprint
					break
				}
			} else if sc.g != nil {
				// Only valid-but-uncompetitive candidates spend the stall
				// budget: invalid labellings fail in Expand long before
				// the conflict count runs, so they say nothing about
				// whether this pair's region is worth mining further.
				stall++
			}
		}
		if chunkImproved {
			// The incumbent aliases a chunk slot's scratch; detach it
			// before the next chunk's scoring overwrites the slot.
			best = detachGraph(best)
		}
	}
	rs.models += models
	return best, bestLabels, bestCount
}

// DescribeLabels renders a labelling for diagnostics.
func DescribeLabels(g *sg.Graph, labels []Label) string {
	var b strings.Builder
	byLabel := map[Label][]int{}
	for s, l := range labels {
		byLabel[l] = append(byLabel[l], s)
	}
	for _, l := range []Label{LR, L1, LF, L0} {
		states := byLabel[l]
		sort.Ints(states)
		fmt.Fprintf(&b, "%-4s:", l)
		for _, s := range states {
			fmt.Fprintf(&b, " s%d", s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
