package encode_test

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/netlist"
	"repro/internal/sg"
	"repro/internal/stg"
	"repro/internal/verify"
)

// stgBuild parses .g source and builds the state graph.
func stgBuild(src string) (*sg.Graph, error) {
	net, err := stg.Parse(src)
	if err != nil {
		return nil, err
	}
	return stg.BuildSG(net)
}

func TestExpandSimpleBuffer(t *testing.T) {
	// Handshake req/ack; insert x triggered with ack's rise: label
	// ER(+ack) up, QR(+ack) 1, ER(-ack) down, QR(-ack) 0.
	g := buildHandshake(t)
	labels := make([]encode.Label, g.NumStates())
	ack := g.SignalIndex("ack")
	for s := 0; s < g.NumStates(); s++ {
		switch {
		case g.Excited(s, ack) && !g.Value(s, ack):
			labels[s] = encode.LR
		case g.Excited(s, ack) && g.Value(s, ack):
			labels[s] = encode.LF
		case g.Value(s, ack):
			labels[s] = encode.L1
		default:
			labels[s] = encode.L0
		}
	}
	g2, err := encode.Expand(g, labels, "x")
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumSignals() != 3 {
		t.Fatalf("signals = %d", g2.NumSignals())
	}
	if err := g2.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if !g2.OutputSemiModular() {
		t.Fatal("expansion must preserve output semi-modularity")
	}
	// The up and down regions each split one state into two layers.
	if g2.NumStates() != g.NumStates()+2 {
		t.Fatalf("states = %d, want %d", g2.NumStates(), g.NumStates()+2)
	}
	x := g2.SignalIndex("x")
	if x < 0 || g2.Input[x] {
		t.Fatal("x must be a non-input signal")
	}
}

func buildHandshake(t *testing.T) *sg.Graph {
	t.Helper()
	g := &sg.Graph{Signals: []string{"req", "ack"}, Input: []bool{true, false}, Name: "hs"}
	s0 := g.AddState(0b00)
	s1 := g.AddState(0b01)
	s2 := g.AddState(0b11)
	s3 := g.AddState(0b10)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddEdge(s0, s1, 0, sg.Plus))
	must(g.AddEdge(s1, s2, 1, sg.Plus))
	must(g.AddEdge(s2, s3, 0, sg.Minus))
	must(g.AddEdge(s3, s0, 1, sg.Minus))
	return g
}

func TestExpandRejectsBadCycle(t *testing.T) {
	g := buildHandshake(t)
	labels := []encode.Label{encode.L0, encode.L1, encode.L0, encode.L0} // 0→1 jump
	if _, err := encode.Expand(g, labels, "x"); err == nil {
		t.Fatal("0→1 label jump must be rejected")
	}
}

func TestExpandRejectsDelayedInput(t *testing.T) {
	// req+ (an input) on the up→1 boundary must be rejected.
	g := buildHandshake(t)
	labels := []encode.Label{encode.LR, encode.L1, encode.LF, encode.L0}
	// s0 --req+(input)--> s1 crosses up→1: input properness violation.
	if _, err := encode.Expand(g, labels, "x"); err == nil {
		t.Fatal("delayed input transition must be rejected")
	}
}

func TestExpandDelaysOutputBoundary(t *testing.T) {
	// Label so the delayed boundary lies on ack (an output): up on s0
	// is wrong (req+ crosses); instead put up on s1 (ack+ delayed).
	g := buildHandshake(t)
	labels := []encode.Label{encode.L0, encode.LR, encode.L1, encode.LF}
	// Check boundary edges: s1 --ack+--> s2 is up→1 (ack is output, OK);
	// s3 --ack---> s0 is down→0 (OK).
	g2, err := encode.Expand(g, labels, "x")
	if err != nil {
		t.Fatal(err)
	}
	// In G′, ack+ fires only after x+: x+ must be a trigger of ack+.
	a := core.NewAnalyzer(g2)
	ack := g2.SignalIndex("ack")
	x := g2.SignalIndex("x")
	for _, er := range a.Regs[ack].ER {
		if er.Dir != sg.Plus {
			continue
		}
		trigs := g2.Triggers(er)
		foundX := false
		for _, tr := range trigs {
			if tr.Signal == x {
				foundX = true
			}
		}
		if !foundX {
			t.Fatal("x+ must trigger ack+ in the expanded graph")
		}
	}
}

func repairAndVerify(t *testing.T, g *sg.Graph, maxAdded int) *encode.Result {
	t.Helper()
	res, err := encode.Repair(g, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) > maxAdded {
		t.Fatalf("inserted %d signals, expected at most %d", len(res.Added), maxAdded)
	}
	if !res.Report.Satisfied() {
		t.Fatalf("MC not satisfied after repair:\n%s", res.Report)
	}
	// Theorem 4 / Corollary 1 on the transformed graph.
	if !res.G.CSC() {
		t.Error("repaired graph must satisfy CSC (Theorem 4)")
	}
	// End-to-end Theorem 3: build both standard implementations and
	// verify speed-independence against the transformed specification.
	fns := map[int]netlist.SR{}
	for sig := range res.G.Signals {
		if res.G.Input[sig] {
			continue
		}
		set, reset, err := res.Report.ExcitationFunctions(sig)
		if err != nil {
			t.Fatal(err)
		}
		fns[sig] = netlist.SR{Set: set, Reset: reset}
	}
	for _, rs := range []bool{false, true} {
		nl, err := netlist.Build(res.G, fns, netlist.Options{RS: rs})
		if err != nil {
			t.Fatal(err)
		}
		vres := verify.Check(nl, res.G)
		if !vres.OK() {
			t.Fatalf("rs=%v: Theorem 3 violated — implementation not SI:\n%s\n%s", rs, vres, nl)
		}
	}
	return res
}

func TestRepairFig4OneSignal(t *testing.T) {
	// Example 2: "MC requirement easily recognizes this situation and
	// can remove the hazard by adding one signal."
	g := benchdata.Fig4SG()
	res := repairAndVerify(t, g, 1)
	if len(res.Added) != 1 {
		t.Fatalf("Fig4 repair should add exactly 1 signal, added %v", res.Added)
	}
}

func TestRepairFig1(t *testing.T) {
	// Example 1: one added signal suffices ("it is sufficient to add
	// only one signal x"). Allow up to 2 in case the search picks a
	// less economical but still valid decomposition.
	g := benchdata.Fig1SG()
	res := repairAndVerify(t, g, 2)
	t.Logf("Fig1 repair: added %v via %v, %d models examined",
		res.Added, res.Strategy, res.Models)
}

func TestRepairNoOpOnSatisfiedGraph(t *testing.T) {
	g := buildHandshake(t)
	res, err := encode.Repair(g, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 0 {
		t.Fatalf("no signal needed, added %v", res.Added)
	}
	if res.G != g {
		t.Fatal("graph must be unchanged")
	}
}

func TestRepairTargetCSCIsWeaker(t *testing.T) {
	// Figure 1 already satisfies CSC (its codes are even unique), so
	// CSC-targeted repair inserts nothing — yet the paper's equations
	// (1) show the basic-gate implementation is hazardous, and MC repair
	// needs a signal. This is the gap between CSC (enough for complex
	// gates, Chu) and MC (needed for basic gates, this paper).
	g := benchdata.Fig1SG()
	resCSC, err := encode.Repair(g, encode.Options{Target: encode.TargetCSC})
	if err != nil {
		t.Fatal(err)
	}
	if len(resCSC.Added) != 0 {
		t.Fatalf("Fig1 satisfies CSC; CSC repair added %v", resCSC.Added)
	}
	resMC, err := encode.Repair(g, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resMC.Added) == 0 {
		t.Fatal("MC repair must insert at least one signal")
	}
}

func TestRepairTargetCSCFixesDelement(t *testing.T) {
	// The D-element's conflict is a genuine CSC violation: CSC repair
	// needs one signal, like MC repair.
	e, _ := benchdata.Table1ByName("Delement")
	g, err := stgBuild(e.Source)
	if err != nil {
		t.Fatal(err)
	}
	res, err := encode.Repair(g, encode.Options{Target: encode.TargetCSC})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Added) != 1 {
		t.Fatalf("CSC repair added %v, want 1 signal", res.Added)
	}
	if !res.G.CSC() {
		t.Fatal("result must satisfy CSC")
	}
}

func TestRepairAvoidsSignalNameCollisions(t *testing.T) {
	// Regression: the 3-way selector's outputs are named x1..x3; the
	// inserted state signals used to be named x0, x1, ... and the second
	// one collided with output x1, silently corrupting the by-name
	// signal correspondence (caught by the bisimulation check).
	g, err := stgBuild(benchdata.GenSelectorRing(3).Format())
	if err != nil {
		t.Fatal(err)
	}
	res, err := encode.Repair(g, encode.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, name := range res.G.Signals {
		if seen[name] {
			t.Fatalf("duplicate signal name %q after repair", name)
		}
		seen[name] = true
	}
	if err := sg.WeaklyBisimilar(g, res.G); err != nil {
		t.Fatalf("repair changed visible behaviour: %v", err)
	}
}

func TestExpandRejectsDuplicateName(t *testing.T) {
	g := buildHandshake(t)
	labels := []encode.Label{encode.L0, encode.LR, encode.L1, encode.LF}
	if _, err := encode.Expand(g, labels, "ack"); err == nil {
		t.Fatal("existing signal name must be rejected")
	}
}

func TestRepairRejectsNonOutputSemiModular(t *testing.T) {
	// Output c disabled by input a: no SI implementation exists.
	g := &sg.Graph{Signals: []string{"a", "c"}, Input: []bool{true, false}}
	w := g.AddState(0b00)
	u := g.AddState(0b01)
	x := g.AddState(0b10)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddEdge(w, u, 0, sg.Plus))
	must(g.AddEdge(w, x, 1, sg.Plus))
	if _, err := encode.Repair(g, encode.Options{}); err == nil {
		t.Fatal("non-output-semi-modular graph must be rejected")
	}
}

func TestDescribeLabels(t *testing.T) {
	g := buildHandshake(t)
	labels := []encode.Label{encode.L0, encode.LR, encode.L1, encode.LF}
	s := encode.DescribeLabels(g, labels)
	if s == "" {
		t.Fatal("empty description")
	}
}

func TestLabelStrings(t *testing.T) {
	want := map[encode.Label]string{
		encode.L0: "0", encode.LR: "up", encode.L1: "1", encode.LF: "down",
	}
	for l, w := range want {
		if l.String() != w {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), w)
		}
	}
}
