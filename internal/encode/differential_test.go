package encode_test

import (
	"reflect"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/encode"
	"repro/internal/netlist"
	"repro/internal/stg"
)

// netlistOf builds the standard C-implementation from a repair result,
// so two repair runs can be compared down to the gate level.
func netlistOf(t *testing.T, res *encode.Result) string {
	t.Helper()
	fns := map[int]netlist.SR{}
	for sig := range res.G.Signals {
		if res.G.Input[sig] {
			continue
		}
		set, reset, err := res.Report.ExcitationFunctions(sig)
		if err != nil {
			t.Fatal(err)
		}
		fns[sig] = netlist.SR{Set: set, Reset: reset}
	}
	nl, err := netlist.Build(res.G, fns, netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return nl.String()
}

// TestRepairParallelSequentialIdentical pins the determinism contract
// of the candidate-search engine: chunked enumeration with budgets
// frozen at chunk boundaries and an in-order reduction make the
// parallel search select byte-identical results to the sequential one
// — same inserted signals, same strategies, same model tallies, and
// gate-identical netlists — across every Table-1 specification.
func TestRepairParallelSequentialIdentical(t *testing.T) {
	for _, e := range benchdata.Table1 {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			net, err := stg.Parse(e.Source)
			if err != nil {
				t.Fatal(err)
			}
			g, err := stg.BuildSG(net)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := encode.Repair(g, encode.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := encode.Repair(g, encode.Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.Added, par.Added) {
				t.Errorf("added signals diverge: seq=%v par=%v", seq.Added, par.Added)
			}
			if !reflect.DeepEqual(seq.Strategy, par.Strategy) {
				t.Errorf("strategies diverge: seq=%v par=%v", seq.Strategy, par.Strategy)
			}
			if seq.Models != par.Models || seq.Candidates != par.Candidates ||
				seq.Deduped != par.Deduped || seq.Pruned != par.Pruned {
				t.Errorf("search tallies diverge: seq models=%d candidates=%d deduped=%d pruned=%d, par models=%d candidates=%d deduped=%d pruned=%d",
					seq.Models, seq.Candidates, seq.Deduped, seq.Pruned,
					par.Models, par.Candidates, par.Deduped, par.Pruned)
			}
			if len(seq.Added) == 0 {
				return // nothing inserted; netlists trivially agree
			}
			if sn, pn := netlistOf(t, seq), netlistOf(t, par); sn != pn {
				t.Errorf("netlists diverge:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", sn, pn)
			}
		})
	}
}

// TestRepairSymbolicExplicitIdentical pins the engine-abstraction
// contract on the repair loop: scoring candidates with the symbolic
// existence-only MC counter selects byte-identical results to the
// explicit scorer — same inserted signals, same strategies, same search
// tallies, gate-identical netlists — across every Table-1 specification.
func TestRepairSymbolicExplicitIdentical(t *testing.T) {
	for _, e := range benchdata.Table1 {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			net, err := stg.Parse(e.Source)
			if err != nil {
				t.Fatal(err)
			}
			g, err := stg.BuildSG(net)
			if err != nil {
				t.Fatal(err)
			}
			exp, err := encode.Repair(g, encode.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sym, err := encode.Repair(g, encode.Options{SymbolicMC: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(exp.Added, sym.Added) {
				t.Errorf("added signals diverge: explicit=%v symbolic=%v", exp.Added, sym.Added)
			}
			if !reflect.DeepEqual(exp.Strategy, sym.Strategy) {
				t.Errorf("strategies diverge: explicit=%v symbolic=%v", exp.Strategy, sym.Strategy)
			}
			if exp.Models != sym.Models || exp.Candidates != sym.Candidates ||
				exp.Deduped != sym.Deduped || exp.Pruned != sym.Pruned {
				t.Errorf("search tallies diverge: explicit models=%d candidates=%d deduped=%d pruned=%d, symbolic models=%d candidates=%d deduped=%d pruned=%d",
					exp.Models, exp.Candidates, exp.Deduped, exp.Pruned,
					sym.Models, sym.Candidates, sym.Deduped, sym.Pruned)
			}
			if len(exp.Added) == 0 {
				return // nothing inserted; netlists trivially agree
			}
			if en, sn := netlistOf(t, exp), netlistOf(t, sym); en != sn {
				t.Errorf("netlists diverge:\n--- explicit ---\n%s--- symbolic ---\n%s", en, sn)
			}
		})
	}
}
