package encode_test

import (
	"reflect"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/encode"
	"repro/internal/netlist"
	"repro/internal/stg"
)

// netlistOf builds the standard C-implementation from a repair result,
// so two repair runs can be compared down to the gate level.
func netlistOf(t *testing.T, res *encode.Result) string {
	t.Helper()
	fns := map[int]netlist.SR{}
	for sig := range res.G.Signals {
		if res.G.Input[sig] {
			continue
		}
		set, reset, err := res.Report.ExcitationFunctions(sig)
		if err != nil {
			t.Fatal(err)
		}
		fns[sig] = netlist.SR{Set: set, Reset: reset}
	}
	nl, err := netlist.Build(res.G, fns, netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return nl.String()
}

// TestRepairParallelSequentialIdentical pins the determinism contract
// of the candidate-search engine: chunked enumeration with budgets
// frozen at chunk boundaries and an in-order reduction make the
// parallel search select byte-identical results to the sequential one
// — same inserted signals, same strategies, same model tallies, and
// gate-identical netlists — across every Table-1 specification.
func TestRepairParallelSequentialIdentical(t *testing.T) {
	for _, e := range benchdata.Table1 {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			net, err := stg.Parse(e.Source)
			if err != nil {
				t.Fatal(err)
			}
			g, err := stg.BuildSG(net)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := encode.Repair(g, encode.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := encode.Repair(g, encode.Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq.Added, par.Added) {
				t.Errorf("added signals diverge: seq=%v par=%v", seq.Added, par.Added)
			}
			if !reflect.DeepEqual(seq.Strategy, par.Strategy) {
				t.Errorf("strategies diverge: seq=%v par=%v", seq.Strategy, par.Strategy)
			}
			if seq.Models != par.Models || seq.Candidates != par.Candidates ||
				seq.Deduped != par.Deduped || seq.Pruned != par.Pruned {
				t.Errorf("search tallies diverge: seq models=%d candidates=%d deduped=%d pruned=%d, par models=%d candidates=%d deduped=%d pruned=%d",
					seq.Models, seq.Candidates, seq.Deduped, seq.Pruned,
					par.Models, par.Candidates, par.Deduped, par.Pruned)
			}
			if len(seq.Added) == 0 {
				return // nothing inserted; netlists trivially agree
			}
			if sn, pn := netlistOf(t, seq), netlistOf(t, par); sn != pn {
				t.Errorf("netlists diverge:\n--- workers=1 ---\n%s--- workers=4 ---\n%s", sn, pn)
			}
		})
	}
}

// TestPortfolioDeterministic pins the portfolio contract: every model
// the portfolio answers comes from the canonical anchor, so the worker
// count and the portfolio width — 1, 4 or 8 racing configurations —
// must never change what repair inserts. All nine Table-1
// specifications are synthesized at the three widths and compared down
// to the gate level.
func TestPortfolioDeterministic(t *testing.T) {
	for _, e := range benchdata.Table1 {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			net, err := stg.Parse(e.Source)
			if err != nil {
				t.Fatal(err)
			}
			g, err := stg.BuildSG(net)
			if err != nil {
				t.Fatal(err)
			}
			var ref *encode.Result
			var refNet string
			for _, w := range []int{1, 4, 8} {
				res, err := encode.Repair(g, encode.Options{Workers: w, Portfolio: w})
				if err != nil {
					t.Fatal(err)
				}
				nl := ""
				if len(res.Added) > 0 {
					nl = netlistOf(t, res)
				}
				if ref == nil {
					ref, refNet = res, nl
					continue
				}
				if !reflect.DeepEqual(ref.Added, res.Added) {
					t.Errorf("workers=%d: added signals diverge: %v vs %v", w, ref.Added, res.Added)
				}
				if !reflect.DeepEqual(ref.Strategy, res.Strategy) {
					t.Errorf("workers=%d: strategies diverge: %v vs %v", w, ref.Strategy, res.Strategy)
				}
				if ref.Models != res.Models || ref.Candidates != res.Candidates {
					t.Errorf("workers=%d: search tallies diverge: models %d vs %d, candidates %d vs %d",
						w, ref.Models, res.Models, ref.Candidates, res.Candidates)
				}
				if refNet != nl {
					t.Errorf("workers=%d: netlists diverge:\n--- workers=1 ---\n%s--- workers=%d ---\n%s", w, refNet, w, nl)
				}
			}
		})
	}
}

// TestCrossRoundLearntsSound pins the carrying contract: clauses
// carried from one repair round to the next are re-certified against
// the grown formula by reverse unit propagation, so disabling the carry
// must yield the identical model enumeration — same insertions, same
// tallies, same gates — on every Table-1 specification.
func TestCrossRoundLearntsSound(t *testing.T) {
	for _, e := range benchdata.Table1 {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			net, err := stg.Parse(e.Source)
			if err != nil {
				t.Fatal(err)
			}
			g, err := stg.BuildSG(net)
			if err != nil {
				t.Fatal(err)
			}
			carry, err := encode.Repair(g, encode.Options{})
			if err != nil {
				t.Fatal(err)
			}
			plain, err := encode.Repair(g, encode.Options{DisableLearntCarry: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(carry.Added, plain.Added) {
				t.Errorf("added signals diverge: carry=%v plain=%v", carry.Added, plain.Added)
			}
			if !reflect.DeepEqual(carry.Strategy, plain.Strategy) {
				t.Errorf("strategies diverge: carry=%v plain=%v", carry.Strategy, plain.Strategy)
			}
			if carry.Models != plain.Models || carry.Candidates != plain.Candidates ||
				carry.Deduped != plain.Deduped || carry.Pruned != plain.Pruned {
				t.Errorf("search tallies diverge: carry models=%d candidates=%d deduped=%d pruned=%d, plain models=%d candidates=%d deduped=%d pruned=%d",
					carry.Models, carry.Candidates, carry.Deduped, carry.Pruned,
					plain.Models, plain.Candidates, plain.Deduped, plain.Pruned)
			}
			if plain.Carried != 0 || plain.CarriedKept != 0 {
				t.Errorf("carry disabled but tallies nonzero: carried=%d kept=%d", plain.Carried, plain.CarriedKept)
			}
			if len(carry.Added) > 1 && carry.Carried == 0 {
				t.Errorf("multi-round repair (%d insertions) carried no clauses", len(carry.Added))
			}
			if carry.CarriedKept > carry.Carried {
				t.Errorf("kept %d of %d carried clauses", carry.CarriedKept, carry.Carried)
			}
			if len(carry.Added) == 0 {
				return
			}
			if cn, pn := netlistOf(t, carry), netlistOf(t, plain); cn != pn {
				t.Errorf("netlists diverge:\n--- carry ---\n%s--- no carry ---\n%s", cn, pn)
			}
		})
	}
}

// TestRepairSymbolicExplicitIdentical pins the engine-abstraction
// contract on the repair loop: scoring candidates with the symbolic
// existence-only MC counter selects byte-identical results to the
// explicit scorer — same inserted signals, same strategies, same search
// tallies, gate-identical netlists — across every Table-1 specification.
func TestRepairSymbolicExplicitIdentical(t *testing.T) {
	for _, e := range benchdata.Table1 {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			net, err := stg.Parse(e.Source)
			if err != nil {
				t.Fatal(err)
			}
			g, err := stg.BuildSG(net)
			if err != nil {
				t.Fatal(err)
			}
			exp, err := encode.Repair(g, encode.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sym, err := encode.Repair(g, encode.Options{SymbolicMC: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(exp.Added, sym.Added) {
				t.Errorf("added signals diverge: explicit=%v symbolic=%v", exp.Added, sym.Added)
			}
			if !reflect.DeepEqual(exp.Strategy, sym.Strategy) {
				t.Errorf("strategies diverge: explicit=%v symbolic=%v", exp.Strategy, sym.Strategy)
			}
			if exp.Models != sym.Models || exp.Candidates != sym.Candidates ||
				exp.Deduped != sym.Deduped || exp.Pruned != sym.Pruned {
				t.Errorf("search tallies diverge: explicit models=%d candidates=%d deduped=%d pruned=%d, symbolic models=%d candidates=%d deduped=%d pruned=%d",
					exp.Models, exp.Candidates, exp.Deduped, exp.Pruned,
					sym.Models, sym.Candidates, sym.Deduped, sym.Pruned)
			}
			if len(exp.Added) == 0 {
				return // nothing inserted; netlists trivially agree
			}
			if en, sn := netlistOf(t, exp), netlistOf(t, sym); en != sn {
				t.Errorf("netlists diverge:\n--- explicit ---\n%s--- symbolic ---\n%s", en, sn)
			}
		})
	}
}
