package paper_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/paper"
)

func TestFig1(t *testing.T) {
	r := paper.RunFig1()
	if r.States != 14 {
		t.Errorf("states = %d, want 14", r.States)
	}
	if r.InputConflicts == 0 || r.InternalConflicts != 0 {
		t.Errorf("conflicts: input=%d internal=%d; the paper's only conflict is the input choice",
			r.InputConflicts, r.InternalConflicts)
	}
	if !r.OutputDistrib {
		t.Error("Fig1 is output distributive")
	}
	if r.Persistent {
		t.Error("Fig1 is not persistent (+a1 non-persistent to +d1)")
	}
	// ER(+d) splits into a 3-state and a 1-state region.
	if len(r.ERdPlusSizes) != 2 {
		t.Fatalf("ER(+d) regions = %v", r.ERdPlusSizes)
	}
	if r.UMinPlusD != "100*0*" {
		t.Errorf("u_min(+d1) = %q, want 100*0*", r.UMinPlusD)
	}
	if r.TriggerOfPlusD != "a+" {
		t.Errorf("trigger of +d1 = %q, want a+ (Lemma 2)", r.TriggerOfPlusD)
	}
	if r.MCViolations == 0 {
		t.Error("Fig1 must violate the MC requirement")
	}
}

func TestEq1Baseline(t *testing.T) {
	r, err := paper.RunEq1Baseline()
	if err != nil {
		t.Fatal(err)
	}
	// "two cubes … are required for the correct cover" of Sd.
	if r.SdCubes < 2 {
		t.Errorf("Sd = %s: the paper needs at least two cubes", r.Sd)
	}
	// "the method [2] fails to find the acknowledgement for both AND
	// gates": the implementation is hazardous.
	if !r.Hazardous {
		t.Error("equation-(1) baseline must be hazardous")
	}
	if len(r.HazardGates) == 0 {
		t.Error("expected hazard witnesses")
	}
}

func TestFig3Repair(t *testing.T) {
	r, err := paper.RunFig3()
	if err != nil {
		t.Fatal(err)
	}
	// "it is sufficient to add only one signal x"; our search may use a
	// second in unlucky decompositions, but must stay small.
	if len(r.Added) == 0 || len(r.Added) > 2 {
		t.Errorf("added %v, paper adds 1", r.Added)
	}
	// Figure 3 has 17 states; our insertion point may differ slightly,
	// but the expansion must stay in the same range.
	if r.FinalStates < 15 || r.FinalStates > 24 {
		t.Errorf("final states = %d, Figure 3 has 17", r.FinalStates)
	}
	if !r.Verified {
		t.Error("the repaired implementation must be speed-independent")
	}
	// "the reduction to MC form add[s] nearly nothing to the complexity
	// of implementation (compare to equations (1))": equations (2) have
	// 11 SOP literals; allow the same order of magnitude.
	if r.Stats.Literals > 2*11 {
		t.Errorf("repaired implementation has %d literals, equations (2) have 11:\n%s",
			r.Stats.Literals, r.Netlist)
	}
	// The paper's particular insertion makes d a wire of x (d = x). Our
	// search may pick a different valid insertion, so this is reported
	// but not required.
	t.Logf("fig3: added=%v states=%d dWire=%v stats=%s", r.Added, r.FinalStates, r.DWire, r.Stats)
}

func TestFig4(t *testing.T) {
	r, err := paper.RunFig4()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Persistent {
		t.Error("Fig4 is persistent")
	}
	if !r.CorrectCovers {
		t.Error("all cover cubes of b cover correctly (the point of Example 2)")
	}
	if r.ViolationKind != core.OutsideCFR {
		t.Errorf("violation kind = %v, want OutsideCFR", r.ViolationKind)
	}
	if !r.WitnessHit {
		t.Error("state 10*01 must witness the violation")
	}
	if !r.BaselineHazard {
		t.Error("the t = c'd, b = a + t style baseline must be hazardous")
	}
	if r.RepairAdded != 1 {
		t.Errorf("repair added %d signals, the paper adds 1", r.RepairAdded)
	}
	if !r.RepairVerified {
		t.Error("the repaired circuit must verify")
	}
	if !r.ComplexVerified {
		t.Error("the complex-gate reference must verify")
	}
}

func TestTable1(t *testing.T) {
	rows, err := paper.RunTable1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for _, r := range rows {
		if r.Added != r.PaperAdded {
			t.Errorf("%s: added %d state signals, paper reports %d",
				r.Name, r.Added, r.PaperAdded)
		}
		if !r.Verified {
			t.Errorf("%s: synthesized circuit failed verification", r.Name)
		}
		// The paper's examples complete "within a 5 minutes timeout
		// limit on a DEC 5000"; ours must be far inside that.
		if r.Elapsed > time.Minute {
			t.Errorf("%s: took %v", r.Name, r.Elapsed)
		}
	}
	out := paper.FormatTable1(rows)
	for _, want := range []string{"RESULTS OF MC-REDUCTION", "nak-pa.tim", "Delement.tim"} {
		if !strings.Contains(out, want) {
			t.Errorf("table rendering missing %q:\n%s", want, out)
		}
	}
	t.Logf("\n%s", out)
}
