package paper

import (
	"fmt"
	"strings"

	"repro/internal/benchdata"
	"repro/internal/encode"
	"repro/internal/netlist"
	"repro/internal/sg"
	"repro/internal/stg"
	"repro/internal/synth"
	"repro/internal/tech"
	"repro/internal/verify"
)

// BeyondResult aggregates the experiments that go beyond the paper's
// own evaluation but support its claims (see EXPERIMENTS.md).
type BeyondResult struct {
	// CSC vs MC repair-target ablation over {fig1, fig4, Delement}.
	CSCSignals, MCSignals int
	// Section-VI sharing on the fork spec.
	PrivateAnds, SharedAnds int
	// Fan-in-2 decomposition of berkel2: hazards found by the verifier.
	DecomposeHazards int
	// Explicit inverters on berkel2: untimed SI and the obligation
	// validation under d_inv < D_sn.
	InvertersUntimedSI bool
	InvertersValidated bool
	// Behaviour preservation: repairs checked weakly bisimilar.
	BisimChecked int
}

// RunBeyond executes the supporting experiments.
func RunBeyond() (BeyondResult, error) {
	var res BeyondResult

	// CSC vs MC.
	graphs := []func() *sg.Graph{
		benchdata.Fig1SG,
		benchdata.Fig4SG,
		func() *sg.Graph {
			e, _ := benchdata.Table1ByName("Delement")
			g, err := stg.BuildSG(e.STG())
			if err != nil {
				panic(err)
			}
			return g
		},
	}
	for _, mk := range graphs {
		r, err := encode.Repair(mk(), encode.Options{Target: encode.TargetCSC})
		if err != nil {
			return res, fmt.Errorf("csc repair: %w", err)
		}
		res.CSCSignals += len(r.Added)
		r, err = encode.Repair(mk(), encode.Options{})
		if err != nil {
			return res, fmt.Errorf("mc repair: %w", err)
		}
		res.MCSignals += len(r.Added)
		if err := sg.WeaklyBisimilar(mk(), r.G); err != nil {
			return res, fmt.Errorf("bisim: %w", err)
		}
		res.BisimChecked++
	}

	// Sharing.
	const forkSpec = `
.model fork
.inputs a b
.outputs y z
.graph
a+ y+ z+
b+ y+ z+
y+ a- b-
z+ a- b-
a- y- z-
b- y- z-
y- a+ b+
z- a+ b+
.marking { <y-,a+> <y-,b+> <z-,a+> <z-,b+> }
.end
`
	private, err := synth.FromSTGSource(forkSpec, synth.Options{})
	if err != nil {
		return res, err
	}
	shared, err := synth.FromSTGSource(forkSpec, synth.Options{Share: true})
	if err != nil {
		return res, err
	}
	res.PrivateAnds, res.SharedAnds = private.Stats.Ands, shared.Stats.Ands

	// Decomposition + inverters on berkel2.
	e, _ := benchdata.Table1ByName("berkel2")
	g, err := stg.BuildSG(e.STG())
	if err != nil {
		return res, err
	}
	rep, err := synth.FromGraph(g, synth.Options{SkipVerify: true})
	if err != nil {
		return res, err
	}
	d2, err := netlist.Decompose(rep.Netlist, 2)
	if err != nil {
		return res, err
	}
	res.DecomposeHazards = len(verify.Check(d2, rep.Final).Hazards)

	mres, err := tech.Map(rep.Netlist, rep.Final, tech.Library{ExplicitInverters: true})
	if err != nil {
		return res, err
	}
	res.InvertersUntimedSI = mres.UntimedSI
	res.InvertersValidated = tech.ValidateObligations(mres, rep.Final, 10) == nil
	return res, nil
}

// String renders the supporting-experiment summary.
func (r BeyondResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CSC vs MC repair (fig1+fig4+Delement): %d vs %d inserted signals\n",
		r.CSCSignals, r.MCSignals)
	fmt.Fprintf(&b, "Section-VI sharing on the fork: %d → %d AND gates\n",
		r.PrivateAnds, r.SharedAnds)
	fmt.Fprintf(&b, "fan-in-2 decomposition of berkel2: %d hazards (untimed)\n", r.DecomposeHazards)
	fmt.Fprintf(&b, "explicit inverters: untimed SI %v; d_inv<D_sn simulation clean %v\n",
		r.InvertersUntimedSI, r.InvertersValidated)
	fmt.Fprintf(&b, "insertion behaviour-preservation (weak bisimulation): %d/3 checked", r.BisimChecked)
	return b.String()
}
