// Package paper regenerates every figure and table of the paper's
// evaluation: the Figure-1 state-graph analysis, the equation-(1)
// Beerel–Meng-style baseline and its failure, the Figure-3 MC repair
// with the equations (2) implementation, the Figure-4 persistent-but-
// hazardous example, and Table 1 (MC-reduction results on the nine
// benchmarks). Each Run* function returns structured results consumed by
// the test suite, the experiment CLI and the benchmark harness;
// EXPERIMENTS.md records the paper-vs-measured comparison.
package paper

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sg"
	"repro/internal/synth"
	"repro/internal/verify"
)

// Fig1Result captures the Section-II analysis of the Figure-1 state
// graph.
type Fig1Result struct {
	G                 *sg.Graph
	States            int
	InputConflicts    int
	InternalConflicts int
	OutputDistrib     bool
	Persistent        bool
	ERdPlusSizes      []int  // sizes of the ER(+d) regions
	UMinPlusD         string // code string of u_min(+d1)
	TriggerOfPlusD    string // the only trigger signal of ER(+d,1)
	MCViolations      int
}

// RunFig1 reproduces the Figure-1 analysis.
func RunFig1() Fig1Result {
	g := benchdata.Fig1SG()
	res := Fig1Result{G: g, States: g.NumStates()}
	for _, c := range g.Conflicts() {
		if c.Internal {
			res.InternalConflicts++
		} else {
			res.InputConflicts++
		}
	}
	res.OutputDistrib = g.OutputDistributive()
	res.Persistent = g.Persistent()
	a := core.NewAnalyzer(g)
	d := g.SignalIndex("d")
	for _, er := range a.Regs[d].ER {
		if er.Dir == sg.Plus {
			res.ERdPlusSizes = append(res.ERdPlusSizes, len(er.States))
			if len(er.States) == 3 {
				res.UMinPlusD = g.CodeString(er.MinState())
				trigs := g.Triggers(er)
				if len(trigs) > 0 {
					res.TriggerOfPlusD = g.Signals[trigs[0].Signal] + trigs[0].Dir.String()
				}
			}
		}
	}
	res.MCViolations = len(a.CheckGraph().Violations())
	return res
}

// Eq1Result captures the equation-(1) style baseline on Figure 1 and its
// verification outcome.
type Eq1Result struct {
	Sd, Rd, Sc, Rc string // rendered covers
	SdCubes        int
	Hazardous      bool
	HazardGates    []string
}

// RunEq1Baseline synthesizes Figure 1 with the correct-cover baseline
// (the method of [2]) and verifies the circuit.
func RunEq1Baseline() (Eq1Result, error) {
	g := benchdata.Fig1SG()
	fns, err := baseline.SOP(g)
	if err != nil {
		return Eq1Result{}, err
	}
	d, c := g.SignalIndex("d"), g.SignalIndex("c")
	res := Eq1Result{
		Sd:      fns[d].Set.StringNamed(g.Signals),
		Rd:      fns[d].Reset.StringNamed(g.Signals),
		Sc:      fns[c].Set.StringNamed(g.Signals),
		Rc:      fns[c].Reset.StringNamed(g.Signals),
		SdCubes: fns[d].Set.Len(),
	}
	nl, err := netlist.Build(g, fns, netlist.Options{})
	if err != nil {
		return res, err
	}
	v := verify.Check(nl, g)
	res.Hazardous = !v.OK()
	for _, h := range v.Hazards {
		res.HazardGates = append(res.HazardGates, h.GateName)
	}
	return res, nil
}

// Fig3Result captures the Example-1 repair: the Figure-3 transformed
// graph and its equations-(2) style implementation.
type Fig3Result struct {
	Added       []string
	FinalStates int
	DWire       bool // d degenerates to a wire of the inserted signal
	SxCubes     int  // cubes of the inserted signal's up function
	Netlist     string
	Stats       netlist.Stats
	Verified    bool
}

// RunFig3 repairs Figure 1 and inspects the result.
func RunFig3() (Fig3Result, error) {
	rep, err := synth.FromGraph(benchdata.Fig1SG(), synth.Options{})
	if err != nil {
		return Fig3Result{}, err
	}
	res := Fig3Result{
		Added:       rep.AddedSignals,
		FinalStates: rep.Final.NumStates(),
		Netlist:     rep.Netlist.String(),
		Stats:       rep.Stats,
		Verified:    rep.Verify.OK(),
	}
	// d = x detection: d driven by a wire gate.
	d := rep.Final.SignalIndex("d")
	for _, gate := range rep.Netlist.Gates {
		if gate.Kind == netlist.Wire && rep.Netlist.Nets[gate.Out].Signal == d {
			res.DWire = true
		}
	}
	if len(rep.AddedSignals) > 0 {
		x := rep.Final.SignalIndex(rep.AddedSignals[0])
		set, _, err := rep.MC.ExcitationFunctions(x)
		if err == nil {
			res.SxCubes = set.Len()
		}
	}
	return res, nil
}

// Fig4Result captures Example 2: the persistent SG whose correct covers
// violate MC, the hazard of the naive implementation, and the repair.
type Fig4Result struct {
	Persistent      bool
	CorrectCovers   bool // all cover cubes of b cover correctly
	ViolationKind   core.ViolationKind
	WitnessHit      bool // the paper's state 10*01 witnesses the violation
	BaselineHazard  bool
	HazardGate      string
	RepairAdded     int
	RepairVerified  bool
	ComplexVerified bool // the complex-gate reference implementation is SI
}

// RunFig4 reproduces Example 2 end to end.
func RunFig4() (Fig4Result, error) {
	g := benchdata.Fig4SG()
	res := Fig4Result{Persistent: g.Persistent()}
	a := core.NewAnalyzer(g)
	b := g.SignalIndex("b")
	res.CorrectCovers = true
	for _, er := range a.Regs[b].ER {
		if a.CheckCorrectCover(er, a.CoverCube(er)) != nil {
			res.CorrectCovers = false
		}
	}
	viols := a.CheckGraph().Violations()
	if len(viols) > 0 {
		res.ViolationKind = viols[0].Kind
		wit := g.StateByCodeString("10*01")
		for _, s := range viols[0].States {
			if s == wit {
				res.WitnessHit = true
			}
		}
	}
	nl, err := baseline.Synthesize(g, netlist.Options{})
	if err != nil {
		return res, err
	}
	v := verify.Check(nl, g)
	res.BaselineHazard = !v.OK()
	if len(v.Hazards) > 0 {
		res.HazardGate = v.Hazards[0].GateName
	}
	rep, err := synth.FromGraph(g, synth.Options{})
	if err != nil {
		return res, err
	}
	res.RepairAdded = len(rep.AddedSignals)
	res.RepairVerified = rep.Verify.OK()
	cg, err := baseline.ComplexGate(g)
	if err != nil {
		return res, err
	}
	res.ComplexVerified = verify.Check(cg, g).OK()
	return res, nil
}

// Table1Row is one measured row of Table 1.
type Table1Row struct {
	Name        string
	Inputs      int
	Outputs     int
	PaperAdded  int
	Added       int
	SpecStates  int
	FinalStates int
	Verified    bool
	Elapsed     time.Duration
}

// RunTable1 synthesizes every Table-1 benchmark and returns the measured
// rows in the paper's order.
func RunTable1() ([]Table1Row, error) {
	var rows []Table1Row
	for _, e := range benchdata.Table1 {
		t0 := time.Now()
		rep, err := synth.FromSTG(e.STG(), synth.Options{})
		if err != nil {
			return rows, fmt.Errorf("%s: %w", e.Name, err)
		}
		rows = append(rows, Table1Row{
			Name:        e.Name,
			Inputs:      e.Inputs,
			Outputs:     e.Outputs,
			PaperAdded:  e.PaperAdded,
			Added:       len(rep.AddedSignals),
			SpecStates:  rep.Spec.NumStates(),
			FinalStates: rep.Final.NumStates(),
			Verified:    rep.Verify.OK(),
			Elapsed:     time.Since(t0),
		})
	}
	return rows, nil
}

// FormatTable1 renders measured rows next to the paper's column, in the
// paper's layout ("RESULTS OF MC-REDUCTION").
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("RESULTS OF MC-REDUCTION\n")
	fmt.Fprintf(&b, "%-16s %3s %4s %6s %6s %7s %4s %10s\n",
		"Example", "in", "out", "added", "paper", "states", "SI", "time")
	for _, r := range rows {
		si := "yes"
		if !r.Verified {
			si = "NO"
		}
		fmt.Fprintf(&b, "%-16s %3d %4d %6d %6d %3d→%-3d %4s %10v\n",
			r.Name+".tim", r.Inputs, r.Outputs, r.Added, r.PaperAdded,
			r.SpecStates, r.FinalStates, si, r.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}
