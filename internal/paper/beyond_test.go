package paper_test

import (
	"strings"
	"testing"

	"repro/internal/paper"
)

func TestBeyond(t *testing.T) {
	r, err := paper.RunBeyond()
	if err != nil {
		t.Fatal(err)
	}
	if r.CSCSignals >= r.MCSignals {
		t.Errorf("CSC repair (%d signals) must need fewer than MC (%d): Figure 1 separates them",
			r.CSCSignals, r.MCSignals)
	}
	if r.SharedAnds >= r.PrivateAnds {
		t.Errorf("sharing must save AND gates: %d vs %d", r.SharedAnds, r.PrivateAnds)
	}
	if r.DecomposeHazards == 0 {
		t.Error("fan-in-2 decomposition must hazard")
	}
	if r.InvertersUntimedSI {
		t.Error("explicit inverters must break untimed SI")
	}
	if !r.InvertersValidated {
		t.Error("the d_inv < D_sn constraint must validate in simulation")
	}
	if r.BisimChecked != 3 {
		t.Errorf("bisim checked on %d/3 repairs", r.BisimChecked)
	}
	if s := r.String(); !strings.Contains(s, "CSC vs MC") {
		t.Errorf("rendering: %s", s)
	}
}
