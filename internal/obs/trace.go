package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key-value span attribute.
type Attr struct {
	Key   string
	Value any
}

// A builds an attribute.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Tracer records spans against a fixed epoch. Start/End maintain an
// implicit current-span stack for the sequential pipeline goroutine;
// concurrent pool workers bypass the stack through Event, which lands
// complete events on per-worker lanes. All methods are safe for
// concurrent use and no-op on the nil tracer.
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	cur   *Span
	recs  []SpanRecord
	owner *Observer // notified of top-level span boundaries; may be nil
}

// NewTracer returns a tracer whose timestamps count from now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// SpanRecord is one finished span or event.
type SpanRecord struct {
	Name  string
	TID   int64
	Depth int           // nesting depth below a top-level span
	Start time.Duration // offset from the tracer epoch
	Dur   time.Duration
	Attrs []Attr
}

// Span is an in-flight traced interval. The nil span (what a disabled
// tracer returns) accepts SetAttr and End. SetAttr and End synchronize
// on a per-span mutex, and End snapshots the attributes into the
// record, so a span touched after its End (or from another goroutine)
// can never tear a record a concurrent trace reader — the live /trace
// endpoint, a mid-run Chrome-trace dump — is encoding.
type Span struct {
	t      *Tracer
	name   string
	parent *Span
	depth  int
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
}

// Start opens a span nested under the tracer's current span and makes
// the new span current.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{t: t, name: name, start: time.Now(), attrs: attrs}
	t.mu.Lock()
	sp.parent = t.cur
	if t.cur != nil {
		sp.depth = t.cur.depth + 1
	}
	t.cur = sp
	owner := t.owner
	t.mu.Unlock()
	if sp.depth == 0 && owner != nil {
		owner.stageStart(name, specAttr(attrs))
	}
	return sp
}

// SetAttr adds (or replaces) an attribute on an open span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End closes the span and appends its record. Ending out of order is
// tolerated: the current pointer only pops when the span is on top. The
// record owns a copy of the attributes — later SetAttr calls on the
// ended span cannot reach (and therefore cannot race with readers of)
// the finished record.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	s.mu.Unlock()
	t := s.t
	rec := SpanRecord{
		Name:  s.name,
		TID:   1,
		Depth: s.depth,
		Start: s.start.Sub(t.epoch),
		Dur:   end.Sub(s.start),
		Attrs: attrs,
	}
	t.mu.Lock()
	if t.cur == s {
		t.cur = s.parent
	}
	t.recs = append(t.recs, rec)
	owner := t.owner
	t.mu.Unlock()
	if s.depth == 0 && owner != nil {
		owner.stageEnd(&rec, specAttr(attrs))
	}
}

// Event records a complete interval directly, bypassing the span stack
// — the thread-safe path for concurrent pool workers (tid picks the
// trace lane).
func (t *Tracer) Event(name string, tid int64, start time.Time, d time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.recs = append(t.recs, SpanRecord{
		Name:  name,
		TID:   tid,
		Start: start.Sub(t.epoch),
		Dur:   d,
		Attrs: attrs,
	})
	t.mu.Unlock()
}

// Mark returns a cursor into the record stream; RecordsSince(mark)
// returns everything finished after it. Run reports use the pair to
// attribute spans to one spec.
func (t *Tracer) Mark() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// RecordsSince copies the records finished after mark.
func (t *Tracer) RecordsSince(mark int) []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if mark < 0 || mark > len(t.recs) {
		mark = len(t.recs)
	}
	return append([]SpanRecord(nil), t.recs[mark:]...)
}

// Records copies every finished record.
func (t *Tracer) Records() []SpanRecord { return t.RecordsSince(0) }

// chromeEvent is one trace_event entry (the subset of the format the
// Chrome/Perfetto loaders need).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders every finished record as Chrome trace_event
// JSON (complete "X" events plus thread-name metadata), loadable in
// about:tracing and Perfetto.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	recs := t.Records()
	tr := chromeTrace{DisplayTimeUnit: "ms"}
	tids := map[int64]bool{}
	for _, r := range recs {
		ev := chromeEvent{
			Name: r.Name,
			Cat:  "mcsyn",
			Ph:   "X",
			TS:   float64(r.Start.Nanoseconds()) / 1e3,
			Dur:  float64(r.Dur.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  r.TID,
		}
		if len(r.Attrs) > 0 {
			ev.Args = map[string]any{}
			for _, a := range r.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
		tids[r.TID] = true
	}
	lanes := make([]int64, 0, len(tids))
	for tid := range tids {
		lanes = append(lanes, tid)
	}
	sort.Slice(lanes, func(i, j int) bool { return lanes[i] < lanes[j] })
	for _, tid := range lanes {
		name := "pipeline"
		if tid >= 100 {
			name = "worker"
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  1,
			TID:  tid,
			Args: map[string]any{"name": name},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
