package obs

import (
	"encoding/json"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety exercises every entry point on the disabled (nil)
// observer: nothing may panic and nothing may record.
func TestNilSafety(t *testing.T) {
	Enable(nil)
	if Get() != nil {
		t.Fatal("Get() != nil after Enable(nil)")
	}
	sp := Start("stage")
	sp.SetAttr("k", 1)
	sp.End()
	Info("ignored", "k", 1)
	if h := TaskHook("pool"); h != nil {
		t.Fatal("TaskHook != nil while disabled")
	}

	var r *Registry
	r.Counter("c").Add(1)
	r.Gauge("g").Set(2)
	r.Histogram("h", nil).Observe(3)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot not nil")
	}

	var tr *Tracer
	tr.Start("x").End()
	tr.Event("e", 1, time.Now(), time.Second)
	if tr.Records() != nil {
		t.Fatal("nil tracer has records")
	}
	if err := tr.WriteChromeTrace(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	var o *Observer
	rep := o.BuildRunReport("spec", 0, nil)
	if rep.Spec != "spec" || len(rep.Stages) != 0 {
		t.Fatalf("nil observer report: %+v", rep)
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9][0-9.eE+-]*$`)

func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("stg_reach_states_total").Add(41)
	r.Counter("stg_reach_states_total").Add(1)
	r.Counter("par_tasks_total", "pool", "core.regions").Add(9)
	r.Gauge("par_pool_size", "pool", "core.regions").Set(4)
	h := r.Histogram("par_task_seconds", []float64{0.001, 0.01}, "pool", "core.regions")
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE stg_reach_states_total counter",
		"stg_reach_states_total 42",
		`par_tasks_total{pool="core.regions"} 9`,
		`par_pool_size{pool="core.regions"} 4`,
		`par_task_seconds_bucket{pool="core.regions",le="0.001"} 1`,
		`par_task_seconds_bucket{pool="core.regions",le="0.01"} 2`,
		`par_task_seconds_bucket{pool="core.regions",le="+Inf"} 3`,
		`par_task_seconds_count{pool="core.regions"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable sample line %q", line)
		}
	}

	snap := r.Snapshot()
	if snap["stg_reach_states_total"] != 42 {
		t.Errorf("snapshot counter = %v", snap["stg_reach_states_total"])
	}
	if snap[`par_task_seconds_count{pool="core.regions"}`] != 3 {
		t.Errorf("snapshot histogram count = %v", snap[`par_task_seconds_count{pool="core.regions"}`])
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Add(1)
				r.Histogram("h", nil).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestTracerNestingAndMarks(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("reach", A("spec", "nak-pa"))
	child := tr.Start("reach.explore")
	child.End()
	root.SetAttr("states", 56)
	root.End()

	mark := tr.Mark()
	tr.Start("verify").End()

	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Completion order: child first.
	if recs[0].Name != "reach.explore" || recs[0].Depth != 1 {
		t.Errorf("child record = %+v", recs[0])
	}
	if recs[1].Name != "reach" || recs[1].Depth != 0 {
		t.Errorf("root record = %+v", recs[1])
	}
	if recs[1].Dur < recs[0].Dur {
		t.Errorf("root dur %v < child dur %v", recs[1].Dur, recs[0].Dur)
	}
	since := tr.RecordsSince(mark)
	if len(since) != 1 || since[0].Name != "verify" {
		t.Errorf("RecordsSince = %+v", since)
	}
}

func TestChromeTraceFormat(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("parse", A("spec", "x"))
	sp.End()
	tr.Event("core.regions", 100, time.Now(), 2*time.Millisecond, A("task", 0))

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var got struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			PID  int64          `json:"pid"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var x, m int
	for _, ev := range got.TraceEvents {
		switch ev.Ph {
		case "X":
			x++
			if ev.Name == "" || ev.PID != 1 {
				t.Errorf("bad X event %+v", ev)
			}
		case "M":
			m++
			if ev.Name != "thread_name" {
				t.Errorf("bad metadata event %+v", ev)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if x != 2 || m != 2 {
		t.Fatalf("got %d X events and %d M events, want 2 and 2", x, m)
	}
}

func TestTaskHookRecords(t *testing.T) {
	o := New(nil)
	Enable(o)
	defer Enable(nil)

	hook := TaskHook("core.regions")
	if hook == nil {
		t.Fatal("TaskHook nil while enabled")
	}
	start := time.Now()
	hook(3, 1, start, 5*time.Millisecond)
	hook(4, 0, start, time.Millisecond)

	if got := o.Metrics.Counter("par_tasks_total", "pool", "core.regions").Value(); got != 2 {
		t.Errorf("par_tasks_total = %d, want 2", got)
	}
	recs := o.Tracer.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d trace events, want 2", len(recs))
	}
	if recs[0].TID != 101 || recs[1].TID != 100 {
		t.Errorf("worker lanes = %d, %d", recs[0].TID, recs[1].TID)
	}
}

func TestBuildRunReport(t *testing.T) {
	o := New(nil)
	base := o.Metrics.Snapshot()
	mark := o.Tracer.Mark()

	o.Metrics.Counter("verify_states_total").Add(7)
	sp := o.Tracer.Start("verify", A("spec", "x"))
	inner := o.Tracer.Start("verify.inner")
	inner.End()
	sp.End()
	o.Tracer.Event("core.regions", 100, time.Now(), time.Millisecond)

	rep := o.BuildRunReport("x", mark, base)
	if len(rep.Stages) != 1 || rep.Stages[0].Name != "verify" {
		t.Fatalf("stages = %+v", rep.Stages)
	}
	if rep.Counters["verify_states_total"] != 7 {
		t.Errorf("counter delta = %v", rep.Counters["verify_states_total"])
	}
	if _, err := json.MarshalIndent(rep, "", "  "); err != nil {
		t.Fatal(err)
	}
}
