package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/par"
)

// TestTraceConcurrentSpansValidJSON hammers the tracer from a par
// worker pool — Start/SetAttr/End/Event racing each other — while
// WriteChromeTrace encodes snapshots concurrently. Every emitted trace
// must be valid JSON: the historical hazard is a span whose attrs slice
// is appended to after End handed the record to a concurrent encoder.
func TestTraceConcurrentSpansValidJSON(t *testing.T) {
	o := New(nil)
	tr := o.Tracer

	var wg sync.WaitGroup
	stop := make(chan struct{})
	traces := make(chan []byte, 64)
	// Encoder goroutine: snapshot the trace continuously mid-run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := tr.WriteChromeTrace(&buf); err != nil {
				t.Errorf("WriteChromeTrace: %v", err)
				return
			}
			select {
			case traces <- buf.Bytes():
			default:
			}
		}
	}()

	// The pipeline side: spans opened, attributed and closed from every
	// worker of a real par pool, exactly the shape internal/verify and
	// internal/core drive the tracer with.
	const tasks = 2000
	par.ForEach(tasks, 8, func(i int) {
		sp := tr.Start("task", A("i", i))
		sp.SetAttr("phase", "explore")
		if i%3 == 0 {
			inner := tr.Start("inner")
			inner.SetAttr("depth", 1)
			inner.End()
		}
		sp.SetAttr("states", i*7)
		sp.End()
		// The SetAttr-after-End hazard: must be dropped, not corrupt the
		// record a concurrent encoder may already be serializing.
		sp.SetAttr("late", true)
	})
	close(stop)
	wg.Wait()
	close(traces)

	n := 0
	for data := range traces {
		n++
		if !json.Valid(data) {
			t.Fatalf("mid-run trace snapshot is invalid JSON:\n%.400s", data)
		}
	}
	var final bytes.Buffer
	if err := tr.WriteChromeTrace(&final); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(final.Bytes()) {
		t.Fatal("final trace is invalid JSON")
	}
	t.Logf("validated %d mid-run snapshots", n)
}

// TestSpanSetAttrAfterEndDropped pins the immutability contract: a
// record handed to the trace log never changes afterwards.
func TestSpanSetAttrAfterEndDropped(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("stage", A("spec", "ab"))
	sp.SetAttr("states", 24)
	sp.End()
	sp.SetAttr("late", "value")

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("late")) {
		t.Fatal("attribute set after End leaked into the trace record")
	}
	if !bytes.Contains(buf.Bytes(), []byte("states")) {
		t.Fatal("attribute set before End missing from the trace record")
	}
}
