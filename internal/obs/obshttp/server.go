// Package obshttp is the live ops plane of the pipeline — the first
// concrete slice of the mcsyn-as-a-service architecture. It serves one
// observed process over stdlib net/http:
//
//	/metrics        engine counters, Prometheus text format
//	/progress       live per-stage pipeline events as an SSE stream
//	/trace          Chrome trace_event JSON snapshot of every span so far
//	/debug/pprof/   the standard pprof handlers
//
// The server is an obs.Sink: every pipeline event is encoded once and
// fanned out to all connected /progress subscribers. Subscribers that
// stop reading are never allowed to stall the pipeline — their buffered
// channel fills and further events are dropped (counted in
// obs_sse_dropped_total). New subscribers replay a bounded ring of
// recent events first, so a watcher attaching mid-run still sees the
// stages that already finished.
package obshttp

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// ringLimit bounds the replay ring; at a few dozen events per spec this
// holds hundreds of synthesized specs.
const ringLimit = 8192

// subBuffer is each /progress subscriber's channel capacity; a client
// that falls further behind than this starts losing events.
const subBuffer = 1024

// Server is the HTTP ops plane of one observed run.
type Server struct {
	o       *obs.Observer
	mux     *http.ServeMux
	dropped *obs.Counter
	events  *obs.Counter

	mu     sync.Mutex
	subs   map[chan []byte]struct{}
	ring   [][]byte
	closed bool

	hs *http.Server
	ln net.Listener
}

// New builds a server over the observer's metrics, tracer and events.
// Attach it with o.AddSink(s) to feed /progress.
func New(o *obs.Observer) *Server {
	s := &Server{
		o:       o,
		mux:     http.NewServeMux(),
		subs:    map[chan []byte]struct{}{},
		dropped: o.Metrics.Counter("obs_sse_dropped_total"),
		events:  o.Metrics.Counter("obs_sse_events_total"),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/progress", s.handleProgress)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/debug/pprof/", httppprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	return s
}

// Publish implements obs.Sink: encode once, append to the replay ring,
// fan out without blocking.
func (s *Server) Publish(ev obs.Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	s.events.Add(1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if len(s.ring) >= ringLimit {
		s.ring = append(s.ring[:0:0], s.ring[len(s.ring)-ringLimit/2:]...)
	}
	s.ring = append(s.ring, data)
	for ch := range s.subs {
		select {
		case ch <- data:
		default:
			s.dropped.Add(1)
		}
	}
	s.mu.Unlock()
}

// Handler returns the ops-plane handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; an empty host or port 0 work) and
// serves in the background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s.mux}
	go s.hs.Serve(ln) //reprolint:go long-lived HTTP accept loop, not a pipeline fan-out; lifecycle owned by Close
	return ln.Addr().String(), nil
}

// Close stops the listener and ends every /progress stream.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for ch := range s.subs {
		close(ch)
	}
	s.subs = map[chan []byte]struct{}{}
	s.mu.Unlock()
	if s.hs != nil {
		return s.hs.Close()
	}
	return nil
}

// subscribe registers a new /progress consumer and returns its channel
// plus the replay backlog.
func (s *Server) subscribe() (chan []byte, [][]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, false
	}
	ch := make(chan []byte, subBuffer)
	s.subs[ch] = struct{}{}
	backlog := append([][]byte(nil), s.ring...)
	return ch, backlog, true
}

func (s *Server) unsubscribe(ch chan []byte) {
	s.mu.Lock()
	if _, ok := s.subs[ch]; ok {
		delete(s.subs, ch)
		close(ch)
	}
	s.mu.Unlock()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "mcsyn ops plane\n\n"+
		"  /metrics        Prometheus text metrics\n"+
		"  /progress       live pipeline events (SSE)\n"+
		"  /trace          Chrome trace_event JSON snapshot\n"+
		"  /debug/pprof/   pprof profiles\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.o.Metrics.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.o.Tracer.WriteChromeTrace(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleProgress streams pipeline events as server-sent events: the
// replay backlog first, then live events until the client disconnects
// or the server closes. A periodic comment line keeps idle connections
// from being reaped by proxies.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, backlog, ok := s.subscribe()
	if !ok {
		http.Error(w, "server closed", http.StatusServiceUnavailable)
		return
	}
	defer s.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	for _, data := range backlog {
		if writeSSE(w, data) != nil {
			return
		}
	}
	fl.Flush()

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case data, ok := <-ch:
			if !ok {
				return
			}
			if writeSSE(w, data) != nil {
				return
			}
			// Drain whatever queued before flushing once.
			for drained := true; drained; {
				select {
				case more, ok := <-ch:
					if !ok {
						return
					}
					if writeSSE(w, more) != nil {
						return
					}
				default:
					drained = false
				}
			}
			fl.Flush()
		}
	}
}

func writeSSE(w http.ResponseWriter, data []byte) error {
	if _, err := w.Write([]byte("data: ")); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err := w.Write([]byte("\n\n"))
	return err
}
