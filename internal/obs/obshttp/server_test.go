package obshttp_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/benchdata"
	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/obs/obshttp"
	"repro/internal/synth"
)

// sseClient subscribes to /progress and decodes events into a channel
// until the context is cancelled.
func sseClient(t *testing.T, ctx context.Context, url string) <-chan obs.Event {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, "GET", url+"/progress", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/progress status %d", resp.StatusCode)
	}
	out := make(chan obs.Event, 4096)
	go func() {
		defer resp.Body.Close()
		defer close(out)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			data, ok := strings.CutPrefix(line, "data: ")
			if !ok {
				continue // blank separators, ": keepalive" comments
			}
			var ev obs.Event
			if json.Unmarshal([]byte(data), &ev) == nil {
				out <- ev
			}
		}
	}()
	return out
}

// TestOpsPlaneEndToEnd is the tentpole acceptance test: synthesize all
// nine Table-1 benchmarks with the journal and the SSE server attached,
// watch the per-stage progress live over /progress, then reconstruct
// stage timings, configuration and netlist digests for every benchmark
// from the journal alone. Finally re-synthesize with observation off
// and check the netlists are byte-identical — the whole obs plane must
// be invisible to the results.
func TestOpsPlaneEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes all nine Table-1 benchmarks")
	}

	o := obs.New(nil)
	jpath := filepath.Join(t.TempDir(), "run.jsonl")
	jw, err := journal.Create(jpath)
	if err != nil {
		t.Fatal(err)
	}
	srv := obshttp.New(o)
	o.AddSink(jw)
	o.AddSink(srv)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// Subscribe before the pipeline runs: the stream must carry events
	// live, not only as backlog replay.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := sseClient(t, ctx, hs.URL)

	obs.Enable(o)
	defer obs.Enable(nil)

	type outcome struct {
		netlist string
		added   int
	}
	want := map[string]outcome{}
	for _, e := range benchdata.Table1 {
		journal.PublishRunStart(e.Name, e.Source, journal.RunConfig{Engine: "explicit", MaxModels: 128})
		rep, err := synth.FromSTG(e.STG(), synth.Options{})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if !rep.OK() {
			t.Fatalf("%s: synthesis not OK: %s", e.Name, rep.Verify)
		}
		text := rep.Netlist.String()
		journal.PublishRunEnd(e.Name, text, len(rep.AddedSignals), rep.Verify.String(), true)
		want[e.Name] = outcome{netlist: text, added: len(rep.AddedSignals)}
	}
	obs.Enable(nil)
	if err := jw.Close(); err != nil {
		t.Fatalf("journal: %v", err)
	}

	// --- live SSE stream: the subscriber must have received run and
	// stage events for every benchmark as they happened.
	liveRunEnds := map[string]bool{}
	liveStageEnds := 0
	deadline := time.After(30 * time.Second)
collect:
	for len(liveRunEnds) < len(benchdata.Table1) {
		select {
		case ev, ok := <-events:
			if !ok {
				break collect
			}
			switch ev.Kind {
			case "run_end":
				liveRunEnds[ev.Spec] = true
			case "stage_end":
				liveStageEnds++
			}
		case <-deadline:
			break collect
		}
	}
	if len(liveRunEnds) != len(benchdata.Table1) {
		t.Fatalf("SSE stream delivered run_end for %d specs, want %d", len(liveRunEnds), len(benchdata.Table1))
	}
	if liveStageEnds == 0 {
		t.Fatal("SSE stream delivered no stage_end events")
	}

	// --- flight recorder: everything must be recoverable from the
	// journal file alone.
	evs, err := journal.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	runs := journal.Reconstruct(evs)
	if len(runs) != len(benchdata.Table1) {
		t.Fatalf("reconstructed %d runs, want %d", len(runs), len(benchdata.Table1))
	}
	for i, e := range benchdata.Table1 {
		r := runs[i]
		if r.Spec != e.Name {
			t.Fatalf("run %d spec = %q, want %q", i, r.Spec, e.Name)
		}
		if !r.Complete || !r.OK {
			t.Fatalf("%s: run incomplete or failed: %+v", e.Name, r)
		}
		if r.SpecSHA != journal.SpecSHA(e.Source) {
			t.Fatalf("%s: spec digest mismatch", e.Name)
		}
		if r.Config.Engine != "explicit" || r.Config.MaxModels != 128 {
			t.Fatalf("%s: config not recovered: %+v", e.Name, r.Config)
		}
		if r.NetlistSHA != journal.SpecSHA(want[e.Name].netlist) {
			t.Fatalf("%s: netlist digest mismatch", e.Name)
		}
		if r.Added != want[e.Name].added {
			t.Fatalf("%s: added = %d, want %d", e.Name, r.Added, want[e.Name].added)
		}
		for _, stage := range []string{"reach", "analyze", "repair", "synth", "verify"} {
			if _, ok := r.Stages[stage]; !ok {
				t.Fatalf("%s: stage %q missing from journal (have %v)", e.Name, stage, stageNames(r.Stages))
			}
		}
		if _, ok := r.Stages["parse"]; !ok {
			t.Fatalf("%s: spec-less parse stage not attached to the run", e.Name)
		}
		if r.Stages["repair"].WallUs < 0 {
			t.Fatalf("%s: negative repair wall time", e.Name)
		}
		if r.Stages["repair"].Allocs == 0 {
			t.Fatalf("%s: repair stage has no allocation counter", e.Name)
		}
	}

	// --- invisibility: with observation fully off the same pipeline
	// must produce byte-identical netlists.
	for _, e := range benchdata.Table1 {
		rep, err := synth.FromSTG(e.STG(), synth.Options{})
		if err != nil {
			t.Fatalf("%s (obs off): %v", e.Name, err)
		}
		if rep.Netlist.String() != want[e.Name].netlist {
			t.Fatalf("%s: netlist differs between observed and unobserved runs", e.Name)
		}
	}
}

func stageNames(m map[string]journal.Stage) []string {
	var out []string
	for k := range m { //reprolint:ordered diagnostic output only
		out = append(out, k)
	}
	return out
}

// TestMetricsAndTraceEndpoints exercises the non-streaming pages.
func TestMetricsAndTraceEndpoints(t *testing.T) {
	o := obs.New(nil)
	o.Metrics.Counter("test_total").Add(3)
	srv := obshttp.New(o)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	body := get(t, hs.URL+"/metrics")
	if !strings.Contains(body, "test_total 3") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if body := get(t, hs.URL+"/trace"); !json.Valid([]byte(body)) {
		t.Fatalf("/trace is not valid JSON:\n%s", body)
	}
	if body := get(t, hs.URL+"/"); !strings.Contains(body, "/progress") {
		t.Fatalf("index page unexpected:\n%s", body)
	}
	if body := get(t, hs.URL+"/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

// TestProgressBacklogReplay: a subscriber attaching after events were
// published still sees them via the replay ring.
func TestProgressBacklogReplay(t *testing.T) {
	o := obs.New(nil)
	srv := obshttp.New(o)
	o.AddSink(srv)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	obs.Enable(o)
	obs.Publish("run_start", "late-spec", "engine", "explicit")
	obs.Publish("run_end", "late-spec", "ok", true)
	obs.Enable(nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events := sseClient(t, ctx, hs.URL)
	var got []obs.Event
	for len(got) < 2 {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatalf("stream closed after %d events", len(got))
			}
			got = append(got, ev)
		case <-ctx.Done():
			t.Fatalf("timed out after %d events", len(got))
		}
	}
	if got[0].Kind != "run_start" || got[0].Spec != "late-spec" || got[1].Kind != "run_end" {
		t.Fatalf("replayed events = %+v", got)
	}
}

// TestSlowSubscriberDrops: a subscriber that never reads must not stall
// Publish; its overflow lands in the dropped counter.
func TestSlowSubscriberDrops(t *testing.T) {
	o := obs.New(nil)
	srv := obshttp.New(o)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// A raw connection that subscribes and then never reads the body.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", hs.URL+"/progress", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Far beyond the subscriber buffer; must complete without
		// blocking even though nobody drains the stream.
		for i := 0; i < 5000; i++ {
			srv.Publish(obs.Event{Seq: int64(i), Kind: "stage_end"})
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Publish blocked on a slow subscriber")
	}
	if v := counterValue(o, "obs_sse_events_total"); v != 5000 {
		t.Fatalf("events counter = %d, want 5000", v)
	}
}

func counterValue(o *obs.Observer, name string) int64 {
	return int64(o.Metrics.Snapshot()[name])
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	return string(data)
}
