package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil counter (what a
// disabled registry hands out) accepts updates and stays at zero.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bound bucket histogram (Prometheus semantics:
// bucket i counts observations ≤ bounds[i], plus a +Inf overflow).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1; last bucket is +Inf
	sum    float64
	n      int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) { h.AddSample(v, 1) }

// AddSample records n observations of value v in one update — the bulk
// path for engines that pre-aggregate bucket counts locally.
func (h *Histogram) AddSample(v float64, n int64) {
	if h == nil || n <= 0 {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i] += n
	h.sum += v * float64(n)
	h.n += n
	h.mu.Unlock()
}

func (h *Histogram) snapshot() (counts []int64, sum float64, n int64) {
	h.mu.Lock()
	counts = append(counts, h.counts...)
	sum, n = h.sum, h.n
	h.mu.Unlock()
	return counts, sum, n
}

type metricKind int8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name with all its labelled series.
type family struct {
	kind   metricKind
	bounds []float64      // histogram families only
	series map[string]any // label string ("" or `{k="v",...}`) → metric
}

// Registry is a concurrency-safe collection of named metrics. Series
// are identified by family name plus an ordered label list; acquiring
// the same name+labels twice returns the same metric. The nil registry
// hands out nil metrics, so disabled call sites stay branch-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

func (r *Registry) acquire(name string, kind metricKind, bounds []float64, labels []string) any {
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{kind: kind, bounds: bounds, series: map[string]any{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	m := f.series[key]
	if m == nil {
		switch kind {
		case kindCounter:
			m = &Counter{}
		case kindGauge:
			m = &Gauge{}
		default:
			m = &Histogram{bounds: f.bounds, counts: make([]int64, len(f.bounds)+1)}
		}
		f.series[key] = m
	}
	return m
}

// Counter returns the named counter; labels are ordered key-value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.acquire(name, kindCounter, nil, labels).(*Counter)
}

// Gauge returns the named gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.acquire(name, kindGauge, nil, labels).(*Gauge)
}

// Histogram returns the named histogram. The bounds of the first
// acquisition win for the whole family; nil bounds default to
// power-of-two buckets 1…2^20.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = Pow2Buckets
	}
	return r.acquire(name, kindHistogram, bounds, labels).(*Histogram)
}

// Pow2Buckets are generic size-distribution bounds: 1, 2, 4, … 2^20.
var Pow2Buckets = func() []float64 {
	b := make([]float64, 21)
	for i := range b {
		b[i] = float64(int64(1) << i)
	}
	return b
}()

func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key-value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels splices extra labels (e.g. le=...) into a rendered label
// key.
func mergeLabels(key, extra string) string {
	if key == "" {
		return "{" + extra + "}"
	}
	return key[:len(key)-1] + "," + extra + "}"
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (families and series in lexical order). The whole
// render runs under the registry lock: series maps may otherwise gain
// entries mid-walk.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch m := f.series[k].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", name, k, m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %d\n", name, k, m.Value())
			case *Histogram:
				counts, sum, n := m.snapshot()
				cum := int64(0)
				for bi, c := range counts {
					cum += c
					le := "+Inf"
					if bi < len(m.bounds) {
						le = formatFloat(m.bounds[bi])
					}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", name, mergeLabels(k, `le="`+le+`"`), cum)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", name, k, formatFloat(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", name, k, n)
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Gauges returns the current value of every gauge, keyed like
// Snapshot. Run reports use it to report gauges at their absolute value
// (a high-water mark diffed against a previous spec's mark would be
// meaningless).
func (r *Registry) Gauges() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]float64{}
	for name, f := range r.families {
		if f.kind != kindGauge {
			continue
		}
		for k, m := range f.series {
			out[name+k] = float64(m.(*Gauge).Value())
		}
	}
	return out
}

// Snapshot returns the current value of every counter and gauge (and
// the _count/_sum pair of every histogram) keyed by the rendered series
// name. Run reports diff two snapshots to attribute counters to one
// spec.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]float64{}
	for name, f := range r.families {
		for k, m := range f.series {
			switch m := m.(type) {
			case *Counter:
				out[name+k] = float64(m.Value())
			case *Gauge:
				out[name+k] = float64(m.Value())
			case *Histogram:
				_, sum, n := m.snapshot()
				out[name+"_count"+k] = float64(n)
				out[name+"_sum"+k] = sum
			}
		}
	}
	return out
}
