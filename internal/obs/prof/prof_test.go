package prof

import (
	"bytes"
	"runtime/pprof"
	"testing"
	"time"

	"repro/internal/obs"
)

// ballast keeps stage allocations reachable so the allocs profile
// records them.
var ballast [][]byte

//go:noinline
func allocateForProfile(n int) {
	for i := 0; i < n; i++ {
		ballast = append(ballast, make([]byte, 1<<20))
	}
}

// TestParseRealAllocsProfile feeds the decoder an actual runtime
// profile — the one encoder whose output matters.
func TestParseRealAllocsProfile(t *testing.T) {
	allocateForProfile(8)
	var buf bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	p, err := parseProfile(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if p.valueIndex("alloc_space") < 0 {
		t.Fatalf("no alloc_space column in %v", p.SampleTypes)
	}
	flat := p.flat("alloc_space")
	if len(flat) == 0 {
		t.Fatal("empty flat profile")
	}
	total := int64(0)
	for _, v := range flat { //reprolint:ordered commutative sum
		total += v
	}
	if total <= 0 {
		t.Fatalf("non-positive alloc_space total %d", total)
	}
}

func TestProfilerStageSummary(t *testing.T) {
	p := New(3)
	p.StageStart("repair")
	allocateForProfile(32) // well past the default 512KiB sampling rate
	p.StageEnd("repair", 5*time.Millisecond)

	out := p.Take()
	if len(out) != 1 {
		t.Fatalf("got %d summaries, want 1", len(out))
	}
	sp := out[0]
	if sp.Stage != "repair" || sp.WallUs != 5000 {
		t.Fatalf("summary header = %+v", sp)
	}
	if len(sp.AllocBytes) == 0 {
		t.Fatal("no alloc_space symbols attributed to the stage")
	}
	if len(sp.AllocBytes) > 3 {
		t.Fatalf("topN=3 returned %d symbols", len(sp.AllocBytes))
	}
	found := false
	for _, s := range sp.AllocBytes {
		if s.Value <= 0 {
			t.Fatalf("non-positive sample %+v", s)
		}
		if s.Func == "repro/internal/obs/prof.allocateForProfile" {
			found = true
		}
	}
	if !found {
		t.Fatalf("the allocating function is not in the top symbols: %+v", sp.AllocBytes)
	}
	if again := p.Take(); len(again) != 0 {
		t.Fatal("Take did not reset the accumulator")
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var p *Profiler
	p.StageStart("x")
	p.StageEnd("x", time.Millisecond)
	if p.Take() != nil {
		t.Fatal("nil profiler must return nothing")
	}
}

func TestTopNOrdering(t *testing.T) {
	flat := map[string]int64{"b": 10, "a": 10, "c": 30, "d": 5, "neg": -1}
	got := topN(flat, 3)
	want := []obs.ProfileSample{{Func: "c", Value: 30}, {Func: "a", Value: 10}, {Func: "b", Value: 10}}
	if len(got) != len(want) {
		t.Fatalf("got %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}
