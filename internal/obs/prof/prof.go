// Package prof captures per-stage CPU and heap profiles of the
// synthesis pipeline and reduces them to top-N flat symbol summaries
// for the JSON run report — `mcsyn -profile-stages` without dragging a
// profile viewer into the loop.
//
// The Profiler implements obs.StageHook: at every top-level stage
// boundary it starts/stops a stage-scoped CPU profile and snapshots the
// cumulative allocs profile, so each stage's summary shows where that
// stage burned CPU and allocated bytes. Profiles are decoded by the
// minimal profile.proto reader in this package — no external pprof
// dependency.
//
// Caveats, by construction: the CPU profiler samples at 100 Hz, so
// stages shorter than tens of milliseconds legitimately produce an
// empty CPU summary; and a `-cpuprofile` covering the whole process
// takes precedence — stage profiles then silently skip CPU capture
// (the heap side still works).
package prof

import (
	"bytes"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// DefaultTopN is the default symbol count per stage summary.
const DefaultTopN = 5

// Profiler captures per-stage profiles. It is driven from the
// sequential pipeline goroutine via obs.StageHook; Take may be called
// from any goroutine.
type Profiler struct {
	topN int

	mu        sync.Mutex
	cpuBuf    bytes.Buffer
	cpuOn     bool
	heapStart map[string]int64
	out       []obs.StageProfile
}

// New returns a profiler summarizing the top n symbols per stage
// (n <= 0 selects DefaultTopN).
func New(n int) *Profiler {
	if n <= 0 {
		n = DefaultTopN
	}
	return &Profiler{topN: n}
}

// StageStart implements obs.StageHook: begin a stage-scoped CPU
// profile and snapshot the allocation profile.
func (p *Profiler) StageStart(string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.heapStart = allocFlat()
	p.cpuBuf.Reset()
	// Fails when a process-wide CPU profile is already running
	// (mcsyn -cpuprofile); the stage summary then omits CPU.
	p.cpuOn = pprof.StartCPUProfile(&p.cpuBuf) == nil
}

// StageEnd implements obs.StageHook: stop the stage profile and record
// the stage's top-N summary.
func (p *Profiler) StageEnd(stage string, wall time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	sp := obs.StageProfile{Stage: stage, WallUs: wall.Microseconds()}
	if p.cpuOn {
		pprof.StopCPUProfile()
		p.cpuOn = false
		if prof, err := parseProfile(p.cpuBuf.Bytes()); err == nil {
			sp.CPUNs = topN(prof.flat("cpu"), p.topN)
		}
	}
	if p.heapStart != nil {
		end := allocFlat()
		for name, v := range p.heapStart { //reprolint:ordered delta map is sorted by topN before use
			end[name] -= v
		}
		sp.AllocBytes = topN(end, p.topN)
		p.heapStart = nil
	}
	p.out = append(p.out, sp)
}

// Take returns the stage summaries recorded since the last Take and
// resets the accumulator — one call per synthesized spec.
func (p *Profiler) Take() []obs.StageProfile {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.out
	p.out = nil
	return out
}

// allocFlat snapshots the cumulative allocs profile as flat
// alloc_space bytes per leaf function. Alloc profiles are cumulative
// since process start, so the difference of two snapshots is the
// stage's own allocation profile (subject to runtime.MemProfileRate
// sampling).
func allocFlat() map[string]int64 {
	lookup := pprof.Lookup("allocs")
	if lookup == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := lookup.WriteTo(&buf, 0); err != nil {
		return nil
	}
	prof, err := parseProfile(buf.Bytes())
	if err != nil {
		return nil
	}
	return prof.flat("alloc_space")
}
