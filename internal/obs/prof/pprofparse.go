package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// This file is a minimal, dependency-free reader for the pprof
// profile.proto wire format — just enough to turn a CPU or allocs
// profile into a flat top-N symbol table. Field numbers follow
// github.com/google/pprof/proto/profile.proto:
//
//	Profile:  1 sample_type (ValueType), 2 sample (Sample),
//	          4 location (Location), 5 function (Function),
//	          6 string_table (string)
//	ValueType: 1 type (string index), 2 unit (string index)
//	Sample:   1 location_id (repeated uint64), 2 value (repeated int64)
//	Location: 1 id, 4 line (repeated Line)
//	Line:     1 function_id
//	Function: 1 id, 2 name (string index)
//
// Samples attribute their values to the leaf location (index 0 of
// location_id, per the pprof convention); the parser resolves that to
// the function name of the location's first Line.

// valueType is one (type, unit) column of a profile's sample values.
type valueType struct {
	Type string
	Unit string
}

// profile is the decoded subset of one pprof profile.
type profile struct {
	SampleTypes []valueType
	samples     []sampleRec
	locFunc     map[uint64]string // location id → leaf function name
}

type sampleRec struct {
	leafLoc uint64
	values  []int64
}

// parseProfile decodes a (possibly gzipped) profile.proto payload.
func parseProfile(data []byte) (*profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, err
		}
	}
	var (
		strTab    []string
		types     []struct{ typ, unit uint64 }
		samples   []sampleRec
		locLine   = map[uint64]uint64{} // location id → first function id
		funcName  = map[uint64]uint64{} // function id → name string index
		locAddr   = map[uint64]uint64{} // location id → address (fallback name)
		walkEntry = func(field uint64, wire int, varint uint64, chunk []byte) error {
			switch field {
			case 1: // sample_type
				vt := struct{ typ, unit uint64 }{}
				if err := walkMessage(chunk, func(f uint64, w int, v uint64, c []byte) error {
					switch f {
					case 1:
						vt.typ = v
					case 2:
						vt.unit = v
					}
					return nil
				}); err != nil {
					return err
				}
				types = append(types, vt)
			case 2: // sample
				var rec sampleRec
				first := true
				if err := walkMessage(chunk, func(f uint64, w int, v uint64, c []byte) error {
					switch f {
					case 1: // location_id, possibly packed
						forEachVarint(w, v, c, func(u uint64) {
							if first {
								rec.leafLoc = u
								first = false
							}
						})
					case 2: // value, possibly packed
						forEachVarint(w, v, c, func(u uint64) {
							rec.values = append(rec.values, int64(u))
						})
					}
					return nil
				}); err != nil {
					return err
				}
				samples = append(samples, rec)
			case 4: // location
				var id, fn, addr uint64
				gotLine := false
				if err := walkMessage(chunk, func(f uint64, w int, v uint64, c []byte) error {
					switch f {
					case 1:
						id = v
					case 3:
						addr = v
					case 4:
						if gotLine {
							return nil
						}
						gotLine = true
						return walkMessage(c, func(lf uint64, lw int, lv uint64, lc []byte) error {
							if lf == 1 {
								fn = lv
							}
							return nil
						})
					}
					return nil
				}); err != nil {
					return err
				}
				locLine[id] = fn
				locAddr[id] = addr
			case 5: // function
				var id, name uint64
				if err := walkMessage(chunk, func(f uint64, w int, v uint64, c []byte) error {
					switch f {
					case 1:
						id = v
					case 2:
						name = v
					}
					return nil
				}); err != nil {
					return err
				}
				funcName[id] = name
			case 6: // string_table
				strTab = append(strTab, string(chunk))
			}
			return nil
		}
	)
	if err := walkMessage(data, walkEntry); err != nil {
		return nil, err
	}
	str := func(i uint64) string {
		if i < uint64(len(strTab)) {
			return strTab[i]
		}
		return ""
	}
	p := &profile{locFunc: make(map[uint64]string, len(locLine))}
	for _, vt := range types {
		p.SampleTypes = append(p.SampleTypes, valueType{Type: str(vt.typ), Unit: str(vt.unit)})
	}
	for id, fn := range locLine {
		name := str(funcName[fn])
		if name == "" {
			name = fmt.Sprintf("0x%x", locAddr[id])
		}
		p.locFunc[id] = name
	}
	p.samples = samples
	return p, nil
}

// valueIndex finds the sample-value column with the given type name
// ("cpu", "alloc_space", ...), or -1.
func (p *profile) valueIndex(typeName string) int {
	for i, vt := range p.SampleTypes {
		if vt.Type == typeName {
			return i
		}
	}
	return -1
}

// flat sums the named value column per leaf function.
func (p *profile) flat(typeName string) map[string]int64 {
	vi := p.valueIndex(typeName)
	if vi < 0 {
		return nil
	}
	out := map[string]int64{}
	for _, s := range p.samples {
		if vi >= len(s.values) || s.values[vi] == 0 {
			continue
		}
		name := p.locFunc[s.leafLoc]
		if name == "" {
			name = "<unknown>"
		}
		out[name] += s.values[vi]
	}
	return out
}

// topN turns a flat symbol map into the n largest entries, sorted by
// value descending with name as the deterministic tie-break.
func topN(flat map[string]int64, n int) []obs.ProfileSample {
	if len(flat) == 0 || n <= 0 {
		return nil
	}
	out := make([]obs.ProfileSample, 0, len(flat))
	for name, v := range flat { //reprolint:ordered sorted immediately below
		if v > 0 {
			out = append(out, obs.ProfileSample{Func: name, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Func < out[j].Func
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// walkMessage iterates a protobuf message's fields. For varint fields
// the value is passed directly; for length-delimited fields the chunk
// is passed. Fixed32/fixed64 fields are skipped.
func walkMessage(data []byte, fn func(field uint64, wire int, varint uint64, chunk []byte) error) error {
	for len(data) > 0 {
		tag, n := readVarint(data)
		if n <= 0 {
			return fmt.Errorf("pprof: bad field tag")
		}
		data = data[n:]
		field, wire := tag>>3, int(tag&7)
		switch wire {
		case 0: // varint
			v, n := readVarint(data)
			if n <= 0 {
				return fmt.Errorf("pprof: bad varint in field %d", field)
			}
			data = data[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(data) < 8 {
				return fmt.Errorf("pprof: truncated fixed64")
			}
			data = data[8:]
		case 2: // length-delimited
			l, n := readVarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("pprof: bad length in field %d", field)
			}
			chunk := data[n : n+int(l)]
			data = data[n+int(l):]
			if err := fn(field, wire, 0, chunk); err != nil {
				return err
			}
		case 5: // fixed32
			if len(data) < 4 {
				return fmt.Errorf("pprof: truncated fixed32")
			}
			data = data[4:]
		default:
			return fmt.Errorf("pprof: unsupported wire type %d", wire)
		}
	}
	return nil
}

// forEachVarint visits the integers of a repeated varint field, which
// the encoder may emit packed (wire 2) or one by one (wire 0).
func forEachVarint(wire int, v uint64, chunk []byte, fn func(uint64)) {
	if wire == 0 {
		fn(v)
		return
	}
	for len(chunk) > 0 {
		u, n := readVarint(chunk)
		if n <= 0 {
			return
		}
		chunk = chunk[n:]
		fn(u)
	}
}

// readVarint decodes one base-128 varint; n <= 0 signals malformed
// input.
func readVarint(data []byte) (v uint64, n int) {
	var shift uint
	for i, b := range data {
		if i == 10 {
			return 0, -1
		}
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, -1
}
