// Package obs is the zero-dependency observability layer of the
// synthesis/verification engine: named counters, gauges and histograms
// with atomic updates, span-based tracing that nests the pipeline
// stages (parse → reach → analyze → repair → synth → verify), and
// writers for the three interchange formats the mcsyn CLI exposes —
// Prometheus text metrics, Chrome trace_event JSON (loadable in
// about:tracing and Perfetto), and a machine-readable per-spec run
// report.
//
// The layer is opt-in and nil-safe: the package-global Observer is nil
// until Enable installs one, and every method tolerates nil receivers,
// so instrumented code calls obs unconditionally. The engine's hot
// loops never call into this package per iteration — they accumulate
// plain struct-local counters and publish once per stage, so with
// observability off the hot paths pay no atomic operations, no clock
// reads and no allocation.
package obs

import (
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Observer bundles the sinks of one observed run: the metric registry,
// the span tracer, an optional structured progress logger, and any
// number of attached event sinks (the flight-recorder journal, the SSE
// progress stream). A nil *Observer is the disabled state; all methods
// no-op.
type Observer struct {
	Metrics *Registry
	Tracer  *Tracer
	Log     *slog.Logger

	mu    sync.Mutex
	hook  StageHook
	sinks atomic.Pointer[[]Sink]
	seq   atomic.Int64
	epoch time.Time
}

// New returns an Observer with a fresh registry and tracer. log may be
// nil (metrics and traces are still collected, progress lines are not).
func New(log *slog.Logger) *Observer {
	o := &Observer{Metrics: NewRegistry(), Tracer: NewTracer(), Log: log}
	o.epoch = o.Tracer.epoch
	o.Tracer.owner = o
	return o
}

var global atomic.Pointer[Observer]

// Enable installs o as the process-global observer (nil disables
// observation again). Instrumented packages read it through Get.
func Enable(o *Observer) { global.Store(o) }

// Get returns the global observer, or nil when observation is off.
func Get() *Observer { return global.Load() }

// Enabled reports whether a global observer is installed. Functions on
// per-call hot paths check it before building span attributes — the
// variadic attr slice of a Start call allocates even when the span is
// discarded, and skipping it keeps disabled runs allocation-free.
func Enabled() bool { return Get() != nil }

// Start opens a span on the global observer's tracer. It returns nil —
// safe to End — when observation is off.
func Start(name string, attrs ...Attr) *Span {
	o := Get()
	if o == nil {
		return nil
	}
	return o.Tracer.Start(name, attrs...)
}

// Info emits a structured progress line when a logger is installed.
func Info(msg string, args ...any) {
	if o := Get(); o != nil && o.Log != nil {
		o.Log.Info(msg, args...)
	}
}

// TaskHook returns a per-task observation hook for a par.ForEachHook
// fan-out, or nil when observation is off (the pool then skips clock
// reads entirely). Each completed task records its duration in the
// pool's task histogram and bumps the task and busy-time counters;
// tasks at least taskTraceThreshold long additionally land as one
// trace event on the worker's own lane. The threshold keeps traces
// legible — the analysis fan-outs run tens of thousands of sub-10µs
// tasks per spec, which the histogram summarizes far better than a
// multi-megabyte wall of slivers would.
func TaskHook(pool string) func(i, worker int, start time.Time, d time.Duration) {
	o := Get()
	if o == nil {
		return nil
	}
	hist := o.Metrics.Histogram("par_task_seconds", DurationBuckets, "pool", pool)
	tasks := o.Metrics.Counter("par_tasks_total", "pool", pool)
	busy := o.Metrics.Counter("par_busy_microseconds_total", "pool", pool)
	return func(i, worker int, start time.Time, d time.Duration) {
		hist.Observe(d.Seconds())
		tasks.Add(1)
		busy.Add(d.Microseconds())
		if d >= taskTraceThreshold {
			o.Tracer.Event(pool, workerTID(worker), start, d, A("task", i), A("worker", worker))
		}
	}
}

// taskTraceThreshold is the minimum duration for a pool task to earn
// its own trace event; shorter tasks are still fully counted in the
// par_task_seconds histogram and the task/busy counters.
const taskTraceThreshold = 100 * time.Microsecond

// workerTID maps a pool worker index to its trace lane: lane 1 is the
// sequential pipeline, workers get their own rows from 100 up.
func workerTID(worker int) int64 { return 100 + int64(worker) }

// DurationBuckets are the default histogram bounds for second-valued
// durations: 10µs … ~80s in powers of two-ish steps.
var DurationBuckets = []float64{
	1e-5, 1e-4, 1e-3, 5e-3, 25e-3, 0.1, 0.5, 2.5, 10, 80,
}
