package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"time"
)

// StageSpan is one top-level pipeline span in a run report.
type StageSpan struct {
	Name    string         `json:"name"`
	StartUs int64          `json:"start_us"`
	DurUs   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// ProfileSample is one symbol's flat share of a per-stage profile.
type ProfileSample struct {
	Func  string `json:"func"`
	Value int64  `json:"value"`
}

// StageProfile is the top-N symbol summary of one pipeline stage,
// captured by the per-stage profiler (internal/obs/prof): flat CPU
// nanoseconds from a stage-scoped CPU profile and flat allocated bytes
// from the delta of two allocs-profile snapshots.
type StageProfile struct {
	Stage      string          `json:"stage"`
	WallUs     int64           `json:"wall_us"`
	CPUNs      []ProfileSample `json:"cpu_ns,omitempty"`
	AllocBytes []ProfileSample `json:"alloc_bytes,omitempty"`
}

// RunReport is the machine-readable record of one synthesized spec:
// the stage spans of its pipeline, the counters its run moved, and the
// verdict fields the CLI fills in from the synthesis report.
type RunReport struct {
	Spec         string `json:"spec"`
	GeneratedUTC string `json:"generated_utc"`
	GoVersion    string `json:"go_version"`
	GOMAXPROCS   int    `json:"gomaxprocs"`

	Verdict        string   `json:"verdict"`
	OK             bool     `json:"ok"`
	AddedSignals   []string `json:"added_signals"`
	Literals       int      `json:"literals"`
	SpecStates     int      `json:"spec_states"`
	FinalStates    int      `json:"final_states"`
	ComposedStates int      `json:"composed_states"`

	Stages   []StageSpan        `json:"stages"`
	Counters map[string]float64 `json:"counters"`
	Profiles []StageProfile     `json:"profiles,omitempty"`
}

// BuildRunReport assembles a report from everything observed since the
// tracer mark and counter baseline (as returned by Tracer.Mark and
// Registry.Snapshot before the run): top-level spans become stages and
// counters are reported as deltas. The caller fills the verdict fields.
func (o *Observer) BuildRunReport(spec string, mark int, base map[string]float64) *RunReport {
	r := &RunReport{
		Spec:         spec,
		GeneratedUTC: time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Counters:     map[string]float64{},
	}
	if o == nil {
		return r
	}
	for _, rec := range o.Tracer.RecordsSince(mark) {
		if rec.Depth != 0 || rec.TID != 1 {
			continue
		}
		st := StageSpan{
			Name:    rec.Name,
			StartUs: rec.Start.Microseconds(),
			DurUs:   rec.Dur.Microseconds(),
		}
		if len(rec.Attrs) > 0 {
			st.Attrs = map[string]any{}
			for _, a := range rec.Attrs {
				st.Attrs[a.Key] = a.Value
			}
		}
		r.Stages = append(r.Stages, st)
	}
	sort.SliceStable(r.Stages, func(i, j int) bool { return r.Stages[i].StartUs < r.Stages[j].StartUs })
	// Counters and histograms are reported as deltas against the run's
	// baseline; gauges (high-water marks, pool sizes, cache ratios) are
	// point-in-time values, so they land at their absolute reading.
	gauges := o.Metrics.Gauges()
	for k, v := range o.Metrics.Snapshot() {
		if _, isGauge := gauges[k]; isGauge {
			if v != 0 {
				r.Counters[k] = v
			}
			continue
		}
		if d := v - base[k]; d != 0 {
			r.Counters[k] = d
		}
	}
	return r
}

// WriteJSON marshals v (one RunReport, or a slice of them for multi-
// spec runs) as indented JSON to path.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
