package journal

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestWriterRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	in := []obs.Event{
		{Seq: 1, TUs: 10, Kind: "run_start", Spec: "ab", Fields: map[string]any{"engine": "explicit"}},
		{Seq: 2, TUs: 20, Kind: "stage_end", Fields: map[string]any{"stage": "parse", "wall_us": 7.0}},
		{Seq: 3, TUs: 30, Kind: "run_end", Spec: "ab", Fields: map[string]any{"ok": true}},
	}
	for _, ev := range in {
		w.Publish(ev)
	}
	if got := w.Events(); got != int64(len(in)) {
		t.Fatalf("Events() = %d, want %d", got, len(in))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Seq != in[i].Seq || out[i].Kind != in[i].Kind || out[i].Spec != in[i].Spec {
			t.Fatalf("event %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestNilWriterIsInert(t *testing.T) {
	var w *Writer
	w.Publish(obs.Event{Kind: "x"})
	if w.Events() != 0 || w.Err() != nil || w.Close() != nil {
		t.Fatal("nil writer must drop everything without error")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriterStickyError(t *testing.T) {
	w := New(&failWriter{n: 1}) // fails on the first flush-sized write
	for i := 0; i < 10_000; i++ {
		w.Publish(obs.Event{Seq: int64(i), Kind: "stage_end"})
	}
	w.Close()
	if w.Err() == nil {
		t.Fatal("write error was not kept")
	}
}

func TestSpecSHA(t *testing.T) {
	if got := SpecSHA("abc"); got != "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" {
		t.Fatalf("SpecSHA(abc) = %s", got)
	}
}

// TestReconstruct folds a hand-built journal — with the spec-less parse
// stage the real pipeline produces — back into run records.
func TestReconstruct(t *testing.T) {
	evs := []obs.Event{
		{Kind: "run_start", Spec: "ab", Fields: map[string]any{
			"spec_sha256": "aa", "engine": "explicit", "portfolio": 2.0,
			"repair_workers": 4.0, "maxmodels": 128.0, "parallel": 1.0,
			"rs": true, "share": false, "go_version": "go1.23",
		}},
		// Parse runs before the spec has a name: spec-less, attaches to
		// the open run.
		{Kind: "stage_end", Fields: map[string]any{"stage": "parse", "wall_us": 42.0, "allocs": 7.0, "alloc_bytes": 512.0}},
		{Kind: "stage_end", Spec: "ab", Fields: map[string]any{"stage": "reach", "wall_us": 100.0, "states": 24.0}},
		{Kind: "repair_round", Spec: "ab", Fields: map[string]any{"round": 0.0}},
		{Kind: "repair_round", Spec: "ab", Fields: map[string]any{"round": 1.0}},
		// A stage event for some other spec must not leak into this run.
		{Kind: "stage_end", Spec: "other", Fields: map[string]any{"stage": "reach", "wall_us": 9.0}},
		{Kind: "run_end", Spec: "ab", Fields: map[string]any{
			"netlist_sha256": "bb", "added": 2.0, "verdict": "speed-independent", "ok": true,
		}},
	}
	runs := Reconstruct(evs)
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	r := runs[0]
	if r.Spec != "ab" || r.SpecSHA != "aa" || !r.Complete {
		t.Fatalf("run header = %+v", r)
	}
	if r.Config.Engine != "explicit" || r.Config.Portfolio != 2 || r.Config.RepairWorkers != 4 ||
		r.Config.MaxModels != 128 || !r.Config.RS || r.Config.Share {
		t.Fatalf("config = %+v", r.Config)
	}
	if p := r.Stages["parse"]; p.WallUs != 42 || p.Allocs != 7 || p.AllocBytes != 512 {
		t.Fatalf("parse stage = %+v", p)
	}
	if rc := r.Stages["reach"]; rc.WallUs != 100 || rc.Attrs["states"] != 24.0 {
		t.Fatalf("reach stage = %+v", rc)
	}
	if r.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", r.Rounds)
	}
	if r.NetlistSHA != "bb" || r.Added != 2 || !r.OK || r.Verdict != "speed-independent" {
		t.Fatalf("outcome = %+v", r)
	}
	if _, leaked := r.Stages["reach"]; !leaked {
		t.Fatal("reach missing")
	}
	if r.Stages["reach"].WallUs == 9 {
		t.Fatal("stage event of another spec leaked into the run")
	}
}

func TestReconstructInterleaved(t *testing.T) {
	// Two concurrent runs whose events interleave, as a synthesis
	// server journals them. Attribution is by spec; the spec-less
	// stage_end can only belong to "b" once "a" has ended.
	evs := []obs.Event{
		{Kind: "run_start", Spec: "a", Fields: map[string]any{"spec_sha256": "sha-a", "engine": "explicit"}},
		{Kind: "run_start", Spec: "b", Fields: map[string]any{"spec_sha256": "sha-b", "engine": "symbolic"}},
		{Kind: "stage_end", Spec: "b", Fields: map[string]any{"stage": "reach", "wall_us": 5.0}},
		{Kind: "stage_end", Spec: "a", Fields: map[string]any{"stage": "reach", "wall_us": 7.0}},
		{Kind: "repair_round", Spec: "a", Fields: map[string]any{}},
		{Kind: "run_end", Spec: "a", Fields: map[string]any{"netlist_sha256": "net-a", "ok": true}},
		{Kind: "stage_end", Fields: map[string]any{"stage": "cover", "wall_us": 3.0}},
		{Kind: "run_end", Spec: "b", Fields: map[string]any{"netlist_sha256": "net-b", "ok": true}},
	}
	runs := Reconstruct(evs)
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	a, b := runs[0], runs[1]
	if a.Spec != "a" || b.Spec != "b" {
		t.Fatalf("run order = %s, %s", a.Spec, b.Spec)
	}
	if !a.Complete || !b.Complete {
		t.Fatal("both runs must be complete")
	}
	if a.NetlistSHA != "net-a" || b.NetlistSHA != "net-b" {
		t.Fatalf("digests crossed: %s / %s", a.NetlistSHA, b.NetlistSHA)
	}
	if a.Stages["reach"].WallUs != 7 || b.Stages["reach"].WallUs != 5 {
		t.Fatalf("stage attribution crossed: a=%d b=%d", a.Stages["reach"].WallUs, b.Stages["reach"].WallUs)
	}
	if a.Rounds != 1 || b.Rounds != 0 {
		t.Fatalf("rounds = %d/%d, want 1/0", a.Rounds, b.Rounds)
	}
	// The spec-less cover stage landed on b (sole open run after a ended).
	if _, ok := a.Stages["cover"]; ok {
		t.Fatal("spec-less stage attached to a completed run")
	}
	if b.Stages["cover"].WallUs != 3 {
		t.Fatal("spec-less stage must attach to the sole open run")
	}
}

func TestReconstructSequentialUnchanged(t *testing.T) {
	// The pre-server shape: one run at a time, spec-less parse stage.
	evs := []obs.Event{
		{Kind: "run_start", Spec: "x", Fields: map[string]any{"spec_sha256": "sha-x"}},
		{Kind: "stage_end", Fields: map[string]any{"stage": "parse", "wall_us": 2.0}},
		{Kind: "run_end", Spec: "x", Fields: map[string]any{"netlist_sha256": "net-x", "ok": true}},
		{Kind: "run_start", Spec: "y", Fields: map[string]any{"spec_sha256": "sha-y"}},
		{Kind: "stage_end", Fields: map[string]any{"stage": "parse", "wall_us": 4.0}},
		{Kind: "run_end", Spec: "y", Fields: map[string]any{"netlist_sha256": "net-y", "ok": false}},
	}
	runs := Reconstruct(evs)
	if len(runs) != 2 || !runs[0].Complete || !runs[1].Complete {
		t.Fatalf("got %+v", runs)
	}
	if runs[0].Stages["parse"].WallUs != 2 || runs[1].Stages["parse"].WallUs != 4 {
		t.Fatal("spec-less parse stages must attach to their own runs")
	}
	if runs[1].OK {
		t.Fatal("y must reconstruct as failed")
	}
}

func TestReadToleratesTruncatedTail(t *testing.T) {
	// A live journal legitimately ends mid-event; the reader must keep
	// every complete line and drop only the partial tail.
	data := `{"seq":1,"kind":"run_start","spec":"a"}` + "\n" +
		`{"seq":2,"kind":"run_end","spec":"a"}` + "\n" +
		`{"seq":3,"kind":"stage_`
	evs, err := Read(strings.NewReader(data))
	if err != nil {
		t.Fatalf("truncated tail must not error: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Mid-file corruption is still an error.
	bad := `{"seq":1,"kind":"run_start"` + "\n" + `{"seq":2,"kind":"run_end","spec":"a"}` + "\n"
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Fatal("mid-file corruption must error")
	}
}
