// Package journal is the pipeline's flight recorder: an append-only
// JSONL event journal that makes any observed run reconstructible and
// diffable after the fact. Each line is one obs.Event; the sequence for
// one synthesized spec reads
//
//	run_start   spec name, sha-256 of the .g source, full config
//	stage_start / stage_end
//	            every top-level pipeline stage with wall-clock and
//	            (when the pipeline marked them) allocation counters
//	            plus the stage's span attributes (states, edges, added
//	            signals, composed states, ...)
//	repair_round / repair_done / sat_stats
//	            the state-signal insertion loop's per-round progress
//	            and its SAT-portfolio totals
//	run_end     outcome digests: sha-256 of the netlist text, inserted
//	            signal count, verdict
//
// Like the rest of the obs layer the journal is opt-in and nil-safe: a
// nil *Writer accepts events and drops them, and nothing in the hot
// paths ever publishes per iteration. Reconstruct inverts the format —
// it folds a journal back into per-run records, which is what the
// regression tooling and the acceptance tests consume.
package journal

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Writer appends events to one journal. Safe for concurrent use; the
// nil writer drops everything.
type Writer struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	n   int64
	err error
}

// Create opens (truncating) a journal file.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := New(f)
	w.c = f
	return w, nil
}

// New wraps an io.Writer as a journal.
func New(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Publish appends one event as a JSON line. Implements obs.Sink. Write
// errors are sticky: the first one is kept and later events are
// dropped, so a full disk degrades to a truncated journal rather than
// a wedged pipeline.
func (w *Writer) Publish(ev obs.Event) {
	if w == nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if _, err := w.bw.Write(data); err != nil { //reprolint:lock w.mu exists to serialize journal writes; contenders expect to wait for the buffered flush
		w.err = err
		return
	}
	if err := w.bw.WriteByte('\n'); err != nil { //reprolint:lock w.mu exists to serialize journal writes; contenders expect to wait for the buffered flush
		w.err = err
		return
	}
	w.n++
}

// Events returns the number of events written so far.
func (w *Writer) Events() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Err returns the sticky write error, if any.
func (w *Writer) Err() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes and closes the journal.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil && w.err == nil { //reprolint:lock Close's final flush must run under w.mu so no Publish can interleave with shutdown
		w.err = err
	}
	if w.c != nil {
		if err := w.c.Close(); err != nil && w.err == nil { //reprolint:lock closing the underlying file under w.mu is the shutdown barrier; CHA resolves io.Closer to loaded types, but w.c is the journal file
			w.err = err
		}
		w.c = nil
	}
	return w.err
}

// RunConfig is the synthesis configuration recorded in a run_start
// event — everything that can change what the pipeline computes or how
// it searches.
type RunConfig struct {
	Engine        string `json:"engine"`
	Portfolio     int    `json:"portfolio"`
	RepairWorkers int    `json:"repair_workers"`
	MaxModels     int    `json:"maxmodels"`
	Parallel      int    `json:"parallel"`
	RS            bool   `json:"rs"`
	Share         bool   `json:"share"`
}

// SpecSHA is the provenance digest of an input: the hex sha-256 of the
// .g source text.
func SpecSHA(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}

// PublishRunStart records the beginning of one spec's pipeline on the
// global observer's sinks: the source digest, the full configuration,
// and the toolchain. Call it before parsing so the parse stage lands
// inside the run.
func PublishRunStart(spec, source string, cfg RunConfig) {
	if !obs.SinksEnabled() {
		return
	}
	obs.Publish("run_start", spec,
		"spec_sha256", SpecSHA(source),
		"engine", cfg.Engine,
		"portfolio", cfg.Portfolio,
		"repair_workers", cfg.RepairWorkers,
		"maxmodels", cfg.MaxModels,
		"parallel", cfg.Parallel,
		"rs", cfg.RS,
		"share", cfg.Share,
		"go_version", runtime.Version(),
		"gomaxprocs", runtime.GOMAXPROCS(0),
	)
}

// PublishRunEnd records one spec's outcome digests: the netlist hash
// (empty when synthesis failed before emitting one), the inserted
// state-signal count, and the verdict line.
func PublishRunEnd(spec, netlistText string, added int, verdict string, ok bool) {
	if !obs.SinksEnabled() {
		return
	}
	digest := ""
	if netlistText != "" {
		digest = SpecSHA(netlistText)
	}
	obs.Publish("run_end", spec,
		"netlist_sha256", digest,
		"added", added,
		"verdict", verdict,
		"ok", ok,
	)
}

// Read decodes a journal stream. A malformed FINAL line is dropped
// rather than reported: reading a live journal (the writer buffers and
// flushes on close) legitimately races one partially written trailing
// event, and an append-only flight recorder must stay readable
// mid-flight. Malformed lines with valid lines after them still error.
func Read(r io.Reader) ([]obs.Event, error) {
	var evs []obs.Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	badLine, badErr := 0, error(nil)
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			if badErr == nil {
				badLine, badErr = line, err
				continue
			}
			return evs, fmt.Errorf("journal: line %d: %w", badLine, badErr)
		}
		if badErr != nil {
			return evs, fmt.Errorf("journal: line %d: %w", badLine, badErr)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return evs, err
	}
	return evs, nil
}

// ReadFile decodes a journal file.
func ReadFile(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Stage is one reconstructed pipeline stage of a run.
type Stage struct {
	WallUs     int64          // wall clock, microseconds
	Allocs     int64          // heap allocations during the stage (when marked)
	AllocBytes int64          // heap bytes during the stage (when marked)
	Attrs      map[string]any // remaining stage_end fields (states, edges, ...)
}

// Run is the reconstruction of one spec's journal slice.
type Run struct {
	Spec       string
	SpecSHA    string
	Config     RunConfig
	GoVersion  string
	Stages     map[string]Stage // last completed instance per stage name
	Rounds     int              // repair_round events observed
	NetlistSHA string
	Added      int
	Verdict    string
	OK         bool
	Complete   bool // a run_end was observed
}

// Reconstruct folds a journal back into per-run records, in run_start
// order. Concurrent runs (a synthesis server journals many specs at
// once) interleave their events; attribution is by spec, so any
// interleaving reconstructs identically to the sequential journal of
// the same runs. Spec-less events (the parse stage runs before the
// spec has a name) attach to the sole open run when exactly one is
// open — the sequential case — and are dropped otherwise, since they
// cannot be attributed.
func Reconstruct(evs []obs.Event) []Run {
	var runs []Run
	open := map[string]int{} // spec → index of its open run in runs
	sole := -1               // index of the single open run, -1 when 0 or >1 are open
	resolve := func(spec string) *Run {
		if spec != "" {
			if i, ok := open[spec]; ok {
				return &runs[i]
			}
			return nil
		}
		if sole >= 0 {
			return &runs[sole]
		}
		return nil
	}
	for _, ev := range evs {
		switch ev.Kind {
		case "run_start":
			// A re-run of a still-open spec supersedes it: the older run
			// stays incomplete, exactly as a crashed sequential run would.
			runs = append(runs, Run{
				Spec:    ev.Spec,
				SpecSHA: str(ev.Fields, "spec_sha256"),
				Config: RunConfig{
					Engine:        str(ev.Fields, "engine"),
					Portfolio:     int(num(ev.Fields, "portfolio")),
					RepairWorkers: int(num(ev.Fields, "repair_workers")),
					MaxModels:     int(num(ev.Fields, "maxmodels")),
					Parallel:      int(num(ev.Fields, "parallel")),
					RS:            boolean(ev.Fields, "rs"),
					Share:         boolean(ev.Fields, "share"),
				},
				GoVersion: str(ev.Fields, "go_version"),
				Stages:    map[string]Stage{},
			})
			open[ev.Spec] = len(runs) - 1
			if len(open) == 1 {
				sole = len(runs) - 1
			} else {
				sole = -1
			}
		case "stage_end":
			cur := resolve(ev.Spec)
			if cur == nil || cur.Complete {
				continue
			}
			st := Stage{
				WallUs:     int64(num(ev.Fields, "wall_us")),
				Allocs:     int64(num(ev.Fields, "allocs")),
				AllocBytes: int64(num(ev.Fields, "alloc_bytes")),
				Attrs:      map[string]any{},
			}
			for k, v := range ev.Fields {
				switch k {
				case "stage", "wall_us", "allocs", "alloc_bytes":
				default:
					st.Attrs[k] = v
				}
			}
			cur.Stages[str(ev.Fields, "stage")] = st
		case "repair_round":
			if cur := resolve(ev.Spec); cur != nil && !cur.Complete {
				cur.Rounds++
			}
		case "run_end":
			cur := resolve(ev.Spec)
			if cur == nil || cur.Complete {
				continue
			}
			cur.NetlistSHA = str(ev.Fields, "netlist_sha256")
			cur.Added = int(num(ev.Fields, "added"))
			cur.Verdict = str(ev.Fields, "verdict")
			cur.OK = boolean(ev.Fields, "ok")
			cur.Complete = true
			delete(open, cur.Spec)
			sole = -1
			if len(open) == 1 {
				for _, i := range open { //reprolint:ordered single-entry map; the loop body runs at most once
					sole = i
				}
			}
		}
	}
	return runs
}

// str, num and boolean read JSON-round-tripped field values (numbers
// arrive as float64, but events published in-process keep their Go
// types).
func str(m map[string]any, k string) string {
	s, _ := m[k].(string)
	return s
}

func num(m map[string]any, k string) float64 {
	switch v := m[k].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	}
	return 0
}

func boolean(m map[string]any, k string) bool {
	b, _ := m[k].(bool)
	return b
}
