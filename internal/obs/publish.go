package obs

import (
	"runtime"
	"time"
)

// Event is one pipeline progress event: the unit of the flight
// recorder (internal/obs/journal) and of the live SSE progress stream
// (internal/obs/obshttp). Events are produced at stage boundaries and
// other once-per-phase points — never per hot-loop iteration — so the
// stream stays a few dozen entries per synthesized spec.
type Event struct {
	Seq  int64  `json:"seq"`            // monotonically increasing per observer
	TUs  int64  `json:"t_us"`           // microseconds since the observer epoch
	Kind string `json:"kind"`           // run_start, stage_start, stage_end, repair_round, ...
	Spec string `json:"spec,omitempty"` // owning specification, when known

	Fields map[string]any `json:"fields,omitempty"`
}

// Sink consumes pipeline events. Implementations must be safe for
// concurrent use and must not block: a slow sink (an SSE client that
// stopped reading) drops events rather than stalling the pipeline.
type Sink interface {
	Publish(Event)
}

// StageHook observes top-level pipeline span boundaries — the hook the
// per-stage profiler (internal/obs/prof) attaches to. Both methods are
// called from the sequential pipeline goroutine only.
type StageHook interface {
	StageStart(stage string)
	StageEnd(stage string, wall time.Duration)
}

// AddSink attaches a sink to the observer. Copy-on-write: the publish
// path loads the slice without a lock.
func (o *Observer) AddSink(s Sink) {
	if o == nil || s == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	old := o.sinks.Load()
	var next []Sink
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, s)
	o.sinks.Store(&next)
}

// SetStageHook installs h to observe top-level span boundaries (nil
// detaches). At most one hook is active; the event sinks receive stage
// boundaries independently of it.
func (o *Observer) SetStageHook(h StageHook) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.hook = h
	o.mu.Unlock()
}

func (o *Observer) stageHook() StageHook {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.hook
}

func (o *Observer) hasSinks() bool {
	if o == nil {
		return false
	}
	s := o.sinks.Load()
	return s != nil && len(*s) > 0
}

// SinksEnabled reports whether the global observer has at least one
// event sink attached. Call sites that pay to assemble event payloads
// (or read runtime.MemStats for per-stage allocation deltas) check it
// first, so runs without a journal or progress stream pay nothing.
func SinksEnabled() bool { return Get().hasSinks() }

// Publish emits one event to every attached sink of the global
// observer. kv lists alternating field keys and values; a trailing odd
// key is dropped. A no-op when observation is off or no sink is
// attached.
func Publish(kind, spec string, kv ...any) { Get().Publish(kind, spec, kv...) }

// Publish emits one event to every attached sink.
func (o *Observer) Publish(kind, spec string, kv ...any) {
	if !o.hasSinks() {
		return
	}
	var fields map[string]any
	if len(kv) >= 2 {
		fields = make(map[string]any, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			if k, ok := kv[i].(string); ok {
				fields[k] = kv[i+1]
			}
		}
	}
	o.publishEvent(kind, spec, fields)
}

func (o *Observer) publishEvent(kind, spec string, fields map[string]any) {
	sinks := o.sinks.Load()
	if sinks == nil {
		return
	}
	ev := Event{
		Seq:    o.seq.Add(1),
		TUs:    time.Since(o.epoch).Microseconds(),
		Kind:   kind,
		Spec:   spec,
		Fields: fields,
	}
	for _, s := range *sinks {
		s.Publish(ev)
	}
}

// stageStart forwards a top-level span opening to the stage hook and
// the event sinks. Called by the tracer outside its lock, on the
// sequential pipeline goroutine.
func (o *Observer) stageStart(name, spec string) {
	if o == nil {
		return
	}
	if h := o.stageHook(); h != nil {
		h.StageStart(name)
	}
	if o.hasSinks() {
		o.publishEvent("stage_start", spec, map[string]any{"stage": name})
	}
}

// stageEnd forwards a finished top-level span to the stage hook and the
// event sinks; the span's attributes ride along as event fields.
func (o *Observer) stageEnd(rec *SpanRecord, spec string) {
	if o == nil {
		return
	}
	if h := o.stageHook(); h != nil {
		h.StageEnd(rec.Name, rec.Dur)
	}
	if !o.hasSinks() {
		return
	}
	fields := make(map[string]any, len(rec.Attrs)+2)
	for _, a := range rec.Attrs {
		fields[a.Key] = a.Value
	}
	fields["stage"] = rec.Name
	fields["wall_us"] = rec.Dur.Microseconds()
	o.publishEvent("stage_end", spec, fields)
}

// specAttr extracts the conventional "spec" attribute of a span.
func specAttr(attrs []Attr) string {
	for _, a := range attrs {
		if a.Key == "spec" {
			if s, ok := a.Value.(string); ok {
				return s
			}
		}
	}
	return ""
}

// MemMark is a snapshot of the cumulative allocation counters, taken at
// a stage boundary to attribute allocation deltas to that stage in the
// flight recorder. The zero mark (what a run without sinks gets) is
// inert.
type MemMark struct {
	mallocs, bytes uint64
	ok             bool
}

// MarkMem snapshots the runtime allocation counters when an event sink
// is attached; otherwise it returns an inert mark, so unjournaled runs
// never pay the ReadMemStats stop-the-world.
func MarkMem() MemMark {
	if !SinksEnabled() {
		return MemMark{}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemMark{mallocs: ms.Mallocs, bytes: ms.TotalAlloc, ok: true}
}

// AttrMemDelta records the allocation delta since the mark as "allocs"
// and "alloc_bytes" attributes on the span (and therefore as fields of
// its stage_end event). A no-op on an inert mark or nil span.
func (s *Span) AttrMemDelta(m MemMark) {
	if s == nil || !m.ok {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.SetAttr("allocs", int64(ms.Mallocs-m.mallocs))
	s.SetAttr("alloc_bytes", int64(ms.TotalAlloc-m.bytes))
}
