package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/journal"
	"repro/internal/par"
)

// Options configures a synthesis server.
type Options struct {
	// Shards is the number of pipeline workers (0 = GOMAXPROCS). The
	// byte-identical-netlist guarantee holds at any shard count: shards
	// only decide which goroutine runs a job, never what it computes.
	Shards int
	// Queue bounds jobs waiting beyond the running ones; a full queue
	// rejects submissions with 429 (0 = 2×Shards).
	Queue int
	// CacheEntries caps the stage cache (0 = DefaultCacheEntries).
	CacheEntries int
	// JobWorkers is the repair worker count per job (0 = 1: shards
	// already supply cross-request parallelism).
	JobWorkers int
	// Obs receives the server's metrics. Nil falls back to the global
	// observer, or a private registry when observation is off — the
	// /metrics endpoint works either way.
	Obs *obs.Observer
}

// jobRing bounds each job's buffered progress events.
const jobRing = 1024

// Server is the synthesis service: the stage cache, the singleflight
// table, the sharded job pool and the HTTP surface. It is also an
// obs.Sink — attach it to the active observer with AddSink and every
// pipeline event tagged with a job's spec streams out on that job's
// SSE feed.
type Server struct {
	opts    Options
	o       *obs.Observer
	cache   *Cache
	flights *flightGroup
	pool    *par.Pool

	computes  map[string]*obs.Counter // serve_stage_computes_total per stage
	coalesced *obs.Counter            // serve_coalesced_total
	requests  *obs.Counter            // serve_requests_total
	rejected  *obs.Counter            // serve_rejected_total
	queueGa   *obs.Gauge              // serve_queue_depth
	inflight  *obs.Gauge              // serve_inflight_jobs

	mu      sync.Mutex
	jobs    map[string]*Job
	active  map[string][]*Job  // spec name → running jobs (SSE routing)
	results map[string]*Result // netlist sha-256 → result
	nextID  int64
	running int
	closed  bool

	mux *http.ServeMux
	hs  *http.Server
	ln  net.Listener
}

// Request is one synthesis submission. POST /synth accepts a single
// Request or a JSON array of them.
type Request struct {
	// Name labels the job; empty defaults to the parsed STG's name.
	Name string `json:"name,omitempty"`
	// Source is the .g specification text.
	Source string `json:"source"`
	// Config selects the synthesis configuration.
	Config Config `json:"config"`
}

// Job is one submitted synthesis: its lifecycle state, its result once
// done, and a bounded ring of progress events for SSE watchers.
type Job struct {
	ID     string
	Name   string // request-supplied label
	Spec   string // parsed STG name, set once parse resolves
	Config Config
	State  string // "queued", "running", "done"
	Result *Result
	Trace  *Trace

	mu   sync.Mutex
	ring [][]byte
	subs map[chan []byte]struct{}
	done chan struct{}
}

// jobView is the JSON shape of GET /job/{id}.
type jobView struct {
	ID     string  `json:"id"`
	Name   string  `json:"name,omitempty"`
	Spec   string  `json:"spec,omitempty"`
	Config Config  `json:"config"`
	State  string  `json:"state"`
	Result *Result `json:"result,omitempty"`
	Trace  *Trace  `json:"trace,omitempty"`
}

// New builds a server. Call Start to listen, or route tests through
// Handler directly.
func New(opts Options) *Server {
	o := opts.Obs
	if o == nil {
		o = obs.Get()
	}
	if o == nil {
		o = obs.New(nil)
	}
	shards := par.Workers(opts.Shards)
	queue := opts.Queue
	if queue <= 0 {
		queue = 2 * shards
	}
	s := &Server{
		opts:      opts,
		o:         o,
		cache:     NewCache(opts.CacheEntries, o.Metrics),
		flights:   newFlightGroup(),
		pool:      par.NewPool(shards, queue),
		computes:  map[string]*obs.Counter{},
		coalesced: o.Metrics.Counter("serve_coalesced_total"),
		requests:  o.Metrics.Counter("serve_requests_total"),
		rejected:  o.Metrics.Counter("serve_rejected_total"),
		queueGa:   o.Metrics.Gauge("serve_queue_depth"),
		inflight:  o.Metrics.Gauge("serve_inflight_jobs"),
		jobs:      map[string]*Job{},
		active:    map[string][]*Job{},
		results:   map[string]*Result{},
		mux:       http.NewServeMux(),
	}
	for _, st := range Stages {
		s.computes[st] = o.Metrics.Counter("serve_stage_computes_total", "stage", st)
	}
	s.cache.onEvict = func(stage, _ string, val any) {
		if stage != "netlist" {
			return
		}
		if res, ok := val.(*Result); ok && res.NetlistSHA != "" {
			s.mu.Lock()
			delete(s.results, res.NetlistSHA)
			s.mu.Unlock()
		}
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/synth", s.handleSynth)
	s.mux.HandleFunc("/job/", s.handleJob)
	s.mux.HandleFunc("/result/", s.handleResult)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Observer returns the observer the server registers its metrics on.
func (s *Server) Observer() *obs.Observer { return s.o }

// Cache exposes the stage cache (tests assert on its counters).
func (s *Server) Cache() *Cache { return s.cache }

// Handler returns the server's HTTP handler for embedding and tests.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; port 0 works) and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.hs = &http.Server{Handler: s.mux}
	go s.hs.Serve(ln) //reprolint:go long-lived HTTP accept loop owned by the server; lifecycle bounded by Close
	return ln.Addr().String(), nil
}

// Close drains the server: intake stops, queued and running jobs finish,
// SSE streams end, the listener closes. Safe to call twice.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.pool.Close() // waits for every accepted job
	var err error
	if s.hs != nil {
		err = s.hs.Close()
	}
	return err
}

// Publish implements obs.Sink: pipeline events tagged with a spec name
// are routed to every running job synthesizing that spec.
func (s *Server) Publish(ev obs.Event) {
	if ev.Spec == "" {
		return
	}
	s.mu.Lock()
	jobs := append([]*Job(nil), s.active[ev.Spec]...)
	s.mu.Unlock()
	if len(jobs) == 0 {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	for _, j := range jobs {
		j.deliver(data)
	}
}

// deliver appends one encoded event to the job's replay ring and fans
// it out to subscribers without blocking.
func (j *Job) deliver(data []byte) {
	j.mu.Lock()
	if len(j.ring) >= jobRing {
		j.ring = append(j.ring[:0:0], j.ring[len(j.ring)-jobRing/2:]...)
	}
	j.ring = append(j.ring, data)
	for ch := range j.subs { //reprolint:ordered fan-out order is invisible: every subscriber gets every event
		select {
		case ch <- data:
		default:
		}
	}
	j.mu.Unlock()
}

// event delivers a synthetic job-lifecycle event (job_queued,
// job_running, job_done) to the job's own stream.
func (j *Job) event(kind string, fields map[string]any) {
	data, err := json.Marshal(obs.Event{Kind: kind, Spec: j.Spec, Fields: fields})
	if err != nil {
		return
	}
	j.deliver(data)
}

// subscribe attaches an SSE consumer to the job, replaying the ring.
// The channel closes when the job finishes.
func (j *Job) subscribe() (chan []byte, [][]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	select {
	case <-j.done:
		return nil, append([][]byte(nil), j.ring...), false
	default:
	}
	ch := make(chan []byte, jobRing)
	j.subs[ch] = struct{}{}
	return ch, append([][]byte(nil), j.ring...), true
}

func (j *Job) unsubscribe(ch chan []byte) {
	j.mu.Lock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
		close(ch)
	}
	j.mu.Unlock()
}

// finish marks the job done and closes every subscriber stream.
func (j *Job) finish() {
	j.mu.Lock()
	for ch := range j.subs { //reprolint:ordered close order is invisible: each channel closes exactly once
		close(ch)
	}
	j.subs = map[chan []byte]struct{}{}
	j.mu.Unlock()
	close(j.done)
}

// submit queues one request. The false return is backpressure: the
// queue is full (or the server closed) and the caller should retry.
func (s *Server) submit(req Request) (*Job, bool) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false
	}
	s.nextID++
	j := &Job{
		ID:     fmt.Sprintf("j%06d", s.nextID),
		Name:   req.Name,
		Config: req.Config,
		State:  "queued",
		subs:   map[chan []byte]struct{}{},
		done:   make(chan struct{}),
	}
	s.jobs[j.ID] = j
	s.mu.Unlock()

	if !s.pool.TrySubmit(func() { s.runJob(j, req.Source) }) {
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.nextID--
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, false
	}
	s.requests.Add(1)
	s.queueGa.Set(int64(s.pool.Depth()))
	j.event("job_queued", map[string]any{"id": j.ID})
	return j, true
}

// runJob executes one job on a pool shard: resolve the pipeline
// (cache-assembled or computed), publish lifecycle + journal events,
// record the result.
func (s *Server) runJob(j *Job, source string) {
	s.mu.Lock()
	j.State = "running"
	s.running++
	running := s.running
	s.mu.Unlock()
	s.inflight.Set(int64(running))
	j.event("job_running", map[string]any{"id": j.ID})

	res, tr := s.synthesize(j.Name, source, j.Config, func(spec string) {
		s.mu.Lock()
		j.Spec = spec
		s.active[spec] = append(s.active[spec], j)
		s.mu.Unlock()
		journal.PublishRunStart(spec, Canonicalize(source), journal.RunConfig{
			Engine:        j.Config.Engine,
			RepairWorkers: s.jobWorkers(),
			MaxModels:     j.Config.MaxModels,
			RS:            j.Config.RS,
			Share:         j.Config.Share,
		})
	})
	if j.Spec != "" {
		journal.PublishRunEnd(j.Spec, res.Netlist, len(res.Added), res.Verdict, res.OK)
	}

	s.mu.Lock()
	j.Result, j.Trace, j.State = res, tr, "done"
	s.running--
	running = s.running
	if j.Spec != "" {
		live := s.active[j.Spec][:0]
		for _, other := range s.active[j.Spec] {
			if other != j {
				live = append(live, other)
			}
		}
		if len(live) == 0 {
			delete(s.active, j.Spec)
		} else {
			s.active[j.Spec] = live
		}
	}
	s.mu.Unlock()
	s.inflight.Set(int64(running))
	s.queueGa.Set(int64(s.pool.Depth() - 1)) // this job is still counted until runJob returns

	j.event("job_done", map[string]any{
		"id": j.ID, "ok": res.OK, "netlist_sha256": res.NetlistSHA,
		"hits": len(tr.Hits), "computed": len(tr.Computed), "coalesced": len(tr.Coalesced),
	})
	j.finish()
}

// indexResult records a finished netlist under its digest for
// GET /result/{digest}. The index follows the cache: netlist-stage
// eviction removes the entry.
func (s *Server) indexResult(res *Result) {
	if res == nil || res.NetlistSHA == "" {
		return
	}
	s.mu.Lock()
	s.results[res.NetlistSHA] = res
	s.mu.Unlock()
}

// Job looks a job up by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "mcsyn synthesis service\n\n"+
		"  POST /synth            submit a spec (single or batch array); ?wait=1 blocks for results\n"+
		"  GET  /job/{id}         job status; ?sse=1 streams progress events\n"+
		"  GET  /result/{digest}  cached netlist by sha-256; ?full=1 for the JSON result\n"+
		"  GET  /metrics          Prometheus text metrics\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.queueGa.Set(int64(s.pool.Depth()))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.o.Metrics.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// synthEntry is one element of the POST /synth response.
type synthEntry struct {
	Job      string  `json:"job,omitempty"`
	Status   string  `json:"status_url,omitempty"`
	Rejected bool    `json:"rejected,omitempty"`
	Error    string  `json:"error,omitempty"`
	Result   *Result `json:"result,omitempty"`
	Trace    *Trace  `json:"trace,omitempty"`
}

// handleSynth accepts a single Request or a JSON array of Requests.
// Without ?wait=1 it queues and returns job ids (202); with it, it
// blocks until every accepted job completes and returns results
// inline. A full queue rejects with 429 + Retry-After (batch form:
// per-entry "rejected" flags; 429 only when nothing was accepted).
func (s *Server) handleSynth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	batch := false
	var reqs []Request
	trimmed := strings.TrimSpace(string(body))
	if strings.HasPrefix(trimmed, "[") {
		batch = true
		if err := json.Unmarshal(body, &reqs); err != nil {
			http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
			return
		}
	} else {
		var req Request
		if err := json.Unmarshal(body, &req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		reqs = []Request{req}
	}
	if len(reqs) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}

	entries := make([]synthEntry, len(reqs))
	jobs := make([]*Job, len(reqs))
	accepted := 0
	for i, req := range reqs {
		if strings.TrimSpace(req.Source) == "" {
			entries[i] = synthEntry{Error: "empty source"}
			continue
		}
		j, ok := s.submit(req)
		if !ok {
			entries[i] = synthEntry{Rejected: true, Error: "queue full"}
			continue
		}
		jobs[i] = j
		entries[i] = synthEntry{Job: j.ID, Status: "/job/" + j.ID}
		accepted++
	}

	if accepted == 0 && allRejected(entries) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, payload(batch, entries))
		return
	}

	wait := r.URL.Query().Get("wait") == "1"
	status := http.StatusAccepted
	if wait {
		for i, j := range jobs {
			if j == nil {
				continue
			}
			select {
			case <-j.done:
				entries[i].Result, entries[i].Trace = j.Result, j.Trace
			case <-r.Context().Done():
				return
			}
		}
		status = http.StatusOK
	}
	writeJSON(w, status, payload(batch, entries))
}

func allRejected(entries []synthEntry) bool {
	for _, e := range entries {
		if !e.Rejected {
			return false
		}
	}
	return true
}

func payload(batch bool, entries []synthEntry) any {
	if batch {
		return entries
	}
	return entries[0]
}

// handleJob serves job status as JSON, or the job's progress event
// stream as SSE when the client asks for text/event-stream (or ?sse=1).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/job/")
	j, ok := s.Job(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	if r.URL.Query().Get("sse") == "1" || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamJob(w, r, j)
		return
	}
	s.mu.Lock()
	view := jobView{ID: j.ID, Name: j.Name, Spec: j.Spec, Config: j.Config,
		State: j.State, Result: j.Result, Trace: j.Trace}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// streamJob replays the job's event ring and follows live events until
// the job finishes or the client disconnects.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, j *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, backlog, live := j.subscribe()
	if live {
		defer j.unsubscribe(ch)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for _, data := range backlog {
		if writeSSE(w, data) != nil {
			return
		}
	}
	fl.Flush()
	if !live {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case data, ok := <-ch:
			if !ok {
				return
			}
			if writeSSE(w, data) != nil {
				return
			}
			fl.Flush()
		}
	}
}

// handleResult serves a finished netlist by its sha-256 digest: the
// netlist text by default, the full JSON result with ?full=1.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	digest := strings.TrimPrefix(r.URL.Path, "/result/")
	s.mu.Lock()
	res, ok := s.results[digest]
	s.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	if r.URL.Query().Get("full") == "1" {
		writeJSON(w, http.StatusOK, res)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, res.Netlist)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeSSE(w http.ResponseWriter, data []byte) error {
	if _, err := w.Write([]byte("data: ")); err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	_, err := w.Write([]byte("\n\n"))
	return err
}
