package serve

import (
	"reflect"
	"strings"
	"testing"
)

// TestConfigFingerprintCoversAllFields is the runtime half of the
// cachekey analyzer's guarantee: every exported Config field must
// appear as "<name>=" in RepairFP()+NetlistFP(). A field that reaches
// neither fingerprint would let two semantically different
// configurations share a stage-cache key, serving one configuration's
// netlist for the other's request. Adding a Config field means
// extending a fingerprint (or, for genuinely non-semantic fields,
// annotating it //reprolint:nonsemantic — and then also excluding it
// here with a justification).
func TestConfigFingerprintCoversAllFields(t *testing.T) {
	var c Config
	blob := strings.ToLower(c.RepairFP() + "|" + c.NetlistFP())
	rt := reflect.TypeOf(c)
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue
		}
		if !strings.Contains(blob, strings.ToLower(f.Name)+"=") {
			t.Errorf("Config.%s does not appear in RepairFP()+NetlistFP() (%q): "+
				"two configurations differing only in %s would alias the same cache key",
				f.Name, blob, f.Name)
		}
	}
}

// TestConfigFingerprintFormat pins the convention the lexical
// analyzer checks for: fingerprints use "<lowercase field>=".
// If the format convention drifts, both this test and the cachekey
// analyzer need a coordinated update.
func TestConfigFingerprintFormat(t *testing.T) {
	c := Config{MaxModels: 7, Engine: "symbolic", RS: true, Share: false}
	if got := c.RepairFP(); got != "maxmodels=7|engine=symbolic" {
		t.Errorf("RepairFP() = %q; fingerprint format drifted", got)
	}
	if got := c.NetlistFP(); got != "rs=true|share=false" {
		t.Errorf("NetlistFP() = %q; fingerprint format drifted", got)
	}
}
