// Package serve is the synthesis pipeline as a long-running service:
// mcsyn-as-a-service. It wraps the pure, deterministic stage pipeline
// (parse → reach → analyze → repair → cover → verify) in
//
//   - a content-addressed stage cache: every stage result is keyed by
//     the sha-256 of its transitive inputs — the canonicalized .g
//     source plus the slice of the configuration fingerprint that
//     stage depends on — so a repeated spec costs a hash lookup and a
//     config flip recomputes exactly the stages whose inputs changed;
//   - singleflight request coalescing: N concurrent submissions of the
//     same stage key run the computation once and share the result;
//   - a job queue sharded over the internal/par pool with bounded
//     in-flight jobs and 429 backpressure;
//   - an HTTP API (POST /synth, GET /job/{id} with SSE progress,
//     GET /result/{digest}, /metrics).
//
// Everything rests on the per-stage purity the rest of the repo
// enforces: reprolint's determinism analyzer and the differential test
// net guarantee that identical inputs produce byte-identical stage
// outputs at any worker count, which is exactly the property that
// makes a stage result safe to cache and to share across requests.
package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"repro/internal/obs"
)

// Stage names, in pipeline order. Each is one cache namespace and one
// label value of the serve_cache_{hits,misses}_total counters.
var Stages = []string{"parse", "reach", "analyze", "repair", "netlist"}

// Canonicalize normalizes a .g source for content addressing: CRLF and
// CR line endings become LF, trailing whitespace is stripped per line,
// and the text ends with exactly one newline. The transformations are
// all invisible to the parser, so two sources with equal canonical
// forms parse to the same net — the property that makes the canonical
// text a sound cache key.
func Canonicalize(src string) string {
	src = strings.ReplaceAll(src, "\r\n", "\n")
	src = strings.ReplaceAll(src, "\r", "\n")
	lines := strings.Split(src, "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(l, " \t")
	}
	out := strings.Join(lines, "\n")
	out = strings.TrimRight(out, "\n")
	return out + "\n"
}

// SHA is the hex sha-256 of a string — the digest primitive of every
// cache key and of the served netlist texts.
func SHA(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// stageKey derives one stage's cache key from the stage name and its
// input digests. The chaining (each stage keys on its predecessor's
// key) means a source or config change invalidates exactly the suffix
// of the pipeline it reaches.
func stageKey(stage string, inputs ...string) string {
	return SHA(stage + "\x00" + strings.Join(inputs, "\x00"))
}

// Config is the synthesis configuration a request selects. Only fields
// that can change a stage's output participate in that stage's cache
// key: MaxModels and Engine fingerprint the repair stage, RS and Share
// the netlist stage. Worker counts and portfolio width are
// deliberately absent — the repo's determinism guarantee (byte-identical
// netlists at any parallelism) is what proves they can never make a
// cached entry stale.
type Config struct {
	// RS selects the standard RS-implementation (default: C-elements).
	RS bool `json:"rs,omitempty"`
	// Share enables Section-VI generalized-MC gate sharing.
	Share bool `json:"share,omitempty"`
	// MaxModels bounds SAT model enumeration per strategy pair
	// (0 = encode default). It can change which labellings repair
	// enumerates, so it is part of the repair fingerprint.
	MaxModels int `json:"maxmodels,omitempty"`
	// Engine scores repair candidates: "", "explicit" or "symbolic".
	// Both produce byte-identical netlists; it still participates in
	// the repair fingerprint so the full configuration is addressed.
	Engine string `json:"engine,omitempty"`
}

// RepairFP fingerprints the configuration slice the repair stage
// depends on.
func (c Config) RepairFP() string {
	return fmt.Sprintf("maxmodels=%d|engine=%s", c.MaxModels, c.Engine)
}

// NetlistFP fingerprints the additional configuration the cover/netlist
// stage depends on.
func (c Config) NetlistFP() string {
	return fmt.Sprintf("rs=%t|share=%t", c.RS, c.Share)
}

// Cache is the bounded, content-addressed stage cache: one LRU over
// all stages (keys are stage-namespaced), per-stage hit/miss counters,
// and an eviction hook for derived indexes. Entries are immutable once
// inserted; capacity eviction is the only removal. Because keys are
// content digests, eviction can only ever cost a recomputation — a
// config or source change produces a different key, so a stale read is
// structurally impossible.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses map[string]*obs.Counter
	onEvict      func(stage, key string, val any)
}

type cacheEntry struct {
	stage, key string
	val        any
}

// DefaultCacheEntries bounds the stage cache when Options.CacheEntries
// is zero: every stage entry of ~200 mid-size specs.
const DefaultCacheEntries = 1024

// NewCache builds a cache holding at most capacity entries across all
// stages (0 = DefaultCacheEntries). Counters register on reg (a nil
// registry hands out inert counters).
func NewCache(capacity int, reg *obs.Registry) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	c := &Cache{
		cap:     capacity,
		entries: map[string]*list.Element{},
		order:   list.New(),
		hits:    map[string]*obs.Counter{},
		misses:  map[string]*obs.Counter{},
	}
	for _, st := range Stages {
		c.hits[st] = reg.Counter("serve_cache_hits_total", "stage", st)
		c.misses[st] = reg.Counter("serve_cache_misses_total", "stage", st)
	}
	return c
}

// Get returns the cached value for one stage key, marking it most
// recently used and counting the hit or miss.
func (c *Cache) Get(stage, key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits[stage].Add(1)
		return el.Value.(*cacheEntry).val, true
	}
	c.misses[stage].Add(1)
	return nil, false
}

// Peek is Get without touching the counters or the LRU order — for
// admission fast paths that answer from cache without running a job.
func (c *Cache) Peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*cacheEntry).val, true
	}
	return nil, false
}

// Put inserts a stage result, evicting least-recently-used entries
// beyond capacity.
func (c *Cache) Put(stage, key string, val any) {
	c.mu.Lock()
	var evicted []*cacheEntry
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{stage: stage, key: key, val: val})
		for c.order.Len() > c.cap {
			back := c.order.Back()
			ent := back.Value.(*cacheEntry)
			c.order.Remove(back)
			delete(c.entries, ent.key)
			evicted = append(evicted, ent)
		}
	}
	onEvict := c.onEvict
	c.mu.Unlock()
	if onEvict != nil {
		for _, ent := range evicted {
			onEvict(ent.stage, ent.key, ent.val)
		}
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flightGroup is a minimal singleflight: concurrent Do calls with the
// same key share one execution of fn. The stdlib has no singleflight
// and this repo takes no dependencies, so the classic pattern is
// reimplemented here: a per-key call record with a done channel,
// waiters block on it, the winner broadcasts by closing.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[string]*flightCall{}}
}

// Do runs fn once per concurrent key, returning the shared result and
// whether this caller joined an in-progress flight instead of starting
// one.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, err error, coalesced bool) {
	g.mu.Lock()
	if call, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-call.done
		return call.val, call.err, true
	}
	call := &flightCall{done: make(chan struct{})}
	g.m[key] = call
	g.mu.Unlock()

	call.val, call.err = fn()
	close(call.done)

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return call.val, call.err, false
}
