package serve

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/netlist"
	"repro/internal/sg"
	"repro/internal/stg"
	"repro/internal/synth"
	"repro/internal/verify"
)

// The staged pipeline, cache-aware. Each stage is the smallest unit
// whose inputs are content-addressable: parse, reach and analyze key on
// the canonical source alone, repair adds the repair fingerprint, and
// the netlist stage (cover + build + verify) adds the implementation
// fingerprint. A request that differs from a cached one only in RS
// therefore reuses the repair result — the stage that dominates cold
// cost by orders of magnitude — and recomputes only covers and
// verification.

// parseResult is the parse stage's cache value. Errors are cached too:
// the pipeline is deterministic, so a spec that fails to parse fails
// identically forever, and negative entries keep a hostile or broken
// client from re-running the failure path.
type parseResult struct {
	net *stg.STG
	err error
}

type reachResult struct {
	g   *sg.Graph
	err error
}

type analyzeResult struct {
	props sg.PropertyReport
	err   error
}

// repairResult carries the repaired graph plus the MC report whose
// analyzer derives covers on demand. The analyzer memoizes region
// decompositions lazily, so concurrent cover derivations on one shared
// entry must serialize on mu — that is the only mutable state a cached
// stage value owns.
type repairResult struct {
	mu     sync.Mutex
	final  *sg.Graph
	added  []string
	mc     *core.Report
	models int
	err    error
}

// Result is the netlist stage's cache value and the API's result
// payload: everything a client needs to consume or re-verify one
// synthesis, addressed by the sha-256 of the netlist text.
type Result struct {
	Spec           string   `json:"spec"`
	SpecSHA        string   `json:"spec_sha256"`
	Key            string   `json:"key"`                      // netlist stage cache key
	NetlistSHA     string   `json:"netlist_sha256,omitempty"` // sha-256 of Netlist
	Netlist        string   `json:"netlist,omitempty"`        // rendered netlist text
	Literals       int      `json:"literals,omitempty"`
	Added          []string `json:"added,omitempty"` // inserted state signals
	SpecStates     int      `json:"spec_states,omitempty"`
	FinalStates    int      `json:"final_states,omitempty"`
	ComposedStates int      `json:"composed_states,omitempty"` // verification state count
	Verdict        string   `json:"verdict"`
	OK             bool     `json:"ok"`
	Err            string   `json:"error,omitempty"`
}

// Trace records how one request's stages resolved — which came from
// cache, which were computed, and which joined another request's
// in-progress computation. Tests and the load driver use it to tell
// cold from warm work apart.
type Trace struct {
	Hits      []string `json:"hits,omitempty"`
	Computed  []string `json:"computed,omitempty"`
	Coalesced []string `json:"coalesced,omitempty"`
}

// stage resolves one stage: cache lookup, then singleflight-coalesced
// computation. Exactly one caller per key computes; the result (error
// included) lands in the cache for everyone after.
func (s *Server) stage(tr *Trace, name, key string, compute func() any) any {
	if v, ok := s.cache.Get(name, key); ok {
		tr.Hits = append(tr.Hits, name)
		return v
	}
	v, _, coalesced := s.flights.Do(key, func() (any, error) {
		// Double-check under the flight: a previous flight may have
		// populated the key between the Get above and here.
		if v, ok := s.cache.Peek(key); ok {
			return v, nil
		}
		s.computes[name].Add(1)
		v := compute()
		s.cache.Put(name, key, v)
		return v, nil
	})
	if coalesced {
		tr.Coalesced = append(tr.Coalesced, name)
		s.coalesced.Add(1)
	} else {
		tr.Computed = append(tr.Computed, name)
	}
	return v
}

// synthesize runs (or replays from cache) the full pipeline for one
// request. It mirrors synth.FromGraph stage for stage — consistency and
// property checks, repair, the bisimulation guard, covers, netlist,
// verification — so a cache-assembled result is byte-identical to a
// monolithic synthesis of the same spec and config.
//
// onSpec, when non-nil, fires once as soon as the specification's name
// is known (right after parse) — the hook the server uses to route
// progress events and open the journal run before the expensive stages
// begin.
func (s *Server) synthesize(name, source string, cfg Config, onSpec func(spec string)) (*Result, *Trace) {
	tr := &Trace{}
	canon := Canonicalize(source)
	srcSHA := SHA(canon)

	kParse := stageKey("parse", srcSHA)
	kReach := stageKey("reach", kParse)
	kAnalyze := stageKey("analyze", kReach)
	kRepair := stageKey("repair", kReach, cfg.RepairFP())
	kNet := stageKey("netlist", kRepair, cfg.NetlistFP())

	fail := func(err error) (*Result, *Trace) {
		res := &Result{Spec: name, SpecSHA: srcSHA, Key: kNet, Verdict: "error: " + err.Error(), Err: err.Error()}
		return res, tr
	}

	pr := s.stage(tr, "parse", kParse, func() any {
		net, err := stg.Parse(canon)
		return &parseResult{net: net, err: err}
	}).(*parseResult)
	if pr.err != nil {
		return fail(pr.err)
	}
	if name == "" {
		name = pr.net.Name
	}
	if onSpec != nil {
		onSpec(pr.net.Name)
	}

	rr := s.stage(tr, "reach", kReach, func() any {
		g, err := stg.BuildSG(pr.net)
		return &reachResult{g: g, err: err}
	}).(*reachResult)
	if rr.err != nil {
		return fail(rr.err)
	}

	ar := s.stage(tr, "analyze", kAnalyze, func() any {
		if err := rr.g.CheckConsistency(); err != nil {
			return &analyzeResult{err: err}
		}
		props := rr.g.Check()
		if !props.OutputSemiModular {
			return &analyzeResult{props: props, err: fmt.Errorf(
				"synth: %s is not output semi-modular; no speed-independent implementation exists", rr.g.Name)}
		}
		return &analyzeResult{props: props}
	}).(*analyzeResult)
	if ar.err != nil {
		return fail(ar.err)
	}

	rep := s.stage(tr, "repair", kRepair, func() any {
		ropts := encode.Options{
			MaxModels:  cfg.MaxModels,
			Workers:    s.jobWorkers(),
			SymbolicMC: cfg.Engine == "symbolic",
		}
		fixed, err := encode.Repair(rr.g, ropts)
		if err != nil {
			return &repairResult{err: err}
		}
		if len(fixed.Added) > 0 && rr.g.NumStates() <= 4096 {
			if err := sg.WeaklyBisimilar(rr.g, fixed.G); err != nil {
				return &repairResult{err: fmt.Errorf("synth: insertion changed the visible behaviour: %w", err)}
			}
		}
		return &repairResult{final: fixed.G, added: fixed.Added, mc: fixed.Report, models: fixed.Models}
	}).(*repairResult)
	if rep.err != nil {
		return fail(rep.err)
	}

	res := s.stage(tr, "netlist", kNet, func() any {
		// The MC report's analyzer builds region decompositions lazily;
		// serialize cover derivation per repair entry so two netlist
		// configs sharing it never race on that memoization.
		rep.mu.Lock()
		nl, _, err := synth.CoverNetlist(rep.final, rep.mc, synth.Options{RS: cfg.RS, Share: cfg.Share})
		rep.mu.Unlock()
		out := &Result{
			Spec:        name,
			SpecSHA:     srcSHA,
			Key:         kNet,
			Added:       rep.added,
			SpecStates:  rr.g.NumStates(),
			FinalStates: rep.final.NumStates(),
		}
		if err != nil {
			out.Verdict = "error: " + err.Error()
			out.Err = err.Error()
			return out
		}
		var stats netlist.Stats = nl.Stats()
		out.Netlist = nl.String()
		out.NetlistSHA = SHA(out.Netlist)
		out.Literals = stats.Literals
		vres := verify.CheckLimit(nl, rep.final, verify.DefaultStateLimit)
		out.Verdict = vres.String()
		out.ComposedStates = vres.States
		out.OK = rep.mc.Satisfied() && vres.OK()
		if !vres.OK() {
			out.Err = fmt.Sprintf("synth: %s: synthesized circuit failed verification", name)
		}
		s.indexResult(out)
		return out
	}).(*Result)
	if res.Spec != name && name != "" {
		// A coalesced or cached result may carry the first submitter's
		// display name; the payload is identical, so rebrand a copy.
		clone := *res
		clone.Spec = name
		res = &clone
	}
	s.indexResult(res)
	return res, tr
}

// jobWorkers resolves the per-job repair worker count. Shards already
// provide cross-request parallelism, so each job defaults to a
// sequential repair — worker count never changes the netlist, only
// contention.
func (s *Server) jobWorkers() int {
	if s.opts.JobWorkers > 0 {
		return s.opts.JobWorkers
	}
	return 1
}
