package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/obs"
	"repro/internal/synth"
)

func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Obs == nil {
		opts.Obs = obs.New(nil)
	}
	s := New(opts)
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCanonicalize(t *testing.T) {
	base := ".model x\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a+\n.marking {<b+,a+>}\n.end\n"
	variants := []string{
		strings.ReplaceAll(base, "\n", "\r\n"),
		strings.ReplaceAll(base, "a+ b+", "a+ b+  \t"),
		base + "\n\n",
	}
	want := SHA(Canonicalize(base))
	for i, v := range variants {
		if got := SHA(Canonicalize(v)); got != want {
			t.Errorf("variant %d: canonical digest %s, want %s", i, got, want)
		}
	}
	if !strings.HasSuffix(Canonicalize(base), "\n") || strings.HasSuffix(Canonicalize(base), "\n\n") {
		t.Errorf("canonical form must end with exactly one newline")
	}
}

// TestSingleflightAdmitsOneRun hammers one spec from many goroutines
// and asserts the singleflight admitted exactly one compute per stage —
// the pipeline ran once, everyone shared it. Run under -race this is
// also the cache's concurrency test.
func TestSingleflightAdmitsOneRun(t *testing.T) {
	s := newTestServer(t, Options{})
	src := benchdata.Table1[0].Source // nak-pa

	const n = 16
	results := make([]*Result, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], _ = s.synthesize("", src, Config{}, nil)
		}(i)
	}
	wg.Wait()

	for _, st := range Stages {
		if got := s.computes[st].Value(); got != 1 {
			t.Errorf("stage %s computed %d times, want exactly 1", st, got)
		}
	}
	want := results[0]
	if want.NetlistSHA == "" || !want.OK {
		t.Fatalf("unexpected result: ok=%v verdict=%q err=%q", want.OK, want.Verdict, want.Err)
	}
	for i, r := range results {
		if r.NetlistSHA != want.NetlistSHA {
			t.Errorf("goroutine %d: netlist digest %s, want %s", i, r.NetlistSHA, want.NetlistSHA)
		}
	}
}

// TestCachedColdShardsByteIdentical pins the acceptance criterion:
// netlists served cold, from cache, and at different shard counts are
// byte-identical to a direct synth.FromGraph run for all nine Table-1
// benchmarks.
func TestCachedColdShardsByteIdentical(t *testing.T) {
	ref := map[string]string{} // spec name → reference netlist text
	for _, e := range benchdata.Table1 {
		rep, err := synth.FromSTGSource(e.Source, synth.Options{})
		if err != nil {
			t.Fatalf("%s: reference synthesis: %v", e.Name, err)
		}
		ref[e.Name] = rep.Netlist.String()
	}

	for _, shards := range []int{1, 4} {
		s := newTestServer(t, Options{Shards: shards})
		addr, err := s.Start("127.0.0.1:0")
		if err != nil {
			t.Fatalf("start: %v", err)
		}
		for pass := 0; pass < 2; pass++ {
			for _, e := range benchdata.Table1 {
				res := postSynth(t, addr, Request{Name: e.Name, Source: e.Source})
				if res.Result == nil {
					t.Fatalf("shards=%d pass=%d %s: no result", shards, pass, e.Name)
				}
				if res.Result.Netlist != ref[e.Name] {
					t.Errorf("shards=%d pass=%d %s: netlist differs from direct synthesis", shards, pass, e.Name)
				}
				if pass == 1 && len(res.Result.Added) != e.PaperAdded {
					t.Errorf("%s: %d added signals from cache, paper says %d", e.Name, len(res.Result.Added), e.PaperAdded)
				}
			}
		}
		// Second pass must have been pure cache: no stage recomputed.
		for _, st := range Stages {
			if got := s.computes[st].Value(); got != int64(len(benchdata.Table1)) {
				t.Errorf("shards=%d stage %s: %d computes, want %d (second pass must hit cache)",
					shards, st, got, len(benchdata.Table1))
			}
		}
	}
}

// TestPartialInvalidation pins the per-stage key chaining: flipping a
// netlist-stage config knob (RS) reuses the cached repair, flipping a
// repair-stage knob (MaxModels) recomputes repair but reuses reach.
func TestPartialInvalidation(t *testing.T) {
	s := newTestServer(t, Options{})
	src := benchdata.Table1[0].Source

	if _, tr := s.synthesize("", src, Config{}, nil); len(tr.Computed) != len(Stages) {
		t.Fatalf("cold run computed %v, want all %d stages", tr.Computed, len(Stages))
	}
	_, tr := s.synthesize("", src, Config{RS: true}, nil)
	if got := strings.Join(tr.Computed, ","); got != "netlist" {
		t.Errorf("RS flip recomputed %q, want only netlist", got)
	}
	if got := strings.Join(tr.Hits, ","); got != "parse,reach,analyze,repair" {
		t.Errorf("RS flip hit %q, want parse,reach,analyze,repair", got)
	}
	_, tr = s.synthesize("", src, Config{MaxModels: 64}, nil)
	if got := strings.Join(tr.Computed, ","); got != "repair,netlist" {
		t.Errorf("MaxModels flip recomputed %q, want repair,netlist", got)
	}
}

// TestEvictionNeverStale hammers a tiny capped cache with a corpus of
// specs under alternating config fingerprints and checks every answer
// against an uncapped oracle server: eviction may cost recomputation,
// never a wrong or stale result.
func TestEvictionNeverStale(t *testing.T) {
	type key struct {
		spec string
		cfg  Config
	}
	var corpus []struct {
		name, src string
	}
	for seed := int64(1); seed <= 5; seed++ {
		sp := benchdata.GenRandomSpec(seed, 2+int(seed)%3)
		corpus = append(corpus, struct{ name, src string }{sp.Net.Name, sp.Net.Format()})
	}
	corpus = append(corpus, struct{ name, src string }{"nak-pa", benchdata.Table1[0].Source})
	configs := []Config{{}, {RS: true}, {MaxModels: 32}}

	oracle := newTestServer(t, Options{})
	expect := map[key]*Result{}
	for _, c := range corpus {
		for _, cfg := range configs {
			res, _ := oracle.synthesize(c.name, c.src, cfg, nil)
			expect[key{c.name, cfg}] = res
		}
	}

	capped := newTestServer(t, Options{CacheEntries: 7})
	for i := 0; i < 3*len(corpus)*len(configs); i++ {
		c := corpus[i%len(corpus)]
		cfg := configs[(i/len(corpus))%len(configs)]
		res, _ := capped.synthesize(c.name, c.src, cfg, nil)
		want := expect[key{c.name, cfg}]
		if res.NetlistSHA != want.NetlistSHA || res.Err != want.Err || res.Verdict != want.Verdict {
			t.Fatalf("iter %d (%s, %+v): capped cache served digest=%q err=%q, oracle says digest=%q err=%q",
				i, c.name, cfg, res.NetlistSHA, res.Err, want.NetlistSHA, want.Err)
		}
		if capped.cache.Len() > 7 {
			t.Fatalf("cache grew past its cap: %d entries", capped.cache.Len())
		}
	}
}

// TestBackpressure429 fills the pool's worker and queue with blocked
// jobs and asserts the next submission is rejected with 429 and a
// Retry-After header.
func TestBackpressure429(t *testing.T) {
	s := newTestServer(t, Options{Shards: 1, Queue: 1})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	block := make(chan struct{})
	t.Cleanup(func() { close(block) }) // runs before the server Close cleanup (LIFO)
	// Occupy the single worker, wait until it is actually running, then
	// fill the single queue slot — TrySubmit only sees a free slot once
	// the worker has dequeued the first task.
	started := make(chan struct{})
	if !s.pool.TrySubmit(func() { close(started); <-block }) {
		t.Fatalf("worker-occupying submission rejected")
	}
	<-started
	if !s.pool.TrySubmit(func() { <-block }) {
		t.Fatalf("queue-filling submission rejected")
	}
	body, _ := json.Marshal(Request{Source: benchdata.Table1[0].Source})
	resp, err := http.Post("http://"+addr+"/synth", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without Retry-After header")
	}
	if got := s.rejected.Value(); got != 1 {
		t.Errorf("serve_rejected_total = %d, want 1", got)
	}
}

// TestHTTPSurface walks the whole API: batch submit with wait, job
// status, result-by-digest (text and JSON), metrics, and the SSE replay
// of a finished job.
func TestHTTPSurface(t *testing.T) {
	s := newTestServer(t, Options{Shards: 2})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}

	// Batch form: two specs in one POST.
	reqs := []Request{
		{Name: "nak-pa", Source: benchdata.Table1[0].Source},
		{Name: benchdata.Table1[1].Name, Source: benchdata.Table1[1].Source},
	}
	body, _ := json.Marshal(reqs)
	resp, err := http.Post("http://"+addr+"/synth?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post batch: %v", err)
	}
	var entries []synthEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatalf("decode batch: %v", err)
	}
	resp.Body.Close()
	if len(entries) != 2 {
		t.Fatalf("batch returned %d entries, want 2", len(entries))
	}
	for i, e := range entries {
		if e.Result == nil || !e.Result.OK {
			t.Fatalf("entry %d: missing or failed result: %+v", i, e)
		}
	}

	// Job status for the first entry.
	var view jobView
	getJSON(t, "http://"+addr+"/job/"+entries[0].Job, &view)
	if view.State != "done" || view.Result == nil {
		t.Errorf("job view: state=%q, want done with result", view.State)
	}

	// Result by digest: text body must be the exact netlist bytes.
	digest := entries[0].Result.NetlistSHA
	rr, err := http.Get("http://" + addr + "/result/" + digest)
	if err != nil {
		t.Fatalf("get result: %v", err)
	}
	text := readAll(t, rr)
	if text != entries[0].Result.Netlist {
		t.Errorf("result text differs from netlist in result payload")
	}
	var full Result
	getJSON(t, "http://"+addr+"/result/"+digest+"?full=1", &full)
	if full.NetlistSHA != digest {
		t.Errorf("full result digest %s, want %s", full.NetlistSHA, digest)
	}

	// Metrics must expose the serve_* families.
	mr, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("get metrics: %v", err)
	}
	metrics := readAll(t, mr)
	for _, want := range []string{"serve_cache_hits_total", "serve_cache_misses_total",
		"serve_stage_computes_total", "serve_queue_depth", "serve_inflight_jobs"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// SSE replay of a finished job carries the lifecycle events.
	sr, err := http.Get("http://" + addr + "/job/" + entries[0].Job + "?sse=1")
	if err != nil {
		t.Fatalf("get sse: %v", err)
	}
	stream := readAll(t, sr)
	for _, kind := range []string{"job_queued", "job_running", "job_done"} {
		if !strings.Contains(stream, kind) {
			t.Errorf("SSE replay missing %s event", kind)
		}
	}
	if !strings.Contains(stream, digest) {
		t.Errorf("job_done event missing netlist digest")
	}

	// Unknown routes 404.
	nf, err := http.Get("http://" + addr + "/result/deadbeef")
	if err != nil {
		t.Fatalf("get unknown: %v", err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Errorf("unknown digest: status %d, want 404", nf.StatusCode)
	}
}

// TestErrorResultsCached pins negative caching: a spec that fails
// analysis fails identically from cache without recomputing.
func TestErrorResultsCached(t *testing.T) {
	s := newTestServer(t, Options{})
	bad := ".model broken\n.inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- a+\n.marking {<b-,a+>}\n.end\n"
	r1, _ := s.synthesize("", bad, Config{}, nil)
	r2, tr := s.synthesize("", bad, Config{}, nil)
	if r1.Err == "" {
		t.Skip("spec unexpectedly synthesizable; negative-cache path not exercised")
	}
	if r2.Err != r1.Err {
		t.Errorf("cached error %q differs from cold error %q", r2.Err, r1.Err)
	}
	if len(tr.Computed) != 0 {
		t.Errorf("second failing run recomputed %v, want pure cache", tr.Computed)
	}
}

func postSynth(t *testing.T, addr string, req Request) synthEntry {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+addr+"/synth?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post status %d", resp.StatusCode)
	}
	var e synthEntry
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return e
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("get %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return string(b)
}

// TestTraceAccounting checks a warm run reports all five stages as
// hits and no computes.
func TestTraceAccounting(t *testing.T) {
	s := newTestServer(t, Options{})
	src := benchdata.Table1[2].Source
	s.synthesize("", src, Config{}, nil)
	_, tr := s.synthesize("", src, Config{}, nil)
	if len(tr.Hits) != len(Stages) || len(tr.Computed) != 0 || len(tr.Coalesced) != 0 {
		t.Errorf("warm trace hits=%v computed=%v coalesced=%v, want all-hit", tr.Hits, tr.Computed, tr.Coalesced)
	}
}
