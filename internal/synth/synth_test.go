package synth_test

import (
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/sg"
	"repro/internal/stg"
	"repro/internal/synth"
)

func stgBuildSG(net *stg.STG) (*sg.Graph, error) { return stg.BuildSG(net) }

const handshakeG = `
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`

func TestPipelineHandshake(t *testing.T) {
	rep, err := synth.FromSTGSource(handshakeG, synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("pipeline failed:\n%s", rep.Summary())
	}
	if len(rep.AddedSignals) != 0 {
		t.Errorf("handshake needs no insertion, added %v", rep.AddedSignals)
	}
	s := rep.Summary()
	for _, want := range []string{"== hs ==", "speed-independent: yes", "inserted state signals: none"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestPipelineFig4AllModes(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts synth.Options
	}{
		{"c", synth.Options{}},
		{"rs", synth.Options{RS: true}},
		{"c-share", synth.Options{Share: true}},
		{"rs-share", synth.Options{RS: true, Share: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := synth.FromGraph(benchdata.Fig4SG(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("not OK:\n%s", rep.Summary())
			}
			if len(rep.AddedSignals) != 1 {
				t.Errorf("Fig4 needs exactly 1 state signal, added %v", rep.AddedSignals)
			}
		})
	}
}

func TestPipelineFig1(t *testing.T) {
	rep, err := synth.FromGraph(benchdata.Fig1SG(), synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("not OK:\n%s", rep.Summary())
	}
	if len(rep.AddedSignals) == 0 || len(rep.AddedSignals) > 2 {
		t.Errorf("Fig1 repair added %v", rep.AddedSignals)
	}
	if rep.Final.NumStates() <= rep.Spec.NumStates() {
		t.Error("insertion must enlarge the state graph")
	}
}

func TestPipelineFuzzRandomSpecs(t *testing.T) {
	// Property sweep: every randomly generated series-parallel handshake
	// specification synthesizes end to end — MC holds (or is repaired),
	// the implementation verifies speed-independent, and the visible
	// behaviour is preserved.
	if testing.Short() {
		t.Skip("fuzz sweep skipped in -short mode")
	}
	for seed := int64(0); seed < 25; seed++ {
		spec := benchdata.GenRandomSpec(seed, 4)
		g, err := stgBuildSG(spec.Net)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if g.NumStates() > 3000 {
			continue // keep the sweep fast
		}
		rep, err := synth.FromGraph(g, synth.Options{})
		if err != nil {
			t.Fatalf("seed %d (%d states): %v", seed, g.NumStates(), err)
		}
		if !rep.OK() {
			t.Fatalf("seed %d: pipeline not OK:\n%s", seed, rep.Summary())
		}
	}
}

func TestPipelineFuzzRandomSpecsRS(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz sweep skipped in -short mode")
	}
	for seed := int64(100); seed < 110; seed++ {
		spec := benchdata.GenRandomSpec(seed, 3)
		g, err := stgBuildSG(spec.Net)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := synth.FromGraph(g, synth.Options{RS: true, Share: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.OK() {
			t.Fatalf("seed %d: %s", seed, rep.Summary())
		}
	}
}

func TestPipelineRejectsNonSemiModular(t *testing.T) {
	src := `
.model bad
.inputs a
.outputs c
.graph
p a+ c+
a+ q
c+ q
q a-
a- c-
c- p2
a- p2
p2 a+
.marking { p }
.end
`
	// This net is intentionally malformed at the behavioural level: the
	// choice place p lets input a+ disable output c+.
	if _, err := synth.FromSTGSource(src, synth.Options{}); err == nil {
		t.Fatal("output conflict must abort synthesis")
	}
}

func TestPipelineParseError(t *testing.T) {
	if _, err := synth.FromSTGSource("garbage\n", synth.Options{}); err == nil {
		t.Fatal("parse error must propagate")
	}
}
