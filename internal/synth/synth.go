// Package synth is the end-to-end synthesis pipeline of the paper:
//
//	STG → state graph → behavioural checks → Monotonous Cover analysis
//	    → (if needed) SAT-driven state-signal insertion (Section V)
//	    → per-region MC cubes, optionally share-optimized (Section VI)
//	    → standard C- or RS-implementation (Section III)
//	    → speed-independence verification (Theorem 3, checked
//	      empirically on every synthesized circuit).
package synth

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/sg"
	"repro/internal/stg"
	"repro/internal/verify"
)

// Options configures a synthesis run.
type Options struct {
	// RS selects the standard RS-implementation instead of the standard
	// C-implementation.
	RS bool
	// Share enables the Section-VI generalized-MC gate sharing.
	Share bool
	// Repair configures the state-signal insertion loop.
	Repair encode.Options
	// SkipVerify skips the final speed-independence verification.
	SkipVerify bool
	// VerifyLimit bounds the composed state space (0 = default).
	VerifyLimit int
	// SkipBisim skips the check that state-signal insertion preserved
	// the specification's visible behaviour (weak bisimulation with the
	// inserted signals hidden).
	SkipBisim bool
	// Parallel bounds the worker pool of the per-signal analysis
	// fan-out (0 = GOMAXPROCS, 1 = sequential). It also seeds
	// Repair.Workers when that is unset.
	Parallel int
	// Engine selects the analysis core driving repair's candidate
	// scoring: "" or "explicit" for the per-state scans, "symbolic" for
	// the BDD existence-only checks. The two return identical counts, so
	// the synthesized netlist is byte-identical either way. Callers
	// resolve "auto" (e.g. via engine.EstimateStates) before coming
	// here: synthesis always needs the explicit graph, so this option
	// never changes what is buildable, only how candidates are scored.
	Engine string
}

// Report is the complete outcome of one synthesis run.
type Report struct {
	Name  string
	Spec  *sg.Graph // the input specification
	Final *sg.Graph // after state-signal insertion (== Spec when none)

	Props        sg.PropertyReport
	AddedSignals []string
	MC           *core.Report
	SharedSaved  int // AND terms saved by Section-VI sharing
	Netlist      *netlist.Netlist
	Stats        netlist.Stats
	Verify       *verify.Result

	// Phase durations.
	AnalyzeTime time.Duration
	RepairTime  time.Duration
	CoverTime   time.Duration
	VerifyTime  time.Duration
}

// OK reports whether synthesis succeeded end to end (including
// verification when it ran).
func (r *Report) OK() bool {
	if r.MC == nil || !r.MC.Satisfied() || r.Netlist == nil {
		return false
	}
	return r.Verify == nil || r.Verify.OK()
}

// Summary renders a human-readable synthesis report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Name)
	fmt.Fprintf(&b, "spec: %d signals, %d states\n", r.Spec.NumSignals(), r.Spec.NumStates())
	fmt.Fprintf(&b, "%s\n", indent(r.Props.String()))
	if len(r.AddedSignals) > 0 {
		fmt.Fprintf(&b, "inserted state signals: %s (final graph: %d states)\n",
			strings.Join(r.AddedSignals, ", "), r.Final.NumStates())
	} else {
		fmt.Fprintf(&b, "inserted state signals: none\n")
	}
	if r.MC != nil {
		fmt.Fprintf(&b, "MC covers:\n%s", indent(r.MC.String()))
	}
	if r.SharedSaved > 0 {
		fmt.Fprintf(&b, "gate sharing saved %d AND terms\n", r.SharedSaved)
	}
	if r.Netlist != nil {
		fmt.Fprintf(&b, "netlist (%s):\n%s", r.Stats, indent(r.Netlist.String()))
	}
	if r.Verify != nil {
		fmt.Fprintf(&b, "verification: %s\n", r.Verify)
	}
	fmt.Fprintf(&b, "times: analyze=%v repair=%v covers=%v verify=%v\n",
		r.AnalyzeTime.Round(time.Microsecond), r.RepairTime.Round(time.Microsecond),
		r.CoverTime.Round(time.Microsecond), r.VerifyTime.Round(time.Microsecond))
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}

// now and since funnel the pipeline's wall-clock reads through one
// audited point: phase durations land only in the Report timing fields,
// never in the synthesized artifacts, so the reads cannot break the
// byte-identical-output promise reprolint enforces on this package.
func now() time.Time {
	return time.Now() //reprolint:ordered phase timing lands only in Report duration fields, never in synthesized output
}

func since(t time.Time) time.Duration {
	return time.Since(t) //reprolint:ordered phase timing lands only in Report duration fields, never in synthesized output
}

// FromSTGSource parses an STG in .g syntax and synthesizes it.
func FromSTGSource(src string, opts Options) (*Report, error) {
	net, err := stg.Parse(src)
	if err != nil {
		return nil, err
	}
	return FromSTG(net, opts)
}

// FromSTG builds the state graph of the net and synthesizes it.
func FromSTG(net *stg.STG, opts Options) (*Report, error) {
	g, err := stg.BuildSG(net)
	if err != nil {
		return nil, err
	}
	return FromGraph(g, opts)
}

// CoverNetlist is the cover half of the pipeline: it derives the
// per-signal excitation functions from an MC report over the final
// (post-insertion) graph — share-optimized when opts.Share is set —
// and builds the gate-level netlist. It returns the netlist and the
// number of AND terms sharing saved. Benchmarks call it directly to
// time covering apart from the state-signal insertion that precedes
// it.
func CoverNetlist(final *sg.Graph, mc *core.Report, opts Options) (*netlist.Netlist, int, error) {
	fns := map[int]netlist.SR{}
	saved := 0
	if opts.Share {
		shared, n, err := mc.A.ShareOptimize(mc)
		if err != nil {
			return nil, 0, err
		}
		saved = n
		// Walk signals in index order rather than ranging over the map:
		// the copy is order-independent today, but a deterministic walk
		// keeps the loop safe against future side effects for free.
		for sig := range final.Signals {
			if f, ok := shared[sig]; ok {
				fns[sig] = netlist.SR{Set: f.Set, Reset: f.Reset}
			}
		}
	} else {
		for sig := range final.Signals {
			if final.Input[sig] {
				continue
			}
			set, reset, err := mc.ExcitationFunctions(sig)
			if err != nil {
				return nil, 0, err
			}
			fns[sig] = netlist.SR{Set: set, Reset: reset}
		}
	}
	nl, err := netlist.Build(final, fns, netlist.Options{RS: opts.RS, Share: opts.Share})
	if err != nil {
		return nil, 0, err
	}
	return nl, saved, nil
}

// FromGraph synthesizes a state-graph specification.
func FromGraph(g *sg.Graph, opts Options) (*Report, error) {
	rep := &Report{Name: g.Name, Spec: g, Final: g}

	switch opts.Engine {
	case "", "explicit":
	case "symbolic":
		opts.Repair.SymbolicMC = true
	default:
		return rep, fmt.Errorf("synth: unknown engine %q (want explicit or symbolic)", opts.Engine)
	}

	asp := obs.Start("analyze", obs.A("spec", g.Name), obs.A("states", g.NumStates()))
	amem := obs.MarkMem()
	t0 := now()
	if err := g.CheckConsistency(); err != nil {
		asp.End()
		return rep, err
	}
	rep.Props = g.Check()
	rep.AnalyzeTime = since(t0)
	asp.AttrMemDelta(amem)
	asp.End()
	obs.Info("analyze done", "spec", g.Name, "states", g.NumStates(), "dur", rep.AnalyzeTime)
	if !rep.Props.OutputSemiModular {
		return rep, fmt.Errorf("synth: %s is not output semi-modular; no speed-independent implementation exists", g.Name)
	}

	rsp := obs.Start("repair", obs.A("spec", g.Name))
	rmem := obs.MarkMem()
	t1 := now()
	if opts.Repair.Workers == 0 {
		opts.Repair.Workers = opts.Parallel
	}
	fixed, err := encode.Repair(g, opts.Repair)
	rep.RepairTime = since(t1)
	if err != nil {
		rsp.End()
		return rep, err
	}
	rsp.SetAttr("added", len(fixed.Added))
	rsp.SetAttr("models", fixed.Models)
	rsp.AttrMemDelta(rmem)
	rsp.End()
	rep.Final = fixed.G
	rep.AddedSignals = fixed.Added
	rep.MC = fixed.Report
	obs.Info("repair done", "spec", g.Name, "added", len(fixed.Added), "dur", rep.RepairTime)
	if len(rep.AddedSignals) > 0 && !opts.SkipBisim && g.NumStates() <= 4096 {
		if err := sg.WeaklyBisimilar(g, rep.Final); err != nil {
			return rep, fmt.Errorf("synth: insertion changed the visible behaviour: %w", err)
		}
	}

	ssp := obs.Start("synth", obs.A("spec", g.Name))
	smem := obs.MarkMem()
	t2 := now()
	nl, saved, err := CoverNetlist(rep.Final, rep.MC, opts)
	rep.CoverTime = since(t2)
	if err != nil {
		ssp.End()
		return rep, err
	}
	rep.SharedSaved = saved
	rep.Netlist = nl
	rep.Stats = nl.Stats()
	ssp.SetAttr("literals", rep.Stats.Literals)
	ssp.AttrMemDelta(smem)
	ssp.End()
	obs.Info("synth done", "spec", g.Name, "literals", rep.Stats.Literals, "dur", rep.CoverTime)

	if !opts.SkipVerify {
		vsp := obs.Start("verify", obs.A("spec", g.Name))
		vmem := obs.MarkMem()
		t3 := now()
		limit := opts.VerifyLimit
		if limit == 0 {
			limit = verify.DefaultStateLimit
		}
		rep.Verify = verify.CheckLimit(nl, rep.Final, limit)
		rep.VerifyTime = since(t3)
		vsp.SetAttr("composed_states", rep.Verify.States)
		vsp.SetAttr("ok", rep.Verify.OK())
		vsp.AttrMemDelta(vmem)
		vsp.End()
		if !rep.Verify.OK() {
			return rep, fmt.Errorf("synth: %s: synthesized circuit failed verification:\n%s", g.Name, rep.Verify)
		}
	}
	return rep, nil
}
