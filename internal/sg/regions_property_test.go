package sg_test

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/sg"
	"repro/internal/stg"
)

// propertyGraphs yields a diverse set of graphs: paper figures, Table-1
// benchmarks and random series-parallel specifications.
func propertyGraphs(t *testing.T) map[string]*sg.Graph {
	t.Helper()
	out := map[string]*sg.Graph{
		"fig1": benchdata.Fig1SG(),
		"fig4": benchdata.Fig4SG(),
	}
	for _, e := range benchdata.Table1 {
		g, err := stg.BuildSG(e.STG())
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name] = g
	}
	for seed := int64(0); seed < 10; seed++ {
		spec := benchdata.GenRandomSpec(seed, 3)
		g, err := stg.BuildSG(spec.Net)
		if err != nil {
			t.Fatal(err)
		}
		out[spec.Net.Name] = g
	}
	return out
}

func TestPropertyRegionsPartitionStates(t *testing.T) {
	// For every signal, the ER and QR regions partition the state set.
	for name, g := range propertyGraphs(t) {
		for sig := range g.Signals {
			regs := g.RegionsOf(sig)
			seen := map[int]int{}
			for _, r := range append(append([]*sg.Region{}, regs.ER...), regs.QR...) {
				for _, s := range r.States {
					seen[s]++
				}
			}
			for s := 0; s < g.NumStates(); s++ {
				if seen[s] != 1 {
					t.Fatalf("%s/%s: state %d appears in %d regions",
						name, g.Signals[sig], s, seen[s])
				}
			}
		}
	}
}

func TestPropertyRegionValueAndExcitation(t *testing.T) {
	// Within an ER the signal is excited at the region's source value;
	// within a QR it is stable.
	for name, g := range propertyGraphs(t) {
		for sig := range g.Signals {
			regs := g.RegionsOf(sig)
			for _, er := range regs.ER {
				wantVal := er.Dir == sg.Minus // −a fires from value 1
				for _, s := range er.States {
					if !g.Excited(s, sig) || g.Value(s, sig) != wantVal {
						t.Fatalf("%s: bad ER state s%d for %s", name, s, g.Signals[sig])
					}
				}
			}
			for _, qr := range regs.QR {
				wantVal := qr.Dir == sg.Plus // QR(+a): stable at 1
				for _, s := range qr.States {
					if g.Excited(s, sig) || g.Value(s, sig) != wantVal {
						t.Fatalf("%s: bad QR state s%d for %s", name, s, g.Signals[sig])
					}
				}
			}
		}
	}
}

func TestPropertyQRAfterConsistent(t *testing.T) {
	// Firing the region's transition from any ER state lands in the
	// associated QR (when the association exists).
	for name, g := range propertyGraphs(t) {
		for sig := range g.Signals {
			regs := g.RegionsOf(sig)
			for i, er := range regs.ER {
				j := regs.QRAfter[i]
				if j < 0 {
					continue
				}
				for _, s := range er.States {
					if to, ok := g.Successor(s, sig); ok && !regs.QR[j].Contains(to) {
						t.Fatalf("%s: %s exit from s%d misses its QR",
							name, g.ERLabel(er), s)
					}
				}
			}
		}
	}
}

func TestPropertyMinimalStatesHaveOutsidePreds(t *testing.T) {
	for name, g := range propertyGraphs(t) {
		for sig := range g.Signals {
			for _, er := range g.RegionsOf(sig).ER {
				if len(er.Min) == 0 {
					t.Fatalf("%s: %s has no minimal state", name, g.ERLabel(er))
				}
				for _, m := range er.Min {
					for _, e := range g.States[m].Pred {
						if er.Contains(e.To) {
							t.Fatalf("%s: minimal state s%d has an in-region predecessor", name, m)
						}
					}
				}
			}
		}
	}
}

func TestPropertyTriggersEnterRegions(t *testing.T) {
	for name, g := range propertyGraphs(t) {
		for sig := range g.Signals {
			for _, er := range g.RegionsOf(sig).ER {
				for _, tr := range g.Triggers(er) {
					if er.Contains(tr.From) || !er.Contains(tr.To) {
						t.Fatalf("%s: trigger %v of %s does not enter the region",
							name, tr, g.ERLabel(er))
					}
					if tr.Signal == er.Signal {
						t.Fatalf("%s: a region's own signal cannot trigger it", name)
					}
				}
			}
		}
	}
}

func TestPropertyMirrorInvolution(t *testing.T) {
	for name, g := range propertyGraphs(t) {
		mm := g.Mirror().Mirror()
		for i := range g.Input {
			if mm.Input[i] != g.Input[i] {
				t.Fatalf("%s: mirror is not an involution", name)
			}
		}
	}
}
