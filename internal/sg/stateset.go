package sg

import "math/bits"

// StateSet is a dense bitset over the state indices of one graph. It is
// the shared set representation of the analysis stack: region membership
// (Definitions 5–9), the characteristic sets of Definition 13, CFRs, and
// the τ-closures of the bisimulation checker all use it in place of
// map[int]bool, making membership O(1) and union/intersection word-wide.
//
// The zero value is an empty set that cannot hold members; construct
// with NewStateSet(n) where n is the number of states.
type StateSet []uint64

// NewStateSet returns an empty set with capacity for states 0..n-1.
func NewStateSet(n int) StateSet { return make(StateSet, (n+63)/64) }

// Add inserts state s.
func (b StateSet) Add(s int) { b[s>>6] |= 1 << uint(s&63) }

// Remove deletes state s.
func (b StateSet) Remove(s int) { b[s>>6] &^= 1 << uint(s&63) }

// Has reports whether state s is a member. States beyond the set's
// capacity are absent.
func (b StateSet) Has(s int) bool {
	w := s >> 6
	return w < len(b) && b[w]>>uint(s&63)&1 == 1
}

// Count returns the number of members.
func (b StateSet) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no members.
func (b StateSet) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b StateSet) Clone() StateSet {
	out := make(StateSet, len(b))
	copy(out, b)
	return out
}

// UnionWith adds every member of o (which must not be larger than b).
func (b StateSet) UnionWith(o StateSet) {
	for i, w := range o {
		b[i] |= w
	}
}

// Union returns a new set holding b ∪ o.
func (b StateSet) Union(o StateSet) StateSet {
	out := b.Clone()
	out.UnionWith(o)
	return out
}

// IntersectWith removes every member not in o.
func (b StateSet) IntersectWith(o StateSet) {
	for i := range b {
		if i < len(o) {
			b[i] &= o[i]
		} else {
			b[i] = 0
		}
	}
}

// ForEach calls fn with every member in ascending order.
func (b StateSet) ForEach(fn func(s int)) {
	for i, w := range b {
		for w != 0 {
			fn(i<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// FindFirst calls fn with every member in ascending order until fn
// returns true; it returns that member, or -1 when fn never succeeds.
func (b StateSet) FindFirst(fn func(s int) bool) int {
	for i, w := range b {
		for w != 0 {
			s := i<<6 + bits.TrailingZeros64(w)
			if fn(s) {
				return s
			}
			w &= w - 1
		}
	}
	return -1
}

// Members returns the sorted member slice.
func (b StateSet) Members() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(s int) { out = append(out, s) })
	return out
}

// SetOf builds a set over n states holding exactly the given members.
func SetOf(n int, members ...int) StateSet {
	b := NewStateSet(n)
	for _, s := range members {
		b.Add(s)
	}
	return b
}
