package sg_test

import (
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/sg"
)

func TestFig1Basics(t *testing.T) {
	g := benchdata.Fig1SG()
	if g.NumStates() != 14 {
		t.Fatalf("Fig1 has %d states, want 14", g.NumStates())
	}
	if g.NumSignals() != 4 {
		t.Fatalf("Fig1 has %d signals, want 4", g.NumSignals())
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// The paper's pictorial codes must be reproduced exactly.
	for _, code := range []string{
		"0*0*00", "100*0*", "010*0", "1*010*", "100*1", "0010*", "1*0*11",
		"00*11", "0*110", "1110*", "1*111", "011*1", "01*01", "0001*",
	} {
		if g.StateByCodeString(code) < 0 {
			t.Errorf("state %q not found", code)
		}
	}
	if g.StateByCodeString("0*0*00") != g.Initial {
		t.Error("initial state should be 0*0*00")
	}
}

func TestFig1ConflictStructure(t *testing.T) {
	g := benchdata.Fig1SG()
	confl := g.Conflicts()
	if len(confl) == 0 {
		t.Fatal("Fig1 has an input conflict at the initial state")
	}
	for _, c := range confl {
		if c.Internal {
			t.Errorf("unexpected internal conflict: %s", c.Describe(g))
		}
		if c.State != g.Initial {
			t.Errorf("conflict outside the initial state: %s", c.Describe(g))
		}
	}
	if g.SemiModular() {
		t.Error("Fig1 is not semi-modular (input conflict)")
	}
	if !g.OutputSemiModular() {
		t.Error("Fig1 must be output semi-modular")
	}
	if !g.OutputDistributive() {
		t.Error("Fig1 must be output distributive")
	}
	if len(g.Detonants(false)) != 0 {
		t.Error("Fig1 has no detonant states")
	}
}

func TestFig1Persistency(t *testing.T) {
	g := benchdata.Fig1SG()
	if g.Persistent() {
		t.Fatal("Fig1 is not persistent: +a1 is non-persistent to +d1")
	}
	viol := g.PersistencyViolations()
	d := g.SignalIndex("d")
	a := g.SignalIndex("a")
	found := false
	for _, v := range viol {
		if v.Region.Signal == d && v.Region.Dir == sg.Plus && v.Trigger == a {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected the (+d, trigger a) violation, got %v", viol)
	}
}

func TestFig1Regions(t *testing.T) {
	g := benchdata.Fig1SG()
	d := g.SignalIndex("d")
	regs := g.RegionsOf(d)

	var erPlus []*sg.Region
	for _, er := range regs.ER {
		if er.Dir == sg.Plus {
			erPlus = append(erPlus, er)
		}
	}
	if len(erPlus) != 2 {
		t.Fatalf("ER(+d) should split into 2 regions, got %d", len(erPlus))
	}
	// The large region is {100*0*, 1*010*, 0010*}; its unique minimal
	// state is 100*0* (Lemma 2's u_min).
	var big *sg.Region
	for _, er := range erPlus {
		if len(er.States) == 3 {
			big = er
		}
	}
	if big == nil {
		t.Fatal("no 3-state ER(+d) region")
	}
	if !big.UniqueEntry() {
		t.Fatal("ER(+d,1) must have a unique entry")
	}
	if got, want := big.MinState(), g.StateByCodeString("100*0*"); got != want {
		t.Fatalf("u_min(+d1) = s%d, want s%d (100*0*)", got, want)
	}
	// Its only trigger is a+ (Lemma 2).
	trigs := g.Triggers(big)
	a := g.SignalIndex("a")
	for _, tr := range trigs {
		if tr.Signal != a || tr.Dir != sg.Plus {
			t.Fatalf("unexpected trigger %v", tr)
		}
	}
	if len(trigs) == 0 {
		t.Fatal("ER(+d,1) must have the a+ trigger")
	}
	// a and c are concurrent with +d1 (a- and c+ fire inside the
	// region); only b is ordered — which is why a single cover cube for
	// ER(+d,1) is impossible (Example 1).
	if !g.Concurrent(big, a) {
		t.Error("a must be concurrent with ER(+d,1)")
	}
	if !g.Ordered(big, g.SignalIndex("b")) {
		t.Error("b must be ordered with ER(+d,1)")
	}
	if !g.Concurrent(big, g.SignalIndex("c")) {
		t.Error("c must be concurrent with ER(+d,1)")
	}

	// ER(-d) is the singleton {0001*}.
	var erMinus []*sg.Region
	for _, er := range regs.ER {
		if er.Dir == sg.Minus {
			erMinus = append(erMinus, er)
		}
	}
	if len(erMinus) != 1 || len(erMinus[0].States) != 1 {
		t.Fatalf("ER(-d) should be one singleton region, got %v", erMinus)
	}
	if erMinus[0].States[0] != g.StateByCodeString("0001*") {
		t.Error("ER(-d) should be {0001*}")
	}
}

func TestFig1QRAfter(t *testing.T) {
	g := benchdata.Fig1SG()
	d := g.SignalIndex("d")
	regs := g.RegionsOf(d)
	for i, er := range regs.ER {
		j := regs.QRAfter[i]
		if j < 0 {
			t.Fatalf("%s has no following QR", g.ERLabel(er))
		}
		qr := regs.QR[j]
		if qr.Dir != er.Dir {
			t.Fatalf("QR direction mismatch for %s", g.ERLabel(er))
		}
		// CFR = ER ∪ QR and the two parts are disjoint.
		cfr := regs.CFR(i)
		if cfr.Count() != len(er.States)+len(qr.States) {
			t.Fatalf("CFR size %d != |ER|+|QR| = %d", cfr.Count(), len(er.States)+len(qr.States))
		}
	}
}

func TestFig1CSC(t *testing.T) {
	g := benchdata.Fig1SG()
	if !g.USC() {
		t.Error("Fig1 state codes are all distinct")
	}
	if !g.CSC() {
		t.Error("Fig1 satisfies CSC")
	}
}

func TestFig4Basics(t *testing.T) {
	g := benchdata.Fig4SG()
	if g.NumStates() != 15 {
		t.Fatalf("Fig4 has %d states, want 15", g.NumStates())
	}
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if !g.SemiModular() {
		for _, c := range g.Conflicts() {
			t.Log(c.Describe(g))
		}
		t.Fatal("Fig4 must be fully semi-modular")
	}
	// Persistent: the paper stresses this SG is persistent yet violates MC.
	if !g.Persistent() {
		t.Fatal("Fig4 must be persistent")
	}
	if g.USC() {
		t.Error("Fig4 has two states with code 1100, USC must fail")
	}
	if !g.CSC() {
		t.Error("Fig4 satisfies CSC (equal excited non-input sets)")
	}
}

func TestFig4ERbRegions(t *testing.T) {
	g := benchdata.Fig4SG()
	b := g.SignalIndex("b")
	regs := g.RegionsOf(b)
	var plus []*sg.Region
	for _, er := range regs.ER {
		if er.Dir == sg.Plus {
			plus = append(plus, er)
		}
	}
	if len(plus) != 2 {
		t.Fatalf("ER(+b) should have 2 regions, got %d", len(plus))
	}
	sizes := map[int]bool{}
	for _, er := range plus {
		sizes[len(er.States)] = true
		if !er.UniqueEntry() {
			t.Errorf("%s must have unique entry", g.ERLabel(er))
		}
	}
	if !sizes[3] || !sizes[2] {
		t.Fatalf("ER(+b) regions should have sizes 3 and 2")
	}
}

func TestMirrorSwapsRoles(t *testing.T) {
	g := benchdata.Fig1SG()
	m := g.Mirror()
	for i := range g.Signals {
		if m.Input[i] == g.Input[i] {
			t.Fatalf("signal %s role not mirrored", g.Signals[i])
		}
	}
	if m.NumStates() != g.NumStates() {
		t.Fatal("mirror must preserve the state set")
	}
	// Mutating the mirror must not affect the original.
	m.States[0].Succ = nil
	if len(g.States[0].Succ) == 0 {
		t.Fatal("mirror shares successor slices with the original")
	}
}

func TestAddEdgeRejectsInconsistency(t *testing.T) {
	g := &sg.Graph{Signals: []string{"a", "b"}, Input: []bool{true, false}}
	s0 := g.AddState(0b00)
	s1 := g.AddState(0b11)
	if err := g.AddEdge(s0, s1, 0, sg.Plus); err == nil {
		t.Fatal("edge flipping two bits must be rejected")
	}
	s2 := g.AddState(0b01)
	if err := g.AddEdge(s0, s2, 0, sg.Minus); err == nil {
		t.Fatal("direction contradicting the code must be rejected")
	}
	if err := g.AddEdge(s0, s2, 0, sg.Plus); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
}

func TestCheckConsistencyUnreachable(t *testing.T) {
	g := &sg.Graph{Signals: []string{"a"}, Input: []bool{true}}
	g.AddState(0)
	g.AddState(1)
	if err := g.CheckConsistency(); err == nil {
		t.Fatal("unreachable state must be reported")
	}
}

func TestDetonantDetection(t *testing.T) {
	// Concurrent diamond: w → u (a+), w → v (b+) with a+ and b+
	// concurrent, and c becomes excited in both u and v while stable in
	// w: w is detonant with respect to c (OR-causality).
	g := &sg.Graph{Signals: []string{"a", "b", "c"}, Input: []bool{true, true, false}}
	w := g.AddState(0b000)
	u := g.AddState(0b001)  // a=1
	v := g.AddState(0b010)  // b=1
	z := g.AddState(0b011)  // a=1, b=1
	uc := g.AddState(0b101) // a=1, c=1
	vc := g.AddState(0b110) // b=1, c=1
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddEdge(w, u, 0, sg.Plus))
	must(g.AddEdge(w, v, 1, sg.Plus))
	must(g.AddEdge(u, z, 1, sg.Plus))
	must(g.AddEdge(v, z, 0, sg.Plus))
	must(g.AddEdge(u, uc, 2, sg.Plus))
	must(g.AddEdge(v, vc, 2, sg.Plus))
	det := g.Detonants(true)
	if len(det) != 1 || det[0].State != w || g.Signals[det[0].Signal] != "c" {
		t.Fatalf("detonant detection failed: %v", det)
	}
	if g.Distributive() {
		t.Error("graph with detonant state cannot be distributive")
	}
}

func TestInternalConflictDetection(t *testing.T) {
	// Output c excited in w, disabled by input a firing.
	g := &sg.Graph{Signals: []string{"a", "c"}, Input: []bool{true, false}}
	w := g.AddState(0b00)
	u := g.AddState(0b01) // a fired
	x := g.AddState(0b10) // c fired
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddEdge(w, u, 0, sg.Plus)) // a+ disables c
	must(g.AddEdge(w, x, 1, sg.Plus))
	ics := g.InternalConflicts()
	if len(ics) != 1 {
		t.Fatalf("want 1 internal conflict, got %v", ics)
	}
	if g.OutputSemiModular() {
		t.Error("graph must not be output semi-modular")
	}
	if got := ics[0].Describe(g); !strings.Contains(got, "internal conflict") {
		t.Errorf("Describe = %q", got)
	}
}

func TestCSCViolationDetection(t *testing.T) {
	// Cycle a+; c+; a-; a+; c-; a-: states (a=1,c=1) and (a=1,c=0) each
	// occur twice with different excited output sets → CSC violations.
	g := &sg.Graph{Signals: []string{"a", "c"}, Input: []bool{true, false}}
	s0 := g.AddState(0b00)
	s1 := g.AddState(0b01) // a=1, c excited
	s2 := g.AddState(0b11) // a- excited
	s3 := g.AddState(0b10) // a+ excited
	s4 := g.AddState(0b11) // c- excited (code clash with s2)
	s5 := g.AddState(0b01) // a- excited (code clash with s1)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddEdge(s0, s1, 0, sg.Plus))
	must(g.AddEdge(s1, s2, 1, sg.Plus))
	must(g.AddEdge(s2, s3, 0, sg.Minus))
	must(g.AddEdge(s3, s4, 0, sg.Plus))
	must(g.AddEdge(s4, s5, 1, sg.Minus))
	must(g.AddEdge(s5, s0, 0, sg.Minus))
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	viol := g.CSCViolations()
	if len(viol) != 2 {
		t.Fatalf("want 2 CSC violations, got %v", viol)
	}
	if g.CSC() {
		t.Error("CSC must fail")
	}
	if g.USC() {
		t.Error("USC must fail")
	}
}

func TestPropertyReportString(t *testing.T) {
	g := benchdata.Fig1SG()
	rep := g.Check()
	s := rep.String()
	for _, want := range []string{"states: 14", "output semi-modular: yes", "persistent: no"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	if rep.UniqueEntryOK != true {
		t.Error("all Fig1 output ERs have unique entries")
	}
}

func TestDumpAndDOT(t *testing.T) {
	g := benchdata.Fig1SG()
	d := g.Dump()
	if !strings.Contains(d, "0*0*00") || !strings.Contains(d, "a(in)") {
		t.Errorf("Dump missing content:\n%s", d)
	}
	dot := g.DOT()
	if !strings.Contains(dot, "digraph sg") || !strings.Contains(dot, "->") {
		t.Error("DOT output malformed")
	}
}
