package sg

import (
	"fmt"
	"sort"
	"strings"
)

// Conflict records a conflict state (Definition 1): signal A is excited in
// state W, and firing signal B from W makes A stable.
type Conflict struct {
	State    int // the conflict state w
	Signal   int // the signal a that gets disabled
	By       int // the signal b whose firing disables a
	ByDir    Dir
	After    int  // the state u = δ(w, *b) where a is stable
	Internal bool // true when Signal is a non-input signal
}

// String renders the conflict in a readable diagnostic form.
func (c Conflict) Describe(g *Graph) string {
	kind := "input"
	if c.Internal {
		kind = "internal"
	}
	return fmt.Sprintf("%s conflict at s%d (%s): %s disabled by %s%s → s%d",
		kind, c.State, g.CodeString(c.State), g.Signals[c.Signal],
		g.Signals[c.By], c.ByDir, c.After)
}

// Conflicts returns all conflict states of the graph (Definition 1).
func (g *Graph) Conflicts() []Conflict {
	return NewIndex(g).Conflicts()
}

// Conflicts is the index-backed form of the graph method: the per-pair
// excitation test is a mask lookup instead of a successor-list scan.
func (ix *Index) Conflicts() []Conflict {
	g := ix.G
	var out []Conflict
	for w := range g.States {
		for _, eb := range g.States[w].Succ {
			u := eb.To
			for _, ea := range g.States[w].Succ {
				a := ea.Signal
				if a == eb.Signal {
					continue
				}
				if ix.excited[u]>>uint(a)&1 == 0 {
					out = append(out, Conflict{
						State: w, Signal: a, By: eb.Signal, ByDir: eb.Dir,
						After: u, Internal: !g.Input[a],
					})
				}
			}
		}
	}
	return out
}

// SemiModular reports whether the graph has no conflict state at all
// (Definition 2 with respect to every reachable state).
func (g *Graph) SemiModular() bool { return len(g.Conflicts()) == 0 }

// OutputSemiModular reports whether no non-input signal is ever disabled
// (no internally conflict state). Only output semi-modular graphs can be
// implemented by speed-independent circuits.
func (g *Graph) OutputSemiModular() bool {
	for _, c := range g.Conflicts() {
		if c.Internal {
			return false
		}
	}
	return true
}

// InternalConflicts returns only the internally conflict states.
func (g *Graph) InternalConflicts() []Conflict {
	var out []Conflict
	for _, c := range g.Conflicts() {
		if c.Internal {
			out = append(out, c)
		}
	}
	return out
}

// Detonant records a detonant state (Definition 3): signal Signal is
// stable in State but excited in two distinct direct successors.
type Detonant struct {
	State  int
	Signal int
	U, V   int // the two successors in which Signal is excited
}

// Detonants returns all detonant states of the graph with respect to
// non-input signals when outputsOnly is true, or all signals otherwise.
//
// Following Varshavsky et al., detonance captures OR-causality among
// concurrently diverging branches: the two successors u and v must be
// reached by transitions that are concurrent at w (neither disables the
// other). Alternative branches of a choice (conflict) state are mutually
// exclusive worlds and do not make the state detonant — the paper's
// Figure 1 has an input choice at its initial state and is explicitly
// stated to be detonant-free.
func (g *Graph) Detonants(outputsOnly bool) []Detonant {
	return NewIndex(g).Detonants(outputsOnly)
}

// Detonants is the index-backed form of the graph method.
func (ix *Index) Detonants(outputsOnly bool) []Detonant {
	g := ix.G
	var out []Detonant
	for w := range g.States {
		succ := g.States[w].Succ
		for sig := range g.Signals {
			if outputsOnly && g.Input[sig] {
				continue
			}
			bit := uint64(1) << uint(sig)
			if ix.excited[w]&bit != 0 {
				continue
			}
			var hits []Edge
			for _, e := range succ {
				if e.Signal != sig && ix.excited[e.To]&bit != 0 {
					hits = append(hits, e)
				}
			}
			for i := 0; i < len(hits); i++ {
				for j := i + 1; j < len(hits); j++ {
					// Concurrent divergence: each branch keeps the other
					// transition enabled.
					if ix.Excited(hits[i].To, hits[j].Signal) && ix.Excited(hits[j].To, hits[i].Signal) {
						out = append(out, Detonant{State: w, Signal: sig, U: hits[i].To, V: hits[j].To})
					}
				}
			}
		}
	}
	return out
}

// Distributive reports whether the graph is semi-modular and free of
// detonant states (Definition 4).
func (g *Graph) Distributive() bool {
	return g.SemiModular() && len(g.Detonants(false)) == 0
}

// OutputDistributive reports whether the graph is output semi-modular and
// has no detonant states with respect to non-input signals.
func (g *Graph) OutputDistributive() bool {
	return g.OutputSemiModular() && len(g.Detonants(true)) == 0
}

// CSCViolation is a pair of states with identical binary codes but
// different excited non-input signal sets (Definition 14).
type CSCViolation struct {
	A, B int
}

// CSCViolations returns all state pairs breaking the Complete State
// Coding requirement.
func (g *Graph) CSCViolations() []CSCViolation {
	return NewIndex(g).CSCViolations()
}

// CSCViolations is the index-backed form of the graph method.
func (ix *Index) CSCViolations() []CSCViolation {
	g := ix.G
	byCode := make(map[uint64][]int)
	for s := range g.States {
		byCode[g.States[s].Code] = append(byCode[g.States[s].Code], s)
	}
	var out []CSCViolation
	codes := make([]uint64, 0, len(byCode))
	for c := range byCode { //reprolint:ordered keys collected then sorted on the next line
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	for _, c := range codes {
		states := byCode[c]
		for i := 0; i < len(states); i++ {
			for j := i + 1; j < len(states); j++ {
				if ix.excOut[states[i]] != ix.excOut[states[j]] {
					out = append(out, CSCViolation{A: states[i], B: states[j]})
				}
			}
		}
	}
	return out
}

// CSC reports whether the graph satisfies Complete State Coding.
func (g *Graph) CSC() bool { return len(g.CSCViolations()) == 0 }

// USC reports whether all state codes are unique (Unique State Coding,
// strictly stronger than CSC).
func (g *Graph) USC() bool {
	seen := make(map[uint64]bool, len(g.States))
	for s := range g.States {
		if seen[g.States[s].Code] {
			return false
		}
		seen[g.States[s].Code] = true
	}
	return true
}

// PropertyReport summarizes all specification-level checks for one graph.
type PropertyReport struct {
	Consistent        bool
	SemiModular       bool
	OutputSemiModular bool
	Distributive      bool
	OutputDistrib     bool
	Persistent        bool
	CSC               bool
	USC               bool
	UniqueEntryOK     bool
	InputConflicts    int
	InternalConflicts int
	Detonants         int
	States            int
}

// Check computes the full property report.
func (g *Graph) Check() PropertyReport {
	ix := NewIndex(g)
	conf := ix.Conflicts()
	rep := PropertyReport{
		Consistent:    g.CheckConsistency() == nil,
		Persistent:    len(ix.PersistencyViolations()) == 0,
		CSC:           len(ix.CSCViolations()) == 0,
		USC:           g.USC(),
		Detonants:     len(ix.Detonants(false)),
		States:        len(g.States),
		UniqueEntryOK: true,
	}
	rep.SemiModular = len(conf) == 0
	internal := 0
	for _, c := range conf {
		if c.Internal {
			internal++
		}
	}
	rep.InternalConflicts = internal
	rep.InputConflicts = len(conf) - internal
	rep.OutputSemiModular = internal == 0
	rep.Distributive = rep.SemiModular && rep.Detonants == 0
	rep.OutputDistrib = rep.OutputSemiModular && len(ix.Detonants(true)) == 0
	for sig := range g.Signals {
		if g.Input[sig] {
			continue
		}
		for _, er := range ix.RegionsOf(sig).ER {
			if !er.UniqueEntry() {
				rep.UniqueEntryOK = false
			}
		}
	}
	return rep
}

// String renders the report as a compact multi-line summary.
func (r PropertyReport) String() string {
	flag := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "states: %d\n", r.States)
	fmt.Fprintf(&b, "consistent: %s\n", flag(r.Consistent))
	fmt.Fprintf(&b, "semi-modular: %s (input conflicts: %d, internal: %d)\n",
		flag(r.SemiModular), r.InputConflicts, r.InternalConflicts)
	fmt.Fprintf(&b, "output semi-modular: %s\n", flag(r.OutputSemiModular))
	fmt.Fprintf(&b, "distributive: %s (detonants: %d)\n", flag(r.Distributive), r.Detonants)
	fmt.Fprintf(&b, "output distributive: %s\n", flag(r.OutputDistrib))
	fmt.Fprintf(&b, "persistent: %s\n", flag(r.Persistent))
	fmt.Fprintf(&b, "unique entry: %s\n", flag(r.UniqueEntryOK))
	fmt.Fprintf(&b, "CSC: %s, USC: %s", flag(r.CSC), flag(r.USC))
	return b.String()
}
