// Package sg implements the State Graph specification model of the paper
// (Section II): binary-encoded states, signal transitions, excitation /
// quiescent / constant-function regions, and the behavioural properties
// the Monotonous Cover theory is built on — conflicts, semi-modularity,
// distributivity, detonant states, unique entry, triggers, ordered and
// concurrent signals, persistency, and Complete State Coding.
//
// A state graph is a finite automaton G = <X, S, T, δ, s0> whose states
// carry consistent binary codes over the signal set X = XI ∪ XO.
package sg

import (
	"fmt"
	"sort"
	"strings"
)

// Dir is the direction of a signal transition.
type Dir int8

// Transition directions.
const (
	Plus  Dir = +1 // 0 → 1 ("+a")
	Minus Dir = -1 // 1 → 0 ("−a")
)

// String returns "+" or "-".
func (d Dir) String() string {
	if d == Plus {
		return "+"
	}
	return "-"
}

// Edge is one labelled state-graph arc: firing signal Signal in direction
// Dir moves to state To.
type Edge struct {
	Signal int
	Dir    Dir
	To     int
}

// State is one state of the graph. Code bit i is the value of signal i.
type State struct {
	Code uint64
	Succ []Edge
	Pred []Edge
}

// Graph is a state graph over at most 64 signals.
type Graph struct {
	Signals []string // signal names; index is the signal id
	Input   []bool   // Input[i] reports whether signal i is an input
	States  []State
	Initial int

	// Name is an optional label used in reports.
	Name string
}

// NumSignals returns |X|.
func (g *Graph) NumSignals() int { return len(g.Signals) }

// NumStates returns |S|.
func (g *Graph) NumStates() int { return len(g.States) }

// Value returns the value of signal sig in state s.
func (g *Graph) Value(s, sig int) bool { return g.States[s].Code>>uint(sig)&1 == 1 }

// Excited reports whether signal sig has an enabled transition in state s.
func (g *Graph) Excited(s, sig int) bool {
	for _, e := range g.States[s].Succ {
		if e.Signal == sig {
			return true
		}
	}
	return false
}

// ExcitedSet returns the bitmask of signals excited in state s.
func (g *Graph) ExcitedSet(s int) uint64 {
	var m uint64
	for _, e := range g.States[s].Succ {
		m |= 1 << uint(e.Signal)
	}
	return m
}

// ExcitedOutputs returns the bitmask of excited non-input signals in s.
func (g *Graph) ExcitedOutputs(s int) uint64 {
	var m uint64
	for _, e := range g.States[s].Succ {
		if !g.Input[e.Signal] {
			m |= 1 << uint(e.Signal)
		}
	}
	return m
}

// Successor returns the destination of firing signal sig in state s and
// whether such an edge exists.
func (g *Graph) Successor(s, sig int) (int, bool) {
	for _, e := range g.States[s].Succ {
		if e.Signal == sig {
			return e.To, true
		}
	}
	return 0, false
}

// SignalIndex returns the id of the named signal, or -1.
func (g *Graph) SignalIndex(name string) int {
	for i, n := range g.Signals {
		if n == name {
			return i
		}
	}
	return -1
}

// AddState appends a state with the given code and returns its index.
func (g *Graph) AddState(code uint64) int {
	g.States = append(g.States, State{Code: code})
	return len(g.States) - 1
}

// AddEdge inserts the edge from → to labelled with the transition of sig
// in direction d, updating both adjacency lists. It validates code
// consistency: exactly the bit of sig flips in direction d.
func (g *Graph) AddEdge(from, to, sig int, d Dir) error {
	cf, ct := g.States[from].Code, g.States[to].Code
	want := cf ^ 1<<uint(sig)
	if ct != want {
		return fmt.Errorf("sg: inconsistent edge %d→%d on %s%s: codes %0*b → %0*b",
			from, to, g.Signals[sig], d, len(g.Signals), cf, len(g.Signals), ct)
	}
	bit := cf>>uint(sig)&1 == 1
	if d == Plus && bit || d == Minus && !bit {
		return fmt.Errorf("sg: direction %s%s contradicts value %v in state %d",
			g.Signals[sig], d, bit, from)
	}
	g.States[from].Succ = append(g.States[from].Succ, Edge{Signal: sig, Dir: d, To: to})
	g.States[to].Pred = append(g.States[to].Pred, Edge{Signal: sig, Dir: d, To: from})
	return nil
}

// CheckConsistency verifies the consistent state assignment rules (every
// edge flips exactly its labelled signal in the labelled direction) and
// that all states are reachable from the initial state.
func (g *Graph) CheckConsistency() error {
	for si, st := range g.States {
		for _, e := range st.Succ {
			want := st.Code ^ 1<<uint(e.Signal)
			if g.States[e.To].Code != want {
				return fmt.Errorf("sg: edge %d→%d flips wrong bits", si, e.To)
			}
			bit := st.Code>>uint(e.Signal)&1 == 1
			if e.Dir == Plus && bit || e.Dir == Minus && !bit {
				return fmt.Errorf("sg: edge %d→%d labelled %s%s but signal is %v",
					si, e.To, g.Signals[e.Signal], e.Dir, bit)
			}
		}
	}
	seen := make([]bool, len(g.States))
	stack := []int{g.Initial}
	seen[g.Initial] = true
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.States[s].Succ {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("sg: state %d unreachable from initial state", i)
		}
	}
	return nil
}

// CodeString renders the code of state s with excitation asterisks, in the
// paper's pictorial style, e.g. "10 0*0*" without the space.
func (g *Graph) CodeString(s int) string {
	var b strings.Builder
	for i := range g.Signals {
		if g.Value(s, i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
		if g.Excited(s, i) {
			b.WriteByte('*')
		}
	}
	return b.String()
}

// StateByCodeString finds the state whose CodeString equals s (useful in
// tests referencing the paper's figures). Returns -1 when absent or
// ambiguous.
func (g *Graph) StateByCodeString(s string) int {
	found := -1
	for i := range g.States {
		if g.CodeString(i) == s {
			if found >= 0 {
				return -1
			}
			found = i
		}
	}
	return found
}

// Dump renders the graph as readable text, one state per line.
func (g *Graph) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "signals:")
	for i, n := range g.Signals {
		kind := "out"
		if g.Input[i] {
			kind = "in"
		}
		fmt.Fprintf(&b, " %s(%s)", n, kind)
	}
	fmt.Fprintf(&b, "\ninitial: %d\n", g.Initial)
	for i := range g.States {
		fmt.Fprintf(&b, "s%-3d %s :", i, g.CodeString(i))
		succ := append([]Edge(nil), g.States[i].Succ...)
		sort.Slice(succ, func(a, b int) bool { return succ[a].Signal < succ[b].Signal })
		for _, e := range succ {
			fmt.Fprintf(&b, " %s%s→s%d", g.Signals[e.Signal], e.Dir, e.To)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DOT renders the graph in Graphviz dot syntax.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph sg {\n  rankdir=TB;\n")
	for i := range g.States {
		shape := "ellipse"
		if i == g.Initial {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  s%d [label=\"%s\" shape=%s];\n", i, g.CodeString(i), shape)
	}
	for i, st := range g.States {
		for _, e := range st.Succ {
			fmt.Fprintf(&b, "  s%d -> s%d [label=\"%s%s\"];\n", i, e.To, g.Signals[e.Signal], e.Dir)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Mirror returns a copy of the graph with the input/output role of every
// signal inverted. The mirror of a specification is its environment
// (Molnar's Foam Rubber Wrapper view), used by the verifier.
func (g *Graph) Mirror() *Graph {
	m := &Graph{
		Signals: append([]string(nil), g.Signals...),
		Input:   make([]bool, len(g.Input)),
		Initial: g.Initial,
		Name:    g.Name + "-mirror",
	}
	for i, in := range g.Input {
		m.Input[i] = !in
	}
	m.States = make([]State, len(g.States))
	for i, st := range g.States {
		m.States[i] = State{
			Code: st.Code,
			Succ: append([]Edge(nil), st.Succ...),
			Pred: append([]Edge(nil), st.Pred...),
		}
	}
	return m
}
