package sg_test

import (
	"sort"
	"testing"

	"repro/internal/sg"
)

// This file retains the original map-based region decomposition as a
// reference implementation and checks, over the paper figures, the
// Table-1 benchmarks and random series-parallel specifications, that
// the dense StateSet/Index-based decomposition produces exactly the
// same regions.

// refComponents splits the state list into maximal weakly connected
// components using only edges whose both endpoints lie in the set —
// the seed revision's map-based connectedComponents.
func refComponents(g *sg.Graph, states []int) [][]int {
	in := make(map[int]bool, len(states))
	for _, s := range states {
		in[s] = true
	}
	seen := make(map[int]bool, len(states))
	var comps [][]int
	for _, s := range states {
		if seen[s] {
			continue
		}
		comp := []int{s}
		seen[s] = true
		for q := []int{s}; len(q) > 0; {
			u := q[len(q)-1]
			q = q[:len(q)-1]
			for _, e := range g.States[u].Succ {
				if in[e.To] && !seen[e.To] {
					seen[e.To] = true
					comp = append(comp, e.To)
					q = append(q, e.To)
				}
			}
			for _, e := range g.States[u].Pred {
				if in[e.To] && !seen[e.To] {
					seen[e.To] = true
					comp = append(comp, e.To)
					q = append(q, e.To)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// refRegions is the map-based reference decomposition of one signal:
// the components of the four Value×Excited classes, plus the minimal
// states of every component.
type refRegions struct {
	erPlus, erMinus, qrPlus, qrMinus [][]int
}

func refDecompose(g *sg.Graph, sig int) refRegions {
	var erPlus, erMinus, qr0, qr1 []int
	for s := range g.States {
		v := g.Value(s, sig)
		if g.Excited(s, sig) {
			if v {
				erMinus = append(erMinus, s)
			} else {
				erPlus = append(erPlus, s)
			}
		} else {
			if v {
				qr1 = append(qr1, s)
			} else {
				qr0 = append(qr0, s)
			}
		}
	}
	return refRegions{
		erPlus:  refComponents(g, erPlus),
		erMinus: refComponents(g, erMinus),
		qrPlus:  refComponents(g, qr1),
		qrMinus: refComponents(g, qr0),
	}
}

func refMin(g *sg.Graph, comp []int) []int {
	in := make(map[int]bool, len(comp))
	for _, s := range comp {
		in[s] = true
	}
	var min []int
	for _, s := range comp {
		minimal := true
		for _, e := range g.States[s].Pred {
			if in[e.To] {
				minimal = false
				break
			}
		}
		if minimal {
			min = append(min, s)
		}
	}
	return min
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func splitByDir(rs []*sg.Region, d sg.Dir) []*sg.Region {
	var out []*sg.Region
	for _, r := range rs {
		if r.Dir == d {
			out = append(out, r)
		}
	}
	return out
}

func compareRegions(t *testing.T, g *sg.Graph, name, kind string, got []*sg.Region, want [][]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %s: %d regions, reference has %d", name, kind, len(got), len(want))
	}
	for i, r := range got {
		if !equalIntSlices(r.States, want[i]) {
			t.Fatalf("%s: %s #%d: states %v, reference %v", name, kind, i, r.States, want[i])
		}
		if wantMin := refMin(g, want[i]); !equalIntSlices(r.Min, wantMin) {
			t.Fatalf("%s: %s #%d: minimal states %v, reference %v", name, kind, i, r.Min, wantMin)
		}
		for _, s := range want[i] {
			if !r.Contains(s) || !r.Set().Has(s) {
				t.Fatalf("%s: %s #%d: membership of s%d lost in the dense set", name, kind, i, s)
			}
		}
	}
}

func TestDifferentialRegionsVsMapReference(t *testing.T) {
	for name, g := range propertyGraphs(t) {
		for sig := range g.Signals {
			regs := g.RegionsOf(sig)
			ref := refDecompose(g, sig)
			compareRegions(t, g, name, "ER+", splitByDir(regs.ER, sg.Plus), ref.erPlus)
			compareRegions(t, g, name, "ER-", splitByDir(regs.ER, sg.Minus), ref.erMinus)
			compareRegions(t, g, name, "QR+", splitByDir(regs.QR, sg.Plus), ref.qrPlus)
			compareRegions(t, g, name, "QR-", splitByDir(regs.QR, sg.Minus), ref.qrMinus)

			// CFR(i) must be exactly ER(i) ∪ its following QR, computed
			// here with maps.
			for i, er := range regs.ER {
				want := map[int]bool{}
				for _, s := range er.States {
					want[s] = true
				}
				if j := regs.QRAfter[i]; j >= 0 {
					for _, s := range regs.QR[j].States {
						want[s] = true
					}
				}
				cfr := regs.CFR(i)
				if cfr.Count() != len(want) {
					t.Fatalf("%s/%s: CFR(%d) has %d states, reference %d",
						name, g.Signals[sig], i, cfr.Count(), len(want))
				}
				cfr.ForEach(func(s int) {
					if !want[s] {
						t.Fatalf("%s/%s: CFR(%d) contains stray state s%d",
							name, g.Signals[sig], i, s)
					}
				})
			}
		}
	}
}

func TestDifferentialIndexSuccessorsAndExcitation(t *testing.T) {
	// The dense Index must agree with the Graph's own map-backed
	// Successor/Excited on every (state, signal) pair.
	for name, g := range propertyGraphs(t) {
		ix := sg.NewIndex(g)
		for s := 0; s < g.NumStates(); s++ {
			for sig := range g.Signals {
				if ge, ie := g.Excited(s, sig), ix.Excited(s, sig); ge != ie {
					t.Fatalf("%s: Excited(s%d, %s): graph %v, index %v",
						name, s, g.Signals[sig], ge, ie)
				}
				gt, gok := g.Successor(s, sig)
				it, iok := ix.Successor(s, sig)
				if gok != iok || (gok && gt != it) {
					t.Fatalf("%s: Successor(s%d, %s): graph (%d,%v), index (%d,%v)",
						name, s, g.Signals[sig], gt, gok, it, iok)
				}
			}
		}
	}
}
