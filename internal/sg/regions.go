package sg

import (
	"fmt"
	"sort"
)

// Region is a maximal connected set of states associated with one
// transition occurrence of a signal: an excitation region ER(*a_i)
// (Definition 5) or a quiescent region QR(*a_i) (Definition 6).
type Region struct {
	Signal int
	Dir    Dir // direction of the underlying transition *a_i
	Index  int // occurrence index i (1-based, in discovery order)
	States []int

	// Min lists the minimal states (no predecessor inside the region,
	// Definition 8); a region obeys the unique entry condition
	// (Definition 9) when len(Min) == 1.
	Min []int

	set StateSet
}

// Contains reports whether state s belongs to the region.
func (r *Region) Contains(s int) bool { return r.set.Has(s) }

// Set returns the region's membership bitset. Callers must not mutate it.
func (r *Region) Set() StateSet { return r.set }

// UniqueEntry reports whether the region satisfies the unique entry
// condition (Definition 9).
func (r *Region) UniqueEntry() bool { return len(r.Min) == 1 }

// MinState returns the unique minimal state u_min(*a_i); it panics when
// the unique entry condition fails.
func (r *Region) MinState() int {
	if len(r.Min) != 1 {
		panic("sg: region without unique entry")
	}
	return r.Min[0]
}

// Label renders the region as e.g. "ER(+d,1)" or "QR(-x,2)".
func (r *Region) label(g *Graph, kind string) string {
	return fmt.Sprintf("%s(%s%s,%d)", kind, r.Dir, g.Signals[r.Signal], r.Index)
}

// Regions holds the complete region decomposition of a state graph for
// one signal: alternating excitation and quiescent regions.
type Regions struct {
	Signal int
	ER     []*Region
	QR     []*Region

	// QRAfter[i] is the index into QR of the quiescent region entered
	// when the transition of ER[i] fires, or -1 when the transition leads
	// straight into another excitation region context (which cannot
	// happen in a consistent SG, but is kept defensive).
	QRAfter []int
}

// connectedComponents splits the state set into maximal weakly connected
// components using only edges whose both endpoints lie in the set.
func (g *Graph) connectedComponents(states []int) [][]int {
	n := g.NumStates()
	return g.components(states, NewStateSet(n), NewStateSet(n),
		make([]int, len(states)), make([]int, 0, len(states)), nil)
}

// components is connectedComponents with caller-provided scratch: in
// and seen must be empty sets sized for the graph (they come back
// dirty), buf is the backing the returned components are carved out of
// (len ≥ len(states)), q is a reusable BFS queue, and new components
// are appended to comps. RegionsOf decomposes four partitions per
// signal and shares one scratch set across them.
func (g *Graph) components(states []int, in, seen StateSet, buf, q []int, comps [][]int) [][]int {
	for _, s := range states {
		in.Add(s)
	}
	off := 0
	for _, s := range states {
		if seen.Has(s) {
			continue
		}
		// Each component occupies the next contiguous window of buf:
		// its appends finish before the following component starts, so
		// sharing the tail capacity is safe.
		comp := buf[off:off:len(buf)]
		comp = append(comp, s)
		seen.Add(s)
		for q = append(q[:0], s); len(q) > 0; {
			u := q[len(q)-1]
			q = q[:len(q)-1]
			for _, e := range g.States[u].Succ {
				if in.Has(e.To) && !seen.Has(e.To) {
					seen.Add(e.To)
					comp = append(comp, e.To)
					q = append(q, e.To)
				}
			}
			for _, e := range g.States[u].Pred {
				if in.Has(e.To) && !seen.Has(e.To) {
					seen.Add(e.To)
					comp = append(comp, e.To)
					q = append(q, e.To)
				}
			}
		}
		off += len(comp)
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

func newRegion(g *Graph, sig int, d Dir, idx int, states []int) *Region {
	r := &Region{Signal: sig, Dir: d, Index: idx, States: states, set: NewStateSet(g.NumStates())}
	for _, s := range states {
		r.set.Add(s)
	}
	for _, s := range states {
		minimal := true
		for _, e := range g.States[s].Pred {
			if r.set.Has(e.To) {
				minimal = false
				break
			}
		}
		if minimal {
			r.Min = append(r.Min, s)
		}
	}
	return r
}

// RegionsOf computes the excitation and quiescent regions of signal sig
// (Definitions 5 and 6) and the ER → following-QR association. It builds
// a transient Index; callers decomposing many signals should build one
// Index and use its RegionsOf.
func (g *Graph) RegionsOf(sig int) *Regions {
	return NewIndex(g).RegionsOf(sig)
}

// RegionsOf computes the region decomposition of signal sig using the
// index's O(1) excitation and successor lookups.
func (ix *Index) RegionsOf(sig int) *Regions {
	g := ix.G
	bit := uint64(1) << uint(sig)
	// The four partitions always sum to the state count: count each
	// class first, then carve exact windows out of one n-int backing.
	n := g.NumStates()
	nEP, nEM, nQ0 := 0, 0, 0
	for s := range g.States {
		v := g.Value(s, sig)
		if ix.excited[s]&bit != 0 {
			if v {
				nEM++
			} else {
				nEP++
			}
		} else if !v {
			nQ0++
		}
	}
	buf := make([]int, n)
	o1, o2, o3 := nEP, nEP+nEM, nEP+nEM+nQ0
	erPlus := buf[0:0:o1]
	erMinus := buf[o1:o1:o2]
	qr0 := buf[o2:o2:o3]
	qr1 := buf[o3:o3:n]
	for s := range g.States {
		v := g.Value(s, sig)
		if ix.excited[s]&bit != 0 {
			if v {
				erMinus = append(erMinus, s)
			} else {
				erPlus = append(erPlus, s)
			}
		} else {
			if v {
				qr1 = append(qr1, s)
			} else {
				qr0 = append(qr0, s)
			}
		}
	}
	res := &Regions{Signal: sig}
	// One scratch set pair and one component backing serve all four
	// decompositions (their states are disjoint and sum to n), and all
	// regions of the signal share batch-allocated structs, bitsets and
	// minimal-state storage: region decomposition runs once per scanned
	// signal of every scored candidate graph, so the constant count of
	// allocations per call matters more than their size. The int
	// scratch (component storage, BFS queue, minimal states, QRAfter)
	// and the bitset words (in/seen scratch plus the ≤ n region sets)
	// are each carved from a single backing.
	w := (n + 63) / 64
	words := make([]uint64, (n+2)*w)
	in, seen := StateSet(words[:w:w]), StateSet(words[w:2*w:2*w])
	sets := words[2*w:]
	ints := make([]int, 4*n)
	cbuf := ints[:n]
	q := ints[n : n : 2*n]
	minBuf := ints[2*n : 2*n : 3*n]
	qrAfter := ints[3*n : 3*n : 4*n]
	// Components are disjoint and nonempty, so across the four
	// partitions there are at most n of them: one header backing, with
	// each comps() call returning its own full-capacity window.
	all := make([][]int, 0, n)
	used := 0
	comps := func(states []int) [][]int {
		clear(in)
		clear(seen)
		start := len(all)
		all = g.components(states, in, seen, cbuf[used:used+len(states)], q, all)
		used += len(states)
		return all[start:len(all):len(all)]
	}
	erP, erM := comps(erPlus), comps(erMinus)
	// QR(+a_i): a stable at 1, follows an up transition.
	qrP, qrM := comps(qr1), comps(qr0)
	tot := len(erP) + len(erM) + len(qrP) + len(qrM)
	regs := make([]Region, tot)
	ptrs := make([]*Region, tot)
	ri := 0
	build := func(d Dir, idx int, comp []int) *Region {
		r := &regs[ri]
		r.Signal, r.Dir, r.Index, r.States = sig, d, idx, comp
		r.set = sets[ri*w : (ri+1)*w : (ri+1)*w]
		ri++
		for _, s := range comp {
			r.set.Add(s)
		}
		off := len(minBuf)
		for _, s := range comp {
			minimal := true
			for _, e := range g.States[s].Pred {
				if r.set.Has(e.To) {
					minimal = false
					break
				}
			}
			if minimal {
				minBuf = append(minBuf, s)
			}
		}
		r.Min = minBuf[off:len(minBuf):len(minBuf)]
		return r
	}
	ne := len(erP) + len(erM)
	res.ER = ptrs[:0:ne]
	res.QR = ptrs[ne:ne:tot]
	for i, comp := range erP {
		res.ER = append(res.ER, build(Plus, i+1, comp))
	}
	for i, comp := range erM {
		res.ER = append(res.ER, build(Minus, i+1, comp))
	}
	for i, comp := range qrP {
		res.QR = append(res.QR, build(Plus, i+1, comp))
	}
	for i, comp := range qrM {
		res.QR = append(res.QR, build(Minus, i+1, comp))
	}
	// Associate each ER with the QR entered when its transition fires.
	res.QRAfter = qrAfter[:len(res.ER)]
	for i, er := range res.ER {
		res.QRAfter[i] = -1
		for _, s := range er.States {
			to, ok := ix.Successor(s, sig)
			if !ok {
				continue
			}
			for j, qr := range res.QR {
				if qr.Dir == er.Dir && qr.Contains(to) {
					res.QRAfter[i] = j
					break
				}
			}
			if res.QRAfter[i] >= 0 {
				break
			}
		}
	}
	return res
}

// ERLabel renders an excitation region name such as "ER(+d,1)".
func (g *Graph) ERLabel(r *Region) string { return r.label(g, "ER") }

// QRLabel renders a quiescent region name such as "QR(+d,1)".
func (g *Graph) QRLabel(r *Region) string { return r.label(g, "QR") }

// CFR returns the constant function region of the i-th excitation region
// of res (Definition 7): ER(*a_i) ∪ QR(*a_i), as a state set.
func (res *Regions) CFR(i int) StateSet {
	return res.CFRInto(i, make(StateSet, len(res.ER[i].set)))
}

// CFRInto is CFR writing into a caller-provided set of at least the
// region bitset's word width, returning the written prefix. It lets the
// per-candidate scoring loop reuse one buffer across its CFR queries.
func (res *Regions) CFRInto(i int, dst StateSet) StateSet {
	er := res.ER[i].set
	dst = dst[:len(er)]
	copy(dst, er)
	if j := res.QRAfter[i]; j >= 0 {
		dst.UnionWith(res.QR[j].set)
	}
	return dst
}

// Trigger is a transition that can enter an excitation region from
// outside (Definition 10).
type Trigger struct {
	Signal int
	Dir    Dir
	From   int // state outside the region
	To     int // state inside the region
}

// Triggers returns the trigger transitions of region er: edges from a
// state outside the region to a state inside it, excluding the region's
// own signal.
func (g *Graph) Triggers(er *Region) []Trigger {
	var out []Trigger
	for _, s := range er.States {
		for _, e := range g.States[s].Pred {
			if er.Contains(e.To) || e.Signal == er.Signal {
				continue
			}
			out = append(out, Trigger{Signal: e.Signal, Dir: e.Dir, From: e.To, To: s})
		}
	}
	return out
}

// Ordered reports whether signal b is ordered with respect to the
// excitation region er (Definition 11): no transition of b is excited
// within er. The region's own signal is not ordered with itself.
func (g *Graph) Ordered(er *Region, b int) bool {
	if b == er.Signal {
		return false
	}
	for _, s := range er.States {
		if g.Excited(s, b) {
			return false
		}
	}
	return true
}

// Concurrent reports whether signal b is concurrent with er's transition
// (the negation of Ordered for signals other than er's own).
func (g *Graph) Concurrent(er *Region, b int) bool {
	if b == er.Signal {
		return false
	}
	return !g.Ordered(er, b)
}

// PersistencyViolation describes a trigger signal that is concurrent with
// the excitation region it triggers (Definition 12).
type PersistencyViolation struct {
	Region  *Region
	Trigger int // trigger signal that is non-persistent
}

// PersistencyViolations returns every (excitation region, trigger signal)
// pair of non-input signals violating persistency. A state graph is
// persistent when the result is empty.
func (g *Graph) PersistencyViolations() []PersistencyViolation {
	return NewIndex(g).PersistencyViolations()
}

// PersistencyViolations is the index-backed form of the graph method.
func (ix *Index) PersistencyViolations() []PersistencyViolation {
	g := ix.G
	var out []PersistencyViolation
	for sig := range g.Signals {
		if g.Input[sig] {
			continue
		}
		regs := ix.RegionsOf(sig)
		for _, er := range regs.ER {
			var seen uint64
			for _, tr := range g.Triggers(er) {
				if seen>>uint(tr.Signal)&1 == 1 {
					continue
				}
				seen |= 1 << uint(tr.Signal)
				if ix.Concurrent(er, tr.Signal) {
					out = append(out, PersistencyViolation{Region: er, Trigger: tr.Signal})
				}
			}
		}
	}
	return out
}

// Persistent reports whether every non-input excitation region is
// persistent with respect to its trigger signals (Definition 12).
func (g *Graph) Persistent() bool { return len(g.PersistencyViolations()) == 0 }
