package sg

// Index is a precomputed dense view of one state graph: per-state
// excitation bitmasks and a state×signal successor table. It turns the
// O(deg) Succ-slice scans of Excited and Successor — the inner loop of
// region decomposition, MC checking and verification — into O(1) array
// lookups. Build it once per graph (the graph must not gain states or
// edges afterwards) and thread it through the analysis.
type Index struct {
	G *Graph

	nsig    int
	excited []uint64 // per-state bitmask of excited signals
	excOut  []uint64 // per-state bitmask of excited non-input signals
	succ    []int32  // state*nsig + sig → successor state + 1, or 0
}

// NewIndex builds the dense index of g.
func NewIndex(g *Graph) *Index {
	ns, nsig := g.NumStates(), g.NumSignals()
	bits := make([]uint64, 2*ns)
	ix := &Index{
		G:       g,
		nsig:    nsig,
		excited: bits[:ns:ns],
		excOut:  bits[ns:],
		succ:    make([]int32, ns*nsig),
	}
	inputMask := uint64(0)
	for sig, in := range g.Input {
		if in {
			inputMask |= 1 << uint(sig)
		}
	}
	for s := range g.States {
		var m uint64
		row := ix.succ[s*nsig : (s+1)*nsig]
		for _, e := range g.States[s].Succ {
			m |= 1 << uint(e.Signal)
			// Stored shifted by one so the zeroed allocation already
			// means "no edge" — the table needs no -1 fill pass.
			row[e.Signal] = int32(e.To) + 1
		}
		ix.excited[s] = m
		ix.excOut[s] = m &^ inputMask
	}
	return ix
}

// Excited reports whether signal sig has an enabled transition in state s.
func (ix *Index) Excited(s, sig int) bool { return ix.excited[s]>>uint(sig)&1 == 1 }

// ExcitedMask returns the bitmask of signals excited in state s.
func (ix *Index) ExcitedMask(s int) uint64 { return ix.excited[s] }

// ExcitedOutputs returns the bitmask of excited non-input signals in s.
func (ix *Index) ExcitedOutputs(s int) uint64 { return ix.excOut[s] }

// Successor returns the destination of firing signal sig in state s and
// whether such an edge exists.
func (ix *Index) Successor(s, sig int) (int, bool) {
	to := ix.succ[s*ix.nsig+sig]
	return int(to) - 1, to > 0
}

// Ordered reports whether signal b is ordered with respect to the
// excitation region er (Definition 11): no transition of b is excited
// within er. The region's own signal is not ordered with itself.
func (ix *Index) Ordered(er *Region, b int) bool {
	if b == er.Signal {
		return false
	}
	bit := uint64(1) << uint(b)
	for _, s := range er.States {
		if ix.excited[s]&bit != 0 {
			return false
		}
	}
	return true
}

// Concurrent reports whether signal b is concurrent with er's transition
// (the negation of Ordered for signals other than er's own).
func (ix *Index) Concurrent(er *Region, b int) bool {
	if b == er.Signal {
		return false
	}
	return !ix.Ordered(er, b)
}
