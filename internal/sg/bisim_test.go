package sg_test

import (
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/encode"
	"repro/internal/sg"
	"repro/internal/stg"
)

func buildSGFromSource(src string) (*sg.Graph, error) {
	net, err := stg.Parse(src)
	if err != nil {
		return nil, err
	}
	return stg.BuildSG(net)
}

func TestBisimIdentity(t *testing.T) {
	g := benchdata.Fig1SG()
	if err := sg.WeaklyBisimilar(g, g); err != nil {
		t.Fatalf("a graph must be bisimilar to itself: %v", err)
	}
}

func TestBisimRepairPreservesBehaviour(t *testing.T) {
	// The Section-V transformation must not change the visible
	// behaviour: the expanded graph with the inserted state signals
	// hidden is weakly bisimilar to the specification.
	for _, mk := range []func() *sg.Graph{benchdata.Fig1SG, benchdata.Fig4SG} {
		g := mk()
		res, err := encode.Repair(g, encode.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sg.WeaklyBisimilar(g, res.G); err != nil {
			t.Fatalf("%s: insertion changed the visible behaviour: %v", g.Name, err)
		}
	}
}

func TestBisimRepairPreservesTable1(t *testing.T) {
	for _, name := range []string{"luciano", "Delement", "berkel2", "nowick"} {
		e, _ := benchdata.Table1ByName(name)
		g, err := buildSGFromSource(e.Source)
		if err != nil {
			t.Fatal(err)
		}
		res, err := encode.Repair(g, encode.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sg.WeaklyBisimilar(g, res.G); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestBisimDetectsMissingBehaviour(t *testing.T) {
	// Remove one edge's worth of behaviour: a spec cycle vs an impl
	// that stops short is not bisimilar.
	spec := toggleGraph(t, true)
	impl := toggleGraph(t, false)
	err := sg.WeaklyBisimilar(spec, impl)
	if err == nil {
		t.Fatal("differing graphs reported bisimilar")
	}
	if !strings.Contains(err.Error(), "refuses") {
		t.Fatalf("unexpected diagnosis: %v", err)
	}
}

// toggleGraph builds a+;x+;a-;x-;a+;y+;a-;y- (full) or the same graph
// with y replaced by a second x-handshake (differing visible behaviour:
// the full one offers y+, the other offers x+).
func toggleGraph(t *testing.T, withY bool) *sg.Graph {
	t.Helper()
	g := &sg.Graph{Signals: []string{"a", "x", "y"}, Input: []bool{true, false, false}, Name: "toggle"}
	// Codes over (a,x,y).
	s0 := g.AddState(0b000)
	s1 := g.AddState(0b001)
	s2 := g.AddState(0b011)
	s3 := g.AddState(0b010)
	s4 := g.AddState(0b000)
	s5 := g.AddState(0b001)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddEdge(s0, s1, 0, sg.Plus))
	must(g.AddEdge(s1, s2, 1, sg.Plus))
	must(g.AddEdge(s2, s3, 0, sg.Minus))
	must(g.AddEdge(s3, s4, 1, sg.Minus))
	must(g.AddEdge(s4, s5, 0, sg.Plus))
	if withY {
		s6 := g.AddState(0b101)
		s7 := g.AddState(0b100)
		must(g.AddEdge(s5, s6, 2, sg.Plus))
		must(g.AddEdge(s6, s7, 0, sg.Minus))
		must(g.AddEdge(s7, s0, 2, sg.Minus))
	} else {
		s6 := g.AddState(0b011)
		s7 := g.AddState(0b010)
		must(g.AddEdge(s5, s6, 1, sg.Plus))
		must(g.AddEdge(s6, s7, 0, sg.Minus))
		must(g.AddEdge(s7, s0, 1, sg.Minus))
	}
	return g
}

func TestBisimDetectsExtraBehaviour(t *testing.T) {
	// Swap roles: the implementation offers x+ where the spec wants y+.
	spec := toggleGraph(t, false)
	impl := toggleGraph(t, true)
	err := sg.WeaklyBisimilar(spec, impl)
	if err == nil {
		t.Fatal("differing graphs reported bisimilar")
	}
}

func TestBisimMissingSignal(t *testing.T) {
	spec := benchdata.Fig1SG()
	impl := toggleGraph(t, true)
	if err := sg.WeaklyBisimilar(spec, impl); err == nil {
		t.Fatal("signal-set mismatch must be reported")
	}
}

func TestBisimHidesInsertedSignalsOnly(t *testing.T) {
	// The expanded handshake (buffer insertion) is bisimilar to the
	// original even though it has twice the hidden moves.
	g := &sg.Graph{Signals: []string{"req", "ack"}, Input: []bool{true, false}, Name: "hs"}
	s0 := g.AddState(0b00)
	s1 := g.AddState(0b01)
	s2 := g.AddState(0b11)
	s3 := g.AddState(0b10)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddEdge(s0, s1, 0, sg.Plus))
	must(g.AddEdge(s1, s2, 1, sg.Plus))
	must(g.AddEdge(s2, s3, 0, sg.Minus))
	must(g.AddEdge(s3, s0, 1, sg.Minus))
	labels := []encode.Label{encode.L0, encode.LR, encode.L1, encode.LF}
	g2, err := encode.Expand(g, labels, "x")
	if err != nil {
		t.Fatal(err)
	}
	if err := sg.WeaklyBisimilar(g, g2); err != nil {
		t.Fatalf("buffer insertion must preserve behaviour: %v", err)
	}
}
