package sg

import (
	"fmt"
	"strings"
)

// This file implements weak-bisimulation checking between a
// specification state graph and a transformed one whose extra (inserted
// state) signals are hidden as internal τ moves. The synthesis procedure
// of Section V must preserve the specification's visible behaviour: the
// expanded graph G′, observed only on the original signals, must be
// weakly bisimilar to G. The checker exploits that state graphs are
// deterministic per label and that hidden-signal moves in a
// semi-modular graph are confluent, so a subset construction over
// τ-closures decides equivalence and yields counterexample traces.

// visibleLabel is a signal transition of the specification alphabet.
type visibleLabel struct {
	Signal int // index into the SPEC's signal list
	Dir    Dir
}

func (l visibleLabel) render(g *Graph) string { return g.Signals[l.Signal] + l.Dir.String() }

// WeaklyBisimilar checks that impl, with every signal not present in
// spec hidden, is weakly bisimilar to spec from the initial states. The
// signal correspondence is by name. It returns nil on success or an
// error with a distinguishing trace.
func WeaklyBisimilar(spec, impl *Graph) error {
	// Signal correspondence is by name: duplicates would make it
	// ambiguous (and indicate a broken transformation).
	for _, g := range []*Graph{spec, impl} {
		seen := map[string]bool{}
		for _, name := range g.Signals {
			if seen[name] {
				return fmt.Errorf("sg: duplicate signal name %q in %s", name, g.Name)
			}
			seen[name] = true
		}
	}
	// Map impl signals to spec signals; unmapped ones are hidden.
	hidden := make([]bool, impl.NumSignals())
	toSpec := make([]int, impl.NumSignals())
	for i, name := range impl.Signals {
		s := spec.SignalIndex(name)
		toSpec[i] = s
		hidden[i] = s < 0
	}
	for _, name := range spec.Signals {
		if impl.SignalIndex(name) < 0 {
			return fmt.Errorf("sg: implementation lacks signal %s", name)
		}
	}

	nImpl := impl.NumStates()

	// τ-closure of an impl state set. Hidden moves in an output
	// semi-modular graph cannot be disabled, so the closure is finite
	// and confluent. A cycle of hidden moves inside the closure would be
	// divergence (the circuit chattering internally forever).
	closure := func(set StateSet) (StateSet, error) {
		out := set.Clone()
		stack := set.Members()
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range impl.States[s].Succ {
				if !hidden[e.Signal] || out.Has(e.To) {
					continue
				}
				out.Add(e.To)
				stack = append(stack, e.To)
			}
		}
		// Divergence: cycle in the hidden-edge subgraph of the closure.
		const (
			white = iota
			gray
			black
		)
		color := make([]int8, nImpl)
		var dfs func(s int) bool
		dfs = func(s int) bool {
			color[s] = gray
			for _, e := range impl.States[s].Succ {
				if !hidden[e.Signal] || !out.Has(e.To) {
					continue
				}
				switch color[e.To] {
				case gray:
					return true
				case white:
					if dfs(e.To) {
						return true
					}
				}
			}
			color[s] = black
			return false
		}
		diverged := out.FindFirst(func(s int) bool { return color[s] == white && dfs(s) })
		if diverged >= 0 {
			return nil, fmt.Errorf("sg: divergence: cycle of hidden moves at state %d", diverged)
		}
		return out, nil
	}

	key := func(set StateSet) string {
		var b strings.Builder
		set.ForEach(func(s int) { fmt.Fprintf(&b, "%d,", s) })
		return b.String()
	}

	type node struct {
		spec  int
		impl  StateSet
		trace []visibleLabel
	}
	start, err := closure(SetOf(nImpl, impl.Initial))
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	queue := []node{{spec: spec.Initial, impl: start}}
	seen[fmt.Sprintf("%d|%s", spec.Initial, key(start))] = true

	renderTrace := func(trace []visibleLabel, last string) string {
		var parts []string
		for _, l := range trace {
			parts = append(parts, l.render(spec))
		}
		parts = append(parts, last)
		return strings.Join(parts, " ")
	}

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]

		// Visible moves of the spec state.
		specEnabled := map[visibleLabel]int{}
		for _, e := range spec.States[cur.spec].Succ {
			specEnabled[visibleLabel{Signal: e.Signal, Dir: e.Dir}] = e.To
		}
		// Visible moves of the impl state set (after closure).
		implEnabled := map[visibleLabel]StateSet{}
		cur.impl.ForEach(func(s int) {
			for _, e := range impl.States[s].Succ {
				if hidden[e.Signal] {
					continue
				}
				l := visibleLabel{Signal: toSpec[e.Signal], Dir: e.Dir}
				if implEnabled[l] == nil {
					implEnabled[l] = NewStateSet(nImpl)
				}
				implEnabled[l].Add(e.To)
			}
		})
		for l := range specEnabled { //reprolint:ordered the pass/fail verdict is order-independent; any refused label serves as counterexample
			if implEnabled[l] == nil {
				return fmt.Errorf("sg: implementation refuses %s after trace: %s",
					l.render(spec), renderTrace(cur.trace, l.render(spec)))
			}
		}
		for l := range implEnabled { //reprolint:ordered the pass/fail verdict is order-independent; any unspecified label serves as counterexample
			if _, ok := specEnabled[l]; !ok {
				return fmt.Errorf("sg: implementation offers unspecified %s after trace: %s",
					l.render(spec), renderTrace(cur.trace, l.render(spec)))
			}
		}
		//reprolint:ordered exploration order only affects which counterexample surfaces; the seen-set makes the verdict order-independent
		for l, to := range specEnabled {
			next, err := closure(implEnabled[l])
			if err != nil {
				return err
			}
			k := fmt.Sprintf("%d|%s", to, key(next))
			if seen[k] {
				continue
			}
			seen[k] = true
			trace := append(append([]visibleLabel(nil), cur.trace...), l)
			queue = append(queue, node{spec: to, impl: next, trace: trace})
		}
	}
	return nil
}
