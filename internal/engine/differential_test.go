package engine_test

import (
	"reflect"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/engine"
	"repro/internal/stg"
)

// The explicit engine is the pinned reference: on every spec both
// engines can finish, their analyses must be deeply equal — state
// counts, 1-safety verdicts, region decompositions (as marking sets)
// and the existence-only MC summary.

// agree runs both engines with fingerprinting and fails the test on any
// divergence.
func agree(t *testing.T, n *stg.STG) {
	t.Helper()
	opts := engine.Options{Fingerprint: true}
	exp, err := (&engine.Explicit{Opts: opts}).Analyze(n)
	if err != nil {
		t.Fatalf("%s: explicit: %v", n.Name, err)
	}
	sym, err := (&engine.Symbolic{Opts: opts}).Analyze(n)
	if err != nil {
		t.Fatalf("%s: symbolic: %v", n.Name, err)
	}
	exp.Engine, sym.Engine = "", ""
	if !reflect.DeepEqual(exp, sym) {
		t.Errorf("%s: analyses diverge\nexplicit: %+v\nsymbolic: %+v", n.Name, exp, sym)
	}
}

// TestEnginesAgreeTable1 pins engine agreement on the paper's nine
// benchmarks plus a sweep of random series-parallel and wide-fork
// specifications small enough for the explicit engine.
func TestEnginesAgreeTable1(t *testing.T) {
	for _, e := range benchdata.Table1 {
		net, err := stg.Parse(e.Source)
		if err != nil {
			t.Fatal(err)
		}
		agree(t, net)
	}
	for seed := int64(0); seed < 10; seed++ {
		agree(t, benchdata.GenRandomSpec(seed, 4).Net)
	}
	agree(t, benchdata.GenWideFork(7, 3, 2).Net)
	agree(t, benchdata.GenWideFork(3, 4, 1).Net)
}

// TestEnginesAgreeUnsafe checks both engines return the same 1-safety
// verdict (as a verdict, not an error) on a net where two concurrent
// branches feed one shared place.
func TestEnginesAgreeUnsafe(t *testing.T) {
	src := `
.model unsafe
.inputs a
.outputs b c
.graph
p0 a+
a+ b+
a+ c+
b+ p
c+ p
p a-
a- b-
b- c-
c- p0
.marking {p0}
.end
`
	net, err := stg.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []engine.Engine{&engine.Explicit{}, &engine.Symbolic{}} {
		a, err := eng.Analyze(net)
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if !a.Unsafe {
			t.Errorf("%s: unsafe net not flagged", eng.Name())
		}
	}
}

// TestAutoSelectsEngine checks the probe-driven switch: a Table-1 spec
// stays explicit, a spec whose probe overflows goes symbolic.
func TestAutoSelectsEngine(t *testing.T) {
	net, err := stg.Parse(benchdata.Table1[0].Source)
	if err != nil {
		t.Fatal(err)
	}
	a, err := (&engine.Auto{}).Analyze(net)
	if err != nil {
		t.Fatal(err)
	}
	if a.Engine != "explicit" {
		t.Errorf("small spec routed to %s", a.Engine)
	}
	big := benchdata.GenWideFork(5, 6, 2).Net
	a, err = (&engine.Auto{Opts: engine.Options{AutoThreshold: 64}}).Analyze(big)
	if err != nil {
		t.Fatal(err)
	}
	if a.Engine != "symbolic" {
		t.Errorf("over-threshold spec routed to %s", a.Engine)
	}
}

// TestEstimateStates pins the probe contract: exact counts below the
// bound, (probe, false) above it.
func TestEstimateStates(t *testing.T) {
	net, err := stg.Parse(benchdata.Table1[0].Source)
	if err != nil {
		t.Fatal(err)
	}
	n, exact := engine.EstimateStates(net, 1<<16)
	if !exact || n == 0 {
		t.Errorf("got (%d, %v) for a small spec", n, exact)
	}
	big := benchdata.GenWideFork(1, 8, 1).Net // 2^8 interleavings per phase
	n, exact = engine.EstimateStates(big, 16)
	if exact || n != 16 {
		t.Errorf("got (%d, %v) for an over-probe spec", n, exact)
	}
}

// TestSymbolicCompletesBeyondExplicitLimit is the capacity acceptance
// test of the engine abstraction: on a generated wide-fork spec with
// more than 10^6 reachable markings the explicit engine must fail at
// its exploration limit while the symbolic engine completes the full
// analysis — reachability count and the existence-only MC summary.
func TestSymbolicCompletesBeyondExplicitLimit(t *testing.T) {
	spec := benchdata.GenWideFork(1, 10, 3)
	if n := len(spec.Net.Signals); n > 64 {
		t.Fatalf("generator exceeded the signal budget: %d", n)
	}
	_, err := (&engine.Explicit{}).Analyze(spec.Net)
	if !engine.IsStateLimit(err) {
		t.Fatalf("explicit engine did not hit its state limit: %v", err)
	}
	a, err := (&engine.Symbolic{}).Analyze(spec.Net)
	if err != nil {
		t.Fatal(err)
	}
	if a.States <= 1<<20 {
		t.Errorf("spec too small to prove the point: %d states", a.States)
	}
	if a.Unsafe {
		t.Error("generated spec flagged unsafe")
	}
	if len(a.MCUnresolved) != 0 {
		t.Errorf("wide-fork pipelines have monotonous covers, got unresolved %v", a.MCUnresolved)
	}
}
