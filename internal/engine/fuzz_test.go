package engine_test

import (
	"reflect"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/engine"
)

// FuzzSymbolicVsExplicit throws seeded random specifications at both
// engines and requires deeply equal analyses: identical reachable-state
// counts, 1-safety verdicts, region decompositions (as marking sets)
// and existence-only MC summaries. The generator only produces live,
// 1-safe series-parallel specs, so this fuzzes the agreement of the two
// region/MC pipelines, not the parser.
func FuzzSymbolicVsExplicit(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed, uint8(seed%5)+1)
	}
	f.Fuzz(func(t *testing.T, seed int64, size uint8) {
		spec := benchdata.GenRandomSpec(seed, int(size%8)+1)
		opts := engine.Options{Fingerprint: true}
		exp, err := (&engine.Explicit{Opts: opts}).Analyze(spec.Net)
		if err != nil {
			if engine.IsStateLimit(err) {
				t.Skip("spec exceeds the explicit engine")
			}
			t.Fatalf("explicit: %v", err)
		}
		sym, err := (&engine.Symbolic{Opts: opts}).Analyze(spec.Net)
		if err != nil {
			t.Fatalf("symbolic: %v", err)
		}
		exp.Engine, sym.Engine = "", ""
		if !reflect.DeepEqual(exp, sym) {
			t.Errorf("seed %d size %d: analyses diverge\nexplicit: %+v\nsymbolic: %+v",
				seed, size, exp, sym)
		}
	})
}
