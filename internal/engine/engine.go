// Package engine abstracts the pipeline's analysis core behind a
// pluggable interface: reachability, region decomposition and
// existence-only Monotonous Cover checks, answered either by the
// explicit engine (enumerate the state graph, scan per state) or the
// symbolic engine (BDD fixpoints over marking sets, never materializing
// a state). The explicit engine is the pinned differential reference:
// on any spec both engines can finish, their analyses must be
// identical. The symbolic engine exists for the specs the explicit one
// cannot finish — state spaces past the exploration limit.
package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stg"
)

// Engine is a pluggable analysis core.
type Engine interface {
	Name() string
	Analyze(n *stg.STG) (*Analysis, error)
}

// Options configures an engine.
type Options struct {
	// StateLimit bounds explicit exploration (0 = stg.DefaultStateLimit).
	StateLimit int
	// Fingerprint enumerates every region's states into marking
	// fingerprints. Differential tests need it; on large state spaces it
	// defeats the point of the symbolic engine, so it is opt-in.
	Fingerprint bool
	// AutoThreshold is the state count above which the auto engine picks
	// the symbolic core (0 = DefaultAutoThreshold).
	AutoThreshold int
}

// DefaultAutoThreshold is the estimated state count at which auto
// switches from the explicit to the symbolic engine. Well under the
// explicit exploration limit: past this size the explicit engine still
// works but enumerating states stops being the cheaper option.
const DefaultAutoThreshold = 1 << 16

func (o Options) stateLimit() int {
	if o.StateLimit == 0 {
		return stg.DefaultStateLimit
	}
	return o.StateLimit
}

func (o Options) autoThreshold() int {
	if o.AutoThreshold == 0 {
		return DefaultAutoThreshold
	}
	return o.AutoThreshold
}

// Region is one excitation or quiescent region in engine-independent
// form: its states as sorted marking fingerprints.
type Region struct {
	Kind     string   // "ER" or "QR"
	Dir      string   // "+" or "-"
	Markings []string // sorted, one fingerprint per state; nil without Fingerprint
}

// Analysis is the engine-independent result of analyzing a
// specification. Two engines agree on a spec exactly when their
// Analyses are deeply equal.
type Analysis struct {
	Engine string // engine that produced the analysis
	States uint64 // reachable markings
	Unsafe bool   // net is not 1-safe (analysis stops at the verdict)
	// Regions maps each signal to its region decomposition, canonically
	// sorted. Populated only with Options.Fingerprint.
	Regions map[string][]Region
	// MCUnresolved lists one "+name"/"-name" entry per excitation region
	// of a non-input signal that has no private monotonous cover —
	// the existence-only question repair asks. Sorted; duplicates mean
	// several regions of the same transition are unresolved.
	MCUnresolved []string
}

// New returns the named engine: "explicit", "symbolic" or "auto".
func New(name string, opts Options) (Engine, error) {
	switch name {
	case "explicit":
		return &Explicit{Opts: opts}, nil
	case "symbolic":
		return &Symbolic{Opts: opts}, nil
	case "auto":
		return &Auto{Opts: opts}, nil
	}
	return nil, fmt.Errorf("engine: unknown engine %q (want explicit, symbolic or auto)", name)
}

// unsafeVerdict recognizes the 1-safety failure both engines report.
func unsafeVerdict(err error) bool {
	return err != nil && strings.Contains(err.Error(), "not 1-safe")
}

// IsStateLimit reports whether err is the explicit engine hitting its
// exploration bound — the signal the caller should retry symbolically.
func IsStateLimit(err error) bool {
	return err != nil && strings.Contains(err.Error(), "state limit")
}

// fpMarking renders a place-indexed marking as a canonical fingerprint:
// the marked place indices, dot-joined.
func fpMarking(row []bool) string {
	var b strings.Builder
	for p, on := range row {
		if on {
			if b.Len() > 0 {
				b.WriteByte('.')
			}
			fmt.Fprintf(&b, "%d", p)
		}
	}
	return b.String()
}

// canonRegions sorts a signal's regions into the engine-independent
// order: kind, then direction, then smallest fingerprint.
func canonRegions(rs []Region) []Region {
	for i := range rs {
		sort.Strings(rs[i].Markings)
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Kind != rs[j].Kind {
			return rs[i].Kind < rs[j].Kind
		}
		if rs[i].Dir != rs[j].Dir {
			return rs[i].Dir < rs[j].Dir
		}
		a, b := "", ""
		if len(rs[i].Markings) > 0 {
			a = rs[i].Markings[0]
		}
		if len(rs[j].Markings) > 0 {
			b = rs[j].Markings[0]
		}
		return a < b
	})
	return rs
}

// Explicit is the enumerate-and-scan engine: build the state graph,
// decompose regions over state ids, answer MC by per-state scans. It is
// the differential reference for every other engine.
type Explicit struct {
	Opts Options
}

// Name implements Engine.
func (e *Explicit) Name() string { return "explicit" }

// Analyze implements Engine.
func (e *Explicit) Analyze(n *stg.STG) (*Analysis, error) {
	defer obs.Start("engine.explicit", obs.A("spec", n.Name)).End()
	g, err := stg.BuildSGLimit(n, e.Opts.stateLimit())
	if unsafeVerdict(err) {
		return &Analysis{Engine: "explicit", Unsafe: true}, nil
	}
	if err != nil {
		return nil, err
	}
	res := &Analysis{Engine: "explicit", States: uint64(g.NumStates())}
	var rows [][]bool
	if e.Opts.Fingerprint {
		if rows, err = stg.ReachableMarkings(n, e.Opts.stateLimit()); err != nil {
			return nil, err
		}
		res.Regions = map[string][]Region{}
	}
	fp := func(states []int) []string {
		out := make([]string, len(states))
		for i, s := range states {
			out[i] = fpMarking(rows[s])
		}
		return out
	}
	a := core.NewAnalyzerN(g, 1)
	for sig := range g.Signals {
		regs := a.Regs[sig]
		if e.Opts.Fingerprint {
			var rs []Region
			for _, er := range regs.ER {
				rs = append(rs, Region{Kind: "ER", Dir: er.Dir.String(), Markings: fp(er.States)})
			}
			for _, qr := range regs.QR {
				rs = append(rs, Region{Kind: "QR", Dir: qr.Dir.String(), Markings: fp(qr.States)})
			}
			res.Regions[g.Signals[sig]] = canonRegions(rs)
		}
		if g.Input[sig] {
			continue
		}
		for _, er := range regs.ER {
			if _, v := a.FindMC(er); v != nil {
				res.MCUnresolved = append(res.MCUnresolved, er.Dir.String()+g.Signals[sig])
			}
		}
	}
	sort.Strings(res.MCUnresolved)
	return res, nil
}

// Symbolic is the BDD engine: reachability as a symbolic fixpoint over
// marking sets, regions as connected components of BDD sets, MC as
// existence-only set operations. It never enumerates states except to
// fingerprint regions on request.
type Symbolic struct {
	Opts Options
}

// Name implements Engine.
func (s *Symbolic) Name() string { return "symbolic" }

// Analyze implements Engine.
func (s *Symbolic) Analyze(n *stg.STG) (*Analysis, error) {
	defer obs.Start("engine.symbolic", obs.A("spec", n.Name)).End()
	sp, err := stg.NewSymbolicSpace(n)
	if unsafeVerdict(err) {
		return &Analysis{Engine: "symbolic", Unsafe: true}, nil
	}
	if err != nil {
		return nil, err
	}
	if err := sp.ComputeValues(); err != nil {
		return nil, err
	}
	res := &Analysis{Engine: "symbolic", States: sp.States()}
	if s.Opts.Fingerprint {
		res.Regions = map[string][]Region{}
	}
	for sig := 0; sig < sp.NumSignals(); sig++ {
		regs := core.SymRegionsOf(sp, sig)
		if s.Opts.Fingerprint {
			var rs []Region
			for _, er := range regs.ER {
				rs = append(rs, Region{Kind: "ER", Dir: er.Dir.String(), Markings: s.fp(sp, er.Set)})
			}
			for _, qr := range regs.QR {
				rs = append(rs, Region{Kind: "QR", Dir: qr.Dir.String(), Markings: s.fp(sp, qr.Set)})
			}
			res.Regions[sp.SignalName(sig)] = canonRegions(rs)
		}
		if sp.IsInput(sig) {
			continue
		}
		for i, er := range regs.ER {
			if core.SymMCViolation(sp, regs, i) {
				res.MCUnresolved = append(res.MCUnresolved, er.Dir.String()+sp.SignalName(sig))
			}
		}
	}
	sort.Strings(res.MCUnresolved)
	// The analysis drove the whole region/MC workload through the
	// space's manager; publish its cache tallies under a scope apart
	// from the reachability fixpoint's.
	sp.Manager().PublishObs("engine_analyze")
	return res, nil
}

// fp enumerates a marking-set BDD into sorted fingerprints. StateVars
// indexes variables by place and ForEachSat indexes assignments by
// caller position, so assignment position p is place p even when the
// space permuted the underlying variable order.
func (s *Symbolic) fp(sp *stg.SymbolicSpace, set int) []string {
	var out []string
	sp.Manager().ForEachSat(set, sp.StateVars(), func(assign []bool) bool {
		out = append(out, fpMarking(assign))
		return true
	})
	sort.Strings(out)
	return out
}

// Auto picks an engine per spec: explicit while a bounded probe
// exploration proves the state space small, symbolic as soon as the
// probe overflows. The produced Analysis records which engine ran.
type Auto struct {
	Opts Options
}

// Name implements Engine.
func (a *Auto) Name() string { return "auto" }

// Analyze implements Engine.
func (a *Auto) Analyze(n *stg.STG) (*Analysis, error) {
	est, exact := EstimateStates(n, a.Opts.autoThreshold())
	if exact && est <= uint64(a.Opts.autoThreshold()) {
		return (&Explicit{Opts: a.Opts}).Analyze(n)
	}
	return (&Symbolic{Opts: a.Opts}).Analyze(n)
}

// EstimateStates probes the explicit state count by exploring up to
// probe states. It returns the exact count when exploration finishes
// (exact = true), and (probe, false) when the space is at least that
// large. Errors other than the probe limit — unsafe nets, malformed
// specs — report as exact so auto routes them to the explicit engine,
// which reproduces the precise verdict cheaply.
func EstimateStates(n *stg.STG, probe int) (uint64, bool) {
	rows, err := stg.ReachableMarkings(n, probe)
	if IsStateLimit(err) {
		return uint64(probe), false
	}
	if err != nil {
		return 0, true
	}
	return uint64(len(rows)), true
}

// The symbolic engine feeds stg.SymbolicSpace straight into core's
// symbolic MC machinery; keep the contract visible at compile time.
var _ core.SymSpace = (*stg.SymbolicSpace)(nil)
