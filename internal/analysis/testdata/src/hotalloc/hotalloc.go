// Package hotalloc exercises the hotalloc analyzer: fmt calls and
// capturing closures anywhere in a //reprolint:hotpath function,
// nil-slice appends and interface boxing inside its loops. Unmarked
// functions are never checked; justified //reprolint:alloc escapes are
// honored; bare ones are reported.
package hotalloc

import "fmt"

//reprolint:hotpath
func Hot(xs []int) string {
	s := ""
	for _, x := range xs {
		s = fmt.Sprintf("%s,%d", s, x) // want "fmt.Sprintf allocates"
	}
	return s
}

// Cold is identical but unmarked: nothing is reported.
func Cold(xs []int) string {
	s := ""
	for _, x := range xs {
		s = fmt.Sprintf("%s,%d", s, x)
	}
	return s
}

//reprolint:hotpath
func Capture(xs []int) func() int {
	total := 0
	for _, x := range xs {
		total += x
	}
	f := func() int { return total } // want "func literal captures total"
	return f
}

//reprolint:hotpath
func Grow(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, 2*x) // want "append grows nil-declared slice out"
	}
	return out
}

//reprolint:hotpath
func Preallocated(xs []int) []int {
	out := make([]int, 0, len(xs)) // sized upfront: appends are not findings
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}

//reprolint:hotpath
func Box(sink func(any), xs []int) {
	for _, x := range xs {
		sink(x) // want "argument x boxes into an interface parameter"
	}
}

//reprolint:hotpath
func GrowEscaped(xs []int) []int {
	var out []int
	for _, x := range xs {
		if x > 0 {
			out = append(out, x) //reprolint:alloc the survivors are the result; amortized growth is accepted
		}
	}
	return out
}

//reprolint:hotpath
func BareEscape(xs []int) string {
	//reprolint:alloc
	return fmt.Sprint(len(xs)) // want "escape needs a justification" "fmt.Sprint allocates"
}
