// Package determinism2helper is the out-of-scope dependency of the
// determinism2 fixture: nondeterminism planted here must surface at the
// call sites in the scoped package, two hops away.
package determinism2helper

import "time"

// rootRange is the planted root: a bare map range, unexported and two
// hops from the scoped caller.
func rootRange(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Middle is the intermediate hop; it carries no construct of its own.
func Middle(m map[string]int) int { return rootRange(m) }

// Stamp reads the wall clock directly.
func Stamp() int64 { return time.Now().UnixNano() }

// SortedLen is deterministic: calls to it are clean.
func SortedLen(m map[string]int) int { return len(m) }

// JustifiedRange's construct carries a justified escape, so no fact is
// exported and callers are clean.
func JustifiedRange(m map[string]int) int {
	n := 0
	//reprolint:ordered the count does not depend on iteration order
	for range m {
		n++
	}
	return n
}

// Summer is the interface the CHA case dispatches through.
type Summer interface {
	Sum(m map[string]int) int
}

// MapSummer is the loaded implementation CHA resolves Summer.Sum to;
// its body is nondeterministic.
type MapSummer struct{}

// Sum ranges the map bare.
func (MapSummer) Sum(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
