// Package lockdiscipline exercises the lock-discipline analyzer:
// channel operations, transitively blocking callees, interface I/O and
// dynamic callbacks under a held sync.Mutex/RWMutex are flagged;
// select-with-default and unlock-then-block patterns are clean;
// justified //reprolint:lock escapes are honored; bare escapes are
// reported and suppress nothing. The test pivots
// analysis.LockDisciplineScope onto this package.
package lockdiscipline

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"lockdisciplinehelper"
)

// Server mirrors the shape of the synthesis server's job fan-out: a
// mutex guarding subscriber channels and a user-supplied callback.
type Server struct {
	mu      sync.Mutex
	ch      chan int
	onEvict func(int)
}

// SendUnderLock parks every contender behind the receiver.
func (s *Server) SendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while s\.mu is held`
	s.mu.Unlock()
}

// RecvUnderLock parks every contender behind the sender.
func (s *Server) RecvUnderLock() int {
	s.mu.Lock()
	v := <-s.ch // want `channel receive while s\.mu is held`
	s.mu.Unlock()
	return v
}

// SelectUnderLock has no default: it blocks until a case fires.
func (s *Server) SelectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while s\.mu is held`
	case v := <-s.ch:
		_ = v
	}
}

// TransitiveWait reaches a WaitGroup.Wait through the helper package.
func (s *Server) TransitiveWait() {
	s.mu.Lock()
	lockdisciplinehelper.Block() // want `call to lockdisciplinehelper\.Block can block while s\.mu is held: sync\.WaitGroup\.Wait`
	s.mu.Unlock()
}

// CallbackUnderLock invokes a user-supplied function value under the
// lock — the Cache.onEvict class: the callback can block or re-enter.
func (s *Server) CallbackUnderLock(k int) {
	s.mu.Lock()
	if s.onEvict != nil {
		s.onEvict(k) // want `call through a function value while s\.mu is held`
	}
	s.mu.Unlock()
}

// NonBlockingSend uses select-with-default: clean.
func (s *Server) NonBlockingSend(v int) {
	s.mu.Lock()
	select {
	case s.ch <- v:
	default:
	}
	s.mu.Unlock()
}

// SendAfterUnlock collects under the lock and delivers outside: the
// pattern the analyzer pushes code toward.
func (s *Server) SendAfterUnlock(v int) {
	s.mu.Lock()
	n := v + 1
	s.mu.Unlock()
	s.ch <- n
}

// QuickUnderLock calls a non-blocking helper: clean.
func (s *Server) QuickUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return lockdisciplinehelper.Quick()
}

// Waived sends under a justified escape.
func (s *Server) Waived(v int) {
	s.mu.Lock()
	s.ch <- v //reprolint:lock the channel is buffered to the subscriber count; a send can never park here
	s.mu.Unlock()
}

// Bare carries an escape with no justification: the escape itself is
// reported and the underlying finding still fires.
func (s *Server) Bare(v int) {
	s.mu.Lock()
	//reprolint:lock
	s.ch <- v // want "escape needs a justification" `channel send while s\.mu is held`
	s.mu.Unlock()
}

// Registry mirrors the metrics registry: an RWMutex guarding data that
// handlers render.
type Registry struct {
	mu   sync.RWMutex
	data string
}

// Dump writes to an arbitrary io.Writer while read-locked: a slow sink
// stalls every writer to the registry.
func (r *Registry) Dump(w io.Writer) {
	r.mu.RLock()
	fmt.Fprintf(w, "%s", r.data) // want `fmt\.Fprintf writes to an io\.Writer, which can block while r\.mu is held`
	r.mu.RUnlock()
}

// DumpBuffered renders into an in-memory builder under the lock and
// writes after release: clean.
func (r *Registry) DumpBuffered(w io.Writer) {
	var b strings.Builder
	r.mu.RLock()
	fmt.Fprintf(&b, "%s", r.data)
	r.mu.RUnlock()
	io.WriteString(w, b.String())
}
