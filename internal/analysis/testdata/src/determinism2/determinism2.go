// Package determinism2 exercises the interprocedural determinism
// analyzer: calls to transitively nondeterministic functions in the
// (out-of-scope) helper package are flagged at the call site with the
// offending path; justified //reprolint:ordered escapes at the call
// site are honored; bare escapes are reported and suppress nothing.
// The test pivots analysis.DeterministicScope onto this package.
package determinism2

import "determinism2helper"

// TwoHop reaches the planted map range through two helper hops.
func TwoHop(m map[string]int) int {
	return determinism2helper.Middle(m) // want `call to determinism2helper\.Middle is transitively nondeterministic: determinism2helper\.rootRange → map iteration order is nondeterministic`
}

// Clock reaches a wall-clock read one hop away.
func Clock() int64 {
	return determinism2helper.Stamp() // want `call to determinism2helper\.Stamp is transitively nondeterministic: time\.Now reads the wall clock`
}

// ViaIface dispatches through an interface; CHA resolves the loaded
// implementation and finds its map range.
func ViaIface(m map[string]int) int {
	var s determinism2helper.Summer = determinism2helper.MapSummer{}
	return s.Sum(m) // want `call to determinism2helper\.MapSummer\.Sum is transitively nondeterministic: map iteration order is nondeterministic`
}

// Clean calls only deterministic helpers: no finding.
func Clean(m map[string]int) int {
	return determinism2helper.SortedLen(m)
}

// CleanJustified calls a helper whose construct carries a justified
// escape, which killed the fact at the root: no finding.
func CleanJustified(m map[string]int) int {
	return determinism2helper.JustifiedRange(m)
}

// Waived calls a tainted helper under a justified call-site escape.
func Waived(m map[string]int) int {
	return determinism2helper.Middle(m) //reprolint:ordered result feeds only the debug dump, never the netlist
}

// Bare carries an escape with no justification: the escape itself is
// reported and the underlying finding still fires.
func Bare(m map[string]int) int {
	//reprolint:ordered
	return determinism2helper.Middle(m) // want "escape needs a justification" `call to determinism2helper\.Middle is transitively nondeterministic`
}
