// Package par is a fixture stub of the real worker pool: the same
// ForEach/ForEachHook shape (callback is the third argument, its first
// parameter is the task index), executed serially. The parpool analyzer
// matches on the import path and the callback position only.
package par

// TaskHook observes task completion.
type TaskHook func(done int)

// ForEach runs fn(i) for every i in [0, n).
func ForEach(n, workers int, fn func(i int)) {
	ForEachHook(n, workers, fn, nil)
}

// ForEachHook is ForEach with a completion hook.
func ForEachHook(n, workers int, fn func(i int), hook TaskHook) {
	for i := 0; i < n; i++ {
		fn(i)
		if hook != nil {
			hook(i + 1)
		}
	}
}
