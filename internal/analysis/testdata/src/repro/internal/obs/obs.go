// Package obs is a fixture stub of the real observability layer: the
// same entry-point names, no behaviour. The obssafe analyzer matches on
// the import path and callee names only, so this is all the tests need.
package obs

// Observer is the handle obs.Get may or may not return.
type Observer struct {
	Metrics *Registry
}

// Registry hands out named counters.
type Registry struct{}

// Counter returns the counter registered under name.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Counter is a monotonically increasing metric.
type Counter struct{}

// Add increments the counter.
func (c *Counter) Add(n int64) {}

// Span is one traced region.
type Span struct{}

// End closes the span.
func (s *Span) End() {}

// Get returns the process observer, or nil when observation is off.
func Get() *Observer { return nil }

// Enabled reports whether observation is on. Always nil-safe.
func Enabled() bool { return false }

// Start opens a span. Always nil-safe.
func Start(name string) *Span { return &Span{} }

// Info logs one message. Always nil-safe.
func Info(msg string) {}
