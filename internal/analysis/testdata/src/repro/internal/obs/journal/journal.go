// Package journal is a fixture stub of the flight recorder: the same
// entry-point names, no behaviour. The obssafe analyzer matches on the
// import path only, so this is all the tests need.
package journal

// RunConfig mirrors the real run_start configuration record.
type RunConfig struct {
	Engine string
}

// PublishRunStart records the beginning of one run. Nil-safe, but a
// journal write — never call it per hot-loop iteration.
func PublishRunStart(spec, source string, cfg RunConfig) {}

// PublishRunEnd records one run's outcome digests.
func PublishRunEnd(spec, netlist string, added int, verdict string, ok bool) {}
