// Package obssafe exercises the obssafe analyzer: chaining off
// obs.Get() without a nil check is flagged, obs calls inside hotpath
// loops are flagged, the nil-safe helpers and checked handles are not.
package obssafe

import (
	"repro/internal/obs"
	"repro/internal/obs/journal"
)

func Chained() {
	obs.Get().Metrics.Counter("states").Add(1) // want "bind and nil-check the observer before touching Metrics"
}

func Checked() {
	if o := obs.Get(); o != nil {
		o.Metrics.Counter("states").Add(1)
	}
}

func Helpers() {
	// Package-level entry points are nil-safe by construction.
	if obs.Enabled() {
		obs.Info("starting")
	}
	span := obs.Start("stage")
	span.End()
}

//reprolint:hotpath
func Hot(n int) {
	for i := 0; i < n; i++ {
		obs.Info("step") // want "obs publish Info inside a loop"
	}
	obs.Info("done") // post-loop publish is the sanctioned pattern
}

//reprolint:hotpath
func Sampled(n int) {
	for i := 0; i < n; i++ {
		if i%1024 == 0 {
			obs.Info("tick") //reprolint:obs sampled every 1024 iterations, amortized to noise
		}
	}
}

func BareEscape() {
	//reprolint:obs
	obs.Get().Metrics.Counter("states").Add(1) // want "escape needs a justification" "bind and nil-check the observer"
}

//reprolint:hotpath
func HotJournal(specs []string) {
	for _, s := range specs {
		// The whole obs layer is fenced out of hotpath loops, not just
		// the core package: a journal write per iteration is a JSON
		// encode plus a locked buffered write.
		journal.PublishRunStart(s, "", journal.RunConfig{}) // want "obs publish PublishRunStart inside a loop"
	}
	journal.PublishRunEnd("done", "", 0, "ok", true) // post-loop publish is fine
}
