// Package hotalloc_required exercises the RequiredHotpaths half of the
// hotalloc analyzer. The test overrides analysis.RequiredHotpaths to
// demand markers on Explore (marked: clean), Engine.Step (unmarked:
// reported at the declaration) and Gone (absent: reported at the
// package clause).
package hotalloc_required // want "known hot path Gone not found in hotalloc_required"

//reprolint:hotpath
func Explore(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}

type Engine struct {
	steps int
}

func (e *Engine) Step() { // want "Engine.Step is a known hot path and must carry"
	e.steps++
}
