// Package parpool exercises the parpool analyzer: raw go statements
// are flagged outside internal/par, and par.ForEach callbacks must
// address captured slices with their own task index.
package parpool

import "repro/internal/par"

func Raw(done chan struct{}) {
	go drain(done) // want "raw go statement"
}

func Waived(done chan struct{}) {
	go drain(done) //reprolint:go single lifetime-of-process drainer, joined at shutdown
}

func BareWaiver(done chan struct{}) {
	//reprolint:go
	go drain(done) // want "escape needs a justification" "raw go statement"
}

func drain(done chan struct{}) { <-done }

func Fan(xs []int) []int {
	out := make([]int, len(xs))
	first := make([]int, 1)
	par.ForEach(len(xs), 4, func(i int) {
		out[i] = 2 * xs[i] // task-index slot: the sanctioned pattern
		first[0] = xs[i]   // want "write to captured slice first is not addressed by the pool's task index i"
	})
	return out
}

func FanLocal(xs []int) []int {
	out := make([]int, len(xs))
	par.ForEach(len(xs), 4, func(i int) {
		scratch := make([]int, 2)
		scratch[0] = xs[i] // task-local slice: not a finding
		scratch[1] = 2 * xs[i]
		out[i] = scratch[0] + scratch[1]
	})
	return out
}

func FanWaived(xs []int) int {
	acc := make([]int, 1)
	par.ForEach(len(xs), 1, func(i int) {
		acc[0] += xs[i] //reprolint:go workers is pinned to 1 here, the single slot cannot race
	})
	return acc[0]
}
