// Package determinism exercises the determinism analyzer: bare map
// ranges, clock reads and PRNG draws are flagged; justified
// //reprolint:ordered escapes are honored; bare escapes are themselves
// diagnostics and suppress nothing.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

func MapRange(m map[string]int) int {
	sum := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		sum += v
	}
	return sum
}

func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//reprolint:ordered keys are collected then sorted before any output depends on them
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func SliceRange(xs []int) int {
	sum := 0
	for _, x := range xs { // slices iterate in order; not a finding
		sum += x
	}
	return sum
}

func Clock() time.Duration {
	t0 := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func TimedEscape() time.Time {
	return time.Now() //reprolint:ordered timing lands only in log fields, never in synthesized output
}

func Draw() int {
	return rand.Intn(6) // want "draws from a process-seeded PRNG"
}

func BareEscape(m map[string]int) int {
	n := 0
	//reprolint:ordered
	for range m { // want "escape needs a justification" "map iteration order is nondeterministic"
		n++
	}
	return n
}
