// Package cachekey exercises the cache-key soundness analyzer: every
// exported field of a struct with *FP() fingerprint methods must
// appear as "<name>=" in a fingerprint string or carry a justified
// //reprolint:nonsemantic escape. The planted Extra field is the
// regression the analyzer exists to catch: a config field added
// without extending the fingerprint, silently aliasing cache entries.
package cachekey

import "fmt"

// Config fingerprints itself through two FP methods, mirroring
// serve.Config's RepairFP/NetlistFP split.
type Config struct {
	Workers int
	Engine  string
	Share   bool
	Extra   int  // want `field Config\.Extra is not in any Config fingerprint`
	Verbose bool //reprolint:nonsemantic logging verbosity cannot change any synthesized artifact
	//reprolint:nonsemantic
	Trace bool // want "escape needs a justification" `field Config\.Trace is not in any Config fingerprint`
}

// KeyFP covers Workers and Engine.
func (c Config) KeyFP() string {
	return fmt.Sprintf("workers=%d|engine=%s", c.Workers, c.Engine)
}

// ShareFP covers Share.
func (c *Config) ShareFP() string {
	return fmt.Sprintf("share=%t", c.Share)
}

// Plain has no FP methods: its fields are not cache-key material and
// are never checked.
type Plain struct {
	Anything int
}

// NotAFingerprint does not end in FP and returns no string; it must not
// make Plain a fingerprinted type.
func (p Plain) NotAFingerprint() int { return p.Anything }
