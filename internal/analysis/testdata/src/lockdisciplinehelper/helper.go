// Package lockdisciplinehelper is the out-of-scope dependency of the
// lockdiscipline fixture: the blocking construct planted here must
// surface at call sites under a lock in the scoped package.
package lockdisciplinehelper

import "sync"

// Block parks on a WaitGroup: the planted blocking root.
func Block() {
	var wg sync.WaitGroup
	wg.Wait()
}

// Quick is non-blocking: calls to it are clean even under a lock.
func Quick() int { return 1 }
