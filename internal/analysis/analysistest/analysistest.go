// Package analysistest runs one lint.Analyzer over fixture packages
// under internal/analysis/testdata/src and checks its diagnostics
// against `// want "regexp"` comments, mirroring the golden-test
// protocol of golang.org/x/tools/go/analysis/analysistest on top of the
// local lint framework.
//
// Fixture packages resolve imports GOPATH-style: an import path that
// names a directory under testdata/src (e.g. the repro/internal/obs
// stub) is parsed and type-checked from source; everything else (fmt,
// time, …) is imported from compiler export data via `go list -export`.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/lint"
)

// Run loads each fixture package (a slash-separated path relative to
// testdata/src), applies the analyzer, and fails the test unless the
// diagnostics and the fixtures' want comments match one-to-one by file,
// line, and regexp.
//
// Fixture packages imported by the targets are loaded too and — for
// interprocedural analyzers — analyzed for facts, exactly as the real
// runner treats dependency packages; want comments apply only to the
// named targets.
func Run(t *testing.T, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	h := newHarness(t)
	external := map[string]bool{}
	var targets []*parsedPkg
	for _, path := range pkgPaths {
		targets = append(targets, h.parse(path, external))
	}
	h.loadExports(external)
	targetSet := map[string]bool{}
	for _, p := range targets {
		targetSet[p.path] = true
	}
	// Check every parsed fixture package (targets plus their fixture
	// dependencies) so fact analyzers see the whole import closure.
	allPaths := make([]string, 0, len(h.parsed))
	for path := range h.parsed {
		allPaths = append(allPaths, path)
	}
	sort.Strings(allPaths)
	var pkgs []*lint.Package
	for _, path := range allPaths {
		pkgs = append(pkgs, h.check(h.parsed[path]))
	}
	scope := func(p string) bool { return targetSet[p] }
	findings, err := lint.Run(pkgs, []lint.ScopedAnalyzer{{Analyzer: a, Scope: scope}})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	h.match(findings, h.expectations(targets))
}

// parsedPkg is one fixture package before type checking.
type parsedPkg struct {
	path  string
	dir   string
	files []*ast.File
}

// harness caches parsed and checked fixture packages for one Run call
// and doubles as the types.Importer wired into the checker.
type harness struct {
	t          *testing.T
	fset       *token.FileSet
	src        string // testdata/src root
	moduleRoot string // where `go list` runs
	parsed     map[string]*parsedPkg
	checked    map[string]*lint.Package
	gc         types.Importer // export-data fallback for non-fixture imports
}

func newHarness(t *testing.T) *harness {
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate analysistest source file")
	}
	dir := filepath.Dir(thisFile)
	return &harness{
		t:          t,
		fset:       token.NewFileSet(),
		src:        filepath.Join(dir, "..", "testdata", "src"),
		moduleRoot: filepath.Join(dir, "..", "..", ".."),
		parsed:     map[string]*parsedPkg{},
		checked:    map[string]*lint.Package{},
	}
}

// parse reads one fixture package and, recursively, every fixture
// package it imports, accumulating non-fixture imports in external.
func (h *harness) parse(path string, external map[string]bool) *parsedPkg {
	if p, ok := h.parsed[path]; ok {
		return p
	}
	dir := filepath.Join(h.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		h.t.Fatalf("fixture package %s: %v", path, err)
	}
	p := &parsedPkg{path: path, dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(h.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			h.t.Fatalf("fixture package %s: %v", path, err)
		}
		p.files = append(p.files, f)
	}
	if len(p.files) == 0 {
		h.t.Fatalf("fixture package %s: no Go files in %s", path, dir)
	}
	h.parsed[path] = p
	for _, f := range p.files {
		for _, imp := range f.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if st, err := os.Stat(filepath.Join(h.src, filepath.FromSlash(ip))); err == nil && st.IsDir() {
				h.parse(ip, external)
			} else {
				external[ip] = true
			}
		}
	}
	return p
}

// loadExports resolves export data for the fixtures' non-fixture
// imports and installs the fallback importer.
func (h *harness) loadExports(external map[string]bool) {
	exports := map[string]string{}
	if len(external) > 0 {
		paths := make([]string, 0, len(external))
		for p := range external {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		var err error
		exports, err = lint.LoadExports(h.moduleRoot, paths...)
		if err != nil {
			h.t.Fatalf("resolving fixture imports %v: %v", paths, err)
		}
	}
	h.gc = lint.ExportImporter(h.fset, exports)
}

// Import makes the harness a types.Importer: fixture packages check
// from source, everything else comes from export data.
func (h *harness) Import(path string) (*types.Package, error) {
	if p, ok := h.parsed[path]; ok {
		return h.check(p).Pkg, nil
	}
	return h.gc.Import(path)
}

// check type-checks one parsed fixture package, memoized.
func (h *harness) check(p *parsedPkg) *lint.Package {
	if c, ok := h.checked[p.path]; ok {
		return c
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: h}
	tpkg, err := conf.Check(p.path, h.fset, p.files, info)
	if err != nil {
		h.t.Fatalf("typecheck fixture %s: %v", p.path, err)
	}
	c := &lint.Package{Path: p.path, Dir: p.dir, Fset: h.fset, Files: p.files, Pkg: tpkg, Info: info}
	h.checked[p.path] = c
	return c
}

// expectation is one parsed want pattern: a diagnostic matching re must
// be reported on exactly this file and line.
type expectation struct {
	file    string
	line    int
	raw     string
	re      *regexp.Regexp
	matched bool
}

// expectations collects the `// want "re" ...` comments of the target
// packages (imported stubs are not analyzed, so their comments are
// ignored).
func (h *harness) expectations(targets []*parsedPkg) []*expectation {
	var out []*expectation
	for _, p := range targets {
		for _, f := range p.files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					out = append(out, h.parseWant(c)...)
				}
			}
		}
	}
	return out
}

// parseWant extracts the quoted regexps of one want comment.
func (h *harness) parseWant(c *ast.Comment) []*expectation {
	const prefix = "// want "
	if !strings.HasPrefix(c.Text, prefix) {
		return nil
	}
	pos := h.fset.Position(c.Pos())
	rest := strings.TrimSpace(c.Text[len(prefix):])
	var out []*expectation
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			h.t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			h.t.Fatalf("%s:%d: malformed want pattern %s", pos.Filename, pos.Line, q)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			h.t.Fatalf("%s:%d: want pattern %q: %v", pos.Filename, pos.Line, pat, err)
		}
		out = append(out, &expectation{file: pos.Filename, line: pos.Line, raw: pat, re: re})
		rest = strings.TrimSpace(rest[len(q):])
	}
	return out
}

// match pairs findings with expectations one-to-one and reports both
// unexpected diagnostics and unmatched want patterns.
func (h *harness) match(findings []lint.Finding, exps []*expectation) {
	h.t.Helper()
	for _, f := range findings {
		found := false
		for _, e := range exps {
			if !e.matched && e.file == f.Pos.Filename && e.line == f.Pos.Line && e.re.MatchString(f.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			h.t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, e := range exps {
		if !e.matched {
			h.t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw)
		}
	}
}
