package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis/lint"
)

// NondetFact marks a function that — directly or through any call chain
// — ranges a map bare, reads the wall clock, or draws from a PRNG. The
// fact is exported for every function of every loaded package and
// serialized per package, so a helper's nondeterminism is visible to
// callers in packages that only see its export data.
type NondetFact struct {
	// Reason describes the root construct.
	Reason string `json:"reason"`
	// Path is the call chain from this function to the root: callee
	// display names ("stg.explore"), ending in the root construct with
	// its file:line.
	Path []string `json:"path"`
}

// AFact marks NondetFact as a lint fact.
func (*NondetFact) AFact() {}

// nondetPathCap bounds the recorded chain; deeper paths truncate with
// an ellipsis so fact files stay small on pathological call towers.
const nondetPathCap = 8

// DeterministicScope names the packages that promise byte-identical
// output for identical input at any worker count: the Table-1 pipeline
// from MC analysis to netlist emission, the symbolic core, the
// portfolio SAT layer, and the synthesis server. Determinism (v1)
// reports constructs written inside these packages; DeterminismV2
// reports call sites inside them whose callee is transitively
// nondeterministic but lives outside them. Tests may override this to
// point at fixtures.
var DeterministicScope = map[string]bool{
	"repro/internal/core":    true,
	"repro/internal/encode":  true,
	"repro/internal/netlist": true,
	"repro/internal/synth":   true,
	"repro/internal/verify":  true,
	"repro/internal/cube":    true,
	"repro/internal/tech":    true,
	// The symbolic core: node ids, variable orders and region
	// decompositions must come out identical run over run, or the
	// engine differential tests (and the byte-identical-netlist promise
	// under Options.SymbolicMC) stop meaning anything.
	"repro/internal/bdd":    true,
	"repro/internal/engine": true,
	// The portfolio SAT layer: every model comes from the canonical
	// anchor and clause exchange is merged in sorted order, so the
	// whole package shares encode's any-worker-count determinism
	// promise.
	"repro/internal/sat": true,
	// The synthesis server: cached, coalesced and sharded execution
	// must return byte-identical results to a cold sequential run, so
	// the serving layer itself carries the determinism promise.
	"repro/internal/serve": true,
}

// nondetExemptPkgs are packages whose output is telemetry, not pipeline
// artifact: every event and span is wall-clock-stamped by design, so
// seeding Nondeterministic facts there would taint every instrumented
// call site without protecting any reproducible output.
var nondetExemptPkgs = map[string]bool{
	"repro/internal/obs":         true,
	"repro/internal/obs/journal": true,
	"repro/internal/obs/obshttp": true,
	"repro/internal/obs/prof":    true,
}

// DeterminismV2 is the interprocedural determinism analyzer: it proves
// (up to the CHA approximation) that no function reachable from the
// reproducible-scope packages ranges a map bare, reads the clock, or
// draws PRNG — and when one does, it reports the call site inside the
// scope with the offending path, not just the construct three packages
// away.
var DeterminismV2 = &lint.Analyzer{
	Name: "determinism2",
	Doc: "flags calls from reproducible-scope packages to functions that are " +
		"transitively nondeterministic (bare map range, clock read, PRNG draw " +
		"anywhere in their call graph), printing the offending path; escape with " +
		"//reprolint:ordered <justification> at the construct (kills the fact) or " +
		"at the call site (waives one call)",
	Run:       runDeterminismV2,
	FactTypes: []lint.Fact{(*NondetFact)(nil)},
}

func runDeterminismV2(pass *lint.Pass) error {
	if pass.CallGraph == nil {
		return fmt.Errorf("determinism2 requires the call graph (run through lint.RunFacts)")
	}
	seedNondetFacts(pass)
	propagateNondetFacts(pass)
	if pass.Reporting && DeterministicScope[pass.Pkg.Path()] {
		reportNondetCalls(pass)
	}
	return nil
}

// seedNondetFacts exports a NondetFact for every function of the
// package that directly contains a nondeterministic construct. A
// justified //reprolint:ordered on the construct's line kills the seed
// (the author proved order cannot reach the output); a bare escape
// seeds anyway — v1 reports bare escapes inside the scope, and outside
// it the taint simply keeps flowing.
func seedNondetFacts(pass *lint.Pass) {
	if nondetExemptPkgs[pass.Pkg.Path()] {
		return
	}
	for _, file := range pass.Files {
		dirs := lint.FileDirectives(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if reason, pos, ok := firstNondetConstruct(pass, dirs, fd); ok {
				pass.ExportObjectFact(fn, &NondetFact{
					Reason: reason,
					Path:   []string{fmt.Sprintf("%s (%s)", reason, shortPos(pass.Fset, pos))},
				})
			}
		}
	}
}

// firstNondetConstruct finds the first unescaped nondeterministic
// construct in fd's body (function literals included: they run on the
// declaring function's behalf).
func firstNondetConstruct(pass *lint.Pass, dirs *lint.DirectiveIndex, fd *ast.FuncDecl) (reason string, pos token.Pos, found bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			if r, ok := nondetRange(pass, n); ok && !justified(dirs, n, orderedEscape) {
				reason, pos, found = r, n.Pos(), true
			}
		case *ast.CallExpr:
			if r, ok := nondetCall(pass, n); ok && !justified(dirs, n, orderedEscape) {
				reason, pos, found = r, n.Pos(), true
			}
		}
		return !found
	})
	return reason, pos, found
}

// justified reports whether node carries a justified escape — without
// reporting bare escapes (the syntactic analyzers own that diagnostic).
func justified(dirs *lint.DirectiveIndex, node ast.Node, name string) bool {
	esc, _ := dirs.Escaped(node, name)
	return esc
}

// propagateNondetFacts runs the within-package fixpoint: a function
// calling (statically, through an interface under CHA, via go or defer)
// a function holding a NondetFact inherits it with the callee prepended
// to the path. Facts of dependency packages arrive through the store;
// same-package cycles converge because a function's fact is set at most
// once.
func propagateNondetFacts(pass *lint.Pass) {
	nodes := pass.CallGraph.PackageNodes(pass.Pkg.Path())
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			var have NondetFact
			if pass.ImportObjectFact(n.Fn, &have) {
				continue
			}
			for _, e := range n.Out {
				if e.Callee == nil {
					continue // dynamic: unresolvable, documented blind spot
				}
				var f NondetFact
				if !pass.ImportObjectFact(e.Callee, &f) {
					continue
				}
				pass.ExportObjectFact(n.Fn, &NondetFact{
					Reason: f.Reason,
					Path:   extendPath(qualifiedName(e.Callee), f.Path),
				})
				changed = true
				break
			}
		}
	}
}

// extendPath prepends one hop, truncating at nondetPathCap.
func extendPath(hop string, rest []string) []string {
	path := append([]string{hop}, rest...)
	if len(path) > nondetPathCap {
		path = append(path[:nondetPathCap:nondetPathCap], "…")
	}
	return path
}

// reportNondetCalls reports, once per call site, calls from this
// (in-scope) package to a fact-holding callee defined outside the
// deterministic scope. In-scope callees are skipped: their own package
// already reports the construct (v1) or the boundary call (v2), so the
// finding lands exactly where the taint crosses into the scope.
func reportNondetCalls(pass *lint.Pass) {
	dirIndexes := map[*ast.File]*lint.DirectiveIndex{}
	fileOf := func(pos token.Pos) *ast.File {
		for _, f := range pass.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				return f
			}
		}
		return nil
	}
	reported := map[token.Pos]bool{}
	for _, n := range pass.CallGraph.PackageNodes(pass.Pkg.Path()) {
		for _, e := range n.Out {
			if e.Callee == nil || reported[e.Site] {
				continue
			}
			calleePkg := e.Callee.Pkg()
			if calleePkg == nil || DeterministicScope[calleePkg.Path()] {
				continue
			}
			var f NondetFact
			if !pass.ImportObjectFact(e.Callee, &f) {
				continue
			}
			reported[e.Site] = true
			file := fileOf(e.Site)
			if file == nil {
				continue
			}
			dirs := dirIndexes[file]
			if dirs == nil {
				dirs = lint.FileDirectives(pass.Fset, file)
				dirIndexes[file] = dirs
			}
			if escaped(pass, dirs, e.Call, orderedEscape) {
				continue
			}
			pass.Reportf(e.Site, "call to %s is transitively nondeterministic: %s; "+
				"fix the root or annotate //reprolint:ordered <justification>",
				qualifiedName(e.Callee), strings.Join(f.Path, " → "))
		}
	}
}

// qualifiedName renders a function as "pkgname.Display" ("stg.explore",
// "sg.Graph.Check").
func qualifiedName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Name() + "." + lint.FuncDisplayName(fn)
}

// shortPos renders a position as "file.go:42" (base name only, so fact
// files do not embed the checkout directory).
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
