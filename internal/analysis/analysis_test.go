package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, "determinism")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysis.HotAlloc, "hotalloc")
}

func TestObsSafe(t *testing.T) {
	analysistest.Run(t, analysis.ObsSafe, "obssafe")
}

func TestParPool(t *testing.T) {
	analysistest.Run(t, analysis.ParPool, "parpool")
}

// TestHotAllocRequiredMarker pivots the required-marker list onto the
// fixture: a marked required function is clean, an unmarked one is
// reported at its declaration, and a listed function the package no
// longer defines is reported at the package clause.
func TestHotAllocRequiredMarker(t *testing.T) {
	old := analysis.RequiredHotpaths
	analysis.RequiredHotpaths = map[string][]string{
		"hotalloc_required": {"Explore", "Engine.Step", "Gone"},
	}
	defer func() { analysis.RequiredHotpaths = old }()
	analysistest.Run(t, analysis.HotAlloc, "hotalloc_required")
}
