package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysis.Determinism, "determinism")
}

// TestDeterminismV2 pivots the deterministic scope onto the fixture
// package; its helper dependency stays out of scope, so taint planted
// there must cross the boundary through serialized facts.
func TestDeterminismV2(t *testing.T) {
	old := analysis.DeterministicScope
	analysis.DeterministicScope = map[string]bool{"determinism2": true}
	defer func() { analysis.DeterministicScope = old }()
	analysistest.Run(t, analysis.DeterminismV2, "determinism2")
}

func TestCacheKey(t *testing.T) {
	analysistest.Run(t, analysis.CacheKey, "cachekey")
}

// TestLockDiscipline pivots the lock-discipline scope onto the fixture
// package; the transitive-wait case crosses into the out-of-scope
// helper through serialized facts.
func TestLockDiscipline(t *testing.T) {
	old := analysis.LockDisciplineScope
	analysis.LockDisciplineScope = map[string]bool{"lockdiscipline": true}
	defer func() { analysis.LockDisciplineScope = old }()
	analysistest.Run(t, analysis.LockDiscipline, "lockdiscipline")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysis.HotAlloc, "hotalloc")
}

func TestObsSafe(t *testing.T) {
	analysistest.Run(t, analysis.ObsSafe, "obssafe")
}

func TestParPool(t *testing.T) {
	analysistest.Run(t, analysis.ParPool, "parpool")
}

// TestHotAllocRequiredMarker pivots the required-marker list onto the
// fixture: a marked required function is clean, an unmarked one is
// reported at its declaration, and a listed function the package no
// longer defines is reported at the package clause.
func TestHotAllocRequiredMarker(t *testing.T) {
	old := analysis.RequiredHotpaths
	analysis.RequiredHotpaths = map[string][]string{
		"hotalloc_required": {"Explore", "Engine.Step", "Gone"},
	}
	defer func() { analysis.RequiredHotpaths = old }()
	analysistest.Run(t, analysis.HotAlloc, "hotalloc_required")
}
