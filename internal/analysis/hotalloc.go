package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/lint"
)

// HotAlloc keeps the marked hot paths allocation-lean: inside functions
// carrying a //reprolint:hotpath marker it flags fmt calls and
// capturing closures anywhere, and per-iteration allocators — appends
// that grow a nil-declared slice, integer/bool arguments boxed into
// interface parameters — inside loops. It also demands the marker on
// the known hot paths (RequiredHotpaths) so the protection cannot
// silently rot when a function is renamed or rewritten.
var HotAlloc = &lint.Analyzer{
	Name: "hotalloc",
	Doc: "flags allocating constructs (fmt calls, capturing closures, nil-slice append " +
		"and interface boxing in loops) inside //reprolint:hotpath functions and requires " +
		"the marker on the known hot paths; escape with //reprolint:alloc <justification>",
	Run: runHotAlloc,
}

const (
	hotpathMarker = "hotpath"
	allocEscape   = "alloc"
)

// RequiredHotpaths names the functions (package path → display names,
// methods as "Recv.Name") that must carry the //reprolint:hotpath
// marker: the four engines whose per-iteration behaviour the benchmark
// pipeline tracks. Tests may override this to point at fixtures.
var RequiredHotpaths = map[string][]string{
	"repro/internal/stg":    {"explore"},              // reachability token game
	"repro/internal/verify": {"CheckLimit"},           // composed-state exploration
	"repro/internal/core":   {"Analyzer.checkMCFast"}, // candidate-search MC verdicts
	"repro/internal/sat":    {"Solver.propagate"},     // unit propagation
}

func runHotAlloc(pass *lint.Pass) error {
	required := map[string]bool{}
	for _, name := range RequiredHotpaths[pass.Pkg.Path()] {
		required[name] = true
	}
	for _, file := range pass.Files {
		dirs := lint.FileDirectives(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := lint.DeclDisplayName(fd)
			marked := lint.HasMarker(pass.Fset, fd, hotpathMarker)
			if required[name] {
				delete(required, name)
				if !marked {
					pass.Reportf(fd.Pos(), "%s is a known hot path and must carry a //reprolint:hotpath marker", name)
				}
			}
			if marked {
				checkHotFunc(pass, dirs, fd)
			}
		}
	}
	for name := range required {
		// Reported at the package clause of the first file: the list in
		// RequiredHotpaths names a function this package no longer has.
		pass.Reportf(pass.Files[0].Name.Pos(),
			"known hot path %s not found in %s; update it or analysis.RequiredHotpaths", name, pass.Pkg.Path())
	}
	return nil
}

// checkHotFunc walks one //reprolint:hotpath function body.
func checkHotFunc(pass *lint.Pass, dirs *lint.DirectiveIndex, fd *ast.FuncDecl) {
	allocEscaped := func(n ast.Node) bool { return escaped(pass, dirs, n, allocEscape) }

	// Loop body spans of the function itself (not of nested literals —
	// those are flagged wholesale as capturing closures).
	var loops []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			loops = append(loops, n.Body)
		case *ast.RangeStmt:
			loops = append(loops, n.Body)
		}
		return true
	})
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l.Pos() <= pos && pos < l.End() {
				return true
			}
		}
		return false
	}

	nilSlices := nilSliceVars(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := captures(pass, fd, n); capt != "" && !allocEscaped(n) {
				pass.Reportf(n.Pos(), "func literal captures %s and allocates a closure on a "+
					"//reprolint:hotpath function; hoist it or annotate //reprolint:alloc <justification>", capt)
			}
			return false
		case *ast.CallExpr:
			checkHotCall(pass, n, allocEscaped, inLoop, nilSlices)
		}
		return true
	})
}

// checkHotCall applies the call-site rules of the hotalloc analyzer.
func checkHotCall(pass *lint.Pass, call *ast.CallExpr, escaped func(ast.Node) bool, inLoop func(token.Pos) bool, nilSlices map[types.Object]bool) {
	if fn := lint.Callee(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if !escaped(call) {
			pass.Reportf(call.Pos(), "fmt.%s allocates on a //reprolint:hotpath function; hoist the "+
				"formatting off the hot path or annotate //reprolint:alloc <justification>", fn.Name())
		}
		return
	}
	if !inLoop(call.Pos()) {
		return
	}
	// append growing a slice that was declared nil: every first append
	// re-allocates the backing array, and growth in a hot loop is the
	// classic per-iteration allocator.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" && len(call.Args) > 0 {
			if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && nilSlices[pass.TypesInfo.Uses[arg]] {
				if !escaped(call) {
					pass.Reportf(call.Pos(), "append grows nil-declared slice %s inside a hot loop; "+
						"preallocate with make (or accept growth with //reprolint:alloc <justification>)", arg.Name)
				}
			}
			return
		}
	}
	checkBoxing(pass, call, escaped)
}

// checkBoxing flags non-constant integer/bool arguments passed to
// interface parameters inside hot loops — each such call boxes the
// value onto the heap.
func checkBoxing(pass *lint.Pass, call *ast.CallExpr, escaped func(ast.Node) bool) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; !ok || tv.IsType() {
		return // conversion, not a call
	}
	sigType := pass.TypesInfo.TypeOf(call.Fun)
	if sigType == nil {
		return
	}
	sig, ok := sigType.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case params.Len() > 0:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := pass.TypesInfo.Types[arg]
		if !ok || atv.Value != nil { // constants don't pay a runtime box
			continue
		}
		basic, ok := atv.Type.Underlying().(*types.Basic)
		if !ok || basic.Info()&(types.IsInteger|types.IsBoolean) == 0 {
			continue
		}
		if !escaped(call) {
			pass.Reportf(arg.Pos(), "argument %s boxes into an interface parameter inside a hot loop; "+
				"avoid the conversion or annotate //reprolint:alloc <justification>", exprString(pass, arg))
		}
	}
}

// nilSliceVars collects the variables of fd declared as nil slices:
// `var x []T` value specs and named slice results.
func nilSliceVars(pass *lint.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	add := func(id *ast.Ident) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				add(name)
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		spec, ok := n.(*ast.ValueSpec)
		if !ok || len(spec.Values) > 0 {
			return true
		}
		for _, name := range spec.Names {
			add(name)
		}
		return true
	})
	return out
}

// captures returns the name of one variable a func literal captures
// from the enclosing function (empty when it captures nothing that
// forces a heap-allocated closure).
func captures(pass *lint.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Parent() == pass.Pkg.Scope() {
			return true // package-level variable: no closure cell
		}
		// Captured iff declared in the enclosing function but outside
		// the literal.
		if obj.Pos() >= fd.Pos() && obj.Pos() < fd.End() && (obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			found = obj.Name()
			return false
		}
		return true
	})
	return found
}

// exprString renders a short source form of an expression for messages.
func exprString(pass *lint.Pass, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(pass, e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(pass, e.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprString(pass, e.X) + "[...]"
	default:
		return "value"
	}
}
