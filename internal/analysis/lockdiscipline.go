package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/lint"
)

// BlocksFact marks a function that can park its goroutine: a channel
// send or receive outside select-with-default, a select without
// default, sync.WaitGroup/Cond.Wait, time.Sleep, or interface I/O
// (io.Writer, http.ResponseWriter) anywhere in its call graph. Holding
// a mutex across such a call serializes every contender behind an
// unbounded wait — the deadlock class the server's non-blocking
// delivery paths exist to avoid.
type BlocksFact struct {
	// Reason describes the root blocking construct.
	Reason string `json:"reason"`
	// Path is the call chain from this function to the root.
	Path []string `json:"path"`
}

// AFact marks BlocksFact as a lint fact.
func (*BlocksFact) AFact() {}

// LockDisciplineScope names the packages whose critical sections the
// analyzer patrols: the synthesis server (cache, singleflight, SSE
// fan-out) and the observability plane (tracer, journal, live ops
// endpoints) — the places where a blocking call under a mutex turns
// one slow subscriber into a stalled pipeline.
var LockDisciplineScope = map[string]bool{
	"repro/internal/serve":       true,
	"repro/internal/obs":         true,
	"repro/internal/obs/obshttp": true,
	"repro/internal/obs/journal": true,
}

const lockEscape = "lock"

// blockRoots maps "pkgpath.Display" of functions outside the loaded
// module that park the calling goroutine (or hand control to an
// arbitrary sink that can). Interface methods match the dispatch site:
// lint.Callee resolves w.Write on an io.Writer to io.Writer.Write.
// Deliberately absent: sync.Mutex.Lock — flagging every nested lock
// acquisition would bury the real findings; lock-ordering deadlocks
// are out of scope for this analyzer.
var blockRoots = map[string]string{
	"sync.WaitGroup.Wait":                 "sync.WaitGroup.Wait parks until the counter drains",
	"sync.Cond.Wait":                      "sync.Cond.Wait parks until signalled",
	"time.Sleep":                          "time.Sleep parks the goroutine",
	"io.Writer.Write":                     "io.Writer.Write can block on the sink",
	"io.ReadWriter.Write":                 "io.ReadWriter.Write can block on the sink",
	"net/http.ResponseWriter.Write":       "http.ResponseWriter.Write can block on a slow client",
	"net/http.ResponseWriter.WriteHeader": "http.ResponseWriter.WriteHeader can block on a slow client",
	"net/http.Flusher.Flush":              "http.Flusher.Flush can block on a slow client",
	"fmt.Fprintf":                         "fmt.Fprintf writes to an io.Writer, which can block",
	"fmt.Fprint":                          "fmt.Fprint writes to an io.Writer, which can block",
	"fmt.Fprintln":                        "fmt.Fprintln writes to an io.Writer, which can block",
	"io.WriteString":                      "io.WriteString writes to an io.Writer, which can block",
	"bufio.Writer.Write":                  "bufio.Writer.Write can flush to the underlying writer, which can block",
	"bufio.Writer.WriteByte":              "bufio.Writer.WriteByte can flush to the underlying writer, which can block",
	"bufio.Writer.WriteString":            "bufio.Writer.WriteString can flush to the underlying writer, which can block",
	"bufio.Writer.Flush":                  "bufio.Writer.Flush writes to the underlying writer, which can block",
}

// writerRoots are the blockRoots whose first argument is the io.Writer
// being written; when that argument is statically an in-memory sink
// (strings.Builder, bytes.Buffer) the call cannot block and the root
// does not apply.
var writerRoots = map[string]bool{
	"fmt.Fprintf":    true,
	"fmt.Fprint":     true,
	"fmt.Fprintln":   true,
	"io.WriteString": true,
}

// matchBlockRoot returns the blockRoots description for fn at this call
// site, suppressing writer roots whose destination is in-memory.
func matchBlockRoot(info *types.Info, fn *types.Func, call *ast.CallExpr) (string, bool) {
	key := rootKey(fn)
	desc, ok := blockRoots[key]
	if !ok {
		return "", false
	}
	if writerRoots[key] && inMemoryWriter(info, call) {
		return "", false
	}
	return desc, true
}

// inMemoryWriter reports whether the call's first argument is a
// *strings.Builder or *bytes.Buffer — sinks that grow memory instead of
// parking the goroutine.
func inMemoryWriter(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

// LockDiscipline is the interprocedural lock-discipline analyzer: no
// statement executed while a sync.Mutex or RWMutex is held may call
// anything that can block — directly (channel op, Wait, interface I/O),
// transitively (a callee holding a BlocksFact), or unknowably (a call
// through a plain function value, the Cache.onEvict class, which can
// both block and re-enter the lock).
var LockDiscipline = &lint.Analyzer{
	Name: "lockdiscipline",
	Doc: "flags channel operations, Wait calls, interface I/O, transitively " +
		"blocking callees and dynamic callbacks executed while a sync.Mutex/RWMutex " +
		"is held; move the call after Unlock (collect under the lock, deliver " +
		"outside it) or annotate //reprolint:lock <justification>",
	Run:       runLockDiscipline,
	FactTypes: []lint.Fact{(*BlocksFact)(nil)},
}

func runLockDiscipline(pass *lint.Pass) error {
	if pass.CallGraph == nil {
		return fmt.Errorf("lockdiscipline requires the call graph (run through lint.RunFacts)")
	}
	seedBlocksFacts(pass)
	propagateBlocksFacts(pass)
	if pass.Reporting && LockDisciplineScope[pass.Pkg.Path()] {
		reportLockViolations(pass)
	}
	return nil
}

// seedBlocksFacts exports a BlocksFact for every function whose body
// directly contains a blocking construct. Function literals count
// toward their declaring function except when go-spawned (a goroutine's
// waits are not the spawner's). A justified //reprolint:lock on the
// construct kills the seed.
func seedBlocksFacts(pass *lint.Pass) {
	for _, file := range pass.Files {
		dirs := lint.FileDirectives(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if reason, pos, ok := firstBlockingConstruct(pass, dirs, fd.Body); ok {
				pass.ExportObjectFact(fn, &BlocksFact{
					Reason: reason,
					Path:   []string{fmt.Sprintf("%s (%s)", reason, shortPos(pass.Fset, pos))},
				})
			}
		}
	}
}

// firstBlockingConstruct finds the first unescaped construct in body
// that can park the executing goroutine.
func firstBlockingConstruct(pass *lint.Pass, dirs *lint.DirectiveIndex, body ast.Node) (reason string, pos token.Pos, found bool) {
	record := func(r string, p token.Pos) {
		if !found {
			reason, pos, found = r, p, true
		}
	}
	var visit func(n ast.Node)
	visit = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				// Spawning never blocks; argument expressions evaluate on
				// the caller's stack, the spawned body does not.
				for _, arg := range n.Call.Args {
					visit(arg)
				}
				return false
			case *ast.SelectStmt:
				if selectHasDefault(n) {
					// Non-blocking by construction; the chosen case body
					// still runs on this stack.
					for _, c := range n.Body.List {
						for _, s := range c.(*ast.CommClause).Body {
							visit(s)
						}
					}
					return false
				}
				if !justified(dirs, n, lockEscape) {
					record("select without default", n.Pos())
				}
				return false
			case *ast.SendStmt:
				if !justified(dirs, n, lockEscape) {
					record("channel send", n.Pos())
				}
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !justified(dirs, n, lockEscape) {
					record("channel receive", n.Pos())
				}
			case *ast.CallExpr:
				if fn := lint.Callee(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil {
					if _, isRoot := matchBlockRoot(pass.TypesInfo, fn, n); isRoot && !justified(dirs, n, lockEscape) {
						record(rootKey(fn), n.Pos())
					}
				}
			}
			return !found
		})
	}
	visit(body)
	return reason, pos, found
}

// selectHasDefault reports whether the select has a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// rootKey renders a function for the blockRoots table.
func rootKey(fn *types.Func) string {
	return fn.Pkg().Path() + "." + lint.FuncDisplayName(fn)
}

// propagateBlocksFacts runs the within-package fixpoint: a function
// statically calling (or CHA-dispatching to, or deferring) a
// BlocksFact holder inherits the fact. EdgeGo is excluded — a spawned
// goroutine's waits do not park the spawner — and dynamic edges carry
// no callee to look up (the reporter flags them at the call site
// instead).
func propagateBlocksFacts(pass *lint.Pass) {
	nodes := pass.CallGraph.PackageNodes(pass.Pkg.Path())
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			var have BlocksFact
			if pass.ImportObjectFact(n.Fn, &have) {
				continue
			}
			for _, e := range n.Out {
				if e.Callee == nil || e.Kind == lint.EdgeGo {
					continue
				}
				var f BlocksFact
				if !pass.ImportObjectFact(e.Callee, &f) {
					continue
				}
				pass.ExportObjectFact(n.Fn, &BlocksFact{
					Reason: f.Reason,
					Path:   extendPath(qualifiedName(e.Callee), f.Path),
				})
				changed = true
				break
			}
		}
	}
}

// reportLockViolations walks every function's critical sections. The
// held-lock set is tracked linearly through each analysis unit (a
// declared body, or a function literal's body as its own unit with no
// locks held — a literal generally runs later, outside the region that
// defined it); branches clone the set so a guard-pattern early unlock
// in a terminating branch cannot leak.
func reportLockViolations(pass *lint.Pass) {
	for _, file := range pass.Files {
		dirs := lint.FileDirectives(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			edgesAt := map[token.Pos][]lint.Edge{}
			if n := pass.CallGraph.Node(fn); n != nil {
				for _, e := range n.Out {
					edgesAt[e.Site] = append(edgesAt[e.Site], e)
				}
			}
			w := &lockWalker{pass: pass, dirs: dirs, edgesAt: edgesAt, reported: map[token.Pos]bool{}}
			units := []*ast.BlockStmt{fd.Body}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					units = append(units, lit.Body)
				}
				return true
			})
			for _, u := range units {
				w.block(u, lockState{})
			}
		}
	}
}

// lockState maps a rendered lock expression ("s.mu") to its acquire
// position.
type lockState map[string]token.Pos

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// names renders the held set deterministically for diagnostics.
func (s lockState) names() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

type lockWalker struct {
	pass     *lint.Pass
	dirs     *lint.DirectiveIndex
	edgesAt  map[token.Pos][]lint.Edge
	reported map[token.Pos]bool
}

func (w *lockWalker) block(b *ast.BlockStmt, held lockState) {
	for _, s := range b.List {
		w.stmt(s, held)
	}
}

// stmt processes one statement, mutating held for lock operations at
// this nesting level and cloning it into branches.
func (w *lockWalker) stmt(s ast.Stmt, held lockState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if expr, acquire, release := lockOp(w.pass, call); acquire || release {
				if acquire {
					held[expr] = call.Pos()
				} else {
					delete(held, expr)
				}
				return
			}
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the
		// function, which the linear model already represents. Other
		// deferred calls run at return, when the held set here no longer
		// describes reality; their bodies were seeded as facts instead.
		return
	case *ast.GoStmt:
		// Spawning is non-blocking; the literal's body is its own unit.
		for _, arg := range s.Call.Args {
			w.expr(arg, held)
		}
	case *ast.BlockStmt:
		w.block(s, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.block(s.Body, held.clone())
		if s.Else != nil {
			w.stmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		inner := held.clone()
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.expr(s.Cond, inner)
		}
		w.block(s.Body, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.block(s.Body, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := held.clone()
				for _, st := range cc.Body {
					w.stmt(st, inner)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := held.clone()
				for _, st := range cc.Body {
					w.stmt(st, inner)
				}
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			if !w.reported[s.Pos()] && !escaped(w.pass, w.dirs, s, lockEscape) {
				w.reported[s.Pos()] = true
				w.pass.Reportf(s.Pos(), "blocking select while %s is held; add a default case, "+
					"move it after Unlock, or annotate //reprolint:lock <justification>", held.names())
			}
			return
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := held.clone()
				// With a default present the comm itself cannot block;
				// the case body still runs under the lock.
				for _, st := range cc.Body {
					w.stmt(st, inner)
				}
			}
		}
	case *ast.SendStmt:
		if len(held) > 0 && !w.reported[s.Pos()] && !escaped(w.pass, w.dirs, s, lockEscape) {
			w.reported[s.Pos()] = true
			w.pass.Reportf(s.Pos(), "channel send while %s is held; collect under the lock and send "+
				"after Unlock, or annotate //reprolint:lock <justification>", held.names())
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	}
}

// expr inspects an expression executed with held locks, reporting
// channel receives and blocking calls. Function literals are skipped:
// they are separate analysis units.
func (w *lockWalker) expr(e ast.Expr, held lockState) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !w.reported[n.Pos()] && !escaped(w.pass, w.dirs, n, lockEscape) {
				w.reported[n.Pos()] = true
				w.pass.Reportf(n.Pos(), "channel receive while %s is held; move it after Unlock "+
					"or annotate //reprolint:lock <justification>", held.names())
			}
		case *ast.CallExpr:
			w.call(n, held)
		}
		return true
	})
}

// call checks one call site against the graph edges: dynamic callees,
// blocking roots, and BlocksFact holders, reporting at most one finding
// per site.
func (w *lockWalker) call(call *ast.CallExpr, held lockState) {
	if w.reported[call.Pos()] {
		return
	}
	for _, e := range w.edgesAt[call.Pos()] {
		if e.Kind == lint.EdgeGo {
			continue
		}
		if e.Callee == nil {
			if !escaped(w.pass, w.dirs, call, lockEscape) {
				w.pass.Reportf(call.Pos(), "call through a function value while %s is held — the callback "+
					"can block or re-enter the lock; invoke it after Unlock or annotate "+
					"//reprolint:lock <justification>", held.names())
			}
			w.reported[call.Pos()] = true
			return
		}
		if desc, ok := matchBlockRoot(w.pass.TypesInfo, e.Callee, call); ok {
			if !escaped(w.pass, w.dirs, call, lockEscape) {
				w.pass.Reportf(call.Pos(), "%s while %s is held; move it after Unlock or annotate "+
					"//reprolint:lock <justification>", desc, held.names())
			}
			w.reported[call.Pos()] = true
			return
		}
		var f BlocksFact
		if w.pass.ImportObjectFact(e.Callee, &f) {
			if !escaped(w.pass, w.dirs, call, lockEscape) {
				w.pass.Reportf(call.Pos(), "call to %s can block while %s is held: %s; move it after "+
					"Unlock or annotate //reprolint:lock <justification>",
					qualifiedName(e.Callee), held.names(), strings.Join(f.Path, " → "))
			}
			w.reported[call.Pos()] = true
			return
		}
	}
}

// lockOp classifies a call as a sync.Mutex/RWMutex acquire or release,
// returning the rendered receiver expression ("s.mu"). Embedded
// mutexes render as their embedding value ("c").
func lockOp(pass *lint.Pass, call *ast.CallExpr) (expr string, acquire, release bool) {
	fn := lint.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch lint.FuncDisplayName(fn) {
	case "Mutex.Lock", "RWMutex.Lock", "RWMutex.RLock":
		acquire = true
	case "Mutex.Unlock", "RWMutex.Unlock", "RWMutex.RUnlock":
		release = true
	default:
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	return types.ExprString(sel.X), acquire, release
}
