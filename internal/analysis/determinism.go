package analysis

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lint"
)

// Determinism flags constructs whose observable order or value differs
// between runs — bare map iteration, wall-clock reads, PRNG draws — in
// packages that promise reproducible output. The Table-1 pinning tests
// catch a nondeterministic netlist only after the fact; this analyzer
// points at the construct that caused it.
var Determinism = &lint.Analyzer{
	Name: "determinism",
	Doc: "flags bare map iteration and time/math-rand use in packages that promise " +
		"byte-identical output (core, encode, netlist, synth, verify, cube, tech); " +
		"escape with //reprolint:ordered <justification> when order provably cannot " +
		"reach the output",
	Run: runDeterminism,
}

const orderedEscape = "ordered"

func runDeterminism(pass *lint.Pass) error {
	for _, file := range pass.Files {
		dirs := lint.FileDirectives(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if escaped(pass, dirs, n, orderedEscape) {
					return true
				}
				pass.Reportf(n.Pos(), "map iteration order is nondeterministic; sort the keys "+
					"or annotate //reprolint:ordered <justification>")
			case *ast.CallExpr:
				fn := lint.Callee(pass.TypesInfo, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				path, name := fn.Pkg().Path(), fn.Name()
				nondet := ""
				switch {
				case path == "time" && (name == "Now" || name == "Since" || name == "Until"):
					nondet = "time." + name + " reads the wall clock"
				case path == "math/rand" || path == "math/rand/v2":
					nondet = path + "." + name + " draws from a process-seeded PRNG"
				}
				if nondet == "" {
					return true
				}
				if escaped(pass, dirs, n, orderedEscape) {
					return true
				}
				pass.Reportf(n.Pos(), "%s, which is nondeterministic in a reproducible package; "+
					"annotate //reprolint:ordered <justification> if it cannot reach the output", nondet)
			}
			return true
		})
	}
	return nil
}
