package analysis

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lint"
)

// Determinism flags constructs whose observable order or value differs
// between runs — bare map iteration, wall-clock reads, PRNG draws — in
// packages that promise reproducible output. The Table-1 pinning tests
// catch a nondeterministic netlist only after the fact; this analyzer
// points at the construct that caused it.
//
// Determinism is syntactic and per-package: the construct is reported
// where it is written. Its interprocedural companion (DeterminismV2)
// chases the same construct class through call chains into packages
// outside the reproducible scope.
var Determinism = &lint.Analyzer{
	Name: "determinism",
	Doc: "flags bare map iteration and time/math-rand use in packages that promise " +
		"byte-identical output (core, encode, netlist, synth, verify, cube, tech); " +
		"escape with //reprolint:ordered <justification> when order provably cannot " +
		"reach the output",
	Run: runDeterminism,
}

const orderedEscape = "ordered"

// nondetRange reports whether n is a bare range over a map, returning
// the hazard description.
func nondetRange(pass *lint.Pass, n *ast.RangeStmt) (string, bool) {
	tv, ok := pass.TypesInfo.Types[n.X]
	if !ok {
		return "", false
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return "", false
	}
	return "map iteration order is nondeterministic", true
}

// nondetCall reports whether the call's static callee is a known
// nondeterminism root (clock read, PRNG draw), returning the hazard
// description.
func nondetCall(pass *lint.Pass, n *ast.CallExpr) (string, bool) {
	fn := lint.Callee(pass.TypesInfo, n)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "time" && (name == "Now" || name == "Since" || name == "Until"):
		return "time." + name + " reads the wall clock", true
	case path == "math/rand" || path == "math/rand/v2":
		// Methods (rr.Float64 on a *rand.Rand) draw from whatever source
		// the value was built with; the construction site (rand.New,
		// rand.NewSource — package-level functions) is where the seed is
		// visible and where the finding lands.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "", false
		}
		return path + "." + name + " draws from a process-seeded PRNG", true
	}
	return "", false
}

func runDeterminism(pass *lint.Pass) error {
	for _, file := range pass.Files {
		dirs := lint.FileDirectives(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if _, ok := nondetRange(pass, n); !ok {
					return true
				}
				if escaped(pass, dirs, n, orderedEscape) {
					return true
				}
				pass.Reportf(n.Pos(), "map iteration order is nondeterministic; sort the keys "+
					"or annotate //reprolint:ordered <justification>")
			case *ast.CallExpr:
				nondet, ok := nondetCall(pass, n)
				if !ok {
					return true
				}
				if escaped(pass, dirs, n, orderedEscape) {
					return true
				}
				pass.Reportf(n.Pos(), "%s, which is nondeterministic in a reproducible package; "+
					"annotate //reprolint:ordered <justification> if it cannot reach the output", nondet)
			}
			return true
		})
	}
	return nil
}
