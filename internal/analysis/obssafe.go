package analysis

import (
	"go/ast"

	"repro/internal/analysis/lint"
)

// obsPkgPath is the core observability package every instrumented
// package talks to — the one that exports Get().
const obsPkgPath = "repro/internal/obs"

// obsLayerPkgs is the full observability layer: the core package plus
// the flight recorder, the HTTP ops plane and the per-stage profiler.
// The layer manages its own nil discipline (so it is exempt from the
// Get() rule), but calls INTO any of these packages from a hotpath
// loop violate the publish-once-per-stage contract — a journal write
// or SSE fan-out per iteration is strictly worse than the atomics PR 3
// removed.
var obsLayerPkgs = map[string]bool{
	obsPkgPath:                   true,
	"repro/internal/obs/journal": true,
	"repro/internal/obs/obshttp": true,
	"repro/internal/obs/prof":    true,
}

// ObsSafe enforces the two contracts of the observability layer:
//
//  1. nil-safety — obs.Get() may return nil (observation off), so its
//     result must be bound and nil-checked before its fields are
//     touched; chaining obs.Get().Metrics panics on unobserved runs.
//     The package-level helpers (obs.Start, obs.Info, obs.TaskHook,
//     obs.Enabled) are always safe.
//  2. publish once per stage — //reprolint:hotpath functions accumulate
//     plain struct-local tallies and publish after the loop; any call
//     into the obs layer (the core package, the journal, the SSE
//     server, the stage profiler) inside one of their loops
//     reintroduces the per-iteration costs PR 3 removed.
var ObsSafe = &lint.Analyzer{
	Name: "obssafe",
	Doc: "flags field access on an unchecked obs.Get() result and obs calls inside " +
		"//reprolint:hotpath loops (the publish-once-per-stage rule); escape with " +
		"//reprolint:obs <justification>",
	Run: runObsSafe,
}

const obsEscape = "obs"

func runObsSafe(pass *lint.Pass) error {
	if obsLayerPkgs[pass.Pkg.Path()] {
		return nil // the layer itself manages its own nil discipline
	}
	for _, file := range pass.Files {
		dirs := lint.FileDirectives(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(sel.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkgPath || fn.Name() != "Get" {
				return true
			}
			if escaped(pass, dirs, sel, obsEscape) {
				return true
			}
			pass.Reportf(sel.Pos(), "obs.Get() may return nil; bind and nil-check the observer "+
				"before touching %s, or use the nil-safe package helpers", sel.Sel.Name)
			return true
		})

		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !lint.HasMarker(pass.Fset, fd, hotpathMarker) {
				continue
			}
			checkObsInLoops(pass, dirs, fd)
		}
	}
	return nil
}

// checkObsInLoops flags calls into the obs layer (package functions or
// methods on obs-declared types) inside the loops of one hotpath
// function.
func checkObsInLoops(pass *lint.Pass, dirs *lint.DirectiveIndex, fd *ast.FuncDecl) {
	walkLoop := func(body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || !obsLayerPkgs[fn.Pkg().Path()] {
				return true
			}
			if escaped(pass, dirs, call, obsEscape) {
				return true
			}
			pass.Reportf(call.Pos(), "obs publish %s inside a loop of //reprolint:hotpath %s; "+
				"accumulate locally and publish once per stage, or annotate //reprolint:obs <justification>",
				lint.FuncDisplayName(fn), lint.DeclDisplayName(fd))
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			walkLoop(n.Body)
			return false
		case *ast.RangeStmt:
			walkLoop(n.Body)
			return false
		}
		return true
	})
}
