// Package analysis is reprolint's checker suite: seven invariant
// analyzers that machine-check the contracts the synthesis pipeline
// otherwise enforces only by convention — the same move the paper makes
// when it replaces designer judgement with the machine-checkable MC
// requirement, applied to our own implementation.
//
// Syntactic (per-package) analyzers:
//
//   - determinism: reproducible packages must not iterate maps bare or
//     read clocks/PRNGs (escape: //reprolint:ordered <why>);
//   - hotalloc: //reprolint:hotpath functions must stay allocation-lean
//     and the known hot paths must carry the marker (escape:
//     //reprolint:alloc <why>);
//   - obssafe: observability goes through the nil-safe obs entry
//     points and publishes once per stage, never per hot-loop iteration
//     (escape: //reprolint:obs <why>);
//   - parpool: fan-out goes through internal/par with index-disjoint
//     result writes, never raw goroutines (escape: //reprolint:go <why>);
//   - cachekey: every exported field of a struct with *FP() fingerprint
//     methods must appear in a fingerprint string (escape:
//     //reprolint:nonsemantic <why>).
//
// Interprocedural (fact-propagating) analyzers — these run over every
// loaded package in import order and chase properties through the CHA
// call graph (see internal/analysis/lint and DESIGN.md §13):
//
//   - determinism2: no call chain from a reproducible package may reach
//     a bare map range, clock read or PRNG draw, even through helper
//     packages (escape: //reprolint:ordered <why>);
//   - lockdiscipline: no call that can block — channel ops, Wait,
//     interface I/O, dynamic callbacks — while a sync.Mutex/RWMutex is
//     held (escape: //reprolint:lock <why>).
//
// Escape comments annotate the offending line (trailing or directly
// above) and must carry a justification; a bare escape suppresses
// nothing and is itself reported.
package analysis

import (
	"go/ast"
	"strings"

	"repro/internal/analysis/lint"
)

// escaped applies the shared escape protocol for one potential finding:
// a justified //reprolint:<name> on the node's line (or the line above)
// waives it; a bare one waives nothing and is reported as its own
// diagnostic, at the node so both findings land on the annotated line.
func escaped(pass *lint.Pass, dirs *lint.DirectiveIndex, node ast.Node, name string) bool {
	esc, bare := dirs.Escaped(node, name)
	if bare {
		pass.Reportf(node.Pos(), "//reprolint:%s escape needs a justification", name)
	}
	return esc
}

// Suite returns the seven analyzers with the package scope each one
// patrols in this repository. Analyzers themselves are scope-free (the
// analysistest fixtures run them on arbitrary packages); the pairing
// here is what cmd/reprolint enforces. For interprocedural analyzers
// the scope gates only reporting: facts are computed for every loaded
// package regardless.
func Suite() []lint.ScopedAnalyzer {
	inModule := func(path string) bool {
		return path == "repro" || strings.HasPrefix(path, "repro/")
	}
	return []lint.ScopedAnalyzer{
		{Analyzer: Determinism, Scope: func(p string) bool { return DeterministicScope[p] }},
		{Analyzer: DeterminismV2, Scope: func(p string) bool { return DeterministicScope[p] }},
		{Analyzer: HotAlloc, Scope: inModule},
		{Analyzer: ObsSafe, Scope: inModule},
		{Analyzer: ParPool, Scope: func(p string) bool {
			// The pool implementation is the one place raw goroutines
			// belong; everything else in the module fans out through it.
			return inModule(p) && p != "repro/internal/par"
		}},
		{Analyzer: CacheKey, Scope: func(p string) bool { return CacheKeyScope[p] }},
		{Analyzer: LockDiscipline, Scope: func(p string) bool { return LockDisciplineScope[p] }},
	}
}
