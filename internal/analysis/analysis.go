// Package analysis is reprolint's checker suite: four invariant
// analyzers that machine-check the contracts the synthesis pipeline
// otherwise enforces only by convention — the same move the paper makes
// when it replaces designer judgement with the machine-checkable MC
// requirement, applied to our own implementation.
//
//   - determinism: reproducible packages must not iterate maps bare or
//     read clocks/PRNGs (escape: //reprolint:ordered <why>);
//   - hotalloc: //reprolint:hotpath functions must stay allocation-lean
//     and the known hot paths must carry the marker (escape:
//     //reprolint:alloc <why>);
//   - obssafe: observability goes through the nil-safe obs entry
//     points and publishes once per stage, never per hot-loop iteration
//     (escape: //reprolint:obs <why>);
//   - parpool: fan-out goes through internal/par with index-disjoint
//     result writes, never raw goroutines (escape: //reprolint:go <why>).
//
// Escape comments annotate the offending line (trailing or directly
// above) and must carry a justification; a bare escape suppresses
// nothing and is itself reported.
package analysis

import (
	"go/ast"
	"strings"

	"repro/internal/analysis/lint"
)

// escaped applies the shared escape protocol for one potential finding:
// a justified //reprolint:<name> on the node's line (or the line above)
// waives it; a bare one waives nothing and is reported as its own
// diagnostic, at the node so both findings land on the annotated line.
func escaped(pass *lint.Pass, dirs *lint.DirectiveIndex, node ast.Node, name string) bool {
	esc, bare := dirs.Escaped(node, name)
	if bare {
		pass.Reportf(node.Pos(), "//reprolint:%s escape needs a justification", name)
	}
	return esc
}

// deterministicPackages promise byte-identical output for identical
// input at any worker count: the Table-1 pipeline from MC analysis to
// netlist emission.
var deterministicPackages = map[string]bool{
	"repro/internal/core":    true,
	"repro/internal/encode":  true,
	"repro/internal/netlist": true,
	"repro/internal/synth":   true,
	"repro/internal/verify":  true,
	"repro/internal/cube":    true,
	"repro/internal/tech":    true,
	// The symbolic core: node ids, variable orders and region
	// decompositions must come out identical run over run, or the
	// engine differential tests (and the byte-identical-netlist promise
	// under Options.SymbolicMC) stop meaning anything.
	"repro/internal/bdd":    true,
	"repro/internal/engine": true,
	// The portfolio SAT layer: every model comes from the canonical
	// anchor and clause exchange is merged in sorted order, so the
	// whole package shares encode's any-worker-count determinism
	// promise.
	"repro/internal/sat": true,
	// The synthesis server: cached, coalesced and sharded execution
	// must return byte-identical results to a cold sequential run, so
	// the serving layer itself carries the determinism promise.
	"repro/internal/serve": true,
}

// Suite returns the four analyzers with the package scope each one
// patrols in this repository. Analyzers themselves are scope-free (the
// analysistest fixtures run them on arbitrary packages); the pairing
// here is what cmd/reprolint enforces.
func Suite() []lint.ScopedAnalyzer {
	inModule := func(path string) bool {
		return path == "repro" || strings.HasPrefix(path, "repro/")
	}
	return []lint.ScopedAnalyzer{
		{Analyzer: Determinism, Scope: func(p string) bool { return deterministicPackages[p] }},
		{Analyzer: HotAlloc, Scope: inModule},
		{Analyzer: ObsSafe, Scope: inModule},
		{Analyzer: ParPool, Scope: func(p string) bool {
			// The pool implementation is the one place raw goroutines
			// belong; everything else in the module fans out through it.
			return inModule(p) && p != "repro/internal/par"
		}},
	}
}
