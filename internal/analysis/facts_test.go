package analysis_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/lint"
)

// loadModulePkgs loads a slice of the real module through the
// go list -export loader, the way cmd/reprolint does.
func loadModulePkgs(t *testing.T) []*lint.Package {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate test source file")
	}
	root := filepath.Join(filepath.Dir(thisFile), "..", "..")
	pkgs, err := lint.Load(root, "./internal/par", "./internal/sg", "./internal/stg", "./internal/core", "./internal/obs/journal")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	return pkgs
}

// TestFactsDeterministic pins the fact engine's reproducibility
// contract: two independent loads of the same source must serialize
// byte-identical fact streams — sorted object order, sorted fact-type
// keys, topologically ordered packages. reprolint's own artifacts join
// the determinism guarantee its analyzers enforce. (The runner is
// sequential, so worker count cannot enter; two fresh loads also prove
// the bytes are independent of token.FileSet state.)
func TestFactsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads packages via go list -export")
	}
	suite := analysis.Suite()
	_, store1, err := lint.RunFacts(loadModulePkgs(t), suite)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	_, store2, err := lint.RunFacts(loadModulePkgs(t), suite)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	b1, b2 := store1.EncodeAll(), store2.EncodeAll()
	if len(b1) == 0 {
		t.Fatal("no facts serialized; expected Blocks/Nondeterministic facts for the loaded packages")
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("fact serialization differs between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", b1, b2)
	}
}

// TestFactFilesSorted decodes one real fact file and asserts the
// serialized object order is sorted — the property byte-identity
// rests on.
func TestFactFilesSorted(t *testing.T) {
	if testing.Short() {
		t.Skip("loads packages via go list -export")
	}
	_, store, err := lint.RunFacts(loadModulePkgs(t), analysis.Suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	checked := 0
	for _, analyzer := range []string{"determinism2", "lockdiscipline"} {
		for _, pkgPath := range store.Packages(analyzer) {
			var entries []struct {
				Object string `json:"object"`
			}
			if err := json.Unmarshal(store.Encoded(analyzer, pkgPath), &entries); err != nil {
				t.Fatalf("decoding %s facts of %s: %v", analyzer, pkgPath, err)
			}
			keys := make([]string, len(entries))
			for i, e := range entries {
				keys[i] = e.Object
			}
			if !sort.StringsAreSorted(keys) {
				t.Errorf("%s facts of %s are not in sorted object order: %v", analyzer, pkgPath, keys)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no fact files to check; expected at least one package with facts")
	}
}
