package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one positioned diagnostic produced by a run, resolved to
// a concrete file position and tagged with its analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Scope decides which packages an analyzer patrols.
type Scope func(pkgPath string) bool

// ScopedAnalyzer pairs an analyzer with the packages it runs on. A nil
// Scope means every loaded package.
type ScopedAnalyzer struct {
	Analyzer *Analyzer
	Scope    Scope
}

// Run applies every analyzer (honoring scopes) to every package and
// returns the findings sorted by file, line, column, analyzer. Analyzer
// errors (not diagnostics) abort the run.
func Run(pkgs []*Package, suite []ScopedAnalyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, sa := range suite {
			if sa.Scope != nil && !sa.Scope(pkg.Path) {
				continue
			}
			a := sa.Analyzer
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				Report: func(d Diagnostic) {
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Pos:      pkg.Fset.Position(d.Pos),
						Message:  d.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
