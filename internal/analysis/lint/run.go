package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one positioned diagnostic produced by a run, resolved to
// a concrete file position and tagged with its analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// Scope decides which packages an analyzer patrols.
type Scope func(pkgPath string) bool

// ScopedAnalyzer pairs an analyzer with the packages it runs on. A nil
// Scope means every loaded package.
type ScopedAnalyzer struct {
	Analyzer *Analyzer
	Scope    Scope
}

// Run applies every analyzer (honoring scopes) to every package and
// returns the findings sorted by file, line, column, analyzer. Analyzer
// errors (not diagnostics) abort the run.
func Run(pkgs []*Package, suite []ScopedAnalyzer) ([]Finding, error) {
	findings, _, err := RunFacts(pkgs, suite)
	return findings, err
}

// RunFacts is Run exposing the fact store of the finished run — the
// serialized per-package facts interprocedural analyzers exported,
// which cmd/reprolint can persist and the determinism test pins.
//
// Intraprocedural analyzers (no FactTypes) run only on the packages
// their scope admits, in any order. Interprocedural analyzers run on
// every package in import (topological) order so each package's pass
// sees its dependencies' serialized facts; their scope gates only
// whether diagnostics are collected.
func RunFacts(pkgs []*Package, suite []ScopedAnalyzer) ([]Finding, *FactStore, error) {
	store := NewFactStore()
	var cg *CallGraph
	for _, sa := range suite {
		if sa.Analyzer.Interprocedural() {
			cg = BuildCallGraph(pkgs)
			break
		}
	}
	ordered := topoOrder(pkgs)
	var findings []Finding
	for _, pkg := range ordered {
		for _, sa := range suite {
			a := sa.Analyzer
			inScope := sa.Scope == nil || sa.Scope(pkg.Path)
			if !a.Interprocedural() && !inScope {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				CallGraph: cg,
				Reporting: inScope,
				Report:    func(Diagnostic) {},
			}
			if inScope {
				pass.Report = func(d Diagnostic) {
					findings = append(findings, Finding{
						Analyzer: a.Name,
						Pos:      pkg.Fset.Position(d.Pos),
						Message:  d.Message,
					})
				}
			}
			if a.Interprocedural() {
				pass.facts = newPendingFacts(a.Name, pkg.Path, store)
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			if pass.facts != nil {
				if err := pass.facts.seal(); err != nil {
					return nil, nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, store, nil
}

// topoOrder sorts packages so every package follows all of its loaded
// dependencies — the order fact files must be written in. Ties (and the
// result overall) are deterministic: Kahn's algorithm over import-path-
// sorted inputs with a sorted ready list. Import cycles cannot occur in
// valid Go; any leftover packages are appended sorted as a safety net.
func topoOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	indeg := make(map[string]int, len(pkgs))
	dependents := map[string][]string{} // dep path → packages importing it
	for _, p := range pkgs {
		indeg[p.Path] += 0
		for _, imp := range p.Pkg.Imports() {
			if _, loaded := byPath[imp.Path()]; loaded {
				indeg[p.Path]++
				dependents[imp.Path()] = append(dependents[imp.Path()], p.Path)
			}
		}
	}
	ready := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		if indeg[p.Path] == 0 {
			ready = append(ready, p.Path)
		}
	}
	sort.Strings(ready)
	out := make([]*Package, 0, len(pkgs))
	seen := make(map[string]bool, len(pkgs))
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		seen[path] = true
		out = append(out, byPath[path])
		next := append([]string(nil), dependents[path]...)
		sort.Strings(next)
		for _, d := range next {
			indeg[d]--
			if indeg[d] == 0 {
				ready = append(ready, d)
				sort.Strings(ready)
			}
		}
	}
	if len(out) < len(pkgs) {
		var rest []string
		for _, p := range pkgs {
			if !seen[p.Path] {
				rest = append(rest, p.Path)
			}
		}
		sort.Strings(rest)
		for _, path := range rest {
			out = append(out, byPath[path])
		}
	}
	return out
}
