package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //reprolint:<name> comment. Escape
// directives (ordered, alloc, obs, go) waive one finding on the line
// they annotate and must carry a justification; marker directives
// (hotpath) classify the declaration they precede.
type Directive struct {
	// Name is the word after "reprolint:" — "ordered", "hotpath",
	// "alloc", "obs" or "go".
	Name string
	// Justification is the free text after the name, trimmed. Escape
	// directives with an empty justification do not suppress anything
	// and are themselves reported.
	Justification string
	Pos           token.Pos
	Line          int
}

const directivePrefix = "//reprolint:"

// parseDirective parses one comment, returning ok=false for ordinary
// comments.
func parseDirective(c *ast.Comment, fset *token.FileSet) (Directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return Directive{}, false
	}
	rest := c.Text[len(directivePrefix):]
	name := rest
	just := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name, just = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	if name == "" {
		return Directive{}, false
	}
	return Directive{
		Name:          name,
		Justification: just,
		Pos:           c.Pos(),
		Line:          fset.Position(c.Pos()).Line,
	}, true
}

// DirectiveIndex maps source lines of one file to the reprolint
// directives written there.
type DirectiveIndex struct {
	fset    *token.FileSet
	byLine  map[int][]Directive
	inOrder []Directive
}

// FileDirectives scans every comment of file for reprolint directives.
func FileDirectives(fset *token.FileSet, file *ast.File) *DirectiveIndex {
	ix := &DirectiveIndex{fset: fset, byLine: map[int][]Directive{}}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if d, ok := parseDirective(c, fset); ok {
				ix.byLine[d.Line] = append(ix.byLine[d.Line], d)
				ix.inOrder = append(ix.inOrder, d)
			}
		}
	}
	return ix
}

// All returns every directive of the file in source order.
func (ix *DirectiveIndex) All() []Directive { return ix.inOrder }

// For returns the directives named name that annotate node: written on
// the node's starting line (trailing comment) or on the line directly
// above it (the //nolint convention).
func (ix *DirectiveIndex) For(node ast.Node, name string) []Directive {
	line := ix.fset.Position(node.Pos()).Line
	var out []Directive
	for _, d := range append(ix.byLine[line-1], ix.byLine[line]...) {
		if d.Name == name {
			out = append(out, d)
		}
	}
	return out
}

// Escaped implements the shared escape protocol: escaped reports
// whether a finding at node is waived by a justified //reprolint:<name>
// comment. A directive without a justification does NOT waive the
// finding: bare is returned true so the caller reports the unjustified
// escape as its own diagnostic alongside the underlying finding.
func (ix *DirectiveIndex) Escaped(node ast.Node, name string) (escaped, bare bool) {
	ds := ix.For(node, name)
	if len(ds) == 0 {
		return false, false
	}
	for _, d := range ds {
		if d.Justification != "" {
			return true, false
		}
	}
	return false, true
}

// HasMarker reports whether decl carries the marker directive name in
// its doc comment or on the line above its first token.
func HasMarker(fset *token.FileSet, decl *ast.FuncDecl, name string) bool {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if d, ok := parseDirective(c, fset); ok && d.Name == name {
				return true
			}
		}
	}
	return false
}
