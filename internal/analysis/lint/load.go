package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir and decodes the JSON
// stream. The -export flag makes the go tool compile every listed
// package and report its export-data file, which is what the
// type-checking importer feeds on — no golang.org/x/tools required.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the lookup function handed to the gc importer: it
// resolves an import path through the package's ImportMap (vendoring,
// test variants) and opens the dependency's export-data file.
func exportLookup(exports map[string]string, importMap map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if m, ok := importMap[path]; ok {
			path = m
		}
		exp, ok := exports[path]
		if !ok || exp == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
}

// Load lists the packages matching patterns below dir (the module
// root), parses and type-checks every non-standard-library match, and
// returns them sorted by import path. Dependencies are imported from
// compiler export data, so each target is checked independently without
// topological ordering.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := checkPackage(fset, p, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// checkPackage parses and type-checks one listed package.
func checkPackage(fset *token.FileSet, p *listedPackage, exports map[string]string) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", exportLookup(exports, p.ImportMap)),
	}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return &Package{Path: p.ImportPath, Dir: p.Dir, Fset: fset, Files: files, Pkg: tpkg, Info: info}, nil
}

// ExportImporter returns a types.Importer that resolves import paths
// through the export-data files produced by LoadExports.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", exportLookup(exports, nil))
}

// LoadExports resolves export-data files for the given (typically
// standard-library) packages and their dependencies: import path →
// export file. The analysistest harness uses it to type-check fixture
// imports of fmt, time, sync, … without compiling them itself.
func LoadExports(dir string, paths ...string) (map[string]string, error) {
	listed, err := goList(dir, paths)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}
