package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// This file is the fact engine: the half of the go/analysis protocol
// that makes analyzers interprocedural. An analyzer declares the fact
// types it produces (Analyzer.FactTypes); while running on one package
// it attaches facts to that package's objects (Pass.ExportObjectFact)
// and reads facts attached to any object — its own or an imported
// package's (Pass.ImportObjectFact). The runner serializes each
// package's facts after its pass completes and decodes them again for
// every downstream importer, so a property proved about a helper in one
// package propagates to its callers in another exactly the way export
// data propagates its type: through the import graph, one deterministic
// byte stream per package.
//
// Determinism is part of the contract: Encode renders facts in sorted
// object order with sorted fact-type keys, so two runs over the same
// source produce byte-identical fact files at any worker count —
// reprolint's own output joins the reproducibility guarantee it
// enforces.

// Fact is a datum an analyzer attaches to a package-level object
// (almost always a function) to export a property across package
// boundaries. Implementations must be JSON-marshalable pointers; the
// AFact marker keeps arbitrary types out of the fact store.
type Fact interface{ AFact() }

// ObjectKey renders the stable per-package key of an object: "Name" for
// package-level objects, "Recv.Name" for methods (pointer receivers
// dereferenced). Two distinct package-level objects never collide:
// method names are unique per receiver and top-level names per package.
func ObjectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		return FuncDisplayName(fn)
	}
	return obj.Name()
}

// factKey addresses one serialized fact set: one analyzer's facts about
// one package.
type factKey struct {
	analyzer string
	pkgPath  string
}

// objectFactJSON is the serialized form of one object's facts.
type objectFactJSON struct {
	Object string                     `json:"object"`
	Facts  map[string]json.RawMessage `json:"facts"` // fact type name → payload
}

// FactStore holds every analyzer's serialized per-package facts for one
// run. Packages under analysis write through pendingFacts; the store
// only ever sees finalized byte streams, and imports decode from those
// bytes — the round trip is exercised on every cross-package read, not
// just when fact files are written to disk.
type FactStore struct {
	enc     map[factKey][]byte
	decoded map[factKey]map[string]map[string]json.RawMessage // lazy decode cache
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		enc:     map[factKey][]byte{},
		decoded: map[factKey]map[string]map[string]json.RawMessage{},
	}
}

// Encoded returns the serialized facts one analyzer exported for one
// package (nil when the package exported none).
func (s *FactStore) Encoded(analyzer, pkgPath string) []byte {
	return s.enc[factKey{analyzer, pkgPath}]
}

// EncodeAll renders every fact file of the store into one deterministic
// byte stream (sorted by analyzer, then package path) — the unit the
// fact-determinism test pins and `reprolint -factdir` writes per
// package.
func (s *FactStore) EncodeAll() []byte {
	keys := make([]factKey, 0, len(s.enc))
	for k := range s.enc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].analyzer != keys[j].analyzer {
			return keys[i].analyzer < keys[j].analyzer
		}
		return keys[i].pkgPath < keys[j].pkgPath
	})
	var b bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&b, "# %s %s\n", k.analyzer, k.pkgPath)
		b.Write(s.enc[k])
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// Packages returns the package paths one analyzer exported facts for,
// sorted.
func (s *FactStore) Packages(analyzer string) []string {
	var out []string
	for k := range s.enc {
		if k.analyzer == analyzer {
			out = append(out, k.pkgPath)
		}
	}
	sort.Strings(out)
	return out
}

// pendingFacts is the live fact set of the package currently under
// analysis by one analyzer: exports accumulate here and are sealed into
// the store when the pass finishes.
type pendingFacts struct {
	analyzer string
	pkgPath  string
	store    *FactStore
	objects  map[string]map[string]Fact // object key → fact type name → fact
}

func newPendingFacts(analyzer, pkgPath string, store *FactStore) *pendingFacts {
	return &pendingFacts{
		analyzer: analyzer,
		pkgPath:  pkgPath,
		store:    store,
		objects:  map[string]map[string]Fact{},
	}
}

// factTypeName keys a fact by its concrete type's name (the pointer
// dereferenced): distinct fact types of one analyzer must have distinct
// type names.
func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// export attaches fact to obj (which must belong to the pending
// package). Re-exporting the same fact type overwrites.
func (p *pendingFacts) export(obj types.Object, f Fact) {
	key := ObjectKey(obj)
	m := p.objects[key]
	if m == nil {
		m = map[string]Fact{}
		p.objects[key] = m
	}
	m[factTypeName(f)] = f
}

// importFact decodes the fact of ptr's type attached to obj into ptr.
// Objects of the pending package read the live exports; every other
// package reads the store's serialized bytes, proving the round trip.
func (p *pendingFacts) importFact(obj types.Object, ptr Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key, tname := ObjectKey(obj), factTypeName(ptr)
	if obj.Pkg().Path() == p.pkgPath {
		f, ok := p.objects[key][tname]
		if !ok {
			return false
		}
		// Copy through JSON so callers can mutate the returned fact
		// without corrupting the export.
		data, err := json.Marshal(f)
		if err != nil {
			return false
		}
		return json.Unmarshal(data, ptr) == nil
	}
	raw, ok := p.store.lookup(factKey{p.analyzer, obj.Pkg().Path()}, key, tname)
	if !ok {
		return false
	}
	return json.Unmarshal(raw, ptr) == nil
}

// lookup finds one serialized fact payload, decoding (and caching) the
// package's fact file on first access.
func (s *FactStore) lookup(k factKey, objKey, tname string) (json.RawMessage, bool) {
	byObj, ok := s.decoded[k]
	if !ok {
		enc := s.enc[k]
		if enc == nil {
			s.decoded[k] = nil
			return nil, false
		}
		var entries []objectFactJSON
		if err := json.Unmarshal(enc, &entries); err != nil {
			s.decoded[k] = nil
			return nil, false
		}
		byObj = make(map[string]map[string]json.RawMessage, len(entries))
		for _, of := range entries {
			byObj[of.Object] = of.Facts
		}
		s.decoded[k] = byObj
	}
	raw, ok := byObj[objKey]
	if !ok {
		return nil, false
	}
	data, ok := raw[tname]
	return data, ok
}

// seal serializes the pending exports deterministically (sorted object
// keys, sorted fact type names inside each object via encoding/json's
// sorted map keys) and registers them in the store. Packages that
// exported nothing produce no entry.
func (p *pendingFacts) seal() error {
	if len(p.objects) == 0 {
		return nil
	}
	keys := make([]string, 0, len(p.objects))
	for k := range p.objects {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]objectFactJSON, 0, len(keys))
	for _, k := range keys {
		entry := objectFactJSON{Object: k, Facts: map[string]json.RawMessage{}}
		for tname, f := range p.objects[k] {
			data, err := json.Marshal(f)
			if err != nil {
				return fmt.Errorf("marshal fact %s of %s.%s: %v", tname, p.pkgPath, k, err)
			}
			entry.Facts[tname] = data
		}
		out = append(out, entry)
	}
	data, err := json.Marshal(out)
	if err != nil {
		return fmt.Errorf("marshal facts of %s: %v", p.pkgPath, err)
	}
	p.store.enc[factKey{p.analyzer, p.pkgPath}] = data
	return nil
}
