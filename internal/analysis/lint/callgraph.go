package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the whole-program call graph the fact analyzers walk:
// class-hierarchy analysis (CHA) over every loaded package. Static
// calls resolve exactly; a call through an interface method resolves to
// every concrete method of a loaded type that implements the interface
// (the CHA over-approximation); a call through a plain function value
// resolves to nothing and is recorded as a dynamic edge so analyzers
// can choose their own conservatism. Go statements and deferred calls
// keep their kind: a blocking analysis must not charge a goroutine's
// waits to its spawner, while a taint analysis must follow both.

// EdgeKind classifies how a call site reaches its callee.
type EdgeKind int8

const (
	// EdgeStatic is a direct call to a named function or method.
	EdgeStatic EdgeKind = iota
	// EdgeIface is a CHA-resolved edge: the site calls an interface
	// method and the callee is one concrete implementation.
	EdgeIface
	// EdgeDynamic is a call through a function value; the callee is
	// unknown (Callee is nil).
	EdgeDynamic
	// EdgeGo marks a call that starts a goroutine (the callee runs, but
	// not on the caller's stack).
	EdgeGo
	// EdgeDefer marks a deferred call (runs on the caller's stack, at
	// return).
	EdgeDefer
)

// Edge is one call site inside a function.
type Edge struct {
	// Site is the call (or go/defer statement's call) position.
	Site token.Pos
	// Call is the syntax of the call expression.
	Call *ast.CallExpr
	// Callee is the resolved target, nil for dynamic calls. For EdgeIface
	// it is one concrete implementation; the interface method itself is
	// in IfaceMethod.
	Callee *types.Func
	// IfaceMethod is the interface method a CHA edge dispatched through
	// (nil otherwise). Analyzers match blocking-I/O roots like
	// io.Writer.Write against it.
	IfaceMethod *types.Func
	Kind        EdgeKind
}

// CGNode is one declared function of a loaded package and its outgoing
// call sites. Calls inside function literals are attributed to the
// enclosing declaration: the literal's body executes on behalf of the
// function that created it (a goroutine-spawning literal keeps EdgeGo).
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []Edge
}

// CallGraph is the CHA call graph over one load's packages.
type CallGraph struct {
	nodes map[*types.Func]*CGNode
	// byKey resolves "pkgpath\x00objectkey" → node, for fact correlation.
	byKey map[string]*CGNode
}

// Node returns the graph node of fn, or nil when fn has no body in the
// loaded packages (external functions, interface methods).
func (g *CallGraph) Node(fn *types.Func) *CGNode { return g.nodes[fn] }

// Nodes returns every node sorted by package path then object key — the
// deterministic iteration order fact propagation uses.
func (g *CallGraph) Nodes() []*CGNode {
	out := make([]*CGNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Pkg.Path, out[j].Pkg.Path
		if pi != pj {
			return pi < pj
		}
		return ObjectKey(out[i].Fn) < ObjectKey(out[j].Fn)
	})
	return out
}

// PackageNodes returns the nodes declared in one package, sorted by
// object key.
func (g *CallGraph) PackageNodes(pkgPath string) []*CGNode {
	var out []*CGNode
	for _, n := range g.nodes {
		if n.Pkg.Path == pkgPath {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return ObjectKey(out[i].Fn) < ObjectKey(out[j].Fn) })
	return out
}

// BuildCallGraph constructs the CHA call graph over pkgs.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: map[*types.Func]*CGNode{}, byKey: map[string]*CGNode{}}
	// Pass 1: nodes, and the concrete named types CHA resolves against.
	var concrete []types.Type
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CGNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.nodes[fn] = n
				g.byKey[pkg.Path+"\x00"+ObjectKey(fn)] = n
			}
		}
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			concrete = append(concrete, named)
		}
	}
	// Pass 2: edges.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				n := g.nodes[pkg.Info.Defs[fd.Name].(*types.Func)]
				if n == nil {
					continue
				}
				collectEdges(pkg, fd.Body, n, concrete)
			}
		}
	}
	return g
}

// collectEdges walks one function body, attributing every call site
// (including those inside nested function literals) to node n.
func collectEdges(pkg *Package, body ast.Node, n *CGNode, concrete []types.Type) {
	var walk func(node ast.Node, kind EdgeKind)
	walk = func(node ast.Node, kind EdgeKind) {
		ast.Inspect(node, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.GoStmt:
				addCall(pkg, x.Call, n, EdgeGo, concrete)
				// Arguments evaluate on the caller's stack; the spawned
				// body's calls keep EdgeGo via the literal walk below.
				if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, EdgeGo)
				}
				for _, arg := range x.Call.Args {
					walk(arg, kind)
				}
				return false
			case *ast.DeferStmt:
				addCall(pkg, x.Call, n, EdgeDefer, concrete)
				if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, EdgeDefer)
				}
				for _, arg := range x.Call.Args {
					walk(arg, kind)
				}
				return false
			case *ast.CallExpr:
				addCall(pkg, x, n, kind, concrete)
				return true
			}
			return true
		})
	}
	walk(body, EdgeStatic)
}

// addCall resolves one call expression into zero or more edges on n.
func addCall(pkg *Package, call *ast.CallExpr, n *CGNode, kind EdgeKind, concrete []types.Type) {
	// Type conversions are not calls.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	fn := Callee(pkg.Info, call)
	if fn == nil {
		// Builtin, or a call through a function value.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				return
			}
		}
		if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); isLit {
			return // immediately-invoked literal: its body is walked inline
		}
		n.Out = append(n.Out, Edge{Site: call.Pos(), Call: call, Kind: dynKind(kind)})
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	recvIface := interfaceRecv(sig)
	if recvIface == nil {
		n.Out = append(n.Out, Edge{Site: call.Pos(), Call: call, Callee: fn, Kind: kind})
		return
	}
	// Interface dispatch: CHA edges to every loaded implementation, plus
	// the interface method itself so root tables can match it.
	n.Out = append(n.Out, Edge{Site: call.Pos(), Call: call, Callee: fn, IfaceMethod: fn, Kind: ifaceKind(kind)})
	for _, t := range concrete {
		impl := chaLookup(t, recvIface, fn)
		if impl != nil {
			n.Out = append(n.Out, Edge{Site: call.Pos(), Call: call, Callee: impl, IfaceMethod: fn, Kind: ifaceKind(kind)})
		}
	}
}

// dynKind preserves go/defer at dynamic call sites.
func dynKind(k EdgeKind) EdgeKind {
	if k == EdgeGo || k == EdgeDefer {
		return k
	}
	return EdgeDynamic
}

// ifaceKind preserves go/defer at interface call sites.
func ifaceKind(k EdgeKind) EdgeKind {
	if k == EdgeGo || k == EdgeDefer {
		return k
	}
	return EdgeIface
}

// interfaceRecv returns the receiver's interface type when sig is an
// interface method signature, nil otherwise.
func interfaceRecv(sig *types.Signature) *types.Interface {
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// chaLookup returns t's (or *t's) concrete method implementing the
// interface method m, when t satisfies iface.
func chaLookup(t types.Type, iface *types.Interface, m *types.Func) *types.Func {
	pt := types.NewPointer(t)
	if !types.Implements(t, iface) && !types.Implements(pt, iface) {
		return nil
	}
	sel := types.NewMethodSet(pt).Lookup(m.Pkg(), m.Name())
	if sel == nil {
		return nil
	}
	impl, _ := sel.Obj().(*types.Func)
	return impl
}
