package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"runtime"
	"testing"
)

// moduleRoot walks up from this file to the directory holding go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Clean(filepath.Join(filepath.Dir(file), "..", "..", ".."))
}

// TestLoadTypechecksAgainstExportData loads a real package of this
// module and checks that cross-package types resolve through the
// export-data importer: map ranges are recognizable and callees resolve
// to their defining packages.
func TestLoadTypechecksAgainstExportData(t *testing.T) {
	pkgs, err := Load(moduleRoot(t), "./internal/netlist")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/netlist" {
		t.Fatalf("loaded %+v, want exactly repro/internal/netlist", pkgs)
	}
	p := pkgs[0]
	if p.Pkg == nil || !p.Pkg.Complete() {
		t.Fatal("package not type-checked to completion")
	}
	// The Build signature mentions sg.Graph and cube types imported from
	// export data; resolving it proves the importer worked.
	obj := p.Pkg.Scope().Lookup("Build")
	if obj == nil {
		t.Fatal("netlist.Build not found in package scope")
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 3 {
		t.Fatalf("netlist.Build has %d params, want 3", sig.Params().Len())
	}
	mapRanges := 0
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if rng, ok := n.(*ast.RangeStmt); ok && rng.X != nil {
				if tv, ok := p.Info.Types[rng.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						mapRanges++
					}
				}
			}
			return true
		})
	}
	if mapRanges == 0 {
		t.Fatal("expected at least one map range in netlist (typecheck info missing?)")
	}
}

func TestLoadExports(t *testing.T) {
	exports, err := LoadExports(moduleRoot(t), "fmt", "time")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"fmt", "time", "io"} { // io is a dep of fmt
		if exports[p] == "" {
			t.Fatalf("no export data for %s (got %d entries)", p, len(exports))
		}
	}
}
