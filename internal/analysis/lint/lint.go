// Package lint is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass,
// Diagnostic — plus a package loader and a multichecker runner, built
// only on the standard library's go/ast, go/types and go/importer.
//
// The x/tools module is deliberately not vendored: the checker suite in
// internal/analysis needs exactly the core protocol (parse + typecheck
// a package, hand the syntax and type information to each analyzer,
// collect positioned diagnostics), and keeping the protocol local keeps
// the repository self-contained. The API mirrors go/analysis closely
// enough that the analyzers would port to the real framework by
// changing one import.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker: a name for diagnostics and
// escape comments, documentation, and the Run function applied to every
// package in scope.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output. It
	// must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by reprolint -help:
	// the invariant enforced, the scope patrolled, the escape hatch.
	Doc string
	// Run applies the analyzer to one type-checked package, reporting
	// findings through pass.Report.
	Run func(*Pass) error
	// FactTypes declares the fact prototypes the analyzer exports. A
	// non-empty list makes the analyzer interprocedural: the runner
	// applies it to every loaded package in import order (its Scope then
	// gates only reporting, never fact computation), builds the CHA call
	// graph for it, and persists its per-package facts for downstream
	// importers.
	FactTypes []Fact
}

// Interprocedural reports whether the analyzer participates in the fact
// protocol.
func (a *Analyzer) Interprocedural() bool { return len(a.FactTypes) > 0 }

// Pass carries one analyzer's view of one package: syntax, type
// information, and the diagnostic sink. Interprocedural analyzers
// additionally see the whole-program call graph and the fact engine.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// CallGraph is the CHA call graph over every loaded package; nil for
	// analyzers without FactTypes.
	CallGraph *CallGraph
	// Reporting is false when the runner applies an interprocedural
	// analyzer to an out-of-scope package purely to compute its facts;
	// Report is a no-op then, and analyzers can skip report-only work.
	Reporting bool

	facts *pendingFacts
}

// ExportObjectFact attaches fact to obj, which must be declared in the
// package under analysis. Facts survive the pass: the runner serializes
// them and downstream packages import them by object.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil {
		panic(fmt.Sprintf("lint: %s has no FactTypes but exported a fact", p.Analyzer.Name))
	}
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != p.Pkg.Path() {
		panic(fmt.Sprintf("lint: %s exported a fact for foreign object %v", p.Analyzer.Name, obj))
	}
	p.facts.export(obj, fact)
}

// ImportObjectFact decodes the fact of ptr's concrete type attached to
// obj into ptr, reporting whether one was found. Objects of the current
// package resolve against the live exports; imported packages resolve
// against their serialized fact files.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.importFact(obj, ptr)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position inside the package and the
// message shown to the developer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// NewInfo returns a types.Info with every map analyzers consume
// allocated (Types, Defs, Uses, Selections, Implicits, Scopes).
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Callee resolves the static callee of a call expression to a
// *types.Func (package function or method), or nil for builtins,
// function-typed variables and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// CalleePath returns the defining package path and name of a call's
// static callee, or ("", "") when it cannot be resolved. Methods
// report as "Recv.Name" with pointer receivers dereferenced.
func CalleePath(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), FuncDisplayName(fn)
}

// FuncDisplayName renders a *types.Func as "Name" for package functions
// and "Recv.Name" for methods (pointer receivers dereferenced).
func FuncDisplayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return fn.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	if named, ok := rt.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// DeclDisplayName renders an *ast.FuncDecl the same way FuncDisplayName
// renders its object: "Name" or "Recv.Name".
func DeclDisplayName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return decl.Name.Name
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (Recv[T]) index the base identifier.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + decl.Name.Name
	}
	return decl.Name.Name
}
