package analysis

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/lint"
)

// parPkgPath is the bounded worker pool all fan-out goes through.
const parPkgPath = "repro/internal/par"

// ParPool protects the deterministic-fan-out architecture: every
// parallel loop goes through internal/par (so worker counts, panic
// draining and task observation stay centralized), and pool callbacks
// write results only into slots addressed by their own task index —
// the index-disjointness contract that makes workers=1 and workers=N
// byte-identical. It flags raw go statements and writes to captured
// slices that are not indexed by the callback's task index.
var ParPool = &lint.Analyzer{
	Name: "parpool",
	Doc: "flags raw go statements outside internal/par and shared-slice writes in " +
		"par.ForEach callbacks that are not addressed by the task index; escape with " +
		"//reprolint:go <justification>",
	Run: runParPool,
}

const goEscape = "go"

func runParPool(pass *lint.Pass) error {
	for _, file := range pass.Files {
		dirs := lint.FileDirectives(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if escaped(pass, dirs, n, goEscape) {
					return true
				}
				pass.Reportf(n.Pos(), "raw go statement; fan out through internal/par so worker "+
					"bounds and determinism stay centralized, or annotate //reprolint:go <justification>")
			case *ast.CallExpr:
				checkPoolCallback(pass, dirs, n)
			}
			return true
		})
	}
	return nil
}

// checkPoolCallback inspects the task callback of a par.ForEach /
// par.ForEachHook call: writes to slices captured from the enclosing
// scope must be indexed by the callback's own index parameter.
func checkPoolCallback(pass *lint.Pass, dirs *lint.DirectiveIndex, call *ast.CallExpr) {
	fn := lint.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != parPkgPath {
		return
	}
	if name := fn.Name(); name != "ForEach" && name != "ForEachHook" {
		return
	}
	if len(call.Args) < 3 {
		return
	}
	lit, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit)
	if !ok || len(lit.Type.Params.List) == 0 || len(lit.Type.Params.List[0].Names) == 0 {
		return
	}
	idxObj := pass.TypesInfo.Defs[lit.Type.Params.List[0].Names[0]]
	if idxObj == nil {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range asg.Lhs {
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				continue
			}
			base, ok := ast.Unparen(ix.X).(*ast.Ident)
			if !ok {
				continue
			}
			obj, ok := pass.TypesInfo.Uses[base].(*types.Var)
			if !ok {
				continue
			}
			if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
				continue
			}
			// Only captured slices race; slices declared inside the
			// callback are task-local.
			if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
				continue
			}
			if usesObject(pass, ix.Index, idxObj) {
				continue
			}
			if escaped(pass, dirs, asg, goEscape) {
				continue
			}
			pass.Reportf(lhs.Pos(), "write to captured slice %s is not addressed by the pool's "+
				"task index %s; index-disjoint slots are the pool's determinism contract "+
				"(//reprolint:go <justification> to waive)", base.Name, idxObj.Name())
		}
		return true
	})
}

// usesObject reports whether expr mentions the given object.
func usesObject(pass *lint.Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
