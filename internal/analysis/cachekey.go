package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"repro/internal/analysis/lint"
)

// CacheKeyScope names the packages whose structs feed content-addressed
// cache keys. Today that is the synthesis server: serve.Config flows
// into RepairFP/NetlistFP, which flow into stageKey, which decides
// cache-hit identity.
var CacheKeyScope = map[string]bool{
	"repro/internal/serve": true,
}

const nonsemanticEscape = "nonsemantic"

// CacheKey proves the cache-key soundness invariant: any struct that
// fingerprints itself (methods named *FP returning string) must fold
// every exported field into some fingerprint string, or declare the
// field cache-irrelevant with //reprolint:nonsemantic <justification>.
// A field added to serve.Config without extending RepairFP/NetlistFP
// would silently alias cache entries across semantically different
// configurations — stale netlists served as fresh — and no runtime test
// catches that until the colliding pair of requests happens to occur.
//
// The check is lexical on purpose: a field counts as fingerprinted when
// "<lowercase name>=" appears in a string literal inside any of the
// type's *FP methods, matching the "key=value|key=value" convention the
// fingerprints use. Renaming a field without updating the format string
// therefore also trips the analyzer.
var CacheKey = &lint.Analyzer{
	Name: "cachekey",
	Doc: "every exported field of a struct with *FP() string fingerprint methods " +
		"must appear as \"<name>=\" in a fingerprint format string, or carry " +
		"//reprolint:nonsemantic <justification> declaring it cache-irrelevant",
	Run: runCacheKey,
}

func runCacheKey(pass *lint.Pass) error {
	// Pass 1: accumulate, per receiver type name, the lowercased text of
	// every string literal inside its *FP methods.
	blobs := map[string]string{}
	hasFP := map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isFPMethod(fd) {
				continue
			}
			recv := recvTypeName(fd)
			if recv == "" {
				continue
			}
			hasFP[recv] = true
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				if s, err := strconv.Unquote(lit.Value); err == nil {
					blobs[recv] += strings.ToLower(s) + "\x00"
				}
				return true
			})
		}
	}
	if len(hasFP) == 0 {
		return nil
	}
	// Pass 2: check every exported field of each fingerprinted struct.
	for _, file := range pass.Files {
		dirs := lint.FileDirectives(pass.Fset, file)
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !hasFP[ts.Name.Name] {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkFingerprintedStruct(pass, dirs, ts.Name.Name, st, blobs[ts.Name.Name])
			}
		}
	}
	return nil
}

func checkFingerprintedStruct(pass *lint.Pass, dirs *lint.DirectiveIndex, typeName string, st *ast.StructType, blob string) {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			if strings.Contains(blob, strings.ToLower(name.Name)+"=") {
				continue
			}
			if escaped(pass, dirs, field, nonsemanticEscape) {
				continue
			}
			pass.Reportf(name.Pos(), "field %s.%s is not in any %s fingerprint: add \"%s=\" to a *FP() "+
				"format string or annotate //reprolint:nonsemantic <justification>",
				typeName, name.Name, typeName, strings.ToLower(name.Name))
		}
		// Embedded fields contribute their own fields to the struct's
		// identity; require the embedded type name itself to be keyed.
		if len(field.Names) == 0 {
			name := embeddedName(field.Type)
			if name == "" || !token.IsExported(name) {
				continue
			}
			if strings.Contains(blob, strings.ToLower(name)+"=") {
				continue
			}
			if escaped(pass, dirs, field, nonsemanticEscape) {
				continue
			}
			pass.Reportf(field.Pos(), "embedded field %s.%s is not in any %s fingerprint: add \"%s=\" to a *FP() "+
				"format string or annotate //reprolint:nonsemantic <justification>",
				typeName, name, typeName, strings.ToLower(name))
		}
	}
}

// isFPMethod reports whether fd is a fingerprint method: a method whose
// name ends in "FP" and whose only result is a string.
func isFPMethod(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || !strings.HasSuffix(fd.Name.Name, "FP") {
		return false
	}
	res := fd.Type.Results
	if res == nil || len(res.List) != 1 || len(res.List[0].Names) > 1 {
		return false
	}
	id, ok := res.List[0].Type.(*ast.Ident)
	return ok && id.Name == "string"
}

// recvTypeName extracts the receiver's base type name ("Config" from
// "(c Config)" or "(c *Config)").
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// embeddedName extracts the type name of an embedded field.
func embeddedName(t ast.Expr) string {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return ""
}
