package sim_test

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sg"
	"repro/internal/sim"
	"repro/internal/stg"
	"repro/internal/synth"
)

func mcNetlist(t *testing.T, g *sg.Graph) (*netlist.Netlist, *sg.Graph) {
	t.Helper()
	rep, err := synth.FromGraph(g, synth.Options{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Netlist, rep.Final
}

func TestHandshakeSimulatesCleanly(t *testing.T) {
	src := `
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`
	g, err := stg.BuildSG(stg.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	nl, final := mcNetlist(t, g)
	for seed := int64(0); seed < 20; seed++ {
		res := sim.Run(nl, final, sim.Config{Seed: seed, MaxEvents: 2000})
		if !res.OK() {
			t.Fatalf("seed %d: %s", seed, res)
		}
		if res.Cycles < 10 {
			t.Fatalf("seed %d: only %d cycles in 2000 events", seed, res.Cycles)
		}
		if res.Deadlocked {
			t.Fatalf("seed %d: deadlocked", seed)
		}
	}
}

func TestMCCircuitsSimulateHazardFree(t *testing.T) {
	// Property: circuits synthesized under the MC requirement never
	// witness a gate disablement, for any delay assignment (Theorem 3,
	// sampled by simulation).
	for _, name := range []string{"Delement", "luciano", "berkel2", "mp-forward-pkt"} {
		e, _ := benchdata.Table1ByName(name)
		g, err := stg.BuildSG(e.STG())
		if err != nil {
			t.Fatal(err)
		}
		nl, final := mcNetlist(t, g)
		for seed := int64(0); seed < 10; seed++ {
			res := sim.Run(nl, final, sim.Config{Seed: seed, MaxEvents: 3000})
			if !res.OK() {
				t.Fatalf("%s seed %d: %s", name, seed, res)
			}
			if res.Cycles == 0 {
				t.Fatalf("%s seed %d: no complete cycles", name, seed)
			}
		}
	}
}

func TestFig4BaselineHazardWitnessed(t *testing.T) {
	// Monte-Carlo: the Example-2 baseline must show its hazard under
	// some delay assignment.
	g := benchdata.Fig4SG()
	nl, err := baseline.Synthesize(g, netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A wide gate-delay spread makes the losing race possible: the AND
	// gate must be slower than the environment's a+ response plus the
	// OR gate and the latch (the paper: "if its delay is large enough").
	// About 2% of delay assignments lose the race; 200 seeds make the
	// (deterministic) scan reliable.
	found := false
	for seed := int64(0); seed < 200 && !found; seed++ {
		res := sim.Run(nl, g, sim.Config{
			Seed: seed, MaxEvents: 4000,
			GateDelayMin: 1, GateDelayMax: 150,
		})
		if len(res.Hazards) > 0 {
			found = true
			if !strings.Contains(res.Hazards[0].Gate, "AND(c' d)") {
				t.Errorf("seed %d: unexpected victim %s", seed, res.Hazards[0].Gate)
			}
		}
	}
	if !found {
		t.Fatal("no hazard witnessed in 200 random-delay runs")
	}
}

func TestFig4InjectedDelayForcesHazard(t *testing.T) {
	// Failure injection: pin the AND(c'd) gate very slow — the paper's
	// exact scenario ("if its delay is large enough, the signal a will
	// fire to 1 earlier") — and the hazard appears deterministically.
	g := benchdata.Fig4SG()
	nl, err := baseline.Synthesize(g, netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow := -1
	for gi, gate := range nl.Gates {
		if gate.Kind == netlist.And && strings.Contains(gate.Name, "c'") {
			slow = gi
		}
	}
	if slow < 0 {
		t.Fatalf("AND gate over c' not found:\n%s", nl)
	}
	hits := 0
	for seed := int64(0); seed < 10; seed++ {
		res := sim.Run(nl, g, sim.Config{
			Seed:        seed,
			MaxEvents:   4000,
			InjectDelay: map[int]float64{slow: 500},
		})
		if len(res.Hazards) > 0 {
			hits++
			// The injected gate itself must be the victim.
			if !strings.Contains(res.Hazards[0].Gate, "AND") {
				t.Fatalf("seed %d: unexpected victim %s", seed, res.Hazards[0].Gate)
			}
		}
	}
	if hits < 5 {
		t.Fatalf("slow AND gate only disabled in %d/10 runs", hits)
	}
}

func TestRepairedFig4SimulatesCleanly(t *testing.T) {
	nl, final := mcNetlist(t, benchdata.Fig4SG())
	for seed := int64(0); seed < 20; seed++ {
		res := sim.Run(nl, final, sim.Config{Seed: seed, MaxEvents: 3000})
		if !res.OK() {
			t.Fatalf("seed %d: %s", seed, res)
		}
	}
	// Even with adversarial injection on every AND gate, the MC circuit
	// stays hazard-free (Theorem 3 is delay-independent).
	inject := map[int]float64{}
	for gi, gate := range nl.Gates {
		if gate.Kind == netlist.And {
			inject[gi] = 300
		}
	}
	res := sim.Run(nl, final, sim.Config{Seed: 1, MaxEvents: 3000, InjectDelay: inject})
	if !res.OK() {
		t.Fatalf("MC circuit hazarded under injected delays: %s", res)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Break the handshake: ack driven by AND(req, !req) ≡ 0 — after
	// req+ nothing can ever fire.
	src := `
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`
	g, err := stg.BuildSG(stg.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	req, ack := g.SignalIndex("req"), g.SignalIndex("ack")
	nl := &netlist.Netlist{G: g, SignalNet: []int{0, 1}}
	nl.Nets = []netlist.Net{
		{Name: "req", Driver: -1, Signal: req, ComplementOf: -1},
		{Name: "ack", Driver: 0, Signal: ack, ComplementOf: -1},
	}
	nl.Gates = []netlist.Gate{{
		Kind: netlist.And, Name: "AND(req !req)",
		Pins: []netlist.Pin{{Net: 0}, {Net: 0, Invert: true}},
		Out:  1,
	}}
	res := sim.Run(nl, g, sim.Config{Seed: 3, MaxEvents: 100})
	if !res.Deadlocked {
		t.Fatalf("expected deadlock: %s", res)
	}
	if res.Cycles != 0 {
		t.Fatal("no cycle should complete")
	}
}

func TestWrongPolarityConformance(t *testing.T) {
	src := `
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`
	g, err := stg.BuildSG(stg.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	nl := &netlist.Netlist{G: g, SignalNet: []int{0, 1}}
	nl.Nets = []netlist.Net{
		{Name: "req", Driver: -1, Signal: 0, ComplementOf: -1},
		{Name: "ack", Driver: 0, Signal: 1, ComplementOf: -1},
	}
	nl.Gates = []netlist.Gate{{
		Kind: netlist.Wire, Name: "WIRE(ack)",
		Pins: []netlist.Pin{{Net: 0, Invert: true}},
		Out:  1,
	}}
	res := sim.Run(nl, g, sim.Config{Seed: 5, MaxEvents: 100})
	if len(res.Unexpected) == 0 {
		t.Fatalf("inverted wire must violate conformance: %s", res)
	}
	if res.OK() {
		t.Fatal("result must not be OK")
	}
}

func TestResultString(t *testing.T) {
	g := benchdata.Fig4SG()
	nl, err := baseline.Synthesize(g, netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find a hazardous seed and render it.
	for seed := int64(0); seed < 50; seed++ {
		res := sim.Run(nl, g, sim.Config{Seed: seed, MaxEvents: 4000})
		if len(res.Hazards) > 0 {
			s := res.String()
			if !strings.Contains(s, "hazard at t=") {
				t.Fatalf("rendering: %s", s)
			}
			return
		}
	}
	t.Skip("no hazardous seed found for rendering test")
}

func TestSimulationAgreesWithVerifier(t *testing.T) {
	// Cross-validation on the whole Table-1 suite: simulation of the
	// MC-synthesized circuits must never witness a hazard (the verifier
	// proved there is none).
	a := core.NewAnalyzer(benchdata.Fig1SG())
	_ = a // (analyzer exercised above; keep the import meaningful)
	for _, e := range benchdata.Table1 {
		if e.Name == "nak-pa" || e.Name == "duplicator" || e.Name == "ganesh_8" || e.Name == "berkel3" {
			continue // slow repairs are covered elsewhere
		}
		g, err := stg.BuildSG(e.STG())
		if err != nil {
			t.Fatal(err)
		}
		nl, final := mcNetlist(t, g)
		res := sim.Run(nl, final, sim.Config{Seed: 42, MaxEvents: 2000})
		if !res.OK() {
			t.Fatalf("%s: %s", e.Name, res)
		}
	}
}
