package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Waveform records value changes per net during a simulation run, for
// export in the IEEE 1364 VCD (value change dump) format that standard
// waveform viewers read.
type Waveform struct {
	names   []string
	changes []change
	last    map[int]bool
}

type change struct {
	time float64
	net  int
	val  bool
}

// NewWaveform creates a recorder for the given net names.
func NewWaveform(netNames []string) *Waveform {
	return &Waveform{names: append([]string(nil), netNames...), last: map[int]bool{}}
}

// Record notes the value of a net at a time; consecutive identical
// values are dropped.
func (w *Waveform) Record(time float64, net int, val bool) {
	if v, ok := w.last[net]; ok && v == val {
		return
	}
	w.last[net] = val
	w.changes = append(w.changes, change{time: time, net: net, val: val})
}

// vcdID produces the short ASCII identifier of a net.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var b strings.Builder
	for {
		b.WriteByte(alphabet[i%len(alphabet)])
		i /= len(alphabet)
		if i == 0 {
			return b.String()
		}
	}
}

// sanitize makes a net name VCD-friendly.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// WriteVCD emits the recorded waveform. Timestamps are scaled by 100 to
// preserve two decimal places of the simulator's float time.
func (w *Waveform) WriteVCD(out io.Writer, module string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "$timescale 10ps $end\n$scope module %s $end\n", sanitize(module))
	for i, n := range w.names {
		fmt.Fprintf(&b, "$var wire 1 %s %s $end\n", vcdID(i), sanitize(n))
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")

	sort.SliceStable(w.changes, func(i, j int) bool { return w.changes[i].time < w.changes[j].time })
	lastT := -1
	for _, c := range w.changes {
		t := int(c.time * 100)
		if t != lastT {
			fmt.Fprintf(&b, "#%d\n", t)
			lastT = t
		}
		v := "0"
		if c.val {
			v = "1"
		}
		fmt.Fprintf(&b, "%s%s\n", v, vcdID(c.net))
	}
	_, err := io.WriteString(out, b.String())
	return err
}
