// Package sim is an event-driven gate-level simulator for the
// speed-independent firing model: every gate, once excited, fires after
// its own (randomly drawn or injected) delay; if an input change removes
// the excitation before the gate fires, the gate has been *disabled* —
// exactly the semi-modularity hazard of the unbounded delay model.
//
// The simulator complements the exhaustive verifier in internal/verify:
// the verifier enumerates the complete composed state space, while the
// simulator executes long random runs under concrete delay assignments,
// supports targeted failure injection (pin a particular gate slow or
// fast), and reports the hazards it actually witnesses with timestamps.
// The environment is the specification's mirror: enabled input
// transitions fire after random environment delays, with input choices
// resolved by the random source.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/netlist"
	"repro/internal/sg"
)

// Config parameterizes a simulation run.
type Config struct {
	// Seed drives all randomness (delays and choice resolution).
	Seed int64
	// MaxEvents bounds the run (default 10000).
	MaxEvents int
	// GateDelay is the half-open delay range [Min, Max) for gates;
	// defaults to [1, 10).
	GateDelayMin, GateDelayMax float64
	// InputDelayMin/Max is the environment's reaction delay range;
	// defaults to [1, 20).
	InputDelayMin, InputDelayMax float64
	// InjectDelay pins the delay of specific gates (by gate index),
	// overriding the random draw — targeted failure injection.
	InjectDelay map[int]float64
	// Trace receives a line per executed event when non-nil.
	Trace func(string)
	// Waveform records every net's value changes when non-nil, for VCD
	// export.
	Waveform *Waveform
}

func (c *Config) fill() {
	if c.MaxEvents == 0 {
		c.MaxEvents = 10000
	}
	if c.GateDelayMax == 0 {
		c.GateDelayMin, c.GateDelayMax = 1, 10
	}
	if c.InputDelayMax == 0 {
		c.InputDelayMin, c.InputDelayMax = 1, 20
	}
}

// Hazard is a witnessed semi-modularity violation: the gate was excited
// at Since and disabled at Time by the named disturbance.
type Hazard struct {
	Time     float64
	Since    float64
	Gate     string
	Disabler string
}

// Result summarizes a simulation run.
type Result struct {
	Events      int
	Fires       int // gate and input transitions executed
	Cycles      int // returns to the initial specification state
	Hazards     []Hazard
	Unexpected  []string // conformance violations
	RSConflicts []string
	Deadlocked  bool    // nothing left to fire before MaxEvents
	EndTime     float64 // simulated time at the end of the run
}

// OK reports whether the run completed without hazards or conformance
// violations.
func (r *Result) OK() bool {
	return len(r.Hazards) == 0 && len(r.Unexpected) == 0 && len(r.RSConflicts) == 0
}

// String renders a short summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simulated %d events, %d fires, %d cycles, t=%.1f",
		r.Events, r.Fires, r.Cycles, r.EndTime)
	if r.Deadlocked {
		b.WriteString(", deadlocked")
	}
	for _, h := range r.Hazards {
		fmt.Fprintf(&b, "\n  hazard at t=%.2f: %s disabled by %s (excited since t=%.2f)",
			h.Time, h.Gate, h.Disabler, h.Since)
	}
	for _, u := range r.Unexpected {
		fmt.Fprintf(&b, "\n  unexpected output: %s", u)
	}
	for _, c := range r.RSConflicts {
		fmt.Fprintf(&b, "\n  RS conflict: %s", c)
	}
	return b.String()
}

// event is a scheduled firing.
type event struct {
	time    float64
	seq     int  // tie-break for determinism
	isInput bool // environment transition vs gate firing
	gate    int  // gate index (gates)
	signal  int  // specification signal (inputs)
	epoch   int  // cancellation token
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Run simulates the netlist against its specification environment.
func Run(nl *netlist.Netlist, spec *sg.Graph, cfg Config) *Result {
	cfg.fill()
	rr := rand.New(rand.NewSource(cfg.Seed)) //reprolint:ordered fixed seed from Config.Seed; the stream is reproducible
	res := &Result{}

	// Fixed per-gate delays: the SI model's "unknown but fixed" delays.
	gateDelay := make([]float64, len(nl.Gates))
	for i := range gateDelay {
		if d, ok := cfg.InjectDelay[i]; ok {
			gateDelay[i] = d
		} else {
			gateDelay[i] = cfg.GateDelayMin + rr.Float64()*(cfg.GateDelayMax-cfg.GateDelayMin)
		}
	}

	// Initial values (same settling as the verifier).
	values := make([]bool, nl.NumNets())
	for sig := range spec.Signals {
		values[nl.SignalNet[sig]] = spec.Value(spec.Initial, sig)
	}
	for ni, n := range nl.Nets {
		if n.ComplementOf >= 0 {
			values[ni] = !spec.Value(spec.Initial, n.ComplementOf)
		}
	}
	for iter := 0; ; iter++ {
		changed := false
		for gi, g := range nl.Gates {
			if !nl.SettleAtInit(gi) {
				continue
			}
			if next := nl.Eval(values, gi); values[g.Out] != next {
				values[g.Out] = next
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter > nl.NumNets()+4 {
			res.Unexpected = append(res.Unexpected, "combinational cycle at initialization")
			return res
		}
	}

	if cfg.Waveform != nil {
		for ni, v := range values {
			cfg.Waveform.Record(0, ni, v)
		}
	}

	specState := spec.Initial
	now := 0.0
	seq := 0

	var queue eventQueue
	// pending firing per gate / per input signal, for cancellation.
	gatePending := make([]*event, len(nl.Gates))
	gateSince := make([]float64, len(nl.Gates))
	inputPending := map[int]*event{}

	scheduleGate := func(gi int) {
		if gatePending[gi] != nil {
			return
		}
		seq++
		e := &event{time: now + gateDelay[gi], seq: seq, gate: gi}
		gatePending[gi] = e
		gateSince[gi] = now
		heap.Push(&queue, e)
	}
	scheduleInput := func(sig int) {
		if inputPending[sig] != nil {
			return
		}
		seq++
		d := cfg.InputDelayMin + rr.Float64()*(cfg.InputDelayMax-cfg.InputDelayMin)
		e := &event{time: now + d, seq: seq, isInput: true, signal: sig}
		inputPending[sig] = e
		heap.Push(&queue, e)
	}

	// refresh reconciles pending events with the current excitations
	// after any net change or spec move; disabler names the transition
	// responsible for disablements.
	refresh := func(disabler string) {
		for gi := range nl.Gates {
			excited := nl.Eval(values, gi) != values[nl.Gates[gi].Out]
			switch {
			case excited && gatePending[gi] == nil:
				scheduleGate(gi)
			case !excited && gatePending[gi] != nil:
				// Disabled before firing: the hazard of the pure
				// unbounded-delay model.
				gatePending[gi].epoch = -1 // cancel
				gatePending[gi] = nil
				if len(res.Hazards) < 16 {
					res.Hazards = append(res.Hazards, Hazard{
						Time: now, Since: gateSince[gi],
						Gate: nl.Gates[gi].Name, Disabler: disabler,
					})
				}
			}
		}
		enabled := map[int]bool{}
		for _, e := range spec.States[specState].Succ {
			if spec.Input[e.Signal] {
				enabled[e.Signal] = true
				scheduleInput(e.Signal)
			}
		}
		//reprolint:ordered entries are cancelled independently; no PRNG draw or output write happens in iteration order
		for sig, e := range inputPending {
			if !enabled[sig] {
				// Input withdrawn by the environment's own choice
				// resolution — benign.
				e.epoch = -1
				delete(inputPending, sig)
			}
		}
	}
	refresh("initialization")

	for res.Events < cfg.MaxEvents && len(queue) > 0 {
		e := heap.Pop(&queue).(*event)
		if e.epoch == -1 {
			continue // cancelled
		}
		res.Events++
		now = e.time
		res.EndTime = now

		if e.isInput {
			delete(inputPending, e.signal)
			to, ok := spec.Successor(specState, e.signal)
			if !ok {
				continue // stale
			}
			values[nl.SignalNet[e.signal]] = !values[nl.SignalNet[e.signal]]
			specState = to
			res.Fires++
			if cfg.Waveform != nil {
				cfg.Waveform.Record(now, nl.SignalNet[e.signal], values[nl.SignalNet[e.signal]])
			}
			if cfg.Trace != nil {
				cfg.Trace(fmt.Sprintf("t=%8.2f input %s → spec s%d", now, spec.Signals[e.signal], specState))
			}
			refresh("input " + spec.Signals[e.signal])
			if specState == spec.Initial {
				res.Cycles++
			}
			continue
		}

		gi := e.gate
		if gatePending[gi] != e {
			continue // superseded
		}
		gatePending[gi] = nil
		g := nl.Gates[gi]
		next := nl.Eval(values, gi)
		if next == values[g.Out] {
			continue // excitation vanished exactly now (already reported)
		}
		// RS drive check at firing time.
		if g.Kind == netlist.RSLatch {
			s := values[g.Pins[0].Net] != g.Pins[0].Invert
			r := values[g.Pins[1].Net] != g.Pins[1].Invert
			if s && r && len(res.RSConflicts) < 16 {
				res.RSConflicts = append(res.RSConflicts,
					fmt.Sprintf("%s fired with S=R=1 at t=%.2f", g.Name, now))
			}
		}
		values[g.Out] = next
		res.Fires++
		if cfg.Waveform != nil {
			cfg.Waveform.Record(now, g.Out, next)
		}
		if cfg.Trace != nil {
			cfg.Trace(fmt.Sprintf("t=%8.2f gate %s = %v", now, g.Name, next))
		}
		if sig := nl.Nets[g.Out].Signal; sig >= 0 {
			to, ok := spec.Successor(specState, sig)
			if !ok {
				if len(res.Unexpected) < 16 {
					res.Unexpected = append(res.Unexpected,
						fmt.Sprintf("%s fired at t=%.2f in spec state s%d", g.Name, now, specState))
				}
				return res
			}
			specState = to
			if specState == spec.Initial {
				res.Cycles++
			}
		}
		refresh("gate " + g.Name)
	}
	res.Deadlocked = len(queue) == 0
	return res
}
