package sim_test

import (
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/sim"
	"repro/internal/stg"
)

func TestVCDExport(t *testing.T) {
	e, _ := benchdata.Table1ByName("Delement")
	g, err := stg.BuildSG(e.STG())
	if err != nil {
		t.Fatal(err)
	}
	nl, final := mcNetlist(t, g)
	names := make([]string, nl.NumNets())
	for i, n := range nl.Nets {
		names[i] = n.Name
	}
	wf := sim.NewWaveform(names)
	res := sim.Run(nl, final, sim.Config{Seed: 7, MaxEvents: 400, Waveform: wf})
	if !res.OK() {
		t.Fatalf("simulation failed: %s", res)
	}
	var b strings.Builder
	if err := wf.WriteVCD(&b, "Delement"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"$timescale", "$scope module Delement $end", "$enddefinitions",
		"$var wire 1 ! ", "#0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out[:min(400, len(out))])
		}
	}
	// Every net must be declared; time stamps monotone.
	if got := strings.Count(out, "$var wire"); got != nl.NumNets() {
		t.Errorf("declared %d nets, want %d", got, nl.NumNets())
	}
	lastT := -1
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") {
			var ts int
			if _, err := fmtSscanf(line[1:], &ts); err != nil {
				t.Fatalf("bad timestamp %q", line)
			}
			if ts < lastT {
				t.Fatalf("timestamps not monotone: %d after %d", ts, lastT)
			}
			lastT = ts
		}
	}
	if lastT <= 0 {
		t.Fatal("no time progression recorded")
	}
}

func fmtSscanf(s string, v *int) (int, error) {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
	}
	*v = n
	return 1, nil
}

func TestWaveformDedupes(t *testing.T) {
	wf := sim.NewWaveform([]string{"a"})
	wf.Record(0, 0, false)
	wf.Record(1, 0, false) // duplicate value: dropped
	wf.Record(2, 0, true)
	var b strings.Builder
	if err := wf.WriteVCD(&b, "m"); err != nil {
		t.Fatal(err)
	}
	body := b.String()[strings.Index(b.String(), "$enddefinitions"):]
	if strings.Count(body, "\n0!") != 1 || strings.Count(body, "\n1!") != 1 {
		t.Fatalf("dedup failed:\n%s", body)
	}
}
