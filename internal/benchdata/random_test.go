package benchdata_test

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/stg"
)

func TestRandomSpecsAreWellFormed(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		spec := benchdata.GenRandomSpec(seed, 4)
		g, err := stg.BuildSG(spec.Net)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, spec.Net.Format())
		}
		if !g.OutputSemiModular() {
			t.Fatalf("seed %d: not output semi-modular", seed)
		}
		if err := g.CheckConsistency(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := spec.Net.CheckSignalBalance(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if spec.Net.Classify() != stg.MarkedGraph {
			t.Fatalf("seed %d: series-parallel compositions are marked graphs", seed)
		}
		if err := spec.Net.CheckMarkedGraphLive(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomSpecDeterministic(t *testing.T) {
	a := benchdata.GenRandomSpec(7, 5)
	b := benchdata.GenRandomSpec(7, 5)
	if a.Net.Format() != b.Net.Format() {
		t.Fatal("generator must be deterministic per seed")
	}
	c := benchdata.GenRandomSpec(8, 5)
	if a.Net.Format() == c.Net.Format() && a.Outputs == c.Outputs {
		t.Log("seeds 7 and 8 coincide (allowed but unexpected)")
	}
}

func TestWideForkWellFormedAndDeterministic(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		spec := benchdata.GenWideFork(seed, 4, 2)
		g, err := stg.BuildSG(spec.Net)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, spec.Net.Format())
		}
		if !g.OutputSemiModular() {
			t.Fatalf("seed %d: not output semi-modular", seed)
		}
		if err := g.CheckConsistency(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if spec.Net.Classify() != stg.MarkedGraph {
			t.Fatalf("seed %d: wide forks are marked graphs", seed)
		}
		if err := spec.Net.CheckMarkedGraphLive(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	a := benchdata.GenWideFork(3, 4, 2)
	b := benchdata.GenWideFork(3, 4, 2)
	if a.Net.Format() != b.Net.Format() {
		t.Fatal("generator must be deterministic per seed")
	}
}

// TestWideForkStateGrowth pins the generator's reason to exist: the
// explicit state count grows as (depth+1)^width per handshake phase, so
// moderate widths cross the 10^6-state line while the signal count
// stays linear. The count is verified symbolically — enumerating it is
// exactly what the generator is built to defeat.
func TestWideForkStateGrowth(t *testing.T) {
	small := benchdata.GenWideFork(1, 4, 1)
	g, err := stg.BuildSG(small.Net)
	if err != nil {
		t.Fatal(err)
	}
	// Phases interleave 4 independent rise/fall chains: 2^4 markings per
	// phase plus the handshake boundary states.
	if got := g.NumStates(); got < 2*16 {
		t.Fatalf("width-4 fork has only %d states", got)
	}
	rep, err := stg.SymbolicReachability(benchdata.GenWideFork(1, 10, 3).Net)
	if err != nil {
		t.Fatal(err)
	}
	if rep.States <= 1<<20 {
		t.Fatalf("width-10 depth-3 fork must exceed the explicit limit, got %d states", rep.States)
	}
	if n := len(benchdata.GenWideFork(1, 10, 3).Net.Signals); n > 64 {
		t.Fatalf("signal budget exceeded: %d", n)
	}
}
