package benchdata_test

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/stg"
)

func TestRandomSpecsAreWellFormed(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		spec := benchdata.GenRandomSpec(seed, 4)
		g, err := stg.BuildSG(spec.Net)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, spec.Net.Format())
		}
		if !g.OutputSemiModular() {
			t.Fatalf("seed %d: not output semi-modular", seed)
		}
		if err := g.CheckConsistency(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := spec.Net.CheckSignalBalance(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if spec.Net.Classify() != stg.MarkedGraph {
			t.Fatalf("seed %d: series-parallel compositions are marked graphs", seed)
		}
		if err := spec.Net.CheckMarkedGraphLive(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomSpecDeterministic(t *testing.T) {
	a := benchdata.GenRandomSpec(7, 5)
	b := benchdata.GenRandomSpec(7, 5)
	if a.Net.Format() != b.Net.Format() {
		t.Fatal("generator must be deterministic per seed")
	}
	c := benchdata.GenRandomSpec(8, 5)
	if a.Net.Format() == c.Net.Format() && a.Outputs == c.Outputs {
		t.Log("seeds 7 and 8 coincide (allowed but unexpected)")
	}
}
