package benchdata

import (
	"fmt"

	"repro/internal/stg"
)

// GenBufferChain builds an n-stage buffer chain specification: one input
// x propagates through n output stages c1…cn in a sequential ring
// (x+; c1+; …; cn+; x-; c1-; …; cn-). The state graph is a simple cycle
// of 2(n+1) states with unique codes: MC holds with no insertion, and
// every stage degenerates to a wire of its predecessor. Scales the
// analysis and verification pipeline linearly.
func GenBufferChain(n int) *stg.STG {
	if n < 1 {
		panic("benchdata: chain length must be ≥ 1")
	}
	b := stg.NewBuilder(fmt.Sprintf("chain%d", n))
	b.Signal("x", stg.Input)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("c%d", i+1)
		b.Signal(names[i], stg.Output)
	}
	prevPlus, prevMinus := "x+", "x-"
	for _, c := range names {
		b.Arc(prevPlus, c+"+")
		b.Arc(prevMinus, c+"-")
		prevPlus, prevMinus = c+"+", c+"-"
	}
	b.Arc(prevPlus, "x-")
	b.Arc(prevMinus, "x+")
	b.MarkBetween(prevMinus, "x+")
	return b.Build()
}

// GenParallelizer builds a k-way fork/join: one input r launches k
// concurrent output handshakes y1…yk, waits for all rises, withdraws,
// and waits for all falls. The reachable state space grows as O(2^k):
// the standard stress test for the composed-state verifier. Every yi is
// a wire of r, so MC holds trivially.
func GenParallelizer(k int) *stg.STG {
	if k < 1 {
		panic("benchdata: fork width must be ≥ 1")
	}
	b := stg.NewBuilder(fmt.Sprintf("fork%d", k))
	b.Signal("r", stg.Input)
	for i := 1; i <= k; i++ {
		y := fmt.Sprintf("y%d", i)
		b.Signal(y, stg.Output)
		b.Arc("r+", y+"+")
		b.Arc(y+"+", "r-")
		b.Arc("r-", y+"-")
		b.Arc(y+"-", "r+")
		b.MarkBetween(y+"-", "r+")
	}
	return b.Build()
}

// GenSelectorRing builds a k-phase selector: one input a alternates
// between k output handshakes x1…xk (a+; x1+; a-; x1-; a+; x2+; …).
// All k post-request states share one interface code with different
// excited outputs, so at least ⌈log2 k⌉ state signals are necessary —
// the scaling workload for the SAT-driven insertion engine (k = 2 is
// the paper-style toggle, our "luciano").
func GenSelectorRing(k int) *stg.STG {
	if k < 1 {
		panic("benchdata: ring size must be ≥ 1")
	}
	b := stg.NewBuilder(fmt.Sprintf("sel%d", k))
	b.Signal("a", stg.Input)
	for i := 1; i <= k; i++ {
		b.Signal(fmt.Sprintf("x%d", i), stg.Output)
	}
	occ := func(base string, i int) string {
		if i == 1 {
			return base
		}
		return fmt.Sprintf("%s/%d", base, i)
	}
	for i := 1; i <= k; i++ {
		x := fmt.Sprintf("x%d", i)
		aPlus, aMinus := occ("a+", i), occ("a-", i)
		b.Arc(aPlus, x+"+")
		b.Arc(x+"+", aMinus)
		b.Arc(aMinus, x+"-")
		next := occ("a+", i%k+1)
		b.Arc(x+"-", next)
		if i == k {
			b.MarkBetween(x+"-", next)
		}
	}
	return b.Build()
}
