package benchdata_test

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/stg"
)

func TestFigureGraphsAreWellFormed(t *testing.T) {
	for _, g := range []interface {
		CheckConsistency() error
		OutputSemiModular() bool
		NumStates() int
	}{benchdata.Fig1SG(), benchdata.Fig4SG()} {
		if err := g.CheckConsistency(); err != nil {
			t.Fatal(err)
		}
		if !g.OutputSemiModular() {
			t.Fatal("figure graphs must be output semi-modular")
		}
	}
}

func TestTable1EntriesParseAndMatchInterface(t *testing.T) {
	if len(benchdata.Table1) != 9 {
		t.Fatalf("Table 1 has %d entries, want 9", len(benchdata.Table1))
	}
	for _, e := range benchdata.Table1 {
		g, err := stg.BuildSG(e.STG())
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		ins, outs := 0, 0
		for _, isIn := range g.Input {
			if isIn {
				ins++
			} else {
				outs++
			}
		}
		if ins != e.Inputs || outs != e.Outputs {
			t.Errorf("%s: interface %d/%d, table says %d/%d",
				e.Name, ins, outs, e.Inputs, e.Outputs)
		}
		if !g.OutputSemiModular() {
			t.Errorf("%s: not output semi-modular", e.Name)
		}
		if err := g.CheckConsistency(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
}

func TestTable1ByName(t *testing.T) {
	if _, ok := benchdata.Table1ByName("nak-pa"); !ok {
		t.Fatal("nak-pa missing")
	}
	if _, ok := benchdata.Table1ByName("nope"); ok {
		t.Fatal("unknown name found")
	}
}

func TestGenBufferChain(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		g, err := stg.BuildSG(benchdata.GenBufferChain(n))
		if err != nil {
			t.Fatalf("chain%d: %v", n, err)
		}
		if got, want := g.NumStates(), 2*(n+1); got != want {
			t.Errorf("chain%d: %d states, want %d", n, got, want)
		}
		if !g.USC() {
			t.Errorf("chain%d: expected unique state codes", n)
		}
		if !g.SemiModular() {
			t.Errorf("chain%d: expected semi-modularity", n)
		}
	}
}

func TestGenParallelizer(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		g, err := stg.BuildSG(benchdata.GenParallelizer(k))
		if err != nil {
			t.Fatalf("fork%d: %v", k, err)
		}
		// One concurrent diamond per phase: 2·2^k states.
		if got, want := g.NumStates(), 2*(1<<uint(k)); got != want {
			t.Errorf("fork%d: %d states, want %d", k, got, want)
		}
		if !g.SemiModular() {
			t.Errorf("fork%d: expected semi-modularity", k)
		}
	}
}

func TestGenSelectorRing(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		g, err := stg.BuildSG(benchdata.GenSelectorRing(k))
		if err != nil {
			t.Fatalf("sel%d: %v", k, err)
		}
		if got, want := g.NumStates(), 4*k; got != want {
			t.Errorf("sel%d: %d states, want %d", k, got, want)
		}
		if g.USC() {
			t.Errorf("sel%d: selector must have code clashes", k)
		}
		if !g.CSC() {
			// Different outputs excited on equal codes.
			continue
		}
		t.Errorf("sel%d: expected CSC violations", k)
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"chain0": func() { benchdata.GenBufferChain(0) },
		"fork0":  func() { benchdata.GenParallelizer(0) },
		"sel0":   func() { benchdata.GenSelectorRing(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
