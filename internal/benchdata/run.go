package benchdata

import (
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/synth"
)

// Table1Result is the outcome of synthesizing one Table-1 benchmark.
type Table1Result struct {
	Entry  Table1Entry
	Report *synth.Report
	Err    error
}

// RunTable1 synthesizes every Table-1 benchmark and returns the results
// in table order. Benchmarks run concurrently on a bounded worker pool
// (workers = 0 means GOMAXPROCS, 1 means sequential); each individual
// synthesis additionally inherits opts.Parallel for its own per-signal
// fan-out. Results land in index-addressed slots, so the output order —
// and every report in it — is independent of scheduling.
func RunTable1(opts synth.Options, workers int) []Table1Result {
	out := make([]Table1Result, len(Table1))
	par.ForEachHook(len(Table1), workers, func(i int) {
		e := Table1[i]
		rep, err := synth.FromSTG(e.STG(), opts)
		out[i] = Table1Result{Entry: e, Report: rep, Err: err}
	}, obs.TaskHook("benchdata.table1"))
	return out
}
