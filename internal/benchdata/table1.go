package benchdata

import (
	"repro/internal/stg"
)

// Table1Entry describes one row of the paper's Table 1 ("RESULTS OF
// MC-REDUCTION"): benchmark name, interface size and the number of state
// signals the paper's state-assignment program inserted.
type Table1Entry struct {
	Name       string
	Inputs     int
	Outputs    int
	PaperAdded int
	Source     string // STG in .g syntax (reconstruction, see DESIGN.md)
}

// STG parses the benchmark's source.
func (e Table1Entry) STG() *stg.STG { return stg.MustParse(e.Source) }

// Table1 lists the nine benchmarks of Section VII. The original .tim
// files are not archived with the paper; each entry is reconstructed as
// an STG with the same input/output counts, built from the handshake
// idioms the benchmark names refer to (NACK-based port adapter, van
// Berkel handshake components, Martin's D-element, …). The reproduction
// target is the shape of the table: small state graphs, 0–2 inserted
// state signals, all solved quickly (the paper reports a 5-minute
// timeout on a DEC 5000, never reached).
var Table1 = []Table1Entry{
	{
		// NACK-based port adapter: a request q is either acknowledged
		// (ai) — completing the transfer through e/d — or NAK'ed (ni),
		// in which case the adapter pulses the retry flag c and repeats
		// the request. The retry request re-enters the interface state
		// of the first request, which forces one state signal.
		Name: "nak-pa", Inputs: 4, Outputs: 5, PaperAdded: 1,
		Source: `
.model nak-pa
.inputs r ai ni d
.outputs q a b c e
.graph
p0 r+
r+ q+
q+ pc
pc ai+ ni+
ai+ e+
e+ a+
a+ d+
d+ q-
q- ai-
ai- e-
e- d-
d- r-
r- a-
a- p0
ni+ b+
b+ q-/2
q-/2 ni-
ni- b-
b- c+
c+ c-
c- q+/2
q+/2 ai+/2
ai+/2 e+/2
e+/2 a+/2
a+/2 d+/2
d+/2 q-/3
q-/3 ai-/2
ai-/2 e-/2
e-/2 d-/2
d-/2 r-/2
r-/2 a-/2
a-/2 p0
.marking { p0 }
.end
`,
	},
	{
		// Two-phase controller in the style of Nowick's locally-clocked
		// machines: the same input transition a+ starts an x-handshake
		// in the first phase and a y-handshake in the second, so the two
		// phases share interface codes and need one state signal.
		Name: "nowick", Inputs: 3, Outputs: 2, PaperAdded: 1,
		Source: `
.model nowick
.inputs a b c
.outputs x y
.graph
a+ x+
x+ b+
b+ b-
b- a-
a- x-
x- a+/2
a+/2 y+
y+ c+
c+ c-
c- a-/2
a-/2 y-
y- a+
.marking { <y-,a+> }
.end
`,
	},
	{
		// Event duplicator: the x handshake runs twice, then the y
		// handshake runs twice (x x y y per super-cycle). Distinguishing
		// quarter 1 from 2 and 3 from 4 needs two state signals.
		Name: "duplicator", Inputs: 2, Outputs: 2, PaperAdded: 2,
		Source: `
.model duplicator
.inputs a b
.outputs x y
.graph
a+ x+
x+ a-
a- x-
x- a+/2
a+/2 b+
b+ x+/2
x+/2 a-/2
a-/2 x-/2
x-/2 a+/3
a+/3 y+
y+ a-/3
a-/3 y-
y- a+/4
a+/4 b-
b- y+/2
y+/2 a-/4
a-/4 y-/2
y-/2 a+
.marking { <y-/2,a+> }
.end
`,
	},
	{
		// Four-phase controller alternating x and y handshakes with a
		// b-exchange opening phases 1 and 3 (b·x, y, b̄·x, y): both
		// (a,b) code classes carry three pairwise-conflicting interface
		// states, needing two state signals.
		Name: "ganesh_8", Inputs: 2, Outputs: 2, PaperAdded: 2,
		Source: `
.model ganesh_8
.inputs a b
.outputs x y
.graph
a+ b+
b+ x+
x+ a-
a- x-
x- a+/2
a+/2 y+
y+ a-/2
a-/2 y-
y- a+/3
a+/3 b-
b- x+/2
x+/2 a-/3
a-/3 x-/2
x-/2 a+/4
a+/4 y+/2
y+/2 a-/4
a-/4 y-/2
y-/2 a+
.marking { <y-/2,a+> }
.end
`,
	},
	{
		// van Berkel handshake component SEQ(x;y) on a shared request:
		// the two sequenced handshakes reuse the request code, one state
		// signal.
		Name: "berkel2", Inputs: 2, Outputs: 2, PaperAdded: 1,
		Source: `
.model berkel2
.inputs a b
.outputs x y
.graph
a+ x+
x+ b+
b+ b-
b- a-
a- x-
x- a+/2
a+/2 y+
y+ a-/2
a-/2 y-
y- a+
.marking { <y-,a+> }
.end
`,
	},
	{
		// van Berkel 4-phase sequencer alternating x and y handshakes
		// with a b-exchange opening phases 2 and 4 (x, b·y, x, b·y):
		// both code classes carry three pairwise-conflicting interface
		// states, needing two state signals.
		Name: "berkel3", Inputs: 2, Outputs: 2, PaperAdded: 2,
		Source: `
.model berkel3
.inputs a b
.outputs x y
.graph
a+ x+
x+ a-
a- x-
x- a+/2
a+/2 b+
b+ y+
y+ a-/2
a-/2 y-
y- a+/3
a+/3 x+/2
x+/2 a-/3
a-/3 x-/2
x-/2 a+/4
a+/4 b-
b- y+/2
y+/2 a-/4
a-/4 y-/2
y-/2 a+
.marking { <y-/2,a+> }
.end
`,
	},
	{
		// Packet-forwarding controller: a linear request pipeline that
		// fans out into two concurrent done signals (u, v) — a marked
		// graph with unique state codes, no state signal needed.
		Name: "mp-forward-pkt", Inputs: 3, Outputs: 4, PaperAdded: 0,
		Source: `
.model mp-forward-pkt
.inputs r x y
.outputs p q u v
.graph
r+ p+
p+ x+
x+ q+
q+ y+
y+ u+ v+
u+ r-
v+ r-
r- p-
p- x-
x- q-
q- y-
y- u- v-
u- r+
v- r+
.marking { <u-,r+> <v-,r+> }
.end
`,
	},
	{
		// Minimal toggle: one input alternates between the x and the y
		// handshake — the smallest specification with a state-coding
		// conflict, one state signal.
		Name: "luciano", Inputs: 1, Outputs: 2, PaperAdded: 1,
		Source: `
.model luciano
.inputs a
.outputs x y
.graph
a+ x+
x+ a-
a- x-
x- a+/2
a+/2 y+
y+ a-/2
a-/2 y-
y- a+
.marking { <y-,a+> }
.end
`,
	},
	{
		// Martin's D-element: passive handshake (r1/a1) encloses an
		// active one (r2/a2); the state after a2- repeats the code of
		// the state after r1+ — the textbook CSC violation, one state
		// signal.
		Name: "Delement", Inputs: 2, Outputs: 2, PaperAdded: 1,
		Source: `
.model Delement
.inputs r1 a2
.outputs a1 r2
.graph
r1+ r2+
r2+ a2+
a2+ r2-
r2- a2-
a2- a1+
a1+ r1-
r1- a1-
a1- r1+
.marking { <a1-,r1+> }
.end
`,
	},
}

// Table1ByName returns the named entry.
func Table1ByName(name string) (Table1Entry, bool) {
	for _, e := range Table1 {
		if e.Name == name {
			return e, true
		}
	}
	return Table1Entry{}, false
}
