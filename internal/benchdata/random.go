package benchdata

import (
	"fmt"
	"math/rand"

	"repro/internal/stg"
)

// RandomSpec generates a pseudo-random, well-formed handshake
// specification: a series-parallel composition of request/acknowledge
// handshakes driven by one primary input. Every generated net is live
// and 1-safe, its state graph is output semi-modular, and the behaviour
// is a realistic controller shape (sequencers, forks and toggles) — the
// fuzz workload for end-to-end pipeline properties.
//
// The generator is deterministic per seed. size bounds the number of
// composition nodes (≥ 1).
type RandomSpec struct {
	Net     *stg.STG
	Outputs int
	Seed    int64
}

// GenRandomSpec builds a random specification with roughly `size`
// handshake components.
func GenRandomSpec(seed int64, size int) RandomSpec {
	if size < 1 {
		size = 1
	}
	rr := rand.New(rand.NewSource(seed))
	b := stg.NewBuilder(fmt.Sprintf("rand%d", seed))
	b.Signal("req", stg.Input)

	outputs := 0
	newOut := func() string {
		outputs++
		name := fmt.Sprintf("o%d", outputs)
		b.Signal(name, stg.Output)
		return name
	}

	// Each component is a behaviour with an entry transition pair
	// (rise, fall): connecting pred.rise → entry.rise and entry.fall →
	// ... — we build recursively, returning the (first, last) events of
	// the rising and falling phases.
	//
	// A leaf handshake on output o contributes o+ in the rising phase
	// and o- in the falling phase.
	budget := size
	type phase struct {
		riseHead, riseTail string // first/last transition of the up phase
		fallHead, fallTail string
	}
	var gen func(depth int) phase
	gen = func(depth int) phase {
		budget--
		kind := rr.Intn(3)
		if depth > 3 || budget <= 0 {
			kind = 0
		}
		switch kind {
		case 1: // SEQ of two sub-behaviours
			a := gen(depth + 1)
			c := gen(depth + 1)
			b.Arc(a.riseTail, c.riseHead)
			b.Arc(a.fallTail, c.fallHead)
			return phase{a.riseHead, c.riseTail, a.fallHead, c.fallTail}
		case 2: // PAR: fork through a split output, join through another
			spl, join := newOut(), newOut()
			a := gen(depth + 1)
			c := gen(depth + 1)
			b.Arc(spl+"+", a.riseHead)
			b.Arc(spl+"+", c.riseHead)
			b.Arc(a.riseTail, join+"+")
			b.Arc(c.riseTail, join+"+")
			b.Arc(spl+"-", a.fallHead)
			b.Arc(spl+"-", c.fallHead)
			b.Arc(a.fallTail, join+"-")
			b.Arc(c.fallTail, join+"-")
			return phase{spl + "+", join + "+", spl + "-", join + "-"}
		default: // leaf handshake
			o := newOut()
			return phase{o + "+", o + "+", o + "-", o + "-"}
		}
	}

	p := gen(0)
	// Close the cycle: req+ starts the rising phase, its completion
	// triggers req-; req- starts the falling phase, whose completion
	// re-enables req+.
	b.Arc("req+", p.riseHead)
	b.Arc(p.riseTail, "req-")
	b.Arc("req-", p.fallHead)
	b.Arc(p.fallTail, "req+")
	b.MarkBetween(p.fallTail, "req+")
	return RandomSpec{Net: b.Build(), Outputs: outputs, Seed: seed}
}

// GenWideFork builds a wide-fork/pipeline specification: one request
// signal forks through a split output into `width` parallel pipelines of
// `depth` sequenced handshakes each, rejoined by a join output. The
// explicit state count is dominated by the rising- and falling-phase
// interleavings of the branches, (depth+1)^width per phase — a handful
// of signals (width·depth outputs plus three) whose marking space grows
// exponentially in width. This is the workload that separates the
// analysis engines: width 10 × depth 3 passes 10^6 explicit states while
// every marking-set BDD stays tiny.
//
// The seed permutes the order branches are wired in, which varies place
// numbering (and so BDD variable order) without changing the behaviour.
func GenWideFork(seed int64, width, depth int) RandomSpec {
	if width < 1 {
		width = 1
	}
	if depth < 1 {
		depth = 1
	}
	rr := rand.New(rand.NewSource(seed))
	b := stg.NewBuilder(fmt.Sprintf("widefork%d_w%d_d%d", seed, width, depth))
	b.Signal("req", stg.Input)
	b.Signal("spl", stg.Output)
	b.Signal("join", stg.Output)

	outputs := 2
	order := rr.Perm(width)
	branches := make([][]string, width)
	for _, w := range order {
		names := make([]string, depth)
		for d := range names {
			outputs++
			names[d] = fmt.Sprintf("o%d_%d", w+1, d+1)
			b.Signal(names[d], stg.Output)
		}
		branches[w] = names
	}
	for _, names := range branches {
		// Rising phase: spl+ → o1+ → … → oD+ → join+; falling mirrors.
		prev := "spl+"
		for _, o := range names {
			b.Arc(prev, o+"+")
			prev = o + "+"
		}
		b.Arc(prev, "join+")
		prev = "spl-"
		for _, o := range names {
			b.Arc(prev, o+"-")
			prev = o + "-"
		}
		b.Arc(prev, "join-")
	}
	b.Arc("req+", "spl+")
	b.Arc("join+", "req-")
	b.Arc("req-", "spl-")
	b.Arc("join-", "req+")
	b.MarkBetween("join-", "req+")
	return RandomSpec{Net: b.Build(), Outputs: outputs, Seed: seed}
}
