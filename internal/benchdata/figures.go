// Package benchdata holds the paper's running examples (Figures 1, 3
// and 4) and reconstructions of the nine Table-1 benchmarks, plus
// parametric workload generators used by the scaling benchmarks.
//
// The original .tim benchmark files of Section VII are not archived with
// the paper; each is rebuilt here as an STG with the same input/output
// signal counts (see DESIGN.md for the substitution rationale).
package benchdata

import (
	"fmt"
	"strings"

	"repro/internal/sg"
)

// codeOf converts a paper-style code string over the given signal order
// (first signal printed first) into a state code.
func codeOf(bits string) uint64 {
	var c uint64
	for i := 0; i < len(bits); i++ {
		switch bits[i] {
		case '1':
			c |= 1 << uint(i)
		case '0':
		default:
			panic(fmt.Sprintf("benchdata: bad code string %q", bits))
		}
	}
	return c
}

// edgeSpec is one arc of a hand-built state graph: from/to are indices
// into the state list, t is a transition label such as "a+" or "d-".
type edgeSpec struct {
	from, to int
	t        string
}

// buildSG assembles a state graph from explicit state codes and edges.
// Signals are "name" or "name!" for inputs.
func buildSG(name string, signals []string, codes []string, edges []edgeSpec) *sg.Graph {
	g := &sg.Graph{Name: name}
	for _, s := range signals {
		if in := strings.HasSuffix(s, "!"); in {
			g.Signals = append(g.Signals, strings.TrimSuffix(s, "!"))
			g.Input = append(g.Input, true)
		} else {
			g.Signals = append(g.Signals, s)
			g.Input = append(g.Input, false)
		}
	}
	for _, c := range codes {
		g.AddState(codeOf(c))
	}
	for _, e := range edges {
		lab := e.t
		var d sg.Dir
		switch lab[len(lab)-1] {
		case '+':
			d = sg.Plus
		case '-':
			d = sg.Minus
		default:
			panic("benchdata: bad transition label " + lab)
		}
		sig := g.SignalIndex(lab[:len(lab)-1])
		if sig < 0 {
			panic("benchdata: unknown signal in " + lab)
		}
		if err := g.AddEdge(e.from, e.to, sig, d); err != nil {
			panic(err)
		}
	}
	if err := g.CheckConsistency(); err != nil {
		panic(err)
	}
	return g
}

// Fig1SG returns the state graph of Figure 1 of the paper: inputs a, b
// (in input conflict at the initial state), outputs c, d; 14 states;
// output distributive but not persistent — ER(+d,1) cannot be covered by
// a single cube, which Example 1 repairs by inserting a state signal.
func Fig1SG() *sg.Graph {
	codes := []string{
		"0000", // s0  0*0*00  (initial)
		"1000", // s1  100*0*
		"0100", // s2  010*0
		"1010", // s3  1*010*
		"1001", // s4  100*1
		"0010", // s5  0010*
		"1011", // s6  1*0*11
		"0011", // s7  00*11
		"0110", // s8  0*110
		"1110", // s9  1110*
		"1111", // s10 1*111
		"0111", // s11 011*1
		"0101", // s12 01*01
		"0001", // s13 0001*
	}
	edges := []edgeSpec{
		{0, 1, "a+"}, {0, 2, "b+"},
		{1, 3, "c+"}, {1, 4, "d+"},
		{2, 8, "c+"},
		{3, 5, "a-"}, {3, 6, "d+"},
		{4, 6, "c+"},
		{5, 7, "d+"},
		{6, 7, "a-"}, {6, 10, "b+"},
		{7, 11, "b+"},
		{8, 9, "a+"},
		{9, 10, "d+"},
		{10, 11, "a-"},
		{11, 12, "c-"},
		{12, 13, "b-"},
		{13, 0, "d-"},
	}
	return buildSG("fig1", []string{"a!", "b!", "c", "d"}, codes, edges)
}

// Fig4SG returns the state graph of Figure 4 (Example 2): inputs a, c, d,
// output b; 15 states. The SG is persistent and every excitation region
// has a correct single-cube cover, yet the cover cube `a` of ER(+b,1)
// also covers state 10*01 inside ER(+b,2) — an MC violation that makes
// the naive implementation t = c'd, b = a + t hazardous.
func Fig4SG() *sg.Graph {
	codes := []string{
		"0000", // s0  0*000  (initial)
		"1000", // s1  10*0*0
		"1100", // s2  110*0
		"1010", // s3  10*10*
		"1110", // s4  1110*
		"1011", // s5  10*11
		"1111", // s6  1*111
		"0111", // s7  01*11
		"0011", // s8  001*1
		"0001", // s9  0*0*01
		"1001", // s10 10*01
		"0101", // s11 0*101
		"1101", // s12 1101*
		"1100", // s13 1*100   (same code as s2, different excitation)
		"0100", // s14 01*00
	}
	edges := []edgeSpec{
		{0, 1, "a+"},
		{1, 2, "b+"}, {1, 3, "c+"},
		{2, 4, "c+"},
		{3, 4, "b+"}, {3, 5, "d+"},
		{4, 6, "d+"},
		{5, 6, "b+"},
		{6, 7, "a-"},
		{7, 8, "b-"},
		{8, 9, "c-"},
		{9, 10, "a+"}, {9, 11, "b+"},
		{10, 12, "b+"},
		{11, 12, "a+"},
		{12, 13, "d-"},
		{13, 14, "a-"},
		{14, 0, "b-"},
	}
	return buildSG("fig4", []string{"a!", "b", "c!", "d!"}, codes, edges)
}
