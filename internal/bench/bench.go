// Package bench measures the per-stage cost of the synthesis pipeline
// over the nine Table-1 benchmarks — parse, reachability (BuildSG),
// state-graph analysis, state-signal repair, cover/netlist construction, and verification — and emits the
// machine-readable report committed as BENCH_table1.json. Each stage is
// timed with testing.Benchmark under ReportAllocs, so the JSON records
// ns/op, allocs/op and B/op per benchmark and stage; CI regenerates the
// file on every run and uploads it as an artifact, giving the repo a
// tracked history of the two hot paths this package exists to guard
// (stg reachability and verify exploration).
package bench

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/engine"
	"repro/internal/stg"
	"repro/internal/synth"
	"repro/internal/verify"
)

// StageOrder lists the measured pipeline stages in execution order.
// "repair" (SAT-driven state-signal insertion) and "cover" (MC cube
// derivation + netlist construction) are the two halves of what used
// to be tracked as a single "synth" stage; repair dominates it by
// orders of magnitude, so it is tracked apart to keep its perf
// trajectory visible.
// The two trailing *_symbolic stages are the symbolic engine's
// counterparts of "reach" and "analyze": BDD fixpoint reachability, and
// the full engine-level analysis (regions + existence-only MC). They
// track the explicit/symbolic crossover on specs both engines can
// finish.
var StageOrder = []string{"parse", "reach", "analyze", "repair", "cover", "verify", "reach_symbolic", "mc_symbolic"}

// Stage is the measured cost of one pipeline stage.
type Stage struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	Iterations  int   `json:"iterations"`
}

// Entry is the per-benchmark record.
type Entry struct {
	Name           string           `json:"name"`
	SGStates       int              `json:"sg_states"`
	ComposedStates int              `json:"composed_states"`
	Stages         map[string]Stage `json:"stages"`
}

// Report is the full BENCH_table1.json payload. The run-metadata
// fields (commit, timestamp, GOMAXPROCS, CPU model, GOGC) make any two
// archived reports comparable without consulting the CI logs they came
// from — and let benchdiff refuse a comparison across machines whose
// wall-clock numbers were never commensurable.
type Report struct {
	GoVersion    string   `json:"go_version"`
	GOOS         string   `json:"goos"`
	GOARCH       string   `json:"goarch"`
	GOMAXPROCS   int      `json:"gomaxprocs"`
	NumCPU       int      `json:"num_cpu"`
	CPUModel     string   `json:"cpu_model,omitempty"`
	GOGC         string   `json:"gogc"`
	GitCommit    string   `json:"git_commit,omitempty"`
	GeneratedUTC string   `json:"generated_utc"`
	Benchtime    string   `json:"benchtime"`
	StageOrder   []string `json:"stage_order"`
	Entries      []Entry  `json:"entries"`
}

// cpuModel best-effort identifies the host CPU. Linux exposes the
// marketing name in /proc/cpuinfo; elsewhere (or in stripped
// containers) the field stays empty and benchdiff falls back to the
// GOOS/GOARCH fingerprint alone.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

// gogc reports the effective GOGC setting ("100" when unset — the
// runtime default).
func gogc() string {
	if v := os.Getenv("GOGC"); v != "" {
		return v
	}
	return "100"
}

// gitCommit resolves the source revision: the vcs.revision build
// setting when the binary was built from a checkout, else a
// best-effort `git rev-parse HEAD` for `go run` / test invocations
// (module-cache builds have neither and report "").
func gitCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			return rev + dirty
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func measure(f func(b *testing.B)) Stage {
	r := testing.Benchmark(f)
	return Stage{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// RunTable1 benchmarks every pipeline stage of the nine Table-1
// entries. benchtime bounds the measuring time per stage; zero keeps
// the testing package's default of 1s. Stages run through the same
// entry points the production pipeline uses (synthesis with
// SkipVerify, verification measured separately on its output).
func RunTable1(benchtime time.Duration) (*Report, error) {
	testing.Init()
	if benchtime > 0 {
		if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
			return nil, err
		}
	} else {
		benchtime = time.Second
	}
	rep := &Report{
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		CPUModel:     cpuModel(),
		GOGC:         gogc(),
		GitCommit:    gitCommit(),
		GeneratedUTC: time.Now().UTC().Format(time.RFC3339),
		Benchtime:    benchtime.String(),
		StageOrder:   StageOrder,
	}
	for _, e := range benchdata.Table1 {
		src := e.Source
		net, err := stg.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.Name, err)
		}
		g, err := stg.BuildSG(net)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.Name, err)
		}
		srep, err := synth.FromGraph(g, synth.Options{SkipVerify: true})
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.Name, err)
		}
		fixed, err := encode.Repair(g, encode.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", e.Name, err)
		}
		vres := verify.Check(srep.Netlist, srep.Final)

		ent := Entry{
			Name:           e.Name,
			SGStates:       g.NumStates(),
			ComposedStates: vres.States,
			Stages:         make(map[string]Stage, len(StageOrder)),
		}
		ent.Stages["parse"] = measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := stg.Parse(src); err != nil {
					b.Fatal(err)
				}
			}
		})
		ent.Stages["reach"] = measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := stg.BuildSG(net); err != nil {
					b.Fatal(err)
				}
			}
		})
		ent.Stages["analyze"] = measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.NewAnalyzer(g).CheckGraph()
			}
		})
		ent.Stages["repair"] = measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := encode.Repair(g, encode.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		ent.Stages["cover"] = measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := synth.CoverNetlist(fixed.G, fixed.Report, synth.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		ent.Stages["verify"] = measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if r := verify.Check(srep.Netlist, srep.Final); !r.OK() {
					b.Fatalf("verification failed: %s", r)
				}
			}
		})
		ent.Stages["reach_symbolic"] = measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := stg.SymbolicReachability(net); err != nil {
					b.Fatal(err)
				}
			}
		})
		ent.Stages["mc_symbolic"] = measure(func(b *testing.B) {
			b.ReportAllocs()
			sym := &engine.Symbolic{}
			for i := 0; i < b.N; i++ {
				if _, err := sym.Analyze(net); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Entries = append(rep.Entries, ent)
	}
	return rep, nil
}

// WriteFile marshals the report as indented JSON to path.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
