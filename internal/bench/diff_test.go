package bench

import (
	"bytes"
	"strings"
	"testing"
)

// report builds a synthetic one-entry report for diff tests.
func report(ns, allocs int64) *Report {
	return &Report{
		GoVersion: "go1.23.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		CPUModel:  "TestCPU 3000",
		GOGC:      "100",
		Entries: []Entry{{
			Name: "alloc-outbound",
			Stages: map[string]Stage{
				"repair": {NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: allocs * 64},
				"reach":  {NsPerOp: 10_000, AllocsPerOp: 100, BytesPerOp: 6_400},
			},
		}},
	}
}

func findDelta(t *testing.T, res *DiffResult, stage, metric string) Delta {
	t.Helper()
	for _, d := range res.Deltas {
		if d.Stage == stage && d.Metric == metric {
			return d
		}
	}
	t.Fatalf("no delta for %s %s in %+v", stage, metric, res.Deltas)
	return Delta{}
}

// TestDiffCatchesPlantedRepairRegression is the sentinel's core
// acceptance: a 25% repair-stage slowdown must trip the gate.
func TestDiffCatchesPlantedRepairRegression(t *testing.T) {
	oldR := report(1_000_000, 5_000)
	newR := report(1_250_000, 5_000) // +25% repair time

	res, err := Diff(oldR, newR, DiffOptions{TimeBudget: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions == 0 {
		t.Fatal("planted +25% repair regression not flagged")
	}
	d := findDelta(t, res, "repair", "time/op")
	if d.Verdict != VerdictRegression {
		t.Fatalf("repair time/op verdict = %q, want %q", d.Verdict, VerdictRegression)
	}
	if d.Rel < 0.24 || d.Rel > 0.26 {
		t.Fatalf("repair rel delta = %v, want ~0.25", d.Rel)
	}
	// The untouched stage stays quiet.
	if d := findDelta(t, res, "reach", "time/op"); d.Verdict != VerdictNoise {
		t.Fatalf("reach verdict = %q, want noise", d.Verdict)
	}
}

// TestDiffAgainstCommittedBaseline plants the same class of regression
// into the repo's real committed baseline and checks the gate fires for
// every benchmark's repair stage — the exact CI configuration.
func TestDiffAgainstCommittedBaseline(t *testing.T) {
	base, err := ReadReport("../../BENCH_table1.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	slowed, err := ReadReport("../../BENCH_table1.json")
	if err != nil {
		t.Fatal(err)
	}
	planted := 0
	for i := range slowed.Entries {
		st := slowed.Entries[i].Stages["repair"]
		st.NsPerOp = st.NsPerOp * 12 / 10 // +20%
		slowed.Entries[i].Stages["repair"] = st
		planted++
	}
	if planted == 0 {
		t.Fatal("baseline has no entries")
	}
	res, err := Diff(base, slowed, DiffOptions{TimeBudget: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != planted {
		t.Fatalf("flagged %d regressions, want %d (one per entry's repair stage)", res.Regressions, planted)
	}
}

func TestDiffWithinNoise(t *testing.T) {
	oldR := report(1_000_000, 5_000)
	newR := report(1_030_000, 5_000) // +3%, under the 5% noise floor

	res, err := Diff(oldR, newR, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 {
		t.Fatalf("noise flagged as regression: %+v", res.Deltas)
	}
	if d := findDelta(t, res, "repair", "time/op"); d.Verdict != VerdictNoise {
		t.Fatalf("verdict = %q, want %q", d.Verdict, VerdictNoise)
	}
}

func TestDiffSlowerButWithinBudget(t *testing.T) {
	oldR := report(1_000_000, 5_000)
	newR := report(1_080_000, 5_000) // +8%: beyond noise, inside the 10% budget

	res, err := Diff(oldR, newR, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 {
		t.Fatal("+8% under a 10% budget must not gate")
	}
	if d := findDelta(t, res, "repair", "time/op"); d.Verdict != VerdictSlower {
		t.Fatalf("verdict = %q, want %q", d.Verdict, VerdictSlower)
	}
}

func TestDiffStageBudgetOverride(t *testing.T) {
	oldR := report(1_000_000, 5_000)
	newR := report(1_200_000, 5_000) // +20%

	res, err := Diff(oldR, newR, DiffOptions{
		TimeBudget:   0.10,
		StageBudgets: map[string]float64{"repair": 0.50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 {
		t.Fatal("+20% under a 50% repair budget must not gate")
	}
}

func TestDiffRefusesCrossMachine(t *testing.T) {
	oldR := report(1_000_000, 5_000)
	newR := report(1_000_000, 5_000)
	newR.CPUModel = "OtherCPU 9000"

	if _, err := Diff(oldR, newR, DiffOptions{}); err == nil {
		t.Fatal("cross-machine diff must refuse without AllowCrossMachine")
	} else if !strings.Contains(err.Error(), "cross-machine") {
		t.Fatalf("unexpected refusal message: %v", err)
	}

	res, err := Diff(oldR, newR, DiffOptions{AllowCrossMachine: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CrossMachine {
		t.Fatal("CrossMachine not recorded")
	}
}

// TestDiffAllocGateIsMachineIndependent: even in a permissive
// cross-machine diff, allocs/op growth past its tight budget gates.
func TestDiffAllocGate(t *testing.T) {
	oldR := report(1_000_000, 5_000)
	newR := report(1_000_000, 5_600) // +12% allocs

	res, err := Diff(oldR, newR, DiffOptions{AllocBudget: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	d := findDelta(t, res, "repair", "allocs/op")
	if d.Verdict != VerdictRegression {
		t.Fatalf("allocs/op verdict = %q, want %q", d.Verdict, VerdictRegression)
	}
}

// TestMinOfRuns: the per-stage minimum across runs absorbs a one-run
// scheduler spike that would otherwise read as a regression.
func TestMinOfRunsAbsorbsOutlier(t *testing.T) {
	base := report(1_000_000, 5_000)
	quiet := report(1_010_000, 5_000)
	spiked := report(1_400_000, 5_000) // interference on one run

	min := MinOfRuns([]*Report{spiked, quiet})
	if got := min.Entries[0].Stages["repair"].NsPerOp; got != 1_010_000 {
		t.Fatalf("min repair ns = %d, want 1010000", got)
	}
	res, err := Diff(base, min, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 {
		t.Fatal("min-of-runs failed to absorb the outlier run")
	}
	// Sanity: the spiked run alone would have gated.
	res, err = Diff(base, spiked, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions == 0 {
		t.Fatal("the outlier run alone should read as a regression")
	}
}

func TestDiffImprovement(t *testing.T) {
	oldR := report(1_000_000, 5_000)
	newR := report(600_000, 4_000)

	res, err := Diff(oldR, newR, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 {
		t.Fatal("improvement flagged as regression")
	}
	if d := findDelta(t, res, "repair", "time/op"); d.Verdict != VerdictImproved {
		t.Fatalf("verdict = %q, want %q", d.Verdict, VerdictImproved)
	}
	var buf bytes.Buffer
	res.WriteTable(&buf, false)
	if !strings.Contains(buf.String(), "improved") {
		t.Fatalf("table missing improvement row:\n%s", buf.String())
	}
}
