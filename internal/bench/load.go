// Load reports: the serving-path counterpart of BENCH_table1.json.
// cmd/loadgen drives a running synthesis server open-loop and writes
// one LoadReport per session; benchdiff's -loadgen mode compares two of
// them and gates on warm-cache latency regressions the same way the
// per-stage diff gates on pipeline regressions.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// LoadPhase is one measured phase of a load session. Phases differ only
// in their spec mix: "cold" submits specs the server has never seen,
// "warm" replays specs whose every stage is cached, "mixed" alternates
// the two.
type LoadPhase struct {
	Name        string  `json:"name"`
	TargetRPS   float64 `json:"target_rps"`
	DurationSec float64 `json:"duration_sec"`
	Requests    int     `json:"requests"`
	Rejected    int     `json:"rejected"` // 429 backpressure responses
	Errors      int     `json:"errors"`   // transport or non-2xx/429 responses
	AchievedRPS float64 `json:"achieved_rps"`
	P50Us       int64   `json:"p50_us"`
	P95Us       int64   `json:"p95_us"`
	P99Us       int64   `json:"p99_us"`
	MaxUs       int64   `json:"max_us"`
}

// LoadReport is the full loadgen session payload. The machine
// fingerprint mirrors Report's so cross-machine comparisons can be
// refused on the same grounds.
type LoadReport struct {
	GoVersion    string      `json:"go_version"`
	GOOS         string      `json:"goos"`
	GOARCH       string      `json:"goarch"`
	CPUModel     string      `json:"cpu_model,omitempty"`
	GeneratedUTC string      `json:"generated_utc"`
	Server       string      `json:"server"`
	Specs        int         `json:"specs"` // distinct specs in the mix
	Phases       []LoadPhase `json:"phases"`
}

// Percentile returns the p-th percentile (nearest-rank) of the sorted
// latency slice in microseconds; 0 on an empty slice.
func Percentile(sortedUs []int64, p float64) int64 {
	if len(sortedUs) == 0 {
		return 0
	}
	rank := int(p*float64(len(sortedUs))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sortedUs) {
		rank = len(sortedUs) - 1
	}
	return sortedUs[rank]
}

// SummarizePhase folds raw request latencies into one LoadPhase.
func SummarizePhase(name string, targetRPS, durationSec float64, latUs []int64, rejected, errors int) LoadPhase {
	sorted := append([]int64(nil), latUs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ph := LoadPhase{
		Name:        name,
		TargetRPS:   targetRPS,
		DurationSec: durationSec,
		Requests:    len(latUs),
		Rejected:    rejected,
		Errors:      errors,
		P50Us:       Percentile(sorted, 0.50),
		P95Us:       Percentile(sorted, 0.95),
		P99Us:       Percentile(sorted, 0.99),
	}
	if len(sorted) > 0 {
		ph.MaxUs = sorted[len(sorted)-1]
	}
	if durationSec > 0 {
		ph.AchievedRPS = float64(len(latUs)) / durationSec
	}
	return ph
}

// Phase returns the named phase, or nil.
func (r *LoadReport) Phase(name string) *LoadPhase {
	for i := range r.Phases {
		if r.Phases[i].Name == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// WriteFile marshals the report as indented JSON to path.
func (r *LoadReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadLoadReport decodes a LoadReport file.
func ReadLoadReport(path string) (*LoadReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r LoadReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// LoadDelta is one phase's latency comparison.
type LoadDelta struct {
	Phase   string  `json:"phase"`
	OldP95  int64   `json:"old_p95_us"`
	NewP95  int64   `json:"new_p95_us"`
	Rel     float64 `json:"rel"` // (new-old)/old
	Verdict string  `json:"verdict"`
}

// LoadDiffResult is the -loadgen comparison outcome.
type LoadDiffResult struct {
	Deltas      []LoadDelta `json:"deltas"`
	Regressions int         `json:"regressions"`
	CrossNote   string      `json:"cross_note,omitempty"`
}

// LoadDiff compares phase-by-phase warm/cold/mixed p95 latencies under
// the same noise/budget discipline as the stage diff. Phases present on
// only one side are skipped — a session that measured fewer phases
// gates only on the shared ones.
func LoadDiff(oldR, newR *LoadReport, opts DiffOptions) (*LoadDiffResult, error) {
	if oldR == nil || newR == nil {
		return nil, fmt.Errorf("bench: nil load report")
	}
	oldFP := fmt.Sprintf("%s/%s/%s/%s", oldR.GoVersion, oldR.GOOS, oldR.GOARCH, oldR.CPUModel)
	newFP := fmt.Sprintf("%s/%s/%s/%s", newR.GoVersion, newR.GOOS, newR.GOARCH, newR.CPUModel)
	res := &LoadDiffResult{}
	if oldFP != newFP {
		if !opts.AllowCrossMachine {
			return nil, fmt.Errorf("bench: load reports from different machines (%q vs %q); pass -allow-cross-machine to override", oldFP, newFP)
		}
		res.CrossNote = fmt.Sprintf("cross-machine: %s vs %s", oldFP, newFP)
	}
	for _, op := range oldR.Phases {
		np := newR.Phase(op.Name)
		if np == nil || op.P95Us == 0 {
			continue
		}
		rel := float64(np.P95Us-op.P95Us) / float64(op.P95Us)
		d := LoadDelta{Phase: op.Name, OldP95: op.P95Us, NewP95: np.P95Us, Rel: rel}
		switch {
		case rel < -opts.noise():
			d.Verdict = VerdictImproved
		case rel <= opts.noise():
			d.Verdict = VerdictNoise
		case rel <= opts.timeBudget("load_"+op.Name):
			d.Verdict = VerdictSlower
		default:
			d.Verdict = VerdictRegression
			res.Regressions++
		}
		res.Deltas = append(res.Deltas, d)
	}
	return res, nil
}

// WriteTable renders the load diff human-readably.
func (r *LoadDiffResult) WriteTable(w *os.File) {
	if r.CrossNote != "" {
		fmt.Fprintf(w, "note: %s\n", r.CrossNote)
	}
	fmt.Fprintf(w, "%-8s %12s %12s %8s  %s\n", "phase", "old p95", "new p95", "delta", "verdict")
	for _, d := range r.Deltas {
		fmt.Fprintf(w, "%-8s %10dus %10dus %+7.1f%%  %s\n", d.Phase, d.OldP95, d.NewP95, 100*d.Rel, d.Verdict)
	}
}
