// Benchdiff: a dependency-free, benchstat-flavoured comparator over
// two BENCH_table1.json reports. The methodology, in order of the
// decisions that matter:
//
//   - Min-of-runs. testing.Benchmark already averages within a run, but
//     scheduler noise between runs is one-sided — interference only
//     ever makes a benchmark slower. The minimum across repeated runs
//     is therefore the best available estimate of the true cost, and
//     both sides of a diff should be min-reduced before comparing.
//   - Noise floor. Relative deltas below the noise threshold are
//     reported but never gated on; sub-threshold jitter on
//     microsecond-scale stages would otherwise flap the CI gate.
//   - Per-stage budgets. A single global budget either strangles the
//     stable stages or waives the volatile ones. Each stage gets a
//     relative wall-time budget (falling back to the global one), and
//     allocs/op — machine-independent, deterministic for this
//     pipeline — gets its own much tighter budget.
//   - Fingerprint refusal. Wall-clock numbers from different machines
//     are not commensurable. Unless explicitly overridden, a diff
//     across Go versions, CPU models or GOGC settings refuses to run
//     rather than report nonsense.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// DiffOptions tunes the comparison.
type DiffOptions struct {
	// Noise is the relative delta below which a change is jitter, never
	// a verdict (default 0.05 = 5%).
	Noise float64
	// TimeBudget is the allowed relative ns/op growth per stage before
	// the diff fails (default 0.10 = +10%).
	TimeBudget float64
	// StageBudgets overrides TimeBudget per stage name.
	StageBudgets map[string]float64
	// AllocBudget is the allowed relative allocs/op growth (default
	// 0.05). Allocation counts are machine-independent, so this gate
	// stays tight even when the time budgets are loosened for CI.
	AllocBudget float64
	// AllowCrossMachine permits comparing reports whose machine
	// fingerprints differ; the mismatch is still recorded in the result.
	AllowCrossMachine bool
}

func (o DiffOptions) noise() float64 {
	if o.Noise <= 0 {
		return 0.05
	}
	return o.Noise
}

func (o DiffOptions) timeBudget(stage string) float64 {
	if b, ok := o.StageBudgets[stage]; ok {
		return b
	}
	if o.TimeBudget <= 0 {
		return 0.10
	}
	return o.TimeBudget
}

func (o DiffOptions) allocBudget() float64 {
	if o.AllocBudget <= 0 {
		return 0.05
	}
	return o.AllocBudget
}

// Verdicts of one metric delta, ordered by severity.
const (
	VerdictNoise      = "~"          // within the noise floor
	VerdictImproved   = "improved"   // beyond noise, in the good direction
	VerdictSlower     = "slower"     // beyond noise, within budget
	VerdictRegression = "REGRESSION" // beyond the stage's budget
)

// Delta is one (benchmark, stage, metric) comparison.
type Delta struct {
	Bench   string  `json:"bench"`
	Stage   string  `json:"stage"`
	Metric  string  `json:"metric"` // "time/op" or "allocs/op"
	Old     int64   `json:"old"`
	New     int64   `json:"new"`
	Rel     float64 `json:"rel"` // (new-old)/old
	Budget  float64 `json:"budget"`
	Verdict string  `json:"verdict"`
}

// DiffResult is the full outcome of comparing two reports.
type DiffResult struct {
	OldFingerprint string  `json:"old_fingerprint"`
	NewFingerprint string  `json:"new_fingerprint"`
	CrossMachine   bool    `json:"cross_machine"`
	Deltas         []Delta `json:"deltas"`
	Regressions    int     `json:"regressions"`
}

// Fingerprint identifies the measurement conditions a report's
// wall-clock numbers are only valid under.
func Fingerprint(r *Report) string {
	return strings.Join([]string{r.GoVersion, r.GOOS, r.GOARCH, r.CPUModel, r.GOGC}, "|")
}

// ReadReport loads one BENCH_table1.json.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &r, nil
}

// MinOfRuns reduces repeated reports of the same suite to their
// per-stage minima — the noise-rejecting estimate of true cost. The
// first report supplies metadata and entry order; entries or stages
// missing from later runs keep the values already accumulated.
func MinOfRuns(runs []*Report) *Report {
	if len(runs) == 0 {
		return nil
	}
	out := *runs[0]
	out.Entries = make([]Entry, len(runs[0].Entries))
	for i, e := range runs[0].Entries {
		ne := e
		ne.Stages = make(map[string]Stage, len(e.Stages))
		for k, v := range e.Stages { //reprolint:ordered map copy; output ordering is imposed by Diff
			ne.Stages[k] = v
		}
		out.Entries[i] = ne
	}
	for _, r := range runs[1:] {
		for _, e := range r.Entries {
			tgt := findEntry(out.Entries, e.Name)
			if tgt == nil {
				continue
			}
			for k, v := range e.Stages { //reprolint:ordered per-key min; output ordering is imposed by Diff
				cur, ok := tgt.Stages[k]
				if !ok {
					tgt.Stages[k] = v
					continue
				}
				if v.NsPerOp < cur.NsPerOp {
					cur.NsPerOp = v.NsPerOp
				}
				if v.AllocsPerOp < cur.AllocsPerOp {
					cur.AllocsPerOp = v.AllocsPerOp
				}
				if v.BytesPerOp < cur.BytesPerOp {
					cur.BytesPerOp = v.BytesPerOp
				}
				tgt.Stages[k] = cur
			}
		}
	}
	return &out
}

func findEntry(entries []Entry, name string) *Entry {
	for i := range entries {
		if entries[i].Name == name {
			return &entries[i]
		}
	}
	return nil
}

// Diff compares old against new. It refuses cross-machine comparisons
// unless opts.AllowCrossMachine; in that mode only the allocs/op gate
// keeps its full strength, since allocation counts survive a machine
// change and wall time does not.
func Diff(oldR, newR *Report, opts DiffOptions) (*DiffResult, error) {
	res := &DiffResult{
		OldFingerprint: Fingerprint(oldR),
		NewFingerprint: Fingerprint(newR),
	}
	res.CrossMachine = res.OldFingerprint != res.NewFingerprint
	if res.CrossMachine && !opts.AllowCrossMachine {
		return nil, fmt.Errorf("bench: refusing cross-machine comparison:\n  old: %s\n  new: %s\nwall-clock numbers from different machines are not commensurable; re-baseline or pass -allow-cross-machine",
			res.OldFingerprint, res.NewFingerprint)
	}
	noise := opts.noise()
	for _, oe := range oldR.Entries {
		ne := findEntry(newR.Entries, oe.Name)
		if ne == nil {
			continue
		}
		stages := make([]string, 0, len(oe.Stages))
		for k := range oe.Stages { //reprolint:ordered keys are sorted before use
			stages = append(stages, k)
		}
		sort.Strings(stages)
		for _, st := range stages {
			ov, nv := oe.Stages[st], ne.Stages[st]
			if _, ok := ne.Stages[st]; !ok {
				continue
			}
			if d, ok := delta(oe.Name, st, "time/op", ov.NsPerOp, nv.NsPerOp, noise, opts.timeBudget(st)); ok {
				res.Deltas = append(res.Deltas, d)
			}
			if d, ok := delta(oe.Name, st, "allocs/op", ov.AllocsPerOp, nv.AllocsPerOp, noise, opts.allocBudget()); ok {
				res.Deltas = append(res.Deltas, d)
			}
		}
	}
	for _, d := range res.Deltas {
		if d.Verdict == VerdictRegression {
			res.Regressions++
		}
	}
	return res, nil
}

func delta(bench, stage, metric string, oldV, newV int64, noise, budget float64) (Delta, bool) {
	if oldV <= 0 {
		return Delta{}, false
	}
	rel := float64(newV-oldV) / float64(oldV)
	d := Delta{Bench: bench, Stage: stage, Metric: metric, Old: oldV, New: newV, Rel: rel, Budget: budget}
	switch {
	case rel > budget:
		d.Verdict = VerdictRegression
	case rel > noise:
		d.Verdict = VerdictSlower
	case rel < -noise:
		d.Verdict = VerdictImproved
	default:
		d.Verdict = VerdictNoise
	}
	return d, true
}

// WriteTable renders the result benchstat-style. With all=false only
// rows beyond the noise floor are printed (plus a summary line); the
// regression rows always print.
func (r *DiffResult) WriteTable(w io.Writer, all bool) {
	if r.CrossMachine {
		fmt.Fprintf(w, "warning: cross-machine comparison\n  old: %s\n  new: %s\n\n", r.OldFingerprint, r.NewFingerprint)
	}
	fmt.Fprintf(w, "%-12s %-14s %-10s %14s %14s %9s  %s\n",
		"bench", "stage", "metric", "old", "new", "delta", "verdict")
	shown := 0
	for _, d := range r.Deltas {
		if !all && d.Verdict == VerdictNoise {
			continue
		}
		shown++
		fmt.Fprintf(w, "%-12s %-14s %-10s %14s %14s %+8.1f%%  %s\n",
			d.Bench, d.Stage, d.Metric, formatVal(d.Metric, d.Old), formatVal(d.Metric, d.New), d.Rel*100, d.Verdict)
	}
	if shown == 0 {
		fmt.Fprintf(w, "(all %d comparisons within the noise floor)\n", len(r.Deltas))
	}
	fmt.Fprintf(w, "\n%d comparisons, %d regressions\n", len(r.Deltas), r.Regressions)
}

func formatVal(metric string, v int64) string {
	if metric == "time/op" {
		switch {
		case v >= 1_000_000_000:
			return fmt.Sprintf("%.3fs", float64(v)/1e9)
		case v >= 1_000_000:
			return fmt.Sprintf("%.2fms", float64(v)/1e6)
		case v >= 1_000:
			return fmt.Sprintf("%.1fµs", float64(v)/1e3)
		}
		return fmt.Sprintf("%dns", v)
	}
	return fmt.Sprintf("%d", v)
}
