package bench

import "testing"

func loadRep(p95 map[string]int64) *LoadReport {
	r := &LoadReport{GoVersion: "go1.x", GOOS: "linux", GOARCH: "amd64"}
	for _, name := range []string{"cold", "warm", "mixed"} {
		if v, ok := p95[name]; ok {
			r.Phases = append(r.Phases, LoadPhase{Name: name, P95Us: v, Requests: 100})
		}
	}
	return r
}

func TestPercentile(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		p    float64
		want int64
	}{{0.50, 50}, {0.95, 100}, {0.99, 100}, {0.10, 10}} {
		if got := Percentile(sorted, tc.p); got != tc.want {
			t.Errorf("p%.0f = %d, want %d", 100*tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty slice must yield 0")
	}
}

func TestLoadDiffGates(t *testing.T) {
	oldR := loadRep(map[string]int64{"cold": 50_000, "warm": 500, "mixed": 2_000})

	// Warm p95 doubling is a regression; cold staying put is noise.
	res, err := LoadDiff(oldR, loadRep(map[string]int64{"cold": 50_000, "warm": 1_000, "mixed": 2_000}), DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (warm p95 doubled)", res.Regressions)
	}
	for _, d := range res.Deltas {
		want := VerdictNoise
		if d.Phase == "warm" {
			want = VerdictRegression
		}
		if d.Verdict != want {
			t.Errorf("%s verdict = %s, want %s", d.Phase, d.Verdict, want)
		}
	}

	// Within budget: +8% under the default 10% budget is "slower", not a gate failure.
	res, err = LoadDiff(oldR, loadRep(map[string]int64{"cold": 54_000, "warm": 500, "mixed": 2_000}), DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 {
		t.Fatalf("within-budget growth must not gate: %+v", res.Deltas)
	}

	// A phase missing on one side is skipped, not an error.
	res, err = LoadDiff(oldR, loadRep(map[string]int64{"warm": 400}), DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deltas) != 1 || res.Deltas[0].Phase != "warm" || res.Deltas[0].Verdict != VerdictImproved {
		t.Fatalf("got %+v", res.Deltas)
	}

	// Cross-machine refusal, overridable.
	other := loadRep(map[string]int64{"warm": 500})
	other.GoVersion = "go2.y"
	if _, err := LoadDiff(oldR, other, DiffOptions{}); err == nil {
		t.Fatal("cross-machine comparison must refuse by default")
	}
	if _, err := LoadDiff(oldR, other, DiffOptions{AllowCrossMachine: true}); err != nil {
		t.Fatal(err)
	}

	// Per-phase budget override via the load_ stage-budget namespace.
	res, err = LoadDiff(oldR, loadRep(map[string]int64{"warm": 1_000}), DiffOptions{StageBudgets: map[string]float64{"load_warm": 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 {
		t.Fatal("load_warm budget override must allow the doubling")
	}
}
