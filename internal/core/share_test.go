package core_test

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sg"
	"repro/internal/stg"
	"repro/internal/verify"
)

// forkG: outputs y and z both rise after a+ ∧ b+ and fall after a- ∧ b-:
// their region functions are identical (Sy = Sz = ab, Ry = Rz = a'b'),
// the canonical Section-VI sharing opportunity.
const forkG = `
.model fork
.inputs a b
.outputs y z
.graph
a+ y+ z+
b+ y+ z+
y+ a- b-
z+ a- b-
a- y- z-
b- y- z-
y- a+ b+
z- a+ b+
.marking { <y-,a+> <y-,b+> <z-,a+> <z-,b+> }
.end
`

func forkSG(t *testing.T) *sg.Graph {
	t.Helper()
	g, err := stg.BuildSG(stg.MustParse(forkG))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneralizedMCOnForkPair(t *testing.T) {
	g := forkSG(t)
	a := core.NewAnalyzer(g)
	y, z := g.SignalIndex("y"), g.SignalIndex("z")
	var ers []*sg.Region
	for _, sig := range []int{y, z} {
		for _, er := range a.Regs[sig].ER {
			if er.Dir == sg.Plus {
				ers = append(ers, er)
			}
		}
	}
	if len(ers) != 2 {
		t.Fatalf("expected 2 up-regions, got %d", len(ers))
	}
	c := a.CoverCube(ers[0])
	if v := a.CheckGeneralizedMC(ers, c); v != nil {
		t.Fatalf("cube %s must be a generalized MC for both regions: %s",
			c.StringNamed(g.Signals), v.Describe(g))
	}
}

func TestGeneralizedMCRejectsBadCube(t *testing.T) {
	g := forkSG(t)
	a := core.NewAnalyzer(g)
	y := g.SignalIndex("y")
	var ers []*sg.Region
	for _, er := range a.Regs[y].ER {
		ers = append(ers, er)
	}
	// The up-cube cannot cover the down-region too.
	up := a.CoverCube(ers[0])
	if v := a.CheckGeneralizedMC(ers, up); v == nil {
		t.Fatal("one cube cannot serve both the up- and down-region")
	}
}

func TestShareOptimizeFork(t *testing.T) {
	g := forkSG(t)
	a := core.NewAnalyzer(g)
	rep := a.CheckGraph()
	if !rep.Satisfied() {
		t.Fatalf("fork must satisfy MC:\n%s", rep)
	}
	fns, saved, err := a.ShareOptimize(rep)
	if err != nil {
		t.Fatal(err)
	}
	if saved != 2 {
		t.Fatalf("sharing should save 2 AND terms (Sy=Sz, Ry=Rz), saved %d", saved)
	}
	// Both signals still have complete functions.
	for _, sig := range []int{g.SignalIndex("y"), g.SignalIndex("z")} {
		if fns[sig].Set.IsEmpty() || fns[sig].Reset.IsEmpty() {
			t.Fatalf("signal %s lost a function", g.Signals[sig])
		}
	}

	// The shared implementation must still verify speed-independent
	// (Theorem 5) and use exactly 2 AND gates.
	sr := map[int]netlist.SR{}
	for sig, f := range fns {
		sr[sig] = netlist.SR{Set: f.Set, Reset: f.Reset}
	}
	nl, err := netlist.Build(g, sr, netlist.Options{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := nl.Stats(); st.Ands != 2 {
		t.Fatalf("shared implementation should have 2 ANDs: %s\n%s", st, nl)
	}
	res := verify.Check(nl, g)
	if !res.OK() {
		t.Fatalf("Theorem 5 violated:\n%s\n%s", res, nl)
	}

	// Without sharing: 4 AND gates, also speed-independent.
	nl2, err := netlist.Build(g, sr, netlist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := nl2.Stats(); st.Ands != 2 {
		// Build without Share still deduplicates nothing — but the
		// functions are already merged, so each function has one cube.
		t.Logf("unshared build stats: %s", st)
	}
}

func TestShareOptimizeRefusesViolatedReport(t *testing.T) {
	g := benchdata.Fig4SG()
	a := core.NewAnalyzer(g)
	rep := a.CheckGraph()
	if _, _, err := a.ShareOptimize(rep); err == nil {
		t.Fatal("violated report must be refused")
	}
}

func TestShareOptimizeNoOpWhenNothingShareable(t *testing.T) {
	// The C-element spec has one up- and one down-region with disjoint
	// cubes: no sharing possible, zero saved.
	src := `
.model celem
.inputs a b
.outputs c
.graph
a+ c+
b+ c+
c+ a- b-
a- c-
b- c-
c- a+ b+
.marking { <c-,a+> <c-,b+> }
.end
`
	g, err := stg.BuildSG(stg.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAnalyzer(g)
	rep := a.CheckGraph()
	fns, saved, err := a.ShareOptimize(rep)
	if err != nil {
		t.Fatal(err)
	}
	if saved != 0 {
		t.Fatalf("nothing to share, saved %d", saved)
	}
	c := g.SignalIndex("c")
	if fns[c].Set.Len() != 1 || fns[c].Reset.Len() != 1 {
		t.Fatal("functions must be preserved")
	}
}
