package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sg"
)

// orCausalityGraph builds a semi-modular but non-distributive graph:
// output c rises when a OR b has risen (OR-causality diamond), then
// everything resets sequentially. Inputs a and b are concurrent.
func orCausalityGraph(t *testing.T) *sg.Graph {
	t.Helper()
	g := &sg.Graph{Signals: []string{"a", "b", "c"}, Input: []bool{true, true, false}, Name: "orc"}
	// Codes over (a,b,c), bit 0 = a.
	s0 := g.AddState(0b000)   // a+, b+ concurrent
	sa := g.AddState(0b001)   // a=1: b+ and c+ enabled
	sb := g.AddState(0b010)   // b=1: a+ and c+ enabled
	sab := g.AddState(0b011)  // c+ enabled
	sac := g.AddState(0b101)  // b+ enabled
	sbc := g.AddState(0b110)  // a+ enabled
	sabc := g.AddState(0b111) // a- enabled
	t1 := g.AddState(0b110)   // b- enabled (same code as sbc, different phase)
	t2 := g.AddState(0b100)   // c- enabled
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddEdge(s0, sa, 0, sg.Plus))
	must(g.AddEdge(s0, sb, 1, sg.Plus))
	must(g.AddEdge(sa, sab, 1, sg.Plus))
	must(g.AddEdge(sb, sab, 0, sg.Plus))
	must(g.AddEdge(sa, sac, 2, sg.Plus))
	must(g.AddEdge(sb, sbc, 2, sg.Plus))
	must(g.AddEdge(sab, sabc, 2, sg.Plus))
	must(g.AddEdge(sac, sabc, 1, sg.Plus))
	must(g.AddEdge(sbc, sabc, 0, sg.Plus))
	must(g.AddEdge(sabc, t1, 0, sg.Minus))
	must(g.AddEdge(t1, t2, 1, sg.Minus))
	must(g.AddEdge(t2, s0, 2, sg.Minus))
	if err := g.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLemma1MultipleMinimalStates(t *testing.T) {
	// Lemma 1: in a semi-modular but not distributive SG, some ER has
	// several minimal states. ER(+c) of the OR-causality diamond is
	// entered through both a+ and b+.
	g := orCausalityGraph(t)
	if !g.OutputSemiModular() {
		t.Fatal("OR-causality diamond is output semi-modular")
	}
	if g.OutputDistributive() {
		t.Fatal("OR-causality makes the graph non-distributive")
	}
	a := core.NewAnalyzer(g)
	c := g.SignalIndex("c")
	multi := false
	for _, er := range a.Regs[c].ER {
		if er.Dir == sg.Plus && len(er.Min) > 1 {
			multi = true
		}
	}
	if !multi {
		t.Fatal("Lemma 1: expected an ER(+c) with multiple minimal states")
	}
}

func TestTheorem2NonDistributiveViolatesMC(t *testing.T) {
	// Theorem 2: in a semi-modular non-distributive SG not every ER has
	// a monotonous cover — ER(+c) here cannot be covered by one cube
	// (its minimal states disagree on every ordered signal's value).
	g := orCausalityGraph(t)
	a := core.NewAnalyzer(g)
	c := g.SignalIndex("c")
	violated := false
	for _, er := range a.Regs[c].ER {
		if er.Dir != sg.Plus {
			continue
		}
		if _, v := a.FindMC(er); v != nil {
			violated = true
		}
	}
	if !violated {
		t.Fatal("Theorem 2: expected an MC violation on ER(+c)")
	}
}
