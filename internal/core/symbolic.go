package core

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/cube"
	"repro/internal/sg"
)

// This file is the symbolic half of the analysis engine abstraction: the
// Monotonous Cover theory evaluated over BDD-represented state sets
// instead of enumerated states. A SymSpace is any symbolic state space —
// stg.SymbolicSpace answers over the net's markings without ever
// materializing them, and GraphSpace wraps an explicit sg.Graph in
// index-bit BDDs so the same checks run against the explicit reference.
// Every check here is existence-only: it decides whether a cover or a
// violation exists without constructing witness cubes or state lists,
// which is exactly what encode.Repair's candidate pruning consumes.

// SymSpace is the narrow view of a symbolic state space the Monotonous
// Cover theory needs. All state sets are BDDs over StateVars() in the
// space's Manager; every set-valued method confines its result to the
// reachable set.
type SymSpace interface {
	Manager() *bdd.Manager
	StateVars() []int // current-state variables, indexed by entity (not necessarily sorted)
	ReachedBDD() int
	NumSignals() int
	SignalName(sig int) string
	IsInput(sig int) bool
	// ValueBDD returns the reachable states where signal sig reads v.
	ValueBDD(sig int, v bool) int
	// ExcitedBDD returns the reachable states with a (sig, d) transition
	// enabled, d ∈ {+1, −1}.
	ExcitedBDD(sig, d int) int
	// ImageBDD / PreimageBDD step the transition relation once, forward
	// or backward, within the reachable set.
	ImageBDD(S int) int
	PreimageBDD(S int) int
	// ImageBySignalBDD steps forward through (sig, d) transitions only.
	ImageBySignalBDD(S, sig, d int) int
}

// SymRegion is one excitation or quiescent region as a BDD state set.
type SymRegion struct {
	Signal int
	Dir    sg.Dir
	Index  int // 1-based, in decomposition order
	Set    int // BDD over the space's state vars
}

// SymRegions is the region decomposition of one signal, mirroring
// sg.Regions: alternating excitation and quiescent regions plus the
// ER → following-QR association.
type SymRegions struct {
	Signal  int
	ER      []*SymRegion
	QR      []*SymRegion
	QRAfter []int
}

// symComponents splits the state set into maximal weakly connected
// components: closure of a seed state under forward and backward images
// restricted to the set, repeated until the set is exhausted. Seeds are
// the lexicographically smallest state of the remainder, so the
// decomposition order is deterministic (though not necessarily the
// explicit engine's discovery order — differential tests compare the
// component sets, not their indices).
func symComponents(sp SymSpace, set int) []int {
	m := sp.Manager()
	vars := sp.StateVars()
	var comps []int
	for set != bdd.False {
		seed := minState(m, set, vars)
		comp := seed
		for {
			grown := m.Or(comp, m.And(sp.ImageBDD(comp), set))
			grown = m.Or(grown, m.And(sp.PreimageBDD(comp), set))
			if grown == comp {
				break
			}
			comp = grown
		}
		comps = append(comps, comp)
		set = m.Diff(set, comp)
	}
	return comps
}

// minState extracts the lexicographically smallest state of a non-empty
// set as a minterm BDD.
func minState(m *bdd.Manager, set int, vars []int) int {
	lits := make(map[int]bool, len(vars))
	m.ForEachSat(set, vars, func(assign []bool) bool {
		for i, v := range vars {
			lits[v] = assign[i]
		}
		return false // first assignment = lexicographic minimum
	})
	return m.Cube(lits)
}

// SymRegionsOf decomposes signal sig's excitation and quiescent regions
// symbolically (Definitions 5 and 6 over BDD sets). The space's values
// must be available (for stg.SymbolicSpace: ComputeValues first).
func SymRegionsOf(sp SymSpace, sig int) *SymRegions {
	m := sp.Manager()
	erPlus := sp.ExcitedBDD(sig, +1)
	erMinus := sp.ExcitedBDD(sig, -1)
	qr1 := m.Diff(sp.ValueBDD(sig, true), erMinus)
	qr0 := m.Diff(sp.ValueBDD(sig, false), erPlus)
	res := &SymRegions{Signal: sig}
	for _, part := range []struct {
		set  int
		dir  sg.Dir
		isQR bool
	}{
		{erPlus, sg.Plus, false},
		{erMinus, sg.Minus, false},
		{qr1, sg.Plus, true}, // QR(+a): stable at 1 after an up transition
		{qr0, sg.Minus, true},
	} {
		idx := 0
		for _, comp := range symComponents(sp, part.set) {
			idx++
			r := &SymRegion{Signal: sig, Dir: part.dir, Index: idx, Set: comp}
			if part.isQR {
				res.QR = append(res.QR, r)
			} else {
				res.ER = append(res.ER, r)
			}
		}
	}
	res.QRAfter = make([]int, len(res.ER))
	for i, er := range res.ER {
		res.QRAfter[i] = -1
		succ := sp.ImageBySignalBDD(er.Set, sig, int(er.Dir))
		for j, qr := range res.QR {
			if qr.Dir == er.Dir && m.And(qr.Set, succ) != bdd.False {
				res.QRAfter[i] = j
				break
			}
		}
	}
	return res
}

// symCoverCube derives the canonical cover cube of a symbolic excitation
// region (Definition 15 / Lemma 3): one literal per signal ordered with
// respect to the region, at the signal's constant value inside it. The
// literals come out in signal order, exactly like Analyzer.CoverCube.
func symCoverCube(sp SymSpace, er *SymRegion) cube.Cube {
	m := sp.Manager()
	n := sp.NumSignals()
	c := cube.NewFull(n)
	for b := 0; b < n; b++ {
		if b == er.Signal {
			continue
		}
		excited := m.Or(sp.ExcitedBDD(b, +1), sp.ExcitedBDD(b, -1))
		if m.And(excited, er.Set) != bdd.False {
			continue // b fires inside the region: not ordered
		}
		// Ordered ⇒ constant over the weakly connected region.
		if m.Diff(er.Set, sp.ValueBDD(b, true)) == bdd.False {
			c.Set(b, cube.One)
		} else {
			c.Set(b, cube.Zero)
		}
	}
	return c
}

// symCovered returns the BDD of reachable states covered by cube c: the
// intersection of the value sets of its literals.
func symCovered(sp SymSpace, c cube.Cube) int {
	m := sp.Manager()
	s := sp.ReachedBDD()
	for _, b := range c.Literals() {
		s = m.And(s, sp.ValueBDD(b, c.Get(b) == cube.One))
	}
	return s
}

// symCheckMC evaluates the three MC conditions of Definition 17 as set
// operations: (1) the ER lies inside the covered set, (2) no edge inside
// the CFR rises from uncovered to covered, (3) nothing reachable outside
// the CFR is covered.
func symCheckMC(sp SymSpace, er *SymRegion, cfr int, c cube.Cube) bool {
	m := sp.Manager()
	covered := symCovered(sp, c)
	if m.Diff(er.Set, covered) != bdd.False {
		return false
	}
	rising := m.And(sp.ImageBDD(m.Diff(cfr, covered)), m.And(cfr, covered))
	if rising != bdd.False {
		return false
	}
	return m.And(m.Diff(sp.ReachedBDD(), cfr), covered) == bdd.False
}

// symVaryingLiterals lists the cube's literals whose signals take both
// values over the given set, in literal (= signal) order — the candidate
// drops of FindMC's subset search.
func symVaryingLiterals(sp SymSpace, c cube.Cube, set int) []int {
	m := sp.Manager()
	var out []int
	for _, b := range c.Literals() {
		if m.And(set, sp.ValueBDD(b, false)) != bdd.False &&
			m.And(set, sp.ValueBDD(b, true)) != bdd.False {
			out = append(out, b)
		}
	}
	return out
}

// SymMCViolation is the symbolic, existence-only Monotonous Cover check
// for one excitation region: it reports whether the region has NO
// monotonous cover. The search mirrors Analyzer.mcViolation exactly —
// canonical cube first, then literal subsets of the CFR-varying literals
// in ascending size — so its verdict matches the explicit engine's on
// corresponding regions.
func SymMCViolation(sp SymSpace, regs *SymRegions, i int) bool {
	m := sp.Manager()
	er := regs.ER[i]
	cfr := er.Set
	if j := regs.QRAfter[i]; j >= 0 {
		cfr = m.Or(cfr, regs.QR[j].Set)
	}
	c := symCoverCube(sp, er)
	if symCheckMC(sp, er, cfr, c) {
		return false
	}
	// The canonical cube is the tightest cover: conditions (1) and (3)
	// only worsen when it grows, so a failure is final unless dropping
	// CFR-varying literals can restore monotonicity.
	covered := symCovered(sp, c)
	if m.Diff(er.Set, covered) != bdd.False {
		return true // condition (1): can only get worse
	}
	if m.And(m.Diff(sp.ReachedBDD(), cfr), covered) != bdd.False {
		return true // condition (3): can only get worse
	}
	lits := symVaryingLiterals(sp, c, cfr)
	cand := c.Clone()
	for size := 1; size <= len(lits); size++ {
		if forEachSubset(lits, size, func(drop []int) bool {
			cand.CopyFrom(c)
			for _, l := range drop {
				cand.Set(l, cube.Full)
			}
			return symCheckMC(sp, er, cfr, cand)
		}) {
			return false
		}
	}
	return true
}

// SymMCSummary runs the existence-only MC check over every excitation
// region of every non-input signal and returns the labels of regions
// without a monotonous cover. It does not apply the shared-cube or wire
// fallbacks of the explicit checker — it answers "which regions need
// more than a private cube", which is the question the analysis-only
// engine path reports.
func SymMCSummary(sp SymSpace) ([]string, error) {
	var out []string
	for sig := 0; sig < sp.NumSignals(); sig++ {
		if sp.IsInput(sig) {
			continue
		}
		regs := SymRegionsOf(sp, sig)
		for i, er := range regs.ER {
			if SymMCViolation(sp, regs, i) {
				out = append(out, fmt.Sprintf("ER(%s%s,%d)", er.Dir, sp.SignalName(sig), er.Index))
			}
		}
	}
	return out, nil
}

// CountViolationsBudgetSymbolic is the engine-abstracted twin of
// CountViolationsBudget: the same scan order, budgeted early exit and
// per-signal fallback chain, but each region's cover-existence question
// is answered by symbolic set operations over a GraphSpace instead of
// per-state scans. Whenever a region has no private cover the whole
// signal is delegated to the explicit countSignal — verdict equivalence
// per region makes the returned count identical to the explicit one, so
// repair driven by either counter takes identical decisions.
func (a *Analyzer) CountViolationsBudgetSymbolic(budget int, hot ...string) int {
	sp := a.graphSpace()
	violations := 0
	for _, sig := range a.scanOrder(hot) {
		violations += a.countSignalSymbolic(sp, sig)
		if budget > 0 && violations >= budget {
			break
		}
	}
	return violations
}

// countSignalSymbolic mirrors countSignal with the per-region existence
// check evaluated symbolically. The regions themselves come from the
// explicit decomposition (the graph is already materialized here); only
// the MC conditions move to BDDs.
func (a *Analyzer) countSignalSymbolic(sp *GraphSpace, sig int) int {
	regs := a.regs(sig)
	symRegs := sp.adoptRegions(regs)
	for i := range regs.ER {
		if SymMCViolation(sp, symRegs, i) {
			// At least one region needs the fallback chain; run the whole
			// signal through the explicit counter for exact parity.
			return a.countSignal(sig)
		}
	}
	return 0
}
