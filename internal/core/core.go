// Package core implements the paper's central contribution: the
// Monotonous Cover (MC) theory for speed-independent implementation of
// state graphs with basic gates (Sections IV and VI).
//
// For every excitation region ER(*a_i) of a non-input signal the theory
// asks for a single cube — the monotonous cover cube — that
//
//  1. covers every state of ER(*a_i),
//  2. changes value at most once along any trace inside the constant
//     function region CFR(*a_i) = ER(*a_i) ∪ QR(*a_i), and
//  3. covers no reachable state outside CFR(*a_i).
//
// When every non-input excitation region has such a cube (the MC
// requirement, Definition 18), the standard C-element and RS-latch
// implementations built from those cubes are semi-modular and therefore
// hazard-free under the unbounded gate delay model (Theorem 3). The MC
// requirement also implies Complete State Coding and persistency
// (Theorem 4, Corollary 1).
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cube"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sg"
)

// Analyzer caches the region decomposition and dense index of one state
// graph and answers Monotonous Cover queries against it. Its query
// methods are safe for concurrent use once constructed.
type Analyzer struct {
	G    *sg.Graph
	Idx  *sg.Index     // dense excitation/successor index of G
	Regs []*sg.Regions // indexed by signal

	minterms  [][]bool    // per-state value vectors, precomputed
	mintCubes []cube.Cube // per-state minterm cubes, for O(words) covers
	workers   int         // worker-pool bound for per-signal fan-out

	// cfrBuf, ccBuf, candBuf, litsBuf and subBuf are the reusable
	// buffers of the sequential existence-only scoring path
	// (mcViolation). The parallel fan-outs of CheckGraph never touch
	// them: they run checkSignal, which builds its cubes and CFRs per
	// call.
	cfrBuf  sg.StateSet
	ccBuf   cube.Cube
	candBuf cube.Cube
	litsBuf []int
	subBuf  []int

	gspace *GraphSpace // lazy index-bit symbolic view of G, see graphSpace
}

// graphSpace returns (building on first use) the symbolic index-bit view
// of the analyzer's graph that the *Symbolic checks run over. Lazily
// built because only symbolic-engine paths pay for it.
func (a *Analyzer) graphSpace() *GraphSpace {
	if a.gspace == nil {
		a.gspace = NewGraphSpace(a.G, a.Idx)
	}
	return a.gspace
}

// NewAnalyzer computes the dense index and the region decomposition of
// every signal, fanning the per-signal decompositions out over
// GOMAXPROCS workers.
func NewAnalyzer(g *sg.Graph) *Analyzer { return NewAnalyzerN(g, 0) }

// NewAnalyzerN is NewAnalyzer with an explicit worker-pool bound
// (0 = GOMAXPROCS, 1 = sequential).
func NewAnalyzerN(g *sg.Graph, workers int) *Analyzer {
	a := newAnalyzerBase(g, workers)
	if o := obs.Get(); o != nil {
		o.Metrics.Gauge("par_pool_size", "pool", "core.regions").Set(int64(a.workers))
	}
	par.ForEachHook(g.NumSignals(), a.workers, func(sig int) {
		a.Regs[sig] = a.Idx.RegionsOf(sig)
	}, obs.TaskHook("core.regions"))
	return a
}

// NewAnalyzerLazy builds a sequential analyzer that decomposes a
// signal's regions on first use instead of up front. Budgeted scoring
// over throwaway candidate graphs usually inspects only a few signals
// before hitting its budget, so the eager whole-graph decomposition is
// mostly wasted there. Lazy analyzers are not safe for concurrent use.
func NewAnalyzerLazy(g *sg.Graph) *Analyzer {
	return newAnalyzerBase(g, 1)
}

func newAnalyzerBase(g *sg.Graph, workers int) *Analyzer {
	a := &Analyzer{
		G:       g,
		Idx:     sg.NewIndex(g),
		Regs:    make([]*sg.Regions, g.NumSignals()),
		workers: par.Workers(workers),
	}
	// One flat backing array for all minterm rows: budgeted scoring
	// builds an analyzer per candidate graph, so per-state row
	// allocations dominate the constructor's cost.
	n := g.NumSignals()
	a.minterms = make([][]bool, g.NumStates())
	a.mintCubes = make([]cube.Cube, g.NumStates())
	flat := make([]bool, g.NumStates()*n)
	wpc := cube.WordsFor(n)
	mw := make([]uint64, g.NumStates()*wpc)
	for s := range a.minterms {
		v := flat[s*n : (s+1)*n : (s+1)*n]
		for i := 0; i < n; i++ {
			v[i] = g.Value(s, i)
		}
		a.minterms[s] = v
		a.mintCubes[s] = cube.MintermInto(v, mw[s*wpc:(s+1)*wpc:(s+1)*wpc])
	}
	return a
}

// regs returns signal sig's region decomposition, computing it on
// demand. Every internal consumer goes through this accessor so lazy
// analyzers work on all paths; eager analyzers always hit the
// precomputed entry, which keeps the parallel per-signal fan-outs free
// of writes.
func (a *Analyzer) regs(sig int) *sg.Regions {
	if r := a.Regs[sig]; r != nil {
		return r
	}
	r := a.Idx.RegionsOf(sig)
	a.Regs[sig] = r
	return r
}

// Minterm returns the binary code of state s as a value vector. The
// returned slice is shared; callers must not mutate it.
func (a *Analyzer) Minterm(s int) []bool { return a.minterms[s] }

// MintermCube returns the full minterm cube of state s.
func (a *Analyzer) MintermCube(s int) cube.Cube {
	return cube.NewMinterm(a.Minterm(s))
}

// CoverCube derives the canonical cover cube of the excitation region
// (Definition 15, computed as in Lemma 3): one literal for every signal
// ordered with respect to the region, at the signal's (constant) value
// inside the region. It is the smallest cover cube; every other cover
// cube is obtained by dropping literals from it.
func (a *Analyzer) CoverCube(er *sg.Region) cube.Cube {
	return a.coverCubeInto(er, cube.NewFull(a.G.NumSignals()))
}

// coverCubeInto is CoverCube writing into a caller-provided cube of the
// graph's signal width, returning it for convenience.
func (a *Analyzer) coverCubeInto(er *sg.Region, c cube.Cube) cube.Cube {
	g := a.G
	c.Reset()
	ref := er.States[0]
	for b := range g.Signals {
		if b == er.Signal || !a.Idx.Ordered(er, b) {
			continue
		}
		if g.Value(ref, b) {
			c.Set(b, cube.One)
		} else {
			c.Set(b, cube.Zero)
		}
	}
	return c
}

// Sets of Definition 13 for signal a:
//
//	0-set(a)  = ∪ QR(−a_i): a stable at 0,
//	0*set(a)  = ∪ ER(+a_i): a excited at 0,
//	1-set(a)  = ∪ QR(+a_i): a stable at 1,
//	1*set(a)  = ∪ ER(−a_i): a excited at 1.
type Sets struct {
	Zero, ZeroStar, One, OneStar sg.StateSet
}

// SetsOf computes the four characteristic state sets of signal sig.
func (a *Analyzer) SetsOf(sig int) Sets {
	n := a.G.NumStates()
	s := Sets{
		Zero:     sg.NewStateSet(n),
		ZeroStar: sg.NewStateSet(n),
		One:      sg.NewStateSet(n),
		OneStar:  sg.NewStateSet(n),
	}
	regs := a.regs(sig)
	for _, er := range regs.ER {
		dst := s.ZeroStar
		if er.Dir == sg.Minus {
			dst = s.OneStar
		}
		dst.UnionWith(er.Set())
	}
	for _, qr := range regs.QR {
		// QR(+a): a stable at 1; QR(−a): a stable at 0.
		dst := s.One
		if qr.Dir == sg.Minus {
			dst = s.Zero
		}
		dst.UnionWith(qr.Set())
	}
	return s
}

// ViolationKind classifies why a cube fails to be a monotonous cover.
type ViolationKind int

// Violation kinds.
const (
	// OK means no violation.
	OK ViolationKind = iota
	// NotCovering: condition (1) — the cube misses states of the ER.
	NotCovering
	// NonMonotonic: condition (2) — the cube rises again along a trace
	// inside the CFR (a 0→1 edge within the CFR).
	NonMonotonic
	// OutsideCFR: condition (3) — the cube covers a reachable state
	// outside the CFR.
	OutsideCFR
	// IncorrectCover: Definition 16 — the cube covers states where the
	// signal's excitation function must be 0 (implies OutsideCFR).
	IncorrectCover
)

// String names the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case OK:
		return "ok"
	case NotCovering:
		return "does not cover ER"
	case NonMonotonic:
		return "non-monotonic inside CFR"
	case OutsideCFR:
		return "covers state outside CFR"
	case IncorrectCover:
		return "incorrect cover"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation reports a failed Monotonous Cover condition with witness
// states.
type Violation struct {
	Kind   ViolationKind
	Signal int
	ER     *sg.Region
	Cube   cube.Cube
	// States are witness states: uncovered ER states (NotCovering),
	// covered states outside the CFR (OutsideCFR/IncorrectCover), or the
	// endpoints (u, v) of a rising edge inside the CFR (NonMonotonic).
	States []int
}

// Describe renders the violation with the graph's state codes.
func (v *Violation) Describe(g *sg.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s for %s, cube %s:", v.Kind, g.ERLabel(v.ER), v.Cube)
	for _, s := range v.States {
		fmt.Fprintf(&b, " s%d(%s)", s, g.CodeString(s))
	}
	return b.String()
}

// covers reports whether cube c covers state s.
func (a *Analyzer) covers(c cube.Cube, s int) bool {
	return c.ContainsMintermCube(a.mintCubes[s])
}

// erIndex locates er inside its signal's region list.
func (a *Analyzer) erIndex(er *sg.Region) int {
	for i, r := range a.regs(er.Signal).ER {
		if r == er {
			return i
		}
	}
	panic("core: region not from this analyzer")
}

// CheckMC verifies the three Monotonous Cover conditions of Definition 17
// for cube c against excitation region er, returning nil when c is a
// monotonous cover.
func (a *Analyzer) CheckMC(er *sg.Region, c cube.Cube) *Violation {
	g := a.G
	regs := a.regs(er.Signal)
	i := a.erIndex(er)
	cfr := regs.CFR(i)

	// Condition (1): cover all ER states.
	var missed []int
	for _, s := range er.States {
		if !a.covers(c, s) {
			missed = append(missed, s)
		}
	}
	if len(missed) > 0 {
		return &Violation{Kind: NotCovering, Signal: er.Signal, ER: er, Cube: c, States: missed}
	}

	// Condition (2): the cube changes at most once along any trace inside
	// the CFR. Since the cube is 1 on the whole excitation region (the
	// entry of every trace), "at most once" means the cube may only FALL
	// inside the CFR: any rising edge within the CFR is a second change
	// for some trace — and, at the gate level, an AND-gate rise that no
	// latch acknowledges, which a later input can disable (this exact
	// hazard is reproduced in the verifier tests).
	if u, v := a.doubleChange(cfr, c); u >= 0 {
		return &Violation{Kind: NonMonotonic, Signal: er.Signal, ER: er, Cube: c, States: []int{u, v}}
	}

	// Condition (3): cover no reachable state outside the CFR.
	var outside []int
	for s := 0; s < g.NumStates(); s++ {
		if !cfr.Has(s) && a.covers(c, s) {
			outside = append(outside, s)
		}
	}
	if len(outside) > 0 {
		return &Violation{Kind: OutsideCFR, Signal: er.Signal, ER: er, Cube: c, States: outside}
	}
	return nil
}

// checkMCFast is CheckMC reduced to a yes/no verdict with the CFR
// precomputed by the caller. The candidate-search loops (FindMC's
// subset enumeration, shrinkMC's greedy dropping) consume only
// nil-ness, so they skip the per-call CFR clone and the diagnostic
// state lists of the full check.
//
//reprolint:hotpath
func (a *Analyzer) checkMCFast(er *sg.Region, c cube.Cube, cfr sg.StateSet) bool {
	for _, s := range er.States {
		if !a.covers(c, s) {
			return false
		}
	}
	if u, _ := a.doubleChange(cfr, c); u >= 0 {
		return false
	}
	for s := 0; s < a.G.NumStates(); s++ {
		if !cfr.Has(s) && a.covers(c, s) {
			return false
		}
	}
	return true
}

// doubleChange looks for a monotonicity violation of cube c inside the
// CFR: a rising edge (uncovered → covered) between CFR states. It
// returns the edge's endpoints, or (-1, -1) when the cube only falls.
func (a *Analyzer) doubleChange(cfr sg.StateSet, c cube.Cube) (int, int) {
	g := a.G
	to := -1
	u := cfr.FindFirst(func(s int) bool {
		if a.covers(c, s) {
			return false
		}
		for _, e := range g.States[s].Succ {
			if cfr.Has(e.To) && a.covers(c, e.To) {
				to = e.To
				return true
			}
		}
		return false
	})
	if u < 0 {
		return -1, -1
	}
	return u, to
}

// CheckCorrectCover verifies Definition 16: the cube must not cover any
// state where the excitation function of the region's signal has value 0
// — for an up-region, 1*-set(a) ∪ 0-set(a); for a down-region,
// 0*-set(a) ∪ 1-set(a).
func (a *Analyzer) CheckCorrectCover(er *sg.Region, c cube.Cube) *Violation {
	// Membership in the forbidden set follows directly from the state's
	// value/excitation classification (Definition 13), so no
	// characteristic sets are materialized: a state is forbidden for an
	// up-region when a is excited at 1 or stable at 0, and dually for a
	// down-region.
	sig := er.Signal
	up := er.Dir == sg.Plus
	var bad []int
	for s := 0; s < a.G.NumStates(); s++ {
		v, ex := a.G.Value(s, sig), a.Idx.Excited(s, sig)
		if (v == ex) != up {
			continue
		}
		if a.covers(c, s) {
			bad = append(bad, s)
		}
	}
	if len(bad) > 0 {
		return &Violation{Kind: IncorrectCover, Signal: er.Signal, ER: er, Cube: c, States: bad}
	}
	return nil
}

// FindMC searches for a monotonous cover cube for er. The canonical
// cover cube is the smallest candidate; when it violates condition (2),
// dropping literals can restore monotonicity at the risk of breaking
// condition (3), so the search enumerates literal subsets in order of
// increasing size. It returns the found cube, or the blocking violation
// of the most constrained candidate.
func (a *Analyzer) FindMC(er *sg.Region) (cube.Cube, *Violation) {
	c := a.CoverCube(er)
	v := a.CheckMC(er, c)
	if v == nil {
		return a.shrinkMC(er, c), nil
	}
	if v.Kind != NonMonotonic {
		// Conditions (1) and (3) can only get worse by enlarging the
		// cube; the canonical cube's verdict is final.
		return cube.Cube{}, v
	}
	// Candidate literals to drop: only signals that change value inside
	// the CFR can make the cube non-monotonic there — dropping a
	// CFR-constant literal leaves the in-CFR pattern unchanged and only
	// risks condition (3).
	regs := a.regs(er.Signal)
	cfr := regs.CFR(a.erIndex(er))
	lits := a.varyingLiterals(c, cfr)
	cand := c.Clone()
	for size := 1; size <= len(lits); size++ {
		var found cube.Cube
		ok := forEachSubset(lits, size, func(drop []int) bool {
			cand.CopyFrom(c)
			for _, l := range drop {
				cand.Set(l, cube.Full)
			}
			if a.checkMCFast(er, cand, cfr) {
				found = cand.Clone()
				return true
			}
			return false
		})
		if ok {
			return a.shrinkMC(er, found), nil
		}
	}
	return cube.Cube{}, v
}

// mcViolation is the existence-only twin of FindMC: identical verdict
// (a cover exists iff FindMC returns a nil violation — shrinking never
// changes that), but no cube is built, cloned or shrunk. The budgeted
// candidate scorer calls it thousands of times per repair round.
func (a *Analyzer) mcViolation(er *sg.Region) *Violation {
	regs := a.regs(er.Signal)
	if a.cfrBuf == nil {
		a.cfrBuf = sg.NewStateSet(a.G.NumStates())
		a.ccBuf = cube.NewFull(a.G.NumSignals())
		a.candBuf = cube.NewFull(a.G.NumSignals())
	}
	cfr := regs.CFRInto(a.erIndex(er), a.cfrBuf)
	c := a.coverCubeInto(er, a.ccBuf)
	// The three MC conditions of CheckMC, existence-only: first failure
	// wins, no diagnostic state lists and no Cube in the Violation (the
	// counting callers only test nil-ness; the cube is analyzer scratch).
	// Conditions (1) and (3) are final for the canonical cube (enlarging
	// only makes them worse); only a condition-(2) failure warrants the
	// literal-dropping search below.
	for _, s := range er.States {
		if !a.covers(c, s) {
			return &Violation{Kind: NotCovering, Signal: er.Signal, ER: er}
		}
	}
	if u, _ := a.doubleChange(cfr, c); u < 0 {
		for s := 0; s < a.G.NumStates(); s++ {
			if !cfr.Has(s) && a.covers(c, s) {
				return &Violation{Kind: OutsideCFR, Signal: er.Signal, ER: er, States: []int{s}}
			}
		}
		return nil
	}
	a.litsBuf = a.varyingLitsInto(c, cfr, a.litsBuf[:0])
	lits := a.litsBuf
	if cap(a.subBuf) < 2*len(lits) {
		a.subBuf = make([]int, 2*len(lits))
	}
	cand := a.candBuf
	for size := 1; size <= len(lits); size++ {
		if forEachSubsetScratch(lits, size, a.subBuf, func(drop []int) bool {
			cand.CopyFrom(c)
			for _, l := range drop {
				cand.Set(l, cube.Full)
			}
			return a.checkMCFast(er, cand, cfr)
		}) {
			return nil
		}
	}
	return &Violation{Kind: NonMonotonic, Signal: er.Signal, ER: er}
}

// shrinkMC greedily removes literals from a valid monotonous cover while
// the MC conditions keep holding, mirroring the two-level optimization
// the paper applies to the excitation functions (fewer literals, smaller
// AND gates).
func (a *Analyzer) shrinkMC(er *sg.Region, c cube.Cube) cube.Cube {
	cfr := a.regs(er.Signal).CFR(a.erIndex(er))
	c = c.Clone()
	cand := c.Clone()
	for {
		dropped := false
		for _, l := range c.Literals() {
			cand.CopyFrom(c)
			cand.Set(l, cube.Full)
			if a.checkMCFast(er, cand, cfr) {
				c.CopyFrom(cand)
				dropped = true
			}
		}
		if !dropped {
			return c
		}
	}
}

// varyingLiterals returns the cube's literals whose signals take both
// values over the given state set.
func (a *Analyzer) varyingLiterals(c cube.Cube, states sg.StateSet) []int {
	return a.varyingLitsInto(c, states, nil)
}

// varyingLitsInto is varyingLiterals appending into a caller-provided
// buffer, walking the cube directly instead of materializing Literals.
func (a *Analyzer) varyingLitsInto(c cube.Cube, states sg.StateSet, out []int) []int {
	for l := 0; l < c.N(); l++ {
		if c.Get(l) == cube.Full {
			continue
		}
		saw0, saw1 := false, false
		states.FindFirst(func(s int) bool {
			if a.G.Value(s, l) {
				saw1 = true
			} else {
				saw0 = true
			}
			return saw0 && saw1
		})
		if saw0 && saw1 {
			out = append(out, l)
		}
	}
	return out
}

// forEachSubset calls fn with every size-k subset of lits until fn
// returns true; it reports whether fn succeeded.
func forEachSubset(lits []int, k int, fn func([]int) bool) bool {
	return forEachSubsetScratch(lits, k, make([]int, 2*k), fn)
}

// forEachSubsetScratch is forEachSubset with a caller-provided scratch
// of at least 2k ints.
func forEachSubsetScratch(lits []int, k int, scratch []int, fn func([]int) bool) bool {
	idx := scratch[:k]
	sub := scratch[k : 2*k] // recycled between calls; fn must not retain it
	var rec func(start, depth int) bool
	rec = func(start, depth int) bool {
		if depth == k {
			for i, j := range idx {
				sub[i] = lits[j]
			}
			return fn(sub)
		}
		for i := start; i <= len(lits)-(k-depth); i++ {
			idx[depth] = i
			if rec(i+1, depth+1) {
				return true
			}
		}
		return false
	}
	return rec(0, 0)
}

// RegionResult is the MC verdict for one excitation region.
type RegionResult struct {
	Signal    int
	ER        *sg.Region
	Cube      cube.Cube // valid when Violation == nil
	Violation *Violation

	// Degenerate marks the paper's degenerate case (Section IV, note 2):
	// the signal's whole excitation function is a single literal, so the
	// AND and OR gates disappear and a correct cover suffices in place
	// of a monotonous one (here: the signal is a wire of another signal).
	Degenerate bool
}

// Wire describes the degenerate single-literal implementation of a
// signal: out follows Of (inverted when Inverted is set), with no AND/OR
// logic at all.
type Wire struct {
	Of       int
	Inverted bool
}

// WireOf checks whether non-input signal sig can be implemented as a
// plain wire of another signal b: the literal b (resp. b') covers every
// ER(+sig) correctly and the literal b' (resp. b) covers every ER(−sig)
// correctly. It returns the wire description and true on success.
func (a *Analyzer) WireOf(sig int) (Wire, bool) {
	regs := a.regs(sig)
	if len(regs.ER) == 0 {
		return Wire{}, false
	}
	n := a.G.NumSignals()
	// One candidate literal is checked against every region for every
	// signal, so the forbidden sets (identical across the whole scan)
	// are computed once and the cover check early-exits on the first
	// forbidden state instead of assembling diagnostics.
	sets := a.SetsOf(sig)
	coverOK := func(er *sg.Region, c cube.Cube) bool {
		f1, f2 := sets.OneStar, sets.Zero
		if er.Dir == sg.Minus {
			f1, f2 = sets.ZeroStar, sets.One
		}
		bad := func(s int) bool { return a.covers(c, s) }
		return f1.FindFirst(bad) < 0 && f2.FindFirst(bad) < 0
	}
	for b := range a.G.Signals {
		if b == sig {
			continue
		}
		for _, inverted := range []bool{false, true} {
			up := cube.NewFull(n)
			down := cube.NewFull(n)
			if inverted {
				up.Set(b, cube.Zero)
				down.Set(b, cube.One)
			} else {
				up.Set(b, cube.One)
				down.Set(b, cube.Zero)
			}
			ok := true
			for _, er := range regs.ER {
				c := up
				if er.Dir == sg.Minus {
					c = down
				}
				// The literal must cover the whole ER and cover it
				// correctly (Definition 16) — monotonicity is waived in
				// the degenerate case.
				for _, s := range er.States {
					if !a.covers(c, s) {
						ok = false
						break
					}
				}
				if !ok || !coverOK(er, c) {
					ok = false
					break
				}
			}
			if ok {
				return Wire{Of: b, Inverted: inverted}, true
			}
		}
	}
	return Wire{}, false
}

// Report is the outcome of checking the MC requirement on a whole graph.
type Report struct {
	G       *sg.Graph
	A       *Analyzer // the analyzer that produced the report
	Results []RegionResult
}

// Satisfied reports whether every non-input excitation region has a
// monotonous cover (the MC requirement, Definition 18).
func (r *Report) Satisfied() bool {
	for _, res := range r.Results {
		if res.Violation != nil {
			return false
		}
	}
	return true
}

// Violations returns the failing regions.
func (r *Report) Violations() []*Violation {
	var out []*Violation
	for _, res := range r.Results {
		if res.Violation != nil {
			out = append(out, res.Violation)
		}
	}
	return out
}

// String renders the report, one region per line.
func (r *Report) String() string {
	var b strings.Builder
	for _, res := range r.Results {
		if res.Violation == nil {
			tag := "MC cube"
			if res.Degenerate {
				tag = "degenerate (wire) cube"
			}
			fmt.Fprintf(&b, "%s: %s %s\n",
				r.G.ERLabel(res.ER), tag, res.Cube.StringNamed(r.G.Signals))
		} else {
			fmt.Fprintf(&b, "%s: VIOLATION %s\n", r.G.ERLabel(res.ER), res.Violation.Describe(r.G))
		}
	}
	return b.String()
}

// CheckGraph evaluates the MC requirement for every excitation region of
// every non-input signal. The per-signal analyses are independent and
// fan out over the analyzer's worker pool; results are assembled in
// signal order, so the report is deterministic.
func (a *Analyzer) CheckGraph() *Report {
	rep := &Report{G: a.G, A: a}
	sigs := make([]int, 0, a.G.NumSignals())
	for sig := range a.G.Signals {
		if !a.G.Input[sig] {
			sigs = append(sigs, sig)
		}
	}
	sort.Ints(sigs)
	perSig := make([][]RegionResult, len(sigs))
	par.ForEachHook(len(sigs), a.workers, func(k int) {
		perSig[k] = a.checkSignal(sigs[k])
	}, obs.TaskHook("core.mc"))
	for _, results := range perSig {
		rep.Results = append(rep.Results, results...)
	}
	return rep
}

// CheckGraphBudget is CheckGraph with a branch-and-bound budget: the
// signals are scanned sequentially in order and the scan stops once
// the number of violating regions reaches budget (budget <= 0 means
// no bound, equivalent to a sequential CheckGraph). A report with
// fewer than budget violations is complete and exact; one with budget
// or more means "at least this many" — which is all a candidate
// scorer needs to discard a graph against an incumbent with fewer
// violations. The scan is deliberately sequential: the insertion
// loop's candidate scoring fans out one goroutine per candidate, so
// nesting a per-signal fan-out underneath would only oversubscribe
// the pool.
func (a *Analyzer) CheckGraphBudget(budget int, hot ...string) *Report {
	rep := &Report{G: a.G, A: a}
	violations := 0
	for _, sig := range a.scanOrder(hot) {
		results := a.checkSignal(sig)
		rep.Results = append(rep.Results, results...)
		for i := range results {
			if results[i].Violation != nil {
				violations++
			}
		}
		if budget > 0 && violations >= budget {
			break
		}
	}
	return rep
}

// scanOrder lists the non-input signals in index order, with the hot
// names (likely violators, in the caller's priority order) moved to
// the front so a bad graph burns a budget after a couple of signals
// instead of a full sweep. Which signals get scanned can depend on the
// order, but the one thing budgeted callers consume — "did the
// violation count reach the budget, and if not, what is it exactly" —
// cannot.
func (a *Analyzer) scanOrder(hot []string) []int {
	sigs := make([]int, 0, a.G.NumSignals())
	for sig := range a.G.Signals {
		if !a.G.Input[sig] {
			sigs = append(sigs, sig)
		}
	}
	sort.Ints(sigs)
	if len(hot) > 0 {
		rank := make(map[int]int, len(hot))
		for i, name := range hot {
			if sig := a.G.SignalIndex(name); sig >= 0 {
				if _, ok := rank[sig]; !ok {
					rank[sig] = i
				}
			}
		}
		sort.SliceStable(sigs, func(i, j int) bool {
			ri, iok := rank[sigs[i]]
			rj, jok := rank[sigs[j]]
			if iok != jok {
				return iok
			}
			return iok && ri < rj
		})
	}
	return sigs
}

// CountViolationsBudget is the count-only twin of CheckGraphBudget:
// same scan order, same early exit, same per-signal verdicts, but no
// report is assembled and — decisively for the candidate-scoring hot
// path — the success-path cube shrinking is skipped, since greedy
// literal dropping can never turn a found cover into a violation (or
// vice versa). The returned count is exact below budget and "at least
// budget" otherwise, exactly as CheckGraphBudget's caller would count
// its report's violations.
func (a *Analyzer) CountViolationsBudget(budget int, hot ...string) int {
	violations := 0
	for _, sig := range a.scanOrder(hot) {
		violations += a.countSignal(sig)
		if budget > 0 && violations >= budget {
			break
		}
	}
	return violations
}

// countSignal is checkSignal minus everything that only affects cube
// quality: each region gets an existence-only MC verdict, and the
// grouped and degenerate fallbacks run exactly as in checkSignal (the
// grouped path keeps its internal shrinking because the shared cube's
// footprint feeds the Theorem-5 side condition).
func (a *Analyzer) countSignal(sig int) int {
	regs := a.regs(sig)
	var results []RegionResult
	failed := false
	for _, er := range regs.ER {
		v := a.mcViolation(er)
		if v != nil {
			failed = true
		}
		results = append(results, RegionResult{Signal: sig, ER: er, Violation: v})
	}
	if !failed {
		return 0
	}
	if a.groupSameFunction(sig, results) {
		return 0
	}
	if _, ok := a.WireOf(sig); ok {
		return 0
	}
	n := 0
	for i := range results {
		if results[i].Violation != nil {
			n++
		}
	}
	return n
}

// checkSignal evaluates the MC requirement for every excitation region
// of one signal, including the shared-cube and degenerate fallbacks.
func (a *Analyzer) checkSignal(sig int) []RegionResult {
	var results []RegionResult
	failed := false
	for _, er := range a.regs(sig).ER {
		c, v := a.FindMC(er)
		if v != nil {
			failed = true
		}
		results = append(results, RegionResult{Signal: sig, ER: er, Cube: c, Violation: v})
	}
	if failed {
		// Multiple transitions of one signal may share a single cube
		// (Definition 19 with F a set of same-signal transitions):
		// e.g. two excitation regions with identical codes in
		// alternative branches. Try a generalized cube over all
		// regions of the same direction.
		failed = !a.groupSameFunction(sig, results)
	}
	if failed {
		// Degenerate fallback: the whole signal as a single-literal
		// wire needs only correct covers (Section IV, note 2).
		if w, ok := a.WireOf(sig); ok {
			n := a.G.NumSignals()
			for i := range results {
				c := cube.NewFull(n)
				lit := cube.One
				if (results[i].ER.Dir == sg.Plus) == w.Inverted {
					lit = cube.Zero
				}
				c.Set(w.Of, lit)
				results[i].Cube = c
				results[i].Violation = nil
				results[i].Degenerate = true
			}
		}
	}
	return results
}

// groupSameFunction attempts to repair the failed regions of one signal
// by covering groups of same-direction regions with one generalized MC
// cube. It updates results in place and reports whether every region of
// the signal ended up violation-free.
func (a *Analyzer) groupSameFunction(sig int, results []RegionResult) bool {
	for _, dir := range []sg.Dir{sg.Plus, sg.Minus} {
		var idx []int
		anyFailed := false
		for i := range results {
			if results[i].ER.Dir == dir {
				idx = append(idx, i)
				if results[i].Violation != nil {
					anyFailed = true
				}
			}
		}
		if !anyFailed || len(idx) < 2 {
			continue
		}
		// Candidate groups: all same-direction regions, then only the
		// failed ones.
		groups := [][]int{idx}
		var failedOnly []int
		for _, i := range idx {
			if results[i].Violation != nil {
				failedOnly = append(failedOnly, i)
			}
		}
		if len(failedOnly) >= 2 && len(failedOnly) < len(idx) {
			groups = append(groups, failedOnly)
		}
		for _, group := range groups {
			ers := make([]*sg.Region, len(group))
			sup := a.CoverCube(results[group[0]].ER)
			for k, i := range group {
				ers[k] = results[i].ER
				if k > 0 {
					sup = sup.Supercube(a.CoverCube(results[i].ER))
				}
			}
			c, ok := a.findGeneralizedMC(ers, sup)
			if !ok {
				continue
			}
			// Theorem 5 side condition within the signal: the shared
			// cube must not touch the regions outside the group.
			touches := false
			for _, i := range idx {
				inGroup := false
				for _, j := range group {
					if i == j {
						inGroup = true
					}
				}
				if inGroup {
					continue
				}
				for _, s := range results[i].ER.States {
					if a.covers(c, s) {
						touches = true
					}
				}
			}
			if touches {
				continue
			}
			for _, i := range group {
				results[i].Cube = c
				results[i].Violation = nil
			}
			break
		}
	}
	for i := range results {
		if results[i].Violation != nil {
			return false
		}
	}
	return true
}

// findGeneralizedMC searches for a generalized MC cube for the region
// set, starting from the given candidate and dropping literals on
// non-monotonicity, mirroring FindMC.
func (a *Analyzer) findGeneralizedMC(ers []*sg.Region, c cube.Cube) (cube.Cube, bool) {
	v := a.CheckGeneralizedMC(ers, c)
	if v == nil {
		return a.shrinkGeneralized(ers, c), true
	}
	if v.Kind != NonMonotonic {
		return cube.Cube{}, false
	}
	union := sg.NewStateSet(a.G.NumStates())
	for _, er := range ers {
		regs := a.regs(er.Signal)
		union.UnionWith(regs.CFR(a.erIndexIn(regs, er)))
	}
	lits := a.varyingLiterals(c, union)
	for size := 1; size <= len(lits); size++ {
		var found cube.Cube
		ok := forEachSubset(lits, size, func(drop []int) bool {
			cand := c.Clone()
			for _, l := range drop {
				cand.Set(l, cube.Full)
			}
			if a.CheckGeneralizedMC(ers, cand) == nil {
				found = cand
				return true
			}
			return false
		})
		if ok {
			return a.shrinkGeneralized(ers, found), true
		}
	}
	return cube.Cube{}, false
}

// shrinkGeneralized is shrinkMC for generalized covers.
func (a *Analyzer) shrinkGeneralized(ers []*sg.Region, c cube.Cube) cube.Cube {
	c = c.Clone()
	for {
		dropped := false
		for _, l := range c.Literals() {
			cand := c.Clone()
			cand.Set(l, cube.Full)
			if a.CheckGeneralizedMC(ers, cand) == nil {
				c = cand
				dropped = true
			}
		}
		if !dropped {
			return c
		}
	}
}

// ExcitationFunctions assembles the up- and down-excitation covers
// (Sa, Ra) of a non-input signal from the MC cubes of a satisfied report.
// It fails when the report has violations for that signal.
func (r *Report) ExcitationFunctions(sig int) (set, reset cube.Cover, err error) {
	n := r.G.NumSignals()
	set, reset = cube.NewCover(n), cube.NewCover(n)
	for _, res := range r.Results {
		if res.Signal != sig {
			continue
		}
		if res.Violation != nil {
			return set, reset, fmt.Errorf("core: %s has no monotonous cover", r.G.ERLabel(res.ER))
		}
		if res.ER.Dir == sg.Plus {
			set.Add(res.Cube)
		} else {
			reset.Add(res.Cube)
		}
	}
	// Distinct regions may share one cube (e.g. both ERs of a repaired
	// signal covered by the same inserted-signal literal): deduplicate.
	return set.SCC(), reset.SCC(), nil
}
