package core

import (
	"repro/internal/bdd"
	"repro/internal/sg"
)

// GraphSpace wraps an explicit state graph as a SymSpace: states are
// encoded in interleaved current/next index bits (bit i of the state
// index lives in variable 2i, its next-state twin in 2i+1), sets of
// states are BDDs over those bits, and the transition relation is the
// union of the graph's edges. It is the bridge that lets the symbolic MC
// checks run against an explicit reference graph — the differential
// anchor of the engine abstraction — and the substrate of
// CountViolationsBudgetSymbolic. Value, excitation and relation BDDs are
// built lazily per signal, since budgeted scans rarely touch more than a
// few signals. Not safe for concurrent use.
type GraphSpace struct {
	G  *sg.Graph
	Ix *sg.Index

	m        *bdd.Manager
	bits     int
	curVars  []int
	nextVars []int
	curCube  int
	nextCube int
	swap     bdd.Shift
	reached  int

	minterm []int   // per-state current-vars minterm, built on demand (-1 empty)
	val     [][]int // [sig][v] value sets, nil until built
	exc     [][]int // [sig][(d+1)/2] excited sets, nil until built
	rel     int     // full edge relation, -1 until built
	relSig  [][]int // [sig][(d+1)/2] per-label relations, -1 until built
}

// NewGraphSpace builds the index-bit universe for g. The graph must have
// at least one state.
func NewGraphSpace(g *sg.Graph, ix *sg.Index) *GraphSpace {
	n := g.NumStates()
	bits := 1
	for 1<<uint(bits) < n {
		bits++
	}
	m := bdd.New(2 * bits)
	sp := &GraphSpace{G: g, Ix: ix, m: m, bits: bits, rel: -1}
	perm := make([]int, 2*bits)
	for i := 0; i < bits; i++ {
		sp.curVars = append(sp.curVars, 2*i)
		sp.nextVars = append(sp.nextVars, 2*i+1)
		perm[2*i], perm[2*i+1] = 2*i+1, 2*i
	}
	sp.swap = m.NewShift(perm)
	sp.curCube = m.CubeVars(sp.curVars)
	sp.nextCube = m.CubeVars(sp.nextVars)
	sp.minterm = make([]int, n)
	for i := range sp.minterm {
		sp.minterm[i] = -1
	}
	nsig := g.NumSignals()
	sp.val = make([][]int, nsig)
	sp.exc = make([][]int, nsig)
	sp.relSig = make([][]int, nsig)
	// reached = index < n, built MSB-down. When n fills the bit width
	// exactly every pattern is a state and the comparator is trivially
	// true (the loop below would only see n's low, all-zero bits).
	if n == 1<<uint(bits) {
		sp.reached = bdd.True
	} else {
		lt := bdd.False
		prefix := bdd.True
		for i := bits - 1; i >= 0; i-- {
			if n>>uint(i)&1 == 1 {
				lt = m.Or(lt, m.And(prefix, m.NVar(2*i)))
				prefix = m.And(prefix, m.Var(2*i))
			} else {
				prefix = m.And(prefix, m.NVar(2*i))
			}
		}
		sp.reached = lt
	}
	return sp
}

// stateBDD returns (building on demand) the minterm of state s over the
// current index bits.
func (sp *GraphSpace) stateBDD(s int) int {
	if r := sp.minterm[s]; r >= 0 {
		return r
	}
	f := bdd.True
	for i := sp.bits - 1; i >= 0; i-- {
		if s>>uint(i)&1 == 1 {
			f = sp.m.And(sp.m.Var(2*i), f)
		} else {
			f = sp.m.And(sp.m.NVar(2*i), f)
		}
	}
	sp.minterm[s] = f
	return f
}

// SetBDD converts an explicit state set to its BDD.
func (sp *GraphSpace) SetBDD(states []int) int {
	f := bdd.False
	for _, s := range states {
		f = sp.m.Or(f, sp.stateBDD(s))
	}
	return f
}

// adoptRegions converts an explicit region decomposition into its
// symbolic form, preserving region order and the ER→QR association.
func (sp *GraphSpace) adoptRegions(regs *sg.Regions) *SymRegions {
	out := &SymRegions{Signal: regs.Signal, QRAfter: regs.QRAfter}
	for _, er := range regs.ER {
		out.ER = append(out.ER, &SymRegion{
			Signal: er.Signal, Dir: er.Dir, Index: er.Index, Set: sp.SetBDD(er.States),
		})
	}
	for _, qr := range regs.QR {
		out.QR = append(out.QR, &SymRegion{
			Signal: qr.Signal, Dir: qr.Dir, Index: qr.Index, Set: sp.SetBDD(qr.States),
		})
	}
	return out
}

// Manager implements SymSpace.
func (sp *GraphSpace) Manager() *bdd.Manager { return sp.m }

// StateVars implements SymSpace.
func (sp *GraphSpace) StateVars() []int { return sp.curVars }

// ReachedBDD implements SymSpace.
func (sp *GraphSpace) ReachedBDD() int { return sp.reached }

// NumSignals implements SymSpace.
func (sp *GraphSpace) NumSignals() int { return sp.G.NumSignals() }

// SignalName implements SymSpace.
func (sp *GraphSpace) SignalName(sig int) string { return sp.G.Signals[sig] }

// IsInput implements SymSpace.
func (sp *GraphSpace) IsInput(sig int) bool { return sp.G.Input[sig] }

// ValueBDD implements SymSpace.
func (sp *GraphSpace) ValueBDD(sig int, v bool) int {
	if sp.val[sig] == nil {
		v0, v1 := bdd.False, bdd.False
		for s := 0; s < sp.G.NumStates(); s++ {
			if sp.G.Value(s, sig) {
				v1 = sp.m.Or(v1, sp.stateBDD(s))
			} else {
				v0 = sp.m.Or(v0, sp.stateBDD(s))
			}
		}
		sp.val[sig] = []int{v0, v1}
	}
	if v {
		return sp.val[sig][1]
	}
	return sp.val[sig][0]
}

// dirSlot maps ±1 to an array slot.
func dirSlot(d int) int {
	if d > 0 {
		return 1
	}
	return 0
}

// ExcitedBDD implements SymSpace.
func (sp *GraphSpace) ExcitedBDD(sig, d int) int {
	if sp.exc[sig] == nil {
		e := []int{bdd.False, bdd.False}
		for s := range sp.G.States {
			for _, ed := range sp.G.States[s].Succ {
				if ed.Signal == sig {
					e[dirSlot(int(ed.Dir))] = sp.m.Or(e[dirSlot(int(ed.Dir))], sp.stateBDD(s))
				}
			}
		}
		sp.exc[sig] = e
	}
	return sp.exc[sig][dirSlot(d)]
}

// edgeBDD is one edge as a relation term: cur-minterm of from ∧
// next-minterm of to.
func (sp *GraphSpace) edgeBDD(from, to int) int {
	return sp.m.And(sp.stateBDD(from), sp.m.Replace(sp.stateBDD(to), sp.swap))
}

// relation returns (building on demand) the full edge relation.
func (sp *GraphSpace) relation() int {
	if sp.rel < 0 {
		r := bdd.False
		for s := range sp.G.States {
			for _, e := range sp.G.States[s].Succ {
				r = sp.m.Or(r, sp.edgeBDD(s, e.To))
			}
		}
		sp.rel = r
	}
	return sp.rel
}

// ImageBDD implements SymSpace.
func (sp *GraphSpace) ImageBDD(S int) int {
	img := sp.m.Replace(sp.m.AndExists(S, sp.relation(), sp.curCube), sp.swap)
	return sp.m.And(img, sp.reached)
}

// PreimageBDD implements SymSpace.
func (sp *GraphSpace) PreimageBDD(S int) int {
	pre := sp.m.AndExists(sp.m.Replace(S, sp.swap), sp.relation(), sp.nextCube)
	return sp.m.And(pre, sp.reached)
}

// ImageBySignalBDD implements SymSpace.
func (sp *GraphSpace) ImageBySignalBDD(S, sig, d int) int {
	if sp.relSig[sig] == nil {
		sp.relSig[sig] = []int{-1, -1}
	}
	slot := dirSlot(d)
	if sp.relSig[sig][slot] < 0 {
		r := bdd.False
		for s := range sp.G.States {
			for _, e := range sp.G.States[s].Succ {
				if e.Signal == sig && dirSlot(int(e.Dir)) == slot {
					r = sp.m.Or(r, sp.edgeBDD(s, e.To))
				}
			}
		}
		sp.relSig[sig][slot] = r
	}
	img := sp.m.Replace(sp.m.AndExists(S, sp.relSig[sig][slot], sp.curCube), sp.swap)
	return sp.m.And(img, sp.reached)
}
