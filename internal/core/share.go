package core

import (
	"fmt"

	"repro/internal/cube"
	"repro/internal/sg"
)

// This file implements Section VI of the paper: the generalization of the
// Monotonous Cover requirement to sets of excitation regions, which
// permits one AND gate (product term) to serve several excitation
// regions — of the same signal or of different signals — and Theorem 5,
// which guarantees that the shared implementation stays semi-modular as
// long as every excitation region is covered by exactly one cube.

// CheckGeneralizedMC verifies Definition 19 for cube c against the set
// of excitation regions ers:
//
//  1. c covers every state of every region in ers,
//  2. c changes at most once along any trace inside each region's CFR,
//  3. c covers no reachable state outside the union of the CFRs.
//
// It returns nil when c is a generalized monotonous cover.
func (a *Analyzer) CheckGeneralizedMC(ers []*sg.Region, c cube.Cube) *Violation {
	if len(ers) == 0 {
		return nil
	}
	// Premise of Definition 19: c must be a correct cover of every
	// region in the set (Definition 16) — with several signals involved,
	// condition (3) over the CFR union alone would let the cube reach a
	// forbidden set of one signal through another signal's CFR.
	for _, er := range ers {
		if v := a.CheckCorrectCover(er, c); v != nil {
			return v
		}
	}
	// Condition (1).
	for _, er := range ers {
		var missed []int
		for _, s := range er.States {
			if !a.covers(c, s) {
				missed = append(missed, s)
			}
		}
		if len(missed) > 0 {
			return &Violation{Kind: NotCovering, Signal: er.Signal, ER: er, Cube: c, States: missed}
		}
	}
	// Condition (2), per region CFR.
	union := sg.NewStateSet(a.G.NumStates())
	for _, er := range ers {
		regs := a.regs(er.Signal)
		cfr := regs.CFR(a.erIndexIn(regs, er))
		if u, v := a.doubleChange(cfr, c); u >= 0 {
			return &Violation{Kind: NonMonotonic, Signal: er.Signal, ER: er, Cube: c, States: []int{u, v}}
		}
		union.UnionWith(cfr)
	}
	// Condition (3) over the union of CFRs.
	var outside []int
	for s := 0; s < a.G.NumStates(); s++ {
		if !union.Has(s) && a.covers(c, s) {
			outside = append(outside, s)
		}
	}
	if len(outside) > 0 {
		return &Violation{Kind: OutsideCFR, Signal: ers[0].Signal, ER: ers[0], Cube: c, States: outside}
	}
	return nil
}

func (a *Analyzer) erIndexIn(regs *sg.Regions, er *sg.Region) int {
	for i, r := range regs.ER {
		if r == er {
			return i
		}
	}
	panic("core: region not in its signal's decomposition")
}

// Functions holds the up- and down-excitation covers of one signal.
type Functions struct {
	Set, Reset cube.Cover
}

// shareGroup is a set of excitation regions served by one cube.
type shareGroup struct {
	regions []*RegionResult
	cube    cube.Cube
}

// ShareOptimize applies the Section-VI optimization to a satisfied MC
// report: product terms are merged greedily — a merge replaces two cubes
// by their supercube when the generalized MC conditions and Theorem 5's
// exactly-one-cube-per-region side condition hold. It returns the
// per-signal excitation functions and the number of AND terms saved.
func (a *Analyzer) ShareOptimize(rep *Report) (map[int]Functions, int, error) {
	if !rep.Satisfied() {
		return nil, 0, fmt.Errorf("core: cannot share-optimize a violated report")
	}
	var groups []*shareGroup
	for i := range rep.Results {
		res := &rep.Results[i]
		if res.Degenerate {
			continue // wire signals have no AND gates to share
		}
		groups = append(groups, &shareGroup{regions: []*RegionResult{res}, cube: res.Cube})
	}

	andCount := func(gs []*shareGroup) int {
		n := 0
		for _, g := range gs {
			if g.cube.LiteralCount() >= 2 {
				n++
			}
		}
		return n
	}
	before := andCount(groups)

	// validMerge checks a candidate merged group.
	validMerge := func(regions []*RegionResult, c cube.Cube) bool {
		ers := make([]*sg.Region, len(regions))
		inGroup := map[*sg.Region]bool{}
		for i, r := range regions {
			ers[i] = r.ER
			inGroup[r.ER] = true
		}
		if a.CheckGeneralizedMC(ers, c) != nil {
			return false
		}
		// Theorem 5 side condition: for every signal with a region in
		// the group, the cube must not touch that signal's other
		// excitation regions (they are covered by their own cubes, and
		// a second overlapping cube would fire inside them).
		var seen uint64
		for _, r := range regions {
			if seen>>uint(r.Signal)&1 == 1 {
				continue
			}
			seen |= 1 << uint(r.Signal)
			for _, er := range a.regs(r.Signal).ER {
				if inGroup[er] {
					continue
				}
				for _, s := range er.States {
					if a.covers(c, s) {
						return false
					}
				}
			}
		}
		return true
	}

	// Greedy pairwise merging until no merge reduces the AND count.
	for {
		merged := false
		for i := 0; i < len(groups) && !merged; i++ {
			for j := i + 1; j < len(groups) && !merged; j++ {
				gi, gj := groups[i], groups[j]
				// Only merging two real AND terms saves a gate.
				if gi.cube.LiteralCount() < 2 || gj.cube.LiteralCount() < 2 {
					continue
				}
				c := gi.cube.Supercube(gj.cube)
				if c.LiteralCount() < 2 {
					continue // degenerating to a bare literal changes structure
				}
				all := append(append([]*RegionResult(nil), gi.regions...), gj.regions...)
				if !validMerge(all, c) {
					continue
				}
				gi.regions = all
				gi.cube = c
				groups = append(groups[:j], groups[j+1:]...)
				merged = true
			}
		}
		if !merged {
			break
		}
	}

	// Assemble per-signal functions.
	fns := map[int]Functions{}
	n := a.G.NumSignals()
	get := func(sig int) Functions {
		if f, ok := fns[sig]; ok {
			return f
		}
		return Functions{Set: cube.NewCover(n), Reset: cube.NewCover(n)}
	}
	for _, g := range groups {
		done := map[string]bool{}
		for _, r := range g.regions {
			key := fmt.Sprintf("%d/%d", r.Signal, r.ER.Dir)
			if done[key] {
				continue // one cube appears once per function
			}
			done[key] = true
			f := get(r.Signal)
			if r.ER.Dir == sg.Plus {
				f.Set.Add(g.cube)
			} else {
				f.Reset.Add(g.cube)
			}
			fns[r.Signal] = f
		}
	}
	// Degenerate signals keep their wire covers.
	for i := range rep.Results {
		res := &rep.Results[i]
		if !res.Degenerate {
			continue
		}
		f := get(res.Signal)
		if res.ER.Dir == sg.Plus {
			f.Set.Add(res.Cube)
		} else {
			f.Reset.Add(res.Cube)
		}
		fns[res.Signal] = f
	}
	// Canonicalize in signal order rather than map order: SCC itself is
	// deterministic per cover, but walking the signals ascending keeps
	// the whole assembly reproducible by construction.
	for sig := 0; sig < n; sig++ {
		if f, ok := fns[sig]; ok {
			fns[sig] = Functions{Set: f.Set.SCC(), Reset: f.Reset.SCC()}
		}
	}
	return fns, before - andCount(groups), nil
}
