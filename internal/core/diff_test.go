package core_test

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/sg"
	"repro/internal/stg"
)

// This file retains a map-based reference implementation of the three
// Monotonous Cover conditions (Definition 17) and checks that the dense
// StateSet/Index-backed Analyzer returns identical verdicts on the paper
// figures, the Table-1 benchmarks and random series-parallel
// specifications.

func diffGraphs(t *testing.T) map[string]*sg.Graph {
	t.Helper()
	out := map[string]*sg.Graph{
		"fig1": benchdata.Fig1SG(),
		"fig4": benchdata.Fig4SG(),
	}
	for _, e := range benchdata.Table1 {
		g, err := stg.BuildSG(e.STG())
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name] = g
	}
	for seed := int64(0); seed < 15; seed++ {
		spec := benchdata.GenRandomSpec(seed, 3)
		g, err := stg.BuildSG(spec.Net)
		if err != nil {
			t.Fatal(err)
		}
		out[spec.Net.Name] = g
	}
	return out
}

// refCovers evaluates cube coverage of a state directly from the
// graph's per-state values — no precomputed minterm table.
func refCovers(g *sg.Graph, c cube.Cube, s int) bool {
	m := make([]bool, g.NumSignals())
	for b := range m {
		m[b] = g.Value(s, b)
	}
	return c.ContainsMinterm(m)
}

// refCheckMC is the seed revision's map-based verdict for Definition 17:
// which MC condition (if any) cube c violates on the i-th excitation
// region of regs.
func refCheckMC(g *sg.Graph, regs *sg.Regions, i int, c cube.Cube) core.ViolationKind {
	er := regs.ER[i]
	// Condition (1): cover all ER states.
	for _, s := range er.States {
		if !refCovers(g, c, s) {
			return core.NotCovering
		}
	}
	// CFR as a map set: ER ∪ following QR.
	cfr := map[int]bool{}
	for _, s := range er.States {
		cfr[s] = true
	}
	if j := regs.QRAfter[i]; j >= 0 {
		for _, s := range regs.QR[j].States {
			cfr[s] = true
		}
	}
	// Condition (2): no rising edge of c inside the CFR.
	for s := range cfr {
		if refCovers(g, c, s) {
			continue
		}
		for _, e := range g.States[s].Succ {
			if cfr[e.To] && refCovers(g, c, e.To) {
				return core.NonMonotonic
			}
		}
	}
	// Condition (3): cover no reachable state outside the CFR.
	for s := 0; s < g.NumStates(); s++ {
		if !cfr[s] && refCovers(g, c, s) {
			return core.OutsideCFR
		}
	}
	return core.OK
}

func kindOf(v *core.Violation) core.ViolationKind {
	if v == nil {
		return core.OK
	}
	return v.Kind
}

func TestDifferentialCheckMCVsMapReference(t *testing.T) {
	// For every excitation region of every non-input signal, compare the
	// Analyzer's verdict against the map-based reference on a family of
	// candidate cubes: the canonical cover cube, every single-literal
	// weakening of it, and the unconstrained cube.
	for name, g := range diffGraphs(t) {
		a := core.NewAnalyzer(g)
		for sig := range g.Signals {
			if g.Input[sig] {
				continue
			}
			regs := a.Regs[sig]
			for i, er := range regs.ER {
				cands := []cube.Cube{a.CoverCube(er), cube.NewFull(g.NumSignals())}
				for _, l := range cands[0].Literals() {
					c := cands[0].Clone()
					c.Set(l, cube.Full)
					cands = append(cands, c)
				}
				for _, c := range cands {
					got := kindOf(a.CheckMC(er, c))
					want := refCheckMC(g, regs, i, c)
					if got != want {
						t.Fatalf("%s: %s cube %s: verdict %v, reference %v",
							name, g.ERLabel(er), c.StringNamed(g.Signals), got, want)
					}
				}
			}
		}
	}
}

func TestDifferentialCheckGraphCubesVsMapReference(t *testing.T) {
	// Every MC cube the full search settles on must be a valid
	// monotonous cover under the map-based reference as well. Cubes
	// shared by several regions of a signal (generalized MC) and
	// degenerate wire cubes answer to weaker conditions and are skipped.
	for name, g := range diffGraphs(t) {
		a := core.NewAnalyzer(g)
		rep := a.CheckGraph()
		uses := map[string]int{}
		for _, res := range rep.Results {
			if res.Violation == nil {
				uses[res.Cube.String()]++
			}
		}
		for _, res := range rep.Results {
			if res.Violation != nil || res.Degenerate || uses[res.Cube.String()] > 1 {
				continue
			}
			regs := a.Regs[res.Signal]
			i := -1
			for j, er := range regs.ER {
				if er == res.ER {
					i = j
				}
			}
			if want := refCheckMC(g, regs, i, res.Cube); want != core.OK {
				t.Fatalf("%s: %s: accepted cube %s fails the reference check: %v",
					name, g.ERLabel(res.ER), res.Cube.StringNamed(g.Signals), want)
			}
		}
	}
}
