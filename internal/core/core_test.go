package core_test

import (
	"strings"
	"testing"

	"repro/internal/benchdata"
	"repro/internal/core"
	"repro/internal/sg"
	"repro/internal/stg"
)

// erOf returns the ER of signal named s with the given direction and an
// expected state count; it fails the test when absent.
func erOf(t *testing.T, a *core.Analyzer, name string, d sg.Dir, size int) *sg.Region {
	t.Helper()
	sig := a.G.SignalIndex(name)
	for _, er := range a.Regs[sig].ER {
		if er.Dir == d && len(er.States) == size {
			return er
		}
	}
	t.Fatalf("no ER(%s%s) of size %d", d, name, size)
	return nil
}

func TestFig1CoverCubes(t *testing.T) {
	g := benchdata.Fig1SG()
	a := core.NewAnalyzer(g)

	// ER(+d,1) = {100*0*, 1*010*, 0010*}: a and c are concurrent, so the
	// canonical cover cube is the single literal b'.
	er := erOf(t, a, "d", sg.Plus, 3)
	c := a.CoverCube(er)
	if got := c.StringNamed(g.Signals); got != "b'" {
		t.Errorf("cover cube of ER(+d,1) = %q, want \"b'\"", got)
	}
	// ER(-d) = {0001*}: all other signals ordered → a' b' c'.
	erd := erOf(t, a, "d", sg.Minus, 1)
	if got := a.CoverCube(erd).StringNamed(g.Signals); got != "a' b' c'" {
		t.Errorf("cover cube of ER(-d) = %q, want \"a' b' c'\"", got)
	}
}

func TestFig1MCViolations(t *testing.T) {
	g := benchdata.Fig1SG()
	a := core.NewAnalyzer(g)
	rep := a.CheckGraph()
	if rep.Satisfied() {
		t.Fatalf("Fig1 must violate the MC requirement:\n%s", rep)
	}
	d := g.SignalIndex("d")
	c := g.SignalIndex("c")
	var dViol, cViol int
	for _, v := range rep.Violations() {
		switch v.Signal {
		case d:
			dViol++
		case c:
			cViol++
		}
	}
	if dViol == 0 {
		t.Errorf("expected MC violations on signal d:\n%s", rep)
	}
	if cViol != 0 {
		t.Errorf("signal c should satisfy MC:\n%s", rep)
	}

	// The big ER(+d,1) fails condition (3): its cover cube b' covers the
	// initial state 0*0*00 (and 0001*), both outside CFR(+d,1).
	er := erOf(t, a, "d", sg.Plus, 3)
	_, v := a.FindMC(er)
	if v == nil || v.Kind != core.OutsideCFR {
		t.Fatalf("ER(+d,1) should fail with OutsideCFR, got %v", v)
	}
	wit := map[int]bool{}
	for _, s := range v.States {
		wit[s] = true
	}
	if !wit[g.StateByCodeString("0*0*00")] || !wit[g.StateByCodeString("0001*")] {
		t.Errorf("witnesses should include 0*0*00 and 0001*, got %v", v.States)
	}
}

func TestFig1SignalCRegionsSatisfyMC(t *testing.T) {
	g := benchdata.Fig1SG()
	a := core.NewAnalyzer(g)

	// ER(+c,1) = {100*0*, 100*1}: MC cube a b'.
	er := erOf(t, a, "c", sg.Plus, 2)
	mc, v := a.FindMC(er)
	if v != nil {
		t.Fatalf("ER(+c,1) should have an MC cube: %s", v.Describe(g))
	}
	if got := mc.StringNamed(g.Signals); got != "a b'" {
		t.Errorf("MC cube of ER(+c,1) = %q, want \"a b'\"", got)
	}
	// ER(+c,2) = {010*0}: MC cube b d' — the paper's S(c)1 = bd'
	// (equations (1) and (2)).
	er2 := erOf(t, a, "c", sg.Plus, 1)
	mc2, v2 := a.FindMC(er2)
	if v2 != nil {
		t.Fatalf("ER(+c,2) should have an MC cube: %s", v2.Describe(g))
	}
	if got := mc2.StringNamed(g.Signals); got != "b d'" {
		t.Errorf("MC cube of ER(+c,2) = %q, want \"b d'\" (paper's S(c)1)", got)
	}
	// ER(-c) = {011*1}: MC cube a' b d (the paper's Rc = a'bd).
	er3 := erOf(t, a, "c", sg.Minus, 1)
	mc3, v3 := a.FindMC(er3)
	if v3 != nil {
		t.Fatalf("ER(-c) should have an MC cube: %s", v3.Describe(g))
	}
	if got := mc3.StringNamed(g.Signals); got != "a' b d" {
		t.Errorf("MC cube of ER(-c) = %q, want \"a' b d\" (paper's Rc)", got)
	}
}

func TestFig4MCViolationIsThePapersOne(t *testing.T) {
	g := benchdata.Fig4SG()
	a := core.NewAnalyzer(g)
	rep := a.CheckGraph()
	if rep.Satisfied() {
		t.Fatalf("Fig4 must violate MC:\n%s", rep)
	}
	viol := rep.Violations()
	if len(viol) != 1 {
		t.Fatalf("want exactly 1 violating region, got %d:\n%s", len(viol), rep)
	}
	v := viol[0]
	if g.Signals[v.Signal] != "b" || v.ER.Dir != sg.Plus || len(v.ER.States) != 3 {
		t.Fatalf("violation should be on ER(+b,1): %s", v.Describe(g))
	}
	if v.Kind != core.OutsideCFR {
		t.Fatalf("kind = %v, want OutsideCFR", v.Kind)
	}
	// Its cover cube is the literal a.
	if got := v.Cube.StringNamed(g.Signals); got != "a" {
		t.Errorf("cover cube = %q, want \"a\"", got)
	}
	// The paper's witness: cube a covers state 10*01 inside ER(+b,2).
	s := g.StateByCodeString("10*01")
	found := false
	for _, w := range v.States {
		if w == s {
			found = true
		}
	}
	if !found {
		t.Errorf("10*01 must witness the violation, got states %v", v.States)
	}
}

func TestFig4CorrectCoversDespiteMCViolation(t *testing.T) {
	// Theorem 1 context: Fig4 is persistent, so every canonical cover
	// cube covers its ER correctly — yet MC fails. This is precisely the
	// gap between the Beerel-Meng conditions and the MC requirement.
	g := benchdata.Fig4SG()
	a := core.NewAnalyzer(g)
	b := g.SignalIndex("b")
	for _, er := range a.Regs[b].ER {
		c := a.CoverCube(er)
		if v := a.CheckCorrectCover(er, c); v != nil {
			t.Errorf("cover cube of %s should be correct: %s", g.ERLabel(er), v.Describe(g))
		}
	}
}

func TestFig4OtherRegionsHaveMC(t *testing.T) {
	g := benchdata.Fig4SG()
	a := core.NewAnalyzer(g)
	er := erOf(t, a, "b", sg.Plus, 2) // ER(+b,2)
	mc, v := a.FindMC(er)
	if v != nil {
		t.Fatalf("ER(+b,2) has MC cube c'd: %s", v.Describe(g))
	}
	if got := mc.StringNamed(g.Signals); got != "c' d" {
		t.Errorf("MC cube of ER(+b,2) = %q, want \"c' d\"", got)
	}
}

func TestTheorem1PersistencyAndCorrectCovers(t *testing.T) {
	// Theorem 1: cover cubes cover correctly only if G is persistent.
	// Fig1 is not persistent, and indeed the cover cube of ER(+d,1)
	// covers incorrectly (it covers quiescent-0 states).
	g := benchdata.Fig1SG()
	a := core.NewAnalyzer(g)
	er := erOf(t, a, "d", sg.Plus, 3)
	c := a.CoverCube(er)
	if v := a.CheckCorrectCover(er, c); v == nil {
		t.Error("cover cube b' of non-persistent ER(+d,1) must cover incorrectly")
	}
}

func TestHandshakeSatisfiesMC(t *testing.T) {
	src := `
.model hs
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.end
`
	g, err := stg.BuildSG(stg.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAnalyzer(g)
	rep := a.CheckGraph()
	if !rep.Satisfied() {
		t.Fatalf("handshake must satisfy MC:\n%s", rep)
	}
	// Theorem 4: MC ⇒ CSC; Corollary 1: MC ⇒ persistency.
	if !g.CSC() {
		t.Error("Theorem 4 violated: MC holds but CSC fails")
	}
	if !g.Persistent() {
		t.Error("Corollary 1 violated: MC holds but persistency fails")
	}
	// Excitation functions: Sack = req, Rack = req'.
	ack := g.SignalIndex("ack")
	set, reset, err := rep.ExcitationFunctions(ack)
	if err != nil {
		t.Fatal(err)
	}
	if got := set.StringNamed(g.Signals); got != "req" {
		t.Errorf("Sack = %q, want \"req\"", got)
	}
	if got := reset.StringNamed(g.Signals); got != "req'" {
		t.Errorf("Rack = %q, want \"req'\"", got)
	}
}

func TestExcitationFunctionsFailOnViolation(t *testing.T) {
	g := benchdata.Fig4SG()
	rep := core.NewAnalyzer(g).CheckGraph()
	if _, _, err := rep.ExcitationFunctions(g.SignalIndex("b")); err == nil {
		t.Fatal("ExcitationFunctions must fail for a violated signal")
	}
}

func TestSetsOfPartitionStates(t *testing.T) {
	g := benchdata.Fig1SG()
	a := core.NewAnalyzer(g)
	for sig := range g.Signals {
		sets := a.SetsOf(sig)
		total := sets.Zero.Count() + sets.ZeroStar.Count() + sets.One.Count() + sets.OneStar.Count()
		if total != g.NumStates() {
			t.Fatalf("signal %s: sets cover %d states, want %d",
				g.Signals[sig], total, g.NumStates())
		}
		for s := 0; s < g.NumStates(); s++ {
			v, e := g.Value(s, sig), g.Excited(s, sig)
			switch {
			case !v && e:
				if !sets.ZeroStar.Has(s) {
					t.Fatalf("state %d should be in 0*-set(%s)", s, g.Signals[sig])
				}
			case !v && !e:
				if !sets.Zero.Has(s) {
					t.Fatalf("state %d should be in 0-set(%s)", s, g.Signals[sig])
				}
			case v && e:
				if !sets.OneStar.Has(s) {
					t.Fatalf("state %d should be in 1*-set(%s)", s, g.Signals[sig])
				}
			default:
				if !sets.One.Has(s) {
					t.Fatalf("state %d should be in 1-set(%s)", s, g.Signals[sig])
				}
			}
		}
	}
}

func TestWireOfDetectsBuffer(t *testing.T) {
	// x (input) drives y (output) as a pure buffer: y+ after x+, y- after
	// x-; y's ERs are covered by the literals x and x'.
	src := `
.model buf
.inputs x
.outputs y
.graph
x+ y+
y+ x-
x- y-
y- x+
.marking { <y-,x+> }
.end
`
	g, err := stg.BuildSG(stg.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	a := core.NewAnalyzer(g)
	w, ok := a.WireOf(g.SignalIndex("y"))
	if !ok {
		t.Fatal("y should be a wire of x")
	}
	if g.Signals[w.Of] != "x" || w.Inverted {
		t.Fatalf("wire = %+v", w)
	}
}

func TestWireOfRejectsFig4B(t *testing.T) {
	g := benchdata.Fig4SG()
	a := core.NewAnalyzer(g)
	if _, ok := a.WireOf(g.SignalIndex("b")); ok {
		t.Fatal("b is not implementable as a single wire")
	}
}

func TestReportString(t *testing.T) {
	g := benchdata.Fig4SG()
	rep := core.NewAnalyzer(g).CheckGraph()
	s := rep.String()
	if !strings.Contains(s, "VIOLATION") || !strings.Contains(s, "ER(+b,") {
		t.Errorf("report rendering:\n%s", s)
	}
}

func TestMintermCube(t *testing.T) {
	g := benchdata.Fig1SG()
	a := core.NewAnalyzer(g)
	s := g.StateByCodeString("1*010*")
	mc := a.MintermCube(s)
	if got := mc.String(); got != "1010" {
		t.Errorf("minterm of 1*010* = %q", got)
	}
	if mc.LiteralCount() != 4 {
		t.Error("minterm must constrain every signal")
	}
}

func TestCheckMCRejectsNonCoveringCube(t *testing.T) {
	g := benchdata.Fig1SG()
	a := core.NewAnalyzer(g)
	er := erOf(t, a, "d", sg.Plus, 3)
	// A minterm of one ER state misses the other two.
	c := a.MintermCube(er.States[0])
	v := a.CheckMC(er, c)
	if v == nil || v.Kind != core.NotCovering {
		t.Fatalf("want NotCovering, got %v", v)
	}
}

func TestViolationKindStrings(t *testing.T) {
	kinds := []core.ViolationKind{core.OK, core.NotCovering, core.NonMonotonic, core.OutsideCFR, core.IncorrectCover}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d renders %q", k, s)
		}
		seen[s] = true
	}
}
