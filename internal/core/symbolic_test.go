package core_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/sg"
)

// Differential tests of the symbolic Monotonous Cover machinery against
// the explicit engine on the same graphs: region decompositions must
// describe the same state sets, per-region cover-existence verdicts must
// agree, and the budgeted violation counters must return identical
// counts — the property encode.Repair's scoring relies on.

// symSetStates enumerates a GraphSpace state-set BDD back into sorted
// explicit state ids.
func symSetStates(sp *core.GraphSpace, set int) []int {
	vars := sp.StateVars()
	var out []int
	sp.Manager().ForEachSat(set, vars, func(assign []bool) bool {
		s := 0
		for i := range vars {
			if assign[i] {
				s |= 1 << uint(i)
			}
		}
		out = append(out, s)
		return true
	})
	sort.Ints(out)
	return out
}

func fingerprint(states []int) string { return fmt.Sprint(states) }

// TestSymRegionsMatchExplicit checks that the symbolic region
// decomposition over the index-bit space partitions states exactly like
// the explicit one: same ER and QR sets with the same directions, and
// the same ER → following-QR association. Component indices may differ
// (the engines discover components in different orders), so regions are
// matched by state set.
func TestSymRegionsMatchExplicit(t *testing.T) {
	for name, g := range diffGraphs(t) {
		a := core.NewAnalyzerN(g, 1)
		sp := core.NewGraphSpace(g, a.Idx)
		for sig := 0; sig < g.NumSignals(); sig++ {
			exp := a.Regs[sig]
			got := core.SymRegionsOf(sp, sig)
			if len(got.ER) != len(exp.ER) || len(got.QR) != len(exp.QR) {
				t.Fatalf("%s %s: %d ER / %d QR symbolic vs %d / %d explicit",
					name, g.Signals[sig], len(got.ER), len(got.QR), len(exp.ER), len(exp.QR))
			}
			// Explicit region fingerprint → (kind, position) for matching.
			type key struct {
				qr bool
				fp string
			}
			expAt := map[key]int{}
			expDir := map[key]sg.Dir{}
			for i, er := range exp.ER {
				k := key{false, fingerprint(append([]int(nil), er.States...))}
				expAt[k] = i
				expDir[k] = er.Dir
			}
			for i, qr := range exp.QR {
				k := key{true, fingerprint(append([]int(nil), qr.States...))}
				expAt[k] = i
				expDir[k] = qr.Dir
			}
			// Map symbolic region position → matched explicit position.
			erMap := make([]int, len(got.ER))
			qrMap := make([]int, len(got.QR))
			for i, er := range got.ER {
				k := key{false, fingerprint(symSetStates(sp, er.Set))}
				j, ok := expAt[k]
				if !ok {
					t.Fatalf("%s %s: symbolic ER %s has no explicit twin", name, g.Signals[sig], k.fp)
				}
				if expDir[k] != er.Dir {
					t.Fatalf("%s %s: ER %s direction mismatch", name, g.Signals[sig], k.fp)
				}
				erMap[i] = j
			}
			for i, qr := range got.QR {
				k := key{true, fingerprint(symSetStates(sp, qr.Set))}
				j, ok := expAt[k]
				if !ok {
					t.Fatalf("%s %s: symbolic QR %s has no explicit twin", name, g.Signals[sig], k.fp)
				}
				if expDir[k] != qr.Dir {
					t.Fatalf("%s %s: QR %s direction mismatch", name, g.Signals[sig], k.fp)
				}
				qrMap[i] = j
			}
			for i := range got.ER {
				want := exp.QRAfter[erMap[i]]
				have := got.QRAfter[i]
				if (want < 0) != (have < 0) {
					t.Fatalf("%s %s: ER %d QRAfter presence mismatch", name, g.Signals[sig], i)
				}
				if want >= 0 && qrMap[have] != want {
					t.Fatalf("%s %s: ER %d follows QR %d symbolically, %d explicitly",
						name, g.Signals[sig], i, qrMap[have], want)
				}
			}
		}
	}
}

// TestSymMCViolationMatchesExplicit compares the existence-only symbolic
// verdict with the explicit FindMC on every excitation region of every
// non-input signal: a region has a monotonous cover under one engine iff
// it has one under the other.
func TestSymMCViolationMatchesExplicit(t *testing.T) {
	for name, g := range diffGraphs(t) {
		a := core.NewAnalyzerN(g, 1)
		sp := core.NewGraphSpace(g, a.Idx)
		for sig := 0; sig < g.NumSignals(); sig++ {
			if g.Input[sig] {
				continue
			}
			exp := a.Regs[sig]
			symRegs := core.SymRegionsOf(sp, sig)
			// Match symbolic regions back to explicit indices so verdicts
			// compare region-for-region.
			fpToSym := map[string]int{}
			for i, er := range symRegs.ER {
				fpToSym[fingerprint(symSetStates(sp, er.Set))] = i
			}
			for i, er := range exp.ER {
				j, ok := fpToSym[fingerprint(append([]int(nil), er.States...))]
				if !ok {
					t.Fatalf("%s %s: explicit ER %d missing symbolically", name, g.Signals[sig], i)
				}
				_, v := a.FindMC(er)
				expBad := v != nil
				gotBad := core.SymMCViolation(sp, symRegs, j)
				if expBad != gotBad {
					t.Fatalf("%s: ER(%s%s,%d) violation=%v explicit, %v symbolic",
						name, er.Dir, g.Signals[sig], er.Index, expBad, gotBad)
				}
			}
		}
	}
}

// TestCountViolationsBudgetSymbolicMatches pins the integration property
// repair scoring depends on: the symbolic budgeted counter returns
// exactly the explicit counter's value, with and without a budget.
func TestCountViolationsBudgetSymbolicMatches(t *testing.T) {
	for name, g := range diffGraphs(t) {
		for _, budget := range []int{0, 1, 2} {
			want := core.NewAnalyzerLazy(g).CountViolationsBudget(budget)
			got := core.NewAnalyzerLazy(g).CountViolationsBudgetSymbolic(budget)
			if want != got {
				t.Fatalf("%s budget %d: %d explicit vs %d symbolic", name, budget, want, got)
			}
		}
	}
}
