package stg_test

import (
	"testing"

	"repro/internal/benchdata"
	"repro/internal/stg"
)

// FuzzBuildSG asserts reachability's contract on top of the parser's:
// for any input Parse accepts, BuildSGLimit must return either a state
// graph or an error — never panic — including on unsafe nets, nets with
// source transitions, disconnected fragments and inconsistent encodings.
// Run with
//
//	go test -fuzz FuzzBuildSG ./internal/stg
//
// for coverage-guided exploration; plain `go test` replays the seed
// corpus: the nine Table-1 .g sources plus known tricky shapes.
func FuzzBuildSG(f *testing.F) {
	for _, e := range benchdata.Table1 {
		f.Add(e.Source)
	}
	// An unsafe net (a+ produces into the marked place p).
	f.Add(".inputs a\n.outputs b\n.graph\nq a+\na+ p\np b+\n.marking { p q }\n.end\n")
	// A source transition (empty pre-set): never enabled.
	f.Add(".inputs a\n.outputs b\n.graph\na+ b+\nb+ a-\na- b-\nb- p\n.marking { p }\n.end\n")
	// Inconsistent encoding: a+ twice in a row.
	f.Add(".inputs a\n.outputs b\n.graph\na+ a+/2\na+/2 b+\nb+ a+\n.marking { <b+,a+> }\n.end\n")
	// A signal that never fires.
	f.Add(".inputs a b\n.outputs c\n.graph\na+ c+\nc+ a-\na- c-\nc- a+\n.marking { <c-,a+> }\n.end\n")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := stg.Parse(src)
		if err != nil {
			return
		}
		g, err := stg.BuildSGLimit(n, 1<<12)
		if (g == nil) == (err == nil) {
			t.Fatalf("BuildSGLimit returned graph=%v err=%v; want exactly one", g != nil, err)
		}
		if err != nil {
			return
		}
		// Every successfully built graph satisfies the consistency
		// invariants by construction.
		if cerr := g.CheckConsistency(); cerr != nil {
			t.Fatalf("built graph fails consistency: %v", cerr)
		}
	})
}
