package stg

import (
	"fmt"
	"sort"

	"repro/internal/bdd"
	"repro/internal/obs"
)

// SymbolicReport is the result of BDD-based reachability over the net's
// markings.
type SymbolicReport struct {
	States    uint64 // reachable 1-safe markings (= state-graph states)
	Iters     int    // image iterations to the fixpoint
	BDDNodes  int    // node-table size over the whole run
	FinalSize int    // BDD size of the reachable-set function
	Unsafe    bool   // a transition could doubly mark a place
}

// SymbolicSpace is the symbolic form of a net's reachable state space:
// a BDD manager over interleaved current/next place variables (place p
// occupies the pair 2·pvar[p] and 2·pvar[p]+1, where pvar is the static
// order chosen by orderPlaces), the per-transition firing relations,
// and the reachable-set BDD. It answers the questions the analysis core
// asks — images, preimages, signal values, excitation sets — without
// ever materializing individual markings, so it scales with BDD size
// rather than state count. It implements core.SymSpace.
//
// A SymbolicSpace is not safe for concurrent use: every query may grow
// the shared node table.
type SymbolicSpace struct {
	Net *STG

	m      *bdd.Manager
	places int
	pvar   []int     // place → variable pair (place p lives at 2*pvar[p])
	byVar  []int     // variable pair → place (inverse of pvar)
	swap   bdd.Shift // exchanges current and next variables

	curVars  []int
	nextVars []int
	curCube  int // ∃-cube of all current vars
	nextCube int // ∃-cube of all next vars

	init    int // initial marking minterm (current vars)
	reached int // reachable-set BDD (current vars)
	iters   int

	rel      []int // per-transition firing relation over cur ∪ next vars
	en       []int // per-transition enabling condition (current vars)
	unsafeCd []int // per-transition 1-safety violation condition (current vars)
	relAll   int   // union of rel, built on first Image/Preimage; -1 before

	// byDir[2*sig] / byDir[2*sig+1] list the −/+ transitions of each
	// signal in index order, so per-signal queries stop rescanning the
	// whole transition list.
	byDir [][]int

	// val[2*sig+1] / val[2*sig] are the reached markings where the
	// signal reads 1 / 0; filled by ComputeValues.
	val []int
	// exc[2*sig] / exc[2*sig+1] cache ExcitedBDD(sig, −1) / (sig, +1):
	// the per-signal MC existence queries ask for these over and over
	// (one pair per signal per region cube), and rebuilding them was
	// the dominant redundant work of a symbolic analysis. Filled by
	// ComputeValues; nil before.
	exc      []int
	valsDone bool
	unsafe   bool

	// extraRoots holds transient BDDs that must survive a collection
	// triggered mid-computation (ComputeValues' per-signal relation
	// unions). Always nil outside those windows.
	extraRoots []int

	gcThreshold int
}

// gcMinThreshold is the node-table size below which the fixpoints never
// bother collecting.
const gcMinThreshold = 1 << 16

// NewSymbolicSpace builds the transition relations and runs symbolic
// reachability to the fixpoint. It fails when the net has no places or
// is not 1-safe (reporting the first offending transition in index
// order, like the explicit token game).
func NewSymbolicSpace(n *STG) (*SymbolicSpace, error) {
	places := n.NumPlaces()
	if places == 0 {
		return nil, fmt.Errorf("stg: net has no places")
	}
	m := bdd.New(2 * places)
	s := &SymbolicSpace{
		Net:         n,
		m:           m,
		places:      places,
		pvar:        orderPlaces(n),
		relAll:      -1,
		gcThreshold: gcMinThreshold,
	}
	s.byVar = make([]int, places)
	for p, v := range s.pvar {
		s.byVar[v] = p
	}
	perm := make([]int, 2*places)
	for p := 0; p < places; p++ {
		s.curVars = append(s.curVars, s.curVar(p))
		s.nextVars = append(s.nextVars, s.nextVar(p))
		perm[2*p], perm[2*p+1] = 2*p+1, 2*p
	}
	s.swap = m.NewShift(perm)
	s.curCube = m.CubeVars(s.curVars)
	s.nextCube = m.CubeVars(s.nextVars)
	s.buildRelations()
	s.buildInit()
	if err := s.fixpoint(); err != nil {
		return s, err
	}
	s.publish()
	return s, nil
}

// curVar / nextVar map a place to its variable pair under the static
// order chosen by orderPlaces.
func (s *SymbolicSpace) curVar(p int) int  { return 2 * s.pvar[p] }
func (s *SymbolicSpace) nextVar(p int) int { return 2*s.pvar[p] + 1 }

// orderPlaces picks the static BDD variable order: a depth-first walk of
// the flow relation from the initially marked places, so places along one
// token's path get adjacent variable pairs. Place indices are an artifact
// of the input syntax — the .g parser numbers implicit places in arc
// order, which interleaves independent branches and can blow the
// reachable-set BDD up exponentially in the branch count (a width-10
// fork goes from thousands of nodes to millions). The DFS recovers
// branch-contiguity from the net structure regardless of how the places
// were numbered. Ties follow index order, so the result is deterministic.
func orderPlaces(n *STG) []int {
	places := n.NumPlaces()
	postP := make([][]int, places) // place → consuming transitions, ascending
	for t, pre := range n.PreT {
		for _, p := range pre {
			postP[p] = append(postP[p], t)
		}
	}
	lvl := make([]int, places)
	for p := range lvl {
		lvl[p] = -1
	}
	next := 0
	var visit func(p int)
	visit = func(p int) {
		if lvl[p] != -1 {
			return
		}
		lvl[p] = next
		next++
		for _, t := range postP[p] {
			for _, q := range n.PostT[t] {
				visit(q)
			}
		}
	}
	for p := 0; p < places; p++ {
		if n.InitialMarking[p] {
			visit(p)
		}
	}
	for p := 0; p < places; p++ {
		visit(p) // disconnected leftovers keep their relative order
	}
	return lvl
}

// placeSets splits a transition's pre/post place lists into the three
// disjoint classes firing distinguishes, sorted for determinism.
func placeSets(n *STG, t int) (consumed, produced, held []int, dupPost bool) {
	pre := map[int]bool{}
	for _, p := range n.PreT[t] {
		pre[p] = true
	}
	post := map[int]bool{}
	for _, p := range n.PostT[t] {
		if post[p] {
			dupPost = true
		}
		post[p] = true
	}
	for p := range pre { //reprolint:ordered all three classes are sorted before return
		if post[p] {
			held = append(held, p)
		} else {
			consumed = append(consumed, p)
		}
	}
	for p := range post { //reprolint:ordered all three classes are sorted before return
		if !pre[p] {
			produced = append(produced, p)
		}
	}
	sort.Ints(consumed)
	sort.Ints(produced)
	sort.Ints(held)
	return consumed, produced, held, dupPost
}

// buildRelations constructs, for every transition, the enabling
// condition en(x), the 1-safety violation condition, and the full firing
// relation T(x,x') = en(x) ∧ effect(x,x') ∧ frame(x,x'). The interleaved
// variable order keeps each x'_p ↔ x_p frame conjunct adjacent to its
// pair, so |T| stays linear in the place count.
func (s *SymbolicSpace) buildRelations() {
	n, m := s.Net, s.m
	nt := len(n.Trans)
	s.rel = make([]int, nt)
	s.en = make([]int, nt)
	s.unsafeCd = make([]int, nt)
	for t := 0; t < nt; t++ {
		consumed, produced, held, dupPost := placeSets(n, t)
		class := make([]int8, s.places) // 0 frame, 1 consumed, 2 produced, 3 held
		for _, p := range consumed {
			class[p] = 1
		}
		for _, p := range produced {
			class[p] = 2
		}
		for _, p := range held {
			class[p] = 3
		}
		// Conjunction bottom-up (descending variable) so every And
		// touches an already-reduced suffix.
		rel := bdd.True
		for i := s.places - 1; i >= 0; i-- {
			p := s.byVar[i]
			var c int
			switch class[p] {
			case 1: // consumed: marked before, empty after
				c = m.And(m.Var(s.curVar(p)), m.NVar(s.nextVar(p)))
			case 2: // produced: empty before (else unsafe), marked after
				c = m.And(m.NVar(s.curVar(p)), m.Var(s.nextVar(p)))
			case 3: // consumed and re-produced: marked on both sides
				c = m.And(m.Var(s.curVar(p)), m.Var(s.nextVar(p)))
			default: // untouched: value carried over
				c = m.ITE(m.Var(s.curVar(p)), m.Var(s.nextVar(p)), m.NVar(s.nextVar(p)))
			}
			rel = m.And(c, rel)
		}
		s.rel[t] = rel
		en := bdd.True
		pre := append(append([]int(nil), consumed...), held...)
		sort.Slice(pre, func(i, j int) bool { return s.pvar[pre[i]] < s.pvar[pre[j]] })
		for i := len(pre) - 1; i >= 0; i-- {
			en = m.And(m.Var(s.curVar(pre[i])), en)
		}
		s.en[t] = en
		// Unsafe: enabled while a produced place is already marked — or a
		// place repeated in the post-set, which no marking survives.
		unsafe := bdd.False
		if dupPost {
			unsafe = bdd.True
		}
		for _, p := range produced {
			unsafe = m.Or(unsafe, m.Var(s.curVar(p)))
		}
		s.unsafeCd[t] = unsafe
	}
}

// buildInit encodes the initial marking as a minterm over current vars.
func (s *SymbolicSpace) buildInit() {
	m := s.m
	init := bdd.True
	for i := s.places - 1; i >= 0; i-- {
		p := s.byVar[i]
		if s.Net.InitialMarking[p] {
			init = m.And(m.Var(s.curVar(p)), init)
		} else {
			init = m.And(m.NVar(s.curVar(p)), init)
		}
	}
	s.init = init
	s.reached = init
}

// imageRel is one image step through an explicit relation: the successors
// of S (current vars) under rel, back on current vars.
func (s *SymbolicSpace) imageRel(S, rel int) int {
	return s.m.Replace(s.m.AndExists(S, rel, s.curCube), s.swap)
}

// preimageRel is the dual: predecessors of S under rel.
func (s *SymbolicSpace) preimageRel(S, rel int) int {
	return s.m.AndExists(s.m.Replace(S, s.swap), rel, s.nextCube)
}

// fixpoint runs breadth-first reachability, checking 1-safety on every
// frontier and garbage-collecting the node table when it outgrows the
// live BDDs.
func (s *SymbolicSpace) fixpoint() error {
	m := s.m
	frontier := s.init
	for frontier != bdd.False {
		s.iters++
		next := bdd.False
		for t := range s.rel {
			if m.And(m.And(frontier, s.en[t]), s.unsafeCd[t]) != bdd.False {
				s.unsafe = true
				return fmt.Errorf("stg: net not 1-safe (transition %s)", s.Net.TransLabel(t))
			}
			next = m.Or(next, s.imageRel(frontier, s.rel[t]))
		}
		frontier = m.Diff(next, s.reached)
		s.reached = m.Or(s.reached, frontier)
		if s.iters > 1<<20 {
			return fmt.Errorf("stg: symbolic fixpoint did not converge")
		}
		frontier = s.maybeCollect(frontier)[0]
	}
	return nil
}

// roots gathers every live BDD of the space (transient extras appended),
// and adopt writes the re-rooted ids back in the same order.
func (s *SymbolicSpace) roots(extra []int) []int {
	r := []int{s.curCube, s.nextCube, s.init, s.reached, s.relAll}
	r = append(r, s.val...)
	r = append(r, s.exc...)
	r = append(r, s.extraRoots...)
	r = append(r, s.rel...)
	r = append(r, s.en...)
	r = append(r, s.unsafeCd...)
	return append(r, extra...)
}

func (s *SymbolicSpace) adopt(r []int) []int {
	s.curCube, s.nextCube, s.init, s.reached, s.relAll = r[0], r[1], r[2], r[3], r[4]
	r = r[5:]
	copy(s.val, r[:len(s.val)])
	r = r[len(s.val):]
	copy(s.exc, r[:len(s.exc)])
	r = r[len(s.exc):]
	copy(s.extraRoots, r[:len(s.extraRoots)])
	r = r[len(s.extraRoots):]
	nt := len(s.rel)
	copy(s.rel, r[:nt])
	copy(s.en, r[nt:2*nt])
	copy(s.unsafeCd, r[2*nt:3*nt])
	return r[3*nt:]
}

// maybeCollect garbage-collects when the node table exceeds the current
// threshold, re-rooting the space's BDDs plus the given extras, whose
// new ids are returned in order (unchanged when no collection ran). The
// threshold doubles relative to the live size after each collection so
// GC work stays amortized.
func (s *SymbolicSpace) maybeCollect(extras ...int) []int {
	if s.m.NumNodes() < s.gcThreshold {
		return extras
	}
	// relAll == -1 is a sentinel, not a node: park it on False.
	sentinel := s.relAll < 0
	if sentinel {
		s.relAll = bdd.False
	}
	out := s.adopt(s.m.Collect(s.roots(extras)))
	if sentinel {
		s.relAll = -1
	}
	if t := 2 * s.m.NumNodes(); t > gcMinThreshold {
		s.gcThreshold = t
	} else {
		s.gcThreshold = gcMinThreshold
	}
	return out
}

// Manager exposes the space's BDD manager.
func (s *SymbolicSpace) Manager() *bdd.Manager { return s.m }

// StateVars returns the current-state variables indexed by place:
// StateVars()[p] is place p's variable. The slice is not sorted when
// orderPlaces permuted the places; consumers that enumerate assignments
// rely on ForEachSat indexing by caller position.
func (s *SymbolicSpace) StateVars() []int { return s.curVars }

// ReachedBDD returns the reachable-set BDD over current vars.
func (s *SymbolicSpace) ReachedBDD() int { return s.reached }

// InitBDD returns the initial-marking minterm.
func (s *SymbolicSpace) InitBDD() int { return s.init }

// States counts the reachable markings.
func (s *SymbolicSpace) States() uint64 {
	return s.m.SatCountVars(s.reached, s.curVars)
}

// NumSignals returns the net's signal count.
func (s *SymbolicSpace) NumSignals() int { return len(s.Net.Signals) }

// SignalName returns the name of signal sig.
func (s *SymbolicSpace) SignalName(sig int) string { return s.Net.Signals[sig] }

// IsInput reports whether signal sig is an input.
func (s *SymbolicSpace) IsInput(sig int) bool { return s.Net.Kinds[sig] == Input }

// unionRel returns the union of the listed transition relations.
func (s *SymbolicSpace) unionRel(ts []int) int {
	r := bdd.False
	for _, t := range ts {
		r = s.m.Or(r, s.rel[t])
	}
	return r
}

// allRel returns (building on demand) the union of all firing relations.
func (s *SymbolicSpace) allRel() int {
	if s.relAll < 0 {
		ts := make([]int, len(s.rel))
		for t := range ts {
			ts[t] = t
		}
		s.relAll = s.unionRel(ts)
	}
	return s.relAll
}

// ImageBDD returns the reachable successors of S (one firing, any
// transition).
func (s *SymbolicSpace) ImageBDD(S int) int {
	return s.m.And(s.imageRel(S, s.allRel()), s.reached)
}

// PreimageBDD returns the reachable predecessors of S.
func (s *SymbolicSpace) PreimageBDD(S int) int {
	return s.m.And(s.preimageRel(S, s.allRel()), s.reached)
}

// transOf lists the transitions of signal sig with direction d (+1/−1),
// in index order. The grouping is indexed on first use; the net is
// immutable once the space exists.
func (s *SymbolicSpace) transOf(sig, d int) []int {
	if s.byDir == nil {
		s.byDir = make([][]int, 2*len(s.Net.Signals))
		for t, tr := range s.Net.Trans {
			i := 2 * tr.Signal
			if tr.Dir > 0 {
				i++
			}
			s.byDir[i] = append(s.byDir[i], t)
		}
	}
	i := 2 * sig
	if d > 0 {
		i++
	}
	return s.byDir[i]
}

// ExcitedBDD returns the reachable markings where a (sig, d) transition
// is enabled. After ComputeValues the answer comes from the exc cache —
// the MC existence queries ask for every signal's excitation per region
// cube, so the uncached O(transitions-of-sig) rebuild would dominate.
func (s *SymbolicSpace) ExcitedBDD(sig, d int) int {
	if s.exc != nil {
		if d > 0 {
			return s.exc[2*sig+1]
		}
		return s.exc[2*sig]
	}
	r := bdd.False
	for _, t := range s.transOf(sig, d) {
		r = s.m.Or(r, s.en[t])
	}
	return s.m.And(r, s.reached)
}

// ImageBySignalBDD returns the reachable successors of S through (sig, d)
// transitions only.
func (s *SymbolicSpace) ImageBySignalBDD(S, sig, d int) int {
	r := bdd.False
	for _, t := range s.transOf(sig, d) {
		r = s.m.Or(r, s.imageRel(S, s.rel[t]))
	}
	return s.m.And(r, s.reached)
}

// ComputeValues infers the binary value of every signal on every
// reachable marking — the symbolic twin of the explicit encoder's value
// fixpoint. For signal a, the 0-valued markings are those connected to a
// 0-seed (a+ enabled, or just after a− fired) by firings of other
// signals, and dually for 1; consistency requires the two closures to be
// disjoint and to cover the reachable set. Must be called before
// ValueBDD; it is idempotent.
func (s *SymbolicSpace) ComputeValues() error {
	if s.valsDone {
		return nil
	}
	m := s.m
	nsig := len(s.Net.Signals)
	// Allocated up front (zero value bdd.False) so partially inferred
	// values are GC roots while later signals iterate.
	s.val = make([]int, 2*nsig)
	// Each signal's closure fires "all transitions of other signals".
	// Building that union per signal from scratch is O(nsig·ntrans) Or
	// operations; per-signal relation unions combined through prefix and
	// suffix partial unions give every others-relation in O(ntrans+nsig)
	// total. The resulting slice is rooted via extraRoots because the
	// fixpoint loops below may collect while later entries are still
	// pending.
	sigRel := make([]int, nsig)
	for t, tr := range s.Net.Trans {
		sigRel[tr.Signal] = m.Or(sigRel[tr.Signal], s.rel[t])
	}
	suffix := make([]int, nsig+1)
	suffix[nsig] = bdd.False
	for i := nsig - 1; i >= 0; i-- {
		suffix[i] = m.Or(suffix[i+1], sigRel[i])
	}
	others := make([]int, nsig)
	prefix := bdd.False
	for i := 0; i < nsig; i++ {
		others[i] = m.Or(prefix, suffix[i+1])
		prefix = m.Or(prefix, sigRel[i])
	}
	s.extraRoots = others
	defer func() { s.extraRoots = nil }()
	for sig := 0; sig < nsig; sig++ {
		rel := others[sig]
		for _, d := range []int{+1, -1} {
			// d = +1 seeds value 0 (a+ enabled, or a− just fired).
			seed := bdd.False
			for _, t := range s.transOf(sig, d) {
				seed = m.Or(seed, m.And(s.en[t], s.reached))
			}
			for _, t := range s.transOf(sig, -d) {
				seed = m.Or(seed, m.And(s.imageRel(s.reached, s.rel[t]), s.reached))
			}
			set := seed
			for {
				grown := m.Or(set, m.And(s.imageRel(set, rel), s.reached))
				grown = m.Or(grown, m.And(s.preimageRel(set, rel), s.reached))
				if grown == set {
					break
				}
				r := s.maybeCollect(grown, rel)
				set, rel = r[0], r[1]
			}
			if d == +1 {
				s.val[2*sig] = set
			} else {
				s.val[2*sig+1] = set
			}
		}
		v0, v1 := s.val[2*sig], s.val[2*sig+1]
		if m.And(v0, v1) != bdd.False {
			return fmt.Errorf("stg: inconsistent state assignment for signal %s", s.Net.Signals[sig])
		}
		if m.And(s.init, m.Or(v0, v1)) == bdd.False {
			return fmt.Errorf("stg: signal %s never fires; cannot infer its value", s.Net.Signals[sig])
		}
		if m.Or(v0, v1) != s.reached {
			return fmt.Errorf("stg: value of signal %s undetermined on some reachable markings", s.Net.Signals[sig])
		}
	}
	// Fill the excitation cache eagerly: every (sig, d) pair is queried
	// by the MC existence checks, usually many times over.
	s.exc = make([]int, 2*nsig)
	for t, tr := range s.Net.Trans {
		i := 2 * tr.Signal
		if tr.Dir > 0 {
			i++
		}
		s.exc[i] = m.Or(s.exc[i], s.en[t])
	}
	for i := range s.exc {
		s.exc[i] = m.And(s.exc[i], s.reached)
	}
	s.valsDone = true
	s.publish()
	return nil
}

// ValueBDD returns the reachable markings where signal sig reads v.
// ComputeValues must have succeeded first.
func (s *SymbolicSpace) ValueBDD(sig int, v bool) int {
	if !s.valsDone {
		panic("stg: ValueBDD before ComputeValues")
	}
	if v {
		return s.val[2*sig+1]
	}
	return s.val[2*sig]
}

// Report summarizes the space in the legacy SymbolicReport form.
func (s *SymbolicSpace) Report() SymbolicReport {
	return SymbolicReport{
		States:    s.States(),
		Iters:     s.iters,
		BDDNodes:  s.m.NumNodes(),
		FinalSize: s.m.Size(s.reached),
	}
}

// publish reports the run's BDD tallies to the observability layer (a
// no-op without an enabled observer) — once per construction and once
// per value inference, never inside the fixpoint loops.
func (s *SymbolicSpace) publish() {
	o := obs.Get()
	if o == nil {
		return
	}
	st := s.m.Stats()
	mt := o.Metrics
	mt.Gauge("stg_symbolic_bdd_nodes").Set(int64(s.m.NumNodes()))
	mt.Gauge("stg_symbolic_bdd_peak_nodes").Set(int64(st.PeakNodes))
	mt.Counter("stg_symbolic_iters_total").Add(int64(s.iters))
	mt.Counter("stg_symbolic_cache_hits_total").Add(st.CacheHits)
	mt.Counter("stg_symbolic_cache_misses_total").Add(st.CacheMisses)
	mt.Counter("stg_symbolic_cache_resets_total").Add(st.CacheResets)
	mt.Counter("stg_symbolic_collections_total").Add(st.Collections)
	s.m.PublishObs("stg_space")
	obs.Info("symbolic space", "iters", s.iters, "nodes", s.m.NumNodes())
}

// SymbolicReachability computes the reachable markings of the net
// symbolically: one BDD variable pair per place, breadth-first image
// computation through per-transition firing relations until fixpoint.
// It detects 1-safeness violations exactly like the explicit token game
// and is cross-checked against it in the tests; unlike the explicit
// exploration it scales with BDD size rather than state count (a k-way
// fork has 2^k + 2^k markings but a linear BDD).
func SymbolicReachability(n *STG) (SymbolicReport, error) {
	s, err := NewSymbolicSpace(n)
	if err != nil {
		rep := SymbolicReport{}
		if s != nil {
			rep.Iters = s.iters
			rep.BDDNodes = s.m.NumNodes()
			rep.Unsafe = s.unsafe
		}
		return rep, err
	}
	return s.Report(), nil
}
