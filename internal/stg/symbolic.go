package stg

import (
	"fmt"

	"repro/internal/bdd"
)

// SymbolicReport is the result of BDD-based reachability over the net's
// markings.
type SymbolicReport struct {
	States    uint64 // reachable 1-safe markings (= state-graph states)
	Iters     int    // image iterations to the fixpoint
	BDDNodes  int    // node-table size over the whole run
	FinalSize int    // BDD size of the reachable-set function
	Unsafe    bool   // a transition could doubly mark a place
}

// SymbolicReachability computes the reachable markings of the net
// symbolically: one BDD variable per place, breadth-first image
// computation until fixpoint. It detects 1-safeness violations exactly
// like the explicit token game and is cross-checked against it in the
// tests; unlike the explicit exploration it scales with BDD size rather
// than state count (a k-way fork has 2^k + 2^k markings but a linear
// BDD).
func SymbolicReachability(n *STG) (SymbolicReport, error) {
	places := n.NumPlaces()
	if places == 0 {
		return SymbolicReport{}, fmt.Errorf("stg: net has no places")
	}
	m := bdd.New(places)

	// Initial marking as a minterm.
	init := bdd.True
	for p := 0; p < places; p++ {
		if n.InitialMarking[p] {
			init = m.And(init, m.Var(p))
		} else {
			init = m.And(init, m.NVar(p))
		}
	}

	// Per-transition enabling conditions and frame data.
	type trans struct {
		en      int   // all pre-places marked
		changed []int // places whose value changes
		post    int   // values of changed places after firing
		unsafe  int   // condition: some produced place already marked
	}
	ts := make([]trans, len(n.Trans))
	for t := range n.Trans {
		en := bdd.True
		pre := map[int]bool{}
		for _, p := range n.PreT[t] {
			en = m.And(en, m.Var(p))
			pre[p] = true
		}
		post := map[int]bool{}
		for _, p := range n.PostT[t] {
			post[p] = true
		}
		tr := trans{en: en, unsafe: bdd.False}
		after := bdd.True
		for p := range pre {
			if !post[p] {
				tr.changed = append(tr.changed, p)
				after = m.And(after, m.NVar(p))
			}
		}
		for p := range post {
			if !pre[p] {
				tr.changed = append(tr.changed, p)
				after = m.And(after, m.Var(p))
				// Unsafe if p is already marked while the transition is
				// enabled.
				tr.unsafe = m.Or(tr.unsafe, m.Var(p))
			}
		}
		tr.post = after
		ts[t] = tr
	}

	reached := init
	frontier := init
	rep := SymbolicReport{}
	for frontier != bdd.False {
		rep.Iters++
		next := bdd.False
		for t := range ts {
			enabled := m.And(frontier, ts[t].en)
			if enabled == bdd.False {
				continue
			}
			if m.And(enabled, ts[t].unsafe) != bdd.False {
				rep.Unsafe = true
				rep.BDDNodes = m.NumNodes()
				return rep, fmt.Errorf("stg: net not 1-safe (transition %s)", n.TransLabel(t))
			}
			img := m.ExistsAll(enabled, ts[t].changed)
			img = m.And(img, ts[t].post)
			next = m.Or(next, img)
		}
		frontier = m.Diff(next, reached)
		reached = m.Or(reached, frontier)
		if rep.Iters > 1<<20 {
			return rep, fmt.Errorf("stg: symbolic fixpoint did not converge")
		}
	}
	rep.States = m.SatCount(reached)
	rep.BDDNodes = m.NumNodes()
	rep.FinalSize = m.Size(reached)
	return rep, nil
}
